// In-network computing on demand for a key-value store (§9 of the paper).
//
// A memcached/LaKe pair serves a diurnal load. The host-controlled
// on-demand controller watches RAPL power and the app's CPU usage, shifts
// the KVS into the FPGA NIC when the morning peak arrives, and shifts it
// back at night — logging every decision. This is the Fig 6 experiment as a
// narrated application.
#include <cstdio>
#include <memory>

#include "src/ondemand/controller.h"
#include "src/ondemand/migrator.h"
#include "src/scenarios/kvs_testbed.h"
#include "src/sim/simulation.h"
#include "src/workload/etc_workload.h"

using namespace incod;

int main() {
  Simulation sim(/*seed=*/7);

  KvsTestbedOptions options;
  options.mode = KvsMode::kLake;
  options.lake_initially_active = false;  // Day starts in software (§9.2).
  KvsTestbed testbed(sim, options);
  testbed.Prefill(50000, 64);

  // Facebook-ETC-like traffic whose rate we modulate like a day/night cycle.
  EtcWorkloadConfig etc_config;
  etc_config.kvs_service = testbed.ServiceNode();
  etc_config.key_population = 50000;
  EtcWorkload etc(etc_config);
  auto arrival = std::make_unique<PoissonArrival>(20000.0);
  PoissonArrival* rate_knob = arrival.get();
  auto& client = testbed.AddClient(LoadClientConfig{}, std::move(arrival),
                                   etc.MakeFactory());

  // "Morning" ramp at t=4 s: 20 kqps -> 600 kqps; "night" at t=14 s.
  sim.Schedule(Seconds(4), [&] {
    rate_knob->SetRate(600000.0);
    std::printf("[%6.1fs] load: morning peak begins (600 kqps)\n",
                ToSeconds(sim.Now()));
  });
  sim.Schedule(Seconds(14), [&] {
    rate_knob->SetRate(20000.0);
    std::printf("[%6.1fs] load: night (20 kqps)\n", ToSeconds(sim.Now()));
  });

  // The migrator keeps the idle app clock-gated with memories in reset —
  // the paper's recommended parked state.
  ClassifierMigrator migrator(sim, *testbed.fpga());

  // Host-controlled on-demand controller: RAPL + CPU usage, sustained
  // windows, mirrored thresholds for hysteresis (§9.1).
  RaplCounter rapl(sim, [&] { return testbed.server()->RaplPackageWatts(); });
  rapl.Start();
  HostControllerConfig controller_config;
  controller_config.up_power_watts = 20.0;
  controller_config.up_cpu_usage = 0.5;
  controller_config.up_window = Seconds(2);
  controller_config.down_rate_pps = 60000;
  controller_config.down_power_watts = 15.0;
  controller_config.down_window = Seconds(2);
  HostController controller(sim, *testbed.server(), AppProto::kKv, rapl,
                            *testbed.fpga(), migrator, controller_config);
  controller.Start();

  // Narrate status once a second.
  SchedulePeriodic(sim, Seconds(1), Seconds(1), [&] {
    static uint64_t last = 0;
    const uint64_t received = client.received();
    std::printf("[%6.1fs] %-7s | %7.1f kqps | p50 %6.2f us | %5.1f W | hw hits %llu\n",
                ToSeconds(sim.Now()), PlacementName(migrator.placement()),
                static_cast<double>(received - last) / 1000.0,
                ToMicroseconds(static_cast<SimDuration>(client.latency().P50())),
                testbed.meter().InstantWatts(),
                static_cast<unsigned long long>(testbed.lake()->l1_hits() +
                                                testbed.lake()->l2_hits()));
    client.mutable_latency().Reset();
    last = received;
    return sim.Now() < Seconds(20);
  });

  client.Start();
  sim.RunUntil(Seconds(20));

  std::printf("\ntransitions:\n");
  for (const auto& t : migrator.transitions()) {
    std::printf("  %6.1fs -> %s\n", ToSeconds(t.at), PlacementName(t.to));
  }
  std::printf("total served: %llu of %llu (%.2f%% loss)\n",
              static_cast<unsigned long long>(client.received()),
              static_cast<unsigned long long>(client.sent()),
              100.0 * client.LossFraction());
  return 0;
}
