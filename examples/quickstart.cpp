// Quickstart: measure the power/performance trade-off of in-network
// computing with the declarative scenario API.
//
// Builds the paper's KVS testbed twice from struct-literal ScenarioSpecs —
// memcached in software, then LaKe on the FPGA NIC, both created by name
// ("kvs") through the AppRegistry — drives both with the same declarative
// workload, and prints throughput, latency and wall power side by side.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "src/kvs/lake.h"
#include "src/kvs/memcached_server.h"
#include "src/power/cpu_power.h"
#include "src/scenarios/scenario_spec.h"
#include "src/sim/simulation.h"

using namespace incod;

namespace {

struct Result {
  double kqps;
  double p50_us;
  double watts;
};

Result Run(bool offload, double offered_pps) {
  // 1. A deterministic simulation.
  Simulation sim(/*seed=*/42);

  // 2. The scenario, declaratively: nodes, target, app by registry name,
  //    and the workload. ScenarioTestbed wires the topology and attaches a
  //    wall power meter exactly as in the paper's setup.
  ScenarioSpec spec;
  spec.name = offload ? "kvs-lake" : "kvs-software";
  spec.host.config.name = "i7-server";
  spec.host.config.node = 1;
  spec.host.config.num_cores = 4;
  spec.host.config.power_curve = I7MemcachedCurve();
  spec.host.apps = {"kvs"};  // memcached, via the AppRegistry.
  // The paper's link calibration (same as the KVS testbed).
  spec.client_link = TestbedBuilder::TenGigLink(Nanoseconds(100));
  spec.target.pcie = TestbedBuilder::PcieLink(Nanoseconds(2500));
  if (offload) {
    spec.target.kind = ScenarioTargetKind::kFpgaNic;
    spec.target.name = "netfpga-lake";
    spec.target.device_node = 50;
    spec.target.app = "kvs";  // Same name, FPGA placement: LaKe.
  } else {
    spec.target.kind = ScenarioTargetKind::kConventionalNic;
  }
  spec.workload.kind = ScenarioWorkloadSpec::Kind::kKvUniformGets;
  spec.workload.rate_per_second = offered_pps;
  spec.workload.keyspace = 1000;

  ScenarioTestbed testbed(sim, spec);

  // 3. Warm stores so GETs hit (the workload client is already running).
  if (auto* memcached = testbed.host_app_as<MemcachedServer>()) {
    for (uint64_t k = 0; k < 1000; ++k) {
      memcached->store().Set(k, 64);
    }
  }
  if (auto* lake = testbed.offload_app_as<LakeCache>()) {
    lake->WarmFill(0, 1000, 64);
  }

  // 4. Warm up, then measure a steady-state window.
  sim.RunUntil(Milliseconds(100));
  LoadClient& client = *testbed.client();
  client.ResetStats();
  const SimTime start = sim.Now();
  sim.RunUntil(start + Milliseconds(200));

  return Result{
      static_cast<double>(client.received()) / 0.2 / 1000.0,
      ToMicroseconds(static_cast<SimDuration>(client.latency().P50())),
      testbed.meter().MeanWatts(start, sim.Now()),
  };
}

}  // namespace

int main() {
  std::printf("offered    | memcached (software)        | LaKe (in-network)\n");
  std::printf("kqps       | kqps   p50us   watts        | kqps   p50us   watts\n");
  for (double offered : {50e3, 150e3, 400e3, 800e3}) {
    const Result sw = Run(/*offload=*/false, offered);
    const Result hw = Run(/*offload=*/true, offered);
    std::printf("%-10.0f | %-6.1f %-7.2f %-12.1f | %-6.1f %-7.2f %-6.1f\n",
                offered / 1000.0, sw.kqps, sw.p50_us, sw.watts, hw.kqps, hw.p50_us,
                hw.watts);
  }
  std::printf(
      "\nThe paper's result in miniature: the software server is cheaper at\n"
      "idle, but past ~80 kqps the FPGA serves the same load at lower power\n"
      "and ~10x lower latency — which is why placement should be decided\n"
      "on demand (see examples/kvs_ondemand and examples/paxos_migration).\n");
  return 0;
}
