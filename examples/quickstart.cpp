// Quickstart: measure the power/performance trade-off of in-network
// computing in ~60 lines of API use.
//
// Builds the paper's KVS testbed twice — memcached in software, then LaKe
// on the FPGA NIC — drives both with the same load, and prints throughput,
// latency and wall power side by side.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "src/scenarios/kvs_testbed.h"
#include "src/sim/simulation.h"
#include "src/workload/client.h"

using namespace incod;

namespace {

// A request factory: uniform GETs over 1000 keys.
RequestFactory MakeGets(NodeId service) {
  return [service](NodeId src, uint64_t id, SimTime now, Rng& rng) {
    const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 999));
    return MakeKvRequestPacket(src, service, KvRequest{KvOp::kGet, key, 0}, id, now);
  };
}

struct Result {
  double kqps;
  double p50_us;
  double watts;
};

Result Run(KvsMode mode, double offered_pps) {
  // 1. A deterministic simulation.
  Simulation sim(/*seed=*/42);

  // 2. The testbed: client -- (NIC or NetFPGA+LaKe) -- i7 server, with a
  //    wall power meter attached exactly as in the paper's setup.
  KvsTestbedOptions options;
  options.mode = mode;
  KvsTestbed testbed(sim, options);
  testbed.Prefill(/*count=*/1000, /*value_bytes=*/64);

  // 3. An open-loop client at the offered rate.
  auto& client = testbed.AddClient(LoadClientConfig{},
                                   std::make_unique<ConstantArrival>(offered_pps),
                                   MakeGets(testbed.ServiceNode()));
  client.Start();

  // 4. Warm up, then measure a steady-state window.
  sim.RunUntil(Milliseconds(100));
  client.ResetStats();
  const SimTime start = sim.Now();
  sim.RunUntil(start + Milliseconds(200));

  return Result{
      static_cast<double>(client.received()) / 0.2 / 1000.0,
      ToMicroseconds(static_cast<SimDuration>(client.latency().P50())),
      testbed.meter().MeanWatts(start, sim.Now()),
  };
}

}  // namespace

int main() {
  std::printf("offered    | memcached (software)        | LaKe (in-network)\n");
  std::printf("kqps       | kqps   p50us   watts        | kqps   p50us   watts\n");
  for (double offered : {50e3, 150e3, 400e3, 800e3}) {
    const Result sw = Run(KvsMode::kSoftwareOnly, offered);
    const Result hw = Run(KvsMode::kLake, offered);
    std::printf("%-10.0f | %-6.1f %-7.2f %-12.1f | %-6.1f %-7.2f %-6.1f\n",
                offered / 1000.0, sw.kqps, sw.p50_us, sw.watts, hw.kqps, hw.p50_us,
                hw.watts);
  }
  std::printf(
      "\nThe paper's result in miniature: the software server is cheaper at\n"
      "idle, but past ~80 kqps the FPGA serves the same load at lower power\n"
      "and ~10x lower latency — which is why placement should be decided\n"
      "on demand (see examples/kvs_ondemand and examples/paxos_migration).\n");
  return 0;
}
