// Migrating a Paxos leader between software and a P4xos FPGA (§9.2).
//
// Runs a three-acceptor consensus group under client load and performs two
// live leader migrations. Shows the mechanics the paper describes: the
// central controller re-points the leader service, the fresh leader starts
// at sequence 1 and re-learns the next instance from acceptor hints, client
// retries bridge the ~100 ms gap, and learners back-fill holes with no-ops.
#include <cstdio>

#include "src/ondemand/migrator.h"
#include "src/scenarios/paxos_testbed.h"
#include "src/sim/simulation.h"

using namespace incod;

int main() {
  Simulation sim(/*seed=*/3);

  PaxosTestbedOptions options;
  options.deployment = PaxosDeployment::kP4xosFpga;
  options.dual_leader = true;  // SW leader on the host, HW leader on its NIC.
  options.client.requests_per_second = 20000;
  options.client.retry_timeout = Milliseconds(100);
  PaxosTestbed testbed(sim, options);

  PaxosLeaderMigrator migrator(sim, testbed.net_switch(), kPaxosLeaderService,
                               *testbed.software_leader(), testbed.leader_port(),
                               *testbed.sut_fpga(), *testbed.fpga_leader(),
                               testbed.leader_port());

  sim.Schedule(Seconds(2), [&] {
    std::printf("[%5.2fs] controller: shifting leader to the network (ballot %u)\n",
                ToSeconds(sim.Now()), migrator.current_ballot() + 1);
    migrator.ShiftToNetwork();
  });
  sim.Schedule(Seconds(4), [&] {
    std::printf("[%5.2fs] controller: shifting leader back to software (ballot %u)\n",
                ToSeconds(sim.Now()), migrator.current_ballot() + 1);
    migrator.ShiftToHost();
  });

  SchedulePeriodic(sim, Milliseconds(500), Milliseconds(500), [&] {
    static uint64_t last_completed = 0;
    const uint64_t completed = testbed.client().completed();
    std::printf("[%5.2fs] leader=%-7s | %6.1f kreq/s | p50 %7.1f us | retries %llu\n",
                ToSeconds(sim.Now()), PlacementName(migrator.placement()),
                static_cast<double>(completed - last_completed) / 500.0,
                ToMicroseconds(
                    static_cast<SimDuration>(testbed.client().latency().P50())),
                static_cast<unsigned long long>(testbed.client().retries()));
    testbed.client().mutable_latency().Reset();
    last_completed = completed;
    return sim.Now() < Seconds(6);
  });

  testbed.client().Start();
  sim.RunUntil(Seconds(6));

  const auto& learner = testbed.learner()->state();
  std::printf("\nconsensus summary\n");
  std::printf("  client: %llu sent, %llu completed, %llu retries, %llu abandoned\n",
              static_cast<unsigned long long>(testbed.client().sent()),
              static_cast<unsigned long long>(testbed.client().completed()),
              static_cast<unsigned long long>(testbed.client().retries()),
              static_cast<unsigned long long>(testbed.client().timeouts_abandoned()));
  std::printf("  learner: %llu delivered (%llu no-ops), %llu fill requests\n",
              static_cast<unsigned long long>(learner.delivered_count()),
              static_cast<unsigned long long>(learner.noop_count()),
              static_cast<unsigned long long>(learner.fill_requests_sent()));
  std::printf("  hw leader: %llu msgs, learned the sequence %llu time(s)\n",
              static_cast<unsigned long long>(testbed.fpga_leader()->messages_handled()),
              static_cast<unsigned long long>(
                  testbed.fpga_leader()->leader()->sequence_jumps()));
  std::printf("  sw leader: %llu msgs, learned the sequence %llu time(s)\n",
              static_cast<unsigned long long>(
                  testbed.software_leader()->messages_handled()),
              static_cast<unsigned long long>(
                  testbed.software_leader()->state().sequence_jumps()));
  return 0;
}
