// Rack-scale on-demand placement: the real orchestrator, live.
//
// A mixed rack — memcached+LaKe, NSD+switch-DNS, and a dual Paxos leader —
// runs under one RackOrchestrator with a shared offload power budget. Load
// ramps per app; the orchestrator measures each app's classifier-visible
// rate, predicts both placements' watts with the §8 models, and greedily
// places each app on its cheapest eligible target (FPGA NIC for the KVS,
// the ToR pipeline for DNS, the P4xos NIC for the Paxos leader), honoring
// capacity and the shared budget. The timeline below narrates the result.
#include <cstdio>
#include <memory>

#include "src/scenarios/rack_scenario.h"
#include "src/sim/simulation.h"
#include "src/workload/dns_workload.h"
#include "src/workload/etc_workload.h"

using namespace incod;

namespace {

std::string AppPlacement(MixedRackScenario& rack, size_t app) {
  const RackPlacementOption* option = rack.orchestrator().current_option(app);
  return option == nullptr ? "host" : option->target->TargetName();
}

}  // namespace

int main() {
  Simulation sim(/*seed=*/11);

  MixedRackOptions options;
  options.power_budget_watts = 120.0;  // Shared PDU headroom for offloads.
  options.orchestrator.min_saving_watts = 2.0;
  options.orchestrator.min_dwell = Seconds(1);
  // Warm policy for the KVS: every orchestrator shift carries the store's
  // LRU contents through the generic state-transfer path, so LaKe serves
  // hits from the first post-shift packet (no Fig 6 re-warm gap). DNS and
  // Paxos keep the paper's cold shifts for contrast.
  options.warm.kvs = true;
  // Near the one-core libpaxos peak. Note the orchestrator still keeps the
  // leader on the host: P4xos-in-a-server saves < 1 W over libpaxos even at
  // peak (Fig 3b) — the switch, not the NIC, is where consensus pays (§9.4).
  options.paxos_client.requests_per_second = 170000;
  MixedRackScenario rack(sim, options);
  rack.PrefillKvs(50000, 64);

  // KVS: quiet start, morning surge at 3 s.
  EtcWorkloadConfig etc_config;
  etc_config.kvs_service = kRackKvsServerNode;
  etc_config.key_population = 50000;
  EtcWorkload etc(etc_config);
  auto kvs_arrival = std::make_unique<PoissonArrival>(20000.0);
  PoissonArrival* kvs_knob = kvs_arrival.get();
  LoadClient& kvs_client =
      rack.AddKvsClient(LoadClientConfig{}, std::move(kvs_arrival), etc.MakeFactory());

  // DNS: steady 300 kqps edge traffic.
  DnsWorkloadConfig dns_config;
  dns_config.dns_service = kRackDnsServerNode;
  LoadClient& dns_client = rack.AddDnsClient(
      LoadClientConfig{}, std::make_unique<PoissonArrival>(300000.0),
      MakeDnsRequestFactory(dns_config));

  sim.Schedule(Seconds(3), [&] {
    kvs_knob->SetRate(500000.0);
    std::printf("[%5.1fs] load: kvs morning surge (500 kqps)\n", ToSeconds(sim.Now()));
  });
  sim.Schedule(Seconds(10), [&] {
    kvs_knob->SetRate(20000.0);
    std::printf("[%5.1fs] load: kvs night (20 kqps)\n", ToSeconds(sim.Now()));
  });

  rack.orchestrator().Start();
  kvs_client.Start();
  dns_client.Start();
  rack.paxos_client()->Start();

  std::printf("%-8s %-22s %-22s %-22s %10s %10s\n", "time", "kvs", "dns", "paxos",
              "committed", "budget");
  SchedulePeriodic(sim, Seconds(1), Seconds(1), [&] {
    std::printf("[%5.1fs] %-22s %-22s %-22s %8.1f W %8.1f W\n", ToSeconds(sim.Now()),
                AppPlacement(rack, rack.kvs_app_index()).c_str(),
                AppPlacement(rack, rack.dns_app_index()).c_str(),
                AppPlacement(rack, rack.paxos_app_index()).c_str(),
                rack.orchestrator().ledger().committed_watts(),
                rack.orchestrator().ledger().budget_watts());
    return sim.Now() < Seconds(15);
  });

  sim.RunUntil(Seconds(15));

  std::printf("\nshifts by target:\n");
  std::printf("  %-24s %llu\n", rack.kvs_fpga().TargetName().c_str(),
              static_cast<unsigned long long>(
                  rack.orchestrator().ShiftsToTarget(rack.kvs_fpga())));
  std::printf("  %-24s %llu\n", rack.dns_target().TargetName().c_str(),
              static_cast<unsigned long long>(
                  rack.orchestrator().ShiftsToTarget(rack.dns_target())));
  if (rack.paxos_fpga() != nullptr) {
    std::printf("  %-24s %llu\n", rack.paxos_fpga()->TargetName().c_str(),
                static_cast<unsigned long long>(
                    rack.orchestrator().ShiftsToTarget(*rack.paxos_fpga())));
  }

  std::printf("\ntransitions:\n");
  for (const auto& t : rack.kvs_migrator().transitions()) {
    std::printf("  kvs   %5.1fs -> %s\n", ToSeconds(t.at), PlacementName(t.to));
  }
  for (const auto& t : rack.dns_migrator().transitions()) {
    std::printf("  dns   %5.1fs -> %s\n", ToSeconds(t.at), PlacementName(t.to));
  }
  if (rack.paxos_migrator() != nullptr) {
    for (const auto& t : rack.paxos_migrator()->transitions()) {
      std::printf("  paxos %5.1fs -> %s\n", ToSeconds(t.at), PlacementName(t.to));
    }
  }

  std::printf("\nserved: kvs %llu/%llu, dns %llu/%llu, paxos %llu/%llu\n",
              static_cast<unsigned long long>(kvs_client.received()),
              static_cast<unsigned long long>(kvs_client.sent()),
              static_cast<unsigned long long>(dns_client.received()),
              static_cast<unsigned long long>(dns_client.sent()),
              static_cast<unsigned long long>(rack.paxos_client()->completed()),
              static_cast<unsigned long long>(rack.paxos_client()->sent()));
  std::printf("dns answered in ToR: %llu; kvs served in LaKe: %llu\n",
              static_cast<unsigned long long>(rack.dns_program().answered()),
              static_cast<unsigned long long>(rack.kvs_fpga().processed_in_hardware()));
  std::printf("warm shifts: %llu of %llu total (kvs state transfers: %llu)\n",
              static_cast<unsigned long long>(rack.orchestrator().warm_shifts()),
              static_cast<unsigned long long>(rack.orchestrator().total_shifts()),
              static_cast<unsigned long long>(rack.kvs_migrator().state_transfers()));
  std::printf("mean committed offload power: %.1f W (series of %zu samples)\n",
              rack.orchestrator().committed_watts_series().MeanValue(),
              rack.orchestrator().committed_watts_series().size());
  return 0;
}
