// Power-aware placement for a rack: §8's energy model + §9.4's ToR switch
// analysis as a small scheduling tool.
//
// Given a set of workloads (application type + expected request rate), the
// advisor computes the energy tipping point for each available in-network
// target (FPGA NIC, programmable ToR switch) and recommends a placement,
// printing the projected watts for a scheduling period.
#include <cstdio>
#include <string>
#include <vector>

#include "src/ondemand/energy_advisor.h"
#include "src/power/cpu_power.h"
#include "src/sim/time.h"

using namespace incod;

namespace {

struct Workload {
  std::string name;
  double rate_pps;
  RatePowerFn software;
  RatePowerFn fpga;
};

}  // namespace

int main() {
  auto with_nic = [](RatePowerFn fn) {
    return [fn](double r) { return fn(r) + 4.0; };
  };
  std::vector<Workload> workloads;
  workloads.push_back({"kvs-frontend", 250000,
                       with_nic(MakeServerRatePower(I7MemcachedCurve(), Microseconds(4), 4)),
                       MakeFpgaRatePower(35.0, 24.0, 1.0, 13e6)});
  workloads.push_back({"kvs-archive", 15000,
                       with_nic(MakeServerRatePower(I7MemcachedCurve(), Microseconds(4), 4)),
                       MakeFpgaRatePower(35.0, 24.0, 1.0, 13e6)});
  workloads.push_back({"consensus", 120000,
                       with_nic(MakeServerRatePower(I7LibpaxosCurve(), Nanoseconds(5600), 1)),
                       MakeFpgaRatePower(35.0, 12.6, 1.2, 10e6)});
  workloads.push_back({"dns-edge", 300000,
                       with_nic(MakeServerRatePower(I7NsdCurve(), Nanoseconds(4180), 4)),
                       MakeFpgaRatePower(35.0, 12.5, 0.5, 1e6)});

  // The rack's programmable ToR switch is already forwarding all traffic:
  // only the marginal program power counts (§9.4).
  auto switch_marginal = MakeSwitchMarginalPower(0.02, 350.0, 2.5e9);

  std::printf("%-14s %9s | %12s | %14s | %s\n", "workload", "rate", "fpga tip",
              "sw/fpga watts", "recommendation");
  for (const auto& w : workloads) {
    const auto fpga_advice = AdvisePlacement(w.software, w.fpga, 2e6);
    const auto switch_advice = AdvisePlacement(w.software, switch_marginal, 2e6);
    const double sw_watts = w.software(w.rate_pps);
    const double fpga_watts = w.fpga(w.rate_pps);
    std::string recommendation;
    if (switch_advice.network_always_wins) {
      recommendation = "ToR switch (marginal power ~0)";
    }
    if (fpga_advice.tipping_rate_pps.has_value() &&
        w.rate_pps >= *fpga_advice.tipping_rate_pps) {
      recommendation += recommendation.empty() ? "" : " or ";
      recommendation += "FPGA NIC";
    }
    if (recommendation.empty()) {
      recommendation = "stay in software";
    }
    std::printf("%-14s %6.0fkps | %9.1fkps | %5.1f / %5.1f W | %s\n", w.name.c_str(),
                w.rate_pps / 1000.0,
                fpga_advice.tipping_rate_pps.value_or(-1) / 1000.0, sw_watts,
                fpga_watts, recommendation.c_str());
  }

  // Energy over a 1-hour scheduling period for the consensus workload,
  // placed each way (eq. 1 of §8).
  const auto& consensus = workloads[2];
  const double packets = consensus.rate_pps * 3600;
  const double sw_energy =
      PeriodEnergyJoules(consensus.software, consensus.software(0), packets,
                         consensus.rate_pps, 3600);
  const double hw_energy = PeriodEnergyJoules(consensus.fpga, consensus.fpga(0), packets,
                                              consensus.rate_pps, 3600);
  std::printf("\nconsensus, 1h at %.0f kmsg/s: software %.0f kJ vs in-network %.0f kJ "
              "(%.1f%% saved)\n",
              consensus.rate_pps / 1000.0, sw_energy / 1000.0, hw_energy / 1000.0,
              100.0 * (sw_energy - hw_energy) / sw_energy);
  std::printf("\nsee DESIGN.md for the calibration sources of every constant.\n");
  return 0;
}
