// Backpressure under overload: drop-tail vs PFC + DCQCN flow control.
//
// The congestion counterpart of the Fig 3 capacity sweeps: one §4.1 chain
// (client -- NIC -- host) driven well past service capacity, run in the two
// regimes the flow-control subsystem distinguishes:
//
//   drop-tail (flow off) — the host rx queue overflows and sheds load
//     silently; the client sees losses and a flat, queue-bounded p99.
//   backpressure (flow on) — the host pauses its PCIe uplink at the rx
//     watermarks, the NIC propagates the pause to the client link, ECN
//     marks come back as CNPs, and the client's DCQCN machine throttles to
//     the service rate: the same overload becomes slowdown instead of loss.
//
// Two gated legs:
//
//   backpressure — the same overloaded host-only chain, flow off vs on.
//     Gated: the drop-tail run must actually shed (min drop fraction), the
//     flow run must not drop at all on the chain (server rx + PCIe), must
//     show the machinery engaged (pause frames, CNPs), and must keep
//     goodput within a ratio of the drop-tail run (backpressure slows the
//     sender down; it must not collapse the service).
//   offload — §9's host-vs-offload comparison in both regimes: the same
//     overload against the software host and against the LaKe FPGA NIC.
//     The FPGA absorbs the offered load either way; the host sheds (flow
//     off) or backpressures (flow on). Gated: the host-vs-offload p99
//     slowdown ratio must *shift* measurably when backpressure is on —
//     with flow control the host path's queueing shows up as client-visible
//     latency instead of silent loss, so the ratio grows.
//
// Modes:
//   (default)            — human-readable summary of both legs.
//   --out PATH [--quick] — writes the JSON part consumed by
//     check_bench_regression.py --flow (BENCH_flow.json, gated in CI
//     against bench/baseline_flow.json).
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/kvs/lake.h"
#include "src/kvs/memcached_server.h"
#include "src/scenarios/kvs_testbed.h"
#include "src/scenarios/scenario_spec.h"
#include "src/sim/simulation.h"

namespace {

using namespace incod;

constexpr uint64_t kKeyspace = 1024;
constexpr double kOfferedPps = 2.0e6;  // ~6x the 1-core host's capacity.
constexpr uint64_t kSeed = 42;

SimDuration RunWindow(bool quick) {
  return quick ? Milliseconds(20) : Milliseconds(60);
}

// One overloaded §4.1 chain. `offload` picks the LaKe FPGA NIC placement
// (prefilled, so gets are absorbed at device rate) vs the 1-core software
// host behind a conventional NIC.
ScenarioSpec OverloadSpec(bool offload, bool flow_on) {
  KvsTestbedOptions options;
  options.mode = offload ? KvsMode::kLake : KvsMode::kSoftwareOnly;
  ScenarioSpec spec = MakeKvsScenarioSpec(options);
  spec.name = std::string(offload ? "lake" : "host") +
              (flow_on ? "-flow" : "-droptail");
  spec.host.config.num_cores = 1;
  spec.workload.kind = ScenarioWorkloadSpec::Kind::kKvUniformGets;
  spec.workload.rate_per_second = kOfferedPps;
  spec.workload.keyspace = kKeyspace;
  spec.workload.client.node = kTestbedClientNode;
  spec.flow.enabled = flow_on;
  // Engage host ingress pause well before the rx queue capacity (1024).
  spec.flow.host.pause_high_watermark = 64;
  spec.flow.host.pause_low_watermark = 16;
  // The pacer must not be the artificial bottleneck (the offered load is
  // the arrival process), and throttled overload defers at the source
  // instead of shedding there.
  spec.flow.dcqcn_config.line_rate_pps = 2.5e6;
  spec.flow.dcqcn_config.pacer_capacity = 1 << 20;
  return spec;
}

struct FlowRun {
  double achieved_pps = 0;
  double drop_fraction = 0;   // Chain drops (server rx + PCIe) / sent.
  double p99_us = 0;
  uint64_t sent = 0;
  uint64_t received = 0;
  uint64_t chain_drops = 0;
  uint64_t pause_frames = 0;  // Host ingress pauses of the PCIe uplink.
  uint64_t cnps = 0;          // CNPs the host sent back to the client.
  double end_rate_pps = -1;   // Client DCQCN rate when the window closed.
};

FlowRun RunChain(bool offload, bool flow_on, bool quick) {
  Simulation sim(kSeed);
  ScenarioTestbed testbed(sim, OverloadSpec(offload, flow_on));
  auto* memcached = testbed.host_app_as<MemcachedServer>();
  for (uint64_t k = 0; k < kKeyspace; ++k) {
    memcached->store().Set(k, 64);
  }
  if (auto* lake = testbed.offload_app_as<LakeCache>()) {
    lake->WarmFill(0, kKeyspace, 64);
  }
  const SimDuration window = RunWindow(quick);
  sim.RunUntil(window);

  FlowRun run;
  LoadClient* client = testbed.client();
  Server* server = testbed.server();
  run.sent = client->sent();
  run.received = client->received();
  run.achieved_pps = static_cast<double>(run.received) / ToSeconds(window);
  run.p99_us = ToMicroseconds(static_cast<SimDuration>(client->latency().P99()));
  run.chain_drops = server->requests_dropped();
  if (Link* pcie = server->uplink()) {
    run.chain_drops += pcie->dropped_overflow(server);
  }
  run.drop_fraction =
      run.sent == 0 ? 0 : static_cast<double>(run.chain_drops) / run.sent;
  run.pause_frames = server->pause_frames_sent();
  run.cnps = server->cnps_sent();
  if (client->dcqcn() != nullptr) {
    run.end_rate_pps = client->dcqcn()->current_rate_pps();
  }
  return run;
}

void Print(const char* label, const FlowRun& r) {
  std::cout << label << ": goodput " << r.achieved_pps / 1000.0 << " kpps, drop fraction "
            << r.drop_fraction << " (" << r.chain_drops << "/" << r.sent
            << "), p99 " << r.p99_us << " us, pauses " << r.pause_frames
            << ", cnps " << r.cnps;
  if (r.end_rate_pps >= 0) {
    std::cout << ", dcqcn rate " << r.end_rate_pps / 1000.0 << " kpps";
  }
  std::cout << "\n";
}

int Run(bool quick, const std::string& out_path) {
  bench::PrintHeader("Backpressure under overload: drop-tail vs PFC + DCQCN",
                     "One overloaded client--NIC--host chain; flow control "
                     "converts silent rx-queue loss into pause propagation "
                     "and sender slowdown, and shifts the host-vs-offload "
                     "comparison.");

  std::cout << "offered load: " << kOfferedPps / 1000.0 << " kpps against a 1-core host ("
            << ToSeconds(RunWindow(quick)) << " s window)\n\n";

  const FlowRun host_drop = RunChain(/*offload=*/false, /*flow_on=*/false, quick);
  const FlowRun host_flow = RunChain(/*offload=*/false, /*flow_on=*/true, quick);
  std::cout << "backpressure leg (host-only chain):\n";
  Print("  drop-tail", host_drop);
  Print("  flow     ", host_flow);
  const double goodput_ratio =
      host_drop.achieved_pps == 0 ? 0 : host_flow.achieved_pps / host_drop.achieved_pps;
  std::cout << "  goodput ratio (flow / drop-tail): " << goodput_ratio << "\n\n";

  const FlowRun lake_drop = RunChain(/*offload=*/true, /*flow_on=*/false, quick);
  const FlowRun lake_flow = RunChain(/*offload=*/true, /*flow_on=*/true, quick);
  std::cout << "offload leg (LaKe FPGA absorbs the same load):\n";
  Print("  drop-tail", lake_drop);
  Print("  flow     ", lake_flow);
  const double slowdown_droptail =
      lake_drop.p99_us == 0 ? 0 : host_drop.p99_us / lake_drop.p99_us;
  const double slowdown_flow =
      lake_flow.p99_us == 0 ? 0 : host_flow.p99_us / lake_flow.p99_us;
  std::cout << "  host-vs-offload p99 slowdown: drop-tail x" << slowdown_droptail
            << ", flow x" << slowdown_flow << " (shift x"
            << (slowdown_droptail == 0 ? 0 : slowdown_flow / slowdown_droptail)
            << ")\n";

  if (out_path.empty()) {
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  bench::JsonWriter json(out);
  json.BeginObject();
  json.Field("bench", "flow");
  json.Field("build_type", bench::BuildTypeName());
  json.Field("quick", quick);
  json.BeginObject("backpressure");
  json.Field("offered_pps", kOfferedPps);
  json.Field("droptail_drop_fraction", host_drop.drop_fraction);
  json.Field("flow_drop_fraction", host_flow.drop_fraction);
  json.Field("flow_pause_frames", host_flow.pause_frames);
  json.Field("flow_cnps", host_flow.cnps);
  json.Field("flow_end_rate_pps", host_flow.end_rate_pps);
  json.Field("goodput_ratio", goodput_ratio);
  json.EndObject();
  json.BeginObject("offload");
  json.Field("droptail_slowdown", slowdown_droptail);
  json.Field("flow_slowdown", slowdown_flow);
  json.Field("slowdown_shift",
             slowdown_droptail == 0 ? 0.0 : slowdown_flow / slowdown_droptail);
  json.Field("offload_flow_drop_fraction", lake_flow.drop_fraction);
  json.Field("offload_flow_goodput_pps", lake_flow.achieved_pps);
  json.EndObject();
  json.EndObject();
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_flow [--quick] [--out PATH]\n";
      return 2;
    }
  }
  return Run(quick, out_path);
}
