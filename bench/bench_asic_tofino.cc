// §6 "Lessons from an ASIC": Tofino normalized power and the ops/watt ladder.
//
// Runs the P4xos leader+acceptor program combined with L2 forwarding on the
// switch ASIC model (32x40G snake) and reports:
//   - normalized power for forwarding-only vs +P4xos vs +diag.p4 across load,
//   - the <=2 % P4xos and 4.8 % diag overheads,
//   - the ops-per-watt ladder (software 10K's, FPGA 100K's, ASIC 10M's), and
//   - the x1000 throughput at 10 % utilization claim.
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/device/switch_asic.h"
#include "src/net/topology.h"
#include "src/paxos/p4xos.h"
#include "src/power/cpu_power.h"
#include "src/sim/simulation.h"
#include "src/stats/csv.h"

namespace incod {
namespace {

// Drives the switch's observed rate to a utilization fraction and reports
// normalized power for a program mix.
struct AsicRun {
  double normalized_forwarding;
  double normalized_with_programs;
};

AsicRun MeasureAt(double utilization, bool with_p4xos, bool with_diag) {
  Simulation sim(31);
  Topology topo(sim);
  SwitchAsicConfig config;
  config.rate_window = Milliseconds(1);
  SwitchAsic sw(sim, config);
  // Snake: one sink port is enough for the model; the rate window is what
  // drives power.
  class NullSink : public PacketSink {
   public:
    void Receive(Packet) override {}
    std::string SinkName() const override { return "sink"; }
  } sink;
  topo.ConnectToSwitch(&sw, &sink, 1);

  PaxosGroupConfig group;
  group.acceptors = {10, 11, 12};
  group.learners = {30};
  group.leader_service = 200;
  P4xosSwitchProgram leader(P4xosRole::kLeader, group, 1, 200);
  DiagProgram diag;
  if (with_p4xos) {
    sw.LoadProgram(&leader);
  }
  if (with_diag) {
    sw.LoadProgram(&diag);
  }
  // Feed packets to reach the target utilization over the 1 ms window.
  const double pps = utilization * sw.LineRatePps();
  const uint64_t packets = static_cast<uint64_t>(pps * 0.001);
  for (uint64_t i = 0; i < packets; ++i) {
    Packet pkt;
    pkt.src = 9;
    pkt.dst = 1;
    pkt.proto = AppProto::kRaw;
    sw.Receive(pkt);
  }
  AsicRun run;
  run.normalized_forwarding = sw.ForwardingOnlyWatts() / config.max_power_watts;
  run.normalized_with_programs = sw.NormalizedPower();
  return run;
}

}  // namespace
}  // namespace incod

int main() {
  using namespace incod;
  bench::PrintHeader("Section 6: ASIC (Tofino) power",
                     "Normalized power, 32x40G = 1.28 Tbps, 64 B packets. "
                     "Paper: P4xos adds <=2 %; diag.p4 adds 4.8 %; min-max "
                     "spread <20 %; idle identical with/without programs.");

  CsvTable table({"utilization", "l2fwd", "l2fwd+p4xos", "p4xos_overhead_pct",
                  "l2fwd+diag", "diag_overhead_pct"});
  for (double u : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    const auto p4xos = MeasureAt(u, true, false);
    const auto diag = MeasureAt(u, false, true);
    table.AddRow({u, p4xos.normalized_forwarding, p4xos.normalized_with_programs,
                  100.0 * (p4xos.normalized_with_programs / p4xos.normalized_forwarding -
                           1.0),
                  diag.normalized_with_programs,
                  100.0 * (diag.normalized_with_programs / diag.normalized_forwarding -
                           1.0)});
  }
  table.WriteAligned(std::cout);
  std::cout << "\n--- csv ---\n";
  table.WriteCsv(std::cout);

  // Min-max spread of the base device.
  SwitchAsicConfig config;
  std::cout << "\nmin-max forwarding spread: "
            << 100.0 * (1.0 - config.idle_power_fraction) << "% (paper: <20%)\n";

  // Ops-per-watt ladder (§6): messages per watt at peak for each target.
  // Software: 178 Kmsg/s at ~52 W wall; FPGA: 10 Mmsg/s at ~47.6 W system
  // (12.6 W board); ASIC: 2.5 Gmsg/s at 350 W.
  CsvTable ladder({"target", "peak_msgs_per_sec", "watts", "msgs_per_watt"});
  ladder.AddRow({std::string("libpaxos (CPU)"), 178e3, 52.0, 178e3 / 52.0});
  ladder.AddRow({std::string("P4xos (FPGA board)"), 10e6, 12.6 + 1.2, 10e6 / 13.8});
  ladder.AddRow({std::string("P4xos (ASIC)"), 2.5e9, 350.0, 2.5e9 / 350.0});
  std::cout << "\n";
  ladder.WriteAligned(std::cout);
  std::cout << "\n(paper ladder: 10K's / 100K's / 10M's msgs per watt)\n";

  // x1000 at 10 % utilization: ASIC at 10 % of 2.5 Gpps vs the 178 Kmsg/s
  // software peak; dynamic power 1/3 of the server's at 180 Kpps.
  const double asic_rate = 0.1 * 2.5e9;
  std::cout << "\nASIC at 10% utilization: " << asic_rate / 178e3
            << "x software peak throughput (paper: ~x1000 vs a server)\n";
  const double asic_dynamic = 350.0 * (1.0 - config.idle_power_fraction) * 0.1 +
                              350.0 * 0.02 * 0.1;  // forwarding + p4xos share
  const double server_dynamic =
      I7LibpaxosCurve().Evaluate(178e3 > 0 ? 1.0 : 0.0) - I7LibpaxosCurve().Evaluate(0.0);
  std::cout << "ASIC dynamic power at 10%: " << asic_dynamic
            << " W vs server dynamic at saturation: " << server_dynamic
            << " W (paper: ASIC's absolute dynamic power ~1/3 of the server's)\n";
  return 0;
}
