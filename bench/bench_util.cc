#include "bench/bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace incod {
namespace bench {

const char* BuildTypeName() {
#ifdef INCOD_BUILD_TYPE
  return INCOD_BUILD_TYPE;
#else
  return "unspecified";
#endif
}

void PrintHeader(const std::string& figure, const std::string& description) {
  std::cout << "\n=== " << figure << " ===\n"
            << "[build: " << BuildTypeName() << "]\n"
            << description << "\n\n";
}

void JsonWriter::Indent() {
  for (size_t i = 0; i < first_in_scope_.size(); ++i) {
    out_ << "  ";
  }
}

void JsonWriter::Prefix(const std::string* key) {
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) {
      out_ << ",";
    }
    first_in_scope_.back() = false;
    out_ << "\n";
    Indent();
  }
  if (key != nullptr) {
    out_ << '"' << *key << "\": ";
  }
}

void JsonWriter::BeginObject() {
  Prefix(nullptr);
  out_ << "{";
  first_in_scope_.push_back(true);
}

void JsonWriter::BeginObject(const std::string& key) {
  Prefix(&key);
  out_ << "{";
  first_in_scope_.push_back(true);
}

void JsonWriter::EndObject() {
  const bool empty = first_in_scope_.back();
  first_in_scope_.pop_back();
  if (!empty) {
    out_ << "\n";
    Indent();
  }
  out_ << "}";
  if (first_in_scope_.empty()) {
    out_ << "\n";
  }
}

void JsonWriter::BeginArray(const std::string& key) {
  Prefix(&key);
  out_ << "[";
  first_in_scope_.push_back(true);
}

void JsonWriter::EndArray() {
  const bool empty = first_in_scope_.back();
  first_in_scope_.pop_back();
  if (!empty) {
    out_ << "\n";
    Indent();
  }
  out_ << "]";
}

void JsonWriter::Field(const std::string& key, double value) {
  Prefix(&key);
  if (!std::isfinite(value)) {
    out_ << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ << buf;
}

void JsonWriter::Field(const std::string& key, uint64_t value) {
  Prefix(&key);
  out_ << value;
}

void JsonWriter::Field(const std::string& key, const std::string& value) {
  Prefix(&key);
  out_ << '"' << value << '"';
}

void JsonWriter::Field(const std::string& key, const char* value) {
  Field(key, std::string(value));
}

void JsonWriter::Field(const std::string& key, bool value) {
  Prefix(&key);
  out_ << (value ? "true" : "false");
}

void PrintSeries(const std::vector<SweepSeries>& series) {
  CsvTable table({"series", "offered_kpps", "achieved_kpps", "power_w", "p50_us",
                  "p99_us"});
  for (const auto& s : series) {
    for (const auto& p : s.points) {
      table.AddRow({s.name, p.offered_pps / 1000.0, p.achieved_pps / 1000.0, p.watts,
                    p.p50_us, p.p99_us});
    }
  }
  table.WriteAligned(std::cout);
  std::cout << "\n--- csv ---\n";
  table.WriteCsv(std::cout);
  std::cout << std::flush;
}

std::optional<double> CrossoverRate(const SweepSeries& sw, const SweepSeries& hw) {
  const size_t n = std::min(sw.points.size(), hw.points.size());
  for (size_t i = 0; i < n; ++i) {
    const double diff = sw.points[i].watts - hw.points[i].watts;
    if (diff >= 0) {
      if (i == 0) {
        return sw.points[0].offered_pps;
      }
      const double prev_diff = sw.points[i - 1].watts - hw.points[i - 1].watts;
      const double t = prev_diff / (prev_diff - diff);  // prev_diff < 0 <= diff.
      const double r0 = sw.points[i - 1].offered_pps;
      const double r1 = sw.points[i].offered_pps;
      return r0 + t * (r1 - r0);
    }
  }
  return std::nullopt;
}

std::vector<double> Fig3RateGrid(double max_kpps, int points) {
  // Dense at the low end (where the SW/HW crossover lives), then linear to
  // the peak. Fractions of max rate:
  static const double kLowFractions[] = {0.0125, 0.025, 0.0375, 0.05, 0.075, 0.1, 0.15};
  std::vector<double> rates;
  for (double f : kLowFractions) {
    rates.push_back(max_kpps * 1000.0 * f);
  }
  const int linear = std::max(3, points - static_cast<int>(rates.size()));
  for (int i = 1; i <= linear; ++i) {
    rates.push_back(max_kpps * 1000.0 * (0.15 + 0.85 * i / linear));
  }
  return rates;
}

}  // namespace bench
}  // namespace incod
