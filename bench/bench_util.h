// Shared helpers for the figure/table benchmark harnesses.
//
// Each bench binary regenerates one table or figure from the paper: it runs
// the relevant testbed at a sweep of offered loads, measures steady-state
// wall power and achieved throughput, and prints the same rows/series the
// paper reports (plus a CSV block for plotting).
#ifndef INCOD_BENCH_BENCH_UTIL_H_
#define INCOD_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "src/stats/csv.h"

namespace incod {
namespace bench {

struct SweepPoint {
  double offered_pps = 0;
  double achieved_pps = 0;
  double watts = 0;
  double p50_us = 0;
  double p99_us = 0;
};

// One measured deployment curve (e.g. "memcached", "LaKe").
struct SweepSeries {
  std::string name;
  std::vector<SweepPoint> points;
};

// Prints a figure header in the style the harness uses everywhere.
void PrintHeader(const std::string& figure, const std::string& description);

// Prints series as an aligned table followed by a CSV block.
void PrintSeries(const std::vector<SweepSeries>& series);

// First offered rate at which `hw` power drops to or below `sw` power
// (linear interpolation between sweep points). nullopt if never.
std::optional<double> CrossoverRate(const SweepSeries& sw, const SweepSeries& hw);

// Standard sweep grid (kpps -> pps) used by the Fig 3 benches.
std::vector<double> Fig3RateGrid(double max_kpps, int points = 12);

}  // namespace bench
}  // namespace incod

#endif  // INCOD_BENCH_BENCH_UTIL_H_
