// Shared helpers for the figure/table benchmark harnesses.
//
// Each bench binary regenerates one table or figure from the paper: it runs
// the relevant testbed at a sweep of offered loads, measures steady-state
// wall power and achieved throughput, and prints the same rows/series the
// paper reports (plus a CSV block for plotting).
#ifndef INCOD_BENCH_BENCH_UTIL_H_
#define INCOD_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "src/stats/csv.h"

namespace incod {
namespace bench {

// Build type baked in at configure time ("Release", "Debug", ...). Bench
// numbers from unoptimized builds are meaningless; PrintHeader surfaces the
// build type so a Debug measurement is visibly suspect.
const char* BuildTypeName();

// Minimal streaming JSON writer for bench artifacts (BENCH_engine.json and
// friends): nested objects, object arrays, numeric/string/bool fields,
// automatic commas. Enough for flat metric trees; not a general serializer.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void BeginObject();                        // Root object, or array element.
  void BeginObject(const std::string& key);  // Nested object.
  void EndObject();
  void BeginArray(const std::string& key);   // Array of objects/values.
  void EndArray();

  void Field(const std::string& key, double value);
  void Field(const std::string& key, uint64_t value);
  void Field(const std::string& key, const std::string& value);
  // Without this overload a string literal would silently pick the bool
  // overload (const char* -> bool is a standard conversion).
  void Field(const std::string& key, const char* value);
  void Field(const std::string& key, bool value);

 private:
  void Prefix(const std::string* key);
  void Indent();

  std::ostream& out_;
  std::vector<bool> first_in_scope_;
};

struct SweepPoint {
  double offered_pps = 0;
  double achieved_pps = 0;
  double watts = 0;
  double p50_us = 0;
  double p99_us = 0;
};

// One measured deployment curve (e.g. "memcached", "LaKe").
struct SweepSeries {
  std::string name;
  std::vector<SweepPoint> points;
};

// Prints a figure header in the style the harness uses everywhere.
void PrintHeader(const std::string& figure, const std::string& description);

// Prints series as an aligned table followed by a CSV block.
void PrintSeries(const std::vector<SweepSeries>& series);

// First offered rate at which `hw` power drops to or below `sw` power
// (linear interpolation between sweep points). nullopt if never.
std::optional<double> CrossoverRate(const SweepSeries& sw, const SweepSeries& hw);

// Standard sweep grid (kpps -> pps) used by the Fig 3 benches.
std::vector<double> Fig3RateGrid(double max_kpps, int points = 12);

}  // namespace bench
}  // namespace incod

#endif  // INCOD_BENCH_BENCH_UTIL_H_
