// Figure 3(c): DNS power vs throughput.
//
// NSD (software) vs Emu DNS (hardware) vs the standalone board. Expected
// shape: both peak near 1 Mqps (Emu is non-pipelined); Emu draws 47.5-48 W
// flat; the software line crosses it below 200 Kqps and reaches about twice
// Emu's power at peak.
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/scenarios/dns_testbed.h"
#include "src/sim/simulation.h"
#include "src/workload/dns_workload.h"

namespace incod {
namespace {

using bench::SweepPoint;
using bench::SweepSeries;

SweepPoint MeasureAt(DnsMode mode, double rate_pps) {
  Simulation sim(13);
  DnsTestbedOptions options;
  options.mode = mode;
  options.zone_size = 4096;
  DnsTestbed testbed(sim, options);
  DnsWorkloadConfig workload;
  workload.dns_service = testbed.ServiceNode();
  workload.zone_size = options.zone_size;
  if (rate_pps > 0) {
    auto& client = testbed.AddClient(LoadClientConfig{},
                                     std::make_unique<ConstantArrival>(rate_pps),
                                     MakeDnsRequestFactory(workload));
    client.Start();
  }
  sim.RunUntil(Milliseconds(50));
  if (testbed.client() != nullptr) {
    testbed.client()->ResetStats();
  }
  const SimTime measure_start = sim.Now();
  sim.RunUntil(measure_start + Milliseconds(100));
  SweepPoint point;
  point.offered_pps = rate_pps;
  if (testbed.client() != nullptr) {
    point.achieved_pps = static_cast<double>(testbed.client()->received()) / 0.1;
    point.p50_us =
        ToMicroseconds(static_cast<SimDuration>(testbed.client()->latency().P50()));
    point.p99_us =
        ToMicroseconds(static_cast<SimDuration>(testbed.client()->latency().P99()));
  }
  point.watts = testbed.meter().MeanWatts(measure_start, sim.Now());
  return point;
}

}  // namespace
}  // namespace incod

int main() {
  using namespace incod;
  using namespace incod::bench;
  PrintHeader("Figure 3(c): DNS power vs throughput",
              "NSD (software), Emu DNS (hardware), standalone board; "
              "0-1 Mqps sweep.");
  std::vector<SweepSeries> series;
  const struct {
    DnsMode mode;
    const char* name;
  } configs[] = {
      {DnsMode::kSoftwareOnly, "NSD (SW)"},
      {DnsMode::kEmu, "Emu (HW)"},
      {DnsMode::kEmuStandalone, "Standalone"},
  };
  for (const auto& config : configs) {
    SweepSeries s;
    s.name = config.name;
    s.points.push_back(MeasureAt(config.mode, 0));
    for (double rate : Fig3RateGrid(1000, 10)) {
      s.points.push_back(MeasureAt(config.mode, rate));
    }
    series.push_back(std::move(s));
  }
  PrintSeries(series);
  const auto crossover = CrossoverRate(series[0], series[1]);
  std::cout << "\nNSD->Emu power crossover: ";
  if (crossover.has_value()) {
    std::cout << *crossover / 1000.0 << " kpps (paper: <200 kpps)\n";
  } else {
    std::cout << "not found\n";
  }
  return 0;
}
