// Figure 3(b): Paxos power vs throughput, leader and acceptor roles.
//
// Four deployments per role: libpaxos (kernel), DPDK (busy poll), P4xos on
// NetFPGA in a server, and the standalone board. Expected shape: software
// rises with load and saturates at ~178 Kmsg/s; DPDK flat and high; P4xos
// ~48 W flat with the crossover near 150 Kmsg/s; standalone 18.2 W +1.2 W.
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/scenarios/paxos_testbed.h"
#include "src/sim/simulation.h"

namespace incod {
namespace {

using bench::SweepPoint;
using bench::SweepSeries;

SweepPoint MeasureAt(PaxosDeployment deployment, PaxosSut sut, double rate_pps) {
  Simulation sim(11);
  PaxosTestbedOptions options;
  options.deployment = deployment;
  options.sut = sut;
  options.client.requests_per_second = rate_pps > 0 ? rate_pps : 1.0;
  options.client.max_retries = 0;  // Raw rate sweep, no retry amplification.
  PaxosTestbed testbed(sim, options);
  if (rate_pps > 0) {
    testbed.client().Start();
  }
  sim.RunUntil(Milliseconds(50));
  const SimTime measure_start = sim.Now();
  const uint64_t completed_before = testbed.client().completed();
  sim.RunUntil(measure_start + Milliseconds(100));
  SweepPoint point;
  point.offered_pps = rate_pps;
  point.achieved_pps =
      static_cast<double>(testbed.client().completed() - completed_before) / 0.1;
  point.watts = testbed.meter().MeanWatts(measure_start, sim.Now());
  point.p50_us =
      ToMicroseconds(static_cast<SimDuration>(testbed.client().latency().P50()));
  point.p99_us =
      ToMicroseconds(static_cast<SimDuration>(testbed.client().latency().P99()));
  return point;
}

void RunRole(PaxosSut sut, const char* role_name) {
  std::cout << "\n-- " << role_name << " role --\n";
  std::vector<SweepSeries> series;
  const struct {
    PaxosDeployment deployment;
    const char* name;
  } configs[] = {
      {PaxosDeployment::kLibpaxos, "libpaxos"},
      {PaxosDeployment::kDpdk, "dpdk"},
      {PaxosDeployment::kP4xosFpga, "p4xos"},
      {PaxosDeployment::kP4xosStandalone, "standalone"},
  };
  for (const auto& config : configs) {
    SweepSeries s;
    s.name = config.name;
    s.points.push_back(MeasureAt(config.deployment, sut, 0));  // Idle.
    for (double rate : bench::Fig3RateGrid(1000, 10)) {
      s.points.push_back(MeasureAt(config.deployment, sut, rate));
    }
    series.push_back(std::move(s));
  }
  bench::PrintSeries(series);
  const auto crossover = bench::CrossoverRate(series[0], series[2]);
  std::cout << "\nlibpaxos->p4xos crossover: ";
  if (crossover.has_value()) {
    std::cout << *crossover / 1000.0 << " kpps (paper: ~150 kpps)\n";
  } else {
    std::cout << "not found\n";
  }
}

}  // namespace
}  // namespace incod

int main() {
  using namespace incod;
  bench::PrintHeader("Figure 3(b): Paxos power vs throughput",
                     "libpaxos / DPDK / P4xos-FPGA / standalone, leader and "
                     "acceptor roles, 0-1 Mmsg/s sweep.");
  RunRole(PaxosSut::kLeader, "leader");
  RunRole(PaxosSut::kAcceptor, "acceptor");
  return 0;
}
