// Datacenter-row power orchestration under correlated faults.
//
// The row-scale counterpart of bench_recovery: a 4-rack row (the multi-rack
// KVS+DNS spec, orchestrated) under one global power ledger, measured on the
// two row-specific robustness axes:
//
//   wave    — a global brownout steps the row budget below the racks'
//             aggregate offload commitments. The RowOrchestrator
//             re-apportions and pushes shrunken caps down; every rack's
//             ApplyPowerCap evicts its offload home. The gated metric is
//             the re-placement wave latency: brownout to the *last* rack's
//             eviction (the caps ride the same cross-shard hop packets use,
//             so the wave is bounded by the uplink fiber, not a control
//             plane round-trip).
//   cadence — a correlated device-death wave (a power event takes every
//             rack's LaKe board down at once) with recovery landing on each
//             rack's ToR NetCache program. Warm restores come from the
//             latest periodic checkpoint, so the post-event miss fraction
//             is a function of the per-rack checkpoint cadence: cold (no
//             checkpoints) re-learns the hot set through the sketch, any
//             warm cadence restores the cache contents. The gated metrics
//             are the fine-cadence miss fraction (near-lossless), the
//             cold-minus-fine delta, and monotonicity across the cadence
//             sweep.
//
// All quantities are simulated-time metrics, deterministic per seed (the
// row runs single-queue here; engine_diff_test proves sharded runs are
// event-identical anyway).
//
// Modes:
//   (default)            — human-readable summary of both legs.
//   --out PATH [--quick] — writes the JSON part consumed by
//     check_bench_regression.py --row (BENCH_row.json, gated in CI against
//     bench/baseline_row.json).
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/kvs/lake.h"
#include "src/kvs/memcached_server.h"
#include "src/kvs/netcache.h"
#include "src/row/row_scenario.h"
#include "src/row/row_spec.h"
#include "src/scenarios/multi_rack.h"
#include "src/sim/sharded.h"

namespace {

using namespace incod;

constexpr int kRacks = 4;
constexpr double kBudgetWatts = 120;    // Fits every rack's offload.
constexpr double kBrownoutWatts = 40;   // Fits none of them.
const SimTime kEventAt = Milliseconds(10);

MultiRackOptions RowBenchOptions() {
  MultiRackOptions options;
  options.num_racks = kRacks;
  options.kvs_rate_per_second = 150000;
  options.dns_rate_per_second = 75000;
  options.prefill = 1000;  // <= LaKe l1_entries: checkpoints cover it.
  options.keyspace = 1000;
  return options;
}

// The multi-rack spec with every rack orchestrated and pinned: long dwell
// keeps the periodic economics pass from moving apps, so the only shifts
// are the ones the measured event causes.
RowSpec OrchestratedRow(double budget_watts) {
  RowSpec row = MakeMultiRackRowSpec(RowBenchOptions());
  for (RowRackSpec& rack : row.racks) {
    rack.scenario.members[0].target.initially_active = false;
    // One fault name shared across racks so the correlated wave can address
    // "lake" in every rack at once.
    rack.scenario.members[0].target.name = "lake";
    rack.orchestrate = true;
    rack.orchestrator.check_period = Milliseconds(2);
    rack.orchestrator.min_dwell = Seconds(30);
    rack.orchestrator.sample_period = Milliseconds(2);
    RowAppSpec app;
    app.member = 0;
    rack.apps.push_back(app);
  }
  row.power.global_budget_watts = budget_watts;
  row.power.report_period = Milliseconds(2);
  row.power.apportion_period = Milliseconds(5);
  row.power.sample_period = Milliseconds(2);
  row.power.min_rack_watts = 5;
  return row;
}

ShardedSimulation::Options ShardOptions(uint64_t seed) {
  ShardedSimulation::Options options;
  options.num_shards = kRacks + 1;  // One per rack plus the spine.
  options.num_threads = 1;
  options.mode = ShardedSimulation::Mode::kSingleQueue;
  options.seed = seed;
  return options;
}

void PrefillRacks(RowScenario& row) {
  const MultiRackOptions options = RowBenchOptions();
  for (int r = 0; r < row.num_racks(); ++r) {
    auto* memcached = row.rack(r).member_host_app_as<MemcachedServer>(0);
    auto* lake = row.rack(r).member_offload_app_as<LakeCache>(0);
    for (uint64_t k = 0; k < options.prefill; ++k) {
      memcached->store().Set(k, options.value_bytes);
    }
    lake->WarmFill(0, options.prefill, options.value_bytes);
  }
}

void ForceOffloads(RowScenario& row) {
  for (int r = 0; r < row.num_racks(); ++r) {
    row.rack_orchestrator(r)->ForcePlacement(row.orchestrator_index(r, 0),
                                             0);  // LaKe FPGA.
  }
}

// --- Leg A: global-brownout re-placement wave -------------------------------

struct WaveResult {
  int racks_evicted = 0;
  double first_eviction_ms = -1;
  double wave_latency_ms = -1;  // Brownout -> last rack's eviction.
  uint64_t caps_issued = 0;
  uint64_t apportion_rounds = 0;
};

WaveResult RunWave() {
  ShardedSimulation ssim(ShardOptions(21));
  RowSpec spec = OrchestratedRow(kBudgetWatts);
  RowFaultEventSpec brownout;
  brownout.kind = RowFaultEventSpec::Kind::kGlobalBrownout;
  brownout.at = kEventAt;
  brownout.watts = kBrownoutWatts;
  spec.faults.events.push_back(brownout);
  RowScenario row(ssim, std::move(spec));
  PrefillRacks(row);
  row.Start();
  ForceOffloads(row);

  ssim.RunUntil(kEventAt + Milliseconds(5));

  WaveResult result;
  for (int r = 0; r < row.num_racks(); ++r) {
    double eviction_ms = -1;
    for (const RackDecisionRecord& record :
         row.rack_orchestrator(r)->decision_log()) {
      if (record.kind == RackDecisionRecord::Kind::kShiftHome &&
          record.at >= kEventAt) {
        eviction_ms = ToMilliseconds(record.at - kEventAt);
        break;
      }
    }
    if (eviction_ms < 0) {
      continue;
    }
    ++result.racks_evicted;
    result.first_eviction_ms = result.first_eviction_ms < 0
                                   ? eviction_ms
                                   : std::min(result.first_eviction_ms, eviction_ms);
    result.wave_latency_ms = std::max(result.wave_latency_ms, eviction_ms);
  }
  result.caps_issued = row.row_orchestrator()->caps_issued();
  result.apportion_rounds = row.row_orchestrator()->apportion_rounds();
  return result;
}

// --- Leg B: post-brownout miss fraction vs checkpoint cadence ---------------

struct CadencePoint {
  std::string label;
  double checkpoint_period_ms = 0;
  double miss_fraction = 1.0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t checkpoints = 0;
  int warm_recoveries = 0;
  double detection_ms = -1;  // Worst rack.
};

CadencePoint RunCadence(const std::string& label, SimDuration checkpoint_period,
                        bool quick) {
  ShardedSimulation ssim(ShardOptions(33));
  // Generous budget: the row apparatus runs but power never evicts — the
  // only displacement is the death wave.
  RowSpec spec = OrchestratedRow(200.0);
  for (int r = 0; r < static_cast<int>(spec.racks.size()); ++r) {
    RowRackSpec& rack = spec.racks[static_cast<size_t>(r)];
    // ASIC ToR with a NetCache program: the surviving landing spot.
    rack.scenario.tor.asic = true;
    ScenarioMemberSpec& kvs = rack.scenario.members[0];
    kvs.switch_app = "kvs";
    kvs.env.service = MultiRackScenario::KvsHostNode(r);
    rack.orchestrator.heartbeat_period = Milliseconds(1);
    rack.orchestrator.failure_threshold = 2;
    rack.orchestrator.checkpoint_period = checkpoint_period;
    rack.apps[0].switch_option = true;
  }
  AppendDeviceDeathWave(spec.faults, {0, 1, 2, 3}, "lake", kEventAt);
  RowScenario row(ssim, std::move(spec));
  PrefillRacks(row);
  row.Start();
  ForceOffloads(row);

  // Heartbeat 1 ms x threshold 2: every rack has recovered well before
  // +10 ms. Measure the landing caches' economics over a window from there.
  ssim.RunUntil(kEventAt + Milliseconds(10));
  std::vector<uint64_t> hits_base(static_cast<size_t>(kRacks));
  std::vector<uint64_t> misses_base(static_cast<size_t>(kRacks));
  auto netcache = [&row](int r) {
    return dynamic_cast<KvSwitchCache*>(
        row.rack(r).member(0).switch_program_app.get());
  };
  for (int r = 0; r < kRacks; ++r) {
    hits_base[static_cast<size_t>(r)] = netcache(r)->hits();
    misses_base[static_cast<size_t>(r)] = netcache(r)->misses_forwarded();
  }
  ssim.RunUntil(kEventAt + Milliseconds(10) +
                (quick ? Milliseconds(100) : Milliseconds(250)));

  CadencePoint point;
  point.label = label;
  point.checkpoint_period_ms = ToMilliseconds(checkpoint_period);
  for (int r = 0; r < kRacks; ++r) {
    point.hits += netcache(r)->hits() - hits_base[static_cast<size_t>(r)];
    point.misses +=
        netcache(r)->misses_forwarded() - misses_base[static_cast<size_t>(r)];
    const RackOrchestrator* orchestrator = row.rack_orchestrator(r);
    point.checkpoints += orchestrator->checkpoints_taken();
    for (const RackDecisionRecord& record : orchestrator->decision_log()) {
      if (record.kind == RackDecisionRecord::Kind::kFailure) {
        point.detection_ms = std::max(point.detection_ms,
                                      ToMilliseconds(record.at - kEventAt));
      }
      if (record.kind == RackDecisionRecord::Kind::kRecovery && record.warm) {
        ++point.warm_recoveries;
      }
    }
  }
  const uint64_t total = point.hits + point.misses;
  point.miss_fraction =
      total == 0 ? 1.0
                 : static_cast<double>(point.misses) / static_cast<double>(total);
  return point;
}

void PrintPoint(const CadencePoint& point) {
  std::cout << "  " << point.label << " (checkpoint period "
            << point.checkpoint_period_ms << " ms): miss fraction "
            << point.miss_fraction << " (" << point.hits << " hits / "
            << point.misses << " forwarded), detection " << point.detection_ms
            << " ms, checkpoints " << point.checkpoints << ", warm recoveries "
            << point.warm_recoveries << "/" << kRacks << "\n";
}

int Run(bool quick, const std::string& out_path) {
  bench::PrintHeader(
      "Datacenter-row orchestration under correlated faults",
      "A 4-rack row under one global power ledger: the brownout cap cascade's "
      "re-placement wave latency, and the post-event miss fraction as a "
      "function of the per-rack checkpoint cadence.");

  const WaveResult wave = RunWave();
  std::cout << "wave: global brownout " << kBudgetWatts << " W -> "
            << kBrownoutWatts << " W at " << ToMilliseconds(kEventAt)
            << " ms; caps cascade into per-rack evictions\n"
            << "  racks evicted " << wave.racks_evicted << "/" << kRacks
            << ", first eviction +" << wave.first_eviction_ms
            << " ms, wave latency (last rack) +" << wave.wave_latency_ms
            << " ms, caps issued " << wave.caps_issued << "\n\n";

  const CadencePoint cold = RunCadence("cold", 0, quick);
  const CadencePoint coarse = RunCadence("coarse", Milliseconds(5), quick);
  const CadencePoint fine = RunCadence("fine", Milliseconds(1), quick);
  const double delta = cold.miss_fraction - fine.miss_fraction;
  std::cout << "cadence: correlated LaKe death wave at "
            << ToMilliseconds(kEventAt)
            << " ms; recovery lands on each rack's ToR NetCache program\n";
  PrintPoint(cold);
  PrintPoint(coarse);
  PrintPoint(fine);
  std::cout << "  delta (cold - fine) miss fraction: " << delta << "\n";

  if (out_path.empty()) {
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  bench::JsonWriter json(out);
  json.BeginObject();
  json.Field("bench", "row");
  json.Field("build_type", bench::BuildTypeName());
  json.Field("quick", quick);
  json.BeginObject("wave");
  json.Field("racks", static_cast<uint64_t>(kRacks));
  json.Field("brownout_at_ms", ToMilliseconds(kEventAt));
  json.Field("budget_before_watts", kBudgetWatts);
  json.Field("budget_after_watts", kBrownoutWatts);
  json.Field("racks_evicted", static_cast<uint64_t>(wave.racks_evicted));
  json.Field("first_eviction_ms", wave.first_eviction_ms);
  json.Field("wave_latency_ms", wave.wave_latency_ms);
  json.Field("caps_issued", wave.caps_issued);
  json.Field("apportion_rounds", wave.apportion_rounds);
  json.EndObject();
  json.BeginObject("cadence");
  json.Field("racks", static_cast<uint64_t>(kRacks));
  json.Field("kill_at_ms", ToMilliseconds(kEventAt));
  json.BeginArray("points");
  for (const CadencePoint* point : {&cold, &coarse, &fine}) {
    json.BeginObject();
    json.Field("label", point->label);
    json.Field("checkpoint_period_ms", point->checkpoint_period_ms);
    json.Field("miss_fraction", point->miss_fraction);
    json.Field("hits", point->hits);
    json.Field("misses", point->misses);
    json.Field("checkpoints", point->checkpoints);
    json.Field("warm_recoveries", static_cast<uint64_t>(point->warm_recoveries));
    json.Field("detection_ms", point->detection_ms);
    json.EndObject();
  }
  json.EndArray();
  json.Field("cold_miss_fraction", cold.miss_fraction);
  json.Field("fine_miss_fraction", fine.miss_fraction);
  json.Field("delta_miss_fraction", delta);
  json.EndObject();
  json.EndObject();
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_row [--quick] [--out PATH]\n";
      return 2;
    }
  }
  return Run(quick, out_path);
}
