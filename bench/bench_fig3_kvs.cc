// Figure 3(a): KVS power vs throughput.
//
// Reproduces the memcached / LaKe / LaKe-standalone curves: server idle
// 39 W, LaKe idle 59 W, crossover around 80 Kpps, LaKe power flat with
// load (sustaining line rate at the same draw).
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/scenarios/kvs_testbed.h"
#include "src/sim/simulation.h"
#include "src/workload/client.h"

namespace incod {
namespace {

using bench::SweepPoint;
using bench::SweepSeries;

RequestFactory GetFactory(NodeId service, uint64_t keys) {
  return [service, keys](NodeId src, uint64_t id, SimTime now, Rng& rng) {
    const uint64_t key =
        static_cast<uint64_t>(rng.UniformInt(0, static_cast<int64_t>(keys) - 1));
    return MakeKvRequestPacket(src, service, KvRequest{KvOp::kGet, key, 0}, id, now);
  };
}

SweepPoint MeasureAt(KvsMode mode, double rate_pps, bool intel_nic = false) {
  Simulation sim(7);
  KvsTestbedOptions options;
  options.mode = mode;
  options.intel_nic = intel_nic;
  options.lake.l1_entries = 1024;
  KvsTestbed testbed(sim, options);
  const uint64_t keys = 1000;
  testbed.Prefill(keys, 0);  // Zero-byte values: request/response both 74 B.
  auto& client = testbed.AddClient(LoadClientConfig{},
                                   std::make_unique<ConstantArrival>(rate_pps),
                                   GetFactory(testbed.ServiceNode(), keys));
  client.Start();
  // Warm up 50 ms, then measure 100 ms of steady state.
  sim.RunUntil(Milliseconds(50));
  client.ResetStats();
  const SimTime measure_start = sim.Now();
  sim.RunUntil(measure_start + Milliseconds(100));
  SweepPoint point;
  point.offered_pps = rate_pps;
  point.achieved_pps = static_cast<double>(client.received()) / 0.1;
  point.watts = testbed.meter().MeanWatts(measure_start, sim.Now());
  point.p50_us = ToMicroseconds(static_cast<SimDuration>(client.latency().P50()));
  point.p99_us = ToMicroseconds(static_cast<SimDuration>(client.latency().P99()));
  return point;
}

SweepPoint MeasureIdle(KvsMode mode) {
  Simulation sim(7);
  KvsTestbedOptions options;
  options.mode = mode;
  KvsTestbed testbed(sim, options);
  sim.RunUntil(Milliseconds(100));
  SweepPoint point;
  point.watts = testbed.meter().MeanWatts(Milliseconds(50), sim.Now());
  return point;
}

}  // namespace
}  // namespace incod

int main() {
  using namespace incod;
  using namespace incod::bench;

  PrintHeader("Figure 3(a): KVS power vs throughput",
              "memcached (software), LaKe in-server, and LaKe standalone; "
              "0-2 Mpps sweep plus a line-rate spot check.");

  std::vector<SweepSeries> series;
  const struct {
    KvsMode mode;
    const char* name;
    double max_kpps;
  } configs[] = {
      {KvsMode::kSoftwareOnly, "memcached", 2000},
      {KvsMode::kLake, "LaKe", 2000},
      {KvsMode::kLakeStandalone, "LaKe standalone", 2000},
  };
  for (const auto& config : configs) {
    SweepSeries s;
    s.name = config.name;
    s.points.push_back(MeasureIdle(config.mode));
    for (double rate : Fig3RateGrid(config.max_kpps)) {
      s.points.push_back(MeasureAt(config.mode, rate));
    }
    series.push_back(std::move(s));
  }
  PrintSeries(series);

  const auto crossover = CrossoverRate(series[0], series[1]);
  std::cout << "\nSW->HW power crossover: ";
  if (crossover.has_value()) {
    std::cout << *crossover / 1000.0 << " kpps (paper: ~80 kpps)\n";
  } else {
    std::cout << "not found in sweep range\n";
  }

  // Line-rate spot check: LaKe sustains 13 Mpps at essentially the same
  // power as at 2 Mpps (§4.2).
  const auto spot = MeasureAt(KvsMode::kLakeStandalone, 13e6);
  std::cout << "LaKe line-rate spot: " << spot.achieved_pps / 1e6 << " Mpps at "
            << spot.watts << " W (power flat with load)\n";

  // §4.2 NIC swap: "after replacing the Mellanox NIC with an Intel X520 NIC,
  // the host became more power efficient; the crossing point moved to over
  // 300Kpps. However, the maximum throughput the server achieves using the
  // Intel NIC is lower."
  SweepSeries intel;
  intel.name = "memcached (Intel X520)";
  for (double rate : Fig3RateGrid(2000)) {
    intel.points.push_back(MeasureAt(KvsMode::kSoftwareOnly, rate, /*intel_nic=*/true));
  }
  const auto intel_cross = CrossoverRate(intel, series[1]);
  std::cout << "Intel X520 variant: crossover "
            << (intel_cross.has_value() ? *intel_cross / 1000.0 : -1.0)
            << " kpps (paper: >300 kpps), peak "
            << intel.points.back().achieved_pps / 1000.0
            << " kpps (paper: lower than Mellanox's 1000 kpps)\n";
  return 0;
}
