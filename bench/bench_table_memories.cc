// §5.2/§5.3 tables: processing cores and memory design choices.
//
// Regenerates the quantitative claims of "Lessons from an FPGA":
//  - each PE sustains ~3.3 Mqps and costs ~0.25 W; 5 PEs reach line rate,
//  - DRAM 4.8 W / SRAM 6 W; 4 GB DRAM holds 33 M value entries (x65k the
//    on-chip count); reset saves 40 %,
//  - latency: on-chip hit <=1.4 us; DRAM hit ~1.9 us; hardware miss (to the
//    host) ~13.5 us median — a ~x10 gap; software path 1.67 us median at
//    low load.
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/scenarios/kvs_testbed.h"
#include "src/sim/simulation.h"
#include "src/stats/csv.h"
#include "src/workload/client.h"

namespace incod {
namespace {

RequestFactory GetFactory(NodeId service, uint64_t first_key, uint64_t keys) {
  return [service, first_key, keys](NodeId src, uint64_t id, SimTime now, Rng& rng) {
    const uint64_t key = first_key + static_cast<uint64_t>(rng.UniformInt(
                                         0, static_cast<int64_t>(keys) - 1));
    return MakeKvRequestPacket(src, service, KvRequest{KvOp::kGet, key, 0}, id, now);
  };
}

struct LatencyResult {
  double p50_us;
  double p99_us;
};

// Measures GET latency where all requested keys live at a chosen cache level.
LatencyResult MeasureLatency(KvsMode mode, const char* level, double rate_pps) {
  Simulation sim(41);
  KvsTestbedOptions options;
  options.mode = mode;
  options.lake.l1_entries = 128;
  KvsTestbed testbed(sim, options);
  uint64_t first_key = 0;
  const uint64_t keys = 64;
  const std::string where(level);
  if (where == "l1") {
    testbed.Prefill(keys, 64);
  } else if (where == "l2") {
    // Keys present only in L2, over a range far larger than L1 so promoted
    // entries keep getting evicted and most hits stay in DRAM.
    for (uint64_t k = 1000; k < 1000 + 16384; ++k) {
      testbed.lake()->l2()->Set(k, 64);
      testbed.memcached()->store().Set(k, 64);
    }
    first_key = 1000;
  } else if (where == "host") {
    // Keys only in the host store: every hardware lookup misses. Use a
    // large key range so L1/L2 fills don't convert the workload to hits.
    for (uint64_t k = 0; k < 200000; ++k) {
      testbed.memcached()->store().Set(k, 64);
    }
    first_key = 0;
  } else {  // software path
    testbed.Prefill(keys, 64);
  }
  const uint64_t range = (where == "host") ? 200000 : (where == "l2" ? 16384 : keys);
  auto& client = testbed.AddClient(LoadClientConfig{},
                                   std::make_unique<ConstantArrival>(rate_pps),
                                   GetFactory(testbed.ServiceNode(), first_key, range));
  client.Start();
  sim.RunUntil(Milliseconds(20));
  client.ResetStats();
  sim.RunUntil(Milliseconds(120));
  LatencyResult result;
  result.p50_us = ToMicroseconds(static_cast<SimDuration>(client.latency().P50()));
  result.p99_us = ToMicroseconds(static_cast<SimDuration>(client.latency().P99()));
  return result;
}

}  // namespace
}  // namespace incod

int main() {
  using namespace incod;
  bench::PrintHeader("Section 5 tables: PEs, memories, latencies",
                     "LaKe ablations on the NetFPGA model.");

  // --- §5.2: processing cores ---
  CsvTable pes({"num_pes", "capacity_mqps", "pe_power_w", "logic_power_w"});
  for (int n : {1, 2, 3, 4, 5}) {
    LakeConfig config;
    config.num_pes = n;
    LakeCache lake(config);
    double logic = 0;
    for (const auto& m : lake.PowerModules()) {
      if (m.name.rfind("pe", 0) == 0 || m.name == "classifier") {
        logic += m.active_watts;
      }
    }
    pes.AddRow({static_cast<int64_t>(n), n * 3.3, n * kFpgaPeWatts, logic});
  }
  pes.WriteAligned(std::cout);
  std::cout << "(paper: 3.3 Mqps and ~0.25 W per PE; 2.2 W logic total at "
               "5 PEs; 5 PEs reach 10GE line rate ~13 Mqps)\n\n";

  // --- §5.3: memories ---
  CsvTable mem({"memory", "power_w", "reset_w", "entries"});
  mem.AddRow({std::string("BRAM (on-chip)"), 0.0, 0.0, static_cast<int64_t>(4096)});
  mem.AddRow({std::string("DRAM 4GB"), kFpgaDramWatts, kFpgaDramWatts * kMemResetFraction,
              static_cast<int64_t>(33000000)});
  mem.AddRow({std::string("SRAM 18MB"), kFpgaSramWatts, kFpgaSramWatts * kMemResetFraction,
              static_cast<int64_t>(4700000)});
  mem.WriteAligned(std::cout);
  std::cout << "(paper: DRAM 4.8 W holds 33 M entries = x65k on-chip; SRAM "
               "6 W holds 4.7 M free chunks = x32k; reset saves 40 %)\n\n";

  // --- §5.3: latency ladder ---
  CsvTable latency({"path", "p50_us", "p99_us"});
  const auto l1 = MeasureLatency(KvsMode::kLake, "l1", 100000);
  const auto l2 = MeasureLatency(KvsMode::kLake, "l2", 100000);
  const auto miss = MeasureLatency(KvsMode::kLake, "host", 100000);
  const auto software = MeasureLatency(KvsMode::kSoftwareOnly, "sw", 100000);
  latency.AddRow({std::string("on-chip hit (L1)"), l1.p50_us, l1.p99_us});
  latency.AddRow({std::string("DRAM hit (L2)"), l2.p50_us, l2.p99_us});
  latency.AddRow({std::string("hardware miss -> host"), miss.p50_us, miss.p99_us});
  latency.AddRow({std::string("software only (100Kqps)"), software.p50_us,
                  software.p99_us});
  latency.WriteAligned(std::cout);
  std::cout << "(paper: on-chip <=1.4 us; DRAM a bit more; HW miss 13.5 us "
               "median / 14.3 us p99 — ~x10 the hit; SW 1.67 us median / "
               "1.9 us p99 at 100 Kqps)\n";
  std::cout << "hit-to-miss ratio: x" << miss.p50_us / l1.p50_us << "\n";
  return 0;
}
