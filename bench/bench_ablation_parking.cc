// Ablation: the §9.2 parking alternatives for an inactive hardware app.
//
// The paper weighs three designs for the app while the host serves:
// keeping LaKe "programmed but inactive" (clock gated, memories in reset),
// keeping the cache warm all the time, and partial reconfiguration. It
// chooses gated parking as "the best of both performance and power
// efficiency worlds". This bench quantifies the triangle: parked watts,
// traffic lost at a shift, and warm-up misses after a shift.
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/ondemand/migrator.h"
#include "src/scenarios/kvs_testbed.h"
#include "src/sim/simulation.h"
#include "src/stats/csv.h"
#include "src/workload/client.h"

namespace incod {
namespace {

RequestFactory GetFactory(NodeId service, uint64_t keys) {
  return [service, keys](NodeId src, uint64_t id, SimTime now, Rng& rng) {
    const uint64_t key =
        static_cast<uint64_t>(rng.UniformInt(0, static_cast<int64_t>(keys) - 1));
    return MakeKvRequestPacket(src, service, KvRequest{KvOp::kGet, key, 0}, id, now);
  };
}

struct PolicyResult {
  double parked_board_watts = 0;
  uint64_t lost_requests = 0;       // Client losses around the shift.
  uint64_t warmup_misses = 0;       // Hardware misses after the shift.
  double p50_us_after = 0;          // Steady-state latency once shifted.
};

PolicyResult RunPolicy(ParkPolicy policy) {
  Simulation sim(51);
  KvsTestbedOptions options;
  options.mode = KvsMode::kLake;
  options.lake_initially_active = false;
  options.lake.l1_entries = 4096;
  KvsTestbed testbed(sim, options);
  const uint64_t keys = 2000;
  // Host store warm; hardware caches warm from the app's previous tenure.
  for (uint64_t k = 0; k < keys; ++k) {
    testbed.memcached()->store().Set(k, 64);
  }
  testbed.lake()->WarmFill(0, keys, 64);
  // Parking applies the policy: gated/reprogram reset the memories (caches
  // lost), keep-warm retains them.
  ClassifierMigrator migrator(sim, *testbed.fpga(),
                              ClassifierMigrator::Options::FromPolicy(policy));

  PolicyResult result;
  result.parked_board_watts = testbed.fpga()->PowerWatts();

  auto& client = testbed.AddClient(LoadClientConfig{},
                                   std::make_unique<ConstantArrival>(200000.0),
                                   GetFactory(testbed.ServiceNode(), keys));
  client.Start();
  sim.RunUntil(Milliseconds(100));
  sim.Schedule(0, [&] { migrator.ShiftToNetwork(); });
  sim.RunUntil(Milliseconds(400));
  result.warmup_misses = testbed.lake()->misses_to_host();
  client.mutable_latency().Reset();
  // Run past the client's loss-timeout sweep so halt-induced drops count.
  sim.RunUntil(Milliseconds(2500));
  result.lost_requests = client.lost();  // Shift-induced drops (reprogram halt).
  result.p50_us_after =
      ToMicroseconds(static_cast<SimDuration>(client.latency().P50()));
  return result;
}

}  // namespace
}  // namespace incod

int main() {
  using namespace incod;
  bench::PrintHeader("Ablation: §9.2 parking policies",
                     "Parked board power vs shift cost for gated-park (the "
                     "paper's choice), keep-warm, and partial "
                     "reconfiguration.");
  CsvTable table({"policy", "parked_board_w", "warmup_misses", "lost_requests",
                  "p50_us_after_shift"});
  for (ParkPolicy policy :
       {ParkPolicy::kGatedPark, ParkPolicy::kKeepWarm, ParkPolicy::kReprogram}) {
    const auto r = RunPolicy(policy);
    table.AddRow({std::string(ParkPolicyName(policy)), r.parked_board_watts,
                  static_cast<int64_t>(r.warmup_misses),
                  static_cast<int64_t>(r.lost_requests), r.p50_us_after});
  }
  table.WriteAligned(std::cout);
  std::cout << "\n--- csv ---\n";
  table.WriteCsv(std::cout);
  std::cout << "\n(§9.2: keeping the cache warm costs ~5 W of parked power "
               "but shifts instantly; partial reconfiguration parks deepest "
               "but halts traffic; gated parking pays only a warm-up in "
               "misses that the host absorbs at unchanged throughput.)\n";
  return 0;
}
