// Crash recovery from AppState checkpoints, warm vs cold.
//
// The robustness counterpart of the Fig 6/7 transition benches: instead of a
// controller-initiated shift, the offload target *dies* mid-service (a
// FaultInjector device-death event), the rack orchestrator's heartbeat
// detector declares it failed, and the victim app is restored onto a
// surviving placement. Two legs:
//
//   kvs   — LaKe on the NetFPGA dies; recovery lands the app on the ToR's
//           NetCache program. Warm runs checkpoint the offloaded cache to
//           the home host every 250 ms and restore it into the landing
//           placement; cold runs restart with an empty register array. The
//           gated metric is the post-recovery miss fraction at the switch.
//   paxos — the P4xos leader NIC dies; the software leader takes over. Warm
//           runs restore the checkpointed ballot+sequence into the software
//           leader (no re-learning); cold runs re-learn the sequence, Fig
//           7's ~100 ms service gap. The gated metric is the service gap
//           from the kill until sustained client completions resume.
//
// Modes:
//   (default)            — human-readable summary of both legs.
//   --out PATH [--quick] — writes the JSON part consumed by
//     check_bench_regression.py --recovery (BENCH_recovery.json, gated in
//     CI against bench/baseline_recovery.json).
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/kvs/kv_protocol.h"
#include "src/scenarios/rack_scenario.h"
#include "src/sim/simulation.h"

namespace {

using namespace incod;

constexpr uint64_t kKeyspace = 2048;  // <= LaKe l1_entries: checkpoints cover it.
constexpr double kKvsRatePps = 200000.0;
const SimTime kKillAt = Seconds(1);

RequestFactory GetFactory(NodeId service, uint64_t keys) {
  return [service, keys](NodeId src, uint64_t id, SimTime now, Rng& rng) {
    const uint64_t key =
        static_cast<uint64_t>(rng.UniformInt(0, static_cast<int64_t>(keys) - 1));
    return MakeKvRequestPacket(src, service, KvRequest{KvOp::kGet, key, 0}, id, now);
  };
}

RackOrchestratorConfig RecoveryOrchestratorConfig() {
  RackOrchestratorConfig config;
  config.heartbeat_period = Milliseconds(2);
  config.failure_threshold = 2;
  config.check_period = Milliseconds(50);
  // The benches place apps with ForcePlacement; a long dwell keeps the
  // periodic economics pass from moving them before the fault strikes.
  config.min_dwell = Seconds(30);
  return config;
}

double DetectionMs(const RackOrchestrator& orchestrator, SimTime kill_at) {
  for (const RackDecisionRecord& record : orchestrator.decision_log()) {
    if (record.kind == RackDecisionRecord::Kind::kFailure) {
      return ToMilliseconds(record.at - kill_at);
    }
  }
  return -1;
}

struct KvsRecovery {
  double detection_ms = -1;
  double post_recovery_miss_fraction = 1.0;
  std::string landed;
  bool warm_recovery = false;
  uint64_t checkpoints = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
};

KvsRecovery RunKvsRecovery(bool warm, bool quick) {
  Simulation sim(41);
  MixedRackOptions options;
  options.enable_paxos = false;
  options.kvs_switch_placement = true;
  options.orchestrator = RecoveryOrchestratorConfig();
  options.kvs_checkpoint_period = warm ? Milliseconds(250) : 0;
  options.faults.events.push_back(
      FaultEventSpec{FaultKind::kDeviceDeath, kKillAt, "netfpga-lake", 0});
  MixedRackScenario rack(sim, options);
  rack.PrefillKvs(kKeyspace, 64);

  LoadClient& client = rack.AddKvsClient(
      LoadClientConfig{}, std::make_unique<PoissonArrival>(kKvsRatePps),
      GetFactory(kRackKvsServerNode, kKeyspace));
  rack.orchestrator().Start();
  rack.orchestrator().ForcePlacement(rack.kvs_app_index(), 0);  // NetFPGA/LaKe.
  client.Start();

  // Heartbeat 2 ms x threshold 2: recovery has landed well before +10 ms.
  // Measure the switch cache's hit economics over a window starting there.
  sim.RunUntil(kKillAt + Milliseconds(10));
  const uint64_t hits_base = rack.netcache()->hits();
  const uint64_t misses_base = rack.netcache()->misses_forwarded();
  sim.RunUntil(kKillAt + Milliseconds(10) + (quick ? Milliseconds(250)
                                                   : Milliseconds(400)));

  KvsRecovery result;
  result.detection_ms = DetectionMs(rack.orchestrator(), kKillAt);
  result.checkpoints = rack.orchestrator().checkpoints_taken();
  result.hits = rack.netcache()->hits() - hits_base;
  result.misses = rack.netcache()->misses_forwarded() - misses_base;
  const uint64_t total = result.hits + result.misses;
  result.post_recovery_miss_fraction =
      total == 0 ? 1.0 : static_cast<double>(result.misses) / static_cast<double>(total);
  for (const RackDecisionRecord& record : rack.orchestrator().decision_log()) {
    if (record.kind == RackDecisionRecord::Kind::kRecovery) {
      result.landed = record.target;
      result.warm_recovery = record.warm;
    }
  }
  return result;
}

struct PaxosRecovery {
  double detection_ms = -1;
  double service_gap_ms = -1;
  bool warm_recovery = false;
  uint64_t checkpoints = 0;
  uint64_t retries = 0;
};

PaxosRecovery RunPaxosRecovery(bool warm, bool quick) {
  Simulation sim(43);
  MixedRackOptions options;
  options.orchestrator = RecoveryOrchestratorConfig();
  options.paxos_checkpoint_period = warm ? Milliseconds(100) : 0;
  // The software leader's ballot/sequence are stale by construction: only a
  // checkpoint restore into the *host* placement skips the re-learning.
  options.paxos_restore_to_home = warm;
  options.paxos_client.requests_per_second = 10000;
  options.paxos_client.retry_timeout = Milliseconds(100);
  options.faults.events.push_back(
      FaultEventSpec{FaultKind::kDeviceDeath, kKillAt, "netfpga-p4xos", 0});
  MixedRackScenario rack(sim, options);

  rack.orchestrator().Start();
  rack.orchestrator().ForcePlacement(rack.paxos_app_index(), 0);  // P4xos NIC.
  rack.paxos_client()->Start();

  // Service gap: kill -> ten sustained completions (1 ms of traffic at
  // 10 kreq/s), so a single in-flight response cannot fake a recovery.
  PaxosRecovery result;
  sim.Schedule(kKillAt, [&sim, &rack, &result] {
    const uint64_t base = rack.paxos_client()->completed() + 10;
    SchedulePeriodic(sim, Microseconds(500), Microseconds(500),
                     [&sim, &rack, &result, base] {
                       if (rack.paxos_client()->completed() < base) {
                         return true;
                       }
                       result.service_gap_ms = ToMilliseconds(sim.Now() - kKillAt);
                       return false;
                     });
  });

  sim.RunUntil(kKillAt + (quick ? Milliseconds(500) : Seconds(1)));
  result.detection_ms = DetectionMs(rack.orchestrator(), kKillAt);
  result.checkpoints = rack.orchestrator().checkpoints_taken();
  result.retries = rack.paxos_client()->retries();
  for (const RackDecisionRecord& record : rack.orchestrator().decision_log()) {
    if (record.kind == RackDecisionRecord::Kind::kRecovery) {
      result.warm_recovery = record.warm;
    }
  }
  return result;
}

void PrintKvs(const char* label, const KvsRecovery& r) {
  std::cout << label << ": detection " << r.detection_ms << " ms, landed on "
            << (r.landed.empty() ? "host" : r.landed) << ", post-recovery miss fraction "
            << r.post_recovery_miss_fraction << " (" << r.hits << " hits / " << r.misses
            << " forwarded), checkpoints " << r.checkpoints << "\n";
}

void PrintPaxos(const char* label, const PaxosRecovery& r) {
  std::cout << label << ": detection " << r.detection_ms << " ms, service gap "
            << r.service_gap_ms << " ms, retries " << r.retries << ", checkpoints "
            << r.checkpoints << "\n";
}

int Run(bool quick, const std::string& out_path) {
  bench::PrintHeader("Crash recovery from AppState checkpoints, warm vs cold",
                     "Device death mid-offload; heartbeat detection; restore "
                     "onto a surviving placement from the latest checkpoint "
                     "(warm) or from scratch (cold).");

  const KvsRecovery kvs_cold = RunKvsRecovery(/*warm=*/false, quick);
  const KvsRecovery kvs_warm = RunKvsRecovery(/*warm=*/true, quick);
  std::cout << "kvs: LaKe NIC dies at " << ToSeconds(kKillAt)
            << " s; recovery lands on the ToR NetCache program\n";
  PrintKvs("  cold", kvs_cold);
  PrintKvs("  warm", kvs_warm);
  const double kvs_delta =
      kvs_cold.post_recovery_miss_fraction - kvs_warm.post_recovery_miss_fraction;
  std::cout << "  delta (cold - warm) miss fraction: " << kvs_delta << "\n\n";

  const PaxosRecovery paxos_cold = RunPaxosRecovery(/*warm=*/false, quick);
  const PaxosRecovery paxos_warm = RunPaxosRecovery(/*warm=*/true, quick);
  std::cout << "paxos: P4xos leader NIC dies at " << ToSeconds(kKillAt)
            << " s; the software leader takes over\n";
  PrintPaxos("  cold", paxos_cold);
  PrintPaxos("  warm", paxos_warm);
  const double paxos_delta = paxos_cold.service_gap_ms - paxos_warm.service_gap_ms;
  std::cout << "  delta (cold - warm) service gap: " << paxos_delta << " ms\n";

  if (out_path.empty()) {
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  bench::JsonWriter json(out);
  json.BeginObject();
  json.Field("bench", "recovery");
  json.Field("build_type", bench::BuildTypeName());
  json.Field("quick", quick);
  json.BeginObject("kvs");
  json.Field("detection_ms", kvs_warm.detection_ms);
  json.Field("cold_post_recovery_miss_fraction", kvs_cold.post_recovery_miss_fraction);
  json.Field("warm_post_recovery_miss_fraction", kvs_warm.post_recovery_miss_fraction);
  json.Field("delta_miss_fraction", kvs_delta);
  json.Field("warm_checkpoints", kvs_warm.checkpoints);
  json.Field("warm_recovery_flag", kvs_warm.warm_recovery);
  json.Field("landed", kvs_warm.landed);
  json.EndObject();
  json.BeginObject("paxos");
  json.Field("detection_ms", paxos_warm.detection_ms);
  json.Field("cold_gap_ms", paxos_cold.service_gap_ms);
  json.Field("warm_gap_ms", paxos_warm.service_gap_ms);
  json.Field("delta_gap_ms", paxos_delta);
  json.Field("warm_checkpoints", paxos_warm.checkpoints);
  json.Field("warm_recovery_flag", paxos_warm.warm_recovery);
  json.EndObject();
  json.EndObject();
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_recovery [--quick] [--out PATH]\n";
      return 2;
    }
  }
  return Run(quick, out_path);
}
