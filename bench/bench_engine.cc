// Engine performance trajectory: BENCH_engine.json.
//
// Three measurements, recorded so every PR can see the event engine's perf
// history on the same machine:
//
//  1. Engine micro ("churn"): an identical synthetic event workload — sub-us
//     packet-like hops, same-tick bursts, ms-scale timers, schedule+cancel
//     pairs — run on three engines:
//       legacy:   a faithful replica of the seed engine (binary heap of
//                 std::function events, pending/cancelled unordered_sets)
//       heap:     Simulation EngineKind::kHeap (InlineEvent + slot table)
//       calendar: the default calendar-queue engine
//     The headline number is calendar_vs_legacy_speedup (target: >= 3x),
//     which is also what CI's bench-smoke job tracks — a ratio measured
//     within one run is far less machine-sensitive than absolute rates.
//
//  2. KVS testbed end-to-end (client -> NetFPGA LaKe -> host) at a fixed
//     offered load: events/sec and simulated packets/sec of wall time.
//
//  3. Mixed rack testbed (KVS + DNS + Paxos under the orchestrator):
//     events/sec and simulated packets/sec of wall time.
//
// Usage: bench_engine [--quick] [--out PATH]
#include <any>
#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "src/scenarios/kvs_testbed.h"
#include "src/scenarios/multi_rack.h"
#include "src/scenarios/rack_scenario.h"
#include "src/sim/sharded.h"
#include "src/sim/simulation.h"
#include "src/workload/client.h"
#include "src/workload/dns_workload.h"
#include "src/workload/etc_workload.h"

namespace incod {
namespace {

// ---------------------------------------------------------------------------
// Replica of the seed event engine (pre-calendar-queue), kept verbatim so the
// speedup baseline cannot drift as src/sim evolves: a binary heap of
// heap-allocated std::function closures with two hash-set probes per event.
// ---------------------------------------------------------------------------
class LegacySimulation {
 public:
  SimTime Now() const { return now_; }

  uint64_t Schedule(SimDuration delay, std::function<void()> fn) {
    if (delay < 0) {
      delay = 0;
    }
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  uint64_t ScheduleAt(SimTime at, std::function<void()> fn) {
    if (at < now_) {
      at = now_;
    }
    const uint64_t id = next_id_++;
    queue_.push(Event{at, next_seq_++, id, std::move(fn)});
    pending_ids_.insert(id);
    return id;
  }

  bool Cancel(uint64_t id) {
    if (pending_ids_.find(id) == pending_ids_.end()) {
      return false;
    }
    return cancelled_.insert(id).second;
  }

  bool RunNext() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      pending_ids_.erase(ev.id);
      if (cancelled_.erase(ev.id) > 0) {
        continue;
      }
      now_ = ev.at;
      ++events_executed_;
      ev.fn();
      return true;
    }
    return false;
  }

  void Run() {
    while (RunNext()) {
    }
  }

  uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    uint64_t id;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::unordered_set<uint64_t> pending_ids_;
  std::unordered_set<uint64_t> cancelled_;
};

// ---------------------------------------------------------------------------
// Synthetic churn: identical event pattern on any engine with the
// Schedule/Cancel/Run interface. 1024 concurrent sources model the in-flight
// event population of a multi-Mpps load sweep (the regime the paper's
// figures need).
//
// Each event drags a Packet-sized blob through the queue, because that is
// what the real hot path does: a Link/NIC/server event captures the Packet
// it is moving. The modern engines carry the blob inline (InlineEvent +
// variant payload); the legacy replica carries it the way the seed engine
// did — inside a heap-allocated std::function whose Packet held a
// heap-allocated std::any. Same bytes, the seed's representation.
// ---------------------------------------------------------------------------
struct ChurnParams {
  int sources = 1024;
  uint64_t events_per_source = 5000;
};

struct PacketBlob {
  unsigned char bytes[112] = {};  // ~sizeof(Packet) with its inline variant.
};
struct InlinePayload {
  PacketBlob blob;
  unsigned char* data() { return blob.bytes; }
};
struct AnyPayload {  // The seed's std::any packet payload.
  std::any blob = PacketBlob{};
  unsigned char* data() { return std::any_cast<PacketBlob>(&blob)->bytes; }
};

template <typename Sim, typename Payload>
struct ChurnSource {
  Sim* sim;
  uint64_t remaining;
  uint64_t state;  // Per-source LCG so the pattern is engine-independent.
  Payload payload;

  void operator()() {
    if (remaining == 0) {
      return;
    }
    --remaining;
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const uint64_t r = state >> 33;
    SimDuration gap = static_cast<SimDuration>(100 + r % 1500);  // Packet-like hop.
    if (r % 16 == 0) {
      gap = 0;  // Same-tick burst (FIFO path).
    } else if (r % 64 == 0) {
      gap = Milliseconds(static_cast<int64_t>(1 + r % 5));  // Far-list timer.
    }
    if (r % 32 == 0) {
      // Schedule-then-cancel pair: the on-demand controllers' timer pattern.
      const uint64_t id = sim->Schedule(gap + 50, [] {});
      sim->Cancel(id);
    }
    payload.data()[r % sizeof(PacketBlob)]++;
    sim->Schedule(gap, *this);
  }
};

struct MicroResult {
  uint64_t events = 0;
  double wall_seconds = 0;
  double events_per_sec = 0;
};

template <typename Payload, typename Sim>
MicroResult RunChurn(Sim& sim, const ChurnParams& params) {
  for (int i = 0; i < params.sources; ++i) {
    sim.Schedule(i, ChurnSource<Sim, Payload>{&sim, params.events_per_source,
                                              0x9e3779b97f4a7c15ULL * (i + 1),
                                              {}});
  }
  const auto start = std::chrono::steady_clock::now();
  sim.Run();
  const auto end = std::chrono::steady_clock::now();
  MicroResult result;
  result.events = sim.events_executed();
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  result.events_per_sec =
      result.wall_seconds > 0 ? static_cast<double>(result.events) / result.wall_seconds : 0;
  return result;
}

// ---------------------------------------------------------------------------
// Same-tick fan-in: every tick a driver schedules a burst of delay-0 events.
// On the calendar engine the burst rides the same-tick FIFO ring (append +
// pop, no sorted middle-insert); the heap engine pays a push/pop per event.
// The datapoint tracks the ring's benefit as a within-run ratio.
// ---------------------------------------------------------------------------
template <typename Sim>
struct FanInDriver {
  Sim* sim;
  uint64_t ticks_left;
  int fan;

  void operator()() {
    if (ticks_left == 0) {
      return;
    }
    --ticks_left;
    for (int i = 0; i < fan; ++i) {
      sim->Schedule(0, [] {});
    }
    sim->Schedule(Microseconds(1), *this);
  }
};

template <typename Sim>
MicroResult RunSameTickFanIn(Sim& sim, uint64_t ticks, int fan) {
  sim.Schedule(0, FanInDriver<Sim>{&sim, ticks, fan});
  const auto start = std::chrono::steady_clock::now();
  sim.Run();
  const auto end = std::chrono::steady_clock::now();
  MicroResult result;
  result.events = sim.events_executed();
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  result.events_per_sec =
      result.wall_seconds > 0 ? static_cast<double>(result.events) / result.wall_seconds : 0;
  return result;
}

// ---------------------------------------------------------------------------
// Sharded multi-rack leg: the parallel engine's scaling curve. One scenario
// (4 racks + spine, one shard each), run single-queue and parallel at 1/2/4
// worker threads. The gate ratio is parallel-4t over single-queue — both
// measured within this run, so it is robust to runner hardware.
// ---------------------------------------------------------------------------
struct ShardedLegResult {
  uint64_t events = 0;
  double wall_seconds = 0;
  double events_per_sec = 0;
};

ShardedLegResult MeasureShardedRack(ShardedSimulation::Mode mode, int threads,
                                    SimDuration sim_time) {
  ShardedSimulation::Options opt;
  opt.num_shards = 5;  // 4 racks + the spine shard.
  opt.num_threads = threads;
  opt.mode = mode;
  opt.seed = 13;
  ShardedSimulation ssim(opt);
  MultiRackScenario fabric(ssim, MultiRackOptions{});
  fabric.Start();
  const auto start = std::chrono::steady_clock::now();
  ssim.RunUntil(sim_time);
  const auto end = std::chrono::steady_clock::now();
  ShardedLegResult result;
  result.events = ssim.events_executed();
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  result.events_per_sec =
      result.wall_seconds > 0 ? static_cast<double>(result.events) / result.wall_seconds : 0;
  return result;
}

// ---------------------------------------------------------------------------
// End-to-end testbed measurements on the real (calendar) engine.
// ---------------------------------------------------------------------------
struct TestbedResult {
  double sim_seconds = 0;
  double wall_seconds = 0;
  uint64_t events_executed = 0;
  double events_per_sec = 0;
  uint64_t sim_packets = 0;       // Client-edge packets (requests + responses).
  double sim_packets_per_sec = 0;  // ...per wall-clock second.
};

TestbedResult FinishTestbed(Simulation& sim, SimTime measured, double wall_seconds,
                            uint64_t packets) {
  TestbedResult result;
  result.sim_seconds = ToSeconds(measured);
  result.wall_seconds = wall_seconds;
  result.events_executed = sim.events_executed();
  result.events_per_sec =
      wall_seconds > 0 ? static_cast<double>(sim.events_executed()) / wall_seconds : 0;
  result.sim_packets = packets;
  result.sim_packets_per_sec =
      wall_seconds > 0 ? static_cast<double>(packets) / wall_seconds : 0;
  return result;
}

TestbedResult MeasureKvsTestbed(SimDuration sim_time) {
  Simulation sim(7);
  KvsTestbedOptions options;
  options.mode = KvsMode::kLake;
  options.lake.l1_entries = 1024;
  KvsTestbed testbed(sim, options);
  const uint64_t keys = 1000;
  testbed.Prefill(keys, 0);
  auto& client = testbed.AddClient(
      LoadClientConfig{}, std::make_unique<PoissonArrival>(1000000.0),
      [service = testbed.ServiceNode(), keys](NodeId src, uint64_t id, SimTime now,
                                              Rng& rng) {
        const uint64_t key =
            static_cast<uint64_t>(rng.UniformInt(0, static_cast<int64_t>(keys) - 1));
        return MakeKvRequestPacket(src, service, KvRequest{KvOp::kGet, key, 0}, id, now);
      });
  client.Start();
  const auto start = std::chrono::steady_clock::now();
  sim.RunUntil(sim_time);
  const auto end = std::chrono::steady_clock::now();
  return FinishTestbed(sim, sim_time, std::chrono::duration<double>(end - start).count(),
                       client.sent() + client.received());
}

TestbedResult MeasureRackTestbed(SimDuration sim_time) {
  Simulation sim(11);
  MixedRackOptions options;
  options.power_budget_watts = 120.0;
  options.paxos_client.requests_per_second = 100000;
  MixedRackScenario rack(sim, options);
  rack.PrefillKvs(10000, 64);

  EtcWorkloadConfig etc_config;
  etc_config.kvs_service = kRackKvsServerNode;
  etc_config.key_population = 10000;
  EtcWorkload etc(etc_config);
  LoadClient& kvs_client = rack.AddKvsClient(
      LoadClientConfig{}, std::make_unique<PoissonArrival>(300000.0), etc.MakeFactory());

  DnsWorkloadConfig dns_config;
  dns_config.dns_service = kRackDnsServerNode;
  LoadClient& dns_client =
      rack.AddDnsClient(LoadClientConfig{}, std::make_unique<PoissonArrival>(300000.0),
                        MakeDnsRequestFactory(dns_config));

  kvs_client.Start();
  dns_client.Start();
  const auto start = std::chrono::steady_clock::now();
  sim.RunUntil(sim_time);
  const auto end = std::chrono::steady_clock::now();
  const uint64_t packets = kvs_client.sent() + kvs_client.received() + dns_client.sent() +
                           dns_client.received();
  return FinishTestbed(sim, sim_time, std::chrono::duration<double>(end - start).count(),
                       packets);
}

void WriteTestbedJson(bench::JsonWriter& json, const std::string& key,
                      const TestbedResult& result) {
  json.BeginObject(key);
  json.Field("sim_seconds", result.sim_seconds);
  json.Field("wall_seconds", result.wall_seconds);
  json.Field("events_executed", result.events_executed);
  json.Field("events_per_sec", result.events_per_sec);
  json.Field("sim_packets", result.sim_packets);
  json.Field("sim_packets_per_sec", result.sim_packets_per_sec);
  json.EndObject();
}

}  // namespace
}  // namespace incod

int main(int argc, char** argv) {
  using namespace incod;
  using namespace incod::bench;

  bool quick = false;
  std::string out_path = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_engine [--quick] [--out PATH]\n";
      return 2;
    }
  }

  PrintHeader("Engine: events/sec trajectory",
              "Calendar-queue + InlineEvent engine vs the seed heap engine "
              "(replica), plus end-to-end KVS and mixed-rack runs.");

  ChurnParams params;
  if (quick) {
    params.events_per_source = 2500;
  }

  LegacySimulation legacy;
  const MicroResult legacy_result = RunChurn<AnyPayload>(legacy, params);
  Simulation heap_sim(1, Simulation::EngineKind::kHeap);
  const MicroResult heap_result = RunChurn<InlinePayload>(heap_sim, params);
  Simulation calendar_sim(1, Simulation::EngineKind::kCalendar);
  const MicroResult calendar_result = RunChurn<InlinePayload>(calendar_sim, params);

  const double vs_legacy = legacy_result.events_per_sec > 0
                               ? calendar_result.events_per_sec / legacy_result.events_per_sec
                               : 0;
  const double vs_heap = heap_result.events_per_sec > 0
                             ? calendar_result.events_per_sec / heap_result.events_per_sec
                             : 0;

  std::cout << "micro (churn, " << calendar_result.events << " events each):\n"
            << "  legacy heap (seed replica): " << legacy_result.events_per_sec / 1e6
            << " Mev/s\n"
            << "  heap + InlineEvent/slots:   " << heap_result.events_per_sec / 1e6
            << " Mev/s\n"
            << "  calendar queue:             " << calendar_result.events_per_sec / 1e6
            << " Mev/s\n"
            << "  calendar vs legacy: x" << vs_legacy << " (target >= 3)\n"
            << "  calendar vs heap:   x" << vs_heap << "\n\n";

  const uint64_t fan_ticks = quick ? 10000 : 20000;
  Simulation fan_heap(1, Simulation::EngineKind::kHeap);
  const MicroResult fan_heap_result = RunSameTickFanIn(fan_heap, fan_ticks, 64);
  Simulation fan_calendar(1, Simulation::EngineKind::kCalendar);
  const MicroResult fan_calendar_result = RunSameTickFanIn(fan_calendar, fan_ticks, 64);
  const double fan_ratio = fan_heap_result.events_per_sec > 0
                               ? fan_calendar_result.events_per_sec /
                                     fan_heap_result.events_per_sec
                               : 0;
  std::cout << "same-tick fan-in (" << fan_calendar_result.events << " events, fan 64):\n"
            << "  heap:              " << fan_heap_result.events_per_sec / 1e6 << " Mev/s\n"
            << "  calendar (ring):   " << fan_calendar_result.events_per_sec / 1e6
            << " Mev/s (x" << fan_ratio << " vs heap)\n\n";

  const SimDuration testbed_time = quick ? Milliseconds(100) : Milliseconds(500);
  const TestbedResult kvs = MeasureKvsTestbed(testbed_time);
  std::cout << "kvs testbed:  " << kvs.events_per_sec / 1e6 << " Mev/s, "
            << kvs.sim_packets_per_sec / 1e6 << " M simulated client packets/s ("
            << kvs.events_executed << " events in " << kvs.wall_seconds << " s)\n";
  const TestbedResult rack = MeasureRackTestbed(testbed_time);
  std::cout << "rack testbed: " << rack.events_per_sec / 1e6 << " Mev/s, "
            << rack.sim_packets_per_sec / 1e6 << " M simulated client packets/s ("
            << rack.events_executed << " events in " << rack.wall_seconds << " s)\n";

  const SimDuration sharded_time = quick ? Milliseconds(200) : Milliseconds(1000);
  const ShardedLegResult sharded_single =
      MeasureShardedRack(ShardedSimulation::Mode::kSingleQueue, 1, sharded_time);
  const ShardedLegResult sharded_1t =
      MeasureShardedRack(ShardedSimulation::Mode::kParallel, 1, sharded_time);
  const ShardedLegResult sharded_2t =
      MeasureShardedRack(ShardedSimulation::Mode::kParallel, 2, sharded_time);
  const ShardedLegResult sharded_4t =
      MeasureShardedRack(ShardedSimulation::Mode::kParallel, 4, sharded_time);
  const double speedup_4t = sharded_single.events_per_sec > 0
                                ? sharded_4t.events_per_sec / sharded_single.events_per_sec
                                : 0;
  const unsigned hardware_threads = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "\nsharded rack (4 racks + spine, " << sharded_single.events
            << " events, " << hardware_threads << " hardware threads):\n"
            << "  single queue:       " << sharded_single.events_per_sec / 1e6
            << " Mev/s\n"
            << "  parallel 1 thread:  " << sharded_1t.events_per_sec / 1e6 << " Mev/s\n"
            << "  parallel 2 threads: " << sharded_2t.events_per_sec / 1e6 << " Mev/s\n"
            << "  parallel 4 threads: " << sharded_4t.events_per_sec / 1e6 << " Mev/s\n"
            << "  speedup (4t vs single queue): x" << speedup_4t;
  if (hardware_threads >= 4) {
    std::cout << " (target >= 2)\n";
  } else {
    std::cout << " (informational: only " << hardware_threads
              << " hardware threads, the >=2x gate needs 4)\n";
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  JsonWriter json(out);
  json.BeginObject();
  json.Field("bench", std::string("engine"));
  json.Field("build_type", std::string(BuildTypeName()));
  json.Field("quick", quick);
  json.BeginObject("micro");
  json.Field("events", calendar_result.events);
  json.Field("legacy_events_per_sec", legacy_result.events_per_sec);
  json.Field("heap_events_per_sec", heap_result.events_per_sec);
  json.Field("calendar_events_per_sec", calendar_result.events_per_sec);
  json.Field("calendar_vs_legacy_speedup", vs_legacy);
  json.Field("calendar_vs_heap_speedup", vs_heap);
  json.EndObject();
  json.BeginObject("same_tick");
  json.Field("events", fan_calendar_result.events);
  json.Field("fan", static_cast<uint64_t>(64));
  json.Field("heap_events_per_sec", fan_heap_result.events_per_sec);
  json.Field("calendar_events_per_sec", fan_calendar_result.events_per_sec);
  json.Field("calendar_vs_heap_speedup", fan_ratio);
  json.EndObject();
  WriteTestbedJson(json, "kvs_testbed", kvs);
  WriteTestbedJson(json, "rack_testbed", rack);
  json.BeginObject("sharded_rack");
  json.Field("racks", static_cast<uint64_t>(4));
  json.Field("hardware_threads", static_cast<uint64_t>(hardware_threads));
  json.Field("sim_seconds", ToSeconds(sharded_time));
  json.Field("events", sharded_single.events);
  json.Field("single_queue_events_per_sec", sharded_single.events_per_sec);
  json.Field("parallel_1t_events_per_sec", sharded_1t.events_per_sec);
  json.Field("parallel_2t_events_per_sec", sharded_2t.events_per_sec);
  json.Field("parallel_4t_events_per_sec", sharded_4t.events_per_sec);
  json.Field("parallel_speedup_4t", speedup_4t);
  json.EndObject();
  json.EndObject();
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
