// Figure 7: transitioning the Paxos leader between software and hardware.
//
// A central controller re-points the leader service (switch rule) from the
// software leader to the P4xos leader on the NetFPGA and back. Expected
// shape (§9.2): throughput rises and latency halves while the leader is in
// hardware; at each shift throughput drops to zero for about the client
// timeout (~100 ms) while the new leader learns the latest Paxos instance.
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/ondemand/migrator.h"
#include "src/scenarios/paxos_testbed.h"
#include "src/sim/simulation.h"
#include "src/stats/csv.h"

int main() {
  using namespace incod;
  bench::PrintHeader("Figure 7: Paxos leader software->network->software",
                     "10 kreq/s client, 100 ms retry timeout; shifts at 1 s "
                     "and 3 s (the paper's red dashed lines).");

  Simulation sim(29);
  PaxosTestbedOptions options;
  options.deployment = PaxosDeployment::kP4xosFpga;
  options.dual_leader = true;
  options.client.requests_per_second = 10000;
  options.client.retry_timeout = Milliseconds(100);
  options.client.rate_bucket = Milliseconds(100);
  PaxosTestbed testbed(sim, options);

  PaxosLeaderMigrator migrator(sim, testbed.net_switch(), kPaxosLeaderService,
                               *testbed.software_leader(), testbed.leader_port(),
                               *testbed.sut_fpga(), *testbed.fpga_leader(),
                               testbed.leader_port());
  sim.Schedule(Seconds(1), [&] { migrator.ShiftToNetwork(); });
  sim.Schedule(Seconds(3), [&] { migrator.ShiftToHost(); });

  CsvTable timeline({"time_ms", "throughput_kpps", "latency_us", "placement"});
  SchedulePeriodic(sim, Milliseconds(100), Milliseconds(100), [&] {
    const auto& series = testbed.client().completion_rate();
    const double kpps = series.empty() ? 0.0 : series.samples().back().value / 1000.0;
    timeline.AddRow({static_cast<int64_t>(ToMilliseconds(sim.Now())), kpps,
                     ToMicroseconds(static_cast<SimDuration>(
                         testbed.client().latency().P50())),
                     std::string(PlacementName(migrator.placement()))});
    testbed.client().mutable_latency().Reset();
    return sim.Now() < Seconds(5);
  });

  testbed.client().Start();
  sim.RunUntil(Seconds(5));

  timeline.WriteAligned(std::cout);
  std::cout << "\n--- csv ---\n";
  timeline.WriteCsv(std::cout);

  std::cout << "\ntransitions:";
  for (const auto& t : migrator.transitions()) {
    std::cout << " " << ToSeconds(t.at) << "s->" << PlacementName(t.to);
  }
  std::cout << "\nclient: sent " << testbed.client().sent() << ", completed "
            << testbed.client().completed() << ", retries " << testbed.client().retries()
            << " (the ~100 ms gap at each shift)\n";
  std::cout << "sequence jumps learned by leaders: hw="
            << testbed.fpga_leader()->leader()->sequence_jumps()
            << " sw=" << testbed.software_leader()->state().sequence_jumps() << "\n";
  std::cout << "learner: delivered " << testbed.learner()->state().delivered_count()
            << ", no-ops " << testbed.learner()->state().noop_count()
            << ", fill requests " << testbed.learner()->state().fill_requests_sent()
            << "\n";
  return 0;
}
