// Figure 7: transitioning the Paxos leader between software and hardware.
//
// A central controller re-points the leader service (switch rule) from the
// software leader to the P4xos leader on the NetFPGA and back. Expected
// shape (§9.2): throughput rises and latency halves while the leader is in
// hardware; at each shift throughput drops to zero for about the client
// timeout (~100 ms) while the new leader learns the latest Paxos instance.
//
// Modes:
//   (default)            — the paper's timeline reproduction (cold shifts).
//   --out PATH [--quick] — warm-vs-cold comparison: runs the same shifts
//     with transfer_state off (the paper: ballot reset + sequence
//     re-learning, ~100 ms gap) and on (the generic state-transfer path:
//     ballot+sequence ride the typed snapshot), measures the service gap at
//     each shift, and records the delta as a JSON part for
//     BENCH_transitions.json (gated in CI against
//     bench/baseline_transitions.json).
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/ondemand/migrator.h"
#include "src/scenarios/paxos_testbed.h"
#include "src/sim/simulation.h"
#include "src/stats/csv.h"

namespace {

using namespace incod;

struct GapResult {
  // Service gap after each shift: time from the classifier flip until the
  // client completes its next request.
  double to_network_gap_ms = 0;
  double to_host_gap_ms = 0;
  uint64_t completed = 0;
  uint64_t retries = 0;
};

GapResult RunTransition(bool warm, bool quick) {
  Simulation sim(29);
  PaxosTestbedOptions options;
  options.deployment = PaxosDeployment::kP4xosFpga;
  options.dual_leader = true;
  options.client.requests_per_second = 10000;
  options.client.retry_timeout = Milliseconds(100);
  options.client.rate_bucket = Milliseconds(100);
  PaxosTestbed testbed(sim, options);

  PaxosLeaderMigrator::Options migrate_options;
  migrate_options.transfer_state = warm;
  PaxosLeaderMigrator migrator(sim, testbed.net_switch(), kPaxosLeaderService,
                               *testbed.software_leader(), testbed.leader_port(),
                               *testbed.sut_fpga(), *testbed.fpga_leader(),
                               testbed.leader_port(), migrate_options);

  const SimTime shift_net_at = Seconds(1);
  const SimTime shift_host_at = quick ? Seconds(2) : Seconds(3);
  const SimTime end_at = shift_host_at + Seconds(1);

  GapResult result;
  auto measure_gap = [&](SimTime at, double* gap_ms) {
    sim.Schedule(at - sim.Now(), [&sim, &testbed, at, gap_ms] {
      const uint64_t base = testbed.client().completed();
      SchedulePeriodic(sim, Microseconds(500), Microseconds(500),
                       [&sim, &testbed, at, gap_ms, base] {
                         if (testbed.client().completed() <= base) {
                           return true;
                         }
                         *gap_ms = ToMilliseconds(sim.Now() - at);
                         return false;
                       });
    });
  };

  sim.Schedule(shift_net_at, [&] { migrator.ShiftToNetwork(); });
  measure_gap(shift_net_at, &result.to_network_gap_ms);
  sim.Schedule(shift_host_at, [&] { migrator.ShiftToHost(); });
  measure_gap(shift_host_at, &result.to_host_gap_ms);

  testbed.client().Start();
  sim.RunUntil(end_at);
  result.completed = testbed.client().completed();
  result.retries = testbed.client().retries();
  return result;
}

int RunComparison(bool quick, const std::string& out_path) {
  bench::PrintHeader("Figure 7: Paxos leader transition gap, warm vs cold",
                     "Cold: the paper's shift (ballot reset, sequence "
                     "re-learning, ~100 ms gap). Warm: ballot+sequence ride "
                     "the generic state-transfer path.");
  const GapResult cold = RunTransition(/*warm=*/false, quick);
  const GapResult warm = RunTransition(/*warm=*/true, quick);

  std::cout << "cold: to-network gap " << cold.to_network_gap_ms << " ms, to-host gap "
            << cold.to_host_gap_ms << " ms, completed " << cold.completed
            << ", retries " << cold.retries << "\n";
  std::cout << "warm: to-network gap " << warm.to_network_gap_ms << " ms, to-host gap "
            << warm.to_host_gap_ms << " ms, completed " << warm.completed
            << ", retries " << warm.retries << "\n";
  std::cout << "delta (cold - warm) to-network: "
            << cold.to_network_gap_ms - warm.to_network_gap_ms << " ms\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  bench::JsonWriter json(out);
  json.BeginObject();
  json.Field("bench", "fig7_paxos_transition");
  json.Field("build_type", bench::BuildTypeName());
  json.Field("quick", quick);
  json.BeginObject("paxos");
  json.Field("cold_to_network_gap_ms", cold.to_network_gap_ms);
  json.Field("warm_to_network_gap_ms", warm.to_network_gap_ms);
  json.Field("cold_to_host_gap_ms", cold.to_host_gap_ms);
  json.Field("warm_to_host_gap_ms", warm.to_host_gap_ms);
  json.Field("delta_to_network_gap_ms",
             cold.to_network_gap_ms - warm.to_network_gap_ms);
  json.Field("cold_retries", cold.retries);
  json.Field("warm_retries", warm.retries);
  json.Field("cold_completed", cold.completed);
  json.Field("warm_completed", warm.completed);
  json.EndObject();
  json.EndObject();
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}

int RunTimeline() {
  bench::PrintHeader("Figure 7: Paxos leader software->network->software",
                     "10 kreq/s client, 100 ms retry timeout; shifts at 1 s "
                     "and 3 s (the paper's red dashed lines).");

  Simulation sim(29);
  PaxosTestbedOptions options;
  options.deployment = PaxosDeployment::kP4xosFpga;
  options.dual_leader = true;
  options.client.requests_per_second = 10000;
  options.client.retry_timeout = Milliseconds(100);
  options.client.rate_bucket = Milliseconds(100);
  PaxosTestbed testbed(sim, options);

  PaxosLeaderMigrator migrator(sim, testbed.net_switch(), kPaxosLeaderService,
                               *testbed.software_leader(), testbed.leader_port(),
                               *testbed.sut_fpga(), *testbed.fpga_leader(),
                               testbed.leader_port());
  sim.Schedule(Seconds(1), [&] { migrator.ShiftToNetwork(); });
  sim.Schedule(Seconds(3), [&] { migrator.ShiftToHost(); });

  CsvTable timeline({"time_ms", "throughput_kpps", "latency_us", "placement"});
  SchedulePeriodic(sim, Milliseconds(100), Milliseconds(100), [&] {
    const auto& series = testbed.client().completion_rate();
    const double kpps = series.empty() ? 0.0 : series.samples().back().value / 1000.0;
    timeline.AddRow({static_cast<int64_t>(ToMilliseconds(sim.Now())), kpps,
                     ToMicroseconds(static_cast<SimDuration>(
                         testbed.client().latency().P50())),
                     std::string(PlacementName(migrator.placement()))});
    testbed.client().mutable_latency().Reset();
    return sim.Now() < Seconds(5);
  });

  testbed.client().Start();
  sim.RunUntil(Seconds(5));

  timeline.WriteAligned(std::cout);
  std::cout << "\n--- csv ---\n";
  timeline.WriteCsv(std::cout);

  std::cout << "\ntransitions:";
  for (const auto& t : migrator.transitions()) {
    std::cout << " " << ToSeconds(t.at) << "s->" << PlacementName(t.to);
  }
  std::cout << "\nclient: sent " << testbed.client().sent() << ", completed "
            << testbed.client().completed() << ", retries " << testbed.client().retries()
            << " (the ~100 ms gap at each shift)\n";
  std::cout << "sequence jumps learned by leaders: hw="
            << testbed.fpga_leader()->leader()->sequence_jumps()
            << " sw=" << testbed.software_leader()->state().sequence_jumps() << "\n";
  std::cout << "learner: delivered " << testbed.learner()->state().delivered_count()
            << ", no-ops " << testbed.learner()->state().noop_count()
            << ", fill requests " << testbed.learner()->state().fill_requests_sent()
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_fig7_paxos_transition [--quick] [--out PATH]\n";
      return 2;
    }
  }
  if (!out_path.empty()) {
    return RunComparison(quick, out_path);
  }
  return RunTimeline();
}
