// §9.3 "Real Workloads": Dynamo power variance and Google-trace analysis.
//
// Synthesizes traces with the published statistics, then runs the paper's
// analyses: windowed power-variation percentiles (Dynamo) and the
// offload-candidate count / per-node contention (Google cluster trace).
#include <iostream>

#include "bench/bench_util.h"
#include "src/sim/random.h"
#include "src/stats/csv.h"
#include "src/workload/dynamo.h"
#include "src/workload/google_trace.h"

int main() {
  using namespace incod;
  bench::PrintHeader("Section 9.3: real-workload analyses",
                     "Dynamo rack power variance; Google cluster trace "
                     "offload candidates.");

  // --- Dynamo power variance ---
  Rng rng(43);
  CsvTable dynamo({"workload", "window_s", "median_variation_pct", "p99_variation_pct",
                   "safe_for_static_offload"});
  struct TraceCase {
    const char* name;
    PowerTraceConfig config;
  };
  const TraceCase cases[] = {
      {"caching", DynamoCachingTraceConfig()},
      {"web", DynamoWebTraceConfig()},
  };
  for (const auto& c : cases) {
    Rng trace_rng = rng.Fork();
    const auto trace = SynthesizePowerTrace(c.config, trace_rng);
    for (double window : {3.0, 30.0, 60.0}) {
      const auto stats = AnalyzePowerVariation(trace, c.config.sample_period_seconds,
                                               window);
      dynamo.AddRow({std::string(c.name), window, 100.0 * stats.median,
                     100.0 * stats.p99,
                     std::string(SafeForInNetworkPlacement(stats) ? "yes" : "no")});
    }
  }
  dynamo.WriteAligned(std::cout);
  std::cout << "\n--- csv ---\n";
  dynamo.WriteCsv(std::cout);
  std::cout << "\n(paper: rack p99 12.8% @3s, 26.6% @30s; caching 9.2%/26.2% "
               "@60s; web 37.2%/62.2% @60s. Low variance -> safe to place "
               "in-network; high variance -> on-demand may bounce.)\n\n";

  // --- Google cluster trace ---
  Rng gt_rng(47);
  GoogleTraceConfig config;
  config.num_tasks = 400000;
  config.num_nodes = 2000;
  const auto tasks = SynthesizeGoogleTrace(config, gt_rng);
  const auto stats = AnalyzeOffloadCandidates(tasks, config.num_nodes);
  const double long_share = LongJobUtilizationShare(tasks, 2 * 3600);

  CsvTable google({"metric", "value"});
  google.AddRow({std::string("tasks synthesized"),
                 static_cast<int64_t>(tasks.size())});
  google.AddRow({std::string("utilization share of >=2h jobs"), long_share});
  google.AddRow({std::string("offload candidates (>=10% core, >=5 min)"),
                 static_cast<int64_t>(stats.candidate_tasks)});
  google.AddRow({std::string("candidate fraction of tasks"), stats.candidate_fraction});
  google.AddRow({std::string("candidate share of utilization"),
                 stats.utilization_share});
  google.AddRow({std::string("mean candidate cores per node"),
                 stats.mean_candidate_cores_per_node});
  google.WriteAligned(std::cout);
  std::cout << "\n--- csv ---\n";
  google.WriteCsv(std::cout);
  std::cout << "\n(paper: 90% of utilization from jobs >2h that are 5% of "
               "jobs; 1.39M candidate tasks in the full trace; 7.7 candidate "
               "cores per node per 5-min window -> offload as load "
               "*diminishes*, moving the last job to the network.)\n";
  return 0;
}
