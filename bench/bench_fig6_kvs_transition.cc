// Figure 6: transitioning the KVS from software to the network and back.
//
// Reproduces the timeline experiment of §9.2: a mutilate-style client with
// the Facebook ETC distribution drives the KVS; ChainerMN runs as a second
// workload on the host; the host-controlled on-demand controller (RAPL +
// CPU usage, 3 s sustain) shifts the KVS to LaKe and back after ChainerMN
// stops. Expected results: throughput unaffected by the transitions,
// query-hit latency improves roughly ten-fold within tens of microseconds,
// power tracks the background load.
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/ondemand/controller.h"
#include "src/ondemand/migrator.h"
#include "src/scenarios/kvs_testbed.h"
#include "src/sim/simulation.h"
#include "src/stats/csv.h"
#include "src/workload/etc_workload.h"

int main() {
  using namespace incod;
  bench::PrintHeader("Figure 6: KVS software->network->software transition",
                     "ETC client at ~16 kpps + ChainerMN background load; "
                     "host-controlled shift after 3 s sustained high power. "
                     "Red lines in the paper = transition timestamps below.");

  Simulation sim(23);
  KvsTestbedOptions options;
  options.mode = KvsMode::kLake;
  options.lake_initially_active = false;
  KvsTestbed testbed(sim, options);
  testbed.Prefill(20000, 64);

  EtcWorkloadConfig etc_config;
  etc_config.kvs_service = testbed.ServiceNode();
  etc_config.key_population = 20000;
  EtcWorkload etc(etc_config);
  LoadClientConfig client_config;
  client_config.rate_bucket = Milliseconds(500);
  auto& client = testbed.AddClient(client_config,
                                   std::make_unique<PoissonArrival>(16000.0),
                                   etc.MakeFactory());

  // Fig 6 ran without clock gating / memory reset enabled.
  ClassifierMigrator::Options migrate_options;
  migrate_options.clock_gate_when_idle = false;
  migrate_options.reset_memories_when_idle = false;
  ClassifierMigrator migrator(sim, *testbed.fpga(), migrate_options);

  RaplCounter rapl(sim, [&] { return testbed.server()->RaplPackageWatts(); });
  rapl.Start();
  HostControllerConfig controller_config;
  // Threshold near ChainerMN's steady RAPL level so the 3 s window must be
  // mostly "high" before the shift fires — the paper's "transition is
  // triggered after three seconds of sustained high load".
  controller_config.up_power_watts = 60.0;
  controller_config.up_cpu_usage = -1.0;  // Power-triggered (ChainerMN load).
  controller_config.up_window = Seconds(3);  // Fig 6: 3 s sustained.
  controller_config.down_rate_pps = 50000.0;
  controller_config.down_power_watts = 15.0;
  controller_config.down_window = Seconds(3);
  controller_config.min_dwell = Seconds(2);
  HostController controller(sim, *testbed.server(), AppProto::kKv, rapl,
                            *testbed.fpga(), migrator, controller_config);
  controller.Start();

  // ChainerMN: 3 busy cores from t=5 s to t=20 s.
  BackgroundLoad chainer(sim, *testbed.server(), 3.0);
  chainer.StartAt(Seconds(5));
  chainer.StopAt(Seconds(20));

  // Timeline sampling: throughput (hardware counter + host), latency, power.
  CsvTable timeline(
      {"time_ms", "throughput_kpps", "hit_latency_us", "power_w", "placement"});
  uint64_t last_received = 0;
  SchedulePeriodic(sim, Milliseconds(500), Milliseconds(500), [&] {
    const uint64_t received = client.received();
    const double kpps =
        static_cast<double>(received - last_received) / 0.5 / 1000.0;
    last_received = received;
    // Use the running latency histogram delta via p50 of all-so-far; for a
    // windowed view reset a private histogram from the client each period.
    timeline.AddRow({static_cast<int64_t>(ToMilliseconds(sim.Now())), kpps,
                     ToMicroseconds(static_cast<SimDuration>(client.latency().P50())),
                     testbed.meter().InstantWatts(),
                     std::string(PlacementName(migrator.placement()))});
    // Reset the latency histogram so each sample reflects the last window.
    client.mutable_latency().Reset();
    return sim.Now() < Seconds(30);
  });

  client.Start();
  sim.RunUntil(Seconds(30));

  timeline.WriteAligned(std::cout);
  std::cout << "\n--- csv ---\n";
  timeline.WriteCsv(std::cout);

  std::cout << "\ntransitions:";
  for (const auto& t : migrator.transitions()) {
    std::cout << " " << ToSeconds(t.at) << "s->" << PlacementName(t.to);
  }
  std::cout << "\nhardware hits: " << testbed.lake()->l1_hits() + testbed.lake()->l2_hits()
            << ", misses to host: " << testbed.lake()->misses_to_host()
            << "\nclient received: " << client.received() << " of " << client.sent()
            << " sent\n";
  return 0;
}
