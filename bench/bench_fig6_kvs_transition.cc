// Figure 6: transitioning the KVS from software to the network and back.
//
// Reproduces the timeline experiment of §9.2: a mutilate-style client with
// the Facebook ETC distribution drives the KVS; ChainerMN runs as a second
// workload on the host; the host-controlled on-demand controller (RAPL +
// CPU usage, 3 s sustain) shifts the KVS to LaKe and back after ChainerMN
// stops. Expected results: throughput unaffected by the transitions,
// query-hit latency improves roughly ten-fold within tens of microseconds,
// power tracks the background load.
//
// Modes:
//   (default)            — the paper's timeline reproduction (cold shifts).
//   --out PATH [--quick] — warm-vs-cold comparison: shifts the KVS into
//     LaKe with transfer_state off (the paper: caches start cold, every
//     lookup punts to the host until egress observation re-warms them) and
//     on (the generic state-transfer path: the host store's LRU contents
//     arrive in LaKe's caches with the flip), measures the post-shift miss
//     fraction and hit latency, and records the delta as a JSON part for
//     BENCH_transitions.json (gated in CI against
//     bench/baseline_transitions.json).
//   The comparison additionally runs a SmartNIC leg: the same warm-vs-cold
//   shift onto a §10 AccelNet-class board hosting the registry KVS through
//   a ScenarioSpec (kvs_smartnic section, gated like the FPGA leg).
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/app/smartnic_app.h"
#include "src/kvs/lake.h"
#include "src/kvs/memcached_server.h"
#include "src/ondemand/controller.h"
#include "src/ondemand/migrator.h"
#include "src/scenarios/kvs_testbed.h"
#include "src/scenarios/scenario_spec.h"
#include "src/sim/simulation.h"
#include "src/stats/csv.h"
#include "src/workload/etc_workload.h"

namespace {

using namespace incod;

struct TransitionResult {
  // Fraction of classifier-diverted lookups that missed to the host in the
  // measurement window right after the shift (cold caches -> near 1).
  double post_shift_miss_fraction = 0;
  double post_shift_p50_us = 0;
  uint64_t window_misses = 0;
  uint64_t window_hits = 0;
};

// Shared measurement protocol for every warm-vs-cold leg: ETC client
// against a pre-warmed authoritative store, one shift into the network at
// 1 s, miss fraction + p50 over the post-shift window. Only the testbed
// (which offload substrate hosts LaKe) differs between legs.
TransitionResult MeasureTransition(Simulation& sim, ClassifierMigrator& migrator,
                                   LakeCache& lake, LoadClient& client, bool quick) {
  const SimTime shift_at = Seconds(1);
  const SimDuration window = quick ? Milliseconds(200) : Milliseconds(500);

  TransitionResult result;
  uint64_t hits_at_shift = 0;
  uint64_t misses_at_shift = 0;
  sim.Schedule(shift_at, [&] {
    migrator.ShiftToNetwork();
    hits_at_shift = lake.l1_hits() + lake.l2_hits();
    misses_at_shift = lake.misses_to_host();
    client.mutable_latency().Reset();
  });
  sim.Schedule(shift_at + window, [&] {
    result.window_hits = lake.l1_hits() + lake.l2_hits() - hits_at_shift;
    result.window_misses = lake.misses_to_host() - misses_at_shift;
    const uint64_t total = result.window_hits + result.window_misses;
    result.post_shift_miss_fraction =
        total == 0 ? 0.0 : static_cast<double>(result.window_misses) / total;
    result.post_shift_p50_us =
        ToMicroseconds(static_cast<SimDuration>(client.latency().P50()));
  });

  client.Start();
  sim.RunUntil(shift_at + window + Milliseconds(50));
  return result;
}

constexpr uint64_t kTransitionKeys = 20000;

// The workload must outlive the client (MakeFactory captures it).
EtcWorkload MakeTransitionWorkload(NodeId service) {
  EtcWorkloadConfig etc_config;
  etc_config.kvs_service = service;
  etc_config.key_population = kTransitionKeys;
  return EtcWorkload(etc_config);
}

LoadClientConfig TransitionClientConfig() {
  LoadClientConfig client_config;
  client_config.rate_bucket = Milliseconds(500);
  return client_config;
}

TransitionResult RunTransition(bool warm, bool quick) {
  Simulation sim(23);
  KvsTestbedOptions options;
  options.mode = KvsMode::kLake;
  options.lake_initially_active = false;
  KvsTestbed testbed(sim, options);
  // Warm only the authoritative host store: LaKe's caches hold whatever the
  // shift (and subsequent traffic) brings them.
  for (uint64_t k = 0; k < kTransitionKeys; ++k) {
    testbed.memcached()->store().Set(k, 64);
  }
  EtcWorkload etc = MakeTransitionWorkload(testbed.ServiceNode());
  LoadClient& client =
      testbed.AddClient(TransitionClientConfig(),
                        std::make_unique<PoissonArrival>(16000.0), etc.MakeFactory());

  // Fig 6 ran without clock gating / memory reset enabled; the warm mode
  // additionally carries the store contents through the generic transfer.
  ClassifierMigrator::Options migrate_options =
      ClassifierMigrator::Options::FromPolicy(ParkPolicy::kKeepWarm);
  migrate_options.transfer_state = warm;
  ClassifierMigrator migrator(sim, *testbed.fpga(), migrate_options,
                              testbed.memcached(), testbed.lake());
  return MeasureTransition(sim, migrator, *testbed.lake(), client, quick);
}

// The SmartNIC leg of the comparison: the same host store and ETC client,
// but the offload placement is the registry KVS hosted on an AccelNet-class
// SmartNIC, built declaratively from a ScenarioSpec (PR 5's fourth
// substrate). Cold shifts start the board's caches empty; warm shifts carry
// the store through the generic state-transfer path.
TransitionResult RunSmartNicTransition(bool warm, bool quick) {
  Simulation sim(23);
  ScenarioSpec spec;
  spec.name = "fig6-smartnic";
  spec.host.config.name = "kvs-host";
  spec.host.config.node = 1;
  spec.host.apps = {"kvs"};
  spec.target.kind = ScenarioTargetKind::kSmartNic;
  spec.target.name = "kvs-smartnic";
  spec.target.smartnic_preset = "accelnet-fpga";
  spec.target.device_node = 50;
  spec.target.app = "kvs";
  spec.target.initially_active = false;
  ScenarioTestbed testbed(sim, std::move(spec));
  auto* memcached = testbed.host_app_as<MemcachedServer>(0);
  auto* hosted = testbed.offload_app_as<SmartNicHostedApp>();
  auto* lake = hosted->inner_as<LakeCache>();

  for (uint64_t k = 0; k < kTransitionKeys; ++k) {
    memcached->store().Set(k, 64);
  }
  EtcWorkload etc = MakeTransitionWorkload(testbed.ServiceNode());
  LoadClient& client =
      testbed.AddClient(TransitionClientConfig(),
                        std::make_unique<PoissonArrival>(16000.0), etc.MakeFactory());

  ClassifierMigrator::Options migrate_options =
      ClassifierMigrator::Options::FromPolicy(ParkPolicy::kKeepWarm);
  migrate_options.transfer_state = warm;
  ClassifierMigrator migrator(sim, *testbed.smartnic(), migrate_options, memcached,
                              testbed.offload_app());
  return MeasureTransition(sim, migrator, *lake, client, quick);
}

int RunComparison(bool quick, const std::string& out_path) {
  bench::PrintHeader("Figure 6: KVS transition warmth, warm vs cold",
                     "Cold: the paper's classifier flip (LaKe starts empty, "
                     "misses punt to the host). Warm: the host store's LRU "
                     "contents ride the generic state-transfer path.");
  const TransitionResult cold = RunTransition(/*warm=*/false, quick);
  const TransitionResult warm = RunTransition(/*warm=*/true, quick);
  const TransitionResult nic_cold = RunSmartNicTransition(/*warm=*/false, quick);
  const TransitionResult nic_warm = RunSmartNicTransition(/*warm=*/true, quick);

  std::cout << "cold: post-shift miss fraction " << cold.post_shift_miss_fraction
            << " (" << cold.window_misses << " misses / " << cold.window_hits
            << " hits), p50 " << cold.post_shift_p50_us << " us\n";
  std::cout << "warm: post-shift miss fraction " << warm.post_shift_miss_fraction
            << " (" << warm.window_misses << " misses / " << warm.window_hits
            << " hits), p50 " << warm.post_shift_p50_us << " us\n";
  std::cout << "delta (cold - warm) miss fraction: "
            << cold.post_shift_miss_fraction - warm.post_shift_miss_fraction << "\n";
  std::cout << "smartnic cold: post-shift miss fraction "
            << nic_cold.post_shift_miss_fraction << " (" << nic_cold.window_misses
            << " misses / " << nic_cold.window_hits << " hits)\n";
  std::cout << "smartnic warm: post-shift miss fraction "
            << nic_warm.post_shift_miss_fraction << " (" << nic_warm.window_misses
            << " misses / " << nic_warm.window_hits << " hits)\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  bench::JsonWriter json(out);
  json.BeginObject();
  json.Field("bench", "fig6_kvs_transition");
  json.Field("build_type", bench::BuildTypeName());
  json.Field("quick", quick);
  json.BeginObject("kvs");
  json.Field("cold_post_shift_miss_fraction", cold.post_shift_miss_fraction);
  json.Field("warm_post_shift_miss_fraction", warm.post_shift_miss_fraction);
  json.Field("delta_miss_fraction",
             cold.post_shift_miss_fraction - warm.post_shift_miss_fraction);
  json.Field("cold_post_shift_p50_us", cold.post_shift_p50_us);
  json.Field("warm_post_shift_p50_us", warm.post_shift_p50_us);
  json.Field("cold_window_misses", cold.window_misses);
  json.Field("warm_window_misses", warm.window_misses);
  json.EndObject();
  json.BeginObject("kvs_smartnic");
  json.Field("cold_post_shift_miss_fraction", nic_cold.post_shift_miss_fraction);
  json.Field("warm_post_shift_miss_fraction", nic_warm.post_shift_miss_fraction);
  json.Field("delta_miss_fraction",
             nic_cold.post_shift_miss_fraction - nic_warm.post_shift_miss_fraction);
  json.Field("cold_post_shift_p50_us", nic_cold.post_shift_p50_us);
  json.Field("warm_post_shift_p50_us", nic_warm.post_shift_p50_us);
  json.Field("cold_window_misses", nic_cold.window_misses);
  json.Field("warm_window_misses", nic_warm.window_misses);
  json.EndObject();
  json.EndObject();
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}

int RunTimeline() {
  bench::PrintHeader("Figure 6: KVS software->network->software transition",
                     "ETC client at ~16 kpps + ChainerMN background load; "
                     "host-controlled shift after 3 s sustained high power. "
                     "Red lines in the paper = transition timestamps below.");

  Simulation sim(23);
  KvsTestbedOptions options;
  options.mode = KvsMode::kLake;
  options.lake_initially_active = false;
  KvsTestbed testbed(sim, options);
  testbed.Prefill(20000, 64);

  EtcWorkloadConfig etc_config;
  etc_config.kvs_service = testbed.ServiceNode();
  etc_config.key_population = 20000;
  EtcWorkload etc(etc_config);
  LoadClientConfig client_config;
  client_config.rate_bucket = Milliseconds(500);
  auto& client = testbed.AddClient(client_config,
                                   std::make_unique<PoissonArrival>(16000.0),
                                   etc.MakeFactory());

  // Fig 6 ran without clock gating / memory reset enabled.
  ClassifierMigrator::Options migrate_options;
  migrate_options.clock_gate_when_idle = false;
  migrate_options.reset_memories_when_idle = false;
  ClassifierMigrator migrator(sim, *testbed.fpga(), migrate_options);

  RaplCounter rapl(sim, [&] { return testbed.server()->RaplPackageWatts(); });
  rapl.Start();
  HostControllerConfig controller_config;
  // Threshold near ChainerMN's steady RAPL level so the 3 s window must be
  // mostly "high" before the shift fires — the paper's "transition is
  // triggered after three seconds of sustained high load".
  controller_config.up_power_watts = 60.0;
  controller_config.up_cpu_usage = -1.0;  // Power-triggered (ChainerMN load).
  controller_config.up_window = Seconds(3);  // Fig 6: 3 s sustained.
  controller_config.down_rate_pps = 50000.0;
  controller_config.down_power_watts = 15.0;
  controller_config.down_window = Seconds(3);
  controller_config.min_dwell = Seconds(2);
  HostController controller(sim, *testbed.server(), AppProto::kKv, rapl,
                            *testbed.fpga(), migrator, controller_config);
  controller.Start();

  // ChainerMN: 3 busy cores from t=5 s to t=20 s.
  BackgroundLoad chainer(sim, *testbed.server(), 3.0);
  chainer.StartAt(Seconds(5));
  chainer.StopAt(Seconds(20));

  // Timeline sampling: throughput (hardware counter + host), latency, power.
  CsvTable timeline(
      {"time_ms", "throughput_kpps", "hit_latency_us", "power_w", "placement"});
  uint64_t last_received = 0;
  SchedulePeriodic(sim, Milliseconds(500), Milliseconds(500), [&] {
    const uint64_t received = client.received();
    const double kpps =
        static_cast<double>(received - last_received) / 0.5 / 1000.0;
    last_received = received;
    // Use the running latency histogram delta via p50 of all-so-far; for a
    // windowed view reset a private histogram from the client each period.
    timeline.AddRow({static_cast<int64_t>(ToMilliseconds(sim.Now())), kpps,
                     ToMicroseconds(static_cast<SimDuration>(client.latency().P50())),
                     testbed.meter().InstantWatts(),
                     std::string(PlacementName(migrator.placement()))});
    // Reset the latency histogram so each sample reflects the last window.
    client.mutable_latency().Reset();
    return sim.Now() < Seconds(30);
  });

  client.Start();
  sim.RunUntil(Seconds(30));

  timeline.WriteAligned(std::cout);
  std::cout << "\n--- csv ---\n";
  timeline.WriteCsv(std::cout);

  std::cout << "\ntransitions:";
  for (const auto& t : migrator.transitions()) {
    std::cout << " " << ToSeconds(t.at) << "s->" << PlacementName(t.to);
  }
  std::cout << "\nhardware hits: " << testbed.lake()->l1_hits() + testbed.lake()->l2_hits()
            << ", misses to host: " << testbed.lake()->misses_to_host()
            << "\nclient received: " << client.received() << " of " << client.sent()
            << " sent\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_fig6_kvs_transition [--quick] [--out PATH]\n";
      return 2;
    }
  }
  if (!out_path.empty()) {
    return RunComparison(quick, out_path);
  }
  return RunTimeline();
}
