// Google-benchmark microbenchmarks for the hot data structures: the event
// queue, KV store, histogram, Zipf sampler, and Paxos role state machines.
// These bound the simulator's own overhead (the "substrate" cost) and guard
// against regressions that would distort the figure benches' runtimes.
#include <benchmark/benchmark.h>

#include "src/kvs/kv_store.h"
#include "src/paxos/roles.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/stats/histogram.h"

namespace incod {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    for (int i = 0; i < state.range(0); ++i) {
      sim.Schedule(i, [] {});
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void BM_KvStoreSetGet(benchmark::State& state) {
  KvStore store(static_cast<size_t>(state.range(0)));
  Rng rng(1);
  uint64_t key = 0;
  for (auto _ : state) {
    store.Set(key, 64);
    uint32_t bytes;
    benchmark::DoNotOptimize(store.Get(key / 2, &bytes));
    ++key;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_KvStoreSetGet)->Arg(1024)->Arg(1 << 16);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  uint64_t v = 1;
  for (auto _ : state) {
    histogram.Record(v);
    v = v * 1664525 + 1013904223;
    v &= (UINT64_C(1) << 30) - 1;
    v |= 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  Histogram histogram;
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) {
    histogram.Record(static_cast<uint64_t>(rng.UniformInt(1, 1 << 20)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.P99());
  }
}
BENCHMARK(BM_HistogramQuantile);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(3);
  ZipfDistribution zipf(static_cast<uint64_t>(state.range(0)), 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(1000000);

void BM_PaxosRoundTrip(benchmark::State& state) {
  PaxosGroupConfig group;
  group.acceptors = {10, 11, 12};
  group.learners = {30};
  group.leader_service = 200;
  LeaderState leader(group, 1);
  AcceptorState acceptors[3] = {{group, 0}, {group, 1}, {group, 2}};
  LearnerState learner(group);
  PaxosValue value = 1;
  for (auto _ : state) {
    PaxosMessage request;
    request.type = PaxosMsgType::kClientRequest;
    request.value = ++value;
    request.client = 100;
    for (const auto& p2a : leader.HandleMessage(request)) {
      for (auto& acceptor : acceptors) {
        if (p2a.dst == 10 + acceptor.acceptor_id()) {
          for (const auto& p2b : acceptor.HandleMessage(p2a.msg)) {
            benchmark::DoNotOptimize(learner.HandleMessage(p2b.msg, 0));
          }
        }
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PaxosRoundTrip);

}  // namespace
}  // namespace incod

BENCHMARK_MAIN();
