// Figure 5: power consumption with in-network computing on demand.
//
// For each application, sweep the offered rate with an on-demand controller
// active: at low rates the software serves (software idle power); past the
// controller threshold the workload shifts to the network and power follows
// the (flat) hardware curve. The dashed software-only lines are measured
// alongside. The paper's claim: on demand "saves up to 50% of the power
// compared with software-based solutions".
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/ondemand/controller.h"
#include "src/ondemand/migrator.h"
#include "src/scenarios/dns_testbed.h"
#include "src/scenarios/kvs_testbed.h"
#include "src/scenarios/paxos_testbed.h"
#include "src/sim/simulation.h"
#include "src/workload/dns_workload.h"

namespace incod {
namespace {

using bench::SweepPoint;
using bench::SweepSeries;

NetworkControllerConfig FastController() {
  NetworkControllerConfig config;
  config.up_rate_pps = 150000;
  config.up_window = Milliseconds(300);
  config.down_rate_pps = 50000;
  config.down_window = Milliseconds(300);
  config.check_period = Milliseconds(50);
  config.min_dwell = Milliseconds(200);
  return config;
}

RequestFactory GetFactory(NodeId service, uint64_t keys) {
  return [service, keys](NodeId src, uint64_t id, SimTime now, Rng& rng) {
    const uint64_t key =
        static_cast<uint64_t>(rng.UniformInt(0, static_cast<int64_t>(keys) - 1));
    return MakeKvRequestPacket(src, service, KvRequest{KvOp::kGet, key, 0}, id, now);
  };
}

SweepPoint MeasureKvs(double rate_pps, bool on_demand) {
  Simulation sim(19);
  KvsTestbedOptions options;
  options.mode = on_demand ? KvsMode::kLake : KvsMode::kSoftwareOnly;
  options.lake_initially_active = false;
  KvsTestbed testbed(sim, options);
  testbed.Prefill(1000, 64);
  auto& client = testbed.AddClient(LoadClientConfig{},
                                   std::make_unique<ConstantArrival>(rate_pps),
                                   GetFactory(testbed.ServiceNode(), 1000));
  std::unique_ptr<ClassifierMigrator> migrator;
  std::unique_ptr<NetworkController> controller;
  if (on_demand) {
    migrator = std::make_unique<ClassifierMigrator>(sim, *testbed.fpga());
    controller = std::make_unique<NetworkController>(sim, *testbed.fpga(), *migrator,
                                                     FastController());
    controller->Start();
  }
  client.Start();
  // Let the controller settle, then measure.
  sim.RunUntil(Seconds(1));
  const SimTime measure_start = sim.Now();
  sim.RunUntil(measure_start + Milliseconds(200));
  SweepPoint point;
  point.offered_pps = rate_pps;
  point.watts = testbed.meter().MeanWatts(measure_start, sim.Now());
  return point;
}

SweepPoint MeasureDns(double rate_pps, bool on_demand) {
  Simulation sim(19);
  DnsTestbedOptions options;
  options.mode = on_demand ? DnsMode::kEmu : DnsMode::kSoftwareOnly;
  options.emu_initially_active = false;
  DnsTestbed testbed(sim, options);
  DnsWorkloadConfig workload;
  workload.dns_service = testbed.ServiceNode();
  workload.zone_size = options.zone_size;
  auto& client = testbed.AddClient(LoadClientConfig{},
                                   std::make_unique<ConstantArrival>(rate_pps),
                                   MakeDnsRequestFactory(workload));
  std::unique_ptr<ClassifierMigrator> migrator;
  std::unique_ptr<NetworkController> controller;
  if (on_demand) {
    migrator = std::make_unique<ClassifierMigrator>(sim, *testbed.fpga());
    controller = std::make_unique<NetworkController>(sim, *testbed.fpga(), *migrator,
                                                     FastController());
    controller->Start();
  }
  client.Start();
  sim.RunUntil(Seconds(1));
  const SimTime measure_start = sim.Now();
  sim.RunUntil(measure_start + Milliseconds(200));
  SweepPoint point;
  point.offered_pps = rate_pps;
  point.watts = testbed.meter().MeanWatts(measure_start, sim.Now());
  return point;
}

SweepPoint MeasurePaxos(double rate_pps, bool on_demand) {
  Simulation sim(19);
  PaxosTestbedOptions options;
  if (on_demand) {
    options.deployment = PaxosDeployment::kP4xosFpga;
    options.dual_leader = true;
  } else {
    options.deployment = PaxosDeployment::kLibpaxos;  // Software reference.
  }
  options.client.requests_per_second = rate_pps;
  options.client.max_retries = 2;
  PaxosTestbed testbed(sim, options);
  std::unique_ptr<PaxosLeaderMigrator> migrator;
  std::unique_ptr<NetworkController> controller;
  if (on_demand) {
    migrator = std::make_unique<PaxosLeaderMigrator>(
        sim, testbed.net_switch(), kPaxosLeaderService, *testbed.software_leader(),
        testbed.leader_port(), *testbed.sut_fpga(), *testbed.fpga_leader(),
        testbed.leader_port());
    controller = std::make_unique<NetworkController>(sim, *testbed.sut_fpga(), *migrator,
                                                     FastController());
    controller->Start();
  }
  testbed.client().Start();
  sim.RunUntil(Seconds(1));
  const SimTime measure_start = sim.Now();
  sim.RunUntil(measure_start + Milliseconds(200));
  SweepPoint point;
  point.offered_pps = rate_pps;
  point.watts = testbed.meter().MeanWatts(measure_start, sim.Now());
  return point;
}

}  // namespace
}  // namespace incod

int main() {
  using namespace incod;
  using namespace incod::bench;
  PrintHeader("Figure 5: in-network computing on demand",
              "Solid: on-demand (controller-driven placement); dashed: "
              "software-only. Rates 0-1.2 Mpps.");

  std::vector<SweepSeries> series;
  const std::vector<double> rates = {25000,  50000,  100000, 200000,
                                     400000, 700000, 1000000, 1200000};
  struct AppRunner {
    const char* name;
    SweepPoint (*measure)(double, bool);
  };
  const AppRunner apps[] = {
      {"KVS", &MeasureKvs},
      {"DNS", &MeasureDns},
      {"Paxos", &MeasurePaxos},
  };
  for (const auto& app : apps) {
    SweepSeries on_demand;
    on_demand.name = std::string(app.name) + " (On demand)";
    SweepSeries software;
    software.name = std::string(app.name) + " (SW)";
    for (double rate : rates) {
      on_demand.points.push_back(app.measure(rate, true));
      software.points.push_back(app.measure(rate, false));
    }
    series.push_back(std::move(on_demand));
    series.push_back(std::move(software));
  }
  PrintSeries(series);

  // Headline claim: savings at high rate.
  for (size_t i = 0; i + 1 < series.size(); i += 2) {
    const auto& od = series[i].points.back();
    const auto& sw = series[i + 1].points.back();
    std::cout << series[i].name << " vs SW at "
              << od.offered_pps / 1000 << " kpps: " << od.watts << " W vs "
              << sw.watts << " W ("
              << 100.0 * (sw.watts - od.watts) / sw.watts << "% saved)\n";
  }
  return 0;
}
