// §7 "Lessons from a Server": Xeon-class power vs core load.
//
// Reproduces the RAPL study on the dual-socket Xeon E5-2660 v4 (2 x 14
// cores): idle 56 W, a jump to 91 W when a single core runs, ~86 W at just
// 10 % of one core, 1-2 W per additional core, 134 W all-cores.
#include <iostream>

#include "bench/bench_util.h"
#include "src/host/server.h"
#include "src/power/cpu_power.h"
#include "src/power/meter.h"
#include "src/sim/simulation.h"
#include "src/stats/csv.h"

int main() {
  using namespace incod;
  bench::PrintHeader("Section 7: Xeon server power vs core load",
                     "Synthetic no-I/O workload on a dual E5-2660 v4 "
                     "(28 cores), measured via the wall meter + RAPL model.");

  Simulation sim(37);
  ServerConfig config;
  config.name = "xeon";
  config.node = 1;
  config.num_cores = 28;
  config.power_curve = XeonE52660SyntheticCurve();
  Server server(sim, config);
  WallPowerMeter meter(sim, Milliseconds(1));
  meter.Attach(&server);
  meter.Start();

  CsvTable table({"busy_cores", "power_w", "delta_vs_prev_w"});
  double previous = 0;
  const double loads[] = {0.0, 0.1, 1.0, 2.0, 3.0, 4.0, 8.0, 14.0, 21.0, 28.0};
  for (double load : loads) {
    server.SetBackgroundUtilization(load);
    const SimTime start = sim.Now();
    sim.RunUntil(start + Milliseconds(100));
    const double watts = meter.MeanWatts(start + Milliseconds(10), sim.Now());
    table.AddRow({load, watts, previous == 0 ? 0.0 : watts - previous});
    previous = watts;
  }
  table.WriteAligned(std::cout);
  std::cout << "\n--- csv ---\n";
  table.WriteCsv(std::cout);

  std::cout << "\npaper anchors: idle 56 W | 10% of one core 86 W | one core "
               "91 W | +1-2 W per extra core | full 134 W\n";
  std::cout << "observation (§7): even at low core load the server draws most "
               "of its single-core power -> offloading to the network pays "
               "off when workloads under-utilize the server.\n";
  return 0;
}
