// §8 / §9.4 / §10: when and where to run in-network computing.
//
// Uses the EnergyAdvisor to compute tipping points for each application on
// each device class, the ToR-switch marginal-power argument (tipping point
// near zero), and the §10 SmartNIC comparison table.
//
// The final section replaces the analytic host model with a *measured* one:
// the software-only KVS chain is driven past capacity with the mechanistic
// host-NIC datapath enabled (HostNicSpec: RSS rings, interrupt moderation,
// doorbell batching) under two load shapes — a small-packet flood (64 B
// values) and a large-value bulk mix (1024 B values). Because the host is
// packet-rate-bound (per-op CPU cost, interrupt charges), its measured
// capacity and host->offload tipping point in kpps barely move between the
// shapes, while the same tipping point expressed in Gbps of served traffic
// shifts by the wire-size ratio: the tipping point tracks packet rate, not
// byte rate. A third leg with the datapath disabled isolates the interrupt
// cost, and a small-ring leg shows descriptor-ring overflow as its own drop
// class. Gated in CI via check_bench_regression.py --hostnic against
// bench/baseline_hostnic.json.
//
// Modes:
//   (default)            — human-readable analysis (all sections).
//   --out PATH [--quick] — also writes the JSON part consumed by
//     check_bench_regression.py --hostnic.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "src/app/app_registry.h"
#include "src/device/smartnic.h"
#include "src/dns/zone.h"
#include "src/kvs/kv_protocol.h"
#include "src/kvs/memcached_server.h"
#include "src/ondemand/energy_advisor.h"
#include "src/power/cpu_power.h"
#include "src/scenarios/kvs_testbed.h"
#include "src/scenarios/scenario_spec.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"
#include "src/stats/csv.h"

namespace {

using namespace incod;

RatePowerFn Add4(RatePowerFn fn) {
  return [fn](double r) { return fn(r) + 4.0; };  // + conventional NIC.
}

// --- Measured host-NIC load-shape sweep --------------------------------------

constexpr double kOfferedPps = 2.0e6;
constexpr uint64_t kKeyspace = 1024;
constexpr uint64_t kSeed = 42;
constexpr uint32_t kFloodValueBytes = 64;
constexpr uint32_t kBulkValueBytes = 1024;

enum class HostNicProfile {
  kOff,           // Legacy pass-through NIC, idealized dispatch.
  kModeration,    // Rings deep enough; tight coalescing makes irq cost real.
  kRingPressure,  // Small rings + timer-only coalescing: rings overflow.
};

struct ShapeRun {
  double capacity_kpps = 0;    // Measured host completions / window.
  double tipping_kpps = -1;    // Host->FPGA tipping from the measured cost.
  double tipping_gbps = -1;    // Same tipping in served-reply Gbps.
  uint64_t ring_drops = 0;
  uint64_t nic_interrupts = 0;
  uint64_t host_interrupts = 0;
  uint64_t server_overflow = 0;
};

ScenarioSpec ShapeSpec(HostNicProfile profile) {
  KvsTestbedOptions options;
  options.mode = KvsMode::kSoftwareOnly;
  ScenarioSpec spec = MakeKvsScenarioSpec(options);
  spec.name = "hostnic-shape";
  spec.workload.kind = ScenarioWorkloadSpec::Kind::kKvUniformGets;
  spec.workload.rate_per_second = kOfferedPps;
  spec.workload.keyspace = kKeyspace;
  spec.workload.client.node = kTestbedClientNode;
  if (profile == HostNicProfile::kOff) {
    return spec;
  }
  spec.hostnic.enabled = true;
  if (profile == HostNicProfile::kModeration) {
    // Small batches keep the per-interrupt CPU charge visible (1 us per 4
    // requests) while the 256-deep rings never overflow.
    spec.hostnic.nic.ring_depth = 256;
    spec.hostnic.nic.coalesce_packets = 4;
    spec.hostnic.nic.coalesce_timer = Microseconds(10);
  } else {
    // Aggressive moderation against shallow rings: the count trigger is
    // unreachable, the timer drains every 50 us, and 16 descriptors cannot
    // cover the arrivals in between — the ring sheds on the NIC.
    spec.hostnic.nic.ring_depth = 16;
    spec.hostnic.nic.coalesce_packets = 1000;
    spec.hostnic.nic.coalesce_timer = Microseconds(50);
  }
  return spec;
}

ShapeRun RunShape(uint32_t value_bytes, HostNicProfile profile, bool quick) {
  Simulation sim(kSeed);
  ScenarioTestbed testbed(sim, ShapeSpec(profile));
  auto* memcached = testbed.host_app_as<MemcachedServer>();
  for (uint64_t k = 0; k < kKeyspace; ++k) {
    memcached->store().Set(k, value_bytes);
  }
  const SimDuration window = quick ? Milliseconds(20) : Milliseconds(60);
  sim.RunUntil(window);

  ShapeRun run;
  Server* server = testbed.server();
  run.capacity_kpps =
      static_cast<double>(server->requests_completed()) / ToSeconds(window) / 1000.0;
  run.server_overflow = server->dropped_overflow();
  run.host_interrupts = server->interrupts_serviced();
  if (ConventionalNic* nic = testbed.nic()) {
    run.ring_drops = nic->ring_drops();
    run.nic_interrupts = nic->interrupts_raised();
  }
  // The measured cost replaces the analytic 4 us/request host model: at
  // saturation every worker is busy, so per-request core time is
  // threads / capacity, interrupt charges and all.
  const int threads = server->config().num_cores;
  if (run.capacity_kpps > 0) {
    const SimDuration effective_core_time =
        static_cast<SimDuration>(threads / (run.capacity_kpps * 1000.0) * 1e9);
    const auto software =
        Add4(MakeServerRatePower(I7MemcachedCurve(), effective_core_time, threads));
    const auto network = MakeFpgaRatePower(35.0, 24.0, 1.0, 13e6);
    const auto advice = AdvisePlacement(software, network, kOfferedPps);
    if (advice.tipping_rate_pps.has_value()) {
      run.tipping_kpps = *advice.tipping_rate_pps / 1000.0;
      const double reply_bytes = static_cast<double>(kKvHeaderBytes + value_bytes);
      run.tipping_gbps = *advice.tipping_rate_pps * reply_bytes * 8.0 / 1e9;
    }
  }
  return run;
}

int Run(bool quick, const std::string& out_path) {
  bench::PrintHeader("Sections 8/9.4/10: placement analysis",
                     "Energy tipping points per application and target.");

  // --- §8: FPGA-in-server tipping points per application ---
  CsvTable tips({"application", "software", "network", "tipping_kpps", "paper_kpps"});
  struct Case {
    const char* app;
    RatePowerFn software;
    RatePowerFn network;
    const char* paper;
  };
  const Case cases[] = {
      {"KVS (memcached vs LaKe)",
       Add4(MakeServerRatePower(I7MemcachedCurve(), Microseconds(4), 4)),
       MakeFpgaRatePower(35.0, 24.0, 1.0, 13e6), "~80"},
      {"Paxos (libpaxos vs P4xos)",
       Add4(MakeServerRatePower(I7LibpaxosCurve(), Nanoseconds(5600), 1)),
       MakeFpgaRatePower(35.0, 12.6, 1.2, 10e6), "~150"},
      {"DNS (NSD vs Emu)",
       Add4(MakeServerRatePower(I7NsdCurve(), Nanoseconds(4180), 4)),
       MakeFpgaRatePower(35.0, 12.5, 0.5, 1e6), "<200"},
  };
  for (const auto& c : cases) {
    const auto advice = AdvisePlacement(c.software, c.network, 2e6);
    tips.AddRow({std::string(c.app), c.software(0.0), c.network(0.0),
                 advice.tipping_rate_pps.has_value() ? *advice.tipping_rate_pps / 1000.0
                                                     : -1.0,
                 std::string(c.paper)});
  }
  tips.WriteAligned(std::cout);
  std::cout << "\n";

  // --- §9.4: ToR switch on demand ---
  auto software = MakeServerRatePower(I7LibpaxosCurve(), Nanoseconds(5600), 1);
  auto switch_marginal = MakeSwitchMarginalPower(0.02, 350.0, 2.5e9);
  const auto advice = AdvisePlacement(software, switch_marginal, 1e6);
  std::cout << "ToR switch marginal tipping point: "
            << (advice.tipping_rate_pps.has_value() ? *advice.tipping_rate_pps : -1)
            << " pps — " << (advice.network_always_wins ? "network always wins" : "")
            << " (paper: Pd_N(R)=Pd_S(R) when R is almost zero; <1 W per "
               "million queries at <5 W per 100G port)\n\n";

  // --- §10: FPGA vs SmartNIC vs switch ---
  CsvTable nics({"device", "arch", "idle_w", "max_w", "peak_mpps", "mops_per_watt",
                 "flexible_io", "scalable"});
  for (const auto& preset : StandardSmartNicPresets()) {
    nics.AddRow({preset.name, std::string(SmartNicArchName(preset.arch)),
                 preset.idle_watts, preset.max_watts, preset.peak_mpps,
                 OpsPerWattAtPeak(preset) / 1e6,
                 std::string(preset.flexible_interfaces ? "yes" : "no"),
                 std::string(preset.scalable_resources ? "yes" : "no")});
  }
  // The switch ASIC and NetFPGA rows for comparison.
  nics.AddRow({std::string("tofino-switch"), std::string("asic"), 294.0, 350.0, 2500.0,
               2500e6 / 350.0 / 1e6, std::string("no"), std::string("yes")});
  nics.AddRow({std::string("netfpga-sume"), std::string("fpga"), 11.0, 28.0, 13.0,
               13e6 / 28.0 / 1e6, std::string("yes"), std::string("yes")});
  nics.WriteAligned(std::cout);
  std::cout << "\n--- csv ---\n";
  nics.WriteCsv(std::cout);
  std::cout << "\n(§10: the switch wins on absolute performance and perf/W; "
               "SmartNICs stay within the 25 W PCIe budget at millions of "
               "ops/W; FPGAs trade peak efficiency for flexibility.)\n";

  // --- SmartNIC placement tipping points per registry family ---
  // Each family's per-arch firmware profile (the kSmartNic registry
  // placement) scales the board's peak; the advisor then answers the same
  // §8 question per (app, board) pair the rack orchestrator asks per shift.
  Zone zone;
  zone.FillSynthetic(64);
  PaxosGroupConfig group;
  group.acceptors = {10, 11, 12};
  group.learners = {30};
  group.leader_service = 200;
  AppFactoryEnv env;
  env.zone = &zone;
  env.paxos_group = &group;
  env.service = 200;

  struct SmartNicCase {
    const char* family;
    RatePowerFn software;
  };
  const SmartNicCase families[] = {
      {"kvs", Add4(MakeServerRatePower(I7MemcachedCurve(), Microseconds(4), 4))},
      {"dns", Add4(MakeServerRatePower(I7NsdCurve(), Nanoseconds(4180), 4))},
      {"paxos-leader",
       Add4(MakeServerRatePower(I7LibpaxosCurve(), Nanoseconds(5600), 1))},
  };
  CsvTable smartnic_tips({"application", "board", "arch", "app_mpps", "tipping_kpps"});
  std::cout << "\n";
  for (const auto& family : families) {
    auto app = AppRegistry::Global().Create(family.family, PlacementKind::kSmartNic, env);
    const SmartNicPlacementProfile profile = app->OffloadProfile().smartnic;
    for (const auto& preset : StandardSmartNicPresets()) {
      const double fraction = profile.MppsFractionFor(preset.arch);
      const auto network = MakeSmartNicRatePower(35.0, preset, fraction);
      const auto nic_advice = AdvisePlacement(family.software, network, 2e6);
      smartnic_tips.AddRow(
          {std::string(family.family), preset.name,
           std::string(SmartNicArchName(preset.arch)), preset.peak_mpps * fraction,
           nic_advice.tipping_rate_pps.has_value() ? *nic_advice.tipping_rate_pps / 1000.0
                                                   : -1.0});
    }
  }
  smartnic_tips.WriteAligned(std::cout);
  std::cout << "(per-arch firmware fractions from the registry's kSmartNic "
               "profiles; -1 = the board never beats the host below 2 Mpps)\n";

  // --- Measured host-NIC datapath: load-shape sweep ---
  std::cout << "\nmeasured host datapath (KVS host at " << kOfferedPps / 1e6
            << " Mpps offered, mechanistic HostNicSpec):\n";
  const ShapeRun flood = RunShape(kFloodValueBytes, HostNicProfile::kModeration, quick);
  const ShapeRun bulk = RunShape(kBulkValueBytes, HostNicProfile::kModeration, quick);
  const ShapeRun ideal = RunShape(kFloodValueBytes, HostNicProfile::kOff, quick);
  const ShapeRun ring = RunShape(kFloodValueBytes, HostNicProfile::kRingPressure, quick);

  CsvTable shapes({"shape", "value_bytes", "capacity_kpps", "tipping_kpps",
                   "tipping_gbps", "interrupts", "ring_drops"});
  shapes.AddRow({std::string("flood"), static_cast<double>(kFloodValueBytes),
                 flood.capacity_kpps, flood.tipping_kpps, flood.tipping_gbps,
                 static_cast<double>(flood.nic_interrupts),
                 static_cast<double>(flood.ring_drops)});
  shapes.AddRow({std::string("bulk"), static_cast<double>(kBulkValueBytes),
                 bulk.capacity_kpps, bulk.tipping_kpps, bulk.tipping_gbps,
                 static_cast<double>(bulk.nic_interrupts),
                 static_cast<double>(bulk.ring_drops)});
  shapes.AddRow({std::string("flood-ideal"), static_cast<double>(kFloodValueBytes),
                 ideal.capacity_kpps, ideal.tipping_kpps, ideal.tipping_gbps,
                 static_cast<double>(ideal.nic_interrupts),
                 static_cast<double>(ideal.ring_drops)});
  shapes.AddRow({std::string("flood-smallring"), static_cast<double>(kFloodValueBytes),
                 ring.capacity_kpps, ring.tipping_kpps, ring.tipping_gbps,
                 static_cast<double>(ring.nic_interrupts),
                 static_cast<double>(ring.ring_drops)});
  shapes.WriteAligned(std::cout);

  const double kpps_ratio =
      bulk.tipping_kpps <= 0 ? 0 : flood.tipping_kpps / bulk.tipping_kpps;
  const double gbps_shift =
      flood.tipping_gbps <= 0 ? 0 : bulk.tipping_gbps / flood.tipping_gbps;
  const double irq_ratio =
      flood.capacity_kpps <= 0 ? 0 : ideal.capacity_kpps / flood.capacity_kpps;
  std::cout << "tipping in kpps flood/bulk: " << kpps_ratio
            << " (packet-rate-bound: the shape barely moves it)\n"
            << "tipping in Gbps bulk/flood: " << gbps_shift
            << "x (the byte-rate view moves with the wire size)\n"
            << "ideal/mechanistic capacity: " << irq_ratio
            << " (the interrupt path is a real cost)\n";

  if (out_path.empty()) {
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  bench::JsonWriter json(out);
  json.BeginObject();
  json.Field("bench", "hostnic");
  json.Field("build_type", bench::BuildTypeName());
  json.Field("quick", quick);
  json.BeginObject("hostnic");
  json.Field("offered_pps", kOfferedPps);
  json.Field("flood_value_bytes", static_cast<uint64_t>(kFloodValueBytes));
  json.Field("bulk_value_bytes", static_cast<uint64_t>(kBulkValueBytes));
  json.Field("flood_capacity_kpps", flood.capacity_kpps);
  json.Field("bulk_capacity_kpps", bulk.capacity_kpps);
  json.Field("ideal_capacity_kpps", ideal.capacity_kpps);
  json.Field("flood_tipping_kpps", flood.tipping_kpps);
  json.Field("bulk_tipping_kpps", bulk.tipping_kpps);
  json.Field("flood_tipping_gbps", flood.tipping_gbps);
  json.Field("bulk_tipping_gbps", bulk.tipping_gbps);
  json.Field("kpps_tipping_ratio", kpps_ratio);
  json.Field("gbps_tipping_shift", gbps_shift);
  json.Field("irq_capacity_ratio", irq_ratio);
  json.Field("mech_interrupts", flood.nic_interrupts);
  json.Field("host_interrupts_serviced", flood.host_interrupts);
  json.Field("smallring_ring_drops", ring.ring_drops);
  json.EndObject();
  json.EndObject();
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_placement [--quick] [--out PATH]\n";
      return 2;
    }
  }
  return Run(quick, out_path);
}
