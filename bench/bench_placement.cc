// §8 / §9.4 / §10: when and where to run in-network computing.
//
// Uses the EnergyAdvisor to compute tipping points for each application on
// each device class, the ToR-switch marginal-power argument (tipping point
// near zero), and the §10 SmartNIC comparison table.
#include <iostream>

#include "bench/bench_util.h"
#include "src/app/app_registry.h"
#include "src/device/smartnic.h"
#include "src/dns/zone.h"
#include "src/ondemand/energy_advisor.h"
#include "src/power/cpu_power.h"
#include "src/sim/time.h"
#include "src/stats/csv.h"

int main() {
  using namespace incod;
  bench::PrintHeader("Sections 8/9.4/10: placement analysis",
                     "Energy tipping points per application and target.");

  // --- §8: FPGA-in-server tipping points per application ---
  CsvTable tips({"application", "software", "network", "tipping_kpps", "paper_kpps"});
  struct Case {
    const char* app;
    RatePowerFn software;
    RatePowerFn network;
    const char* paper;
  };
  auto add4 = [](RatePowerFn fn) {
    return [fn](double r) { return fn(r) + 4.0; };  // + conventional NIC.
  };
  const Case cases[] = {
      {"KVS (memcached vs LaKe)",
       add4(MakeServerRatePower(I7MemcachedCurve(), Microseconds(4), 4)),
       MakeFpgaRatePower(35.0, 24.0, 1.0, 13e6), "~80"},
      {"Paxos (libpaxos vs P4xos)",
       add4(MakeServerRatePower(I7LibpaxosCurve(), Nanoseconds(5600), 1)),
       MakeFpgaRatePower(35.0, 12.6, 1.2, 10e6), "~150"},
      {"DNS (NSD vs Emu)",
       add4(MakeServerRatePower(I7NsdCurve(), Nanoseconds(4180), 4)),
       MakeFpgaRatePower(35.0, 12.5, 0.5, 1e6), "<200"},
  };
  for (const auto& c : cases) {
    const auto advice = AdvisePlacement(c.software, c.network, 2e6);
    tips.AddRow({std::string(c.app), c.software(0.0), c.network(0.0),
                 advice.tipping_rate_pps.has_value() ? *advice.tipping_rate_pps / 1000.0
                                                     : -1.0,
                 std::string(c.paper)});
  }
  tips.WriteAligned(std::cout);
  std::cout << "\n";

  // --- §9.4: ToR switch on demand ---
  auto software = MakeServerRatePower(I7LibpaxosCurve(), Nanoseconds(5600), 1);
  auto switch_marginal = MakeSwitchMarginalPower(0.02, 350.0, 2.5e9);
  const auto advice = AdvisePlacement(software, switch_marginal, 1e6);
  std::cout << "ToR switch marginal tipping point: "
            << (advice.tipping_rate_pps.has_value() ? *advice.tipping_rate_pps : -1)
            << " pps — " << (advice.network_always_wins ? "network always wins" : "")
            << " (paper: Pd_N(R)=Pd_S(R) when R is almost zero; <1 W per "
               "million queries at <5 W per 100G port)\n\n";

  // --- §10: FPGA vs SmartNIC vs switch ---
  CsvTable nics({"device", "arch", "idle_w", "max_w", "peak_mpps", "mops_per_watt",
                 "flexible_io", "scalable"});
  for (const auto& preset : StandardSmartNicPresets()) {
    nics.AddRow({preset.name, std::string(SmartNicArchName(preset.arch)),
                 preset.idle_watts, preset.max_watts, preset.peak_mpps,
                 OpsPerWattAtPeak(preset) / 1e6,
                 std::string(preset.flexible_interfaces ? "yes" : "no"),
                 std::string(preset.scalable_resources ? "yes" : "no")});
  }
  // The switch ASIC and NetFPGA rows for comparison.
  nics.AddRow({std::string("tofino-switch"), std::string("asic"), 294.0, 350.0, 2500.0,
               2500e6 / 350.0 / 1e6, std::string("no"), std::string("yes")});
  nics.AddRow({std::string("netfpga-sume"), std::string("fpga"), 11.0, 28.0, 13.0,
               13e6 / 28.0 / 1e6, std::string("yes"), std::string("yes")});
  nics.WriteAligned(std::cout);
  std::cout << "\n--- csv ---\n";
  nics.WriteCsv(std::cout);
  std::cout << "\n(§10: the switch wins on absolute performance and perf/W; "
               "SmartNICs stay within the 25 W PCIe budget at millions of "
               "ops/W; FPGAs trade peak efficiency for flexibility.)\n";

  // --- SmartNIC placement tipping points per registry family ---
  // Each family's per-arch firmware profile (the kSmartNic registry
  // placement) scales the board's peak; the advisor then answers the same
  // §8 question per (app, board) pair the rack orchestrator asks per shift.
  Zone zone;
  zone.FillSynthetic(64);
  PaxosGroupConfig group;
  group.acceptors = {10, 11, 12};
  group.learners = {30};
  group.leader_service = 200;
  AppFactoryEnv env;
  env.zone = &zone;
  env.paxos_group = &group;
  env.service = 200;

  struct SmartNicCase {
    const char* family;
    RatePowerFn software;
  };
  const SmartNicCase families[] = {
      {"kvs", add4(MakeServerRatePower(I7MemcachedCurve(), Microseconds(4), 4))},
      {"dns", add4(MakeServerRatePower(I7NsdCurve(), Nanoseconds(4180), 4))},
      {"paxos-leader",
       add4(MakeServerRatePower(I7LibpaxosCurve(), Nanoseconds(5600), 1))},
  };
  CsvTable smartnic_tips({"application", "board", "arch", "app_mpps", "tipping_kpps"});
  std::cout << "\n";
  for (const auto& family : families) {
    auto app = AppRegistry::Global().Create(family.family, PlacementKind::kSmartNic, env);
    const SmartNicPlacementProfile profile = app->OffloadProfile().smartnic;
    for (const auto& preset : StandardSmartNicPresets()) {
      const double fraction = profile.MppsFractionFor(preset.arch);
      const auto network = MakeSmartNicRatePower(35.0, preset, fraction);
      const auto nic_advice = AdvisePlacement(family.software, network, 2e6);
      smartnic_tips.AddRow(
          {std::string(family.family), preset.name,
           std::string(SmartNicArchName(preset.arch)), preset.peak_mpps * fraction,
           nic_advice.tipping_rate_pps.has_value() ? *nic_advice.tipping_rate_pps / 1000.0
                                                   : -1.0});
    }
  }
  smartnic_tips.WriteAligned(std::cout);
  std::cout << "(per-arch firmware fractions from the registry's kSmartNic "
               "profiles; -1 = the board never beats the host below 2 Mpps)\n";
  return 0;
}
