// Figure 4: the effect of LaKe's design trade-offs on power consumption.
//
// Reproduces the bar chart: reference NIC, 1 PE & no memories, no memories,
// max load & no memories, reset memories + clock gating, reset memories,
// server without cards, clock gating, and full LaKe. Blue bars are board
// power (DC, in-server); red bars are the reference NIC and the idle i7
// server for comparison.
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/device/fpga_nic.h"
#include "src/kvs/lake.h"
#include "src/power/cpu_power.h"
#include "src/sim/simulation.h"
#include "src/stats/csv.h"

namespace incod {
namespace {

// Board power for a LaKe configuration under the given runtime state.
double LakeBoardWatts(LakeConfig config, bool active, bool clock_gating,
                      bool memory_reset, double utilization = 0.0) {
  Simulation sim(17);
  FpgaNicConfig fpga_config;
  FpgaNic fpga(sim, fpga_config);
  LakeCache lake(config);
  fpga.InstallApp(&lake);
  fpga.SetAppActive(active);
  fpga.SetClockGating(clock_gating);
  fpga.SetMemoryReset(memory_reset);
  double watts = fpga.PowerWatts();
  if (active && utilization > 0) {
    // Emulate the utilization-linear dynamic part at the requested load.
    watts += lake.OffloadProfile().dynamic_watts_at_capacity * utilization;
  }
  return watts;
}

}  // namespace
}  // namespace incod

int main() {
  using namespace incod;
  bench::PrintHeader("Figure 4: LaKe design trade-offs",
                     "Per-configuration power (watts). Paper findings: clock "
                     "gating saves <1 W; each PE ~0.25 W; external memories "
                     "are the biggest contributor (>=10 W, 40% saved in "
                     "reset); idle server ~ standalone LaKe board.");

  LakeConfig full;       // 5 PEs, DRAM + SRAM.
  LakeConfig one_pe;     // 1 PE, no memories.
  one_pe.num_pes = 1;
  one_pe.use_dram = false;
  one_pe.use_sram = false;
  LakeConfig no_mem;     // 5 PEs, no memories.
  no_mem.use_dram = false;
  no_mem.use_sram = false;

  Simulation sim(17);
  FpgaNicConfig nic_config;
  FpgaNic reference_nic(sim, nic_config);  // No app: the reference NIC.

  CpuPowerModel server = MakeI7Server("i7", I7MemcachedCurve());

  CsvTable table({"configuration", "power_w", "kind"});
  table.AddRow({std::string("Ref. NIC"), reference_nic.PowerWatts(), std::string("red")});
  table.AddRow({std::string("1 PE & no mem"),
                LakeBoardWatts(one_pe, true, false, false), std::string("blue")});
  table.AddRow({std::string("No mem"), LakeBoardWatts(no_mem, true, false, false),
                std::string("blue")});
  table.AddRow({std::string("Max load & no mem"),
                LakeBoardWatts(no_mem, true, false, false, 1.0), std::string("blue")});
  table.AddRow({std::string("Reset mem & clk gating"),
                LakeBoardWatts(full, false, true, true), std::string("blue")});
  table.AddRow({std::string("Reset mem"), LakeBoardWatts(full, false, false, true),
                std::string("blue")});
  table.AddRow({std::string("Server no cards"), server.PowerWatts(), std::string("red")});
  table.AddRow({std::string("Clk gating"), LakeBoardWatts(full, false, true, false),
                std::string("blue")});
  table.AddRow({std::string("LaKe"), LakeBoardWatts(full, true, false, false),
                std::string("blue")});
  table.WriteAligned(std::cout);
  std::cout << "\n--- csv ---\n";
  table.WriteCsv(std::cout);

  // The §5.1 claims, computed from the model:
  const double lake_full = LakeBoardWatts(full, true, false, false);
  const double clk = LakeBoardWatts(full, false, true, false);
  const double reset = LakeBoardWatts(full, false, false, true);
  const double idle = LakeBoardWatts(full, false, false, false);
  std::cout << "\nclock gating saves " << idle - clk << " W (paper: <1 W)\n";
  std::cout << "memory reset saves " << idle - reset
            << " W (paper: 40% of >=10 W memory power)\n";
  std::cout << "per-PE cost " << (lake_full - LakeBoardWatts(one_pe, true, false, false) -
                                  kFpgaDramWatts - kFpgaSramWatts) / 4.0
            << " W (paper: ~0.25 W)\n";
  return 0;
}
