#!/usr/bin/env python3
"""Gate for CI's bench-smoke job.

Four modes, dispatched through a table-driven gate registry (GATES):

Engine (default): compares a fresh BENCH_engine.json against the checked-in
bench/baseline_engine.json. Absolute events/sec vary wildly across runner
hardware, so the gate uses the within-run speedup ratio of the calendar
engine over the seed-replica heap engine: that ratio must not regress more
than the tolerance (default 20%) below the recorded baseline.

    check_bench_regression.py BENCH_engine.json [baseline.json] [--tolerance 0.2]

With --engine-parallel the engine mode additionally gates the sharded
multi-rack leg: parallel (4 worker threads) must beat the single-queue
reference by the baseline's min_parallel_speedup. Wall-clock parallel
speedup needs real cores, so the floor applies only when the runner
reports >= 4 hardware threads; below that the leg degrades to an
overhead sanity bound (min_single_core_ratio) — the parallel engine may
not cost more than that fraction of single-queue throughput even when
its workers share one core.

Transitions (--transitions): merges the JSON parts written by
bench_fig6_kvs_transition / bench_fig7_paxos_transition (--out) into one
BENCH_transitions.json and gates the warm-vs-cold transition gap against
bench/baseline_transitions.json. All quantities are simulated-time metrics
(deterministic per seed), so the floors are near-absolute: the warm path
must stay gapless and the cold-minus-warm delta must not shrink below the
recorded policy floor.

    check_bench_regression.py --transitions part1.json [part2.json ...] \
        [--baseline bench/baseline_transitions.json] \
        [--merge-out BENCH_transitions.json]

Recovery (--recovery): gates the crash-recovery part written by
bench_recovery --out against bench/baseline_recovery.json. Same
deterministic-floor philosophy as --transitions: the heartbeat detector
must fire within the policy bound, the warm (checkpointed) restore must
stay near-lossless, and the cold-minus-warm delta must not shrink below
the recorded floor — i.e. checkpointed warm restore strictly beats cold
restart, by at least the policy margin.

    check_bench_regression.py --recovery BENCH_recovery.json \
        [--baseline bench/baseline_recovery.json] \
        [--merge-out BENCH_recovery.json]

Row (--row): gates the datacenter-row part written by bench_row --out
against bench/baseline_row.json. Two sections: the global-brownout
re-placement wave must evict every over-budget rack within the latency
ceiling, and the post-brownout miss fraction must fall monotonically with
the per-rack checkpoint cadence — fine-cadence warm restores near-lossless,
cold restarts worse by at least the recorded margin.

    check_bench_regression.py --row BENCH_row.json \
        [--baseline bench/baseline_row.json] \
        [--merge-out BENCH_row.json]

Flow (--flow): gates the backpressure part written by bench_flow --out
against bench/baseline_flow.json. The drop-tail leg must actually shed
load, the flow-control leg must convert that loss into backpressure
(zero chain drops, pause frames and CNPs observed, goodput preserved),
and the host-vs-offload p99 slowdown ratio must shift measurably when
backpressure is on.

    check_bench_regression.py --flow BENCH_flow.json \
        [--baseline bench/baseline_flow.json] \
        [--merge-out BENCH_flow.json]

Hostnic (--hostnic): gates the measured host-NIC load-shape part written
by bench_placement --out against bench/baseline_hostnic.json. The host's
host->offload tipping point must track packet rate (flood-vs-bulk kpps
tipping ratio pinned near 1) while shifting in byte-rate terms (Gbps
tipping shift floor), the interrupt path must cost real capacity
(ideal/mechanistic ratio floor, interrupt count floor), and the
small-ring leg must actually shed at the descriptor rings.

    check_bench_regression.py --hostnic BENCH_hostnic_part.json \
        [--baseline bench/baseline_hostnic.json] \
        [--merge-out BENCH_hostnic.json]

Self-test (--self-test): exercises every gate closure in the GATES
registry against canned in-memory JSON — each section must pass on its
good fixture and each tampered fixture must trip at least one check.
Run by CI's lint step so a gate edit that silently stops failing (or
starts false-failing) is caught without real bench output.
"""
import json
import sys


class GateContext:
    """Per-run check state: prints [ok]/[FAIL] lines and collects failures."""

    def __init__(self, merged, baseline):
        self.merged = merged
        self.baseline = baseline
        self.failures = []

    def require(self, section, condition, message):
        status = "ok" if condition else "FAIL"
        print(f"  [{status}] {section}: {message}")
        if not condition:
            self.failures.append(f"{section}: {message}")


# --- Reusable section checks -------------------------------------------------
# Each check is a callable (ctx, section, leg, policy) -> None that calls
# ctx.require. The per-gate tables below compose them declaratively.

def le(field, policy_key, label, fmt="{:.3f}", suffix=""):
    def check(ctx, section, leg, policy):
        value = leg[field]
        bound = policy[policy_key]
        ctx.require(section, value <= bound,
                    f"{label} {fmt.format(value)}{suffix} <= "
                    f"{fmt.format(bound)}{suffix}")
    return check


def ge(field, policy_key, label, fmt="{:.3f}", suffix=""):
    def check(ctx, section, leg, policy):
        value = leg[field]
        bound = policy[policy_key]
        ctx.require(section, value >= bound,
                    f"{label} {fmt.format(value)}{suffix} >= "
                    f"{fmt.format(bound)}{suffix}")
    return check


def nonneg_le(field, policy_key, label, fmt="{:.1f}", suffix=" ms"):
    """0 <= value <= bound — for latencies where a negative value means
    'never happened' rather than 'instant'."""
    def check(ctx, section, leg, policy):
        value = leg[field]
        bound = policy[policy_key]
        ctx.require(section, 0 <= value <= bound,
                    f"{label} {fmt.format(value)}{suffix} <= "
                    f"{fmt.format(bound)}{suffix}")
    return check


def detection_within(ctx, section, leg, policy):
    detection = leg["detection_ms"]
    ctx.require(section, 0 <= detection <= policy["max_detection_ms"],
                f"detection latency {detection:.1f} ms within "
                f"(0, {policy['max_detection_ms']:.1f}] ms")


def warm_recovery_flags(ctx, section, leg, policy):
    if not policy.get("require_warm_recovery"):
        return
    ctx.require(section, bool(leg.get("warm_recovery_flag")),
                "recovery restored from a checkpoint (warm)")
    ctx.require(section, leg.get("warm_checkpoints", 0) > 0,
                f"checkpoints taken before the kill "
                f"({leg.get('warm_checkpoints', 0)} > 0)")


def row_wave_evictions(ctx, section, leg, policy):
    evicted = leg["racks_evicted"]
    floor = policy["min_racks_evicted"]
    ctx.require(section, evicted >= floor,
                f"racks evicted by the cap cascade {evicted} >= {floor}")


def row_wave_latency(ctx, section, leg, policy):
    latency = leg["wave_latency_ms"]
    ceiling = policy["max_wave_latency_ms"]
    ctx.require(section, 0 <= latency <= ceiling,
                f"cap-to-last-eviction wave latency {latency:.3f} ms within "
                f"(0, {ceiling:.3f}] ms")


def row_cadence_monotone(ctx, section, leg, policy):
    if not policy.get("require_monotone"):
        return
    epsilon = policy.get("monotone_epsilon", 0.0)
    points = leg["points"]
    ordered = all(points[i]["miss_fraction"] + epsilon
                  >= points[i + 1]["miss_fraction"]
                  for i in range(len(points) - 1))
    curve = " >= ".join(f"{p['label']} {p['miss_fraction']:.3f}"
                        for p in points)
    ctx.require(section, ordered,
                f"miss fraction falls with cadence ({curve}, "
                f"epsilon {epsilon:.3f})")


def row_cadence_warm_recoveries(ctx, section, leg, policy):
    if not policy.get("require_warm_recovery"):
        return
    fine = leg["points"][-1]
    racks = leg["racks"]
    ctx.require(section, fine.get("warm_recoveries", 0) == racks,
                f"fine cadence recovered warm on every rack "
                f"({fine.get('warm_recoveries', 0)}/{racks})")


# --- Gate registry -----------------------------------------------------------
# A gate is a merge recipe (which part keys to fold into the merged JSON)
# plus a table of sections; each section names its policy/part key, a
# human label, and the checks to run when the baseline carries the section.

class Section:
    def __init__(self, key, label, checks):
        self.key = key
        self.label = label
        self.checks = checks


class Gate:
    def __init__(self, name, default_baseline, merge_keys, sections,
                 fail_banner):
        self.name = name
        self.default_baseline = default_baseline
        self.merge_keys = merge_keys
        self.sections = sections
        self.fail_banner = fail_banner


GATES = {
    "transitions": Gate(
        name="transitions",
        default_baseline="bench/baseline_transitions.json",
        merge_keys=("kvs", "kvs_smartnic", "paxos"),
        sections=[
            # The FPGA (fig6) and SmartNIC (§10 placement) legs share the
            # miss-fraction policy shape.
            Section("kvs", "kvs transition (fig6)", [
                le("warm_post_shift_miss_fraction", "warm_max_miss_fraction",
                   "warm post-shift miss fraction"),
                ge("delta_miss_fraction", "min_delta_miss_fraction",
                   "cold-warm miss-fraction delta"),
            ]),
            Section("kvs_smartnic", "kvs transition (smartnic leg)", [
                le("warm_post_shift_miss_fraction", "warm_max_miss_fraction",
                   "warm post-shift miss fraction"),
                ge("delta_miss_fraction", "min_delta_miss_fraction",
                   "cold-warm miss-fraction delta"),
            ]),
            Section("paxos", "paxos transition (fig7)", [
                le("warm_to_network_gap_ms", "warm_max_gap_ms",
                   "warm to-network gap", fmt="{:.1f}", suffix=" ms"),
                ge("delta_to_network_gap_ms", "min_delta_gap_ms",
                   "cold-warm gap delta", fmt="{:.1f}", suffix=" ms"),
            ]),
        ],
        fail_banner="FAIL: warm-vs-cold transition gate",
    ),
    "recovery": Gate(
        name="recovery",
        default_baseline="bench/baseline_recovery.json",
        merge_keys=("kvs", "paxos"),
        sections=[
            Section("kvs", "kvs recovery (LaKe death -> NetCache)", [
                detection_within,
                warm_recovery_flags,
                le("warm_post_recovery_miss_fraction",
                   "warm_max_miss_fraction",
                   "warm post-recovery miss fraction"),
                ge("delta_miss_fraction", "min_delta_miss_fraction",
                   "cold-warm miss-fraction delta"),
            ]),
            Section("paxos", "paxos recovery (P4xos death -> software)", [
                detection_within,
                warm_recovery_flags,
                nonneg_le("warm_gap_ms", "warm_max_gap_ms",
                          "warm service gap"),
                ge("delta_gap_ms", "min_delta_gap_ms",
                   "cold-warm gap delta", fmt="{:.1f}", suffix=" ms"),
            ]),
        ],
        fail_banner="FAIL: crash-recovery gate",
    ),
    "row": Gate(
        name="row",
        default_baseline="bench/baseline_row.json",
        merge_keys=("wave", "cadence"),
        sections=[
            Section("wave", "re-placement wave (global brownout -> evictions)", [
                row_wave_evictions,
                row_wave_latency,
            ]),
            Section("cadence", "post-brownout miss vs checkpoint cadence", [
                le("fine_miss_fraction", "warm_max_miss_fraction",
                   "fine-cadence post-recovery miss fraction"),
                ge("delta_miss_fraction", "min_delta_miss_fraction",
                   "cold-fine miss-fraction delta"),
                row_cadence_monotone,
                row_cadence_warm_recoveries,
            ]),
        ],
        fail_banner="FAIL: datacenter-row gate",
    ),
    "flow": Gate(
        name="flow",
        default_baseline="bench/baseline_flow.json",
        merge_keys=("backpressure", "offload"),
        sections=[
            Section("backpressure", "overload backpressure (drop-tail vs PFC+DCQCN)", [
                ge("droptail_drop_fraction", "min_droptail_drop_fraction",
                   "drop-tail drop fraction"),
                le("flow_drop_fraction", "max_flow_drop_fraction",
                   "flow-control chain drop fraction", fmt="{:.4f}"),
                ge("flow_pause_frames", "min_flow_pause_frames",
                   "host pause frames", fmt="{:.0f}"),
                ge("flow_cnps", "min_flow_cnps", "CNPs sent", fmt="{:.0f}"),
                ge("goodput_ratio", "min_goodput_ratio",
                   "goodput ratio (flow / drop-tail)"),
            ]),
            Section("offload", "host-vs-offload shift under backpressure", [
                ge("flow_slowdown", "min_flow_slowdown",
                   "host-vs-offload p99 slowdown (flow)", fmt="{:.0f}",
                   suffix="x"),
                ge("slowdown_shift", "min_slowdown_shift",
                   "slowdown shift (flow / drop-tail)", fmt="{:.2f}",
                   suffix="x"),
                le("offload_flow_drop_fraction",
                   "max_offload_flow_drop_fraction",
                   "offload chain drop fraction under flow", fmt="{:.4f}"),
            ]),
        ],
        fail_banner="FAIL: flow-control backpressure gate",
    ),
    "hostnic": Gate(
        name="hostnic",
        default_baseline="bench/baseline_hostnic.json",
        merge_keys=("hostnic",),
        sections=[
            Section("hostnic", "host-NIC load shapes (packet-rate vs byte-rate tipping)", [
                ge("kpps_tipping_ratio", "min_kpps_tipping_ratio",
                   "flood/bulk tipping ratio (kpps)"),
                le("kpps_tipping_ratio", "max_kpps_tipping_ratio",
                   "flood/bulk tipping ratio (kpps)"),
                ge("gbps_tipping_shift", "min_gbps_tipping_shift",
                   "bulk/flood tipping shift (Gbps)", suffix="x"),
                ge("irq_capacity_ratio", "min_irq_capacity_ratio",
                   "ideal/mechanistic capacity ratio"),
                ge("mech_interrupts", "min_mech_interrupts",
                   "NIC interrupts raised", fmt="{:.0f}"),
                ge("smallring_ring_drops", "min_smallring_ring_drops",
                   "small-ring descriptor drops", fmt="{:.0f}"),
            ]),
        ],
        fail_banner="FAIL: host-NIC load-shape gate",
    ),
}

# --- Self-test fixtures ------------------------------------------------------
# One canned (merged, baseline) pair per gate that must pass every check,
# plus tampered field values that must each trip at least one check.

SELF_TEST_FIXTURES = {
    "transitions": {
        "merged": {
            "kvs": {"warm_post_shift_miss_fraction": 0.01,
                    "delta_miss_fraction": 0.5},
            "kvs_smartnic": {"warm_post_shift_miss_fraction": 0.02,
                             "delta_miss_fraction": 0.4},
            "paxos": {"warm_to_network_gap_ms": 1.0,
                      "delta_to_network_gap_ms": 80.0},
        },
        "baseline": {
            "kvs": {"warm_max_miss_fraction": 0.05,
                    "min_delta_miss_fraction": 0.2},
            "kvs_smartnic": {"warm_max_miss_fraction": 0.05,
                             "min_delta_miss_fraction": 0.2},
            "paxos": {"warm_max_gap_ms": 5.0, "min_delta_gap_ms": 50.0},
        },
        "tampers": [("kvs", "warm_post_shift_miss_fraction", 0.5),
                    ("paxos", "delta_to_network_gap_ms", 0.0)],
    },
    "recovery": {
        "merged": {
            "kvs": {"detection_ms": 3.0, "warm_recovery_flag": True,
                    "warm_checkpoints": 4,
                    "warm_post_recovery_miss_fraction": 0.01,
                    "delta_miss_fraction": 0.4},
            "paxos": {"detection_ms": 3.0, "warm_recovery_flag": True,
                      "warm_checkpoints": 2, "warm_gap_ms": 2.0,
                      "delta_gap_ms": 60.0},
        },
        "baseline": {
            "kvs": {"max_detection_ms": 10.0, "require_warm_recovery": True,
                    "warm_max_miss_fraction": 0.05,
                    "min_delta_miss_fraction": 0.2},
            "paxos": {"max_detection_ms": 10.0, "require_warm_recovery": True,
                      "warm_max_gap_ms": 5.0, "min_delta_gap_ms": 20.0},
        },
        "tampers": [("kvs", "detection_ms", -1.0),
                    ("kvs", "warm_recovery_flag", False),
                    ("paxos", "warm_gap_ms", 50.0)],
    },
    "row": {
        "merged": {
            "wave": {"racks_evicted": 3, "wave_latency_ms": 5.0},
            "cadence": {"fine_miss_fraction": 0.01,
                        "delta_miss_fraction": 0.3, "racks": 4,
                        "points": [
                            {"label": "cold", "miss_fraction": 0.4},
                            {"label": "coarse", "miss_fraction": 0.2},
                            {"label": "fine", "miss_fraction": 0.01,
                             "warm_recoveries": 4},
                        ]},
        },
        "baseline": {
            "wave": {"min_racks_evicted": 2, "max_wave_latency_ms": 10.0},
            "cadence": {"warm_max_miss_fraction": 0.05,
                        "min_delta_miss_fraction": 0.1,
                        "require_monotone": True, "monotone_epsilon": 0.0,
                        "require_warm_recovery": True},
        },
        "tampers": [("wave", "racks_evicted", 0),
                    ("wave", "wave_latency_ms", 50.0),
                    ("cadence", "fine_miss_fraction", 0.5)],
    },
    "flow": {
        "merged": {
            "backpressure": {"droptail_drop_fraction": 0.85,
                             "flow_drop_fraction": 0.0,
                             "flow_pause_frames": 40, "flow_cnps": 39,
                             "goodput_ratio": 1.0},
            "offload": {"flow_slowdown": 8000.0, "slowdown_shift": 4.0,
                        "offload_flow_drop_fraction": 0.0},
        },
        "baseline": {
            "backpressure": {"min_droptail_drop_fraction": 0.5,
                             "max_flow_drop_fraction": 0.001,
                             "min_flow_pause_frames": 10, "min_flow_cnps": 10,
                             "min_goodput_ratio": 0.8},
            "offload": {"min_flow_slowdown": 3000.0,
                        "min_slowdown_shift": 2.0,
                        "max_offload_flow_drop_fraction": 0.001},
        },
        "tampers": [("backpressure", "flow_drop_fraction", 0.5),
                    ("backpressure", "flow_cnps", 0),
                    ("offload", "slowdown_shift", 1.0)],
    },
    "hostnic": {
        "merged": {
            "hostnic": {"kpps_tipping_ratio": 1.0,
                        "gbps_tipping_shift": 8.4,
                        "irq_capacity_ratio": 1.10,
                        "mech_interrupts": 9800,
                        "smallring_ring_drops": 15000},
        },
        "baseline": {
            "hostnic": {"min_kpps_tipping_ratio": 0.9,
                        "max_kpps_tipping_ratio": 1.1,
                        "min_gbps_tipping_shift": 4.0,
                        "min_irq_capacity_ratio": 1.03,
                        "min_mech_interrupts": 1000,
                        "min_smallring_ring_drops": 1000},
        },
        "tampers": [("hostnic", "kpps_tipping_ratio", 2.0),
                    ("hostnic", "gbps_tipping_shift", 1.0),
                    ("hostnic", "smallring_ring_drops", 0)],
    },
}


def run_sections(ctx, gate):
    for section in gate.sections:
        if section.key not in ctx.baseline:
            continue
        print(f"{section.label}:")
        if section.key not in ctx.merged:
            ctx.failures.append(f"{section.key}: missing bench part")
            continue
        leg = ctx.merged[section.key]
        policy = ctx.baseline[section.key]
        for check in section.checks:
            check(ctx, section.key, leg, policy)


def run_gate(gate, parts, baseline_path, merge_out):
    merged = {"bench": gate.name}
    for path in parts:
        with open(path) as f:
            part = json.load(f)
        for key in ("build_type", "quick") + gate.merge_keys:
            if key in part:
                merged[key] = part[key]

    with open(baseline_path) as f:
        baseline = json.load(f)

    ctx = GateContext(merged, baseline)
    run_sections(ctx, gate)

    if merge_out:
        with open(merge_out, "w") as f:
            json.dump(merged, f, indent=2)
            f.write("\n")
        print(f"wrote {merge_out}")

    if ctx.failures:
        print(gate.fail_banner)
        return 1
    print("OK")
    return 0


# --- Self-test (gate-closure fixtures, no real bench output) -----------------

def self_test() -> int:
    import copy

    problems = []
    missing = sorted(set(GATES) - set(SELF_TEST_FIXTURES))
    if missing:
        problems.append(f"gates without self-test fixtures: {missing}")

    for name, gate in sorted(GATES.items()):
        fixture = SELF_TEST_FIXTURES.get(name)
        if fixture is None:
            continue
        print(f"--- self-test: {name} (good fixture) ---")
        ctx = GateContext(fixture["merged"], fixture["baseline"])
        run_sections(ctx, gate)
        if ctx.failures:
            problems.append(f"{name}: good fixture failed {ctx.failures}")

        for section_key, field, bad_value in fixture["tampers"]:
            print(f"--- self-test: {name} (tamper {section_key}.{field} "
                  f"= {bad_value!r}, must trip) ---")
            tampered = copy.deepcopy(fixture["merged"])
            tampered[section_key][field] = bad_value
            ctx = GateContext(tampered, fixture["baseline"])
            run_sections(ctx, gate)
            if not ctx.failures:
                problems.append(
                    f"{name}: tampering {section_key}.{field} tripped no check")

    if problems:
        for problem in problems:
            print(f"FAIL: self-test: {problem}")
        return 1
    print(f"OK: self-test exercised {len(GATES)} gates")
    return 0


# --- Engine mode (hardware-relative ratios, not part merging) ----------------

def check_engine_parallel(current, baseline):
    leg = current.get("sharded_rack")
    policy = baseline.get("sharded_rack")
    if leg is None or policy is None:
        print("FAIL: --engine-parallel needs a sharded_rack section in both "
              "the bench output and the baseline")
        return 1

    speedup = leg["parallel_speedup_4t"]
    threads = int(leg.get("hardware_threads", 0))
    if threads >= 4:
        floor = policy["min_parallel_speedup"]
        print(f"sharded parallel_speedup_4t: measured x{speedup:.2f}, "
              f"floor x{floor:.2f} ({threads} hardware threads)")
        if speedup < floor:
            print("FAIL: sharded engine parallel speedup below floor")
            return 1
    else:
        # One worker per core is a physical prerequisite for wall-clock
        # speedup; on smaller runners only bound the engine's overhead.
        floor = policy["min_single_core_ratio"]
        print(f"sharded parallel_speedup_4t: measured x{speedup:.2f} on "
              f"{threads} hardware thread(s) — >=x{policy['min_parallel_speedup']:.2f} "
              f"gate needs 4, applying overhead floor x{floor:.2f}")
        if speedup < floor:
            print("FAIL: sharded engine overhead exceeds the single-core bound")
            return 1
    return 0


def check_engine(args, tolerance, engine_parallel=False):
    current_path = args[0]
    baseline_path = args[1] if len(args) > 1 else "bench/baseline_engine.json"

    with open(current_path) as f:
        current = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    measured = current["micro"]["calendar_vs_legacy_speedup"]
    reference = baseline["micro"]["calendar_vs_legacy_speedup"]
    floor = reference * (1.0 - tolerance)

    print(f"calendar_vs_legacy_speedup: measured x{measured:.2f}, "
          f"baseline x{reference:.2f}, floor x{floor:.2f} "
          f"(tolerance {tolerance:.0%})")
    print(f"calendar events/sec: {current['micro']['calendar_events_per_sec']:.3g} "
          f"(reference machine: "
          f"{baseline['micro']['reference_calendar_events_per_sec']:.3g})")

    if measured < floor:
        print("FAIL: engine speedup regressed beyond tolerance")
        return 1
    if engine_parallel and check_engine_parallel(current, baseline) != 0:
        return 1
    print("OK")
    return 0


def main() -> int:
    argv = sys.argv[1:]
    args = []
    tolerance = 0.2
    mode = None
    engine_parallel = False
    baseline_path = None
    merge_out = None
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg.startswith("--tolerance") or arg in ("--baseline", "--merge-out"):
            if "=" in arg:
                value = arg.split("=", 1)[1]
                arg = arg.split("=", 1)[0]
            else:
                i += 1
                if i >= len(argv):
                    print(f"missing value for {arg}")
                    print(__doc__)
                    return 2
                value = argv[i]
            if arg == "--tolerance":
                tolerance = float(value)
            elif arg == "--baseline":
                baseline_path = value
            else:
                merge_out = value
        elif arg.startswith("--") and arg[2:] in GATES:
            mode = arg[2:]
        elif arg == "--engine-parallel":
            engine_parallel = True
        elif arg == "--self-test":
            return self_test()
        else:
            args.append(arg)
        i += 1
    if not args:
        print(__doc__)
        return 2
    if mode is not None:
        gate = GATES[mode]
        return run_gate(gate, args, baseline_path or gate.default_baseline,
                        merge_out)
    return check_engine(args, tolerance, engine_parallel)


if __name__ == "__main__":
    sys.exit(main())
