#!/usr/bin/env python3
"""Gate for CI's bench-smoke job.

Two modes:

Engine (default): compares a fresh BENCH_engine.json against the checked-in
bench/baseline_engine.json. Absolute events/sec vary wildly across runner
hardware, so the gate uses the within-run speedup ratio of the calendar
engine over the seed-replica heap engine: that ratio must not regress more
than the tolerance (default 20%) below the recorded baseline.

    check_bench_regression.py BENCH_engine.json [baseline.json] [--tolerance 0.2]

With --engine-parallel the engine mode additionally gates the sharded
multi-rack leg: parallel (4 worker threads) must beat the single-queue
reference by the baseline's min_parallel_speedup. Wall-clock parallel
speedup needs real cores, so the floor applies only when the runner
reports >= 4 hardware threads; below that the leg degrades to an
overhead sanity bound (min_single_core_ratio) — the parallel engine may
not cost more than that fraction of single-queue throughput even when
its workers share one core.

Transitions (--transitions): merges the JSON parts written by
bench_fig6_kvs_transition / bench_fig7_paxos_transition (--out) into one
BENCH_transitions.json and gates the warm-vs-cold transition gap against
bench/baseline_transitions.json. All quantities are simulated-time metrics
(deterministic per seed), so the floors are near-absolute: the warm path
must stay gapless and the cold-minus-warm delta must not shrink below the
recorded policy floor.

    check_bench_regression.py --transitions part1.json [part2.json ...] \
        [--baseline bench/baseline_transitions.json] \
        [--merge-out BENCH_transitions.json]

Recovery (--recovery): gates the crash-recovery part written by
bench_recovery --out against bench/baseline_recovery.json. Same
deterministic-floor philosophy as --transitions: the heartbeat detector
must fire within the policy bound, the warm (checkpointed) restore must
stay near-lossless, and the cold-minus-warm delta must not shrink below
the recorded floor — i.e. checkpointed warm restore strictly beats cold
restart, by at least the policy margin.

    check_bench_regression.py --recovery BENCH_recovery.json \
        [--baseline bench/baseline_recovery.json] \
        [--merge-out BENCH_recovery.json]
"""
import json
import sys


def check_engine_parallel(current, baseline):
    leg = current.get("sharded_rack")
    policy = baseline.get("sharded_rack")
    if leg is None or policy is None:
        print("FAIL: --engine-parallel needs a sharded_rack section in both "
              "the bench output and the baseline")
        return 1

    speedup = leg["parallel_speedup_4t"]
    threads = int(leg.get("hardware_threads", 0))
    if threads >= 4:
        floor = policy["min_parallel_speedup"]
        print(f"sharded parallel_speedup_4t: measured x{speedup:.2f}, "
              f"floor x{floor:.2f} ({threads} hardware threads)")
        if speedup < floor:
            print("FAIL: sharded engine parallel speedup below floor")
            return 1
    else:
        # One worker per core is a physical prerequisite for wall-clock
        # speedup; on smaller runners only bound the engine's overhead.
        floor = policy["min_single_core_ratio"]
        print(f"sharded parallel_speedup_4t: measured x{speedup:.2f} on "
              f"{threads} hardware thread(s) — >=x{policy['min_parallel_speedup']:.2f} "
              f"gate needs 4, applying overhead floor x{floor:.2f}")
        if speedup < floor:
            print("FAIL: sharded engine overhead exceeds the single-core bound")
            return 1
    return 0


def check_engine(args, tolerance, engine_parallel=False):
    current_path = args[0]
    baseline_path = args[1] if len(args) > 1 else "bench/baseline_engine.json"

    with open(current_path) as f:
        current = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    measured = current["micro"]["calendar_vs_legacy_speedup"]
    reference = baseline["micro"]["calendar_vs_legacy_speedup"]
    floor = reference * (1.0 - tolerance)

    print(f"calendar_vs_legacy_speedup: measured x{measured:.2f}, "
          f"baseline x{reference:.2f}, floor x{floor:.2f} "
          f"(tolerance {tolerance:.0%})")
    print(f"calendar events/sec: {current['micro']['calendar_events_per_sec']:.3g} "
          f"(reference machine: "
          f"{baseline['micro']['reference_calendar_events_per_sec']:.3g})")

    if measured < floor:
        print("FAIL: engine speedup regressed beyond tolerance")
        return 1
    if engine_parallel and check_engine_parallel(current, baseline) != 0:
        return 1
    print("OK")
    return 0


def check_transitions(parts, baseline_path, merge_out):
    merged = {"bench": "transitions"}
    for path in parts:
        with open(path) as f:
            part = json.load(f)
        for key in ("build_type", "quick"):
            if key in part:
                merged[key] = part[key]
        for key in ("kvs", "kvs_smartnic", "paxos"):
            if key in part:
                merged[key] = part[key]

    with open(baseline_path) as f:
        baseline = json.load(f)

    failures = []

    def require(section, condition, message):
        status = "ok" if condition else "FAIL"
        print(f"  [{status}] {section}: {message}")
        if not condition:
            failures.append(f"{section}: {message}")

    # The FPGA (fig6) and SmartNIC (§10 placement) legs share the
    # miss-fraction policy shape.
    for section, label in (("kvs", "kvs transition (fig6)"),
                           ("kvs_smartnic", "kvs transition (smartnic leg)")):
        if section not in baseline:
            continue
        print(f"{label}:")
        if section not in merged:
            failures.append(f"{section}: missing bench part")
            continue
        kvs = merged[section]
        policy = baseline[section]
        delta = kvs["delta_miss_fraction"]
        warm = kvs["warm_post_shift_miss_fraction"]
        require(section, warm <= policy["warm_max_miss_fraction"],
                f"warm post-shift miss fraction {warm:.3f} <= "
                f"{policy['warm_max_miss_fraction']:.3f}")
        require(section, delta >= policy["min_delta_miss_fraction"],
                f"cold-warm miss-fraction delta {delta:.3f} >= "
                f"{policy['min_delta_miss_fraction']:.3f}")

    if "paxos" in baseline:
        print("paxos transition (fig7):")
        if "paxos" not in merged:
            failures.append("paxos: missing bench part")
        else:
            paxos = merged["paxos"]
            policy = baseline["paxos"]
            delta = paxos["delta_to_network_gap_ms"]
            warm = paxos["warm_to_network_gap_ms"]
            require("paxos", warm <= policy["warm_max_gap_ms"],
                    f"warm to-network gap {warm:.1f} ms <= "
                    f"{policy['warm_max_gap_ms']:.1f} ms")
            require("paxos", delta >= policy["min_delta_gap_ms"],
                    f"cold-warm gap delta {delta:.1f} ms >= "
                    f"{policy['min_delta_gap_ms']:.1f} ms")

    if merge_out:
        with open(merge_out, "w") as f:
            json.dump(merged, f, indent=2)
            f.write("\n")
        print(f"wrote {merge_out}")

    if failures:
        print("FAIL: warm-vs-cold transition gate")
        return 1
    print("OK")
    return 0


def check_recovery(parts, baseline_path, merge_out):
    merged = {"bench": "recovery"}
    for path in parts:
        with open(path) as f:
            part = json.load(f)
        for key in ("build_type", "quick", "kvs", "paxos"):
            if key in part:
                merged[key] = part[key]

    with open(baseline_path) as f:
        baseline = json.load(f)

    failures = []

    def require(section, condition, message):
        status = "ok" if condition else "FAIL"
        print(f"  [{status}] {section}: {message}")
        if not condition:
            failures.append(f"{section}: {message}")

    for section, label in (("kvs", "kvs recovery (LaKe death -> NetCache)"),
                           ("paxos", "paxos recovery (P4xos death -> software)")):
        if section not in baseline:
            continue
        print(f"{label}:")
        if section not in merged:
            failures.append(f"{section}: missing bench part")
            continue
        leg = merged[section]
        policy = baseline[section]
        detection = leg["detection_ms"]
        require(section, 0 <= detection <= policy["max_detection_ms"],
                f"detection latency {detection:.1f} ms within "
                f"(0, {policy['max_detection_ms']:.1f}] ms")
        if policy.get("require_warm_recovery"):
            require(section, bool(leg.get("warm_recovery_flag")),
                    "recovery restored from a checkpoint (warm)")
            require(section, leg.get("warm_checkpoints", 0) > 0,
                    f"checkpoints taken before the kill "
                    f"({leg.get('warm_checkpoints', 0)} > 0)")
        if section == "kvs":
            warm = leg["warm_post_recovery_miss_fraction"]
            delta = leg["delta_miss_fraction"]
            require(section, warm <= policy["warm_max_miss_fraction"],
                    f"warm post-recovery miss fraction {warm:.3f} <= "
                    f"{policy['warm_max_miss_fraction']:.3f}")
            require(section, delta >= policy["min_delta_miss_fraction"],
                    f"cold-warm miss-fraction delta {delta:.3f} >= "
                    f"{policy['min_delta_miss_fraction']:.3f}")
        else:
            warm = leg["warm_gap_ms"]
            delta = leg["delta_gap_ms"]
            require(section, 0 <= warm <= policy["warm_max_gap_ms"],
                    f"warm service gap {warm:.1f} ms <= "
                    f"{policy['warm_max_gap_ms']:.1f} ms")
            require(section, delta >= policy["min_delta_gap_ms"],
                    f"cold-warm gap delta {delta:.1f} ms >= "
                    f"{policy['min_delta_gap_ms']:.1f} ms")

    if merge_out:
        with open(merge_out, "w") as f:
            json.dump(merged, f, indent=2)
            f.write("\n")
        print(f"wrote {merge_out}")

    if failures:
        print("FAIL: crash-recovery gate")
        return 1
    print("OK")
    return 0


def main() -> int:
    argv = sys.argv[1:]
    args = []
    tolerance = 0.2
    transitions = False
    recovery = False
    engine_parallel = False
    baseline_path = None
    merge_out = None
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg.startswith("--tolerance") or arg in ("--baseline", "--merge-out"):
            if "=" in arg:
                value = arg.split("=", 1)[1]
                arg = arg.split("=", 1)[0]
            else:
                i += 1
                if i >= len(argv):
                    print(f"missing value for {arg}")
                    print(__doc__)
                    return 2
                value = argv[i]
            if arg == "--tolerance":
                tolerance = float(value)
            elif arg == "--baseline":
                baseline_path = value
            else:
                merge_out = value
        elif arg == "--transitions":
            transitions = True
        elif arg == "--recovery":
            recovery = True
        elif arg == "--engine-parallel":
            engine_parallel = True
        else:
            args.append(arg)
        i += 1
    if not args:
        print(__doc__)
        return 2
    if transitions:
        return check_transitions(
            args, baseline_path or "bench/baseline_transitions.json", merge_out)
    if recovery:
        return check_recovery(
            args, baseline_path or "bench/baseline_recovery.json", merge_out)
    return check_engine(args, tolerance, engine_parallel)


if __name__ == "__main__":
    sys.exit(main())
