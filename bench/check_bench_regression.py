#!/usr/bin/env python3
"""Gate for CI's bench-smoke job.

Compares a fresh BENCH_engine.json against the checked-in
bench/baseline_engine.json. Absolute events/sec vary wildly across runner
hardware, so the gate uses the within-run speedup ratio of the calendar
engine over the seed-replica heap engine: that ratio must not regress more
than the tolerance (default 20%) below the recorded baseline.

Usage: check_bench_regression.py BENCH_engine.json [baseline.json] [--tolerance 0.2]
"""
import json
import sys


def main() -> int:
    argv = sys.argv[1:]
    args = []
    tolerance = 0.2
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg.startswith("--tolerance"):
            if "=" in arg:
                tolerance = float(arg.split("=", 1)[1])
            else:
                i += 1
                tolerance = float(argv[i])
        else:
            args.append(arg)
        i += 1
    if not args:
        print(__doc__)
        return 2
    current_path = args[0]
    baseline_path = args[1] if len(args) > 1 else "bench/baseline_engine.json"

    with open(current_path) as f:
        current = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    measured = current["micro"]["calendar_vs_legacy_speedup"]
    reference = baseline["micro"]["calendar_vs_legacy_speedup"]
    floor = reference * (1.0 - tolerance)

    print(f"calendar_vs_legacy_speedup: measured x{measured:.2f}, "
          f"baseline x{reference:.2f}, floor x{floor:.2f} "
          f"(tolerance {tolerance:.0%})")
    print(f"calendar events/sec: {current['micro']['calendar_events_per_sec']:.3g} "
          f"(reference machine: "
          f"{baseline['micro']['reference_calendar_events_per_sec']:.3g})")

    if measured < floor:
        print("FAIL: engine speedup regressed beyond tolerance")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
