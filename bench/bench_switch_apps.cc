// Extension bench: the §9.2 "can this move to a Tofino?" question, answered.
//
// Runs the NetCache-style KVS cache and the switch DNS program on the ASIC
// model in front of a software server, measuring how much of the load the
// switch absorbs, the client latency split, and the marginal switch power —
// the §9.4 scenario where "the switch handl[es] just some of the requests,
// and the rest are handled by the host".
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/device/switch_asic.h"
#include "src/dns/nsd_server.h"
#include "src/dns/switch_dns.h"
#include "src/host/server.h"
#include "src/kvs/memcached_server.h"
#include "src/kvs/netcache.h"
#include "src/net/topology.h"
#include "src/power/cpu_power.h"
#include "src/sim/simulation.h"
#include "src/stats/csv.h"
#include "src/workload/client.h"
#include "src/workload/dns_workload.h"
#include "src/workload/etc_workload.h"

namespace incod {
namespace {

struct KvRunResult {
  double hit_ratio;
  double server_kqps;
  double client_kqps;
  double p50_us;
  double switch_overhead_pct;
  double server_watts;
};

KvRunResult RunSwitchKvs(double rate_pps, double zipf_skew) {
  Simulation sim(61);
  Topology topo(sim);
  SwitchAsicConfig asic_config;
  asic_config.rate_window = Milliseconds(10);
  SwitchAsic sw(sim, asic_config);

  ServerConfig server_config;
  server_config.node = 1;
  server_config.power_curve = I7MemcachedCurve();
  Server server(sim, server_config);
  MemcachedServer memcached;
  server.BindApp(&memcached);
  for (uint64_t k = 0; k < 100000; ++k) {
    memcached.store().Set(k, 64);
  }

  KvSwitchCacheConfig cache_config;
  cache_config.kvs_service = 1;
  cache_config.cache_entries = 4096;
  cache_config.hot_threshold = 4;
  KvSwitchCache cache(cache_config);
  sw.LoadProgram(&cache);

  EtcWorkloadConfig etc_config;
  etc_config.kvs_service = 1;
  etc_config.key_population = 100000;
  etc_config.zipf_skew = zipf_skew;
  etc_config.get_fraction = 1.0;  // GET-only to isolate the cache effect.
  EtcWorkload etc(etc_config);
  LoadClient client(sim, LoadClientConfig{}, std::make_unique<ConstantArrival>(rate_pps),
                    etc.MakeFactory());
  Link* client_link = topo.ConnectToSwitch(&sw, &client, 100);
  client.SetUplink(client_link);
  Link* server_link = topo.ConnectToSwitch(&sw, &server, 1);
  server.SetUplink(server_link);

  client.Start();
  sim.RunUntil(Milliseconds(300));  // Warm the sketch + cache.
  client.ResetStats();
  const uint64_t server_before = server.requests_completed();
  const SimTime start = sim.Now();
  sim.RunUntil(start + Milliseconds(200));

  KvRunResult result;
  result.hit_ratio = cache.HitRatio();
  result.server_kqps =
      static_cast<double>(server.requests_completed() - server_before) / 0.2 / 1000.0;
  result.client_kqps = static_cast<double>(client.received()) / 0.2 / 1000.0;
  result.p50_us = ToMicroseconds(static_cast<SimDuration>(client.latency().P50()));
  result.switch_overhead_pct =
      100.0 * (sw.PowerWatts() / sw.ForwardingOnlyWatts() - 1.0);
  result.server_watts = server.PowerWatts();
  return result;
}

}  // namespace
}  // namespace incod

int main() {
  using namespace incod;
  bench::PrintHeader("Extension: in-switch KVS and DNS on the ASIC",
                     "NetCache-style cache and switch DNS fronting a "
                     "software server (§9.2/§9.4).");

  CsvTable kv({"zipf_skew", "offered_kqps", "switch_hit_ratio", "server_kqps",
               "client_kqps", "p50_us", "switch_overhead_pct", "server_watts"});
  for (double skew : {0.7, 0.99, 1.2}) {
    const auto r = RunSwitchKvs(800000, skew);
    kv.AddRow({skew, 800.0, r.hit_ratio, r.server_kqps, r.client_kqps, r.p50_us,
               r.switch_overhead_pct, r.server_watts});
  }
  kv.WriteAligned(std::cout);
  std::cout << "\n--- csv ---\n";
  kv.WriteCsv(std::cout);
  std::cout << "\n(The skewed head lives in the switch: the hotter the "
               "workload, the more the server's load and power drop — "
               "'caching provides a large benefit in the common case' "
               "(§9.5). Efficiency of on-demand offload 'is a function of "
               "hit:miss ratio' (§9.4).)\n\n";

  // DNS on the ASIC: answered at line rate vs punted deep names.
  Simulation sim(62);
  Topology topo(sim);
  SwitchAsic sw(sim, SwitchAsicConfig{});
  Zone zone;
  zone.FillSynthetic(10000);
  DnsSwitchConfig dns_config;
  dns_config.dns_service = 1;
  dns_config.max_labels = 4;
  DnsSwitchProgram dns(&zone, dns_config);
  sw.LoadProgram(&dns);

  ServerConfig host_config;
  host_config.node = 1;
  host_config.power_curve = I7NsdCurve();
  Server host(sim, host_config);
  NsdServer nsd(&zone);
  host.BindApp(&nsd);

  DnsWorkloadConfig workload;
  workload.dns_service = 1;
  workload.zone_size = 10000;
  LoadClient client(sim, LoadClientConfig{}, std::make_unique<ConstantArrival>(500000.0),
                    MakeDnsRequestFactory(workload));
  Link* client_link = topo.ConnectToSwitch(&sw, &client, 100);
  client.SetUplink(client_link);
  Link* host_link = topo.ConnectToSwitch(&sw, &host, 1);
  host.SetUplink(host_link);
  client.Start();
  sim.RunUntil(Milliseconds(300));

  CsvTable dns_table({"metric", "value"});
  dns_table.AddRow({std::string("answered in switch"),
                    static_cast<int64_t>(dns.answered())});
  dns_table.AddRow({std::string("punted to host (deep names)"),
                    static_cast<int64_t>(dns.punted_to_host())});
  dns_table.AddRow({std::string("host answered"), static_cast<int64_t>(nsd.answered())});
  dns_table.AddRow({std::string("client p50 us"),
                    ToMicroseconds(static_cast<SimDuration>(client.latency().P50()))});
  dns_table.WriteAligned(std::cout);
  std::cout << "\n(§9.2: DNS fits the switch; queries deeper than the parse "
               "budget fall back to the host as iterative requests.)\n";
  return 0;
}
