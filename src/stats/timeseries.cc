#include "src/stats/timeseries.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace incod {

double TimeSeries::MinValue() const {
  double m = std::numeric_limits<double>::infinity();
  for (const auto& s : samples_) {
    m = std::min(m, s.value);
  }
  return m;
}

double TimeSeries::MaxValue() const {
  double m = -std::numeric_limits<double>::infinity();
  for (const auto& s : samples_) {
    m = std::max(m, s.value);
  }
  return m;
}

double TimeSeries::MeanValue() const {
  if (samples_.empty()) {
    return 0;
  }
  double sum = 0;
  for (const auto& s : samples_) {
    sum += s.value;
  }
  return sum / static_cast<double>(samples_.size());
}

double TimeSeries::MeanValueBetween(SimTime from, SimTime to) const {
  double sum = 0;
  size_t n = 0;
  for (const auto& s : samples_) {
    if (s.at >= from && s.at < to) {
      sum += s.value;
      ++n;
    }
  }
  return n == 0 ? 0 : sum / static_cast<double>(n);
}

SlidingWindowRate::SlidingWindowRate(SimDuration window) : window_(window) {
  if (window <= 0) {
    throw std::invalid_argument("SlidingWindowRate: window must be > 0");
  }
}

void SlidingWindowRate::RecordEvent(SimTime now, uint64_t count) {
  Evict(now);
  events_.emplace_back(now, count);
  in_window_ += count;
}

double SlidingWindowRate::RatePerSecond(SimTime now) {
  Evict(now);
  return static_cast<double>(in_window_) / ToSeconds(window_);
}

void SlidingWindowRate::Evict(SimTime now) {
  const SimTime cutoff = now - window_;
  while (!events_.empty() && events_.front().first < cutoff) {
    in_window_ -= events_.front().second;
    events_.pop_front();
  }
}

SlidingWindowMean::SlidingWindowMean(SimDuration window) : window_(window) {
  if (window <= 0) {
    throw std::invalid_argument("SlidingWindowMean: window must be > 0");
  }
}

void SlidingWindowMean::AddSample(SimTime now, double value) {
  Evict(now);
  samples_.emplace_back(now, value);
}

double SlidingWindowMean::Mean(SimTime now) {
  Evict(now);
  if (samples_.empty()) {
    return 0;
  }
  double sum = 0;
  for (const auto& [t, v] : samples_) {
    sum += v;
  }
  return sum / static_cast<double>(samples_.size());
}

bool SlidingWindowMean::WindowFull(SimTime now) {
  Evict(now);
  if (samples_.empty()) {
    return false;
  }
  return now - samples_.front().first >= window_ - 1;
}

void SlidingWindowMean::Evict(SimTime now) {
  const SimTime cutoff = now - window_;
  while (!samples_.empty() && samples_.front().first < cutoff) {
    samples_.pop_front();
  }
}

}  // namespace incod
