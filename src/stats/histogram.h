// Latency histogram with log-spaced buckets and percentile queries.
//
// Modeled on HdrHistogram-style recording: values (nanoseconds, counts, ...)
// are bucketed with bounded relative error so p50/p99/p999 queries are cheap
// and allocation-free after construction.
#ifndef INCOD_SRC_STATS_HISTOGRAM_H_
#define INCOD_SRC_STATS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace incod {

class Histogram {
 public:
  // Tracks values in [1, max_value] with ~`significant_bits` bits of relative
  // precision (default: value resolved to within 1/64 ≈ 1.6 %).
  explicit Histogram(uint64_t max_value = UINT64_C(1) << 40, int significant_bits = 6);

  void Record(uint64_t value);
  void RecordN(uint64_t value, uint64_t count);

  uint64_t count() const { return total_count_; }
  uint64_t min() const;
  uint64_t max() const;
  double Mean() const;

  // Returns the value at the given quantile q in [0, 1]. Returns 0 when the
  // histogram is empty.
  uint64_t ValueAtQuantile(double q) const;

  uint64_t P50() const { return ValueAtQuantile(0.50); }
  uint64_t P90() const { return ValueAtQuantile(0.90); }
  uint64_t P99() const { return ValueAtQuantile(0.99); }
  uint64_t P999() const { return ValueAtQuantile(0.999); }

  void Reset();

  // Merges another histogram with identical geometry.
  void Merge(const Histogram& other);

 private:
  size_t BucketIndex(uint64_t value) const;
  uint64_t BucketLowerBound(size_t index) const;
  uint64_t BucketRepresentative(size_t index) const;

  int significant_bits_;
  uint64_t max_value_;
  uint64_t sub_bucket_count_;   // 2^(significant_bits+1)
  uint64_t sub_bucket_half_;    // 2^significant_bits
  std::vector<uint64_t> counts_;
  uint64_t total_count_ = 0;
  uint64_t recorded_min_ = UINT64_MAX;
  uint64_t recorded_max_ = 0;
  double sum_ = 0;
};

}  // namespace incod

#endif  // INCOD_SRC_STATS_HISTOGRAM_H_
