// Count-min sketch for heavy-hitter (hot key) detection.
//
// NetCache-style in-switch caches decide what to cache with a count-min
// sketch over the key stream (Jin et al., SOSP'17 — cited by the paper as
// the canonical in-network cache). Estimates never under-count; collisions
// can over-count, which only risks caching a lukewarm key.
#ifndef INCOD_SRC_STATS_COUNT_MIN_H_
#define INCOD_SRC_STATS_COUNT_MIN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace incod {

class CountMinSketch {
 public:
  // width: counters per row (power of two recommended); depth: hash rows.
  CountMinSketch(size_t width, size_t depth);

  void Increment(uint64_t key, uint64_t by = 1);
  uint64_t Estimate(uint64_t key) const;

  // Halves every counter: a cheap sliding-window decay (NetCache resets
  // its sketch every epoch; halving keeps more history).
  void Decay();
  void Clear();

  size_t width() const { return width_; }
  size_t depth() const { return depth_; }

 private:
  size_t Index(uint64_t key, size_t row) const;

  size_t width_;
  size_t depth_;
  std::vector<uint64_t> counters_;  // depth_ rows of width_ counters.
};

}  // namespace incod

#endif  // INCOD_SRC_STATS_COUNT_MIN_H_
