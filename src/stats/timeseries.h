// Time-series recording and sliding-window rate estimation.
//
// TimeSeries stores (time, value) samples for benchmark/figure output.
// SlidingWindowRate implements the averaging the paper's on-demand
// controllers use: "the average message rate ... over the averaging period
// (implemented as a sliding window)" (§9.1).
#ifndef INCOD_SRC_STATS_TIMESERIES_H_
#define INCOD_SRC_STATS_TIMESERIES_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace incod {

class TimeSeries {
 public:
  struct Sample {
    SimTime at;
    double value;
  };

  explicit TimeSeries(std::string name = "") : name_(std::move(name)) {}

  void Append(SimTime at, double value) { samples_.push_back({at, value}); }

  const std::vector<Sample>& samples() const { return samples_; }
  const std::string& name() const { return name_; }
  bool empty() const { return samples_.empty(); }
  size_t size() const { return samples_.size(); }

  double MinValue() const;
  double MaxValue() const;
  double MeanValue() const;
  // Mean over samples with at in [from, to).
  double MeanValueBetween(SimTime from, SimTime to) const;

 private:
  std::string name_;
  std::vector<Sample> samples_;
};

// Counts events and reports the average rate (events/second) over a trailing
// window. Old events are evicted lazily on access.
class SlidingWindowRate {
 public:
  explicit SlidingWindowRate(SimDuration window);

  void RecordEvent(SimTime now, uint64_t count = 1);

  // Average events/second over [now - window, now].
  double RatePerSecond(SimTime now);

  SimDuration window() const { return window_; }
  void Clear() { events_.clear(); }

 private:
  void Evict(SimTime now);

  SimDuration window_;
  std::deque<std::pair<SimTime, uint64_t>> events_;
  uint64_t in_window_ = 0;
};

// Sliding mean of a sampled scalar (CPU %, watts) over a trailing window.
class SlidingWindowMean {
 public:
  explicit SlidingWindowMean(SimDuration window);

  void AddSample(SimTime now, double value);
  double Mean(SimTime now);
  // True once samples cover at least the full window span.
  bool WindowFull(SimTime now);
  void Clear() { samples_.clear(); }

 private:
  void Evict(SimTime now);

  SimDuration window_;
  std::deque<std::pair<SimTime, double>> samples_;
};

}  // namespace incod

#endif  // INCOD_SRC_STATS_TIMESERIES_H_
