// Small CSV table writer used by the benchmark harness to emit the rows and
// series behind each figure/table of the paper.
#ifndef INCOD_SRC_STATS_CSV_H_
#define INCOD_SRC_STATS_CSV_H_

#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace incod {

class CsvTable {
 public:
  using Cell = std::variant<std::string, double, int64_t>;

  explicit CsvTable(std::vector<std::string> columns);

  // Appends a row; must match the column count.
  void AddRow(std::vector<Cell> cells);

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return columns_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }

  // Writes RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void WriteCsv(std::ostream& os) const;

  // Writes an aligned human-readable table (what the benches print).
  void WriteAligned(std::ostream& os) const;

 private:
  static std::string CellToString(const Cell& c);
  static std::string EscapeCsv(const std::string& s);

  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace incod

#endif  // INCOD_SRC_STATS_CSV_H_
