#include "src/stats/csv.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace incod {

CsvTable::CsvTable(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("CsvTable: need at least one column");
  }
}

void CsvTable::AddRow(std::vector<Cell> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("CsvTable::AddRow: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string CsvTable::CellToString(const Cell& c) {
  if (std::holds_alternative<std::string>(c)) {
    return std::get<std::string>(c);
  }
  if (std::holds_alternative<int64_t>(c)) {
    return std::to_string(std::get<int64_t>(c));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", std::get<double>(c));
  return buf;
}

std::string CsvTable::EscapeCsv(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') {
      out += "\"\"";
    } else {
      out += ch;
    }
  }
  out += '"';
  return out;
}

void CsvTable::WriteCsv(std::ostream& os) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    os << (i ? "," : "") << EscapeCsv(columns_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << (i ? "," : "") << EscapeCsv(CellToString(row[i]));
    }
    os << '\n';
  }
}

void CsvTable::WriteAligned(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].size();
  }
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      r.push_back(CellToString(row[i]));
      widths[i] = std::max(widths[i], r.back().size());
    }
    cells.push_back(std::move(r));
  }
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < r.size(); ++i) {
      os << (i ? "  " : "");
      os << r[i];
      os << std::string(widths[i] - r[i].size(), ' ');
    }
    os << '\n';
  };
  emit(columns_);
  for (const auto& r : cells) {
    emit(r);
  }
}

}  // namespace incod
