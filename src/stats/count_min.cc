#include "src/stats/count_min.h"

#include <algorithm>
#include <stdexcept>

namespace incod {

namespace {
// splitmix64 finalizer as the per-row hash mixer.
uint64_t Mix(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

CountMinSketch::CountMinSketch(size_t width, size_t depth)
    : width_(width), depth_(depth) {
  if (width == 0 || depth == 0) {
    throw std::invalid_argument("CountMinSketch: width/depth must be > 0");
  }
  counters_.assign(width_ * depth_, 0);
}

size_t CountMinSketch::Index(uint64_t key, size_t row) const {
  // Distinct row seeds give near-independent hashes.
  const uint64_t h = Mix(key + 0x9e3779b97f4a7c15ULL * (row + 1));
  return row * width_ + static_cast<size_t>(h % width_);
}

void CountMinSketch::Increment(uint64_t key, uint64_t by) {
  for (size_t row = 0; row < depth_; ++row) {
    counters_[Index(key, row)] += by;
  }
}

uint64_t CountMinSketch::Estimate(uint64_t key) const {
  uint64_t best = UINT64_MAX;
  for (size_t row = 0; row < depth_; ++row) {
    best = std::min(best, counters_[Index(key, row)]);
  }
  return best;
}

void CountMinSketch::Decay() {
  for (auto& c : counters_) {
    c >>= 1;
  }
}

void CountMinSketch::Clear() { std::fill(counters_.begin(), counters_.end(), 0); }

}  // namespace incod
