// Lightweight counters shared by applications and devices.
#ifndef INCOD_SRC_STATS_COUNTERS_H_
#define INCOD_SRC_STATS_COUNTERS_H_

#include <cstdint>

namespace incod {

// Monotonic event counter (packets processed, cache hits, ...).
class Counter {
 public:
  void Increment(uint64_t by = 1) { value_ += by; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

// Hit/miss ratio tracker for the layered caches.
class RatioCounter {
 public:
  void Hit() { ++hits_; }
  void Miss() { ++misses_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t total() const { return hits_ + misses_; }
  double HitRatio() const {
    const uint64_t t = total();
    return t == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(t);
  }
  void Reset() { hits_ = misses_ = 0; }

 private:
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace incod

#endif  // INCOD_SRC_STATS_COUNTERS_H_
