#include "src/stats/histogram.h"

#include <bit>
#include <stdexcept>

namespace incod {

Histogram::Histogram(uint64_t max_value, int significant_bits)
    : significant_bits_(significant_bits), max_value_(max_value) {
  if (significant_bits < 1 || significant_bits > 14) {
    throw std::invalid_argument("Histogram: significant_bits out of range");
  }
  if (max_value < 2) {
    throw std::invalid_argument("Histogram: max_value too small");
  }
  sub_bucket_count_ = UINT64_C(1) << (significant_bits_ + 1);
  sub_bucket_half_ = UINT64_C(1) << significant_bits_;
  // Number of power-of-two "super buckets" needed to cover max_value.
  int super = 1;
  uint64_t top = sub_bucket_count_ - 1;
  while (top < max_value_ && super < 64) {
    top = (top << 1) | 1;
    ++super;
  }
  // First super-bucket has sub_bucket_count_ slots; each later one adds half.
  counts_.assign(sub_bucket_count_ + static_cast<size_t>(super - 1) * sub_bucket_half_, 0);
}

size_t Histogram::BucketIndex(uint64_t value) const {
  if (value >= max_value_) {
    value = max_value_;
  }
  if (value < sub_bucket_count_) {
    return static_cast<size_t>(value);
  }
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - significant_bits_;
  const uint64_t sub = value >> shift;  // In [sub_bucket_half_, sub_bucket_count_).
  const size_t super = static_cast<size_t>(shift);  // >= 1 here.
  return sub_bucket_count_ + (super - 1) * sub_bucket_half_ +
         static_cast<size_t>(sub - sub_bucket_half_);
}

uint64_t Histogram::BucketLowerBound(size_t index) const {
  if (index < sub_bucket_count_) {
    return index;
  }
  const size_t rel = index - sub_bucket_count_;
  const size_t super = rel / sub_bucket_half_ + 1;
  const uint64_t sub = sub_bucket_half_ + rel % sub_bucket_half_;
  return sub << super;
}

uint64_t Histogram::BucketRepresentative(size_t index) const {
  if (index < sub_bucket_count_) {
    return index;
  }
  const size_t rel = index - sub_bucket_count_;
  const size_t super = rel / sub_bucket_half_ + 1;
  const uint64_t lo = BucketLowerBound(index);
  // Midpoint of the bucket: width is 2^super.
  return lo + (UINT64_C(1) << super) / 2;
}

void Histogram::Record(uint64_t value) { RecordN(value, 1); }

void Histogram::RecordN(uint64_t value, uint64_t count) {
  if (count == 0) {
    return;
  }
  const size_t idx = BucketIndex(value);
  counts_[idx] += count;
  total_count_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
  if (value < recorded_min_) {
    recorded_min_ = value;
  }
  if (value > recorded_max_) {
    recorded_max_ = value;
  }
}

uint64_t Histogram::min() const { return total_count_ == 0 ? 0 : recorded_min_; }
uint64_t Histogram::max() const { return recorded_max_; }

double Histogram::Mean() const {
  if (total_count_ == 0) {
    return 0;
  }
  return sum_ / static_cast<double>(total_count_);
}

uint64_t Histogram::ValueAtQuantile(double q) const {
  if (total_count_ == 0) {
    return 0;
  }
  if (q < 0) {
    q = 0;
  }
  if (q > 1) {
    q = 1;
  }
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total_count_) + 0.5);
  if (target == 0) {
    target = 1;
  }
  if (target > total_count_) {
    target = total_count_;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      uint64_t rep = BucketRepresentative(i);
      if (rep > recorded_max_) {
        rep = recorded_max_;
      }
      if (rep < recorded_min_) {
        rep = recorded_min_;
      }
      return rep;
    }
  }
  return recorded_max_;
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_count_ = 0;
  recorded_min_ = UINT64_MAX;
  recorded_max_ = 0;
  sum_ = 0;
}

void Histogram::Merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size() ||
      other.significant_bits_ != significant_bits_) {
    throw std::invalid_argument("Histogram::Merge: geometry mismatch");
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_count_ += other.total_count_;
  sum_ += other.sum_;
  if (other.total_count_ > 0) {
    if (other.recorded_min_ < recorded_min_) {
      recorded_min_ = other.recorded_min_;
    }
    if (other.recorded_max_ > recorded_max_) {
      recorded_max_ = other.recorded_max_;
    }
  }
}

}  // namespace incod
