// Umbrella header: the full public API of the incod library.
//
// Most users only need a scenario testbed plus a workload; include the
// individual headers for finer-grained dependencies.
#ifndef INCOD_SRC_INCOD_H_
#define INCOD_SRC_INCOD_H_

// Simulation core.
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

// Measurement.
#include "src/stats/count_min.h"
#include "src/stats/counters.h"
#include "src/stats/csv.h"
#include "src/stats/histogram.h"
#include "src/stats/timeseries.h"

// Power modeling.
#include "src/power/cpu_power.h"
#include "src/power/curve.h"
#include "src/power/energy_model.h"
#include "src/power/ledger.h"
#include "src/power/meter.h"
#include "src/power/power_source.h"
#include "src/power/psu.h"

// Network substrate.
#include "src/net/link.h"
#include "src/net/packet.h"
#include "src/net/switch.h"
#include "src/net/topology.h"

// Unified application layer: one App contract across host / FPGA NIC /
// switch-ASIC placements, typed state snapshots, and the name -> factory
// registry scenarios build from.
#include "src/app/app.h"
#include "src/app/app_registry.h"
#include "src/app/app_state.h"
#include "src/app/smartnic_app.h"
#include "src/app/switch_app.h"

// Hosts and devices.
#include "src/device/conventional_nic.h"
#include "src/device/fpga_app.h"
#include "src/device/fpga_nic.h"
#include "src/device/offload_target.h"
#include "src/device/smartnic.h"
#include "src/device/switch_asic.h"
#include "src/device/switch_offload.h"
#include "src/host/server.h"
#include "src/host/software_app.h"

// Fault injection.
#include "src/fault/fault_injector.h"

// Applications.
#include "src/dns/dns_message.h"
#include "src/dns/emu_dns.h"
#include "src/dns/nsd_server.h"
#include "src/dns/switch_dns.h"
#include "src/dns/zone.h"
#include "src/kvs/kv_protocol.h"
#include "src/kvs/kv_store.h"
#include "src/kvs/lake.h"
#include "src/kvs/memcached_server.h"
#include "src/kvs/netcache.h"
#include "src/paxos/p4xos.h"
#include "src/paxos/paxos_client.h"
#include "src/paxos/paxos_msg.h"
#include "src/paxos/roles.h"
#include "src/paxos/software_roles.h"

// On-demand computing (the paper's contribution).
#include "src/ondemand/controller.h"
#include "src/ondemand/energy_advisor.h"
#include "src/ondemand/energy_controller.h"
#include "src/ondemand/migrator.h"
#include "src/ondemand/rack.h"

// Workloads and testbeds.
#include "src/scenarios/dns_testbed.h"
#include "src/scenarios/kvs_testbed.h"
#include "src/scenarios/paxos_testbed.h"
#include "src/scenarios/rack_scenario.h"
#include "src/scenarios/scenario_spec.h"
#include "src/scenarios/testbed_builder.h"
#include "src/scenarios/trace_rack.h"
#include "src/workload/arrival.h"
#include "src/workload/client.h"
#include "src/workload/dns_workload.h"
#include "src/workload/dynamo.h"
#include "src/workload/etc_workload.h"
#include "src/workload/google_trace.h"

#endif  // INCOD_SRC_INCOD_H_
