#include "src/device/fpga_nic.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace incod {

namespace {
// Module names used in the board ledger.
constexpr const char* kShellModule = "shell";
constexpr const char* kPcieModule = "pcie_dma";

bool IsMemoryModule(const std::string& name) {
  return name == "dram_if" || name == "sram_if";
}
}  // namespace

FpgaNic::FpgaNic(Simulation& sim, FpgaNicConfig config)
    : sim_(sim),
      config_(std::move(config)),
      ledger_(config_.name + "/board"),
      processed_rate_(config_.rate_window),
      app_ingress_rate_(config_.rate_window) {
  ModulePowerSpec shell = MakeModuleSpec(kShellModule, kFpgaShellWatts, 1.0, 1.0);
  ModulePowerSpec pcie = MakeModuleSpec(kPcieModule, kFpgaPcieWatts, 1.0, 1.0);
  ledger_.AddModule(shell, ModulePowerState::kIdle);
  ledger_.AddModule(pcie, ModulePowerState::kIdle);
}

void FpgaNic::InstallApp(App* app) {
  if (app_ != nullptr) {
    throw std::logic_error("FpgaNic: an app is already installed");
  }
  if (app == nullptr) {
    throw std::invalid_argument("FpgaNic::InstallApp: null app");
  }
  if (!app->SupportsPlacement(PlacementKind::kFpgaNic)) {
    throw std::invalid_argument("FpgaNic: " + app->AppName() +
                                " does not support the FPGA-NIC placement");
  }
  app_ = app;
  app_->BindContext(this);
  if (auto* legacy = dynamic_cast<FpgaApp*>(app_)) {
    legacy->set_nic(this);
  }
  profile_ = app_->OffloadProfile();
  pipeline_ = profile_.pipeline;
  if (pipeline_.workers < 1) {
    throw std::invalid_argument("FpgaNic: pipeline needs >= 1 worker");
  }
  workers_.assign(static_cast<size_t>(pipeline_.workers), Worker{});
  for (const auto& spec : profile_.power_modules) {
    ledger_.AddModule(spec, ModulePowerState::kIdle);
    if (IsMemoryModule(spec.name)) {
      app_memory_modules_.push_back(spec.name);
    } else {
      app_logic_modules_.push_back(spec.name);
    }
  }
  UpdateLogicStates();
}

void FpgaNic::SetAppActive(bool active) {
  if (app_ == nullptr && active) {
    throw std::logic_error("FpgaNic: no app installed");
  }
  if (app_active_ == active) {
    return;
  }
  app_active_ = active;
  if (app_ != nullptr) {
    if (active) {
      app_->OnActivate();
    } else {
      app_->OnDeactivate();
    }
  }
  UpdateLogicStates();
}

void FpgaNic::SetClockGating(bool enabled) {
  clock_gating_ = enabled;
  UpdateLogicStates();
}

void FpgaNic::SetMemoryReset(bool enabled) {
  const bool entering_reset = enabled && !memory_reset_;
  memory_reset_ = enabled;
  UpdateLogicStates();
  if (entering_reset && app_ != nullptr) {
    app_->OnMemoryReset();
  }
}

void FpgaNic::PowerGateModule(const std::string& module) {
  ledger_.SetState(module, ModulePowerState::kPowerGated);
  power_gated_.push_back(module);
}

void FpgaNic::UpdateLogicStates() {
  auto is_gated = [this](const std::string& name) {
    return std::find(power_gated_.begin(), power_gated_.end(), name) != power_gated_.end();
  };
  for (const auto& name : app_logic_modules_) {
    if (is_gated(name)) {
      continue;
    }
    if (app_active_) {
      ledger_.SetState(name, ModulePowerState::kActive);
    } else {
      ledger_.SetState(name, clock_gating_ ? ModulePowerState::kClockGated
                                           : ModulePowerState::kIdle);
    }
  }
  for (const auto& name : app_memory_modules_) {
    if (is_gated(name)) {
      continue;
    }
    if (app_active_) {
      ledger_.SetState(name, ModulePowerState::kActive);
    } else {
      ledger_.SetState(name, memory_reset_ ? ModulePowerState::kReset
                                           : ModulePowerState::kIdle);
    }
  }
}

void FpgaNic::SetReprogramming(bool reprogramming) { reprogramming_ = reprogramming; }

void FpgaNic::PowerGateParkedApp() {
  // The bitstream is not resident while parked: only the always-on shell,
  // PCIe/DMA, and external memory interfaces keep drawing (§9.2).
  for (const auto& name : ledger_.ModuleNames()) {
    if (name != kShellModule && name != kPcieModule && !IsMemoryModule(name)) {
      ledger_.SetState(name, ModulePowerState::kPowerGated);
    }
  }
}

std::string FpgaNic::TargetName() const {
  if (app_ != nullptr) {
    return config_.name + "/" + app_->AppName();
  }
  return config_.name;
}

void FpgaNic::Receive(Packet packet) {
  if (reprogramming_) {
    dropped_.Increment();
    return;
  }
  const bool from_host = packet.src == config_.host_node;
  if (from_host) {
    if (app_ != nullptr && app_active_ && !engine_dead() && app_->Matches(packet)) {
      app_->OnHostEgress(*this, packet);
    }
    TransmitToNetwork(std::move(packet));
    return;
  }
  // Network-side ingress: the packet classifier decides (LaKe's classifier,
  // and the one this paper adds to Emu DNS, §3.3). Ingress is counted even
  // after engine death so the rate signal the orchestrator re-places on
  // survives the fault.
  if (app_ != nullptr && app_->Matches(packet)) {
    app_ingress_.Increment();
    app_ingress_rate_.RecordEvent(sim_.Now());
  }
  if (app_active_ && app_ != nullptr && app_->Matches(packet)) {
    if (engine_dead()) {
      // Classifier still steers into the (dead) app core: the packet is
      // lost, not silently serviced and not punted — the host placement is
      // only authoritative again after recovery flips the classifier.
      dead_dropped_.Increment();
      return;
    }
    sim_.Schedule(config_.classifier_latency,
                  [this, pkt = std::move(packet)]() mutable { AdmitToPipeline(std::move(pkt)); });
    return;
  }
  DeliverToHost(std::move(packet));
}

void FpgaNic::AdmitToPipeline(Packet packet) {
  if (engine_dead()) {
    dead_dropped_.Increment();
    return;
  }
  // Pick the worker that frees up first (input arbiter).
  const SimTime now = sim_.Now();
  Worker* best = nullptr;
  for (auto& w : workers_) {
    if (best == nullptr || w.busy_until < best->busy_until) {
      best = &w;
    }
  }
  const SimTime start = std::max(now, best->busy_until);
  // Bound the backlog: waiting time divided by service gives queue depth.
  const double backlog =
      static_cast<double>(start - now) / static_cast<double>(std::max<SimDuration>(
                                             pipeline_.worker_service, 1));
  if (backlog > static_cast<double>(pipeline_.input_queue_capacity)) {
    dropped_.Increment();
    return;
  }
  best->busy_until = start + pipeline_.worker_service;
  const SimTime done = start + pipeline_.worker_service + pipeline_.pipeline_latency;
  sim_.ScheduleAt(done, [this, pkt = std::move(packet)]() mutable {
    if (engine_dead()) {
      // The engine died while this packet sat in the pipeline: the scheduled
      // completion must not run app code against dead hardware.
      dead_dropped_.Increment();
      return;
    }
    hw_processed_.Increment();
    processed_rate_.RecordEvent(sim_.Now());
    app_->HandlePacket(*this, std::move(pkt));
  });
}

void FpgaNic::TransmitToNetwork(Packet packet) {
  if (net_link_ == nullptr) {
    throw std::logic_error("FpgaNic: no network link");
  }
  net_link_->Send(this, std::move(packet));
}

void FpgaNic::OnLinkCongestion(Link* link, bool congested) {
  // Only the host-side (PCIe) backlog is propagated: the host stopped
  // draining, so hold the ToR's transmissions at this port. Network-side
  // congestion is the switch's problem, not ours.
  if (link != host_link_ || net_link_ == nullptr || !net_link_->config().flow.pfc) {
    return;
  }
  if (congested) {
    ++pause_propagations_;
  }
  net_link_->PauseUpstream(this, congested);
}

void FpgaNic::DeliverToHost(Packet packet) {
  if (host_link_ == nullptr) {
    // Standalone operation: no host. Count and drop.
    dropped_.Increment();
    return;
  }
  to_host_.Increment();
  host_link_->Send(this, std::move(packet));
}

double FpgaNic::CapacityPps() const {
  if (app_ == nullptr || pipeline_.worker_service <= 0) {
    return 0;
  }
  return static_cast<double>(pipeline_.workers) * 1e9 /
         static_cast<double>(pipeline_.worker_service);
}

double FpgaNic::ProcessedRatePerSecond() const {
  return processed_rate_.RatePerSecond(sim_.Now());
}

double FpgaNic::AppIngressRatePerSecond() const {
  return app_ingress_rate_.RatePerSecond(sim_.Now());
}

double FpgaNic::Utilization() const {
  const double cap = CapacityPps();
  if (cap <= 0) {
    return 0;
  }
  return std::min(1.0, ProcessedRatePerSecond() / cap);
}

double FpgaNic::PowerWatts() const {
  double dc = ledger_.PowerWatts();
  if (app_ != nullptr && app_active_ && !engine_dead()) {
    dc += profile_.dynamic_watts_at_capacity * Utilization();
  }
  if (config_.standalone) {
    return standalone_psu_.WallWatts(dc + kStandaloneOverheadWatts);
  }
  return dc;
}

}  // namespace incod
