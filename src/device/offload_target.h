// Device-agnostic offload target interface.
//
// The paper's thesis is that in-network computing is a *placement decision*
// across heterogeneous targets — FPGA NICs (§5), SmartNICs (§10), and
// programmable switch ASICs (§6) — not a property of one board. Everything
// the on-demand layer (§9) needs from a device fits a narrow surface:
//
//   * classifier  — divert application traffic into the device or not
//                   (LaKe's classifier flip, a Tofino program load);
//   * park state  — the §9.2 idle knobs (clock gating, memory reset,
//                   reprogramming) where the silicon supports them;
//   * rate        — classifier-visible ingress and processed rates, the
//                   signals both §9.1 controllers average;
//   * power       — watts attributable to hosting the offload (whole-board
//                   for a NIC, marginal program power for a ToR switch that
//                   forwards either way, §9.4) and an absorbable capacity.
//
// Controllers, migrators, and the rack orchestrator operate on this
// interface only, so the same decision logic drives any backend.
#ifndef INCOD_SRC_DEVICE_OFFLOAD_TARGET_H_
#define INCOD_SRC_DEVICE_OFFLOAD_TARGET_H_

#include <cstdint>
#include <string>

namespace incod {

// Which park-state knobs the silicon exposes (§5.1/§9.2). A knob a target
// lacks is a silent no-op: an ASIC pipeline is always warm, so "keep warm"
// costs it nothing and "gated park" degrades to the same thing.
struct OffloadTargetTraits {
  bool supports_clock_gating = false;
  bool supports_memory_reset = false;
  bool supports_reprogramming = false;
};

class OffloadTarget {
 public:
  virtual ~OffloadTarget() = default;

  virtual std::string TargetName() const = 0;
  virtual OffloadTargetTraits Traits() const { return {}; }

  // --- Classifier surface ---
  // Active: matching packets are processed in the device; inactive:
  // everything passes through to the host placement.
  virtual void SetAppActive(bool active) = 0;
  virtual bool app_active() const = 0;

  // --- Park-state surface (no-ops where unsupported) ---
  virtual void SetClockGating(bool enabled) { (void)enabled; }
  virtual bool clock_gating() const { return false; }
  virtual void SetMemoryReset(bool enabled) { (void)enabled; }
  virtual bool memory_reset() const { return false; }
  virtual void SetReprogramming(bool reprogramming) { (void)reprogramming; }
  virtual bool reprogramming() const { return false; }
  // Deepest park: remove the inactive app from the design entirely
  // (partial-reconfiguration parking, §9.2). Infrastructure that must stay
  // up (shell, PCIe, forwarding pipeline) keeps drawing.
  virtual void PowerGateParkedApp() {}

  // --- Rate surface (§9.1 controller signals) ---
  // Ingress rate of packets the classifier recognizes as the app's traffic,
  // counted whether or not the app is active.
  virtual double AppIngressRatePerSecond() const = 0;
  virtual uint64_t app_ingress_packets() const = 0;
  // Rate actually processed in the device (0 while parked).
  virtual double ProcessedRatePerSecond() const = 0;

  // --- Power / capacity surface ---
  // Watts attributable to this offload placement right now. Whole-board
  // power for a dedicated NIC; *marginal* program power for a switch that
  // forwards the traffic either way (§9.4).
  virtual double OffloadPowerWatts() const = 0;
  // Packets/second the offloaded app can absorb (0: unknown/unbounded).
  virtual double OffloadCapacityPps() const = 0;

  // --- Fault surface ---
  // Kills the offload engine mid-service: the device stops processing app
  // traffic (matching packets and already-admitted pipeline work are dropped
  // and counted, never serviced) until recovery logic re-places the app
  // elsewhere. Pass-through forwarding may survive where the silicon
  // separates the two (an FPGA shell keeps forwarding; a switch keeps
  // routing). Irreversible within a run — recovery means re-placement, not
  // resurrection.
  virtual void KillEngine() { engine_dead_ = true; }
  // Heartbeat signal the failure detector polls.
  virtual bool TargetAlive() const { return !engine_dead_; }
  bool engine_dead() const { return engine_dead_; }
  // Packets/completions dropped because the engine was dead.
  virtual uint64_t dead_dropped() const { return 0; }

 protected:
  bool engine_dead_ = false;
};

}  // namespace incod

#endif  // INCOD_SRC_DEVICE_OFFLOAD_TARGET_H_
