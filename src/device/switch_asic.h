// Tofino-like programmable switch ASIC model (§6 of the paper).
//
// The switch always forwards at line rate; loading an additional in-network
// computing program changes power only marginally. Power is reported both in
// absolute watts and normalized to the device maximum, because the paper
// only publishes normalized numbers ("Due to the large variance in power
// between different ASICs and ASIC vendors, we only report normalized power
// consumption").
//
// Model (calibrated to §6):
//   P(rate) = Pmax * (idle_frac + (1 - idle_frac) * rate/line_rate)
//             * (1 + program_overhead * rate/line_rate)
// with idle_frac = 0.84 (min-to-max spread < 20 %), program overheads:
// L2 forwarding 0, +P4xos <= 2 %, diag.p4 4.8 %.
#ifndef INCOD_SRC_DEVICE_SWITCH_ASIC_H_
#define INCOD_SRC_DEVICE_SWITCH_ASIC_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/net/switch.h"
#include "src/power/power_source.h"
#include "src/sim/simulation.h"
#include "src/stats/counters.h"
#include "src/stats/timeseries.h"

namespace incod {

class SwitchAsic;

// A data-plane program compiled into the switch pipeline (beyond plain L2
// forwarding, which is always present). Programs inspect packets at line
// rate; consuming a packet terminates it in the switch (request in, reply
// out — the paper notes this halves application packets through the switch).
class SwitchProgram {
 public:
  virtual ~SwitchProgram() = default;

  virtual std::string ProgramName() const = 0;

  // Fractional power overhead at full load relative to L2 forwarding.
  virtual double PowerOverheadAtFullLoad() const = 0;

  // Returns true if the packet was consumed by the program.
  virtual bool Process(SwitchAsic& sw, Packet& packet) = 0;
};

// Built-in diagnostic program (diag.p4): consumes nothing, burns power.
class DiagProgram : public SwitchProgram {
 public:
  std::string ProgramName() const override { return "diag.p4"; }
  double PowerOverheadAtFullLoad() const override { return 0.048; }
  bool Process(SwitchAsic& sw, Packet& packet) override;
};

struct SwitchAsicConfig {
  std::string name = "tofino";
  int num_ports = 32;
  double port_gbps = 40.0;              // 32 x 40G = 1.28 Tbps (§6).
  double max_power_watts = 350.0;       // Absolute scale (vendor-typical).
  double idle_power_fraction = 0.84;    // Min-max spread < 20 % (§6).
  SimDuration pipeline_latency = Nanoseconds(400);
  SimDuration rate_window = Milliseconds(100);
  uint32_t reference_packet_bytes = 64;  // Line-rate pps basis.
};

class SwitchAsic : public L2Switch, public PowerSource {
 public:
  SwitchAsic(Simulation& sim, SwitchAsicConfig config);

  // Loads an additional program (not owned). Multiple programs stack (the
  // paper combines Paxos with L2 forwarding).
  void LoadProgram(SwitchProgram* program);
  void UnloadProgram(const std::string& name);
  std::vector<std::string> LoadedPrograms() const;

  // Sends a reply out of the pipeline (line-rate, no host involved).
  void TransmitFromPipeline(Packet packet);

  // Line-rate capacity in packets/second at the reference packet size.
  double LineRatePps() const;

  // Observed total packet rate over the trailing window.
  double ObservedPps() const;
  double UtilizationFraction() const;

  // Per-protocol pipeline observation. Ingress counts every packet of the
  // protocol traversing the pipeline — whether or not a program claims it —
  // so offload adapters see the §9.1 classifier signal even while parked.
  // With a filter installed, only packets addressed to the service count:
  // without it, replies (host-originated or program-emitted) crossing the
  // switch would double the apparent request rate.
  void SetProtoIngressFilter(AppProto proto, NodeId service_dst);
  uint64_t ProtoIngressPackets(AppProto proto) const;
  double ProtoIngressRatePerSecond(AppProto proto) const;
  uint64_t ProtoConsumedPackets(AppProto proto) const;
  double ProtoConsumedRatePerSecond(AppProto proto) const;

  double PowerWatts() const override;
  double NormalizedPower() const { return PowerWatts() / config_.max_power_watts; }
  // Power of the same load with L2 forwarding only (for §6 comparisons).
  double ForwardingOnlyWatts() const;

  std::string PowerName() const override { return config_.name; }

  uint64_t consumed_in_pipeline() const { return consumed_.value(); }

  const SwitchAsicConfig& asic_config() const { return config_; }

 protected:
  bool ProcessInPipeline(Packet& packet) override;

 private:
  double BaseWatts(double utilization) const;
  double ProgramOverheadFraction() const;

  SwitchAsicConfig config_;
  std::vector<SwitchProgram*> programs_;
  mutable SlidingWindowRate observed_rate_;
  Counter consumed_;
  std::vector<std::optional<NodeId>> proto_filter_;
  std::vector<Counter> proto_ingress_;
  std::vector<Counter> proto_consumed_;
  mutable std::vector<SlidingWindowRate> proto_ingress_rate_;
  mutable std::vector<SlidingWindowRate> proto_consumed_rate_;
};

}  // namespace incod

#endif  // INCOD_SRC_DEVICE_SWITCH_ASIC_H_
