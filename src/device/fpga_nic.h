// NetFPGA-SUME-like FPGA NIC model.
//
// The board acts as the host's NIC at all times (the paper's LaKe/Emu DNS
// packet classifier passes non-application traffic through), and optionally
// runs one FpgaApp in its main logical core. Power is tracked per module in
// a PowerLedger calibrated from §5 of the paper:
//   - shell (PHYs, arbiters)            9.5 W
//   - PCIe & DMA                        1.5 W   -> reference NIC 11 W DC
//   - app logic                         per app (LaKe 2.2 W incl. 5 PEs)
//   - DRAM interface                    4.8 W   (§5.3)
//   - SRAM interface                    6.0 W   (§5.3)
// Clock gating keeps ~60 % of logic power ("earns less than 1W", §5.1);
// holding memory interfaces in reset saves 40 % of their power (§5.1).
// Standalone (hostless) operation adds enclosure overhead plus a PSU.
#ifndef INCOD_SRC_DEVICE_FPGA_NIC_H_
#define INCOD_SRC_DEVICE_FPGA_NIC_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/device/fpga_app.h"
#include "src/device/offload_target.h"
#include "src/net/link.h"
#include "src/net/packet.h"
#include "src/power/ledger.h"
#include "src/power/psu.h"
#include "src/sim/simulation.h"
#include "src/stats/counters.h"
#include "src/stats/timeseries.h"

namespace incod {

// Calibrated board constants (see EXPERIMENTS.md).
constexpr double kFpgaShellWatts = 9.5;
constexpr double kFpgaPcieWatts = 1.5;
constexpr double kFpgaDramWatts = 4.8;        // §5.3: 4GB DRAM costs 4.8 W.
constexpr double kFpgaSramWatts = 6.0;        // §5.3: 18MB SRAM costs 6 W.
constexpr double kFpgaPeWatts = 0.25;         // §5.1: ~0.25 W per PE.
constexpr double kLogicStaticFraction = 0.6;  // Clock gating keeps static power.
constexpr double kMemResetFraction = 0.6;     // Reset saves 40 % (§5.1).
constexpr double kStandaloneOverheadWatts = 1.5;  // Fan + management.
constexpr double kStandalonePsuRatedWatts = 150.0;

struct FpgaNicConfig {
  std::string name = "netfpga";
  NodeId host_node = 1;     // Address of the host behind this NIC.
  NodeId device_node = 0;   // Optional address of the device itself (0: none).
  bool standalone = false;  // Hostless deployment: adds PSU + enclosure.
  SimDuration classifier_latency = Nanoseconds(300);
  SimDuration rate_window = Milliseconds(100);  // For utilization/dyn power.
};

class FpgaNic : public PacketSink,
                public PowerSource,
                public OffloadTarget,
                public AppContext,
                public FlowListener {
 public:
  FpgaNic(Simulation& sim, FpgaNicConfig config);

  // Installs the application core (not owned). Any App supporting the
  // FPGA-NIC placement works; legacy FpgaApp subclasses additionally get
  // their FpgaNic back-pointer set. Re-programming the FPGA at runtime is
  // out of scope (the paper keeps the app "programmed but inactive" to
  // avoid a traffic halt, §9.2).
  void InstallApp(App* app);
  App* app() const { return app_; }

  // --- AppContext (the narrow surface the installed app talks through) ---
  Simulation& sim() override { return sim_; }
  PlacementKind placement() const override { return PlacementKind::kFpgaNic; }
  NodeId self_node() const override { return config_.device_node; }
  void Reply(Packet packet) override { TransmitToNetwork(std::move(packet)); }
  void Punt(Packet packet) override { DeliverToHost(std::move(packet)); }

  // Attach the network-side and host-side links (both must have this device
  // as one endpoint).
  void SetNetworkLink(Link* link) { net_link_ = link; }
  void SetHostLink(Link* link) {
    host_link_ = link;
    if (link != nullptr && link->config().flow.pfc) {
      link->SetFlowListener(this, this);
    }
  }

  // FlowListener: the PCIe (host) direction backed up — the host stopped
  // draining — so propagate the pause out the network link toward the ToR.
  void OnLinkCongestion(Link* link, bool congested) override;
  uint64_t pause_propagations() const { return pause_propagations_; }

  // --- Runtime controls (the knobs of §5.1/§9.2, OffloadTarget surface) ---
  // When active, matching packets are processed in the app core; when
  // inactive, everything passes through to the host.
  void SetAppActive(bool active) override;
  bool app_active() const override { return app_active_; }
  // Clock-gates the app logic while inactive.
  void SetClockGating(bool enabled) override;
  bool clock_gating() const override { return clock_gating_; }
  // Holds external memory interfaces in reset while inactive.
  void SetMemoryReset(bool enabled) override;
  bool memory_reset() const override { return memory_reset_; }
  // Permanently removes a module from the design (power gating / rebuild
  // without the module). Used by the Figure 4 ablations.
  void PowerGateModule(const std::string& module);
  // Models FPGA (partial) reconfiguration: while reprogramming, the device
  // forwards nothing — "a momentary traffic halt" (§9.2). All traffic in
  // either direction is dropped.
  void SetReprogramming(bool reprogramming) override;
  bool reprogramming() const override { return reprogramming_; }
  // Reprogram-policy parking: the app core is not resident, so every module
  // beyond the always-on shell/PCIe/memory interfaces draws nothing.
  void PowerGateParkedApp() override;

  // --- OffloadTarget identity ---
  std::string TargetName() const override;
  OffloadTargetTraits Traits() const override {
    return OffloadTargetTraits{/*supports_clock_gating=*/true,
                               /*supports_memory_reset=*/true,
                               /*supports_reprogramming=*/true};
  }
  double OffloadPowerWatts() const override { return PowerWatts(); }
  double OffloadCapacityPps() const override { return CapacityPps(); }
  // Packets (and pipeline completions) discarded because the app engine was
  // killed by a fault. The shell keeps forwarding — only app work dies.
  uint64_t dead_dropped() const override { return dead_dropped_.value(); }

  // --- Data path ---
  void Receive(Packet packet) override;
  std::string SinkName() const override { return config_.name; }
  // Sends a packet out the network port (used by apps for replies).
  void TransmitToNetwork(Packet packet);
  // Punts a packet to the host across PCIe/DMA.
  void DeliverToHost(Packet packet);

  // --- Power ---
  // DC watts drawn from the host's PSU (or, standalone, from its own PSU:
  // then this is wall watts including PSU loss and enclosure overhead).
  double PowerWatts() const override;
  std::string PowerName() const override { return config_.name; }
  PowerLedger& ledger() { return ledger_; }
  const PowerLedger& ledger() const { return ledger_; }
  // Pipeline utilization in [0,1] over the trailing rate window.
  double Utilization() const;

  // --- Counters ---
  uint64_t processed_in_hardware() const { return hw_processed_.value(); }
  uint64_t delivered_to_host() const { return to_host_.value(); }
  uint64_t dropped() const { return dropped_.value(); }
  double ProcessedRatePerSecond() const override;
  // Ingress rate of packets the classifier recognizes as the app's traffic,
  // counted whether or not the app is active. This is the signal the
  // network-controlled on-demand controller averages (§9.1).
  double AppIngressRatePerSecond() const override;
  uint64_t app_ingress_packets() const override { return app_ingress_.value(); }

  const FpgaNicConfig& config() const { return config_; }

 private:
  struct Worker {
    SimTime busy_until = 0;
  };

  void AdmitToPipeline(Packet packet);
  void UpdateLogicStates();
  double CapacityPps() const;

  Simulation& sim_;
  FpgaNicConfig config_;
  PowerLedger ledger_;
  PsuModel standalone_psu_{kStandalonePsuRatedWatts};
  Link* net_link_ = nullptr;
  Link* host_link_ = nullptr;
  uint64_t pause_propagations_ = 0;
  App* app_ = nullptr;
  OffloadPlacementProfile profile_{};
  FpgaPipelineSpec pipeline_{};
  std::vector<Worker> workers_;
  size_t queued_ = 0;
  bool app_active_ = false;
  bool clock_gating_ = false;
  bool memory_reset_ = false;
  bool reprogramming_ = false;
  std::vector<std::string> app_logic_modules_;
  std::vector<std::string> app_memory_modules_;
  std::vector<std::string> power_gated_;
  mutable SlidingWindowRate processed_rate_;
  mutable SlidingWindowRate app_ingress_rate_;
  Counter app_ingress_;
  Counter hw_processed_;
  Counter to_host_;
  Counter dropped_;
  Counter dead_dropped_;
};

}  // namespace incod

#endif  // INCOD_SRC_DEVICE_FPGA_NIC_H_
