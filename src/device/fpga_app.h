// Interface between the FPGA NIC shell and an application core.
//
// Mirrors the NetFPGA structure in Figure 2 of the paper: interfaces,
// queueing and arbitration are provided by shell modules; the application is
// a "main logical core" dropped into the shell, plus (for LaKe) external
// memory interfaces. The application declares its power modules and its
// pipeline's throughput model; the device handles classification, admission
// and power accounting.
#ifndef INCOD_SRC_DEVICE_FPGA_APP_H_
#define INCOD_SRC_DEVICE_FPGA_APP_H_

#include <string>
#include <vector>

#include "src/net/packet.h"
#include "src/power/ledger.h"
#include "src/sim/time.h"

namespace incod {

class FpgaNic;

// Throughput model of the application core.
struct FpgaPipelineSpec {
  // Parallel processing elements (LaKe PEs). 1 for single-pipeline designs.
  int workers = 1;
  // Initiation interval per worker: one packet accepted every `service` ns.
  // Fully pipelined designs have service << latency.
  SimDuration worker_service = Nanoseconds(100);
  // Constant pipeline traversal latency added to every processed packet.
  SimDuration pipeline_latency = Microseconds(1);
  // Input buffer (packets) ahead of the workers; overflow drops (UDP).
  size_t input_queue_capacity = 512;
};

class FpgaApp {
 public:
  virtual ~FpgaApp() = default;

  virtual AppProto proto() const = 0;
  virtual std::string AppName() const = 0;

  // Power modules the app adds to the board ledger (logic, memories).
  virtual std::vector<ModulePowerSpec> PowerModules() const = 0;

  // Extra watts at 100 % pipeline utilization, linear in utilization
  // (P4xos measures +1.2 W max over idle, §4.3).
  virtual double DynamicWattsAtCapacity() const = 0;

  virtual FpgaPipelineSpec PipelineSpec() const = 0;

  // Classifier predicate: should this packet enter the app core (when the
  // app is active)? Default: protocol match.
  virtual bool Matches(const Packet& packet) const { return packet.proto == proto(); }

  // Application logic, invoked after the pipeline delay. The app replies via
  // nic()->TransmitToNetwork() or punts via nic()->DeliverToHost().
  virtual void Process(Packet packet) = 0;

  // Activation hooks (cache warm-up bookkeeping etc.).
  virtual void OnActivate() {}
  virtual void OnDeactivate() {}

  // Called when the device's external memories are put into reset: on-board
  // state is lost (LaKe must re-warm its caches, §9.2).
  virtual void OnMemoryReset() {}

  // Observes host-originated packets of this protocol on their way out to
  // the network (non-consuming). LaKe uses this to fill its caches from
  // host replies after a miss.
  virtual void OnHostEgress(const Packet& packet) { (void)packet; }

  FpgaNic* nic() const { return nic_; }
  void set_nic(FpgaNic* nic) { nic_ = nic; }

 private:
  FpgaNic* nic_ = nullptr;
};

}  // namespace incod

#endif  // INCOD_SRC_DEVICE_FPGA_APP_H_
