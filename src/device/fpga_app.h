// Legacy FPGA-side application shim over the unified incod::App contract.
//
// Mirrors the NetFPGA structure in Figure 2 of the paper: interfaces,
// queueing and arbitration are provided by shell modules; the application is
// a "main logical core" dropped into the shell. New applications should
// derive from incod::App directly (app/app.h) and advertise an
// OffloadPlacementProfile; FpgaApp remains as a thin adapter for code
// written against the original device-only surface (Process() + a raw
// FpgaNic back-pointer). FpgaPipelineSpec itself now lives in app/app.h as
// part of the placement profile.
#ifndef INCOD_SRC_DEVICE_FPGA_APP_H_
#define INCOD_SRC_DEVICE_FPGA_APP_H_

#include <string>
#include <utility>
#include <vector>

#include "src/app/app.h"
#include "src/net/packet.h"
#include "src/power/ledger.h"
#include "src/sim/time.h"

namespace incod {

class FpgaNic;

class FpgaApp : public App {
 public:
  // Power modules the app adds to the board ledger (logic, memories).
  virtual std::vector<ModulePowerSpec> PowerModules() const = 0;

  // Extra watts at 100 % pipeline utilization, linear in utilization
  // (P4xos measures +1.2 W max over idle, §4.3).
  virtual double DynamicWattsAtCapacity() const = 0;

  virtual FpgaPipelineSpec PipelineSpec() const = 0;

  // Application logic, invoked after the pipeline delay. The app replies via
  // nic()->TransmitToNetwork() or punts via nic()->DeliverToHost().
  virtual void Process(Packet packet) = 0;

  // Observes host-originated packets of this protocol on their way out to
  // the network (non-consuming).
  virtual void OnHostEgress(const Packet& packet) { (void)packet; }

  // --- App adaptation ---
  bool SupportsPlacement(PlacementKind placement) const override {
    return placement == PlacementKind::kFpgaNic;
  }
  OffloadPlacementProfile OffloadProfile() const override {
    OffloadPlacementProfile profile;
    profile.pipeline = PipelineSpec();
    profile.power_modules = PowerModules();
    profile.dynamic_watts_at_capacity = DynamicWattsAtCapacity();
    return profile;
  }
  void HandlePacket(AppContext& ctx, Packet packet) override {
    (void)ctx;
    Process(std::move(packet));
  }
  void OnHostEgress(AppContext& ctx, const Packet& packet) override {
    (void)ctx;
    OnHostEgress(packet);
  }

  FpgaNic* nic() const { return nic_; }
  void set_nic(FpgaNic* nic) { nic_ = nic; }

 private:
  FpgaNic* nic_ = nullptr;
};

}  // namespace incod

#endif  // INCOD_SRC_DEVICE_FPGA_APP_H_
