// SmartNIC presets and behavioral device model for the §10 placement
// discussion.
//
// The paper surveys four SmartNIC architectures (FPGA, ASIC, ASIC+FPGA,
// SoC) and anchors one concrete data point: Azure's AccelNet FPGA SmartNIC
// at 17-19 W standalone on a 40GE board, "close to 4Mpps/W for some use
// cases". The presets feed the placement advisor and bench_placement; the
// SmartNic device turns a preset into a live OffloadTarget so the on-demand
// layer can place workloads on SmartNICs exactly as it does on the NetFPGA
// or a switch ASIC.
#ifndef INCOD_SRC_DEVICE_SMARTNIC_H_
#define INCOD_SRC_DEVICE_SMARTNIC_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/device/offload_target.h"
#include "src/net/link.h"
#include "src/net/packet.h"
#include "src/power/power_source.h"
#include "src/sim/simulation.h"
#include "src/stats/counters.h"
#include "src/stats/timeseries.h"

namespace incod {

enum class SmartNicArch {
  kFpga,
  kAsic,
  kAsicPlusFpga,
  kSoc,
};

const char* SmartNicArchName(SmartNicArch arch);

struct SmartNicPreset {
  std::string name;
  SmartNicArch arch;
  double idle_watts;
  double max_watts;          // Typically <= 25 W (PCIe slot budget, §10).
  double peak_mpps;          // Packet-processing capability.
  double port_gbps;
  // Qualitative §10 traits used by the advisor.
  bool flexible_interfaces;  // Can attach bespoke memory/storage (FPGA).
  bool scalable_resources;   // SoCs hit the "resource wall" earlier.
};

// Ops-per-watt at full load (Mpps per watt of max power).
double OpsPerWattAtPeak(const SmartNicPreset& preset);

std::vector<SmartNicPreset> StandardSmartNicPresets();

// ---------------------------------------------------------------------------
// Behavioral SmartNIC: a preset brought to life as a datapath + OffloadTarget.
// ---------------------------------------------------------------------------

struct SmartNicDeviceConfig {
  std::string name = "smartnic";
  NodeId host_node = 1;
  // Which application traffic the offload firmware claims (its classifier).
  AppProto offload_proto = AppProto::kRaw;
  SimDuration processing_latency = Microseconds(2);  // SoC/ASIC path latency.
  SimDuration rate_window = Milliseconds(100);
  size_t queue_capacity = 1024;
  // Fraction of the preset's idle watts belonging to the offload engine
  // (cores / FPGA region), as opposed to the base NIC datapath. Clock
  // gating the parked engine saves 40 % of this share (mirroring §5.1);
  // power gating it (reprogram-style parking) saves all of it.
  double offload_engine_fraction = 0.3;
};

// The offloaded application's firmware: builds the reply for a claimed
// request, or returns nullopt to punt the packet to the host.
using SmartNicHandler = std::function<std::optional<Packet>(const Packet&)>;

class SmartNic : public PacketSink, public PowerSource, public OffloadTarget {
 public:
  SmartNic(Simulation& sim, SmartNicPreset preset, SmartNicDeviceConfig config);

  // Installs the offload firmware (what the engine does with claimed
  // packets). Without a handler, claimed packets are counted and punted.
  void SetHandler(SmartNicHandler handler) { handler_ = std::move(handler); }

  void SetNetworkLink(Link* link) { net_link_ = link; }
  void SetHostLink(Link* link) { host_link_ = link; }

  // --- Data path ---
  void Receive(Packet packet) override;
  std::string SinkName() const override { return config_.name; }
  void TransmitToNetwork(Packet packet);
  void DeliverToHost(Packet packet);

  // --- OffloadTarget ---
  std::string TargetName() const override;
  OffloadTargetTraits Traits() const override;
  void SetAppActive(bool active) override;
  bool app_active() const override { return app_active_; }
  void SetClockGating(bool enabled) override;
  bool clock_gating() const override { return clock_gating_; }
  void SetReprogramming(bool reprogramming) override;
  bool reprogramming() const override { return reprogramming_; }
  void PowerGateParkedApp() override;
  double AppIngressRatePerSecond() const override;
  uint64_t app_ingress_packets() const override { return app_ingress_.value(); }
  double ProcessedRatePerSecond() const override;
  double OffloadPowerWatts() const override { return PowerWatts(); }
  double OffloadCapacityPps() const override { return preset_.peak_mpps * 1e6; }

  // --- Power ---
  // idle + (max - idle) * utilization while serving; parked savings depend
  // on the engine share and park depth.
  double PowerWatts() const override;
  std::string PowerName() const override { return config_.name; }
  double Utilization() const;

  uint64_t processed_in_hardware() const { return processed_.value(); }
  uint64_t delivered_to_host() const { return to_host_.value(); }
  uint64_t dropped() const { return dropped_.value(); }

  const SmartNicPreset& preset() const { return preset_; }
  const SmartNicDeviceConfig& config() const { return config_; }

 private:
  Simulation& sim_;
  SmartNicPreset preset_;
  SmartNicDeviceConfig config_;
  SmartNicHandler handler_;
  Link* net_link_ = nullptr;
  Link* host_link_ = nullptr;
  SimTime busy_until_ = 0;
  bool app_active_ = false;
  bool clock_gating_ = false;
  bool engine_power_gated_ = false;
  bool reprogramming_ = false;
  mutable SlidingWindowRate processed_rate_;
  mutable SlidingWindowRate app_ingress_rate_;
  Counter app_ingress_;
  Counter processed_;
  Counter to_host_;
  Counter dropped_;
};

}  // namespace incod

#endif  // INCOD_SRC_DEVICE_SMARTNIC_H_
