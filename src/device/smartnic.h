// SmartNIC presets for the §10 placement discussion.
//
// The paper surveys four SmartNIC architectures (FPGA, ASIC, ASIC+FPGA,
// SoC) and anchors one concrete data point: Azure's AccelNet FPGA SmartNIC
// at 17-19 W standalone on a 40GE board, "close to 4Mpps/W for some use
// cases". These presets feed the placement advisor and bench_placement.
#ifndef INCOD_SRC_DEVICE_SMARTNIC_H_
#define INCOD_SRC_DEVICE_SMARTNIC_H_

#include <string>
#include <vector>

namespace incod {

enum class SmartNicArch {
  kFpga,
  kAsic,
  kAsicPlusFpga,
  kSoc,
};

const char* SmartNicArchName(SmartNicArch arch);

struct SmartNicPreset {
  std::string name;
  SmartNicArch arch;
  double idle_watts;
  double max_watts;          // Typically <= 25 W (PCIe slot budget, §10).
  double peak_mpps;          // Packet-processing capability.
  double port_gbps;
  // Qualitative §10 traits used by the advisor.
  bool flexible_interfaces;  // Can attach bespoke memory/storage (FPGA).
  bool scalable_resources;   // SoCs hit the "resource wall" earlier.
};

// Ops-per-watt at full load (Mpps per watt of max power).
double OpsPerWattAtPeak(const SmartNicPreset& preset);

std::vector<SmartNicPreset> StandardSmartNicPresets();

}  // namespace incod

#endif  // INCOD_SRC_DEVICE_SMARTNIC_H_
