// SmartNIC presets and behavioral device model for the §10 placement
// discussion.
//
// The paper surveys four SmartNIC architectures (FPGA, ASIC, ASIC+FPGA,
// SoC) and anchors one concrete data point: Azure's AccelNet FPGA SmartNIC
// at 17-19 W standalone on a 40GE board, "close to 4Mpps/W for some use
// cases". The presets feed the placement advisor and bench_placement; the
// SmartNic device turns a preset into a live OffloadTarget so the on-demand
// layer can place workloads on SmartNICs exactly as it does on the NetFPGA
// or a switch ASIC.
//
// The device is also an application substrate: it implements AppContext and
// hosts unified Apps (SmartNicHostedApp wrappers via the AppRegistry's
// kSmartNic factories) on its offload engine. Each hosted app's firmware is
// timed at the preset's peak Mpps scaled by the app's per-arch fraction,
// and occupies resource slots against a preset-derived budget — the §10
// "resource wall" that caps how many apps a SoC board can run at once.
#ifndef INCOD_SRC_DEVICE_SMARTNIC_H_
#define INCOD_SRC_DEVICE_SMARTNIC_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/app/app.h"
#include "src/device/offload_target.h"
#include "src/net/link.h"
#include "src/net/packet.h"
#include "src/power/power_source.h"
#include "src/sim/simulation.h"
#include "src/stats/counters.h"
#include "src/stats/timeseries.h"

namespace incod {

struct SmartNicPreset {
  std::string name;
  SmartNicArch arch;
  double idle_watts;
  double max_watts;          // Typically <= 25 W (PCIe slot budget, §10).
  double peak_mpps;          // Packet-processing capability.
  double port_gbps;
  // Qualitative §10 traits used by the advisor.
  bool flexible_interfaces;  // Can attach bespoke memory/storage (FPGA).
  bool scalable_resources;   // SoCs hit the "resource wall" earlier.
};

// Ops-per-watt at full load (Mpps per watt of max power).
double OpsPerWattAtPeak(const SmartNicPreset& preset);

std::vector<SmartNicPreset> StandardSmartNicPresets();

// Standard preset by name ("accelnet-fpga", "agilio-asic", ...); throws
// std::invalid_argument for an unknown name. ScenarioSpecs select SmartNIC
// boards declaratively through this.
SmartNicPreset SmartNicPresetByName(const std::string& name);

// ---------------------------------------------------------------------------
// Behavioral SmartNIC: a preset brought to life as a datapath + OffloadTarget.
// ---------------------------------------------------------------------------

struct SmartNicDeviceConfig {
  std::string name = "smartnic";
  NodeId host_node = 1;
  // Optional address of the board itself (0: none); hosted apps reply from
  // it when set.
  NodeId device_node = 0;
  // Which application traffic the offload firmware claims when driven
  // through the legacy handler path (hosted Apps claim via Matches()).
  AppProto offload_proto = AppProto::kRaw;
  SimDuration processing_latency = Microseconds(2);  // SoC/ASIC path latency.
  SimDuration rate_window = Milliseconds(100);
  size_t queue_capacity = 1024;
  // Fraction of the preset's idle watts belonging to the offload engine
  // (cores / FPGA region), as opposed to the base NIC datapath. Clock
  // gating the parked engine saves 40 % of this share (mirroring §5.1);
  // power gating it (reprogram-style parking) saves all of it.
  double offload_engine_fraction = 0.3;
};

// The offloaded application's firmware: builds the reply for a claimed
// request, or returns nullopt to punt the packet to the host. Legacy
// surface predating the unified App contract; InstallApp supersedes it.
using SmartNicHandler = std::function<std::optional<Packet>(const Packet&)>;

class SmartNic : public PacketSink,
                 public PowerSource,
                 public OffloadTarget,
                 public AppContext,
                 public FlowListener {
 public:
  SmartNic(Simulation& sim, SmartNicPreset preset, SmartNicDeviceConfig config);

  // Installs the offload firmware (what the engine does with claimed
  // packets). Without a handler or hosted apps, claimed packets are counted
  // and punted.
  void SetHandler(SmartNicHandler handler) { handler_ = std::move(handler); }

  // Installs a unified App (not owned) on the offload engine. The app must
  // support the SmartNIC placement; its per-arch profile sets the firmware's
  // Mpps ceiling and slot footprint. Throws when the board's slot budget —
  // the §10 resource wall — is exhausted.
  void InstallApp(App* app);
  size_t app_count() const { return apps_.size(); }
  App* app(size_t index = 0) const {
    return index < apps_.size() ? apps_[index].app : nullptr;
  }
  // Engine slots this board offers: SoC-class (non-scalable) boards hit the
  // resource wall after kSocAppSlots; scalable silicon fits kScalableAppSlots.
  int AppSlotCapacity() const;
  int app_slots_used() const { return slots_used_; }

  void SetNetworkLink(Link* link) { net_link_ = link; }
  void SetHostLink(Link* link) {
    host_link_ = link;
    if (link != nullptr && link->config().flow.pfc) {
      link->SetFlowListener(this, this);
    }
  }

  // FlowListener: PCIe backlog toward the host crossed a watermark —
  // propagate the pause out to the network side.
  void OnLinkCongestion(Link* link, bool congested) override;
  uint64_t pause_propagations() const { return pause_propagations_; }

  // --- AppContext (the narrow surface hosted apps talk through) ---
  Simulation& sim() override { return sim_; }
  PlacementKind placement() const override { return PlacementKind::kSmartNic; }
  NodeId self_node() const override { return config_.device_node; }
  void Reply(Packet packet) override { TransmitToNetwork(std::move(packet)); }
  void Punt(Packet packet) override { DeliverToHost(std::move(packet)); }

  // --- Data path ---
  void Receive(Packet packet) override;
  std::string SinkName() const override { return config_.name; }
  void TransmitToNetwork(Packet packet);
  void DeliverToHost(Packet packet);

  // --- OffloadTarget ---
  std::string TargetName() const override;
  OffloadTargetTraits Traits() const override;
  void SetAppActive(bool active) override;
  bool app_active() const override { return app_active_; }
  void SetClockGating(bool enabled) override;
  bool clock_gating() const override { return clock_gating_; }
  // Holds the engine's memories in reset while parked: hosted apps lose
  // their on-board state on entry (LaKe re-warms after a gated park, §9.2).
  void SetMemoryReset(bool enabled) override;
  bool memory_reset() const override { return memory_reset_; }
  void SetReprogramming(bool reprogramming) override;
  bool reprogramming() const override { return reprogramming_; }
  void PowerGateParkedApp() override;
  double AppIngressRatePerSecond() const override;
  uint64_t app_ingress_packets() const override { return app_ingress_.value(); }
  double ProcessedRatePerSecond() const override;
  double OffloadPowerWatts() const override { return PowerWatts(); }
  double OffloadCapacityPps() const override;
  // Packets (and engine completions) discarded because the offload engine
  // was killed by a fault. The base NIC datapath keeps forwarding.
  uint64_t dead_dropped() const override { return dead_dropped_.value(); }

  // --- Power ---
  // idle + (max - idle) * utilization while serving; parked savings depend
  // on the engine share and park depth.
  double PowerWatts() const override;
  std::string PowerName() const override { return config_.name; }
  double Utilization() const;

  uint64_t processed_in_hardware() const { return processed_.value(); }
  uint64_t delivered_to_host() const { return to_host_.value(); }
  uint64_t dropped() const { return dropped_.value(); }

  const SmartNicPreset& preset() const { return preset_; }
  const SmartNicDeviceConfig& config() const { return config_; }

 private:
  struct HostedApp {
    App* app = nullptr;
    // Engine initiation interval derived from the preset's peak scaled by
    // the app's per-arch Mpps fraction.
    SimDuration service = 0;
    double capacity_pps = 0;
  };

  // First installed app claiming the packet (-1: none).
  int ClaimingApp(const Packet& packet) const;
  // Books the engine's next free slot at `service` pacing; returns the
  // completion time, or nullopt (counted drop) on input-queue overflow.
  std::optional<SimTime> ReserveEngineSlot(SimDuration service);
  void AdmitToEngine(size_t app_index, Packet packet);

  Simulation& sim_;
  SmartNicPreset preset_;
  SmartNicDeviceConfig config_;
  SmartNicHandler handler_;
  std::vector<HostedApp> apps_;
  int slots_used_ = 0;
  Link* net_link_ = nullptr;
  Link* host_link_ = nullptr;
  uint64_t pause_propagations_ = 0;
  SimTime busy_until_ = 0;
  bool app_active_ = false;
  bool clock_gating_ = false;
  bool memory_reset_ = false;
  bool engine_power_gated_ = false;
  bool reprogramming_ = false;
  mutable SlidingWindowRate processed_rate_;
  mutable SlidingWindowRate app_ingress_rate_;
  Counter app_ingress_;
  Counter processed_;
  Counter to_host_;
  Counter dropped_;
  Counter dead_dropped_;
};

}  // namespace incod

#endif  // INCOD_SRC_DEVICE_SMARTNIC_H_
