#include "src/device/switch_asic.h"

#include <algorithm>
#include <stdexcept>

namespace incod {

bool DiagProgram::Process(SwitchAsic& sw, Packet& packet) {
  (void)sw;
  (void)packet;
  return false;  // Diagnostics only exercise the pipeline.
}

SwitchAsic::SwitchAsic(Simulation& sim, SwitchAsicConfig config)
    : L2Switch(sim, config.name, config.pipeline_latency),
      config_(config),
      observed_rate_(config.rate_window),
      proto_filter_(kNumAppProtos),
      proto_ingress_(kNumAppProtos),
      proto_consumed_(kNumAppProtos),
      proto_ingress_rate_(kNumAppProtos, SlidingWindowRate(config.rate_window)),
      proto_consumed_rate_(kNumAppProtos, SlidingWindowRate(config.rate_window)) {}

void SwitchAsic::LoadProgram(SwitchProgram* program) {
  if (program == nullptr) {
    throw std::invalid_argument("SwitchAsic::LoadProgram: null");
  }
  programs_.push_back(program);
}

void SwitchAsic::UnloadProgram(const std::string& name) {
  programs_.erase(std::remove_if(programs_.begin(), programs_.end(),
                                 [&](SwitchProgram* p) { return p->ProgramName() == name; }),
                  programs_.end());
}

std::vector<std::string> SwitchAsic::LoadedPrograms() const {
  std::vector<std::string> names;
  names.reserve(programs_.size());
  for (const auto* p : programs_) {
    names.push_back(p->ProgramName());
  }
  return names;
}

bool SwitchAsic::ProcessInPipeline(Packet& packet) {
  observed_rate_.RecordEvent(sim_.Now());
  const auto proto = static_cast<size_t>(packet.proto);
  const bool classified =
      proto < kNumAppProtos &&
      (!proto_filter_[proto].has_value() || packet.dst == *proto_filter_[proto]);
  if (classified) {
    proto_ingress_[proto].Increment();
    proto_ingress_rate_[proto].RecordEvent(sim_.Now());
  }
  for (auto* p : programs_) {
    if (p->Process(*this, packet)) {
      consumed_.Increment();
      if (classified) {
        proto_consumed_[proto].Increment();
        proto_consumed_rate_[proto].RecordEvent(sim_.Now());
      }
      return true;
    }
  }
  return false;
}

void SwitchAsic::SetProtoIngressFilter(AppProto proto, NodeId service_dst) {
  proto_filter_[static_cast<size_t>(proto)] = service_dst;
}

uint64_t SwitchAsic::ProtoIngressPackets(AppProto proto) const {
  return proto_ingress_[static_cast<size_t>(proto)].value();
}

double SwitchAsic::ProtoIngressRatePerSecond(AppProto proto) const {
  return proto_ingress_rate_[static_cast<size_t>(proto)].RatePerSecond(sim_.Now());
}

uint64_t SwitchAsic::ProtoConsumedPackets(AppProto proto) const {
  return proto_consumed_[static_cast<size_t>(proto)].value();
}

double SwitchAsic::ProtoConsumedRatePerSecond(AppProto proto) const {
  return proto_consumed_rate_[static_cast<size_t>(proto)].RatePerSecond(sim_.Now());
}

void SwitchAsic::TransmitFromPipeline(Packet packet) {
  // Replies re-enter the forwarding pipeline: "entering as the request, and
  // coming out as the reply" (§10).
  Receive(std::move(packet));
}

double SwitchAsic::LineRatePps() const {
  const double total_bps = config_.num_ports * config_.port_gbps * 1e9;
  return total_bps / (8.0 * config_.reference_packet_bytes);
}

double SwitchAsic::ObservedPps() const { return observed_rate_.RatePerSecond(sim_.Now()); }

double SwitchAsic::UtilizationFraction() const {
  return std::min(1.0, ObservedPps() / LineRatePps());
}

double SwitchAsic::BaseWatts(double utilization) const {
  return config_.max_power_watts *
         (config_.idle_power_fraction + (1.0 - config_.idle_power_fraction) * utilization);
}

double SwitchAsic::ProgramOverheadFraction() const {
  double sum = 0;
  for (const auto* p : programs_) {
    sum += p->PowerOverheadAtFullLoad();
  }
  return sum;
}

double SwitchAsic::PowerWatts() const {
  const double u = UtilizationFraction();
  // Idle power is identical with or without extra programs (§6); the
  // overhead scales with traffic actually exercising the pipeline.
  return BaseWatts(u) * (1.0 + ProgramOverheadFraction() * u);
}

double SwitchAsic::ForwardingOnlyWatts() const { return BaseWatts(UtilizationFraction()); }

}  // namespace incod
