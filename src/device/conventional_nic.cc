#include "src/device/conventional_nic.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace incod {

ConventionalNicConfig MellanoxConnectX3Config(NodeId host_node) {
  ConventionalNicConfig config;
  config.name = "mellanox-cx3";
  config.host_node = host_node;
  config.watts = 4.0;
  config.max_pps = 0;  // Not the bottleneck for memcached (§4.2).
  return config;
}

ConventionalNicConfig IntelX520Config(NodeId host_node) {
  ConventionalNicConfig config;
  config.name = "intel-x520";
  config.host_node = host_node;
  // §4.2: with the X520 "the host became more power efficient; the crossing
  // point moved to over 300Kpps. However, the maximum throughput the server
  // achieves using the Intel NIC is lower."
  config.watts = 2.2;
  config.max_pps = 600000.0;
  return config;
}

ConventionalNic::ConventionalNic(Simulation& sim, ConventionalNicConfig config)
    : sim_(sim), config_(std::move(config)) {
  if (config_.hostnic.enabled) {
    config_.hostnic.num_queues = std::max(1, config_.hostnic.num_queues);
    config_.hostnic.ring_depth = std::max<size_t>(1, config_.hostnic.ring_depth);
    rx_rings_.resize(static_cast<size_t>(config_.hostnic.num_queues));
  }
}

size_t ConventionalNic::RssQueue(const Packet& packet) const {
  return static_cast<size_t>(FlowHash(packet) %
                             static_cast<uint64_t>(config_.hostnic.num_queues));
}

void ConventionalNic::Receive(Packet packet) {
  const bool from_host = packet.src == config_.host_node;
  Link* out = from_host ? net_link_ : host_link_;
  if (out == nullptr) {
    throw std::logic_error("ConventionalNic: missing link on " + config_.name);
  }
  if (!config_.hostnic.enabled) {
    ForwardLegacy(out, std::move(packet));
    return;
  }
  if (from_host) {
    EnqueueTx(std::move(packet));
    return;
  }
  if (config_.max_pps > 0) {
    // The packet-rate ceiling sits in front of the rings (the classify/DMA
    // engine); paced packets land in their RSS ring when the engine frees.
    const SimDuration per_packet = SecondsF(1.0 / config_.max_pps);
    const SimTime now = sim_.Now();
    const SimTime start = std::max(now, busy_until_);
    if (start - now > 128 * per_packet) {  // Small on-NIC buffer, then drop.
      dropped_.Increment();
      return;
    }
    busy_until_ = start + per_packet;
    sim_.ScheduleAt(start + per_packet, [this, pkt = std::move(packet)]() mutable {
      ReceiveIntoRing(std::move(pkt));
    });
    return;
  }
  ReceiveIntoRing(std::move(packet));
}

void ConventionalNic::ForwardLegacy(Link* out, Packet packet) {
  if (config_.max_pps > 0) {
    // Per-packet pacing models the NIC's packet-rate ceiling.
    const SimDuration per_packet = SecondsF(1.0 / config_.max_pps);
    const SimTime now = sim_.Now();
    const SimTime start = std::max(now, busy_until_);
    if (start - now > 128 * per_packet) {  // Small on-NIC buffer, then drop.
      dropped_.Increment();
      return;
    }
    busy_until_ = start + per_packet;
    sim_.ScheduleAt(start + per_packet + config_.latency,
                    [this, out, pkt = std::move(packet)]() mutable {
                      out->Send(this, std::move(pkt));
                    });
    return;
  }
  sim_.Schedule(config_.latency, [this, out, pkt = std::move(packet)]() mutable {
    out->Send(this, std::move(pkt));
  });
}

void ConventionalNic::ReceiveIntoRing(Packet packet) {
  const size_t queue = RssQueue(packet);
  RxRing& ring = rx_rings_[queue];
  if (ring.ring.size() >= config_.hostnic.ring_depth) {
    // No free descriptor: the wire does not wait. Distinct from the
    // rate-cap drop — this one is ring pressure, not engine throughput.
    ring_drops_.Increment();
    return;
  }
  ring.ring.push_back(std::move(packet));
  if (!config_.hostnic.host_interrupts) {
    // DPDK host: the poll loop picks the batch up one PCIe/driver latency
    // from now; everything arriving inside the window rides the same poll.
    if (!ring.drain_pending) {
      ring.drain_pending = true;
      const uint64_t gen = ++ring.drain_gen;
      sim_.Schedule(config_.latency, [this, queue, gen] {
        if (rx_rings_[queue].drain_gen == gen) {
          DrainRxRing(queue);
        }
      });
    }
    return;
  }
  // Interrupt moderation: arm the coalescing timer on the first undelivered
  // packet; the packet-count trigger preempts it by bumping the generation
  // (the stale timer event still fires and no-ops, in every engine mode).
  if (!ring.drain_pending) {
    ring.drain_pending = true;
    const uint64_t gen = ++ring.drain_gen;
    sim_.Schedule(config_.hostnic.coalesce_timer, [this, queue, gen] {
      if (rx_rings_[queue].drain_gen == gen) {
        DrainRxRing(queue);
      }
    });
  }
  if (ring.ring.size() == config_.hostnic.coalesce_packets) {
    const uint64_t gen = ++ring.drain_gen;
    sim_.Schedule(config_.latency, [this, queue, gen] {
      if (rx_rings_[queue].drain_gen == gen) {
        DrainRxRing(queue);
      }
    });
  }
}

void ConventionalNic::DrainRxRing(size_t queue) {
  RxRing& ring = rx_rings_[queue];
  ring.drain_pending = false;
  if (ring.ring.empty()) {
    return;
  }
  if (config_.hostnic.host_interrupts) {
    interrupts_raised_.Increment();
    // The first packet of the batch carries the irq marker; the server
    // charges its per-interrupt CPU cost into that request.
    ring.ring.front().irq = true;
  }
  while (!ring.ring.empty()) {
    Packet pkt = std::move(ring.ring.front());
    ring.ring.pop_front();
    host_link_->Send(this, std::move(pkt));
  }
}

void ConventionalNic::EnqueueTx(Packet packet) {
  tx_batch_.push_back(std::move(packet));
  if (!tx_flush_pending_) {
    tx_flush_pending_ = true;
    const uint64_t gen = ++tx_flush_gen_;
    sim_.Schedule(config_.hostnic.doorbell_flush_timer, [this, gen] {
      if (tx_flush_gen_ == gen) {
        FlushTx();
      }
    });
  }
  if (tx_batch_.size() == config_.hostnic.tx_doorbell_batch) {
    const uint64_t gen = ++tx_flush_gen_;
    sim_.Schedule(config_.latency, [this, gen] {
      if (tx_flush_gen_ == gen) {
        FlushTx();
      }
    });
  }
}

void ConventionalNic::FlushTx() {
  tx_flush_pending_ = false;
  if (tx_batch_.empty()) {
    return;
  }
  doorbells_rung_.Increment();
  while (!tx_batch_.empty()) {
    Packet pkt = std::move(tx_batch_.front());
    tx_batch_.pop_front();
    net_link_->Send(this, std::move(pkt));
  }
}

void ConventionalNic::OnLinkCongestion(Link* link, bool congested) {
  if (link != host_link_ || net_link_ == nullptr || !net_link_->config().flow.pfc) {
    return;
  }
  if (congested) {
    ++pause_propagations_;
  }
  net_link_->PauseUpstream(this, congested);
}

}  // namespace incod
