#include "src/device/conventional_nic.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace incod {

ConventionalNicConfig MellanoxConnectX3Config(NodeId host_node) {
  ConventionalNicConfig config;
  config.name = "mellanox-cx3";
  config.host_node = host_node;
  config.watts = 4.0;
  config.max_pps = 0;  // Not the bottleneck for memcached (§4.2).
  return config;
}

ConventionalNicConfig IntelX520Config(NodeId host_node) {
  ConventionalNicConfig config;
  config.name = "intel-x520";
  config.host_node = host_node;
  // §4.2: with the X520 "the host became more power efficient; the crossing
  // point moved to over 300Kpps. However, the maximum throughput the server
  // achieves using the Intel NIC is lower."
  config.watts = 2.2;
  config.max_pps = 600000.0;
  return config;
}

ConventionalNic::ConventionalNic(Simulation& sim, ConventionalNicConfig config)
    : sim_(sim), config_(std::move(config)) {}

void ConventionalNic::Receive(Packet packet) {
  const bool from_host = packet.src == config_.host_node;
  Link* out = from_host ? net_link_ : host_link_;
  if (out == nullptr) {
    throw std::logic_error("ConventionalNic: missing link on " + config_.name);
  }
  if (config_.max_pps > 0) {
    // Per-packet pacing models the NIC's packet-rate ceiling.
    const SimDuration per_packet = SecondsF(1.0 / config_.max_pps);
    const SimTime now = sim_.Now();
    const SimTime start = std::max(now, busy_until_);
    if (start - now > 128 * per_packet) {  // Small on-NIC buffer, then drop.
      dropped_.Increment();
      return;
    }
    busy_until_ = start + per_packet;
    sim_.ScheduleAt(start + per_packet + config_.latency,
                    [this, out, pkt = std::move(packet)]() mutable {
                      out->Send(this, std::move(pkt));
                    });
    return;
  }
  sim_.Schedule(config_.latency, [this, out, pkt = std::move(packet)]() mutable {
    out->Send(this, std::move(pkt));
  });
}

void ConventionalNic::OnLinkCongestion(Link* link, bool congested) {
  if (link != host_link_ || net_link_ == nullptr || !net_link_->config().flow.pfc) {
    return;
  }
  if (congested) {
    ++pause_propagations_;
  }
  net_link_->PauseUpstream(this, congested);
}

}  // namespace incod
