#include "src/device/switch_offload.h"

#include <algorithm>

namespace incod {

SwitchOffloadTarget::SwitchOffloadTarget(SwitchAsic& asic, SwitchProgram& program,
                                         AppProto proto, NodeId service)
    : asic_(asic), program_(program), proto_(proto) {
  if (service != 0) {
    asic_.SetProtoIngressFilter(proto_, service);
  }
  const auto loaded = asic_.LoadedPrograms();
  active_ = std::find(loaded.begin(), loaded.end(), program_.ProgramName()) != loaded.end();
}

std::string SwitchOffloadTarget::TargetName() const {
  return asic_.PowerName() + "/" + program_.ProgramName();
}

void SwitchOffloadTarget::SetAppActive(bool active) {
  if (active == active_) {
    return;
  }
  if (active && engine_dead()) {
    // Recovery must re-place elsewhere; a killed pipeline slot stays dead.
    return;
  }
  if (active) {
    asic_.LoadProgram(&program_);
  } else {
    asic_.UnloadProgram(program_.ProgramName());
  }
  active_ = active;
}

void SwitchOffloadTarget::KillEngine() {
  SetAppActive(false);
  OffloadTarget::KillEngine();
}

double SwitchOffloadTarget::AppIngressRatePerSecond() const {
  return asic_.ProtoIngressRatePerSecond(proto_);
}

uint64_t SwitchOffloadTarget::app_ingress_packets() const {
  return asic_.ProtoIngressPackets(proto_);
}

double SwitchOffloadTarget::ProcessedRatePerSecond() const {
  return asic_.ProtoConsumedRatePerSecond(proto_);
}

double SwitchOffloadTarget::OffloadPowerWatts() const {
  if (!active_) {
    return 0;
  }
  // Marginal draw of this program alone: base power times its own overhead
  // fraction scaled by pipeline activity (P(rate) model, §6).
  return asic_.ForwardingOnlyWatts() * program_.PowerOverheadAtFullLoad() *
         asic_.UtilizationFraction();
}

double SwitchOffloadTarget::OffloadCapacityPps() const { return asic_.LineRatePps(); }

}  // namespace incod
