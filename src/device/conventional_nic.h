// Conventional (fixed-function) NIC power model.
//
// The software-only testbeds use an Intel X520 or Mellanox ConnectX-3 NIC
// (§4.1). They contribute a small constant draw to server wall power and a
// pass-through datapath. The Mellanox NIC sustains higher packet rates; the
// Intel NIC bottlenecks KVS around 300 Kpps yet is slightly more power
// efficient (§4.2) — modeled via the rate cap and watts below.
#ifndef INCOD_SRC_DEVICE_CONVENTIONAL_NIC_H_
#define INCOD_SRC_DEVICE_CONVENTIONAL_NIC_H_

#include <string>

#include "src/net/link.h"
#include "src/net/packet.h"
#include "src/power/power_source.h"
#include "src/sim/simulation.h"
#include "src/stats/counters.h"

namespace incod {

struct ConventionalNicConfig {
  std::string name = "nic";
  NodeId host_node = 1;
  double watts = 4.0;              // Mellanox MCX311A-class draw.
  double max_pps = 0;              // 0: line-rate (no NIC bottleneck).
  SimDuration latency = Microseconds(1);  // PCIe + driver path.
};

// Presets from §4.1/§4.2.
ConventionalNicConfig MellanoxConnectX3Config(NodeId host_node);
ConventionalNicConfig IntelX520Config(NodeId host_node);

class ConventionalNic : public PacketSink, public PowerSource, public FlowListener {
 public:
  ConventionalNic(Simulation& sim, ConventionalNicConfig config);

  void SetNetworkLink(Link* link) { net_link_ = link; }
  void SetHostLink(Link* link) {
    host_link_ = link;
    if (link != nullptr && link->config().flow.pfc) {
      link->SetFlowListener(this, this);
    }
  }

  // FlowListener: PCIe backlog toward the host crossed a watermark —
  // propagate the pause out to the network side.
  void OnLinkCongestion(Link* link, bool congested) override;
  uint64_t pause_propagations() const { return pause_propagations_; }

  void Receive(Packet packet) override;
  std::string SinkName() const override { return config_.name; }

  double PowerWatts() const override { return config_.watts; }
  std::string PowerName() const override { return config_.name; }

  uint64_t dropped() const { return dropped_.value(); }

 private:
  Simulation& sim_;
  ConventionalNicConfig config_;
  Link* net_link_ = nullptr;
  Link* host_link_ = nullptr;
  SimTime busy_until_ = 0;
  Counter dropped_;
  uint64_t pause_propagations_ = 0;
};

}  // namespace incod

#endif  // INCOD_SRC_DEVICE_CONVENTIONAL_NIC_H_
