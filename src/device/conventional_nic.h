// Conventional (fixed-function) NIC power and datapath model.
//
// The software-only testbeds use an Intel X520 or Mellanox ConnectX-3 NIC
// (§4.1). They contribute a small constant draw to server wall power and a
// pass-through datapath. The Mellanox NIC sustains higher packet rates; the
// Intel NIC bottlenecks KVS around 300 Kpps yet is slightly more power
// efficient (§4.2) — modeled via the rate cap and watts below.
//
// Beyond the pass-through, the NIC optionally models the mechanistic host
// datapath (HostNicSpec): per-queue rx descriptor rings selected by an RSS
// flow hash, interrupt moderation toward a kernel-stack host (packet-count
// trigger + coalescing timer, the first packet of each batch carrying
// Packet::irq so the server charges the handler cost), immediate poll-style
// draining for DPDK hosts, and DMA doorbell batching on tx. All of it runs
// on ordinary simulation events, so sharded runs stay event-identical
// across engine modes, and it is off by default — existing scenarios keep
// their event streams bit-identical.
#ifndef INCOD_SRC_DEVICE_CONVENTIONAL_NIC_H_
#define INCOD_SRC_DEVICE_CONVENTIONAL_NIC_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/net/link.h"
#include "src/net/packet.h"
#include "src/power/power_source.h"
#include "src/sim/simulation.h"
#include "src/stats/counters.h"

namespace incod {

// Opt-in mechanistic host datapath. With `enabled` false the NIC is the
// historical pass-through (per-packet latency, optional max_pps pacing).
struct HostNicSpec {
  bool enabled = false;
  // RSS: FlowHash(packet) % num_queues selects the rx descriptor ring.
  int num_queues = 4;
  // Descriptors per rx ring. A packet arriving at a full ring is dropped at
  // the NIC (ring_drops(), distinct from the rate-cap drop counter) — the
  // real failure mode of small rings under aggressive coalescing.
  size_t ring_depth = 256;
  // Interrupt moderation (kernel-stack hosts): an rx interrupt is raised
  // when a ring holds coalesce_packets descriptors, or coalesce_timer after
  // the first undelivered packet, whichever comes first.
  size_t coalesce_packets = 8;
  SimDuration coalesce_timer = Microseconds(10);
  // Tx doorbell batching: descriptors posted by the host accumulate until
  // tx_doorbell_batch are pending (or the flush timer expires), then one
  // doorbell ring DMAs the whole batch to the wire.
  size_t tx_doorbell_batch = 8;
  SimDuration doorbell_flush_timer = Microseconds(2);
  // True for an interrupt-driven (kKernel) host: batches carry Packet::irq
  // on their first packet. False models a DPDK host polling the rings: the
  // ring drains every poll with no interrupt cost — how the two stacks
  // mechanistically diverge. Scenario builders set this from the host's
  // NetStackType.
  bool host_interrupts = true;
};

struct ConventionalNicConfig {
  std::string name = "nic";
  NodeId host_node = 1;
  double watts = 4.0;              // Mellanox MCX311A-class draw.
  double max_pps = 0;              // 0: line-rate (no NIC bottleneck).
  SimDuration latency = Microseconds(1);  // PCIe + driver path.
  HostNicSpec hostnic;             // Mechanistic datapath (off by default).
};

// Presets from §4.1/§4.2.
ConventionalNicConfig MellanoxConnectX3Config(NodeId host_node);
ConventionalNicConfig IntelX520Config(NodeId host_node);

class ConventionalNic : public PacketSink, public PowerSource, public FlowListener {
 public:
  ConventionalNic(Simulation& sim, ConventionalNicConfig config);

  void SetNetworkLink(Link* link) { net_link_ = link; }
  void SetHostLink(Link* link) {
    host_link_ = link;
    if (link != nullptr && link->config().flow.pfc) {
      link->SetFlowListener(this, this);
    }
  }

  // FlowListener: PCIe backlog toward the host crossed a watermark —
  // propagate the pause out to the network side.
  void OnLinkCongestion(Link* link, bool congested) override;
  uint64_t pause_propagations() const { return pause_propagations_; }

  void Receive(Packet packet) override;
  std::string SinkName() const override { return config_.name; }

  double PowerWatts() const override { return config_.watts; }
  std::string PowerName() const override { return config_.name; }

  // Packets shed by the max_pps rate cap (on-NIC buffer overrun).
  uint64_t dropped() const { return dropped_.value(); }

  // --- Mechanistic datapath introspection (hostnic.enabled) ---
  // RSS ring index for a packet (valid whenever hostnic.enabled).
  size_t RssQueue(const Packet& packet) const;
  uint64_t ring_drops() const { return ring_drops_.value(); }
  uint64_t interrupts_raised() const { return interrupts_raised_.value(); }
  uint64_t doorbells_rung() const { return doorbells_rung_.value(); }
  size_t rx_ring_occupancy(size_t queue) const { return rx_rings_.at(queue).ring.size(); }
  size_t tx_pending() const { return tx_batch_.size(); }

 private:
  struct RxRing {
    std::deque<Packet> ring;
    // Drain-event validity: every scheduled drain captures the generation
    // at scheduling time and no-ops when stale (e.g. a coalescing timer
    // that lost to the packet-count trigger). Firing-and-ignoring keeps
    // the event stream identical across engine modes with no cancels.
    uint64_t drain_gen = 0;
    bool drain_pending = false;
  };

  // Pass-through (hostnic disabled) forward with optional max_pps pacing.
  void ForwardLegacy(Link* out, Packet packet);
  // Mechanistic rx: RSS ring placement + moderation trigger.
  void ReceiveIntoRing(Packet packet);
  // Pops every descriptor of `queue` and delivers the batch to the host.
  void DrainRxRing(size_t queue);
  // Mechanistic tx: doorbell batch placement + flush trigger.
  void EnqueueTx(Packet packet);
  void FlushTx();

  Simulation& sim_;
  ConventionalNicConfig config_;
  Link* net_link_ = nullptr;
  Link* host_link_ = nullptr;
  SimTime busy_until_ = 0;
  Counter dropped_;
  uint64_t pause_propagations_ = 0;
  // Mechanistic datapath state.
  std::vector<RxRing> rx_rings_;
  std::deque<Packet> tx_batch_;
  uint64_t tx_flush_gen_ = 0;
  bool tx_flush_pending_ = false;
  Counter ring_drops_;
  Counter interrupts_raised_;
  Counter doorbells_rung_;
};

}  // namespace incod

#endif  // INCOD_SRC_DEVICE_CONVENTIONAL_NIC_H_
