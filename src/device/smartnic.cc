#include "src/device/smartnic.h"

namespace incod {

const char* SmartNicArchName(SmartNicArch arch) {
  switch (arch) {
    case SmartNicArch::kFpga:
      return "fpga";
    case SmartNicArch::kAsic:
      return "asic";
    case SmartNicArch::kAsicPlusFpga:
      return "asic+fpga";
    case SmartNicArch::kSoc:
      return "soc";
  }
  return "?";
}

double OpsPerWattAtPeak(const SmartNicPreset& preset) {
  if (preset.max_watts <= 0) {
    return 0;
  }
  return preset.peak_mpps * 1e6 / preset.max_watts;
}

std::vector<SmartNicPreset> StandardSmartNicPresets() {
  return {
      // Azure AccelNet-like FPGA SmartNIC: 17-19 W standalone, 40GE,
      // ~4 Mpps/W (§10).
      {"accelnet-fpga", SmartNicArch::kFpga, 17.0, 19.0, 72.0, 40.0, true, true},
      // ASIC SmartNIC (Netronome Agilio-like): efficient, less flexible.
      {"agilio-asic", SmartNicArch::kAsic, 12.0, 25.0, 120.0, 50.0, false, true},
      // Combined ASIC+FPGA (Mellanox Innova-like).
      {"innova-asic+fpga", SmartNicArch::kAsicPlusFpga, 15.0, 25.0, 90.0, 25.0, true,
       true},
      // SoC SmartNIC (BlueField-like): easy to program, resource-walled.
      {"bluefield-soc", SmartNicArch::kSoc, 14.0, 25.0, 30.0, 100.0, false, false},
  };
}

}  // namespace incod
