#include "src/device/smartnic.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace incod {

namespace {
// Engine slot budgets behind AppSlotCapacity(): scalable silicon (FPGA
// regions, ASIC engine banks) fits several firmware images; SoC boards hit
// the §10 "resource wall" after two.
constexpr int kScalableAppSlots = 8;
constexpr int kSocAppSlots = 2;
}  // namespace

double OpsPerWattAtPeak(const SmartNicPreset& preset) {
  if (preset.max_watts <= 0) {
    return 0;
  }
  return preset.peak_mpps * 1e6 / preset.max_watts;
}

std::vector<SmartNicPreset> StandardSmartNicPresets() {
  return {
      // Azure AccelNet-like FPGA SmartNIC: 17-19 W standalone, 40GE,
      // ~4 Mpps/W (§10).
      {"accelnet-fpga", SmartNicArch::kFpga, 17.0, 19.0, 72.0, 40.0, true, true},
      // ASIC SmartNIC (Netronome Agilio-like): efficient, less flexible.
      {"agilio-asic", SmartNicArch::kAsic, 12.0, 25.0, 120.0, 50.0, false, true},
      // Combined ASIC+FPGA (Mellanox Innova-like).
      {"innova-asic+fpga", SmartNicArch::kAsicPlusFpga, 15.0, 25.0, 90.0, 25.0, true,
       true},
      // SoC SmartNIC (BlueField-like): easy to program, resource-walled.
      {"bluefield-soc", SmartNicArch::kSoc, 14.0, 25.0, 30.0, 100.0, false, false},
  };
}

SmartNicPreset SmartNicPresetByName(const std::string& name) {
  for (const SmartNicPreset& preset : StandardSmartNicPresets()) {
    if (preset.name == name) {
      return preset;
    }
  }
  throw std::invalid_argument("SmartNicPresetByName: unknown preset " + name);
}

// ---------------------------------------------------------------------------

SmartNic::SmartNic(Simulation& sim, SmartNicPreset preset, SmartNicDeviceConfig config)
    : sim_(sim),
      preset_(std::move(preset)),
      config_(std::move(config)),
      processed_rate_(config_.rate_window),
      app_ingress_rate_(config_.rate_window) {
  if (preset_.peak_mpps <= 0) {
    throw std::invalid_argument("SmartNic: preset needs peak_mpps > 0");
  }
}

int SmartNic::AppSlotCapacity() const {
  return preset_.scalable_resources ? kScalableAppSlots : kSocAppSlots;
}

void SmartNic::InstallApp(App* app) {
  if (app == nullptr) {
    throw std::invalid_argument("SmartNic::InstallApp: null app");
  }
  if (!app->SupportsPlacement(PlacementKind::kSmartNic)) {
    throw std::invalid_argument("SmartNic: " + app->AppName() +
                                " does not support the SmartNIC placement");
  }
  const SmartNicPlacementProfile profile = app->OffloadProfile().smartnic;
  const double fraction = profile.MppsFractionFor(preset_.arch);
  if (fraction <= 0) {
    throw std::invalid_argument("SmartNic: " + app->AppName() +
                                " firmware does not run on a " +
                                SmartNicArchName(preset_.arch) + " engine");
  }
  if (slots_used_ + profile.resource_slots > AppSlotCapacity()) {
    throw std::invalid_argument(
        "SmartNic: " + preset_.name + " resource wall — " + app->AppName() +
        " needs " + std::to_string(profile.resource_slots) + " slots, " +
        std::to_string(AppSlotCapacity() - slots_used_) + " free");
  }
  HostedApp hosted;
  hosted.app = app;
  hosted.capacity_pps = preset_.peak_mpps * 1e6 * fraction;
  hosted.service = static_cast<SimDuration>(1e9 / hosted.capacity_pps);
  slots_used_ += profile.resource_slots;
  app->BindContext(this);
  apps_.push_back(hosted);
  if (app_active_) {
    // Late install onto a live engine: the app must see the same activation
    // its already-installed peers received.
    app->OnActivate();
  }
}

std::string SmartNic::TargetName() const {
  return config_.name + "/" + preset_.name;
}

OffloadTargetTraits SmartNic::Traits() const {
  OffloadTargetTraits traits;
  // Any architecture can idle its offload engine and reset its memories;
  // only FPGA-bearing boards can be (partially) reconfigured at runtime.
  traits.supports_clock_gating = true;
  traits.supports_memory_reset = true;
  traits.supports_reprogramming = preset_.arch == SmartNicArch::kFpga ||
                                  preset_.arch == SmartNicArch::kAsicPlusFpga;
  return traits;
}

void SmartNic::SetAppActive(bool active) {
  const bool was_active = app_active_;
  app_active_ = active;
  if (active) {
    engine_power_gated_ = false;  // Waking restores the engine.
  }
  if (was_active == active) {
    return;
  }
  for (HostedApp& hosted : apps_) {
    if (active) {
      hosted.app->OnActivate();
    } else {
      hosted.app->OnDeactivate();
    }
  }
}

void SmartNic::SetClockGating(bool enabled) { clock_gating_ = enabled; }

void SmartNic::SetMemoryReset(bool enabled) {
  const bool entering_reset = enabled && !memory_reset_;
  memory_reset_ = enabled;
  if (entering_reset) {
    // Mirrors FpgaNic: entering reset loses the apps' on-board state, so a
    // gated-park shift home really leaves the next cold shift cold.
    for (HostedApp& hosted : apps_) {
      hosted.app->OnMemoryReset();
    }
  }
}

void SmartNic::SetReprogramming(bool reprogramming) {
  if (reprogramming && !Traits().supports_reprogramming) {
    return;  // Fixed-function engine: nothing to reprogram.
  }
  reprogramming_ = reprogramming;
}

void SmartNic::PowerGateParkedApp() {
  if (!Traits().supports_reprogramming) {
    // Fixed-function engines have no bitstream to remove: the deepest park
    // the silicon offers is clock-gating the engine.
    clock_gating_ = true;
    return;
  }
  engine_power_gated_ = true;
  // The firmware is no longer resident: hosted apps lose on-board state.
  for (HostedApp& hosted : apps_) {
    hosted.app->OnMemoryReset();
  }
}

int SmartNic::ClaimingApp(const Packet& packet) const {
  for (size_t i = 0; i < apps_.size(); ++i) {
    if (apps_[i].app->Matches(packet)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void SmartNic::Receive(Packet packet) {
  if (reprogramming_) {
    dropped_.Increment();  // "A momentary traffic halt" (§9.2).
    return;
  }
  if (packet.src == config_.host_node) {
    // Host egress: active apps observe their protocol on the way out
    // (LaKe-style fill from host replies after a miss).
    if (app_active_ && !engine_dead()) {
      for (HostedApp& hosted : apps_) {
        if (hosted.app->Matches(packet)) {
          hosted.app->OnHostEgress(*this, packet);
        }
      }
    }
    TransmitToNetwork(std::move(packet));
    return;
  }
  if (!apps_.empty()) {
    const int claimed = ClaimingApp(packet);
    if (claimed >= 0) {
      app_ingress_.Increment();
      app_ingress_rate_.RecordEvent(sim_.Now());
      if (app_active_ && !engine_power_gated_) {
        if (engine_dead()) {
          // The engine died with the classifier still steering into it:
          // claimed traffic is lost until recovery re-places the app.
          dead_dropped_.Increment();
          return;
        }
        AdmitToEngine(static_cast<size_t>(claimed), std::move(packet));
        return;
      }
    }
    DeliverToHost(std::move(packet));
    return;
  }
  const bool claimed = config_.offload_proto != AppProto::kRaw &&
                       packet.proto == config_.offload_proto;
  if (claimed) {
    app_ingress_.Increment();
    app_ingress_rate_.RecordEvent(sim_.Now());
  }
  if (!claimed || !app_active_ || handler_ == nullptr) {
    DeliverToHost(std::move(packet));
    return;
  }
  if (engine_dead()) {
    dead_dropped_.Increment();
    return;
  }
  // Legacy handler firmware runs at the preset's full peak rate.
  const SimDuration service = static_cast<SimDuration>(1e9 / (preset_.peak_mpps * 1e6));
  const std::optional<SimTime> done = ReserveEngineSlot(service);
  if (!done.has_value()) {
    return;
  }
  auto process = [this, pkt = std::move(packet)]() mutable {
    if (engine_dead()) {
      dead_dropped_.Increment();
      return;
    }
    processed_.Increment();
    processed_rate_.RecordEvent(sim_.Now());
    auto reply = handler_(pkt);
    if (reply.has_value()) {
      TransmitToNetwork(std::move(*reply));
    } else {
      DeliverToHost(std::move(pkt));
    }
  };
  static_assert(sizeof(process) <= InlineEvent::kInlineCapacity,
                "SmartNic processing events must stay inline");
  sim_.ScheduleAt(*done, std::move(process));
}

std::optional<SimTime> SmartNic::ReserveEngineSlot(SimDuration service) {
  // One serialization point for everything the engine runs (hosted apps and
  // legacy handler firmware share it): next free slot at `service` pacing,
  // drop when the implied backlog overflows the input queue.
  const SimTime now = sim_.Now();
  const SimTime start = std::max(now, busy_until_);
  const double backlog =
      static_cast<double>(start - now) /
      static_cast<double>(std::max<SimDuration>(service, 1));
  if (backlog > static_cast<double>(config_.queue_capacity)) {
    dropped_.Increment();
    return std::nullopt;
  }
  busy_until_ = start + service;
  return start + service + config_.processing_latency;
}

void SmartNic::AdmitToEngine(size_t app_index, Packet packet) {
  // Each packet is timed at its app's per-arch service interval.
  const std::optional<SimTime> done = ReserveEngineSlot(apps_[app_index].service);
  if (!done.has_value()) {
    return;
  }
  auto process = [this, app_index, pkt = std::move(packet)]() mutable {
    if (engine_dead()) {
      // Killed while this packet sat in the engine queue: the scheduled
      // completion must not run firmware on dead hardware.
      dead_dropped_.Increment();
      return;
    }
    processed_.Increment();
    processed_rate_.RecordEvent(sim_.Now());
    apps_[app_index].app->HandlePacket(*this, std::move(pkt));
  };
  static_assert(sizeof(process) <= InlineEvent::kInlineCapacity,
                "SmartNic engine events must stay inline");
  sim_.ScheduleAt(*done, std::move(process));
}

void SmartNic::OnLinkCongestion(Link* link, bool congested) {
  if (link != host_link_ || net_link_ == nullptr || !net_link_->config().flow.pfc) {
    return;
  }
  if (congested) {
    ++pause_propagations_;
  }
  net_link_->PauseUpstream(this, congested);
}

void SmartNic::TransmitToNetwork(Packet packet) {
  if (net_link_ == nullptr) {
    throw std::logic_error("SmartNic: no network link");
  }
  net_link_->Send(this, std::move(packet));
}

void SmartNic::DeliverToHost(Packet packet) {
  if (host_link_ == nullptr) {
    dropped_.Increment();
    return;
  }
  to_host_.Increment();
  host_link_->Send(this, std::move(packet));
}

double SmartNic::Utilization() const {
  // Busy fraction of the engine as provisioned: hosted firmware may sustain
  // only a per-arch fraction of the preset's peak, and saturating *that*
  // ceiling is 100 % utilization (keeps PowerWatts on the same envelope
  // MakeSmartNicRatePower charges the rack ledger).
  const double cap = OffloadCapacityPps();
  return std::min(1.0, processed_rate_.RatePerSecond(sim_.Now()) / cap);
}

double SmartNic::ProcessedRatePerSecond() const {
  return processed_rate_.RatePerSecond(sim_.Now());
}

double SmartNic::AppIngressRatePerSecond() const {
  return app_ingress_rate_.RatePerSecond(sim_.Now());
}

double SmartNic::OffloadCapacityPps() const {
  if (apps_.empty()) {
    return preset_.peak_mpps * 1e6;
  }
  // Hosted apps share one engine: the binding ceiling is the slowest
  // installed firmware's.
  double capacity = preset_.peak_mpps * 1e6;
  for (const HostedApp& hosted : apps_) {
    capacity = std::min(capacity, hosted.capacity_pps);
  }
  return capacity;
}

double SmartNic::PowerWatts() const {
  const double engine_idle = preset_.idle_watts * config_.offload_engine_fraction;
  if (engine_dead()) {
    // A dead engine draws nothing beyond the base NIC datapath.
    return preset_.idle_watts - engine_idle;
  }
  if (app_active_) {
    return preset_.idle_watts + (preset_.max_watts - preset_.idle_watts) * Utilization();
  }
  if (engine_power_gated_) {
    return preset_.idle_watts - engine_idle;
  }
  if (clock_gating_) {
    // Mirror §5.1: clock gating keeps the engine's static ~60 %.
    return preset_.idle_watts - 0.4 * engine_idle;
  }
  return preset_.idle_watts;
}

}  // namespace incod
