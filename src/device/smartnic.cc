#include "src/device/smartnic.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace incod {

const char* SmartNicArchName(SmartNicArch arch) {
  switch (arch) {
    case SmartNicArch::kFpga:
      return "fpga";
    case SmartNicArch::kAsic:
      return "asic";
    case SmartNicArch::kAsicPlusFpga:
      return "asic+fpga";
    case SmartNicArch::kSoc:
      return "soc";
  }
  return "?";
}

double OpsPerWattAtPeak(const SmartNicPreset& preset) {
  if (preset.max_watts <= 0) {
    return 0;
  }
  return preset.peak_mpps * 1e6 / preset.max_watts;
}

std::vector<SmartNicPreset> StandardSmartNicPresets() {
  return {
      // Azure AccelNet-like FPGA SmartNIC: 17-19 W standalone, 40GE,
      // ~4 Mpps/W (§10).
      {"accelnet-fpga", SmartNicArch::kFpga, 17.0, 19.0, 72.0, 40.0, true, true},
      // ASIC SmartNIC (Netronome Agilio-like): efficient, less flexible.
      {"agilio-asic", SmartNicArch::kAsic, 12.0, 25.0, 120.0, 50.0, false, true},
      // Combined ASIC+FPGA (Mellanox Innova-like).
      {"innova-asic+fpga", SmartNicArch::kAsicPlusFpga, 15.0, 25.0, 90.0, 25.0, true,
       true},
      // SoC SmartNIC (BlueField-like): easy to program, resource-walled.
      {"bluefield-soc", SmartNicArch::kSoc, 14.0, 25.0, 30.0, 100.0, false, false},
  };
}

// ---------------------------------------------------------------------------

SmartNic::SmartNic(Simulation& sim, SmartNicPreset preset, SmartNicDeviceConfig config)
    : sim_(sim),
      preset_(std::move(preset)),
      config_(std::move(config)),
      processed_rate_(config_.rate_window),
      app_ingress_rate_(config_.rate_window) {
  if (preset_.peak_mpps <= 0) {
    throw std::invalid_argument("SmartNic: preset needs peak_mpps > 0");
  }
}

std::string SmartNic::TargetName() const {
  return config_.name + "/" + preset_.name;
}

OffloadTargetTraits SmartNic::Traits() const {
  OffloadTargetTraits traits;
  // Any architecture can idle its offload engine; only FPGA-bearing boards
  // can be (partially) reconfigured at runtime.
  traits.supports_clock_gating = true;
  traits.supports_reprogramming = preset_.arch == SmartNicArch::kFpga ||
                                  preset_.arch == SmartNicArch::kAsicPlusFpga;
  return traits;
}

void SmartNic::SetAppActive(bool active) {
  app_active_ = active;
  if (active) {
    engine_power_gated_ = false;  // Waking restores the engine.
  }
}

void SmartNic::SetClockGating(bool enabled) { clock_gating_ = enabled; }

void SmartNic::SetReprogramming(bool reprogramming) {
  if (reprogramming && !Traits().supports_reprogramming) {
    return;  // Fixed-function engine: nothing to reprogram.
  }
  reprogramming_ = reprogramming;
}

void SmartNic::PowerGateParkedApp() {
  if (!Traits().supports_reprogramming) {
    // Fixed-function engines have no bitstream to remove: the deepest park
    // the silicon offers is clock-gating the engine.
    clock_gating_ = true;
    return;
  }
  engine_power_gated_ = true;
}

void SmartNic::Receive(Packet packet) {
  if (reprogramming_) {
    dropped_.Increment();  // "A momentary traffic halt" (§9.2).
    return;
  }
  if (packet.src == config_.host_node) {
    TransmitToNetwork(std::move(packet));
    return;
  }
  const bool claimed = config_.offload_proto != AppProto::kRaw &&
                       packet.proto == config_.offload_proto;
  if (claimed) {
    app_ingress_.Increment();
    app_ingress_rate_.RecordEvent(sim_.Now());
  }
  if (!claimed || !app_active_ || handler_ == nullptr) {
    DeliverToHost(std::move(packet));
    return;
  }
  // Serialize through the engine at the preset's peak rate.
  const SimDuration service = static_cast<SimDuration>(1e9 / (preset_.peak_mpps * 1e6));
  const SimTime now = sim_.Now();
  const SimTime start = std::max(now, busy_until_);
  const double backlog = service > 0 ? static_cast<double>(start - now) /
                                           static_cast<double>(std::max<SimDuration>(service, 1))
                                     : 0;
  if (backlog > static_cast<double>(config_.queue_capacity)) {
    dropped_.Increment();
    return;
  }
  busy_until_ = start + service;
  auto process = [this, pkt = std::move(packet)]() mutable {
    processed_.Increment();
    processed_rate_.RecordEvent(sim_.Now());
    auto reply = handler_(pkt);
    if (reply.has_value()) {
      TransmitToNetwork(std::move(*reply));
    } else {
      DeliverToHost(std::move(pkt));
    }
  };
  static_assert(sizeof(process) <= InlineEvent::kInlineCapacity,
                "SmartNic processing events must stay inline");
  sim_.ScheduleAt(start + service + config_.processing_latency, std::move(process));
}

void SmartNic::TransmitToNetwork(Packet packet) {
  if (net_link_ == nullptr) {
    throw std::logic_error("SmartNic: no network link");
  }
  net_link_->Send(this, std::move(packet));
}

void SmartNic::DeliverToHost(Packet packet) {
  if (host_link_ == nullptr) {
    dropped_.Increment();
    return;
  }
  to_host_.Increment();
  host_link_->Send(this, std::move(packet));
}

double SmartNic::Utilization() const {
  const double cap = preset_.peak_mpps * 1e6;
  return std::min(1.0, processed_rate_.RatePerSecond(sim_.Now()) / cap);
}

double SmartNic::ProcessedRatePerSecond() const {
  return processed_rate_.RatePerSecond(sim_.Now());
}

double SmartNic::AppIngressRatePerSecond() const {
  return app_ingress_rate_.RatePerSecond(sim_.Now());
}

double SmartNic::PowerWatts() const {
  const double engine_idle = preset_.idle_watts * config_.offload_engine_fraction;
  if (app_active_) {
    return preset_.idle_watts + (preset_.max_watts - preset_.idle_watts) * Utilization();
  }
  if (engine_power_gated_) {
    return preset_.idle_watts - engine_idle;
  }
  if (clock_gating_) {
    // Mirror §5.1: clock gating keeps the engine's static ~60 %.
    return preset_.idle_watts - 0.4 * engine_idle;
  }
  return preset_.idle_watts;
}

}  // namespace incod
