// OffloadTarget adapter for a programmable switch ASIC.
//
// A Tofino-style switch is an offload destination with very different
// economics from a NIC: the forwarding pipeline runs at line rate whether or
// not an in-network program is loaded, so the power attributable to the
// offload is only the program's marginal draw (§9.4 — which is why the
// tipping point for a ToR-resident app approaches zero). "Activating" the
// app means loading the program into the pipeline; there is no clock gating
// or memory reset to apply — the pipeline is always warm.
#ifndef INCOD_SRC_DEVICE_SWITCH_OFFLOAD_H_
#define INCOD_SRC_DEVICE_SWITCH_OFFLOAD_H_

#include <string>

#include "src/device/offload_target.h"
#include "src/device/switch_asic.h"

namespace incod {

class SwitchOffloadTarget : public OffloadTarget {
 public:
  // Adapts (switch, program) into an offload target for `proto` traffic.
  // Neither is owned; if the program is already loaded the target starts
  // active. The switch keeps forwarding all traffic either way. A non-zero
  // `service` narrows the classifier signal to packets addressed to that
  // node, so replies crossing the switch don't double the measured rate.
  SwitchOffloadTarget(SwitchAsic& asic, SwitchProgram& program, AppProto proto,
                      NodeId service = 0);

  std::string TargetName() const override;
  // Default traits: no park knobs — an ASIC pipeline is always warm, so
  // every park policy behaves like kKeepWarm.

  void SetAppActive(bool active) override;
  bool app_active() const override { return active_; }

  // A pipeline program cannot half-die: killing the "engine" unloads it, so
  // matching traffic immediately falls through to the normal route toward
  // the host placement instead of being serviced by dead match-action
  // stages. The switch itself keeps forwarding.
  void KillEngine() override;

  double AppIngressRatePerSecond() const override;
  uint64_t app_ingress_packets() const override;
  double ProcessedRatePerSecond() const override;

  // Marginal program watts at the current pipeline utilization — zero while
  // unloaded, and near zero at idle (§9.4).
  double OffloadPowerWatts() const override;
  double OffloadCapacityPps() const override;

  SwitchAsic& asic() { return asic_; }
  AppProto proto() const { return proto_; }

 private:
  SwitchAsic& asic_;
  SwitchProgram& program_;
  AppProto proto_;
  bool active_ = false;
};

}  // namespace incod

#endif  // INCOD_SRC_DEVICE_SWITCH_OFFLOAD_H_
