#include "src/scenarios/testbed_builder.h"

#include <stdexcept>

namespace incod {

TestbedBuilder::TestbedBuilder(Simulation& sim, SimDuration meter_period)
    : sim_(sim), topology_(sim) {
  meter_ = std::make_unique<WallPowerMeter>(sim_, meter_period);
}

TestbedBuilder::TestbedBuilder(ShardedSimulation& sharded, int shard,
                               SimDuration meter_period)
    : sim_(sharded.shard(shard)), sharded_(&sharded), default_shard_(shard),
      topology_(sim_) {
  topology_.SetSharded(&sharded, shard);
  meter_ = std::make_unique<WallPowerMeter>(sim_, meter_period);
}

Link::Config TestbedBuilder::TenGigLink(SimDuration propagation_delay) {
  Link::Config config;
  config.gigabits_per_second = 10.0;
  config.propagation_delay = propagation_delay;
  return config;
}

Link::Config TestbedBuilder::PcieLink(SimDuration propagation_delay) {
  Link::Config config;
  config.gigabits_per_second = 32.0;  // PCIe gen3 x4-ish effective.
  config.propagation_delay = propagation_delay;
  return config;
}

Server* TestbedBuilder::AddServer(ServerConfig config, bool metered) {
  Server* server = Own<Server>(sim_, std::move(config));
  if (metered) {
    meter_->Attach(server);
  }
  return server;
}

FpgaNic* TestbedBuilder::AddFpgaNic(FpgaNicConfig config, App* app, bool metered) {
  FpgaNic* nic = Own<FpgaNic>(sim_, std::move(config));
  if (app != nullptr) {
    nic->InstallApp(app);
  }
  if (metered) {
    meter_->Attach(nic);
  }
  return nic;
}

ConventionalNic* TestbedBuilder::AddConventionalNic(ConventionalNicConfig config,
                                                    bool metered) {
  ConventionalNic* nic = Own<ConventionalNic>(sim_, std::move(config));
  if (metered) {
    meter_->Attach(nic);
  }
  return nic;
}

SmartNic* TestbedBuilder::AddSmartNic(SmartNicPreset preset, SmartNicDeviceConfig config,
                                      bool metered) {
  SmartNic* nic = Own<SmartNic>(sim_, std::move(preset), std::move(config));
  if (metered) {
    meter_->Attach(nic);
  }
  return nic;
}

SwitchAsic* TestbedBuilder::AddSwitchAsic(SwitchAsicConfig config, bool metered) {
  SwitchAsic* asic = Own<SwitchAsic>(sim_, std::move(config));
  if (metered) {
    meter_->Attach(asic);
  }
  return asic;
}

L2Switch* TestbedBuilder::AddL2Switch(std::string name) {
  return Own<L2Switch>(sim_, std::move(name));
}

Server* TestbedBuilder::AddAuxServer(L2Switch* sw, NodeId node, std::string name,
                                     int cores) {
  ServerConfig config;
  config.name = std::move(name);
  config.node = node;
  config.num_cores = cores;
  config.power_curve = I7SyntheticCurve();
  config.stack_rx_cost = Nanoseconds(100);  // Aux boxes must never bottleneck.
  config.stack_tx_cost = Nanoseconds(50);
  Server* server = AddServer(std::move(config), /*metered=*/false);
  Link* link = topology_.ConnectToSwitch(sw, server, node, TenGigLink());
  server->SetUplink(link);
  return server;
}

LoadClient* TestbedBuilder::AddLoadClient(LoadClientConfig config,
                                          std::unique_ptr<ArrivalProcess> arrival,
                                          RequestFactory factory, int shard) {
  if (shard >= 0 && sharded_ == nullptr) {
    throw std::logic_error("AddLoadClient: shard placement needs a sharded build");
  }
  Simulation& client_sim =
      (shard >= 0 && shard != default_shard_) ? sharded_->shard(shard) : sim_;
  LoadClient* client =
      Own<LoadClient>(client_sim, std::move(config), std::move(arrival), std::move(factory));
  if (shard >= 0) {
    topology_.AssignShard(client, shard);
  }
  return client;
}

}  // namespace incod
