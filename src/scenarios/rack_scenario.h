// Mixed-workload rack scenario: KVS + DNS + Paxos under one orchestrator.
//
// The rack-scale composition the OffloadTarget refactor unlocks: three
// applications on three servers behind one programmable ToR, with
// heterogeneous offload destinations managed against a shared power budget:
//
//   kvs client --+                                  +-- NetFPGA(LaKe) -- kvs host
//   dns client --+-- ToR (Tofino, switch-dns prog) -+-- ConvNIC       -- dns host
//   paxos client-+                                  +-- NetFPGA(P4xos)-- leader host
//                                                   +-- acceptors / learner
//
// KVS offloads to its FPGA NIC, DNS to a program in the ToR pipeline
// (marginal watts ~0, §9.4), and the Paxos leader to its P4xos NIC via the
// switch-rule rewrite of §9.2 — all driven by the same RackOrchestrator
// through the generic StateTransferMigrator core, with a per-app warm/cold
// policy. The whole topology is a switch-centric ScenarioSpec
// (MakeMixedRackSpec): every app is a member built purely from AppRegistry
// names; this class is a veneer keeping typed accessors for benches/tests.
#ifndef INCOD_SRC_SCENARIOS_RACK_SCENARIO_H_
#define INCOD_SRC_SCENARIOS_RACK_SCENARIO_H_

#include <memory>
#include <vector>

#include "src/device/switch_offload.h"
#include "src/dns/nsd_server.h"
#include "src/dns/switch_dns.h"
#include "src/dns/zone.h"
#include "src/kvs/lake.h"
#include "src/kvs/memcached_server.h"
#include "src/kvs/netcache.h"
#include "src/ondemand/rack.h"
#include "src/paxos/p4xos.h"
#include "src/paxos/paxos_client.h"
#include "src/paxos/software_roles.h"
#include "src/scenarios/scenario_spec.h"

namespace incod {

// Rack-local addresses.
constexpr NodeId kRackKvsServerNode = 1;
constexpr NodeId kRackDnsServerNode = 2;
constexpr NodeId kRackPaxosHostNode = 3;
constexpr NodeId kRackKvsDeviceNode = 50;
constexpr NodeId kRackPaxosDeviceNode = 51;
constexpr NodeId kRackKvsClientNode = 100;
constexpr NodeId kRackDnsClientNode = 101;
constexpr NodeId kRackPaxosClientNode = 102;
constexpr NodeId kRackPaxosLeaderService = 200;
constexpr NodeId kRackAcceptorBaseNode = 10;
constexpr NodeId kRackLearnerNode = 30;

// Per-app warm/cold policy for orchestrator-driven shifts (RackAppSpec's
// warm_migration): warm apps carry their typed AppState on every shift.
struct MixedRackWarmPolicy {
  bool kvs = false;
  bool dns = false;
  bool paxos = false;
};

struct MixedRackOptions {
  // Shared offload power budget at the PDU (<= 0: unlimited).
  double power_budget_watts = 0;
  bool enable_paxos = true;
  int num_acceptors = 3;
  MixedRackWarmPolicy warm;             // Default: the paper's cold shifts.
  RackOrchestratorConfig orchestrator;  // budget field is overridden.
  LakeConfig lake;
  MemcachedConfig memcached;
  NsdConfig nsd;
  size_t zone_size = 10000;
  PaxosClientConfig paxos_client;
  SimDuration meter_period = Milliseconds(1);
  // Second in-network KVS placement: a NetCache-style program in the ToR
  // pipeline, so FPGA death leaves recovery a surviving in-network landing
  // spot (and the orchestrator a cheaper fallback under power caps).
  bool kvs_switch_placement = false;
  KvSwitchCacheConfig netcache;
  // Per-app checkpoint cadences (< 0: inherit orchestrator.checkpoint_period;
  // 0: never checkpoint this app).
  SimDuration kvs_checkpoint_period = -1;
  SimDuration paxos_checkpoint_period = -1;
  // On crash recovery, restore the Paxos leader's checkpoint into the
  // software leader (its ballot/sequence live wherever the leader last ran).
  bool paxos_restore_to_home = false;
  // Declarative fault plan, armed by the testbed at build time.
  FaultPlanSpec faults;
  // Rack-wide congestion control (PFC pause propagation + DCQCN clients);
  // forwarded into the spec's flow section. Off by default so existing
  // drop-tail scenarios keep their event streams.
  ScenarioFlowSpec flow;
  // Mechanistic host-NIC datapath (RSS rings + interrupt moderation on the
  // conventional-NIC members, RSS worker dispatch on every host); forwarded
  // into the spec's hostnic section. Off by default, same contract as flow.
  ScenarioHostNicSpec hostnic;
};

// The declarative spec the scenario wires: one member per application (plus
// acceptor/learner aux members), apps by registry name. `zone` must outlive
// the built testbed.
ScenarioSpec MakeMixedRackSpec(const MixedRackOptions& options, const Zone* zone);

// Shard assignment for the sharded build: the whole rack (ToR, members,
// orchestrator, migrators, meter) stays in one shard; each load client gets
// its own, so the client--ToR links are the only cross-shard boundaries.
// Their propagation delay becomes the engine lookahead, so it is raised
// from the 500ns ToR default to something that buys useful rounds.
struct MixedRackShardPlan {
  int rack = 0;
  int kvs_client = 1;
  int dns_client = 2;
  int paxos_client = 3;
  SimDuration client_propagation = Microseconds(2);
};

class MixedRackScenario {
 public:
  MixedRackScenario(Simulation& sim, MixedRackOptions options = {});

  // Sharded build per `plan`. Event-identical to the single-Simulation
  // build only when that build uses the same client-link propagation.
  MixedRackScenario(ShardedSimulation& sharded, const MixedRackShardPlan& plan,
                    MixedRackOptions options = {});

  Simulation& sim() { return sim_; }
  TestbedBuilder& builder() { return testbed_->builder(); }
  WallPowerMeter& meter() { return testbed_->meter(); }
  RackOrchestrator& orchestrator() { return *orchestrator_; }
  ScenarioTestbed& scenario() { return *testbed_; }

  // Targets (two OffloadTarget implementations + optionally more).
  SwitchAsic& tor() { return *testbed_->tor_asic(); }
  FpgaNic& kvs_fpga() { return *kvs_fpga_; }
  SwitchOffloadTarget& dns_target() { return *dns_target_; }
  FpgaNic* paxos_fpga() { return paxos_fpga_; }
  // Second KVS placement (null unless options.kvs_switch_placement).
  SwitchOffloadTarget* kvs_switch_target() { return kvs_switch_target_; }

  // Fault injection: every server/device/link of the rack is registered by
  // name; options.faults was armed at build time.
  FaultInjector& faults() { return testbed_->faults(); }

  Server& kvs_server() { return *kvs_server_; }
  Server& dns_server() { return *dns_server_; }
  Server* paxos_host() { return paxos_host_; }

  ClassifierMigrator& kvs_migrator() { return *kvs_migrator_; }
  ClassifierMigrator& dns_migrator() { return *dns_migrator_; }
  PaxosLeaderMigrator* paxos_migrator() { return paxos_migrator_.get(); }
  ClassifierMigrator* kvs_switch_migrator() { return kvs_switch_migrator_.get(); }

  MemcachedServer& memcached() { return *memcached_; }
  LakeCache& lake() { return *lake_; }
  KvSwitchCache* netcache() { return netcache_; }
  SoftwareLeader* software_leader() { return software_leader_; }
  P4xosFpgaApp* fpga_leader() { return fpga_leader_; }
  DnsSwitchProgram& dns_program() { return *dns_program_; }
  Zone& zone() { return zone_; }

  // Orchestrator app indices (for current_option / shift introspection).
  // paxos_app_index() throws when the scenario was built without Paxos.
  size_t kvs_app_index() const { return kvs_app_; }
  size_t dns_app_index() const { return dns_app_; }
  size_t paxos_app_index() const;

  // Load clients (owned; callers Start() them).
  LoadClient& AddKvsClient(LoadClientConfig config,
                           std::unique_ptr<ArrivalProcess> arrival,
                           RequestFactory factory);
  LoadClient& AddDnsClient(LoadClientConfig config,
                           std::unique_ptr<ArrivalProcess> arrival,
                           RequestFactory factory);
  PaxosClient* paxos_client() { return paxos_client_.get(); }

  // Fills the KVS store and LaKe caches with keys [0, count).
  void PrefillKvs(uint64_t count, uint32_t value_bytes);

 private:
  void ResolveMembers();
  void BuildMigrators();
  void RegisterApps();
  int ClientShard(int shard) const { return sharded_ != nullptr ? shard : -1; }

  Simulation& sim_;
  MixedRackOptions options_;
  ShardedSimulation* sharded_ = nullptr;
  MixedRackShardPlan plan_;
  Zone zone_;
  std::unique_ptr<ScenarioTestbed> testbed_;

  // Non-owning views into the spec-built members.
  Server* kvs_server_ = nullptr;
  Server* dns_server_ = nullptr;
  Server* paxos_host_ = nullptr;
  FpgaNic* kvs_fpga_ = nullptr;
  FpgaNic* paxos_fpga_ = nullptr;
  ConventionalNic* dns_nic_ = nullptr;
  int paxos_port_ = -1;
  MemcachedServer* memcached_ = nullptr;
  LakeCache* lake_ = nullptr;
  NsdServer* nsd_ = nullptr;
  DnsSwitchProgram* dns_program_ = nullptr;
  SwitchOffloadTarget* dns_target_ = nullptr;
  KvSwitchCache* netcache_ = nullptr;
  SwitchOffloadTarget* kvs_switch_target_ = nullptr;
  SoftwareLeader* software_leader_ = nullptr;
  P4xosFpgaApp* fpga_leader_ = nullptr;

  std::unique_ptr<ClassifierMigrator> kvs_migrator_;
  std::unique_ptr<ClassifierMigrator> dns_migrator_;
  std::unique_ptr<ClassifierMigrator> kvs_switch_migrator_;
  std::unique_ptr<PaxosLeaderMigrator> paxos_migrator_;
  std::unique_ptr<RackOrchestrator> orchestrator_;
  std::unique_ptr<PaxosClient> paxos_client_;

  static constexpr size_t kNoApp = static_cast<size_t>(-1);
  size_t kvs_app_ = kNoApp;
  size_t dns_app_ = kNoApp;
  size_t paxos_app_ = kNoApp;
};

}  // namespace incod

#endif  // INCOD_SRC_SCENARIOS_RACK_SCENARIO_H_
