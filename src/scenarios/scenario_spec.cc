#include "src/scenarios/scenario_spec.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/dns/dns_message.h"
#include "src/kvs/kv_protocol.h"
#include "src/workload/dns_workload.h"

namespace incod {

ScenarioTestbed::ScenarioTestbed(Simulation& sim, ScenarioSpec spec)
    : sim_(sim), spec_(std::move(spec)), builder_(sim, spec_.meter_period) {
  Build();
}

ScenarioTestbed::ScenarioTestbed(ShardedSimulation& sharded, ScenarioSpec spec)
    : sim_(sharded.shard(spec.shard)),
      spec_(std::move(spec)),
      builder_(sharded, spec_.shard, spec_.meter_period) {
  Build();
}

void ScenarioTestbed::ApplyFlowSpec() {
  if (!spec_.flow.enabled) {
    return;
  }
  LinkFlowConfig link_flow = spec_.flow.link;
  link_flow.pfc = true;
  link_flow.ecn = true;
  HostFlowConfig host_flow = spec_.flow.host;
  host_flow.pfc = true;
  host_flow.cnp = spec_.flow.dcqcn;
  spec_.client_link.flow = link_flow;
  spec_.target.pcie.flow = link_flow;
  spec_.host.config.flow = host_flow;
  for (auto& member : spec_.members) {
    member.switch_link.flow = link_flow;
    member.target.pcie.flow = link_flow;
    member.host.config.flow = host_flow;
  }
  if (spec_.flow.dcqcn && !spec_.workload.client.dcqcn.enabled) {
    spec_.workload.client.dcqcn = spec_.flow.dcqcn_config;
    spec_.workload.client.dcqcn.enabled = true;
  }
}

void ScenarioTestbed::ApplyHostNicSpec() {
  if (!spec_.hostnic.enabled) {
    return;
  }
  const auto stamp = [this](ServerConfig& config) {
    config.dispatch = spec_.hostnic.dispatch;
    config.interrupt_cpu_cost = spec_.hostnic.interrupt_cpu_cost;
  };
  stamp(spec_.host.config);
  for (ScenarioMemberSpec& member : spec_.members) {
    stamp(member.host.config);
  }
}

HostNicSpec ScenarioTestbed::ResolveHostNic(const ServerConfig& host_config) const {
  HostNicSpec nic = spec_.hostnic.nic;
  nic.enabled = true;
  nic.host_interrupts = host_config.stack == NetStackType::kKernel;
  return nic;
}

void ScenarioTestbed::Build() {
  ApplyFlowSpec();
  ApplyHostNicSpec();
  if (spec_.tor.present) {
    // Switch-centric scenario: members hang off the ToR; the single-chain
    // host/target sections are ignored.
    if (spec_.controller.present) {
      throw std::invalid_argument(
          "ScenarioSpec: the single-chain controller does not apply to a "
          "switch-centric scenario (drive members via migrators/orchestrator)");
    }
    BuildTor();
    BuildMembers();
    builder_.StartMeter();
    BuildWorkload();
    BuildFaults();
    return;
  }
  if (!spec_.members.empty()) {
    throw std::invalid_argument("ScenarioSpec: members need tor.present");
  }
  if (!spec_.host.present && spec_.target.kind != ScenarioTargetKind::kFpgaNic) {
    throw std::invalid_argument("ScenarioSpec: a hostless scenario needs an FPGA NIC");
  }
  BuildHost();
  BuildTarget();
  builder_.StartMeter();
  BuildController();
  BuildWorkload();
  BuildFaults();
}

AppFactoryEnv ScenarioTestbed::ResolveEnv(const AppFactoryEnv& env) const {
  AppFactoryEnv resolved = env;
  if (resolved.zone == nullptr) {
    resolved.zone = spec_.env.zone;
  }
  if (resolved.paxos_group == nullptr) {
    resolved.paxos_group =
        spec_.paxos_group.has_value() ? &*spec_.paxos_group : spec_.env.paxos_group;
  }
  return resolved;
}

void ScenarioTestbed::BuildTor() {
  if (spec_.tor.asic) {
    SwitchAsicConfig config = spec_.tor.asic_config;
    config.name = spec_.tor.name;
    tor_asic_ = builder_.AddSwitchAsic(config, spec_.tor.metered);
    tor_ = tor_asic_;
    return;
  }
  tor_ = builder_.AddL2Switch(spec_.tor.name);
}

void ScenarioTestbed::BuildMembers() {
  members_.reserve(spec_.members.size());
  for (const ScenarioMemberSpec& member_spec : spec_.members) {
    BuildMember(member_spec);
  }
}

void ScenarioTestbed::BuildMember(const ScenarioMemberSpec& member_spec) {
  const AppFactoryEnv env = ResolveEnv(member_spec.env);
  ScenarioMember built;
  built.name = member_spec.name;

  if (member_spec.aux) {
    if (member_spec.target.kind != ScenarioTargetKind::kNone ||
        !member_spec.switch_app.empty()) {
      throw std::invalid_argument("ScenarioSpec: aux member " + member_spec.name +
                                  " cannot carry a target or switch app");
    }
    built.server = builder_.AddAuxServer(tor_, member_spec.host.config.node,
                                         member_spec.host.config.name,
                                         member_spec.aux_cores);
  } else if (member_spec.host.present) {
    built.server = builder_.AddServer(member_spec.host.config, member_spec.host.metered);
  }
  if (built.server != nullptr) {
    for (const std::string& app_name : member_spec.host.apps) {
      auto app = AppRegistry::Global().Create(app_name, PlacementKind::kHost, env);
      built.server->BindApp(app.get());
      built.host_apps.push_back(std::move(app));
    }
  }

  switch (member_spec.target.kind) {
    case ScenarioTargetKind::kNone:
      if (built.server != nullptr && !member_spec.aux) {
        throw std::invalid_argument("ScenarioSpec: member " + member_spec.name +
                                    " host needs an ingress device (or aux)");
      }
      break;
    case ScenarioTargetKind::kConventionalNic: {
      if (built.server == nullptr) {
        throw std::invalid_argument("ScenarioSpec: member " + member_spec.name +
                                    " conventional NIC needs a host");
      }
      ConventionalNicConfig nic_config =
          member_spec.target.intel_nic
              ? IntelX520Config(member_spec.host.config.node)
              : MellanoxConnectX3Config(member_spec.host.config.node);
      if (!member_spec.target.name.empty()) {
        nic_config.name = member_spec.target.name;
      }
      if (spec_.hostnic.enabled) {
        nic_config.hostnic = ResolveHostNic(member_spec.host.config);
      }
      built.nic = builder_.AddConventionalNic(nic_config, member_spec.target.metered);
      built.port = builder_.ConnectToSwitchPort(tor_, built.nic,
                                                member_spec.switch_routes,
                                                member_spec.switch_link,
                                                member_spec.link_name);
      builder_.ConnectPcie(built.nic, built.server, member_spec.target.pcie,
                           member_spec.link_name + "-pcie");
      break;
    }
    case ScenarioTargetKind::kFpgaNic: {
      FpgaNicConfig fpga_config;
      fpga_config.name = member_spec.target.name.empty() ? "netfpga"
                                                         : member_spec.target.name;
      fpga_config.host_node = member_spec.host.config.node;
      fpga_config.device_node = member_spec.target.device_node;
      fpga_config.standalone = member_spec.target.standalone;
      if (!member_spec.target.app.empty()) {
        built.offload_app = AppRegistry::Global().Create(
            member_spec.target.app, PlacementKind::kFpgaNic, env);
      }
      built.fpga = builder_.AddFpgaNic(fpga_config, built.offload_app.get(),
                                       member_spec.target.metered);
      if (built.offload_app != nullptr) {
        built.fpga->SetAppActive(member_spec.target.initially_active);
      }
      built.port = builder_.ConnectToSwitchPort(tor_, built.fpga,
                                                member_spec.switch_routes,
                                                member_spec.switch_link,
                                                member_spec.link_name);
      if (built.server != nullptr) {
        builder_.ConnectPcie(built.fpga, built.server, member_spec.target.pcie,
                             member_spec.link_name + "-pcie");
      }
      break;
    }
    case ScenarioTargetKind::kSmartNic: {
      if (built.server == nullptr) {
        throw std::invalid_argument("ScenarioSpec: member " + member_spec.name +
                                    " SmartNIC needs a host");
      }
      SmartNicDeviceConfig nic_config;
      nic_config.name = member_spec.target.name.empty() ? "smartnic"
                                                        : member_spec.target.name;
      nic_config.host_node = member_spec.host.config.node;
      nic_config.device_node = member_spec.target.device_node;
      if (!member_spec.target.app.empty()) {
        built.offload_app = AppRegistry::Global().Create(
            member_spec.target.app, PlacementKind::kSmartNic, env);
      }
      built.smartnic = builder_.AddSmartNic(
          SmartNicPresetByName(member_spec.target.smartnic_preset), nic_config,
          member_spec.target.metered);
      if (built.offload_app != nullptr) {
        built.smartnic->InstallApp(built.offload_app.get());
        built.smartnic->SetAppActive(member_spec.target.initially_active);
      }
      built.port = builder_.ConnectToSwitchPort(tor_, built.smartnic,
                                                member_spec.switch_routes,
                                                member_spec.switch_link,
                                                member_spec.link_name);
      builder_.ConnectPcie(built.smartnic, built.server, member_spec.target.pcie,
                           member_spec.link_name + "-pcie");
      break;
    }
  }

  if (!member_spec.switch_app.empty()) {
    if (tor_asic_ == nullptr) {
      throw std::invalid_argument("ScenarioSpec: member " + member_spec.name +
                                  " switch app needs an ASIC ToR");
    }
    built.switch_program_app = AppRegistry::Global().Create(
        member_spec.switch_app, PlacementKind::kSwitchAsic, env);
    auto* program = dynamic_cast<SwitchProgram*>(built.switch_program_app.get());
    if (program == nullptr) {
      throw std::logic_error("ScenarioSpec: " + member_spec.switch_app +
                             " kSwitchAsic placement is not a SwitchProgram");
    }
    built.switch_target = std::make_unique<SwitchOffloadTarget>(
        *tor_asic_, *program, built.switch_program_app->proto(), env.service);
  }

  members_.push_back(std::move(built));
}

void ScenarioTestbed::BuildFaults() {
  faults_ = std::make_unique<FaultInjector>(sim_);
  const auto register_link = [this](const std::string& name) {
    if (name.empty()) {
      return;
    }
    if (Link* link = builder_.topology().FindLink(name)) {
      faults_->RegisterLink(name, link);
    }
  };
  if (tor_ != nullptr) {
    faults_->RegisterNode(tor_->SinkName(), tor_);
  }
  if (server_ != nullptr) {
    faults_->RegisterNode(server_->SinkName(), server_);
  }
  if (fpga_ != nullptr) {
    // Both names mean engine death: TargetName ("netfpga/app") is what the
    // orchestrator logs, SinkName ("netfpga") is what specs naturally say.
    faults_->RegisterTarget(fpga_->TargetName(), fpga_);
    faults_->RegisterTarget(fpga_->SinkName(), fpga_);
  }
  if (smartnic_ != nullptr) {
    faults_->RegisterTarget(smartnic_->TargetName(), smartnic_);
    faults_->RegisterTarget(smartnic_->SinkName(), smartnic_);
  }
  if (nic_ != nullptr) {
    faults_->RegisterNode(nic_->SinkName(), nic_);
  }
  register_link("pcie");
  register_link("client-10ge");
  for (size_t i = 0; i < members_.size(); ++i) {
    ScenarioMember& m = members_[i];
    const ScenarioMemberSpec& member_spec = spec_.members[i];
    if (m.server != nullptr) {
      faults_->RegisterNode(m.server->SinkName(), m.server);
    }
    if (m.fpga != nullptr) {
      faults_->RegisterTarget(m.fpga->TargetName(), m.fpga);
      faults_->RegisterTarget(m.fpga->SinkName(), m.fpga);
    }
    if (m.smartnic != nullptr) {
      faults_->RegisterTarget(m.smartnic->TargetName(), m.smartnic);
      faults_->RegisterTarget(m.smartnic->SinkName(), m.smartnic);
    }
    if (m.nic != nullptr) {
      faults_->RegisterNode(m.nic->SinkName(), m.nic);
    }
    if (m.switch_target != nullptr) {
      faults_->RegisterTarget(m.switch_target->TargetName(), m.switch_target.get());
    }
    register_link(member_spec.link_name);
    register_link(member_spec.link_name + "-pcie");
  }
  faults_->Arm(spec_.faults);
}

ScenarioMember& ScenarioTestbed::member(const std::string& name) {
  for (ScenarioMember& m : members_) {
    if (m.name == name) {
      return m;
    }
  }
  throw std::invalid_argument("ScenarioTestbed: no member named " + name);
}

void ScenarioTestbed::BuildHost() {
  if (!spec_.host.present) {
    return;
  }
  server_ = builder_.AddServer(spec_.host.config, spec_.host.metered);
  for (const std::string& name : spec_.host.apps) {
    auto app = AppRegistry::Global().Create(name, PlacementKind::kHost, spec_.env);
    server_->BindApp(app.get());
    host_apps_.push_back(std::move(app));
  }
}

void ScenarioTestbed::BuildTarget() {
  switch (spec_.target.kind) {
    case ScenarioTargetKind::kNone:
      return;
    case ScenarioTargetKind::kConventionalNic: {
      if (server_ == nullptr) {
        throw std::invalid_argument("ScenarioSpec: conventional NIC needs a host");
      }
      ConventionalNicConfig nic_config =
          spec_.target.intel_nic ? IntelX520Config(spec_.host.config.node)
                                 : MellanoxConnectX3Config(spec_.host.config.node);
      if (!spec_.target.name.empty()) {
        nic_config.name = spec_.target.name;
      }
      if (spec_.hostnic.enabled) {
        nic_config.hostnic = ResolveHostNic(spec_.host.config);
      }
      nic_ = builder_.AddConventionalNic(nic_config, spec_.target.metered);
      builder_.ConnectPcie(nic_, server_, spec_.target.pcie);
      return;
    }
    case ScenarioTargetKind::kFpgaNic: {
      FpgaNicConfig fpga_config;
      fpga_config.name = spec_.target.name.empty() ? "netfpga" : spec_.target.name;
      fpga_config.host_node = spec_.host.config.node;
      fpga_config.device_node = spec_.target.device_node;
      fpga_config.standalone = spec_.target.standalone;
      if (!spec_.target.app.empty()) {
        offload_app_ = AppRegistry::Global().Create(spec_.target.app,
                                                    PlacementKind::kFpgaNic, spec_.env);
      }
      fpga_ = builder_.AddFpgaNic(fpga_config, offload_app_.get(), spec_.target.metered);
      if (server_ != nullptr) {
        builder_.ConnectPcie(fpga_, server_, spec_.target.pcie);
      }
      if (offload_app_ != nullptr) {
        fpga_->SetAppActive(spec_.target.initially_active);
      }
      return;
    }
    case ScenarioTargetKind::kSmartNic: {
      if (server_ == nullptr) {
        throw std::invalid_argument("ScenarioSpec: a SmartNIC needs a host");
      }
      SmartNicDeviceConfig nic_config;
      nic_config.name = spec_.target.name.empty() ? "smartnic" : spec_.target.name;
      nic_config.host_node = spec_.host.config.node;
      nic_config.device_node = spec_.target.device_node;
      if (!spec_.target.app.empty()) {
        offload_app_ = AppRegistry::Global().Create(spec_.target.app,
                                                    PlacementKind::kSmartNic, spec_.env);
      }
      smartnic_ = builder_.AddSmartNic(
          SmartNicPresetByName(spec_.target.smartnic_preset), nic_config,
          spec_.target.metered);
      builder_.ConnectPcie(smartnic_, server_, spec_.target.pcie);
      if (offload_app_ != nullptr) {
        smartnic_->InstallApp(offload_app_.get());
        smartnic_->SetAppActive(spec_.target.initially_active);
      }
      return;
    }
  }
}

void ScenarioTestbed::BuildController() {
  if (!spec_.controller.present) {
    return;
  }
  // The classifier flip works against any offload-capable ingress device.
  OffloadTarget* target = fpga_ != nullptr ? static_cast<OffloadTarget*>(fpga_)
                                           : static_cast<OffloadTarget*>(smartnic_);
  if (target == nullptr || offload_app_ == nullptr) {
    throw std::invalid_argument("ScenarioSpec: controller needs an offloaded app");
  }
  ClassifierMigrator::Options options =
      ClassifierMigrator::Options::FromPolicy(spec_.controller.park_policy);
  options.transfer_state = spec_.controller.transfer_state;
  migrator_ = std::make_unique<ClassifierMigrator>(
      sim_, *target, options, host_apps_.empty() ? nullptr : host_apps_.front().get(),
      offload_app_.get());
  controller_ = std::make_unique<NetworkController>(sim_, *target, *migrator_,
                                                    spec_.controller.network);
  controller_->Start();
}

NodeId ScenarioTestbed::ServiceNode() const {
  if (spec_.host.present) {
    return spec_.host.config.node;
  }
  return spec_.target.device_node;
}

App* ScenarioTestbed::host_app(size_t index) {
  return index < host_apps_.size() ? host_apps_[index].get() : nullptr;
}

LoadClient& ScenarioTestbed::AddClient(LoadClientConfig config,
                                       std::unique_ptr<ArrivalProcess> arrival,
                                       RequestFactory factory) {
  if (client_ != nullptr) {
    throw std::logic_error("ScenarioTestbed: client already attached");
  }
  if (spec_.flow.enabled && spec_.flow.dcqcn && !config.dcqcn.enabled) {
    config.dcqcn = spec_.flow.dcqcn_config;
    config.dcqcn.enabled = true;
  }
  client_ = builder_.AddLoadClient(std::move(config), std::move(arrival),
                                   std::move(factory));
  if (fpga_ != nullptr) {
    builder_.ConnectClient(client_, fpga_, spec_.client_link);
  } else if (smartnic_ != nullptr) {
    builder_.ConnectClient(client_, smartnic_, spec_.client_link);
  } else if (nic_ != nullptr) {
    builder_.ConnectClient(client_, nic_, spec_.client_link);
  } else {
    throw std::logic_error("ScenarioTestbed: no ingress device for the client");
  }
  return *client_;
}

LoadClient& ScenarioTestbed::AddTorClient(LoadClientConfig config,
                                          std::unique_ptr<ArrivalProcess> arrival,
                                          RequestFactory factory, int shard) {
  if (tor_ == nullptr) {
    throw std::logic_error("ScenarioTestbed: AddTorClient needs a ToR");
  }
  if (spec_.flow.enabled && spec_.flow.dcqcn && !config.dcqcn.enabled) {
    config.dcqcn = spec_.flow.dcqcn_config;
    config.dcqcn.enabled = true;
  }
  const NodeId node = config.node;
  LoadClient* client = builder_.AddLoadClient(std::move(config), std::move(arrival),
                                              std::move(factory), shard);
  Link* link = builder_.topology().ConnectToSwitch(tor_, client, node,
                                                   spec_.client_link);
  client->SetUplink(link);
  return *client;
}

RequestFactory MakeScenarioRequestFactory(const ScenarioWorkloadSpec& workload,
                                          NodeId service, const Zone* zone) {
  using Kind = ScenarioWorkloadSpec::Kind;
  switch (workload.kind) {
    case Kind::kKvUniformGets: {
      const int64_t max_key =
          std::max<int64_t>(0, static_cast<int64_t>(workload.keyspace) - 1);
      if (workload.cross_service != 0) {
        // Key first, then the cross-service decision: the draw order is part
        // of the stream contract (see ScenarioWorkloadSpec::cross_service).
        const NodeId remote = workload.cross_service;
        const double cross_fraction = workload.cross_fraction;
        return [service, remote, max_key,
                cross_fraction](NodeId src, uint64_t id, SimTime now, Rng& rng) {
          const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, max_key));
          const bool cross = rng.UniformDouble(0.0, 1.0) < cross_fraction;
          const NodeId target = cross ? remote : service;
          return MakeKvRequestPacket(src, target, KvRequest{KvOp::kGet, key, 0}, id,
                                     now);
        };
      }
      return [service, max_key](NodeId src, uint64_t id, SimTime now, Rng& rng) {
        const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, max_key));
        return MakeKvRequestPacket(src, service, KvRequest{KvOp::kGet, key, 0}, id, now);
      };
    }
    case Kind::kDnsQueries: {
      DnsWorkloadConfig dns;
      dns.dns_service = service;
      dns.zone_size = zone != nullptr ? zone->size() : workload.keyspace;
      dns.miss_fraction = workload.dns_miss_fraction;
      return MakeDnsRequestFactory(dns);
    }
    case Kind::kNone:
      break;
  }
  return nullptr;
}

void ScenarioTestbed::BuildWorkload() {
  using Kind = ScenarioWorkloadSpec::Kind;
  if (spec_.workload.kind == Kind::kNone) {
    return;
  }
  if (tor_ != nullptr) {
    throw std::invalid_argument(
        "ScenarioSpec: declarative workloads target the single-chain service; "
        "attach clients to a switch-centric scenario via AddTorClient");
  }
  RequestFactory factory =
      MakeScenarioRequestFactory(spec_.workload, ServiceNode(), spec_.env.zone);
  if (factory == nullptr) {
    return;
  }
  AddClient(spec_.workload.client,
            std::make_unique<ConstantArrival>(spec_.workload.rate_per_second),
            std::move(factory));
  client_->Start();
}

}  // namespace incod
