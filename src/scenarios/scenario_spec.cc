#include "src/scenarios/scenario_spec.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/dns/dns_message.h"
#include "src/kvs/kv_protocol.h"
#include "src/workload/dns_workload.h"

namespace incod {

ScenarioTestbed::ScenarioTestbed(Simulation& sim, ScenarioSpec spec)
    : sim_(sim), spec_(std::move(spec)), builder_(sim, spec_.meter_period) {
  if (!spec_.host.present && spec_.target.kind != ScenarioTargetKind::kFpgaNic) {
    throw std::invalid_argument("ScenarioSpec: a hostless scenario needs an FPGA NIC");
  }
  BuildHost();
  BuildTarget();
  builder_.StartMeter();
  BuildController();
  BuildWorkload();
}

void ScenarioTestbed::BuildHost() {
  if (!spec_.host.present) {
    return;
  }
  server_ = builder_.AddServer(spec_.host.config);
  for (const std::string& name : spec_.host.apps) {
    auto app = AppRegistry::Global().Create(name, PlacementKind::kHost, spec_.env);
    server_->BindApp(app.get());
    host_apps_.push_back(std::move(app));
  }
}

void ScenarioTestbed::BuildTarget() {
  switch (spec_.target.kind) {
    case ScenarioTargetKind::kNone:
      return;
    case ScenarioTargetKind::kConventionalNic: {
      if (server_ == nullptr) {
        throw std::invalid_argument("ScenarioSpec: conventional NIC needs a host");
      }
      ConventionalNicConfig nic_config =
          spec_.target.intel_nic ? IntelX520Config(spec_.host.config.node)
                                 : MellanoxConnectX3Config(spec_.host.config.node);
      if (!spec_.target.name.empty()) {
        nic_config.name = spec_.target.name;
      }
      nic_ = builder_.AddConventionalNic(nic_config);
      builder_.ConnectPcie(nic_, server_, spec_.target.pcie);
      return;
    }
    case ScenarioTargetKind::kFpgaNic: {
      FpgaNicConfig fpga_config;
      fpga_config.name = spec_.target.name.empty() ? "netfpga" : spec_.target.name;
      fpga_config.host_node = spec_.host.config.node;
      fpga_config.device_node = spec_.target.device_node;
      fpga_config.standalone = spec_.target.standalone;
      if (!spec_.target.app.empty()) {
        offload_app_ = AppRegistry::Global().Create(spec_.target.app,
                                                    PlacementKind::kFpgaNic, spec_.env);
      }
      fpga_ = builder_.AddFpgaNic(fpga_config, offload_app_.get());
      if (server_ != nullptr) {
        builder_.ConnectPcie(fpga_, server_, spec_.target.pcie);
      }
      if (offload_app_ != nullptr) {
        fpga_->SetAppActive(spec_.target.initially_active);
      }
      return;
    }
  }
}

void ScenarioTestbed::BuildController() {
  if (!spec_.controller.present) {
    return;
  }
  if (fpga_ == nullptr || offload_app_ == nullptr) {
    throw std::invalid_argument("ScenarioSpec: controller needs an offloaded app");
  }
  ClassifierMigrator::Options options =
      ClassifierMigrator::Options::FromPolicy(spec_.controller.park_policy);
  options.transfer_state = spec_.controller.transfer_state;
  migrator_ = std::make_unique<ClassifierMigrator>(
      sim_, *fpga_, options, host_apps_.empty() ? nullptr : host_apps_.front().get(),
      offload_app_.get());
  controller_ = std::make_unique<NetworkController>(sim_, *fpga_, *migrator_,
                                                    spec_.controller.network);
  controller_->Start();
}

NodeId ScenarioTestbed::ServiceNode() const {
  if (spec_.host.present) {
    return spec_.host.config.node;
  }
  return spec_.target.device_node;
}

App* ScenarioTestbed::host_app(size_t index) {
  return index < host_apps_.size() ? host_apps_[index].get() : nullptr;
}

LoadClient& ScenarioTestbed::AddClient(LoadClientConfig config,
                                       std::unique_ptr<ArrivalProcess> arrival,
                                       RequestFactory factory) {
  if (client_ != nullptr) {
    throw std::logic_error("ScenarioTestbed: client already attached");
  }
  client_ = builder_.AddLoadClient(std::move(config), std::move(arrival),
                                   std::move(factory));
  if (fpga_ != nullptr) {
    builder_.ConnectClient(client_, fpga_, spec_.client_link);
  } else if (nic_ != nullptr) {
    builder_.ConnectClient(client_, nic_, spec_.client_link);
  } else {
    throw std::logic_error("ScenarioTestbed: no ingress device for the client");
  }
  return *client_;
}

void ScenarioTestbed::BuildWorkload() {
  using Kind = ScenarioWorkloadSpec::Kind;
  if (spec_.workload.kind == Kind::kNone) {
    return;
  }
  const NodeId service = ServiceNode();
  RequestFactory factory;
  switch (spec_.workload.kind) {
    case Kind::kKvUniformGets: {
      const int64_t max_key =
          std::max<int64_t>(0, static_cast<int64_t>(spec_.workload.keyspace) - 1);
      factory = [service, max_key](NodeId src, uint64_t id, SimTime now, Rng& rng) {
        const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, max_key));
        return MakeKvRequestPacket(src, service, KvRequest{KvOp::kGet, key, 0}, id, now);
      };
      break;
    }
    case Kind::kDnsQueries: {
      DnsWorkloadConfig dns;
      dns.dns_service = service;
      dns.zone_size = spec_.env.zone != nullptr ? spec_.env.zone->size()
                                                : spec_.workload.keyspace;
      dns.miss_fraction = spec_.workload.dns_miss_fraction;
      factory = MakeDnsRequestFactory(dns);
      break;
    }
    case Kind::kNone:
      return;
  }
  AddClient(spec_.workload.client,
            std::make_unique<ConstantArrival>(spec_.workload.rate_per_second),
            std::move(factory));
  client_->Start();
}

}  // namespace incod
