// Trace-driven multi-app rack: registry names + a Google-trace load
// timeline, nothing else.
//
// The §9.3 argument is that offload pays off as host load *diminishes*: the
// cluster trace shows long-running tasks keeping every node busy, and the
// rack orchestrator should shift an app into the network exactly when its
// host's background load makes the software placement expensive. This
// scenario reproduces that decision loop generically: each application is
// named by its AppRegistry entry (any family with host + FPGA placements
// works — no concrete app type is referenced outside src/app), placed as a
// ScenarioSpec member behind a programmable ToR, migrated through the
// generic StateTransferMigrator core (warm or cold per app), and driven by
// a synthesized Google cluster trace whose per-node task timeline modulates
// each host's background draw — which is what the orchestrator's §8 power
// models see when they decide.
#ifndef INCOD_SRC_SCENARIOS_TRACE_RACK_H_
#define INCOD_SRC_SCENARIOS_TRACE_RACK_H_

#include <memory>
#include <string>
#include <vector>

#include "src/dns/zone.h"
#include "src/ondemand/rack.h"
#include "src/scenarios/scenario_spec.h"
#include "src/workload/google_trace.h"

namespace incod {

struct TraceRackAppOptions {
  // AppRegistry family; must support kHost and kFpgaNic placements.
  std::string registry_name;
  // Wire-level request stream the app's client generates.
  ScenarioWorkloadSpec workload;
  // Host cost model input for the §8 software power curve.
  SimDuration host_service_time = Microseconds(4);
  // Warm: shifts carry the typed AppState (caches arrive filled).
  bool warm_migration = false;
};

struct TraceRackOptions {
  // Default (when empty): a KVS and a DNS app, both registry-built.
  std::vector<TraceRackAppOptions> apps;
  // Trace synthesis; num_nodes is clamped to the app count (one trace node
  // of background tasks per app host). Defaults stay small enough for tests
  // and examples — widen toward GoogleTraceConfig{} for cluster-scale runs.
  GoogleTraceConfig trace = {.num_tasks = 4000, .num_nodes = 4};
  // Trace horizon is compressed onto this much simulated time.
  SimDuration sim_horizon = Seconds(10);
  // Watts one background core adds to a host (decision-model input).
  double background_watts_per_core = 18.0;
  double power_budget_watts = 0;
  RackOrchestratorConfig orchestrator;
  size_t zone_size = 2000;
  SimDuration meter_period = Milliseconds(1);
  uint64_t trace_seed = 42;
};

// Shard assignment for the sharded build: the rack (ToR, members,
// orchestrator, migrators, meter, trace playback) lives in `rack`; client i
// goes to shard first_client + i, so the client--ToR links are the only
// cross-shard boundaries and their propagation is the engine lookahead.
struct TraceRackShardPlan {
  int rack = 0;
  int first_client = 1;
  SimDuration client_propagation = Microseconds(2);
};

class TraceRackScenario {
 public:
  TraceRackScenario(Simulation& sim, TraceRackOptions options = {});

  // Sharded build per `plan`. Event-identical to the single-Simulation
  // build only when that build uses the same client-link propagation.
  TraceRackScenario(ShardedSimulation& sharded, const TraceRackShardPlan& plan,
                    TraceRackOptions options = {});

  Simulation& sim() { return sim_; }
  ScenarioTestbed& scenario() { return *testbed_; }
  RackOrchestrator& orchestrator() { return *orchestrator_; }
  WallPowerMeter& meter() { return testbed_->meter(); }

  size_t app_count() const { return apps_.size(); }
  const std::string& app_name(size_t index) const;
  size_t orchestrator_index(size_t index) const { return apps_.at(index).rack_index; }
  App* host_app(size_t index);
  App* offload_app(size_t index);
  StateTransferMigrator& migrator(size_t index) { return *apps_.at(index).migrator; }
  LoadClient& client(size_t index) { return *apps_.at(index).client; }
  // Background cores the trace currently runs on the app's host.
  double background_cores(size_t index) const { return apps_.at(index).background_cores; }
  const std::vector<TraceTask>& trace_tasks() const { return tasks_; }

  // Starts clients, orchestrator, and the trace playback.
  void Start();

 private:
  struct TraceApp {
    std::string name;
    StateTransferMigrator* migrator = nullptr;
    LoadClient* client = nullptr;
    size_t rack_index = 0;
    double background_cores = 0;
  };

  void Init();
  void BuildApps();
  void ScheduleTrace();

  Simulation& sim_;
  TraceRackOptions options_;
  ShardedSimulation* sharded_ = nullptr;
  TraceRackShardPlan plan_;
  Zone zone_;
  std::unique_ptr<ScenarioTestbed> testbed_;
  std::vector<std::unique_ptr<StateTransferMigrator>> migrators_;
  std::unique_ptr<RackOrchestrator> orchestrator_;
  std::vector<TraceApp> apps_;
  std::vector<TraceTask> tasks_;
  bool started_ = false;
};

}  // namespace incod

#endif  // INCOD_SRC_SCENARIOS_TRACE_RACK_H_
