// Paxos experiment testbed (Fig 3b sweeps, §6 spot checks, Fig 7 migration).
//
// Topology: a client, three acceptor hosts, a learner host, and a leader
// deployment, all hanging off one L2 switch. The whole group is a
// switch-centric ScenarioSpec (MakePaxosGroupSpec): every role is a member
// built purely from AppRegistry names ("paxos-leader", "paxos-acceptor",
// "paxos-learner"), and the system under test (leader or one acceptor) is
// deployed per the requested variant — libpaxos on the kernel stack, the
// DPDK port, P4xos on a NetFPGA in a server, or P4xos on a standalone board
// — with only the SUT's components metered, matching §4.1 ("the isolated
// ... application under test, traffic source excluded"). This class is a
// veneer over ScenarioTestbed keeping concrete-typed accessors for the
// benches and tests.
//
// The `dual_leader` option builds the Fig 7 testbed: the software leader on
// the host *and* the P4xos leader on that host's NetFPGA NIC, shiftable via
// PaxosLeaderMigrator.
#ifndef INCOD_SRC_SCENARIOS_PAXOS_TESTBED_H_
#define INCOD_SRC_SCENARIOS_PAXOS_TESTBED_H_

#include <memory>
#include <vector>

#include "src/paxos/p4xos.h"
#include "src/paxos/paxos_client.h"
#include "src/paxos/software_roles.h"
#include "src/scenarios/scenario_spec.h"

namespace incod {

enum class PaxosDeployment { kLibpaxos, kDpdk, kP4xosFpga, kP4xosStandalone };
enum class PaxosSut { kLeader, kAcceptor };

const char* PaxosDeploymentName(PaxosDeployment deployment);

// Testbed addresses.
constexpr NodeId kPaxosClientNode = 100;
constexpr NodeId kPaxosLeaderService = 200;
constexpr NodeId kPaxosLeaderHostNode = 1;
constexpr NodeId kPaxosAcceptorBaseNode = 10;  // 10, 11, 12, ...
constexpr NodeId kPaxosLearnerNode = 30;
constexpr NodeId kPaxosLeaderDeviceNode = 50;
constexpr NodeId kPaxosAcceptorDeviceNode = 51;

struct PaxosTestbedOptions {
  PaxosDeployment deployment = PaxosDeployment::kLibpaxos;
  PaxosSut sut = PaxosSut::kLeader;
  int num_acceptors = 3;
  bool dual_leader = false;  // Fig 7: SW + HW leader on one host/NIC pair.
  PaxosClientConfig client;
  SimDuration meter_period = Milliseconds(1);
  SimDuration learner_gap_timeout = Milliseconds(50);
};

// The declarative spec the testbed wires: one member per role deployment
// (leader, N acceptors, learner) behind an L2 ToR, apps by registry name.
// Exposed so differential tests and custom scenarios can start from the
// same literal.
ScenarioSpec MakePaxosGroupSpec(const PaxosTestbedOptions& options);

class PaxosTestbed {
 public:
  PaxosTestbed(Simulation& sim, PaxosTestbedOptions options);

  PaxosClient& client() { return *client_; }
  WallPowerMeter& meter() { return testbed_->meter(); }
  L2Switch& net_switch() { return *testbed_->tor(); }
  Simulation& sim() { return sim_; }
  TestbedBuilder& builder() { return testbed_->builder(); }
  ScenarioTestbed& scenario() { return *testbed_; }

  // SUT components (null when absent in the chosen variant).
  Server* sut_server() { return sut_server_; }
  FpgaNic* sut_fpga() { return sut_fpga_; }

  // Roles.
  SoftwareLeader* software_leader() { return software_leader_; }
  P4xosFpgaApp* fpga_leader() { return fpga_leader_; }
  SoftwareLearner* learner() { return learner_; }
  SoftwareAcceptor* software_acceptor(int i) { return software_acceptors_[i]; }
  P4xosFpgaApp* fpga_acceptor() { return fpga_acceptor_; }

  // Fig 7 support: the switch port serving the leader service.
  int leader_port() const { return leader_port_; }

  const PaxosGroupConfig& group() const { return *testbed_->spec().paxos_group; }

  // Total messages the SUT handled (for ops/watt style reporting).
  uint64_t SutMessagesHandled() const;

 private:
  Simulation& sim_;
  PaxosTestbedOptions options_;
  std::unique_ptr<ScenarioTestbed> testbed_;
  std::unique_ptr<PaxosClient> client_;

  SoftwareLeader* software_leader_ = nullptr;
  SoftwareLearner* learner_ = nullptr;
  std::vector<SoftwareAcceptor*> software_acceptors_;
  P4xosFpgaApp* fpga_leader_ = nullptr;
  P4xosFpgaApp* fpga_acceptor_ = nullptr;
  FpgaNic* sut_fpga_ = nullptr;
  FpgaNic* aux_fpga_ = nullptr;  // Unmetered fast leader for acceptor SUTs.
  ConventionalNic* sut_nic_ = nullptr;
  Server* sut_server_ = nullptr;
  int leader_port_ = -1;
};

}  // namespace incod

#endif  // INCOD_SRC_SCENARIOS_PAXOS_TESTBED_H_
