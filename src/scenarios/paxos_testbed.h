// Paxos experiment testbed (Fig 3b sweeps, §6 spot checks, Fig 7 migration).
//
// Topology: a client, three acceptor hosts, a learner host, and a leader
// deployment, all hanging off one L2 switch, built through the shared
// TestbedBuilder. The system under test (leader or one acceptor) is deployed
// per the requested variant — libpaxos on the kernel stack, the DPDK port,
// P4xos on a NetFPGA in a server, or P4xos on a standalone board — and only
// the SUT's components are metered, matching §4.1 ("the isolated ...
// application under test, traffic source excluded").
//
// The `dual_leader` option builds the Fig 7 testbed: the software leader on
// the host *and* the P4xos leader on that host's NetFPGA NIC, shiftable via
// PaxosLeaderMigrator.
#ifndef INCOD_SRC_SCENARIOS_PAXOS_TESTBED_H_
#define INCOD_SRC_SCENARIOS_PAXOS_TESTBED_H_

#include <memory>
#include <vector>

#include "src/paxos/p4xos.h"
#include "src/paxos/paxos_client.h"
#include "src/paxos/software_roles.h"
#include "src/scenarios/testbed_builder.h"

namespace incod {

enum class PaxosDeployment { kLibpaxos, kDpdk, kP4xosFpga, kP4xosStandalone };
enum class PaxosSut { kLeader, kAcceptor };

const char* PaxosDeploymentName(PaxosDeployment deployment);

// Testbed addresses.
constexpr NodeId kPaxosClientNode = 100;
constexpr NodeId kPaxosLeaderService = 200;
constexpr NodeId kPaxosLeaderHostNode = 1;
constexpr NodeId kPaxosAcceptorBaseNode = 10;  // 10, 11, 12, ...
constexpr NodeId kPaxosLearnerNode = 30;
constexpr NodeId kPaxosLeaderDeviceNode = 50;
constexpr NodeId kPaxosAcceptorDeviceNode = 51;

struct PaxosTestbedOptions {
  PaxosDeployment deployment = PaxosDeployment::kLibpaxos;
  PaxosSut sut = PaxosSut::kLeader;
  int num_acceptors = 3;
  bool dual_leader = false;  // Fig 7: SW + HW leader on one host/NIC pair.
  PaxosClientConfig client;
  SimDuration meter_period = Milliseconds(1);
  SimDuration learner_gap_timeout = Milliseconds(50);
};

class PaxosTestbed {
 public:
  PaxosTestbed(Simulation& sim, PaxosTestbedOptions options);

  PaxosClient& client() { return *client_; }
  WallPowerMeter& meter() { return builder_.meter(); }
  L2Switch& net_switch() { return *switch_; }
  Simulation& sim() { return sim_; }
  TestbedBuilder& builder() { return builder_; }

  // SUT components (null when absent in the chosen variant).
  Server* sut_server() { return sut_server_; }
  FpgaNic* sut_fpga() { return sut_fpga_; }

  // Roles.
  SoftwareLeader* software_leader() { return software_leader_.get(); }
  P4xosFpgaApp* fpga_leader() { return fpga_leader_.get(); }
  SoftwareLearner* learner() { return learner_.get(); }
  SoftwareAcceptor* software_acceptor(int i) { return software_acceptors_[i].get(); }
  P4xosFpgaApp* fpga_acceptor() { return fpga_acceptor_.get(); }

  // Fig 7 support: the switch port serving the leader service.
  int leader_port() const { return leader_port_; }

  const PaxosGroupConfig& group() const { return group_; }

  // Total messages the SUT handled (for ops/watt style reporting).
  uint64_t SutMessagesHandled() const;

 private:
  Server* MakeAuxServer(NodeId node, const char* name, int cores);
  void WireLeader();
  void WireAcceptors();
  void WireLearner();

  Simulation& sim_;
  PaxosTestbedOptions options_;
  TestbedBuilder builder_;
  PaxosGroupConfig group_;
  L2Switch* switch_ = nullptr;
  std::unique_ptr<PaxosClient> client_;

  std::unique_ptr<SoftwareLeader> software_leader_;
  std::unique_ptr<SoftwareLearner> learner_;
  std::vector<std::unique_ptr<SoftwareAcceptor>> software_acceptors_;
  std::unique_ptr<P4xosFpgaApp> fpga_leader_;
  std::unique_ptr<P4xosFpgaApp> fpga_acceptor_;
  FpgaNic* sut_fpga_ = nullptr;
  FpgaNic* aux_fpga_ = nullptr;  // Unmetered fast leader for acceptor SUTs.
  ConventionalNic* sut_nic_ = nullptr;
  Server* sut_server_ = nullptr;
  int leader_port_ = -1;
};

}  // namespace incod

#endif  // INCOD_SRC_SCENARIOS_PAXOS_TESTBED_H_
