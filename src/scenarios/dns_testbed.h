// DNS experiment testbed (Fig 3c and the §9.2 DNS shift).
//
// Same topology family as the KVS testbed:
//   kSoftwareOnly:  client --10GE-- conventional NIC --PCIe-- i7 server (NSD)
//   kEmu:           client --10GE-- NetFPGA(Emu DNS) --PCIe-- i7 server
//   kEmuStandalone: client --10GE-- NetFPGA(Emu DNS) (hostless)
#ifndef INCOD_SRC_SCENARIOS_DNS_TESTBED_H_
#define INCOD_SRC_SCENARIOS_DNS_TESTBED_H_

#include <memory>

#include "src/device/conventional_nic.h"
#include "src/device/fpga_nic.h"
#include "src/dns/emu_dns.h"
#include "src/dns/nsd_server.h"
#include "src/dns/zone.h"
#include "src/host/server.h"
#include "src/net/topology.h"
#include "src/power/meter.h"
#include "src/sim/simulation.h"
#include "src/workload/client.h"

namespace incod {

enum class DnsMode { kSoftwareOnly, kEmu, kEmuStandalone };

struct DnsTestbedOptions {
  DnsMode mode = DnsMode::kEmu;
  bool emu_initially_active = true;
  size_t zone_size = 10000;
  NsdConfig nsd;
  EmuDnsConfig emu;
  SimDuration meter_period = Milliseconds(1);
};

class DnsTestbed {
 public:
  DnsTestbed(Simulation& sim, DnsTestbedOptions options);

  Server* server() { return server_.get(); }
  FpgaNic* fpga() { return fpga_.get(); }
  EmuDns* emu() { return emu_.get(); }
  NsdServer* nsd() { return nsd_.get(); }
  Zone& zone() { return zone_; }
  WallPowerMeter& meter() { return *meter_; }
  Simulation& sim() { return sim_; }

  LoadClient& AddClient(LoadClientConfig config, std::unique_ptr<ArrivalProcess> arrival,
                        RequestFactory factory);
  LoadClient* client() { return client_.get(); }

  NodeId ServiceNode() const;

 private:
  Simulation& sim_;
  DnsTestbedOptions options_;
  Topology topology_;
  Zone zone_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<NsdServer> nsd_;
  std::unique_ptr<FpgaNic> fpga_;
  std::unique_ptr<EmuDns> emu_;
  std::unique_ptr<ConventionalNic> nic_;
  std::unique_ptr<WallPowerMeter> meter_;
  std::unique_ptr<LoadClient> client_;
  PacketSink* ingress_ = nullptr;
};

}  // namespace incod

#endif  // INCOD_SRC_SCENARIOS_DNS_TESTBED_H_
