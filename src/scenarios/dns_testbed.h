// DNS experiment testbed (Fig 3c and the §9.2 DNS shift).
//
// Same topology family as the KVS testbed, built through TestbedBuilder:
//   kSoftwareOnly:  client --10GE-- conventional NIC --PCIe-- i7 server (NSD)
//   kEmu:           client --10GE-- NetFPGA(Emu DNS) --PCIe-- i7 server
//   kEmuStandalone: client --10GE-- NetFPGA(Emu DNS) (hostless)
#ifndef INCOD_SRC_SCENARIOS_DNS_TESTBED_H_
#define INCOD_SRC_SCENARIOS_DNS_TESTBED_H_

#include <memory>

#include "src/dns/emu_dns.h"
#include "src/dns/nsd_server.h"
#include "src/dns/zone.h"
#include "src/scenarios/testbed_builder.h"

namespace incod {

enum class DnsMode { kSoftwareOnly, kEmu, kEmuStandalone };

struct DnsTestbedOptions {
  DnsMode mode = DnsMode::kEmu;
  bool emu_initially_active = true;
  size_t zone_size = 10000;
  NsdConfig nsd;
  EmuDnsConfig emu;
  SimDuration meter_period = Milliseconds(1);
};

class DnsTestbed {
 public:
  DnsTestbed(Simulation& sim, DnsTestbedOptions options);

  Server* server() { return server_; }
  FpgaNic* fpga() { return fpga_; }
  EmuDns* emu() { return emu_.get(); }
  NsdServer* nsd() { return nsd_.get(); }
  Zone& zone() { return zone_; }
  WallPowerMeter& meter() { return builder_.meter(); }
  Simulation& sim() { return sim_; }
  TestbedBuilder& builder() { return builder_; }

  LoadClient& AddClient(LoadClientConfig config, std::unique_ptr<ArrivalProcess> arrival,
                        RequestFactory factory);
  LoadClient* client() { return client_; }

  NodeId ServiceNode() const;

 private:
  Simulation& sim_;
  DnsTestbedOptions options_;
  TestbedBuilder builder_;
  Zone zone_;
  std::unique_ptr<NsdServer> nsd_;
  std::unique_ptr<EmuDns> emu_;
  Server* server_ = nullptr;
  FpgaNic* fpga_ = nullptr;
  ConventionalNic* nic_ = nullptr;
  LoadClient* client_ = nullptr;
};

}  // namespace incod

#endif  // INCOD_SRC_SCENARIOS_DNS_TESTBED_H_
