// DNS experiment testbed (Fig 3c and the §9.2 DNS shift).
//
// Same topology family as the KVS testbed, expressed as a declarative
// ScenarioSpec ("dns" from the AppRegistry on both placements):
//   kSoftwareOnly:  client --10GE-- conventional NIC --PCIe-- i7 server (NSD)
//   kEmu:           client --10GE-- NetFPGA(Emu DNS) --PCIe-- i7 server
//   kEmuStandalone: client --10GE-- NetFPGA(Emu DNS) (hostless)
#ifndef INCOD_SRC_SCENARIOS_DNS_TESTBED_H_
#define INCOD_SRC_SCENARIOS_DNS_TESTBED_H_

#include <memory>

#include "src/dns/emu_dns.h"
#include "src/dns/nsd_server.h"
#include "src/dns/zone.h"
#include "src/scenarios/scenario_spec.h"

namespace incod {

enum class DnsMode { kSoftwareOnly, kEmu, kEmuStandalone };

struct DnsTestbedOptions {
  DnsMode mode = DnsMode::kEmu;
  bool emu_initially_active = true;
  size_t zone_size = 10000;
  NsdConfig nsd;
  EmuDnsConfig emu;
  SimDuration meter_period = Milliseconds(1);
};

// Builds the declarative spec the testbed wires. `zone` must outlive the
// testbed (it is shared read-only by every DNS placement).
ScenarioSpec MakeDnsScenarioSpec(const DnsTestbedOptions& options, const Zone* zone);

class DnsTestbed {
 public:
  DnsTestbed(Simulation& sim, DnsTestbedOptions options);

  Server* server() { return testbed_->server(); }
  FpgaNic* fpga() { return testbed_->fpga(); }
  EmuDns* emu() { return emu_; }
  NsdServer* nsd() { return nsd_; }
  Zone& zone() { return zone_; }
  WallPowerMeter& meter() { return testbed_->meter(); }
  Simulation& sim() { return sim_; }
  TestbedBuilder& builder() { return testbed_->builder(); }
  ScenarioTestbed& scenario() { return *testbed_; }

  LoadClient& AddClient(LoadClientConfig config, std::unique_ptr<ArrivalProcess> arrival,
                        RequestFactory factory);
  LoadClient* client() { return testbed_->client(); }

  NodeId ServiceNode() const { return testbed_->ServiceNode(); }

 private:
  Simulation& sim_;
  DnsTestbedOptions options_;
  Zone zone_;
  std::unique_ptr<ScenarioTestbed> testbed_;
  NsdServer* nsd_ = nullptr;
  EmuDns* emu_ = nullptr;
};

}  // namespace incod

#endif  // INCOD_SRC_SCENARIOS_DNS_TESTBED_H_
