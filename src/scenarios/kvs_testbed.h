// KVS experiment testbed (Fig 3a, Fig 4, Fig 6 topologies).
//
// Wires up the paper's §4.1 setup in one of three modes:
//   kSoftwareOnly:   client --10GE-- conventional NIC --PCIe-- i7 server
//   kLake:           client --10GE-- NetFPGA(LaKe)    --PCIe-- i7 server
//   kLakeStandalone: client --10GE-- NetFPGA(LaKe) (hostless, own PSU)
// and attaches a wall power meter to exactly the components the paper's
// SHW-3A saw for that configuration. The testbed is a thin veneer over a
// declarative ScenarioSpec: it fills in the spec ("kvs" from the
// AppRegistry on both placements) and keeps concrete-typed accessors for
// the benches and tests.
#ifndef INCOD_SRC_SCENARIOS_KVS_TESTBED_H_
#define INCOD_SRC_SCENARIOS_KVS_TESTBED_H_

#include <memory>

#include "src/kvs/lake.h"
#include "src/kvs/memcached_server.h"
#include "src/scenarios/scenario_spec.h"

namespace incod {

// Testbed node addresses.
constexpr NodeId kTestbedClientNode = 100;
constexpr NodeId kTestbedServerNode = 1;
constexpr NodeId kTestbedDeviceNode = 50;

enum class KvsMode { kSoftwareOnly, kLake, kLakeStandalone };

struct KvsTestbedOptions {
  KvsMode mode = KvsMode::kLake;
  bool lake_initially_active = true;
  LakeConfig lake;
  MemcachedConfig memcached;
  bool intel_nic = false;  // kSoftwareOnly: Intel X520 instead of Mellanox.
  SimDuration meter_period = Milliseconds(1);
};

// Builds the declarative spec the testbed wires (exposed so differential
// tests and custom scenarios can start from the same literal).
ScenarioSpec MakeKvsScenarioSpec(const KvsTestbedOptions& options);

class KvsTestbed {
 public:
  KvsTestbed(Simulation& sim, KvsTestbedOptions options);

  // Null when the mode lacks the component.
  Server* server() { return testbed_->server(); }
  FpgaNic* fpga() { return testbed_->fpga(); }
  LakeCache* lake() { return lake_; }
  ConventionalNic* nic() { return testbed_->nic(); }
  MemcachedServer* memcached() { return memcached_; }
  WallPowerMeter& meter() { return testbed_->meter(); }
  Simulation& sim() { return sim_; }
  TestbedBuilder& builder() { return testbed_->builder(); }
  ScenarioTestbed& scenario() { return *testbed_; }

  // Creates the (single) load client wired to the testbed ingress.
  LoadClient& AddClient(LoadClientConfig config, std::unique_ptr<ArrivalProcess> arrival,
                        RequestFactory factory);
  LoadClient* client() { return testbed_->client(); }

  // Address clients should target.
  NodeId ServiceNode() const { return testbed_->ServiceNode(); }

  // Fills the software store (and, when present, LaKe's caches) with keys
  // [0, count) so GETs hit.
  void Prefill(uint64_t count, uint32_t value_bytes);

 private:
  Simulation& sim_;
  KvsTestbedOptions options_;
  std::unique_ptr<ScenarioTestbed> testbed_;
  MemcachedServer* memcached_ = nullptr;
  LakeCache* lake_ = nullptr;
};

}  // namespace incod

#endif  // INCOD_SRC_SCENARIOS_KVS_TESTBED_H_
