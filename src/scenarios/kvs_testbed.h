// KVS experiment testbed (Fig 3a, Fig 4, Fig 6 topologies).
//
// Wires up the paper's §4.1 setup in one of three modes:
//   kSoftwareOnly:   client --10GE-- conventional NIC --PCIe-- i7 server
//   kLake:           client --10GE-- NetFPGA(LaKe)    --PCIe-- i7 server
//   kLakeStandalone: client --10GE-- NetFPGA(LaKe) (hostless, own PSU)
// and attaches a wall power meter to exactly the components the paper's
// SHW-3A saw for that configuration. All construction goes through the
// shared TestbedBuilder.
#ifndef INCOD_SRC_SCENARIOS_KVS_TESTBED_H_
#define INCOD_SRC_SCENARIOS_KVS_TESTBED_H_

#include <memory>

#include "src/kvs/lake.h"
#include "src/kvs/memcached_server.h"
#include "src/scenarios/testbed_builder.h"

namespace incod {

// Testbed node addresses.
constexpr NodeId kTestbedClientNode = 100;
constexpr NodeId kTestbedServerNode = 1;
constexpr NodeId kTestbedDeviceNode = 50;

enum class KvsMode { kSoftwareOnly, kLake, kLakeStandalone };

struct KvsTestbedOptions {
  KvsMode mode = KvsMode::kLake;
  bool lake_initially_active = true;
  LakeConfig lake;
  MemcachedConfig memcached;
  bool intel_nic = false;  // kSoftwareOnly: Intel X520 instead of Mellanox.
  SimDuration meter_period = Milliseconds(1);
};

class KvsTestbed {
 public:
  KvsTestbed(Simulation& sim, KvsTestbedOptions options);

  // Null when the mode lacks the component.
  Server* server() { return server_; }
  FpgaNic* fpga() { return fpga_; }
  LakeCache* lake() { return lake_.get(); }
  ConventionalNic* nic() { return nic_; }
  MemcachedServer* memcached() { return memcached_.get(); }
  WallPowerMeter& meter() { return builder_.meter(); }
  Simulation& sim() { return sim_; }
  TestbedBuilder& builder() { return builder_; }

  // Creates the (single) load client wired to the testbed ingress.
  LoadClient& AddClient(LoadClientConfig config, std::unique_ptr<ArrivalProcess> arrival,
                        RequestFactory factory);
  LoadClient* client() { return client_; }

  // Address clients should target.
  NodeId ServiceNode() const;

  // Fills the software store (and, when present, LaKe's caches) with keys
  // [0, count) so GETs hit.
  void Prefill(uint64_t count, uint32_t value_bytes);

 private:
  Simulation& sim_;
  KvsTestbedOptions options_;
  TestbedBuilder builder_;
  std::unique_ptr<MemcachedServer> memcached_;
  std::unique_ptr<LakeCache> lake_;
  Server* server_ = nullptr;
  FpgaNic* fpga_ = nullptr;
  ConventionalNic* nic_ = nullptr;
  LoadClient* client_ = nullptr;
};

}  // namespace incod

#endif  // INCOD_SRC_SCENARIOS_KVS_TESTBED_H_
