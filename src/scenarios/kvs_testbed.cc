#include "src/scenarios/kvs_testbed.h"

#include <stdexcept>
#include <utility>

#include "src/power/cpu_power.h"

namespace incod {

KvsTestbed::KvsTestbed(Simulation& sim, KvsTestbedOptions options)
    : sim_(sim), options_(std::move(options)), builder_(sim, options_.meter_period) {
  const bool has_host = options_.mode != KvsMode::kLakeStandalone;
  if (has_host) {
    ServerConfig server_config;
    server_config.name = "i7-server";
    server_config.node = kTestbedServerNode;
    server_config.num_cores = 4;
    server_config.power_curve = I7MemcachedCurve();
    server_ = builder_.AddServer(server_config);
    memcached_ = std::make_unique<MemcachedServer>(options_.memcached);
    server_->BindApp(memcached_.get());
  }

  switch (options_.mode) {
    case KvsMode::kSoftwareOnly: {
      ConventionalNicConfig nic_config = options_.intel_nic
                                             ? IntelX520Config(kTestbedServerNode)
                                             : MellanoxConnectX3Config(kTestbedServerNode);
      nic_ = builder_.AddConventionalNic(nic_config);
      builder_.ConnectPcie(nic_, server_, TestbedBuilder::PcieLink(Nanoseconds(2500)));
      break;
    }
    case KvsMode::kLake:
    case KvsMode::kLakeStandalone: {
      FpgaNicConfig fpga_config;
      fpga_config.name = "netfpga-lake";
      fpga_config.host_node = kTestbedServerNode;
      fpga_config.device_node = kTestbedDeviceNode;
      fpga_config.standalone = options_.mode == KvsMode::kLakeStandalone;
      lake_ = std::make_unique<LakeCache>(options_.lake);
      fpga_ = builder_.AddFpgaNic(fpga_config, lake_.get());
      if (has_host) {
        builder_.ConnectPcie(fpga_, server_, TestbedBuilder::PcieLink(Nanoseconds(2500)));
      }
      fpga_->SetAppActive(options_.lake_initially_active);
      break;
    }
  }
  builder_.StartMeter();
}

NodeId KvsTestbed::ServiceNode() const {
  // Clients address the KVS service by the host node (the classifier
  // intercepts in hardware modes); standalone LaKe answers on its own.
  return options_.mode == KvsMode::kLakeStandalone ? kTestbedDeviceNode
                                                   : kTestbedServerNode;
}

LoadClient& KvsTestbed::AddClient(LoadClientConfig config,
                                  std::unique_ptr<ArrivalProcess> arrival,
                                  RequestFactory factory) {
  if (client_ != nullptr) {
    throw std::logic_error("KvsTestbed: client already attached");
  }
  client_ = builder_.AddLoadClient(std::move(config), std::move(arrival),
                                   std::move(factory));
  const Link::Config client_link = TestbedBuilder::TenGigLink(Nanoseconds(100));
  if (fpga_ != nullptr) {
    builder_.ConnectClient(client_, fpga_, client_link);
  } else {
    builder_.ConnectClient(client_, nic_, client_link);
  }
  return *client_;
}

void KvsTestbed::Prefill(uint64_t count, uint32_t value_bytes) {
  if (memcached_ != nullptr) {
    for (uint64_t k = 0; k < count; ++k) {
      memcached_->store().Set(k, value_bytes);
    }
  }
  if (lake_ != nullptr) {
    lake_->WarmFill(0, count, value_bytes);
  }
}

}  // namespace incod
