#include "src/scenarios/kvs_testbed.h"

#include <stdexcept>
#include <utility>

#include "src/power/cpu_power.h"

namespace incod {

ScenarioSpec MakeKvsScenarioSpec(const KvsTestbedOptions& options) {
  ScenarioSpec spec;
  spec.name = "kvs";
  spec.meter_period = options.meter_period;
  spec.env.memcached = options.memcached;
  spec.env.lake = options.lake;
  spec.client_link = TestbedBuilder::TenGigLink(Nanoseconds(100));

  spec.host.present = options.mode != KvsMode::kLakeStandalone;
  spec.host.config.name = "i7-server";
  spec.host.config.node = kTestbedServerNode;
  spec.host.config.num_cores = 4;
  spec.host.config.power_curve = I7MemcachedCurve();
  if (spec.host.present) {
    spec.host.apps = {"kvs"};
  }

  switch (options.mode) {
    case KvsMode::kSoftwareOnly:
      spec.target.kind = ScenarioTargetKind::kConventionalNic;
      spec.target.name = "";  // Preset name (Mellanox / Intel).
      spec.target.intel_nic = options.intel_nic;
      spec.target.pcie = TestbedBuilder::PcieLink(Nanoseconds(2500));
      break;
    case KvsMode::kLake:
    case KvsMode::kLakeStandalone:
      spec.target.kind = ScenarioTargetKind::kFpgaNic;
      spec.target.name = "netfpga-lake";
      spec.target.device_node = kTestbedDeviceNode;
      spec.target.standalone = options.mode == KvsMode::kLakeStandalone;
      spec.target.app = "kvs";
      spec.target.initially_active = options.lake_initially_active;
      spec.target.pcie = TestbedBuilder::PcieLink(Nanoseconds(2500));
      break;
  }
  return spec;
}

KvsTestbed::KvsTestbed(Simulation& sim, KvsTestbedOptions options)
    : sim_(sim), options_(std::move(options)) {
  testbed_ = std::make_unique<ScenarioTestbed>(sim, MakeKvsScenarioSpec(options_));
  memcached_ = testbed_->host_app_as<MemcachedServer>();
  lake_ = testbed_->offload_app_as<LakeCache>();
}

LoadClient& KvsTestbed::AddClient(LoadClientConfig config,
                                  std::unique_ptr<ArrivalProcess> arrival,
                                  RequestFactory factory) {
  return testbed_->AddClient(std::move(config), std::move(arrival), std::move(factory));
}

void KvsTestbed::Prefill(uint64_t count, uint32_t value_bytes) {
  if (memcached_ != nullptr) {
    for (uint64_t k = 0; k < count; ++k) {
      memcached_->store().Set(k, value_bytes);
    }
  }
  if (lake_ != nullptr) {
    lake_->WarmFill(0, count, value_bytes);
  }
}

}  // namespace incod
