#include "src/scenarios/kvs_testbed.h"

#include <stdexcept>
#include <utility>

#include "src/power/cpu_power.h"

namespace incod {

namespace {
Link::Config TenGigLink() {
  Link::Config config;
  config.gigabits_per_second = 10.0;
  config.propagation_delay = Nanoseconds(100);  // ToR-adjacent client.
  return config;
}

Link::Config PcieLink() {
  Link::Config config;
  config.gigabits_per_second = 32.0;  // PCIe gen3 x4-ish effective.
  // PCIe + DMA + driver + kernel wakeup: crossing into the host costs
  // microseconds (§9.5, citing "Where has my time gone?" [88]) — this is
  // what makes a hardware miss ~an order of magnitude above a cache hit.
  config.propagation_delay = Nanoseconds(2500);
  return config;
}
}  // namespace

KvsTestbed::KvsTestbed(Simulation& sim, KvsTestbedOptions options)
    : sim_(sim), options_(std::move(options)), topology_(sim) {
  meter_ = std::make_unique<WallPowerMeter>(sim_, options_.meter_period);

  const bool has_host = options_.mode != KvsMode::kLakeStandalone;
  if (has_host) {
    ServerConfig server_config;
    server_config.name = "i7-server";
    server_config.node = kTestbedServerNode;
    server_config.num_cores = 4;
    server_config.power_curve = I7MemcachedCurve();
    server_ = std::make_unique<Server>(sim_, server_config);
    memcached_ = std::make_unique<MemcachedServer>(options_.memcached);
    server_->BindApp(memcached_.get());
    meter_->Attach(server_.get());
  }

  switch (options_.mode) {
    case KvsMode::kSoftwareOnly: {
      ConventionalNicConfig nic_config = options_.intel_nic
                                             ? IntelX520Config(kTestbedServerNode)
                                             : MellanoxConnectX3Config(kTestbedServerNode);
      nic_ = std::make_unique<ConventionalNic>(sim_, nic_config);
      Link* host_link = topology_.Connect(nic_.get(), server_.get(), PcieLink(), "pcie");
      nic_->SetHostLink(host_link);
      server_->SetUplink(host_link);
      ingress_ = nic_.get();
      meter_->Attach(nic_.get());
      break;
    }
    case KvsMode::kLake:
    case KvsMode::kLakeStandalone: {
      FpgaNicConfig fpga_config;
      fpga_config.name = "netfpga-lake";
      fpga_config.host_node = kTestbedServerNode;
      fpga_config.device_node = kTestbedDeviceNode;
      fpga_config.standalone = options_.mode == KvsMode::kLakeStandalone;
      fpga_ = std::make_unique<FpgaNic>(sim_, fpga_config);
      lake_ = std::make_unique<LakeCache>(options_.lake);
      fpga_->InstallApp(lake_.get());
      if (has_host) {
        Link* host_link = topology_.Connect(fpga_.get(), server_.get(), PcieLink(), "pcie");
        fpga_->SetHostLink(host_link);
        server_->SetUplink(host_link);
      }
      fpga_->SetAppActive(options_.lake_initially_active);
      ingress_ = fpga_.get();
      meter_->Attach(fpga_.get());
      break;
    }
  }
  meter_->Start();
}

NodeId KvsTestbed::ServiceNode() const {
  // Clients address the KVS service by the host node (the classifier
  // intercepts in hardware modes); standalone LaKe answers on its own.
  return options_.mode == KvsMode::kLakeStandalone ? kTestbedDeviceNode
                                                   : kTestbedServerNode;
}

LoadClient& KvsTestbed::AddClient(LoadClientConfig config,
                                  std::unique_ptr<ArrivalProcess> arrival,
                                  RequestFactory factory) {
  if (client_ != nullptr) {
    throw std::logic_error("KvsTestbed: client already attached");
  }
  client_ = std::make_unique<LoadClient>(sim_, std::move(config), std::move(arrival),
                                         std::move(factory));
  Link* link = topology_.Connect(client_.get(), ingress_, TenGigLink(), "client-10ge");
  client_->SetUplink(link);
  if (fpga_ != nullptr) {
    fpga_->SetNetworkLink(link);
  }
  if (nic_ != nullptr) {
    nic_->SetNetworkLink(link);
  }
  return *client_;
}

void KvsTestbed::Prefill(uint64_t count, uint32_t value_bytes) {
  if (memcached_ != nullptr) {
    for (uint64_t k = 0; k < count; ++k) {
      memcached_->store().Set(k, value_bytes);
    }
  }
  if (lake_ != nullptr) {
    lake_->WarmFill(0, count, value_bytes);
  }
}

}  // namespace incod
