#include "src/scenarios/rack_scenario.h"

#include "src/app/app_registry.h"

#include <stdexcept>
#include <utility>

#include "src/power/cpu_power.h"

namespace incod {

size_t MixedRackScenario::paxos_app_index() const {
  if (paxos_app_ == kNoApp) {
    throw std::logic_error("MixedRackScenario: built without paxos");
  }
  return paxos_app_;
}

MixedRackScenario::MixedRackScenario(Simulation& sim, MixedRackOptions options)
    : sim_(sim), options_(std::move(options)), builder_(sim, options_.meter_period) {
  zone_.FillSynthetic(options_.zone_size);

  // Rack ToR: a Tofino-class ASIC forwarding everything at line rate.
  SwitchAsicConfig tor_config;
  tor_config.name = "rack-tor";
  tor_ = builder_.AddSwitchAsic(tor_config, /*metered=*/true);

  WireKvs();
  WireDns();
  if (options_.enable_paxos) {
    WirePaxos();
  }
  RegisterApps();
  builder_.StartMeter();
}

void MixedRackScenario::WireKvs() {
  ServerConfig config;
  config.name = "kvs-host";
  config.node = kRackKvsServerNode;
  config.num_cores = 4;
  config.power_curve = I7MemcachedCurve();
  kvs_server_ = builder_.AddServer(config);
  AppFactoryEnv kvs_env;
  kvs_env.memcached = options_.memcached;
  kvs_env.lake = options_.lake;
  memcached_ = AppRegistry::Global().CreateAs<MemcachedServer>(
      "kvs", PlacementKind::kHost, kvs_env);
  kvs_server_->BindApp(memcached_.get());

  FpgaNicConfig fpga_config;
  fpga_config.name = "netfpga-lake";
  fpga_config.host_node = kRackKvsServerNode;
  fpga_config.device_node = kRackKvsDeviceNode;
  lake_ = AppRegistry::Global().CreateAs<LakeCache>("kvs", PlacementKind::kFpgaNic,
                                                    kvs_env);
  kvs_fpga_ = builder_.AddFpgaNic(fpga_config, lake_.get());
  builder_.ConnectToSwitchPort(tor_, kvs_fpga_,
                               {kRackKvsServerNode, kRackKvsDeviceNode},
                               TestbedBuilder::TenGigLink(), "kvs-10ge");
  builder_.ConnectPcie(kvs_fpga_, kvs_server_, TestbedBuilder::PcieLink(), "kvs-pcie");

  // Starts parked on the host placement (the migrator applies the policy).
  kvs_migrator_ = std::make_unique<ClassifierMigrator>(
      sim_, *kvs_fpga_, ClassifierMigrator::Options::FromPolicy(ParkPolicy::kGatedPark),
      memcached_.get(), lake_.get());
}

void MixedRackScenario::WireDns() {
  ServerConfig config;
  config.name = "dns-host";
  config.node = kRackDnsServerNode;
  config.num_cores = 4;
  config.power_curve = I7NsdCurve();
  dns_server_ = builder_.AddServer(config);
  AppFactoryEnv dns_env;
  dns_env.zone = &zone_;
  dns_env.nsd = options_.nsd;
  dns_env.service = kRackDnsServerNode;
  nsd_ = AppRegistry::Global().CreateAs<NsdServer>("dns", PlacementKind::kHost, dns_env);
  dns_server_->BindApp(nsd_.get());

  dns_nic_ = builder_.AddConventionalNic(MellanoxConnectX3Config(kRackDnsServerNode));
  builder_.ConnectToSwitchPort(tor_, dns_nic_, {kRackDnsServerNode},
                               TestbedBuilder::TenGigLink(), "dns-10ge");
  builder_.ConnectPcie(dns_nic_, dns_server_, TestbedBuilder::PcieLink(), "dns-pcie");

  // DNS offloads into the ToR pipeline itself (§9.2's switch-DNS argument).
  dns_program_ = AppRegistry::Global().CreateAs<DnsSwitchProgram>(
      "dns", PlacementKind::kSwitchAsic, dns_env);
  dns_target_ = std::make_unique<SwitchOffloadTarget>(*tor_, *dns_program_,
                                                      AppProto::kDns, kRackDnsServerNode);
  dns_migrator_ = std::make_unique<ClassifierMigrator>(
      sim_, *dns_target_, ClassifierMigrator::Options::FromPolicy(ParkPolicy::kKeepWarm),
      nsd_.get(), dns_program_.get());
}

void MixedRackScenario::WirePaxos() {
  for (int i = 0; i < options_.num_acceptors; ++i) {
    group_.acceptors.push_back(kRackAcceptorBaseNode + static_cast<NodeId>(i));
  }
  group_.learners.push_back(kRackLearnerNode);
  group_.leader_service = kRackPaxosLeaderService;

  // Dual leader (Fig 7 style): software leader on the host, P4xos on its NIC.
  ServerConfig host_config;
  host_config.name = "paxos-leader-host";
  host_config.node = kRackPaxosHostNode;
  host_config.num_cores = 4;
  host_config.power_curve = I7LibpaxosCurve();
  paxos_host_ = builder_.AddServer(host_config);
  AppFactoryEnv leader_env;
  leader_env.paxos_group = &group_;
  leader_env.paxos_role_id = 1;
  software_leader_ = AppRegistry::Global().CreateAs<SoftwareLeader>(
      "paxos-leader", PlacementKind::kHost, leader_env);
  paxos_host_->BindApp(software_leader_.get());

  FpgaNicConfig fpga_config;
  fpga_config.name = "netfpga-p4xos";
  fpga_config.host_node = kRackPaxosHostNode;
  fpga_config.device_node = kRackPaxosDeviceNode;
  leader_env.service = kRackPaxosLeaderService;
  fpga_leader_ = AppRegistry::Global().CreateAs<P4xosFpgaApp>(
      "paxos-leader", PlacementKind::kFpgaNic, leader_env);
  paxos_fpga_ = builder_.AddFpgaNic(fpga_config, fpga_leader_.get());
  paxos_fpga_->SetAppActive(false);
  paxos_port_ = builder_.ConnectToSwitchPort(
      tor_, paxos_fpga_,
      {kRackPaxosLeaderService, kRackPaxosHostNode, kRackPaxosDeviceNode},
      TestbedBuilder::TenGigLink(), "paxos-10ge");
  builder_.ConnectPcie(paxos_fpga_, paxos_host_, TestbedBuilder::PcieLink(),
                       "paxos-pcie");

  // Acceptors and learner on aux boxes that never bottleneck.
  for (int i = 0; i < options_.num_acceptors; ++i) {
    Server* server = builder_.AddAuxServer(
        tor_, kRackAcceptorBaseNode + static_cast<NodeId>(i), "aux-acceptor", 4);
    AppFactoryEnv acceptor_env;
    acceptor_env.paxos_group = &group_;
    acceptor_env.paxos_role_id = static_cast<uint32_t>(i);
    acceptor_env.paxos_software = PaxosSoftwareConfig{Nanoseconds(300), 2};
    auto acceptor = AppRegistry::Global().CreateAs<SoftwareAcceptor>(
        "paxos-acceptor", PlacementKind::kHost, acceptor_env);
    server->BindApp(acceptor.get());
    acceptors_.push_back(std::move(acceptor));
  }
  Server* learner_host = builder_.AddAuxServer(tor_, kRackLearnerNode, "learner-host", 8);
  AppFactoryEnv learner_env;
  learner_env.paxos_group = &group_;
  learner_env.paxos_software = PaxosSoftwareConfig{Nanoseconds(100), 8};
  learner_ = AppRegistry::Global().CreateAs<SoftwareLearner>(
      "paxos-learner", PlacementKind::kHost, learner_env);
  learner_host->BindApp(learner_.get());
  learner_->StartGapTimer();

  paxos_migrator_ = std::make_unique<PaxosLeaderMigrator>(
      sim_, *tor_, kRackPaxosLeaderService, *software_leader_, paxos_port_,
      *paxos_fpga_, *fpga_leader_, paxos_port_);

  options_.paxos_client.node = kRackPaxosClientNode;
  options_.paxos_client.leader_service = kRackPaxosLeaderService;
  paxos_client_ = std::make_unique<PaxosClient>(sim_, options_.paxos_client);
  Link* link = builder_.topology().ConnectToSwitch(tor_, paxos_client_.get(),
                                                   kRackPaxosClientNode,
                                                   TestbedBuilder::TenGigLink());
  paxos_client_->SetUplink(link);
}

void MixedRackScenario::RegisterApps() {
  RackOrchestratorConfig config = options_.orchestrator;
  config.power_budget_watts = options_.power_budget_watts;
  orchestrator_ = std::make_unique<RackOrchestrator>(sim_, config);

  // §8-calibrated placement models. Both sides include the host (it stays
  // powered either way) so the delta is the true placement cost.
  const double kHostIdleWatts = 35.0;

  RackAppSpec kvs;
  kvs.name = "kvs";
  auto kvs_curve = MakeServerRatePower(I7MemcachedCurve(), Microseconds(4), 4);
  kvs.software_watts = [kvs_curve](double r) { return kvs_curve(r) + 4.0; };
  kvs.measured_rate_pps = [this] { return kvs_fpga_->AppIngressRatePerSecond(); };
  kvs.options.push_back(RackPlacementOption{
      kvs_fpga_, kvs_migrator_.get(),
      MakeFpgaRatePower(kHostIdleWatts, 24.0, 1.0, 13e6), ParkPolicy::kGatedPark});
  kvs_app_ = orchestrator_->AddApp(std::move(kvs));

  RackAppSpec dns;
  dns.name = "dns";
  auto dns_curve = MakeServerRatePower(I7NsdCurve(), Nanoseconds(4180), 4);
  dns.software_watts = [dns_curve](double r) { return dns_curve(r) + 4.0; };
  auto dns_marginal = MakeSwitchMarginalPower(
      dns_program_->PowerOverheadAtFullLoad(), tor_->asic_config().max_power_watts,
      tor_->LineRatePps());
  // Host idles (rate 0) while the ToR answers; marginal program watts on top.
  RatePowerFn dns_network = [dns_curve, dns_marginal](double r) {
    return dns_curve(0) + 4.0 + dns_marginal(r);
  };
  dns.measured_rate_pps = [this] { return dns_target_->AppIngressRatePerSecond(); };
  dns.options.push_back(RackPlacementOption{dns_target_.get(), dns_migrator_.get(),
                                            std::move(dns_network), ParkPolicy::kKeepWarm});
  dns_app_ = orchestrator_->AddApp(std::move(dns));

  if (options_.enable_paxos) {
    RackAppSpec paxos;
    paxos.name = "paxos";
    paxos.software_watts = MakeServerRatePower(I7LibpaxosCurve(), Nanoseconds(5600), 1);
    paxos.measured_rate_pps = [this] { return paxos_fpga_->AppIngressRatePerSecond(); };
    paxos.options.push_back(RackPlacementOption{
        paxos_fpga_, paxos_migrator_.get(),
        MakeFpgaRatePower(kHostIdleWatts, 12.6, 1.2, 10e6), ParkPolicy::kKeepWarm});
    paxos_app_ = orchestrator_->AddApp(std::move(paxos));
  }
}

LoadClient& MixedRackScenario::AddKvsClient(LoadClientConfig config,
                                            std::unique_ptr<ArrivalProcess> arrival,
                                            RequestFactory factory) {
  config.node = kRackKvsClientNode;
  LoadClient* client =
      builder_.AddLoadClient(std::move(config), std::move(arrival), std::move(factory));
  Link* link = builder_.topology().ConnectToSwitch(tor_, client, kRackKvsClientNode,
                                                   TestbedBuilder::TenGigLink());
  client->SetUplink(link);
  return *client;
}

LoadClient& MixedRackScenario::AddDnsClient(LoadClientConfig config,
                                            std::unique_ptr<ArrivalProcess> arrival,
                                            RequestFactory factory) {
  config.node = kRackDnsClientNode;
  LoadClient* client =
      builder_.AddLoadClient(std::move(config), std::move(arrival), std::move(factory));
  Link* link = builder_.topology().ConnectToSwitch(tor_, client, kRackDnsClientNode,
                                                   TestbedBuilder::TenGigLink());
  client->SetUplink(link);
  return *client;
}

void MixedRackScenario::PrefillKvs(uint64_t count, uint32_t value_bytes) {
  for (uint64_t k = 0; k < count; ++k) {
    memcached_->store().Set(k, value_bytes);
  }
  lake_->WarmFill(0, count, value_bytes);
}

}  // namespace incod
