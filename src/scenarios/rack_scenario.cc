#include "src/scenarios/rack_scenario.h"

#include <stdexcept>
#include <utility>

#include "src/power/cpu_power.h"

namespace incod {

size_t MixedRackScenario::paxos_app_index() const {
  if (paxos_app_ == kNoApp) {
    throw std::logic_error("MixedRackScenario: built without paxos");
  }
  return paxos_app_;
}

ScenarioSpec MakeMixedRackSpec(const MixedRackOptions& options, const Zone* zone) {
  ScenarioSpec spec;
  spec.name = "mixed-rack";
  spec.meter_period = options.meter_period;
  spec.flow = options.flow;
  spec.hostnic = options.hostnic;
  spec.host.present = false;  // Switch-centric: everything is a member.
  spec.target.kind = ScenarioTargetKind::kNone;
  spec.env.zone = zone;

  // Rack ToR: a Tofino-class ASIC forwarding everything at line rate.
  spec.tor.present = true;
  spec.tor.asic = true;
  spec.tor.name = "rack-tor";
  spec.tor.metered = true;

  {
    ScenarioMemberSpec kvs;
    kvs.name = "kvs";
    kvs.link_name = "kvs-10ge";
    kvs.host.config.name = "kvs-host";
    kvs.host.config.node = kRackKvsServerNode;
    kvs.host.config.num_cores = 4;
    kvs.host.config.power_curve = I7MemcachedCurve();
    kvs.host.apps = {"kvs"};
    kvs.target.kind = ScenarioTargetKind::kFpgaNic;
    kvs.target.name = "netfpga-lake";
    kvs.target.device_node = kRackKvsDeviceNode;
    kvs.target.app = "kvs";
    // The migrator parks the placement; avoid a spurious activate cycle.
    kvs.target.initially_active = false;
    kvs.switch_routes = {kRackKvsServerNode, kRackKvsDeviceNode};
    kvs.env.memcached = options.memcached;
    kvs.env.lake = options.lake;
    if (options.kvs_switch_placement) {
      // Second in-network placement: a NetCache program fronting the same
      // service in the ToR pipeline.
      kvs.switch_app = "kvs";
      kvs.env.netcache = options.netcache;
      kvs.env.service = kRackKvsServerNode;
    }
    spec.members.push_back(std::move(kvs));
  }

  {
    ScenarioMemberSpec dns;
    dns.name = "dns";
    dns.link_name = "dns-10ge";
    dns.host.config.name = "dns-host";
    dns.host.config.node = kRackDnsServerNode;
    dns.host.config.num_cores = 4;
    dns.host.config.power_curve = I7NsdCurve();
    dns.host.apps = {"dns"};
    dns.target.kind = ScenarioTargetKind::kConventionalNic;
    dns.target.name = "";  // Preset (Mellanox) name.
    dns.switch_routes = {kRackDnsServerNode};
    // DNS offloads into the ToR pipeline itself (§9.2's switch-DNS argument).
    dns.switch_app = "dns";
    dns.env.nsd = options.nsd;
    dns.env.service = kRackDnsServerNode;
    spec.members.push_back(std::move(dns));
  }

  if (options.enable_paxos) {
    PaxosGroupConfig group;
    for (int i = 0; i < options.num_acceptors; ++i) {
      group.acceptors.push_back(kRackAcceptorBaseNode + static_cast<NodeId>(i));
    }
    group.learners.push_back(kRackLearnerNode);
    group.leader_service = kRackPaxosLeaderService;
    spec.paxos_group = std::move(group);

    // Dual leader (Fig 7 style): software leader on the host, P4xos on its
    // NIC.
    ScenarioMemberSpec leader;
    leader.name = "paxos";
    leader.link_name = "paxos-10ge";
    leader.host.config.name = "paxos-leader-host";
    leader.host.config.node = kRackPaxosHostNode;
    leader.host.config.num_cores = 4;
    leader.host.config.power_curve = I7LibpaxosCurve();
    leader.host.apps = {"paxos-leader"};
    leader.target.kind = ScenarioTargetKind::kFpgaNic;
    leader.target.name = "netfpga-p4xos";
    leader.target.device_node = kRackPaxosDeviceNode;
    leader.target.app = "paxos-leader";
    leader.target.initially_active = false;
    leader.switch_routes = {kRackPaxosLeaderService, kRackPaxosHostNode,
                            kRackPaxosDeviceNode};
    leader.env.paxos_role_id = 1;
    leader.env.service = kRackPaxosLeaderService;
    spec.members.push_back(std::move(leader));

    // Acceptors and learner on aux boxes that never bottleneck.
    for (int i = 0; i < options.num_acceptors; ++i) {
      ScenarioMemberSpec acceptor;
      acceptor.name = "acceptor-" + std::to_string(i);
      acceptor.aux = true;
      acceptor.aux_cores = 4;
      acceptor.target.kind = ScenarioTargetKind::kNone;
      acceptor.host.config.name = "aux-acceptor";
      acceptor.host.config.node = kRackAcceptorBaseNode + static_cast<NodeId>(i);
      acceptor.host.apps = {"paxos-acceptor"};
      acceptor.env.paxos_role_id = static_cast<uint32_t>(i);
      acceptor.env.paxos_software = PaxosSoftwareConfig{Nanoseconds(300), 2};
      spec.members.push_back(std::move(acceptor));
    }
    ScenarioMemberSpec learner;
    learner.name = "learner";
    learner.aux = true;
    learner.aux_cores = 8;
    learner.target.kind = ScenarioTargetKind::kNone;
    learner.host.config.name = "learner-host";
    learner.host.config.node = kRackLearnerNode;
    learner.host.apps = {"paxos-learner"};
    learner.env.paxos_software = PaxosSoftwareConfig{Nanoseconds(100), 8};
    spec.members.push_back(std::move(learner));
  }
  spec.faults = options.faults;
  return spec;
}

MixedRackScenario::MixedRackScenario(Simulation& sim, MixedRackOptions options)
    : sim_(sim), options_(std::move(options)) {
  zone_.FillSynthetic(options_.zone_size);
  testbed_ = std::make_unique<ScenarioTestbed>(sim_,
                                               MakeMixedRackSpec(options_, &zone_));
  ResolveMembers();
  BuildMigrators();
  RegisterApps();
}

MixedRackScenario::MixedRackScenario(ShardedSimulation& sharded,
                                     const MixedRackShardPlan& plan,
                                     MixedRackOptions options)
    : sim_(sharded.shard(plan.rack)),
      options_(std::move(options)),
      sharded_(&sharded),
      plan_(plan) {
  zone_.FillSynthetic(options_.zone_size);
  ScenarioSpec spec = MakeMixedRackSpec(options_, &zone_);
  spec.shard = plan_.rack;
  spec.client_link.propagation_delay = plan_.client_propagation;
  testbed_ = std::make_unique<ScenarioTestbed>(sharded, std::move(spec));
  ResolveMembers();
  BuildMigrators();
  RegisterApps();
}

void MixedRackScenario::ResolveMembers() {
  ScenarioMember& kvs = testbed_->member("kvs");
  kvs_server_ = kvs.server;
  kvs_fpga_ = kvs.fpga;
  memcached_ = dynamic_cast<MemcachedServer*>(kvs.host_apps.front().get());
  lake_ = dynamic_cast<LakeCache*>(kvs.offload_app.get());
  netcache_ = dynamic_cast<KvSwitchCache*>(kvs.switch_program_app.get());
  kvs_switch_target_ = kvs.switch_target.get();

  ScenarioMember& dns = testbed_->member("dns");
  dns_server_ = dns.server;
  dns_nic_ = dns.nic;
  nsd_ = dynamic_cast<NsdServer*>(dns.host_apps.front().get());
  dns_program_ = dynamic_cast<DnsSwitchProgram*>(dns.switch_program_app.get());
  dns_target_ = dns.switch_target.get();

  if (options_.enable_paxos) {
    ScenarioMember& paxos = testbed_->member("paxos");
    paxos_host_ = paxos.server;
    paxos_fpga_ = paxos.fpga;
    paxos_port_ = paxos.port;
    software_leader_ = dynamic_cast<SoftwareLeader*>(paxos.host_apps.front().get());
    fpga_leader_ = dynamic_cast<P4xosFpgaApp*>(paxos.offload_app.get());
    auto* learner = dynamic_cast<SoftwareLearner*>(
        testbed_->member("learner").host_apps.front().get());
    learner->StartGapTimer();
  }
}

void MixedRackScenario::BuildMigrators() {
  // Starts parked on the host placement (the migrator applies the policy).
  kvs_migrator_ = std::make_unique<ClassifierMigrator>(
      sim_, *kvs_fpga_, ClassifierMigrator::Options::FromPolicy(ParkPolicy::kGatedPark),
      memcached_, lake_);
  dns_migrator_ = std::make_unique<ClassifierMigrator>(
      sim_, *dns_target_, ClassifierMigrator::Options::FromPolicy(ParkPolicy::kKeepWarm),
      nsd_, dns_program_);
  if (kvs_switch_target_ != nullptr) {
    kvs_switch_migrator_ = std::make_unique<ClassifierMigrator>(
        sim_, *kvs_switch_target_,
        ClassifierMigrator::Options::FromPolicy(ParkPolicy::kKeepWarm), memcached_,
        netcache_);
  }
  if (options_.enable_paxos) {
    paxos_migrator_ = std::make_unique<PaxosLeaderMigrator>(
        sim_, tor(), kRackPaxosLeaderService, *software_leader_, paxos_port_,
        *paxos_fpga_, *fpga_leader_, paxos_port_);

    options_.paxos_client.node = kRackPaxosClientNode;
    options_.paxos_client.leader_service = kRackPaxosLeaderService;
    Link::Config client_link = TestbedBuilder::TenGigLink();
    Simulation* client_sim = &sim_;
    if (sharded_ != nullptr) {
      client_sim = &sharded_->shard(plan_.paxos_client);
      client_link.propagation_delay = plan_.client_propagation;
    }
    paxos_client_ = std::make_unique<PaxosClient>(*client_sim, options_.paxos_client);
    if (sharded_ != nullptr) {
      // Before ConnectToSwitch, so the new link sees the client's shard.
      testbed_->builder().topology().AssignShard(paxos_client_.get(),
                                                 plan_.paxos_client);
    }
    Link* link = testbed_->builder().topology().ConnectToSwitch(
        testbed_->tor(), paxos_client_.get(), kRackPaxosClientNode, client_link);
    paxos_client_->SetUplink(link);
  }
}

void MixedRackScenario::RegisterApps() {
  RackOrchestratorConfig config = options_.orchestrator;
  config.power_budget_watts = options_.power_budget_watts;
  orchestrator_ = std::make_unique<RackOrchestrator>(sim_, config);

  // §8-calibrated placement models. Both sides include the host (it stays
  // powered either way) so the delta is the true placement cost.
  const double kHostIdleWatts = 35.0;

  RackAppSpec kvs;
  kvs.name = "kvs";
  kvs.warm_migration = options_.warm.kvs;
  kvs.checkpoint_period = options_.kvs_checkpoint_period;
  auto kvs_curve = MakeServerRatePower(I7MemcachedCurve(), Microseconds(4), 4);
  kvs.software_watts = [kvs_curve](double r) { return kvs_curve(r) + 4.0; };
  kvs.measured_rate_pps = [this] { return kvs_fpga_->AppIngressRatePerSecond(); };
  kvs.options.push_back(RackPlacementOption{
      kvs_fpga_, kvs_migrator_.get(),
      MakeFpgaRatePower(kHostIdleWatts, 24.0, 1.0, 13e6), ParkPolicy::kGatedPark});
  if (kvs_switch_target_ != nullptr) {
    // NetCache placement: host idles while the ToR answers; the program's
    // marginal pipeline watts ride on top (same model as the DNS program).
    auto kvs_marginal = MakeSwitchMarginalPower(
        netcache_->PowerOverheadAtFullLoad(), tor().asic_config().max_power_watts,
        tor().LineRatePps());
    RatePowerFn kvs_switch_watts = [kvs_curve, kvs_marginal](double r) {
      return kvs_curve(0) + 4.0 + kvs_marginal(r);
    };
    kvs.measured_rate_pps = [this] {
      return kvs_fpga_->AppIngressRatePerSecond() +
             kvs_switch_target_->AppIngressRatePerSecond();
    };
    kvs.options.push_back(RackPlacementOption{kvs_switch_target_,
                                              kvs_switch_migrator_.get(),
                                              std::move(kvs_switch_watts),
                                              ParkPolicy::kKeepWarm});
  }
  kvs_app_ = orchestrator_->AddApp(std::move(kvs));

  RackAppSpec dns;
  dns.name = "dns";
  dns.warm_migration = options_.warm.dns;
  auto dns_curve = MakeServerRatePower(I7NsdCurve(), Nanoseconds(4180), 4);
  dns.software_watts = [dns_curve](double r) { return dns_curve(r) + 4.0; };
  auto dns_marginal = MakeSwitchMarginalPower(
      dns_program_->PowerOverheadAtFullLoad(), tor().asic_config().max_power_watts,
      tor().LineRatePps());
  // Host idles (rate 0) while the ToR answers; marginal program watts on top.
  RatePowerFn dns_network = [dns_curve, dns_marginal](double r) {
    return dns_curve(0) + 4.0 + dns_marginal(r);
  };
  dns.measured_rate_pps = [this] { return dns_target_->AppIngressRatePerSecond(); };
  dns.options.push_back(RackPlacementOption{dns_target_, dns_migrator_.get(),
                                            std::move(dns_network), ParkPolicy::kKeepWarm});
  dns_app_ = orchestrator_->AddApp(std::move(dns));

  if (options_.enable_paxos) {
    RackAppSpec paxos;
    paxos.name = "paxos";
    paxos.warm_migration = options_.warm.paxos;
    paxos.checkpoint_period = options_.paxos_checkpoint_period;
    paxos.restore_checkpoint_to_home = options_.paxos_restore_to_home;
    paxos.software_watts = MakeServerRatePower(I7LibpaxosCurve(), Nanoseconds(5600), 1);
    paxos.measured_rate_pps = [this] { return paxos_fpga_->AppIngressRatePerSecond(); };
    paxos.options.push_back(RackPlacementOption{
        paxos_fpga_, paxos_migrator_.get(),
        MakeFpgaRatePower(kHostIdleWatts, 12.6, 1.2, 10e6), ParkPolicy::kKeepWarm});
    paxos_app_ = orchestrator_->AddApp(std::move(paxos));
  }

  // PSU brownouts step the shared budget through the orchestrator's
  // eviction pass. Read at fire time, so arming before this wiring is fine.
  testbed_->faults().SetPowerCapHandler(
      [this](double watts) { orchestrator_->ApplyPowerCap(watts); });
}

LoadClient& MixedRackScenario::AddKvsClient(LoadClientConfig config,
                                            std::unique_ptr<ArrivalProcess> arrival,
                                            RequestFactory factory) {
  config.node = kRackKvsClientNode;
  return testbed_->AddTorClient(std::move(config), std::move(arrival),
                                std::move(factory), ClientShard(plan_.kvs_client));
}

LoadClient& MixedRackScenario::AddDnsClient(LoadClientConfig config,
                                            std::unique_ptr<ArrivalProcess> arrival,
                                            RequestFactory factory) {
  config.node = kRackDnsClientNode;
  return testbed_->AddTorClient(std::move(config), std::move(arrival),
                                std::move(factory), ClientShard(plan_.dns_client));
}

void MixedRackScenario::PrefillKvs(uint64_t count, uint32_t value_bytes) {
  for (uint64_t k = 0; k < count; ++k) {
    memcached_->store().Set(k, value_bytes);
  }
  lake_->WarmFill(0, count, value_bytes);
}

}  // namespace incod
