#include "src/scenarios/multi_rack.h"

#include <string>
#include <utility>

#include "src/kvs/lake.h"
#include "src/kvs/memcached_server.h"
#include "src/power/cpu_power.h"

namespace incod {

RowSpec MakeMultiRackRowSpec(const MultiRackOptions& options) {
  RowSpec row;
  row.name = "multi-rack";
  row.zone_size = options.zone_size;
  row.inter_rack_propagation = options.inter_rack_propagation;
  row.uplink_gigabits_per_second = options.uplink_gigabits_per_second;

  for (int r = 0; r < options.num_racks; ++r) {
    RowRackSpec rack;
    ScenarioSpec& spec = rack.scenario;
    spec.name = "rack-" + std::to_string(r);
    spec.meter_period = options.meter_period;
    spec.host.present = false;
    spec.target.kind = ScenarioTargetKind::kNone;
    spec.tor.present = true;
    spec.tor.asic = false;  // Plain L2 ToR; the spine handles inter-rack.
    spec.tor.name = "tor-" + std::to_string(r);

    {
      ScenarioMemberSpec kvs;
      kvs.name = "kvs";
      kvs.link_name = "kvs-10ge";
      kvs.host.config.name = spec.name + "-kvs-host";
      kvs.host.config.node = MultiRackScenario::KvsHostNode(r);
      kvs.host.config.num_cores = 4;
      kvs.host.config.power_curve = I7MemcachedCurve();
      kvs.host.apps = {"kvs"};
      kvs.target.kind = ScenarioTargetKind::kFpgaNic;
      kvs.target.name = spec.name + "-lake";
      kvs.target.device_node = MultiRackScenario::KvsDeviceNode(r);
      kvs.target.app = "kvs";
      kvs.switch_routes = {MultiRackScenario::KvsHostNode(r),
                           MultiRackScenario::KvsDeviceNode(r)};
      spec.members.push_back(std::move(kvs));
    }
    {
      ScenarioMemberSpec dns;
      dns.name = "dns";
      dns.link_name = "dns-10ge";
      dns.host.config.name = spec.name + "-dns-host";
      dns.host.config.node = MultiRackScenario::DnsHostNode(r);
      dns.host.config.num_cores = 4;
      dns.host.config.power_curve = I7NsdCurve();
      dns.host.apps = {"dns"};
      dns.target.kind = ScenarioTargetKind::kConventionalNic;
      dns.switch_routes = {MultiRackScenario::DnsHostNode(r)};
      dns.env.service = MultiRackScenario::DnsHostNode(r);
      spec.members.push_back(std::move(dns));
    }

    {
      // Uniform gets split between the local rack's server and the next
      // rack's. The cross-rack decision consumes one extra draw per request
      // in *every* mode, so sharded and single-queue runs stay
      // stream-identical.
      RowClientSpec kvs_client;
      kvs_client.client.node = MultiRackScenario::KvsClientNode(r);
      kvs_client.rate_per_second = options.kvs_rate_per_second;
      kvs_client.workload.kind = ScenarioWorkloadSpec::Kind::kKvUniformGets;
      kvs_client.workload.keyspace = options.keyspace;
      kvs_client.workload.cross_service =
          MultiRackScenario::KvsHostNode((r + 1) % options.num_racks);
      kvs_client.workload.cross_fraction = options.cross_rack_fraction;
      kvs_client.service = MultiRackScenario::KvsHostNode(r);
      rack.clients.push_back(std::move(kvs_client));
    }
    {
      RowClientSpec dns_client;
      dns_client.client.node = MultiRackScenario::DnsClientNode(r);
      dns_client.rate_per_second = options.dns_rate_per_second;
      dns_client.workload.kind = ScenarioWorkloadSpec::Kind::kDnsQueries;
      dns_client.service = MultiRackScenario::DnsHostNode(r);
      rack.clients.push_back(std::move(dns_client));
    }

    row.racks.push_back(std::move(rack));
  }
  return row;
}

MultiRackScenario::MultiRackScenario(ShardedSimulation& sharded,
                                     MultiRackOptions options)
    : options_(options), row_(sharded, MakeMultiRackRowSpec(options)) {
  for (int r = 0; r < num_racks(); ++r) {
    PrefillRack(r);
  }
}

void MultiRackScenario::PrefillRack(int r) {
  auto* memcached = rack(r).member_host_app_as<MemcachedServer>(0);
  auto* lake = rack(r).member_offload_app_as<LakeCache>(0);
  for (uint64_t k = 0; k < options_.prefill; ++k) {
    memcached->store().Set(k, options_.value_bytes);
  }
  lake->WarmFill(0, options_.prefill, options_.value_bytes);
}

void MultiRackScenario::Start() {
  for (int r = 0; r < num_racks(); ++r) {
    kvs_client(r).Start();
  }
  for (int r = 0; r < num_racks(); ++r) {
    dns_client(r).Start();
  }
}

}  // namespace incod
