#include "src/scenarios/multi_rack.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "src/kvs/kv_protocol.h"
#include "src/kvs/lake.h"
#include "src/kvs/memcached_server.h"
#include "src/power/cpu_power.h"
#include "src/workload/arrival.h"

namespace incod {

namespace {

// Uniform gets split between the local rack's server and the next rack's.
// The cross-rack decision consumes one extra draw per request in *every*
// mode, so sharded and single-queue runs stay stream-identical.
RequestFactory MakeCrossRackKvFactory(NodeId local_service, NodeId remote_service,
                                      uint64_t keyspace, double cross_fraction) {
  const int64_t max_key = std::max<int64_t>(0, static_cast<int64_t>(keyspace) - 1);
  return [local_service, remote_service, max_key,
          cross_fraction](NodeId src, uint64_t id, SimTime now, Rng& rng) {
    const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, max_key));
    const bool remote = rng.UniformDouble(0.0, 1.0) < cross_fraction;
    const NodeId service = remote ? remote_service : local_service;
    return MakeKvRequestPacket(src, service, KvRequest{KvOp::kGet, key, 0}, id, now);
  };
}

}  // namespace

MultiRackScenario::MultiRackScenario(ShardedSimulation& sharded,
                                     MultiRackOptions options)
    : sharded_(sharded),
      num_racks_(options.num_racks),
      options_(std::move(options)),
      spine_topology_(sharded.shard(num_racks_)) {
  if (num_racks_ < 1) {
    throw std::invalid_argument("MultiRackScenario: need at least one rack");
  }
  if (sharded_.num_shards() != num_racks_ + 1) {
    throw std::invalid_argument(
        "MultiRackScenario: need num_racks + 1 shards (racks + spine)");
  }
  if (options_.inter_rack_propagation <= 0) {
    throw std::invalid_argument("MultiRackScenario: inter-rack propagation must be > 0");
  }
  zone_.FillSynthetic(options_.zone_size);

  spine_ = std::make_unique<L2Switch>(sharded_.shard(num_racks_), "spine");
  spine_topology_.SetSharded(&sharded_, num_racks_);
  spine_topology_.AssignShard(spine_.get(), num_racks_);

  for (int r = 0; r < num_racks_; ++r) {
    BuildRack(r);
  }
  for (int r = 0; r < num_racks_; ++r) {
    ConnectRackToSpine(r);
    PrefillRack(r);
  }
}

void MultiRackScenario::BuildRack(int r) {
  ScenarioSpec spec;
  spec.name = "rack-" + std::to_string(r);
  spec.shard = r;
  spec.meter_period = options_.meter_period;
  spec.host.present = false;
  spec.target.kind = ScenarioTargetKind::kNone;
  spec.env.zone = &zone_;
  spec.tor.present = true;
  spec.tor.asic = false;  // Plain L2 ToR; the spine handles inter-rack.
  spec.tor.name = "tor-" + std::to_string(r);

  {
    ScenarioMemberSpec kvs;
    kvs.name = "kvs";
    kvs.link_name = "kvs-10ge";
    kvs.host.config.name = spec.name + "-kvs-host";
    kvs.host.config.node = KvsHostNode(r);
    kvs.host.config.num_cores = 4;
    kvs.host.config.power_curve = I7MemcachedCurve();
    kvs.host.apps = {"kvs"};
    kvs.target.kind = ScenarioTargetKind::kFpgaNic;
    kvs.target.name = spec.name + "-lake";
    kvs.target.device_node = KvsDeviceNode(r);
    kvs.target.app = "kvs";
    kvs.switch_routes = {KvsHostNode(r), KvsDeviceNode(r)};
    spec.members.push_back(std::move(kvs));
  }
  {
    ScenarioMemberSpec dns;
    dns.name = "dns";
    dns.link_name = "dns-10ge";
    dns.host.config.name = spec.name + "-dns-host";
    dns.host.config.node = DnsHostNode(r);
    dns.host.config.num_cores = 4;
    dns.host.config.power_curve = I7NsdCurve();
    dns.host.apps = {"dns"};
    dns.target.kind = ScenarioTargetKind::kConventionalNic;
    dns.switch_routes = {DnsHostNode(r)};
    dns.env.service = DnsHostNode(r);
    spec.members.push_back(std::move(dns));
  }

  racks_.push_back(std::make_unique<ScenarioTestbed>(sharded_, std::move(spec)));
  ScenarioTestbed& rack = *racks_.back();

  LoadClientConfig kvs_client;
  kvs_client.node = KvsClientNode(r);
  const NodeId remote = KvsHostNode((r + 1) % num_racks_);
  kvs_clients_.push_back(&rack.AddTorClient(
      kvs_client, std::make_unique<PoissonArrival>(options_.kvs_rate_per_second),
      MakeCrossRackKvFactory(KvsHostNode(r), remote, options_.keyspace,
                             options_.cross_rack_fraction)));

  LoadClientConfig dns_client;
  dns_client.node = DnsClientNode(r);
  ScenarioWorkloadSpec dns_workload;
  dns_workload.kind = ScenarioWorkloadSpec::Kind::kDnsQueries;
  dns_clients_.push_back(&rack.AddTorClient(
      dns_client, std::make_unique<PoissonArrival>(options_.dns_rate_per_second),
      MakeScenarioRequestFactory(dns_workload, DnsHostNode(r), &zone_)));
}

void MultiRackScenario::ConnectRackToSpine(int r) {
  L2Switch* tor = racks_[static_cast<size_t>(r)]->tor();
  spine_topology_.AssignShard(tor, r);

  Link::Config uplink;
  uplink.gigabits_per_second = options_.uplink_gigabits_per_second;
  uplink.propagation_delay = options_.inter_rack_propagation;
  Link* link = spine_topology_.Connect(tor, spine_.get(), uplink,
                                       "uplink-" + std::to_string(r));

  const int tor_port = tor->AttachLink(link);
  tor->SetDefaultRoute(tor_port);  // Non-local traffic heads to the spine.

  const int spine_port = spine_->AttachLink(link);
  for (NodeId node : {KvsHostNode(r), DnsHostNode(r), KvsDeviceNode(r),
                      KvsClientNode(r), DnsClientNode(r)}) {
    spine_->AddRoute(node, spine_port);
  }
}

void MultiRackScenario::PrefillRack(int r) {
  ScenarioTestbed& rack = *racks_[static_cast<size_t>(r)];
  auto* memcached = rack.member_host_app_as<MemcachedServer>(0);
  auto* lake = rack.member_offload_app_as<LakeCache>(0);
  for (uint64_t k = 0; k < options_.prefill; ++k) {
    memcached->store().Set(k, options_.value_bytes);
  }
  lake->WarmFill(0, options_.prefill, options_.value_bytes);
}

void MultiRackScenario::Start() {
  for (LoadClient* client : kvs_clients_) {
    client->Start();
  }
  for (LoadClient* client : dns_clients_) {
    client->Start();
  }
}

uint64_t MultiRackScenario::TotalSent() const {
  uint64_t total = 0;
  for (const LoadClient* client : kvs_clients_) {
    total += client->sent();
  }
  for (const LoadClient* client : dns_clients_) {
    total += client->sent();
  }
  return total;
}

uint64_t MultiRackScenario::TotalReceived() const {
  uint64_t total = 0;
  for (const LoadClient* client : kvs_clients_) {
    total += client->received();
  }
  for (const LoadClient* client : dns_clients_) {
    total += client->received();
  }
  return total;
}

}  // namespace incod
