#include "src/scenarios/dns_testbed.h"

#include <stdexcept>
#include <utility>

#include "src/power/cpu_power.h"
#include "src/scenarios/kvs_testbed.h"

namespace incod {

namespace {
Link::Config TenGigLink() {
  Link::Config config;
  config.gigabits_per_second = 10.0;
  config.propagation_delay = Nanoseconds(500);
  return config;
}

Link::Config PcieLink() {
  Link::Config config;
  config.gigabits_per_second = 32.0;
  config.propagation_delay = Nanoseconds(900);
  return config;
}
}  // namespace

DnsTestbed::DnsTestbed(Simulation& sim, DnsTestbedOptions options)
    : sim_(sim), options_(std::move(options)), topology_(sim) {
  zone_.FillSynthetic(options_.zone_size);
  meter_ = std::make_unique<WallPowerMeter>(sim_, options_.meter_period);

  const bool has_host = options_.mode != DnsMode::kEmuStandalone;
  if (has_host) {
    ServerConfig server_config;
    server_config.name = "i7-server";
    server_config.node = kTestbedServerNode;
    server_config.num_cores = 4;
    server_config.power_curve = I7NsdCurve();
    server_ = std::make_unique<Server>(sim_, server_config);
    nsd_ = std::make_unique<NsdServer>(&zone_, options_.nsd);
    server_->BindApp(nsd_.get());
    meter_->Attach(server_.get());
  }

  switch (options_.mode) {
    case DnsMode::kSoftwareOnly: {
      nic_ = std::make_unique<ConventionalNic>(
          sim_, MellanoxConnectX3Config(kTestbedServerNode));
      Link* host_link = topology_.Connect(nic_.get(), server_.get(), PcieLink(), "pcie");
      nic_->SetHostLink(host_link);
      server_->SetUplink(host_link);
      ingress_ = nic_.get();
      meter_->Attach(nic_.get());
      break;
    }
    case DnsMode::kEmu:
    case DnsMode::kEmuStandalone: {
      FpgaNicConfig fpga_config;
      fpga_config.name = "netfpga-emu";
      fpga_config.host_node = kTestbedServerNode;
      fpga_config.device_node = kTestbedDeviceNode;
      fpga_config.standalone = options_.mode == DnsMode::kEmuStandalone;
      fpga_ = std::make_unique<FpgaNic>(sim_, fpga_config);
      emu_ = std::make_unique<EmuDns>(&zone_, options_.emu);
      fpga_->InstallApp(emu_.get());
      if (has_host) {
        Link* host_link = topology_.Connect(fpga_.get(), server_.get(), PcieLink(), "pcie");
        fpga_->SetHostLink(host_link);
        server_->SetUplink(host_link);
      }
      fpga_->SetAppActive(options_.emu_initially_active);
      ingress_ = fpga_.get();
      meter_->Attach(fpga_.get());
      break;
    }
  }
  meter_->Start();
}

NodeId DnsTestbed::ServiceNode() const {
  return options_.mode == DnsMode::kEmuStandalone ? kTestbedDeviceNode
                                                  : kTestbedServerNode;
}

LoadClient& DnsTestbed::AddClient(LoadClientConfig config,
                                  std::unique_ptr<ArrivalProcess> arrival,
                                  RequestFactory factory) {
  if (client_ != nullptr) {
    throw std::logic_error("DnsTestbed: client already attached");
  }
  client_ = std::make_unique<LoadClient>(sim_, std::move(config), std::move(arrival),
                                         std::move(factory));
  Link* link = topology_.Connect(client_.get(), ingress_, TenGigLink(), "client-10ge");
  client_->SetUplink(link);
  if (fpga_ != nullptr) {
    fpga_->SetNetworkLink(link);
  }
  if (nic_ != nullptr) {
    nic_->SetNetworkLink(link);
  }
  return *client_;
}

}  // namespace incod
