#include "src/scenarios/dns_testbed.h"

#include <stdexcept>
#include <utility>

#include "src/power/cpu_power.h"
#include "src/scenarios/kvs_testbed.h"

namespace incod {

DnsTestbed::DnsTestbed(Simulation& sim, DnsTestbedOptions options)
    : sim_(sim), options_(std::move(options)), builder_(sim, options_.meter_period) {
  zone_.FillSynthetic(options_.zone_size);

  const bool has_host = options_.mode != DnsMode::kEmuStandalone;
  if (has_host) {
    ServerConfig server_config;
    server_config.name = "i7-server";
    server_config.node = kTestbedServerNode;
    server_config.num_cores = 4;
    server_config.power_curve = I7NsdCurve();
    server_ = builder_.AddServer(server_config);
    nsd_ = std::make_unique<NsdServer>(&zone_, options_.nsd);
    server_->BindApp(nsd_.get());
  }

  switch (options_.mode) {
    case DnsMode::kSoftwareOnly: {
      nic_ = builder_.AddConventionalNic(MellanoxConnectX3Config(kTestbedServerNode));
      builder_.ConnectPcie(nic_, server_);
      break;
    }
    case DnsMode::kEmu:
    case DnsMode::kEmuStandalone: {
      FpgaNicConfig fpga_config;
      fpga_config.name = "netfpga-emu";
      fpga_config.host_node = kTestbedServerNode;
      fpga_config.device_node = kTestbedDeviceNode;
      fpga_config.standalone = options_.mode == DnsMode::kEmuStandalone;
      emu_ = std::make_unique<EmuDns>(&zone_, options_.emu);
      fpga_ = builder_.AddFpgaNic(fpga_config, emu_.get());
      if (has_host) {
        builder_.ConnectPcie(fpga_, server_);
      }
      fpga_->SetAppActive(options_.emu_initially_active);
      break;
    }
  }
  builder_.StartMeter();
}

NodeId DnsTestbed::ServiceNode() const {
  return options_.mode == DnsMode::kEmuStandalone ? kTestbedDeviceNode
                                                  : kTestbedServerNode;
}

LoadClient& DnsTestbed::AddClient(LoadClientConfig config,
                                  std::unique_ptr<ArrivalProcess> arrival,
                                  RequestFactory factory) {
  if (client_ != nullptr) {
    throw std::logic_error("DnsTestbed: client already attached");
  }
  client_ = builder_.AddLoadClient(std::move(config), std::move(arrival),
                                   std::move(factory));
  if (fpga_ != nullptr) {
    builder_.ConnectClient(client_, fpga_);
  } else {
    builder_.ConnectClient(client_, nic_);
  }
  return *client_;
}

}  // namespace incod
