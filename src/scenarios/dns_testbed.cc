#include "src/scenarios/dns_testbed.h"

#include <stdexcept>
#include <utility>

#include "src/power/cpu_power.h"
#include "src/scenarios/kvs_testbed.h"

namespace incod {

ScenarioSpec MakeDnsScenarioSpec(const DnsTestbedOptions& options, const Zone* zone) {
  ScenarioSpec spec;
  spec.name = "dns";
  spec.meter_period = options.meter_period;
  spec.env.zone = zone;
  spec.env.nsd = options.nsd;
  spec.env.emu_dns = options.emu;

  spec.host.present = options.mode != DnsMode::kEmuStandalone;
  spec.host.config.name = "i7-server";
  spec.host.config.node = kTestbedServerNode;
  spec.host.config.num_cores = 4;
  spec.host.config.power_curve = I7NsdCurve();
  if (spec.host.present) {
    spec.host.apps = {"dns"};
  }

  switch (options.mode) {
    case DnsMode::kSoftwareOnly:
      spec.target.kind = ScenarioTargetKind::kConventionalNic;
      spec.target.name = "";  // Mellanox preset name.
      break;
    case DnsMode::kEmu:
    case DnsMode::kEmuStandalone:
      spec.target.kind = ScenarioTargetKind::kFpgaNic;
      spec.target.name = "netfpga-emu";
      spec.target.device_node = kTestbedDeviceNode;
      spec.target.standalone = options.mode == DnsMode::kEmuStandalone;
      spec.target.app = "dns";
      spec.target.initially_active = options.emu_initially_active;
      break;
  }
  return spec;
}

DnsTestbed::DnsTestbed(Simulation& sim, DnsTestbedOptions options)
    : sim_(sim), options_(std::move(options)) {
  zone_.FillSynthetic(options_.zone_size);
  testbed_ = std::make_unique<ScenarioTestbed>(sim, MakeDnsScenarioSpec(options_, &zone_));
  nsd_ = testbed_->host_app_as<NsdServer>();
  emu_ = testbed_->offload_app_as<EmuDns>();
}

LoadClient& DnsTestbed::AddClient(LoadClientConfig config,
                                  std::unique_ptr<ArrivalProcess> arrival,
                                  RequestFactory factory) {
  return testbed_->AddClient(std::move(config), std::move(arrival), std::move(factory));
}

}  // namespace incod
