#include "src/scenarios/trace_rack.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/power/cpu_power.h"
#include "src/sim/random.h"
#include "src/workload/arrival.h"

namespace incod {

namespace {

constexpr NodeId kTraceHostBaseNode = 1;
constexpr NodeId kTraceDeviceBaseNode = 50;
constexpr NodeId kTraceClientBaseNode = 100;

std::vector<TraceRackAppOptions> DefaultApps() {
  std::vector<TraceRackAppOptions> apps(2);
  apps[0].registry_name = "kvs";
  apps[0].workload.kind = ScenarioWorkloadSpec::Kind::kKvUniformGets;
  apps[0].workload.rate_per_second = 150000;
  apps[1].registry_name = "dns";
  apps[1].workload.kind = ScenarioWorkloadSpec::Kind::kDnsQueries;
  apps[1].workload.rate_per_second = 150000;
  return apps;
}

}  // namespace

TraceRackScenario::TraceRackScenario(Simulation& sim, TraceRackOptions options)
    : sim_(sim), options_(std::move(options)) {
  Init();
}

TraceRackScenario::TraceRackScenario(ShardedSimulation& sharded,
                                     const TraceRackShardPlan& plan,
                                     TraceRackOptions options)
    : sim_(sharded.shard(plan.rack)),
      options_(std::move(options)),
      sharded_(&sharded),
      plan_(plan) {
  Init();
}

void TraceRackScenario::Init() {
  if (options_.apps.empty()) {
    options_.apps = DefaultApps();
  }
  zone_.FillSynthetic(options_.zone_size);

  ScenarioSpec spec;
  spec.name = "trace-rack";
  spec.meter_period = options_.meter_period;
  spec.host.present = false;
  spec.target.kind = ScenarioTargetKind::kNone;
  spec.env.zone = &zone_;
  spec.tor.present = true;
  spec.tor.asic = true;
  spec.tor.name = "trace-tor";
  spec.tor.metered = true;

  for (size_t i = 0; i < options_.apps.size(); ++i) {
    const TraceRackAppOptions& app = options_.apps[i];
    if (!AppRegistry::Global().Supports(app.registry_name, PlacementKind::kHost) ||
        !AppRegistry::Global().Supports(app.registry_name, PlacementKind::kFpgaNic)) {
      throw std::invalid_argument("TraceRackScenario: " + app.registry_name +
                                  " needs host + FPGA placements");
    }
    ScenarioMemberSpec member;
    member.name = app.registry_name + "-" + std::to_string(i);
    member.link_name = member.name + "-10ge";
    member.host.config.name = member.name + "-host";
    member.host.config.node = kTraceHostBaseNode + static_cast<NodeId>(i);
    member.host.config.num_cores = 4;
    member.host.config.power_curve = I7SyntheticCurve();
    member.host.apps = {app.registry_name};
    member.target.kind = ScenarioTargetKind::kFpgaNic;
    member.target.name = member.name + "-netfpga";
    member.target.device_node = kTraceDeviceBaseNode + static_cast<NodeId>(i);
    member.target.app = app.registry_name;
    member.target.initially_active = false;  // Migrator parks the placement.
    member.switch_routes = {member.host.config.node, member.target.device_node};
    spec.members.push_back(std::move(member));
  }

  if (sharded_ != nullptr) {
    spec.shard = plan_.rack;
    spec.client_link.propagation_delay = plan_.client_propagation;
    testbed_ = std::make_unique<ScenarioTestbed>(*sharded_, std::move(spec));
  } else {
    testbed_ = std::make_unique<ScenarioTestbed>(sim_, std::move(spec));
  }
  BuildApps();

  GoogleTraceConfig trace = options_.trace;
  trace.num_nodes =
      std::min<uint32_t>(trace.num_nodes, static_cast<uint32_t>(apps_.size()));
  trace.num_nodes = std::max<uint32_t>(trace.num_nodes, 1);
  Rng rng(options_.trace_seed);
  tasks_ = SynthesizeGoogleTrace(trace, rng);
}

void TraceRackScenario::BuildApps() {
  RackOrchestratorConfig config = options_.orchestrator;
  config.power_budget_watts = options_.power_budget_watts;
  orchestrator_ = std::make_unique<RackOrchestrator>(sim_, config);

  apps_.reserve(options_.apps.size());
  const double kHostIdleWatts = 35.0;
  for (size_t i = 0; i < options_.apps.size(); ++i) {
    const TraceRackAppOptions& app_options = options_.apps[i];
    ScenarioMember& member = testbed_->member(i);
    migrators_.push_back(std::make_unique<StateTransferMigrator>(
        sim_, *member.fpga,
        StateTransferMigrator::Options::FromPolicy(ParkPolicy::kGatedPark),
        member.host_apps.front().get(), member.offload_app.get()));

    TraceApp traced;
    traced.name = member.name;
    traced.migrator = migrators_.back().get();

    RackAppSpec rack_app;
    rack_app.name = member.name;
    rack_app.warm_migration = app_options.warm_migration;
    auto curve = MakeServerRatePower(I7SyntheticCurve(), app_options.host_service_time,
                                     testbed_->spec().members[i].host.config.num_cores);
    // The trace's background tasks raise the host side of the decision:
    // offload pays exactly while the node is contended (§9.3).
    const double watts_per_core = options_.background_watts_per_core;
    rack_app.software_watts = [this, i, curve, watts_per_core](double r) {
      return curve(r) + 4.0 + apps_[i].background_cores * watts_per_core;
    };
    FpgaNic* fpga = member.fpga;
    rack_app.measured_rate_pps = [fpga] { return fpga->AppIngressRatePerSecond(); };
    rack_app.options.push_back(
        RackPlacementOption{member.fpga, traced.migrator,
                            MakeFpgaRatePower(kHostIdleWatts, 24.0, 1.0, 13e6),
                            ParkPolicy::kGatedPark});
    traced.rack_index = orchestrator_->AddApp(std::move(rack_app));

    LoadClientConfig client_config = app_options.workload.client;
    client_config.node = kTraceClientBaseNode + static_cast<NodeId>(i);
    RequestFactory factory = MakeScenarioRequestFactory(
        app_options.workload, kTraceHostBaseNode + static_cast<NodeId>(i), &zone_);
    if (factory == nullptr) {
      throw std::invalid_argument("TraceRackScenario: app " + traced.name +
                                  " needs a workload kind");
    }
    const int client_shard =
        sharded_ != nullptr ? plan_.first_client + static_cast<int>(i) : -1;
    traced.client = &testbed_->AddTorClient(
        std::move(client_config),
        std::make_unique<PoissonArrival>(app_options.workload.rate_per_second),
        std::move(factory), client_shard);
    apps_.push_back(std::move(traced));
  }
}

const std::string& TraceRackScenario::app_name(size_t index) const {
  return apps_.at(index).name;
}

App* TraceRackScenario::host_app(size_t index) {
  return testbed_->member(index).host_apps.front().get();
}

App* TraceRackScenario::offload_app(size_t index) {
  return testbed_->member(index).offload_app.get();
}

void TraceRackScenario::ScheduleTrace() {
  const double horizon = static_cast<double>(options_.trace.horizon_seconds);
  if (horizon <= 0 || options_.sim_horizon <= 0) {
    return;
  }
  const double scale = static_cast<double>(options_.sim_horizon) / horizon;
  for (const TraceTask& task : tasks_) {
    if (task.node >= apps_.size()) {
      continue;
    }
    const size_t app = task.node;
    const SimDuration start =
        static_cast<SimDuration>(static_cast<double>(task.start_seconds) * scale);
    const SimDuration end = static_cast<SimDuration>(
        static_cast<double>(task.start_seconds + task.duration_seconds) * scale);
    const double cores = task.cpu_cores;
    sim_.Schedule(start, [this, app, cores] { apps_[app].background_cores += cores; });
    sim_.Schedule(std::max(end, start + 1),
                  [this, app, cores] { apps_[app].background_cores -= cores; });
  }
}

void TraceRackScenario::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  ScheduleTrace();
  for (TraceApp& app : apps_) {
    app.client->Start();
  }
  orchestrator_->Start();
}

}  // namespace incod
