// Multi-rack fabric: N identical KVS+DNS racks behind one spine switch.
//
// The scale-out scenario the sharded engine is built for: each rack is a
// self-contained ScenarioTestbed (plain L2 ToR, a KVS member with an active
// LaKe FPGA NIC, a DNS member on a conventional NIC, and both load clients)
// living in its own shard, and the spine switch gets a shard of its own.
// The only cross-shard links are the rack uplinks, whose propagation delay
// (microseconds of fiber between racks) is exactly the conservative
// lookahead the parallel engine synchronizes on — racks simulate
// independently between uplink-latency-sized rounds.
//
// A configurable fraction of each rack's KVS gets target the *next* rack's
// server (cross-rack traffic through ToR default routes and the spine), so
// the shards genuinely exchange events rather than running N disjoint
// simulations.
//
// Since the row subsystem landed, this scenario is a thin veneer:
// MakeMultiRackRowSpec builds the declarative RowSpec and RowScenario does
// all the wiring. Only the KVS prefill and the legacy client start order
// (all KVS clients, then all DNS clients) live here.
#ifndef INCOD_SRC_SCENARIOS_MULTI_RACK_H_
#define INCOD_SRC_SCENARIOS_MULTI_RACK_H_

#include "src/net/switch.h"
#include "src/row/row_scenario.h"
#include "src/row/row_spec.h"
#include "src/scenarios/scenario_spec.h"
#include "src/sim/sharded.h"

namespace incod {

struct MultiRackOptions {
  int num_racks = 4;
  double kvs_rate_per_second = 500000;
  double dns_rate_per_second = 250000;
  // Fraction of each rack's KVS gets addressed to the next rack's server.
  double cross_rack_fraction = 0.05;
  uint64_t keyspace = 4000;
  uint64_t prefill = 4000;
  uint32_t value_bytes = 64;
  size_t zone_size = 2000;
  // Inter-rack fiber: the rack uplinks' propagation delay, and therefore
  // the engine lookahead. Must be > 0.
  SimDuration inter_rack_propagation = Microseconds(5);
  double uplink_gigabits_per_second = 40.0;
  SimDuration meter_period = Milliseconds(1);
};

class MultiRackScenario {
 public:
  // Rack node addresses: rack r owns [1000r, 1000r + 999].
  static constexpr NodeId KvsHostNode(int rack) { return 1000 * rack + 1; }
  static constexpr NodeId DnsHostNode(int rack) { return 1000 * rack + 2; }
  static constexpr NodeId KvsDeviceNode(int rack) { return 1000 * rack + 50; }
  static constexpr NodeId KvsClientNode(int rack) { return 1000 * rack + 100; }
  static constexpr NodeId DnsClientNode(int rack) { return 1000 * rack + 101; }

  // Requires sharded.num_shards() == options.num_racks + 1 (one shard per
  // rack plus the spine shard).
  explicit MultiRackScenario(ShardedSimulation& sharded, MultiRackOptions options = {});

  int num_racks() const { return row_.num_racks(); }
  ScenarioTestbed& rack(int r) { return row_.rack(r); }
  L2Switch& spine() { return row_.spine(); }
  LoadClient& kvs_client(int r) { return row_.client(r, 0); }
  LoadClient& dns_client(int r) { return row_.client(r, 1); }
  // The RowScenario doing the actual wiring.
  RowScenario& row() { return row_; }

  // Starts every rack's clients (all KVS clients first, then all DNS
  // clients — the order the hand-wired scenario always used).
  void Start();

  uint64_t TotalSent() const { return row_.TotalSent(); }
  uint64_t TotalReceived() const { return row_.TotalReceived(); }

 private:
  void PrefillRack(int r);

  MultiRackOptions options_;
  RowScenario row_;
};

// The declarative form of the scenario above: N rack ScenarioSpecs (KVS
// member with an active LaKe FPGA, DNS member on a conventional NIC) plus
// per-rack KVS/DNS clients, with each KVS client's workload sending
// cross_rack_fraction of its gets to the next rack's server. Exposed so
// tests can diff the veneer against hand-wired construction and so row
// scenarios can start from the same racks.
RowSpec MakeMultiRackRowSpec(const MultiRackOptions& options);

}  // namespace incod

#endif  // INCOD_SRC_SCENARIOS_MULTI_RACK_H_
