// Declarative scenario description, consumed by TestbedBuilder.
//
// A ScenarioSpec is a struct literal naming *what* a testbed contains —
// host node, offload target, applications by registry name, workload,
// controller policy — and ScenarioTestbed turns it into a wired topology:
//
//   ScenarioSpec spec;
//   spec.host.apps = {"kvs"};
//   spec.target.kind = ScenarioTargetKind::kFpgaNic;
//   spec.target.app = "kvs";                  // LaKe, via the AppRegistry
//   ScenarioTestbed testbed(sim, spec);
//
// covers the paper's §4.1 chain family (client -- device -- host) that the
// KVS and DNS testbeds, the Fig 3/4/6 benches, and the §9.1 controller
// experiments all share. Apps are created through AppRegistry, so a new
// application reaches every spec-built scenario by registering one factory.
#ifndef INCOD_SRC_SCENARIOS_SCENARIO_SPEC_H_
#define INCOD_SRC_SCENARIOS_SCENARIO_SPEC_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/app/app_registry.h"
#include "src/device/switch_offload.h"
#include "src/fault/fault_injector.h"
#include "src/ondemand/controller.h"
#include "src/ondemand/migrator.h"
#include "src/scenarios/testbed_builder.h"

namespace incod {

enum class ScenarioTargetKind { kNone, kConventionalNic, kFpgaNic, kSmartNic };

struct ScenarioHostSpec {
  bool present = true;
  ServerConfig config;  // Name, node, cores, power curve, stack.
  // Host-placement apps, by registry name, bound in order.
  std::vector<std::string> apps;
  bool metered = true;  // Joins the wall-meter set (§4.1 SHW-3A scope).
};

struct ScenarioTargetSpec {
  ScenarioTargetKind kind = ScenarioTargetKind::kConventionalNic;
  std::string name = "nic";
  NodeId device_node = 0;
  bool standalone = false;  // FPGA NIC without a host (own PSU).
  bool intel_nic = false;   // Conventional NIC: Intel X520 vs Mellanox.
  // Offload-placement app by registry name ("" = bare NIC). Built for the
  // kFpgaNic placement on an FPGA NIC, kSmartNic on a SmartNIC.
  std::string app;
  bool initially_active = true;
  // SmartNIC board, by StandardSmartNicPresets() name (§10 architectures).
  std::string smartnic_preset = "accelnet-fpga";
  Link::Config pcie = TestbedBuilder::PcieLink();
  bool metered = true;
};

// Declarative ToR for switch-centric scenarios: a plain L2 switch (Paxos
// group) or a programmable ASIC (mixed rack) that members hang off.
struct ScenarioTorSpec {
  bool present = false;
  bool asic = false;  // Tofino-class SwitchAsic vs plain L2Switch.
  std::string name = "tor";
  SwitchAsicConfig asic_config;  // Used when asic (name overridden below).
  bool metered = false;          // ASIC only; an L2 switch draws no modeled power.
};

// One deployment hanging off the scenario ToR: an optional host with
// registry apps, an optional ingress device (conventional NIC, FPGA NIC, or
// SmartNIC, possibly carrying an offload placement of the same app), and
// optionally a switch-hosted placement loaded into the ASIC pipeline. Dual deployments
// (Fig 7's software + P4xos leader on one host/NIC pair) are expressed by
// filling both host.apps and target.app with target.initially_active=false.
struct ScenarioMemberSpec {
  std::string name;      // Diagnostics / member lookup.
  ScenarioHostSpec host;
  ScenarioTargetSpec target;
  // Aux host: never bottlenecks, never metered, auto-wired to the ToR
  // (acceptors, learners). Must not carry a target.
  bool aux = false;
  int aux_cores = 4;
  // Nodes routed to this member's switch port (host node, device node,
  // service addresses). Aux members route their host node automatically.
  std::vector<NodeId> switch_routes;
  Link::Config switch_link = TestbedBuilder::TenGigLink();
  std::string link_name = "10ge";
  // Registry app loaded into the ASIC pipeline (kSwitchAsic placement),
  // wrapped in a SwitchOffloadTarget for migrators/orchestrators.
  std::string switch_app;
  // Per-member factory resources/knobs (role ids, per-app configs). A null
  // zone/paxos_group inherits the spec-level resource.
  AppFactoryEnv env;
};

// Declarative workload: an open-loop client against the scenario's service.
struct ScenarioWorkloadSpec {
  enum class Kind { kNone, kKvUniformGets, kDnsQueries };
  Kind kind = Kind::kNone;
  double rate_per_second = 100000;
  uint64_t keyspace = 1000;          // kKvUniformGets.
  double dns_miss_fraction = 0.0;    // kDnsQueries.
  // kKvUniformGets cross-service traffic (multi-rack rows): when
  // cross_service != 0, each request draws its key and then an independent
  // cross decision — with probability cross_fraction the get targets
  // cross_service instead of the local service. The extra draw happens on
  // *every* request of the stream (even at fraction 0), so sharded and
  // single-queue runs of the same seed stay stream-identical.
  NodeId cross_service = 0;
  double cross_fraction = 0.0;
  LoadClientConfig client;
};

// Declarative on-demand policy: a §9.1 network controller driving a
// classifier migrator with the chosen §9.2 park policy.
struct ScenarioControllerSpec {
  bool present = false;
  ParkPolicy park_policy = ParkPolicy::kGatedPark;
  bool transfer_state = false;  // Generic state transfer on each shift.
  NetworkControllerConfig network;
};

// Rack-wide congestion-control knobs, applied to the spec at Build(). When
// `enabled`, every built link (client uplinks, member ToR links, PCIe hops)
// gets the PFC/ECN template below, every built server pauses its uplink at
// the host rx watermarks and CNPs ECN-marked ingress, and — unless dcqcn is
// cleared — every attached LoadClient runs the DCQCN rate machine. Overload
// then produces pause propagation, head-of-line blocking and sender
// slowdown instead of silent queue-overflow loss.
struct ScenarioFlowSpec {
  bool enabled = false;
  bool dcqcn = true;     // Give clients the rate machine (plus host CNPs).
  LinkFlowConfig link;   // Template; pfc/ecn are forced on when enabled.
  HostFlowConfig host;   // Template; pfc (and cnp, per dcqcn) forced on.
  DcqcnConfig dcqcn_config;  // Template; `enabled` forced on per dcqcn.
};

// Opt-in mechanistic host-NIC datapath, applied at Build(). When `enabled`,
// every conventional-NIC target/member gets the HostNicSpec datapath (RSS
// rx rings, interrupt moderation toward kernel hosts / poll draining toward
// DPDK hosts, tx doorbell batching — host_interrupts is derived from each
// host's NetStackType), and every built server switches to the `dispatch`
// worker policy with the per-interrupt CPU cost below. FPGA/SmartNIC
// ingress keeps its own pipeline model; only their hosts pick up the
// dispatch change. Off by default, so existing scenarios keep their event
// streams bit-identical (the PR 9 flow-spec pattern).
struct ScenarioHostNicSpec {
  bool enabled = false;
  HostNicSpec nic;  // Template; `enabled`/`host_interrupts` are overridden.
  // kRssHash is the mechanistic default; kIdealLb keeps the idealized
  // least-loaded dispatch for differential runs against it.
  HostDispatch dispatch = HostDispatch::kRssHash;
  SimDuration interrupt_cpu_cost = Microseconds(1);
};

struct ScenarioSpec {
  std::string name = "scenario";
  SimDuration meter_period = Milliseconds(1);
  // Home shard when built into a ShardedSimulation: the ToR, members, meter
  // and any migrators live here. Clients may be placed in other shards via
  // AddTorClient's shard argument. Ignored for plain Simulation builds.
  int shard = 0;
  ScenarioHostSpec host;
  ScenarioTargetSpec target;
  Link::Config client_link = TestbedBuilder::TenGigLink();
  ScenarioFlowSpec flow;
  ScenarioHostNicSpec hostnic;
  ScenarioWorkloadSpec workload;
  ScenarioControllerSpec controller;
  // Shared factory resources/knobs (zone, paxos group, per-family configs).
  AppFactoryEnv env;
  // Switch-centric topology: when tor.present, `members` are built hanging
  // off the ToR (the single-chain host/target above may stay empty).
  ScenarioTorSpec tor;
  std::vector<ScenarioMemberSpec> members;
  // Owned Paxos group, so switch-centric specs are self-contained literals:
  // member envs with a null paxos_group resolve against this.
  std::optional<PaxosGroupConfig> paxos_group;
  // Declarative fault plan, armed at the end of Build(). Names resolve
  // against what the testbed registered: every built server / ToR by its
  // SinkName (whole-node death), every offload-capable device by both its
  // TargetName ("device/app") and bare device name (engine death — the
  // device keeps forwarding), every link by the spec's link name (plus
  // "<link>-pcie" for the member PCIe hops).
  FaultPlanSpec faults;
};

// A built member: the components and registry-created apps of one
// ScenarioMemberSpec (null/empty where the spec lacked the part).
struct ScenarioMember {
  std::string name;
  Server* server = nullptr;
  FpgaNic* fpga = nullptr;
  ConventionalNic* nic = nullptr;
  SmartNic* smartnic = nullptr;
  int port = -1;  // ToR port of the member's ingress device (-1: aux-wired).
  std::vector<std::unique_ptr<App>> host_apps;
  std::unique_ptr<App> offload_app;
  // Switch-hosted placement (when spec.switch_app was set).
  std::unique_ptr<App> switch_program_app;
  std::unique_ptr<SwitchOffloadTarget> switch_target;
};

// Request factory for a declarative workload kind against `service` — wire
// messages only, no app types involved. Null for Kind::kNone.
RequestFactory MakeScenarioRequestFactory(const ScenarioWorkloadSpec& workload,
                                          NodeId service, const Zone* zone);

// A testbed built from a spec. Owns the registry-created apps, the
// migrator/controller when requested, and everything TestbedBuilder owns.
class ScenarioTestbed {
 public:
  ScenarioTestbed(Simulation& sim, ScenarioSpec spec);

  // Sharded build: everything lands in spec.shard of the ShardedSimulation
  // (clients may override per AddTorClient). sim() then returns that shard.
  ScenarioTestbed(ShardedSimulation& sharded, ScenarioSpec spec);

  Simulation& sim() { return sim_; }
  const ScenarioSpec& spec() const { return spec_; }
  TestbedBuilder& builder() { return builder_; }
  WallPowerMeter& meter() { return builder_.meter(); }

  // Null when the spec lacks the component.
  Server* server() { return server_; }
  FpgaNic* fpga() { return fpga_; }
  ConventionalNic* nic() { return nic_; }
  SmartNic* smartnic() { return smartnic_; }
  LoadClient* client() { return client_; }
  ClassifierMigrator* migrator() { return migrator_.get(); }
  NetworkController* controller() { return controller_.get(); }
  // Always present: the spec's fault plan was armed against it at Build();
  // callers may register more entities (or a power-cap handler) afterwards.
  FaultInjector& faults() { return *faults_; }

  // --- Switch-centric topology (spec.tor / spec.members) ---
  L2Switch* tor() { return tor_; }
  SwitchAsic* tor_asic() { return tor_asic_; }  // Null for a plain L2 ToR.
  size_t member_count() const { return members_.size(); }
  ScenarioMember& member(size_t index) { return members_.at(index); }
  // First member with the given spec name; throws when absent.
  ScenarioMember& member(const std::string& name);
  template <typename T>
  T* member_host_app_as(size_t index, size_t app_index = 0) {
    auto& apps = members_.at(index).host_apps;
    return app_index < apps.size() ? dynamic_cast<T*>(apps[app_index].get()) : nullptr;
  }
  template <typename T>
  T* member_offload_app_as(size_t index) {
    return dynamic_cast<T*>(members_.at(index).offload_app.get());
  }

  // Registry-built applications. Index follows spec order.
  App* host_app(size_t index = 0);
  App* offload_app() { return offload_app_.get(); }
  template <typename T>
  T* host_app_as(size_t index = 0) {
    return dynamic_cast<T*>(host_app(index));
  }
  template <typename T>
  T* offload_app_as() {
    return dynamic_cast<T*>(offload_app_.get());
  }

  // Address clients should target (the host node, or the device when
  // standalone).
  NodeId ServiceNode() const;

  // Attaches the (single) open-loop client to the testbed ingress. The
  // spec's workload (if any) was already attached at construction.
  LoadClient& AddClient(LoadClientConfig config, std::unique_ptr<ArrivalProcess> arrival,
                        RequestFactory factory);
  // Switch-centric scenarios: attaches an open-loop client to the ToR
  // (config.node becomes its address; several clients may attach). `shard`
  // >= 0 places the client in that shard of a sharded build, making its ToR
  // link a cross-shard boundary.
  LoadClient& AddTorClient(LoadClientConfig config,
                           std::unique_ptr<ArrivalProcess> arrival,
                           RequestFactory factory, int shard = -1);

 private:
  void Build();
  // Stamps spec_.flow onto every link/host/client config before building.
  void ApplyFlowSpec();
  // Stamps spec_.hostnic onto every host config before building (the NIC
  // side is resolved per conventional-NIC target in BuildTarget/BuildMember,
  // where the host's stack type is known).
  void ApplyHostNicSpec();
  // spec_.hostnic resolved against one host's stack type.
  HostNicSpec ResolveHostNic(const ServerConfig& host_config) const;
  void BuildHost();
  void BuildTarget();
  void BuildWorkload();
  void BuildController();
  void BuildTor();
  void BuildMembers();
  void BuildMember(const ScenarioMemberSpec& member_spec);
  // Registers every built entity with the fault injector and arms the
  // spec's plan (last build step, so all names are resolvable).
  void BuildFaults();
  // Member env with null shared resources resolved against the spec level.
  AppFactoryEnv ResolveEnv(const AppFactoryEnv& env) const;

  Simulation& sim_;
  ScenarioSpec spec_;
  TestbedBuilder builder_;
  Server* server_ = nullptr;
  FpgaNic* fpga_ = nullptr;
  ConventionalNic* nic_ = nullptr;
  SmartNic* smartnic_ = nullptr;
  LoadClient* client_ = nullptr;
  L2Switch* tor_ = nullptr;
  SwitchAsic* tor_asic_ = nullptr;
  std::vector<ScenarioMember> members_;
  std::vector<std::unique_ptr<App>> host_apps_;
  std::unique_ptr<App> offload_app_;
  std::unique_ptr<ClassifierMigrator> migrator_;
  std::unique_ptr<NetworkController> controller_;
  std::unique_ptr<FaultInjector> faults_;
};

}  // namespace incod

#endif  // INCOD_SRC_SCENARIOS_SCENARIO_SPEC_H_
