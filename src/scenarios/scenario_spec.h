// Declarative scenario description, consumed by TestbedBuilder.
//
// A ScenarioSpec is a struct literal naming *what* a testbed contains —
// host node, offload target, applications by registry name, workload,
// controller policy — and ScenarioTestbed turns it into a wired topology:
//
//   ScenarioSpec spec;
//   spec.host.apps = {"kvs"};
//   spec.target.kind = ScenarioTargetKind::kFpgaNic;
//   spec.target.app = "kvs";                  // LaKe, via the AppRegistry
//   ScenarioTestbed testbed(sim, spec);
//
// covers the paper's §4.1 chain family (client -- device -- host) that the
// KVS and DNS testbeds, the Fig 3/4/6 benches, and the §9.1 controller
// experiments all share. Apps are created through AppRegistry, so a new
// application reaches every spec-built scenario by registering one factory.
#ifndef INCOD_SRC_SCENARIOS_SCENARIO_SPEC_H_
#define INCOD_SRC_SCENARIOS_SCENARIO_SPEC_H_

#include <memory>
#include <string>
#include <vector>

#include "src/app/app_registry.h"
#include "src/ondemand/controller.h"
#include "src/ondemand/migrator.h"
#include "src/scenarios/testbed_builder.h"

namespace incod {

enum class ScenarioTargetKind { kNone, kConventionalNic, kFpgaNic };

struct ScenarioHostSpec {
  bool present = true;
  ServerConfig config;  // Name, node, cores, power curve, stack.
  // Host-placement apps, by registry name, bound in order.
  std::vector<std::string> apps;
};

struct ScenarioTargetSpec {
  ScenarioTargetKind kind = ScenarioTargetKind::kConventionalNic;
  std::string name = "nic";
  NodeId device_node = 0;
  bool standalone = false;  // FPGA NIC without a host (own PSU).
  bool intel_nic = false;   // Conventional NIC: Intel X520 vs Mellanox.
  // FPGA-placement app by registry name ("" = bare NIC).
  std::string app;
  bool initially_active = true;
  Link::Config pcie = TestbedBuilder::PcieLink();
};

// Declarative workload: an open-loop client against the scenario's service.
struct ScenarioWorkloadSpec {
  enum class Kind { kNone, kKvUniformGets, kDnsQueries };
  Kind kind = Kind::kNone;
  double rate_per_second = 100000;
  uint64_t keyspace = 1000;          // kKvUniformGets.
  double dns_miss_fraction = 0.0;    // kDnsQueries.
  LoadClientConfig client;
};

// Declarative on-demand policy: a §9.1 network controller driving a
// classifier migrator with the chosen §9.2 park policy.
struct ScenarioControllerSpec {
  bool present = false;
  ParkPolicy park_policy = ParkPolicy::kGatedPark;
  bool transfer_state = false;  // Generic state transfer on each shift.
  NetworkControllerConfig network;
};

struct ScenarioSpec {
  std::string name = "scenario";
  SimDuration meter_period = Milliseconds(1);
  ScenarioHostSpec host;
  ScenarioTargetSpec target;
  Link::Config client_link = TestbedBuilder::TenGigLink();
  ScenarioWorkloadSpec workload;
  ScenarioControllerSpec controller;
  // Shared factory resources/knobs (zone, paxos group, per-family configs).
  AppFactoryEnv env;
};

// A testbed built from a spec. Owns the registry-created apps, the
// migrator/controller when requested, and everything TestbedBuilder owns.
class ScenarioTestbed {
 public:
  ScenarioTestbed(Simulation& sim, ScenarioSpec spec);

  Simulation& sim() { return sim_; }
  const ScenarioSpec& spec() const { return spec_; }
  TestbedBuilder& builder() { return builder_; }
  WallPowerMeter& meter() { return builder_.meter(); }

  // Null when the spec lacks the component.
  Server* server() { return server_; }
  FpgaNic* fpga() { return fpga_; }
  ConventionalNic* nic() { return nic_; }
  LoadClient* client() { return client_; }
  ClassifierMigrator* migrator() { return migrator_.get(); }
  NetworkController* controller() { return controller_.get(); }

  // Registry-built applications. Index follows spec order.
  App* host_app(size_t index = 0);
  App* offload_app() { return offload_app_.get(); }
  template <typename T>
  T* host_app_as(size_t index = 0) {
    return dynamic_cast<T*>(host_app(index));
  }
  template <typename T>
  T* offload_app_as() {
    return dynamic_cast<T*>(offload_app_.get());
  }

  // Address clients should target (the host node, or the device when
  // standalone).
  NodeId ServiceNode() const;

  // Attaches the (single) open-loop client to the testbed ingress. The
  // spec's workload (if any) was already attached at construction.
  LoadClient& AddClient(LoadClientConfig config, std::unique_ptr<ArrivalProcess> arrival,
                        RequestFactory factory);

 private:
  void BuildHost();
  void BuildTarget();
  void BuildWorkload();
  void BuildController();

  Simulation& sim_;
  ScenarioSpec spec_;
  TestbedBuilder builder_;
  Server* server_ = nullptr;
  FpgaNic* fpga_ = nullptr;
  ConventionalNic* nic_ = nullptr;
  LoadClient* client_ = nullptr;
  std::vector<std::unique_ptr<App>> host_apps_;
  std::unique_ptr<App> offload_app_;
  std::unique_ptr<ClassifierMigrator> migrator_;
  std::unique_ptr<NetworkController> controller_;
};

}  // namespace incod

#endif  // INCOD_SRC_SCENARIOS_SCENARIO_SPEC_H_
