#include "src/scenarios/paxos_testbed.h"

#include <stdexcept>
#include <utility>

#include "src/power/cpu_power.h"

namespace incod {

namespace {

// Member envs leave paxos_group null: ScenarioTestbed resolves it against
// the spec-owned group, keeping the spec a self-contained literal.
AppFactoryEnv RoleEnv(uint32_t role_id,
                      PaxosSoftwareConfig software = LibpaxosConfig(),
                      NodeId service = 0) {
  AppFactoryEnv env;
  env.paxos_role_id = role_id;
  env.paxos_software = software;
  env.service = service;
  return env;
}

ScenarioMemberSpec MakeLeaderMember(const PaxosTestbedOptions& options) {
  const bool leader_is_sut = options.sut == PaxosSut::kLeader;
  const PaxosDeployment deployment =
      leader_is_sut ? options.deployment : PaxosDeployment::kP4xosFpga;

  ScenarioMemberSpec member;
  member.name = "leader";
  member.link_name = "leader-10ge";
  member.target.device_node = kPaxosLeaderDeviceNode;

  if (options.dual_leader) {
    // Fig 7: software leader on the host, P4xos leader on the host's NIC.
    member.host.config.name = "leader-host";
    member.host.config.node = kPaxosLeaderHostNode;
    member.host.config.num_cores = 4;
    member.host.config.power_curve = I7LibpaxosCurve();
    member.host.apps = {"paxos-leader"};
    member.target.kind = ScenarioTargetKind::kFpgaNic;
    member.target.name = "netfpga-p4xos-leader";
    member.target.app = "paxos-leader";
    member.target.initially_active = false;  // Software leader serves first.
    member.switch_routes = {kPaxosLeaderService, kPaxosLeaderHostNode,
                            kPaxosLeaderDeviceNode};
    member.env = RoleEnv(/*role_id=*/1, LibpaxosConfig(), kPaxosLeaderService);
    return member;
  }

  switch (deployment) {
    case PaxosDeployment::kLibpaxos:
    case PaxosDeployment::kDpdk: {
      member.host.config.name = "leader-host";
      member.host.config.node = kPaxosLeaderHostNode;
      member.host.config.num_cores = 4;
      if (deployment == PaxosDeployment::kDpdk) {
        member.host.config.power_curve = I7DpdkCurve();
        member.host.config.stack = NetStackType::kDpdk;
        member.host.config.dpdk_stack_rx_cost = Nanoseconds(200);
        member.host.config.stack_tx_cost = Nanoseconds(50);
        member.host.config.dpdk_poll_cores = 1;
      } else {
        member.host.config.power_curve = I7LibpaxosCurve();
      }
      member.host.metered = leader_is_sut;
      member.host.apps = {"paxos-leader"};
      member.target.kind = ScenarioTargetKind::kConventionalNic;
      member.target.name = "";  // Preset (Mellanox) name.
      member.target.metered = leader_is_sut;
      member.switch_routes = {kPaxosLeaderService, kPaxosLeaderHostNode};
      member.env = RoleEnv(/*role_id=*/1,
                           deployment == PaxosDeployment::kDpdk ? DpdkPaxosConfig()
                                                                : LibpaxosConfig());
      return member;
    }
    case PaxosDeployment::kP4xosFpga:
    case PaxosDeployment::kP4xosStandalone: {
      const bool standalone = deployment == PaxosDeployment::kP4xosStandalone;
      // The board sits in an otherwise idle host whose power the paper
      // includes in the P4xos-in-server numbers (§4.3). Aux (fast-leader)
      // deployments skip the host entirely.
      member.host.present = !standalone && leader_is_sut;
      member.host.config.name = "p4xos-host";
      member.host.config.node = kPaxosLeaderHostNode;
      member.host.config.num_cores = 4;
      member.host.config.power_curve = I7LibpaxosCurve();
      member.target.kind = ScenarioTargetKind::kFpgaNic;
      member.target.name = "netfpga-p4xos-leader";
      member.target.standalone = standalone;
      member.target.app = "paxos-leader";
      member.target.metered = leader_is_sut;
      member.switch_routes = {kPaxosLeaderService, kPaxosLeaderDeviceNode};
      if (member.host.present) {
        member.switch_routes.push_back(kPaxosLeaderHostNode);
      }
      member.env = RoleEnv(/*role_id=*/1, LibpaxosConfig(), kPaxosLeaderService);
      return member;
    }
  }
  throw std::logic_error("PaxosTestbed: unknown deployment");
}

ScenarioMemberSpec MakeAcceptorMember(const PaxosTestbedOptions& options, int i) {
  const NodeId node = kPaxosAcceptorBaseNode + static_cast<NodeId>(i);
  const bool is_sut = options.sut == PaxosSut::kAcceptor && i == 0;
  ScenarioMemberSpec member;
  member.name = "acceptor-" + std::to_string(i);
  member.link_name = "acceptor-10ge";

  if (!is_sut) {
    // Aux acceptor: fast enough to never bottleneck leader-SUT sweeps.
    member.aux = true;
    member.aux_cores = 4;
    member.target.kind = ScenarioTargetKind::kNone;
    member.host.config.name = "aux-acceptor";
    member.host.config.node = node;
    member.host.apps = {"paxos-acceptor"};
    member.env = RoleEnv(static_cast<uint32_t>(i),
                         PaxosSoftwareConfig{Nanoseconds(300), 2});
    return member;
  }

  switch (options.deployment) {
    case PaxosDeployment::kLibpaxos:
    case PaxosDeployment::kDpdk: {
      member.host.config.name = "acceptor-host";
      member.host.config.node = node;
      member.host.config.num_cores = 4;
      if (options.deployment == PaxosDeployment::kDpdk) {
        member.host.config.power_curve = I7DpdkCurve();
        member.host.config.stack = NetStackType::kDpdk;
        member.host.config.dpdk_stack_rx_cost = Nanoseconds(200);
        member.host.config.stack_tx_cost = Nanoseconds(50);
      } else {
        member.host.config.power_curve = I7LibpaxosCurve();
      }
      member.host.apps = {"paxos-acceptor"};
      member.target.kind = ScenarioTargetKind::kConventionalNic;
      member.target.name = "";  // Preset (Mellanox) name.
      member.switch_routes = {node};
      member.env = RoleEnv(static_cast<uint32_t>(i),
                           options.deployment == PaxosDeployment::kDpdk
                               ? DpdkPaxosConfig()
                               : LibpaxosConfig());
      return member;
    }
    case PaxosDeployment::kP4xosFpga:
    case PaxosDeployment::kP4xosStandalone: {
      const bool standalone = options.deployment == PaxosDeployment::kP4xosStandalone;
      member.host.present = !standalone;
      member.host.config.name = "p4xos-acceptor-host";
      member.host.config.node = 40;  // Distinct host address.
      member.host.config.num_cores = 4;
      member.host.config.power_curve = I7LibpaxosCurve();
      member.target.kind = ScenarioTargetKind::kFpgaNic;
      member.target.name = "netfpga-p4xos-acceptor";
      member.target.device_node = kPaxosAcceptorDeviceNode;
      member.target.standalone = standalone;
      member.target.app = "paxos-acceptor";
      member.switch_routes = {node, kPaxosAcceptorDeviceNode};
      if (member.host.present) {
        member.switch_routes.push_back(40);
      }
      member.env = RoleEnv(static_cast<uint32_t>(i), LibpaxosConfig(), node);
      return member;
    }
  }
  throw std::logic_error("PaxosTestbed: unknown deployment");
}

ScenarioMemberSpec MakeLearnerMember(const PaxosTestbedOptions& options) {
  ScenarioMemberSpec member;
  member.name = "learner";
  member.aux = true;
  member.aux_cores = 8;
  member.target.kind = ScenarioTargetKind::kNone;
  member.host.config.name = "learner-host";
  member.host.config.node = kPaxosLearnerNode;
  member.host.apps = {"paxos-learner"};
  member.env = RoleEnv(0, PaxosSoftwareConfig{Nanoseconds(100), 8});
  member.env.paxos_learner_gap_timeout = options.learner_gap_timeout;
  return member;
}

}  // namespace

const char* PaxosDeploymentName(PaxosDeployment deployment) {
  switch (deployment) {
    case PaxosDeployment::kLibpaxos:
      return "libpaxos";
    case PaxosDeployment::kDpdk:
      return "dpdk";
    case PaxosDeployment::kP4xosFpga:
      return "p4xos-fpga";
    case PaxosDeployment::kP4xosStandalone:
      return "p4xos-standalone";
  }
  return "?";
}

ScenarioSpec MakePaxosGroupSpec(const PaxosTestbedOptions& options) {
  if (options.num_acceptors < 1) {
    throw std::invalid_argument("PaxosTestbed: need >= 1 acceptor");
  }
  if (options.dual_leader && options.sut != PaxosSut::kLeader) {
    throw std::invalid_argument("PaxosTestbed: dual_leader requires leader SUT");
  }
  ScenarioSpec spec;
  spec.name = "paxos-group";
  spec.meter_period = options.meter_period;
  spec.host.present = false;  // Switch-centric: everything is a member.
  spec.target.kind = ScenarioTargetKind::kNone;
  spec.tor.present = true;
  spec.tor.name = "tor-switch";

  PaxosGroupConfig group;
  for (int i = 0; i < options.num_acceptors; ++i) {
    group.acceptors.push_back(kPaxosAcceptorBaseNode + static_cast<NodeId>(i));
  }
  group.learners.push_back(kPaxosLearnerNode);
  group.leader_service = kPaxosLeaderService;
  spec.paxos_group = group;

  spec.members.push_back(MakeLeaderMember(options));
  for (int i = 0; i < options.num_acceptors; ++i) {
    spec.members.push_back(MakeAcceptorMember(options, i));
  }
  spec.members.push_back(MakeLearnerMember(options));
  return spec;
}

PaxosTestbed::PaxosTestbed(Simulation& sim, PaxosTestbedOptions options)
    : sim_(sim), options_(std::move(options)) {
  testbed_ = std::make_unique<ScenarioTestbed>(sim_, MakePaxosGroupSpec(options_));

  const bool leader_is_sut = options_.sut == PaxosSut::kLeader;
  ScenarioMember& leader = testbed_->member("leader");
  software_leader_ = leader.host_apps.empty()
                         ? nullptr
                         : dynamic_cast<SoftwareLeader*>(leader.host_apps.front().get());
  fpga_leader_ = dynamic_cast<P4xosFpgaApp*>(leader.offload_app.get());
  leader_port_ = leader.port;
  if (leader_is_sut) {
    sut_server_ = leader.server;
    sut_fpga_ = leader.fpga;
    sut_nic_ = leader.nic;
  } else {
    aux_fpga_ = leader.fpga;
  }

  for (int i = 0; i < options_.num_acceptors; ++i) {
    ScenarioMember& acceptor = testbed_->member("acceptor-" + std::to_string(i));
    if (!acceptor.host_apps.empty()) {
      if (auto* software =
              dynamic_cast<SoftwareAcceptor*>(acceptor.host_apps.front().get())) {
        software_acceptors_.push_back(software);
      }
    }
    if (acceptor.offload_app != nullptr) {
      fpga_acceptor_ = dynamic_cast<P4xosFpgaApp*>(acceptor.offload_app.get());
    }
    if (options_.sut == PaxosSut::kAcceptor && i == 0) {
      sut_server_ = acceptor.server;
      if (acceptor.fpga != nullptr) {
        sut_fpga_ = acceptor.fpga;
      }
      if (acceptor.nic != nullptr) {
        sut_nic_ = acceptor.nic;
      }
    }
  }

  ScenarioMember& learner_member = testbed_->member("learner");
  learner_ = dynamic_cast<SoftwareLearner*>(learner_member.host_apps.front().get());
  learner_->StartGapTimer();

  // Client (bespoke: a closed-loop Paxos proposer, not a LoadClient).
  options_.client.node = kPaxosClientNode;
  options_.client.leader_service = kPaxosLeaderService;
  client_ = std::make_unique<PaxosClient>(sim_, options_.client);
  Link* client_link = testbed_->builder().topology().ConnectToSwitch(
      testbed_->tor(), client_.get(), kPaxosClientNode, TestbedBuilder::TenGigLink(),
      "client-10ge");
  client_->SetUplink(client_link);
}

uint64_t PaxosTestbed::SutMessagesHandled() const {
  if (options_.sut == PaxosSut::kLeader) {
    if (fpga_leader_ != nullptr &&
        (options_.deployment == PaxosDeployment::kP4xosFpga ||
         options_.deployment == PaxosDeployment::kP4xosStandalone || options_.dual_leader)) {
      uint64_t total = fpga_leader_->messages_handled();
      if (software_leader_ != nullptr) {
        total += software_leader_->messages_handled();
      }
      return total;
    }
    return software_leader_ != nullptr ? software_leader_->messages_handled() : 0;
  }
  if (fpga_acceptor_ != nullptr) {
    return fpga_acceptor_->messages_handled();
  }
  return software_acceptors_.empty() ? 0 : software_acceptors_.front()->messages_handled();
}

}  // namespace incod
