#include "src/scenarios/paxos_testbed.h"

#include <stdexcept>
#include <utility>

#include "src/app/app_registry.h"
#include "src/power/cpu_power.h"

namespace incod {

namespace {
// All Paxos roles are built through the AppRegistry ("paxos-leader",
// "paxos-acceptor", "paxos-learner") so the testbed exercises the same
// per-placement factories every spec-built scenario uses.
AppFactoryEnv RoleEnv(const PaxosGroupConfig& group, uint32_t role_id,
                      PaxosSoftwareConfig software = LibpaxosConfig(),
                      NodeId service = 0) {
  AppFactoryEnv env;
  env.paxos_group = &group;
  env.paxos_role_id = role_id;
  env.paxos_software = software;
  env.service = service;
  return env;
}
}  // namespace

const char* PaxosDeploymentName(PaxosDeployment deployment) {
  switch (deployment) {
    case PaxosDeployment::kLibpaxos:
      return "libpaxos";
    case PaxosDeployment::kDpdk:
      return "dpdk";
    case PaxosDeployment::kP4xosFpga:
      return "p4xos-fpga";
    case PaxosDeployment::kP4xosStandalone:
      return "p4xos-standalone";
  }
  return "?";
}

PaxosTestbed::PaxosTestbed(Simulation& sim, PaxosTestbedOptions options)
    : sim_(sim), options_(std::move(options)), builder_(sim, options_.meter_period) {
  if (options_.num_acceptors < 1) {
    throw std::invalid_argument("PaxosTestbed: need >= 1 acceptor");
  }
  if (options_.dual_leader && options_.sut != PaxosSut::kLeader) {
    throw std::invalid_argument("PaxosTestbed: dual_leader requires leader SUT");
  }
  for (int i = 0; i < options_.num_acceptors; ++i) {
    group_.acceptors.push_back(kPaxosAcceptorBaseNode + static_cast<NodeId>(i));
  }
  group_.learners.push_back(kPaxosLearnerNode);
  group_.leader_service = kPaxosLeaderService;

  switch_ = builder_.AddL2Switch("tor-switch");

  // Client.
  options_.client.node = kPaxosClientNode;
  options_.client.leader_service = kPaxosLeaderService;
  client_ = std::make_unique<PaxosClient>(sim_, options_.client);
  Link* client_link =
      builder_.topology().ConnectToSwitch(switch_, client_.get(), kPaxosClientNode,
                                          TestbedBuilder::TenGigLink(), "client-10ge");
  client_->SetUplink(client_link);

  WireLeader();
  WireAcceptors();
  WireLearner();
  builder_.StartMeter();
}

Server* PaxosTestbed::MakeAuxServer(NodeId node, const char* name, int cores) {
  return builder_.AddAuxServer(switch_, node, name, cores);
}

void PaxosTestbed::WireLeader() {
  const bool leader_is_sut = options_.sut == PaxosSut::kLeader;
  const PaxosDeployment deployment =
      leader_is_sut ? options_.deployment : PaxosDeployment::kP4xosFpga;

  if (options_.dual_leader) {
    // Fig 7: software leader on the host, P4xos leader on the host's NIC.
    ServerConfig server_config;
    server_config.name = "leader-host";
    server_config.node = kPaxosLeaderHostNode;
    server_config.num_cores = 4;
    server_config.power_curve = I7LibpaxosCurve();
    Server* host = builder_.AddServer(server_config);
    sut_server_ = host;
    software_leader_ = AppRegistry::Global().CreateAs<SoftwareLeader>(
        "paxos-leader", PlacementKind::kHost, RoleEnv(group_, /*role_id=*/1));
    host->BindApp(software_leader_.get());

    FpgaNicConfig fpga_config;
    fpga_config.name = "netfpga-p4xos-leader";
    fpga_config.host_node = kPaxosLeaderHostNode;
    fpga_config.device_node = kPaxosLeaderDeviceNode;
    fpga_leader_ = AppRegistry::Global().CreateAs<P4xosFpgaApp>(
        "paxos-leader", PlacementKind::kFpgaNic,
        RoleEnv(group_, /*role_id=*/1, LibpaxosConfig(), kPaxosLeaderService));
    sut_fpga_ = builder_.AddFpgaNic(fpga_config, fpga_leader_.get());
    sut_fpga_->SetAppActive(false);  // Software leader serves initially.

    leader_port_ = builder_.ConnectToSwitchPort(
        switch_, sut_fpga_,
        {kPaxosLeaderService, kPaxosLeaderHostNode, kPaxosLeaderDeviceNode},
        TestbedBuilder::TenGigLink(), "leader-10ge");
    builder_.ConnectPcie(sut_fpga_, host, TestbedBuilder::PcieLink(), "leader-pcie");
    return;
  }

  switch (deployment) {
    case PaxosDeployment::kLibpaxos:
    case PaxosDeployment::kDpdk: {
      ServerConfig server_config;
      server_config.name = "leader-host";
      server_config.node = kPaxosLeaderHostNode;
      server_config.num_cores = 4;
      if (deployment == PaxosDeployment::kDpdk) {
        server_config.power_curve = I7DpdkCurve();
        server_config.stack = NetStackType::kDpdk;
        server_config.stack_rx_cost = Nanoseconds(200);
        server_config.stack_tx_cost = Nanoseconds(50);
        server_config.dpdk_poll_cores = 1;
      } else {
        server_config.power_curve = I7LibpaxosCurve();
      }
      Server* host = builder_.AddServer(server_config, /*metered=*/leader_is_sut);
      software_leader_ = AppRegistry::Global().CreateAs<SoftwareLeader>(
          "paxos-leader", PlacementKind::kHost,
          RoleEnv(group_, /*role_id=*/1,
                  deployment == PaxosDeployment::kDpdk ? DpdkPaxosConfig()
                                                       : LibpaxosConfig()));
      host->BindApp(software_leader_.get());

      sut_nic_ = builder_.AddConventionalNic(MellanoxConnectX3Config(kPaxosLeaderHostNode),
                                             /*metered=*/leader_is_sut);
      leader_port_ = builder_.ConnectToSwitchPort(
          switch_, sut_nic_, {kPaxosLeaderService, kPaxosLeaderHostNode},
          TestbedBuilder::TenGigLink(), "leader-10ge");
      builder_.ConnectPcie(sut_nic_, host, TestbedBuilder::PcieLink(), "leader-pcie");
      if (leader_is_sut) {
        sut_server_ = host;
      }
      break;
    }
    case PaxosDeployment::kP4xosFpga:
    case PaxosDeployment::kP4xosStandalone: {
      const bool standalone = deployment == PaxosDeployment::kP4xosStandalone;
      FpgaNicConfig fpga_config;
      fpga_config.name = "netfpga-p4xos-leader";
      fpga_config.host_node = kPaxosLeaderHostNode;
      fpga_config.device_node = kPaxosLeaderDeviceNode;
      fpga_config.standalone = standalone;
      fpga_leader_ = AppRegistry::Global().CreateAs<P4xosFpgaApp>(
          "paxos-leader", PlacementKind::kFpgaNic,
          RoleEnv(group_, /*role_id=*/1, LibpaxosConfig(), kPaxosLeaderService));
      FpgaNic* fpga = builder_.AddFpgaNic(fpga_config, fpga_leader_.get(),
                                          /*metered=*/leader_is_sut);
      (leader_is_sut ? sut_fpga_ : aux_fpga_) = fpga;
      fpga->SetAppActive(true);

      leader_port_ = builder_.ConnectToSwitchPort(
          switch_, fpga, {kPaxosLeaderService, kPaxosLeaderDeviceNode},
          TestbedBuilder::TenGigLink(), "leader-10ge");

      if (!standalone && leader_is_sut) {
        // The board sits in an otherwise idle host whose power the paper
        // includes in the P4xos-in-server numbers (§4.3).
        ServerConfig host_config;
        host_config.name = "p4xos-host";
        host_config.node = kPaxosLeaderHostNode;
        host_config.num_cores = 4;
        host_config.power_curve = I7LibpaxosCurve();
        Server* host = builder_.AddServer(host_config);
        switch_->AddRoute(kPaxosLeaderHostNode, leader_port_);
        builder_.ConnectPcie(fpga, host, TestbedBuilder::PcieLink(), "leader-pcie");
        sut_server_ = host;
      }
      break;
    }
  }
}

void PaxosTestbed::WireAcceptors() {
  for (int i = 0; i < options_.num_acceptors; ++i) {
    const NodeId node = kPaxosAcceptorBaseNode + static_cast<NodeId>(i);
    const bool is_sut = options_.sut == PaxosSut::kAcceptor && i == 0;
    if (!is_sut) {
      // Aux acceptor: fast enough to never bottleneck leader-SUT sweeps.
      Server* server = MakeAuxServer(node, "aux-acceptor", 4);
      auto acceptor = AppRegistry::Global().CreateAs<SoftwareAcceptor>(
          "paxos-acceptor", PlacementKind::kHost,
          RoleEnv(group_, static_cast<uint32_t>(i),
                  PaxosSoftwareConfig{Nanoseconds(300), 2}));
      server->BindApp(acceptor.get());
      software_acceptors_.push_back(std::move(acceptor));
      continue;
    }
    switch (options_.deployment) {
      case PaxosDeployment::kLibpaxos:
      case PaxosDeployment::kDpdk: {
        ServerConfig server_config;
        server_config.name = "acceptor-host";
        server_config.node = node;
        server_config.num_cores = 4;
        if (options_.deployment == PaxosDeployment::kDpdk) {
          server_config.power_curve = I7DpdkCurve();
          server_config.stack = NetStackType::kDpdk;
          server_config.stack_rx_cost = Nanoseconds(200);
          server_config.stack_tx_cost = Nanoseconds(50);
        } else {
          server_config.power_curve = I7LibpaxosCurve();
        }
        Server* host = builder_.AddServer(server_config);
        auto acceptor = AppRegistry::Global().CreateAs<SoftwareAcceptor>(
            "paxos-acceptor", PlacementKind::kHost,
            RoleEnv(group_, static_cast<uint32_t>(i),
                    options_.deployment == PaxosDeployment::kDpdk ? DpdkPaxosConfig()
                                                                  : LibpaxosConfig()));
        host->BindApp(acceptor.get());
        software_acceptors_.insert(software_acceptors_.begin(), std::move(acceptor));

        sut_nic_ = builder_.AddConventionalNic(MellanoxConnectX3Config(node));
        builder_.ConnectToSwitchPort(switch_, sut_nic_, {node},
                                     TestbedBuilder::TenGigLink(), "acceptor-10ge");
        builder_.ConnectPcie(sut_nic_, host, TestbedBuilder::PcieLink(), "acceptor-pcie");
        sut_server_ = host;
        break;
      }
      case PaxosDeployment::kP4xosFpga:
      case PaxosDeployment::kP4xosStandalone: {
        const bool standalone = options_.deployment == PaxosDeployment::kP4xosStandalone;
        FpgaNicConfig fpga_config;
        fpga_config.name = "netfpga-p4xos-acceptor";
        fpga_config.host_node = 40;  // Distinct host address.
        fpga_config.device_node = kPaxosAcceptorDeviceNode;
        fpga_config.standalone = standalone;
        fpga_acceptor_ = AppRegistry::Global().CreateAs<P4xosFpgaApp>(
            "paxos-acceptor", PlacementKind::kFpgaNic,
            RoleEnv(group_, static_cast<uint32_t>(i), LibpaxosConfig(), node));
        sut_fpga_ = builder_.AddFpgaNic(fpga_config, fpga_acceptor_.get());
        sut_fpga_->SetAppActive(true);

        const int port = builder_.ConnectToSwitchPort(
            switch_, sut_fpga_, {node, kPaxosAcceptorDeviceNode},
            TestbedBuilder::TenGigLink(), "acceptor-10ge");

        if (!standalone) {
          ServerConfig host_config;
          host_config.name = "p4xos-acceptor-host";
          host_config.node = 40;
          host_config.num_cores = 4;
          host_config.power_curve = I7LibpaxosCurve();
          Server* host = builder_.AddServer(host_config);
          switch_->AddRoute(40, port);
          builder_.ConnectPcie(sut_fpga_, host, TestbedBuilder::PcieLink(),
                               "acceptor-pcie");
          sut_server_ = host;
        }
        break;
      }
    }
  }
}

void PaxosTestbed::WireLearner() {
  Server* server = MakeAuxServer(kPaxosLearnerNode, "learner-host", 8);
  AppFactoryEnv env = RoleEnv(group_, 0, PaxosSoftwareConfig{Nanoseconds(100), 8});
  env.paxos_learner_gap_timeout = options_.learner_gap_timeout;
  learner_ = AppRegistry::Global().CreateAs<SoftwareLearner>(
      "paxos-learner", PlacementKind::kHost, env);
  server->BindApp(learner_.get());
  learner_->StartGapTimer();
}

uint64_t PaxosTestbed::SutMessagesHandled() const {
  if (options_.sut == PaxosSut::kLeader) {
    if (fpga_leader_ != nullptr &&
        (options_.deployment == PaxosDeployment::kP4xosFpga ||
         options_.deployment == PaxosDeployment::kP4xosStandalone || options_.dual_leader)) {
      uint64_t total = fpga_leader_->messages_handled();
      if (software_leader_ != nullptr) {
        total += software_leader_->messages_handled();
      }
      return total;
    }
    return software_leader_ != nullptr ? software_leader_->messages_handled() : 0;
  }
  if (fpga_acceptor_ != nullptr) {
    return fpga_acceptor_->messages_handled();
  }
  return software_acceptors_.empty() ? 0 : software_acceptors_.front()->messages_handled();
}

}  // namespace incod
