#include "src/scenarios/paxos_testbed.h"

#include <stdexcept>
#include <utility>

#include "src/power/cpu_power.h"

namespace incod {

namespace {
Link::Config TenGigLink() {
  Link::Config config;
  config.gigabits_per_second = 10.0;
  config.propagation_delay = Nanoseconds(500);
  return config;
}

Link::Config PcieLink() {
  Link::Config config;
  config.gigabits_per_second = 32.0;
  config.propagation_delay = Nanoseconds(900);
  return config;
}
}  // namespace

const char* PaxosDeploymentName(PaxosDeployment deployment) {
  switch (deployment) {
    case PaxosDeployment::kLibpaxos:
      return "libpaxos";
    case PaxosDeployment::kDpdk:
      return "dpdk";
    case PaxosDeployment::kP4xosFpga:
      return "p4xos-fpga";
    case PaxosDeployment::kP4xosStandalone:
      return "p4xos-standalone";
  }
  return "?";
}

PaxosTestbed::PaxosTestbed(Simulation& sim, PaxosTestbedOptions options)
    : sim_(sim), options_(std::move(options)), topology_(sim) {
  if (options_.num_acceptors < 1) {
    throw std::invalid_argument("PaxosTestbed: need >= 1 acceptor");
  }
  if (options_.dual_leader && options_.sut != PaxosSut::kLeader) {
    throw std::invalid_argument("PaxosTestbed: dual_leader requires leader SUT");
  }
  for (int i = 0; i < options_.num_acceptors; ++i) {
    group_.acceptors.push_back(kPaxosAcceptorBaseNode + static_cast<NodeId>(i));
  }
  group_.learners.push_back(kPaxosLearnerNode);
  group_.leader_service = kPaxosLeaderService;

  switch_ = std::make_unique<L2Switch>(sim_, "tor-switch");
  meter_ = std::make_unique<WallPowerMeter>(sim_, options_.meter_period);

  // Client.
  options_.client.node = kPaxosClientNode;
  options_.client.leader_service = kPaxosLeaderService;
  client_ = std::make_unique<PaxosClient>(sim_, options_.client);
  Link* client_link =
      topology_.ConnectToSwitch(switch_.get(), client_.get(), kPaxosClientNode,
                                TenGigLink(), "client-10ge");
  client_->SetUplink(client_link);

  WireLeader();
  WireAcceptors();
  WireLearner();
  meter_->Start();
}

Server* PaxosTestbed::MakeAuxServer(NodeId node, const char* name, int cores,
                                    SimDuration cpu_time_hint) {
  (void)cpu_time_hint;
  ServerConfig config;
  config.name = name;
  config.node = node;
  config.num_cores = cores;
  config.power_curve = I7SyntheticCurve();
  config.stack_rx_cost = Nanoseconds(100);  // Aux boxes must never bottleneck.
  config.stack_tx_cost = Nanoseconds(50);
  servers_.push_back(std::make_unique<Server>(sim_, config));
  Server* server = servers_.back().get();
  Link* link = topology_.ConnectToSwitch(switch_.get(), server, node, TenGigLink());
  server->SetUplink(link);
  return server;
}

void PaxosTestbed::WireLeader() {
  const bool leader_is_sut = options_.sut == PaxosSut::kLeader;
  const PaxosDeployment deployment =
      leader_is_sut ? options_.deployment : PaxosDeployment::kP4xosFpga;

  if (options_.dual_leader) {
    // Fig 7: software leader on the host, P4xos leader on the host's NIC.
    ServerConfig server_config;
    server_config.name = "leader-host";
    server_config.node = kPaxosLeaderHostNode;
    server_config.num_cores = 4;
    server_config.power_curve = I7LibpaxosCurve();
    servers_.push_back(std::make_unique<Server>(sim_, server_config));
    Server* host = servers_.back().get();
    sut_server_ = host;
    software_leader_ = std::make_unique<SoftwareLeader>(group_, /*ballot=*/1);
    host->BindApp(software_leader_.get());

    FpgaNicConfig fpga_config;
    fpga_config.name = "netfpga-p4xos-leader";
    fpga_config.host_node = kPaxosLeaderHostNode;
    fpga_config.device_node = kPaxosLeaderDeviceNode;
    sut_fpga_ = std::make_unique<FpgaNic>(sim_, fpga_config);
    fpga_leader_ = std::make_unique<P4xosFpgaApp>(P4xosRole::kLeader, group_,
                                                  /*role_id=*/1, kPaxosLeaderService);
    sut_fpga_->InstallApp(fpga_leader_.get());
    sut_fpga_->SetAppActive(false);  // Software leader serves initially.

    Link* net_link = topology_.Connect(switch_.get(), sut_fpga_.get(), TenGigLink(),
                                       "leader-10ge");
    leader_port_ = switch_->AttachLink(net_link);
    switch_->AddRoute(kPaxosLeaderService, leader_port_);
    switch_->AddRoute(kPaxosLeaderHostNode, leader_port_);
    switch_->AddRoute(kPaxosLeaderDeviceNode, leader_port_);
    sut_fpga_->SetNetworkLink(net_link);
    Link* pcie = topology_.Connect(sut_fpga_.get(), host, PcieLink(), "leader-pcie");
    sut_fpga_->SetHostLink(pcie);
    host->SetUplink(pcie);

    meter_->Attach(host);
    meter_->Attach(sut_fpga_.get());
    return;
  }

  switch (deployment) {
    case PaxosDeployment::kLibpaxos:
    case PaxosDeployment::kDpdk: {
      ServerConfig server_config;
      server_config.name = "leader-host";
      server_config.node = kPaxosLeaderHostNode;
      server_config.num_cores = 4;
      if (deployment == PaxosDeployment::kDpdk) {
        server_config.power_curve = I7DpdkCurve();
        server_config.stack = NetStackType::kDpdk;
        server_config.stack_rx_cost = Nanoseconds(200);
        server_config.stack_tx_cost = Nanoseconds(50);
        server_config.dpdk_poll_cores = 1;
      } else {
        server_config.power_curve = I7LibpaxosCurve();
      }
      servers_.push_back(std::make_unique<Server>(sim_, server_config));
      Server* host = servers_.back().get();
      software_leader_ = std::make_unique<SoftwareLeader>(
          group_, /*ballot=*/1,
          deployment == PaxosDeployment::kDpdk ? DpdkPaxosConfig() : LibpaxosConfig());
      host->BindApp(software_leader_.get());

      sut_nic_ = std::make_unique<ConventionalNic>(
          sim_, MellanoxConnectX3Config(kPaxosLeaderHostNode));
      Link* net_link = topology_.Connect(switch_.get(), sut_nic_.get(), TenGigLink(),
                                         "leader-10ge");
      leader_port_ = switch_->AttachLink(net_link);
      switch_->AddRoute(kPaxosLeaderService, leader_port_);
      switch_->AddRoute(kPaxosLeaderHostNode, leader_port_);
      sut_nic_->SetNetworkLink(net_link);
      Link* pcie = topology_.Connect(sut_nic_.get(), host, PcieLink(), "leader-pcie");
      sut_nic_->SetHostLink(pcie);
      host->SetUplink(pcie);
      if (leader_is_sut) {
        sut_server_ = host;
        meter_->Attach(host);
        meter_->Attach(sut_nic_.get());
      }
      break;
    }
    case PaxosDeployment::kP4xosFpga:
    case PaxosDeployment::kP4xosStandalone: {
      const bool standalone = deployment == PaxosDeployment::kP4xosStandalone;
      FpgaNicConfig fpga_config;
      fpga_config.name = "netfpga-p4xos-leader";
      fpga_config.host_node = kPaxosLeaderHostNode;
      fpga_config.device_node = kPaxosLeaderDeviceNode;
      fpga_config.standalone = standalone;
      auto& fpga_slot = leader_is_sut ? sut_fpga_ : aux_fpga_;
      fpga_slot = std::make_unique<FpgaNic>(sim_, fpga_config);
      fpga_leader_ = std::make_unique<P4xosFpgaApp>(P4xosRole::kLeader, group_,
                                                    /*role_id=*/1, kPaxosLeaderService);
      fpga_slot->InstallApp(fpga_leader_.get());
      fpga_slot->SetAppActive(true);

      Link* net_link = topology_.Connect(switch_.get(), fpga_slot.get(), TenGigLink(),
                                         "leader-10ge");
      leader_port_ = switch_->AttachLink(net_link);
      switch_->AddRoute(kPaxosLeaderService, leader_port_);
      switch_->AddRoute(kPaxosLeaderDeviceNode, leader_port_);
      fpga_slot->SetNetworkLink(net_link);

      if (!standalone && leader_is_sut) {
        // The board sits in an otherwise idle host whose power the paper
        // includes in the P4xos-in-server numbers (§4.3).
        ServerConfig host_config;
        host_config.name = "p4xos-host";
        host_config.node = kPaxosLeaderHostNode;
        host_config.num_cores = 4;
        host_config.power_curve = I7LibpaxosCurve();
        servers_.push_back(std::make_unique<Server>(sim_, host_config));
        Server* host = servers_.back().get();
        switch_->AddRoute(kPaxosLeaderHostNode, leader_port_);
        Link* pcie = topology_.Connect(fpga_slot.get(), host, PcieLink(), "leader-pcie");
        fpga_slot->SetHostLink(pcie);
        host->SetUplink(pcie);
        sut_server_ = host;
        meter_->Attach(host);
      }
      if (leader_is_sut) {
        meter_->Attach(fpga_slot.get());
      }
      break;
    }
  }
}

void PaxosTestbed::WireAcceptors() {
  for (int i = 0; i < options_.num_acceptors; ++i) {
    const NodeId node = kPaxosAcceptorBaseNode + static_cast<NodeId>(i);
    const bool is_sut = options_.sut == PaxosSut::kAcceptor && i == 0;
    if (!is_sut) {
      // Aux acceptor: fast enough to never bottleneck leader-SUT sweeps.
      Server* server = MakeAuxServer(node, "aux-acceptor", 4, Nanoseconds(300));
      auto acceptor = std::make_unique<SoftwareAcceptor>(
          group_, static_cast<uint32_t>(i), PaxosSoftwareConfig{Nanoseconds(300), 2});
      server->BindApp(acceptor.get());
      software_acceptors_.push_back(std::move(acceptor));
      continue;
    }
    switch (options_.deployment) {
      case PaxosDeployment::kLibpaxos:
      case PaxosDeployment::kDpdk: {
        ServerConfig server_config;
        server_config.name = "acceptor-host";
        server_config.node = node;
        server_config.num_cores = 4;
        if (options_.deployment == PaxosDeployment::kDpdk) {
          server_config.power_curve = I7DpdkCurve();
          server_config.stack = NetStackType::kDpdk;
          server_config.stack_rx_cost = Nanoseconds(200);
          server_config.stack_tx_cost = Nanoseconds(50);
        } else {
          server_config.power_curve = I7LibpaxosCurve();
        }
        servers_.push_back(std::make_unique<Server>(sim_, server_config));
        Server* host = servers_.back().get();
        auto acceptor = std::make_unique<SoftwareAcceptor>(
            group_, static_cast<uint32_t>(i),
            options_.deployment == PaxosDeployment::kDpdk ? DpdkPaxosConfig()
                                                          : LibpaxosConfig());
        host->BindApp(acceptor.get());
        software_acceptors_.insert(software_acceptors_.begin(), std::move(acceptor));

        sut_nic_ = std::make_unique<ConventionalNic>(sim_, MellanoxConnectX3Config(node));
        Link* net_link =
            topology_.Connect(switch_.get(), sut_nic_.get(), TenGigLink(), "acceptor-10ge");
        const int port = switch_->AttachLink(net_link);
        switch_->AddRoute(node, port);
        sut_nic_->SetNetworkLink(net_link);
        Link* pcie = topology_.Connect(sut_nic_.get(), host, PcieLink(), "acceptor-pcie");
        sut_nic_->SetHostLink(pcie);
        host->SetUplink(pcie);
        sut_server_ = host;
        meter_->Attach(host);
        meter_->Attach(sut_nic_.get());
        break;
      }
      case PaxosDeployment::kP4xosFpga:
      case PaxosDeployment::kP4xosStandalone: {
        const bool standalone = options_.deployment == PaxosDeployment::kP4xosStandalone;
        FpgaNicConfig fpga_config;
        fpga_config.name = "netfpga-p4xos-acceptor";
        fpga_config.host_node = 40;  // Distinct host address.
        fpga_config.device_node = kPaxosAcceptorDeviceNode;
        fpga_config.standalone = standalone;
        sut_fpga_ = std::make_unique<FpgaNic>(sim_, fpga_config);
        fpga_acceptor_ = std::make_unique<P4xosFpgaApp>(
            P4xosRole::kAcceptor, group_, static_cast<uint32_t>(i), node);
        sut_fpga_->InstallApp(fpga_acceptor_.get());
        sut_fpga_->SetAppActive(true);

        Link* net_link = topology_.Connect(switch_.get(), sut_fpga_.get(), TenGigLink(),
                                           "acceptor-10ge");
        const int port = switch_->AttachLink(net_link);
        switch_->AddRoute(node, port);
        switch_->AddRoute(kPaxosAcceptorDeviceNode, port);
        sut_fpga_->SetNetworkLink(net_link);

        if (!standalone) {
          ServerConfig host_config;
          host_config.name = "p4xos-acceptor-host";
          host_config.node = 40;
          host_config.num_cores = 4;
          host_config.power_curve = I7LibpaxosCurve();
          servers_.push_back(std::make_unique<Server>(sim_, host_config));
          Server* host = servers_.back().get();
          switch_->AddRoute(40, port);
          Link* pcie =
              topology_.Connect(sut_fpga_.get(), host, PcieLink(), "acceptor-pcie");
          sut_fpga_->SetHostLink(pcie);
          host->SetUplink(pcie);
          sut_server_ = host;
          meter_->Attach(host);
        }
        meter_->Attach(sut_fpga_.get());
        break;
      }
    }
  }
}

void PaxosTestbed::WireLearner() {
  Server* server = MakeAuxServer(kPaxosLearnerNode, "learner-host", 8, Nanoseconds(100));
  learner_ = std::make_unique<SoftwareLearner>(
      group_, PaxosSoftwareConfig{Nanoseconds(100), 8}, options_.learner_gap_timeout);
  server->BindApp(learner_.get());
  learner_->StartGapTimer();
}

uint64_t PaxosTestbed::SutMessagesHandled() const {
  if (options_.sut == PaxosSut::kLeader) {
    if (fpga_leader_ != nullptr &&
        (options_.deployment == PaxosDeployment::kP4xosFpga ||
         options_.deployment == PaxosDeployment::kP4xosStandalone || options_.dual_leader)) {
      uint64_t total = fpga_leader_->messages_handled();
      if (software_leader_ != nullptr) {
        total += software_leader_->messages_handled();
      }
      return total;
    }
    return software_leader_ != nullptr ? software_leader_->messages_handled() : 0;
  }
  if (fpga_acceptor_ != nullptr) {
    return fpga_acceptor_->messages_handled();
  }
  return software_acceptors_.empty() ? 0 : software_acceptors_.front()->messages_handled();
}

}  // namespace incod
