// Shared testbed assembly.
//
// The KVS, DNS, and Paxos testbeds (and any rack-scale composition) all
// build the same ingredients: a wall power meter, servers with calibrated
// curves, offload devices, PCIe and 10GE links. TestbedBuilder owns those
// components and centralizes the wiring idioms so a new scenario is a short
// composition instead of another copy-pasted testbed.
#ifndef INCOD_SRC_SCENARIOS_TESTBED_BUILDER_H_
#define INCOD_SRC_SCENARIOS_TESTBED_BUILDER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/device/conventional_nic.h"
#include "src/device/fpga_nic.h"
#include "src/device/smartnic.h"
#include "src/device/switch_asic.h"
#include "src/host/server.h"
#include "src/net/topology.h"
#include "src/power/meter.h"
#include "src/sim/simulation.h"
#include "src/workload/client.h"

namespace incod {

class TestbedBuilder {
 public:
  explicit TestbedBuilder(Simulation& sim, SimDuration meter_period = Milliseconds(1));

  // Sharded build: components default into `shard` of the ShardedSimulation
  // (the rack's home shard); AddLoadClient can place clients in other
  // shards, making their links the cross-shard boundaries. The wall meter
  // lives in `shard`, so every metered component must stay there too.
  TestbedBuilder(ShardedSimulation& sharded, int shard,
                 SimDuration meter_period = Milliseconds(1));

  // Link presets shared by every testbed (§4.1 topology family).
  static Link::Config TenGigLink(SimDuration propagation_delay = Nanoseconds(500));
  // PCIe + DMA + driver + kernel wakeup: crossing into the host costs
  // microseconds (§9.5) — what makes a hardware miss ~an order of magnitude
  // above a cache hit.
  static Link::Config PcieLink(SimDuration propagation_delay = Nanoseconds(900));

  Simulation& sim() { return sim_; }
  Topology& topology() { return topology_; }
  WallPowerMeter& meter() { return *meter_; }
  // Starts wall-power sampling; call once the metered set is complete.
  void StartMeter() { meter_->Start(); }

  // --- Components (owned by the builder; `metered` joins the SHW-3A set) ---
  Server* AddServer(ServerConfig config, bool metered = true);
  FpgaNic* AddFpgaNic(FpgaNicConfig config, App* app, bool metered = true);
  ConventionalNic* AddConventionalNic(ConventionalNicConfig config, bool metered = true);
  SmartNic* AddSmartNic(SmartNicPreset preset, SmartNicDeviceConfig config,
                        bool metered = true);
  SwitchAsic* AddSwitchAsic(SwitchAsicConfig config, bool metered = false);
  L2Switch* AddL2Switch(std::string name);
  // Auxiliary host that must never bottleneck and is never metered
  // (acceptors, learners): fast stack costs, synthetic curve, attached to
  // a switch port with a route for `node`.
  Server* AddAuxServer(L2Switch* sw, NodeId node, std::string name, int cores);
  // `shard` >= 0 places the client in that shard (sharded builds only);
  // -1 keeps it in the builder's default shard.
  LoadClient* AddLoadClient(LoadClientConfig config,
                            std::unique_ptr<ArrivalProcess> arrival,
                            RequestFactory factory, int shard = -1);

  // --- Wiring idioms ---
  // device --PCIe-- server: sets the device's host link and the server's
  // uplink. Works for any device with SetHostLink (FPGA NIC, conventional
  // NIC, SmartNIC).
  template <typename Device>
  Link* ConnectPcie(Device* device, Server* server, Link::Config config = PcieLink(),
                    std::string name = "pcie") {
    Link* link = topology_.Connect(device, server, config, std::move(name));
    device->SetHostLink(link);
    server->SetUplink(link);
    return link;
  }

  // client --10GE-- device ingress: sets the client's uplink and the
  // device's network link.
  template <typename Device>
  Link* ConnectClient(LoadClient* client, Device* device,
                      Link::Config config = TenGigLink(),
                      std::string name = "client-10ge") {
    Link* link = topology_.Connect(client, device, config, std::move(name));
    client->SetUplink(link);
    device->SetNetworkLink(link);
    return link;
  }

  // switch --10GE-- device: attaches a switch port, routes `nodes` via it,
  // and sets the device's network link.
  template <typename Device>
  int ConnectToSwitchPort(L2Switch* sw, Device* device,
                          const std::vector<NodeId>& nodes,
                          Link::Config config = TenGigLink(),
                          std::string name = "10ge") {
    Link* link = topology_.Connect(sw, device, config, std::move(name));
    const int port = sw->AttachLink(link);
    for (NodeId node : nodes) {
      sw->AddRoute(node, port);
    }
    device->SetNetworkLink(link);
    return port;
  }

 private:
  template <typename T, typename... Args>
  T* Own(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = owned.get();
    components_.push_back(std::move(owned));
    return raw;
  }

  Simulation& sim_;
  ShardedSimulation* sharded_ = nullptr;
  int default_shard_ = 0;
  Topology topology_;
  std::unique_ptr<WallPowerMeter> meter_;
  std::vector<std::unique_ptr<PacketSink>> components_;
};

}  // namespace incod

#endif  // INCOD_SRC_SCENARIOS_TESTBED_BUILDER_H_
