#include "src/power/meter.h"

namespace incod {

WallPowerMeter::WallPowerMeter(Simulation& sim, SimDuration period)
    : sim_(sim), period_(period) {}

WallPowerMeter::~WallPowerMeter() {
  if (pending_sample_ != 0) {
    sim_.Cancel(pending_sample_);
  }
}

void WallPowerMeter::Attach(const PowerSource* source) { sources_.push_back(source); }

double WallPowerMeter::InstantWatts() const {
  double sum = 0;
  for (const auto* s : sources_) {
    sum += s->PowerWatts();
  }
  return sum;
}

void WallPowerMeter::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  stop_requested_ = false;
  Sample();
}

void WallPowerMeter::Stop() { stop_requested_ = true; }

void WallPowerMeter::Sample() {
  pending_sample_ = 0;
  if (stop_requested_) {
    running_ = false;
    return;
  }
  const double watts = InstantWatts();
  const SimTime now = sim_.Now();
  if (has_sample_) {
    const double dt = ToSeconds(now - last_sample_at_);
    energy_joules_ += 0.5 * (watts + last_watts_) * dt;
  }
  series_.Append(now, watts);
  last_watts_ = watts;
  last_sample_at_ = now;
  has_sample_ = true;
  pending_sample_ = sim_.Schedule(period_, [this] { Sample(); });
}

double WallPowerMeter::MeanWatts(SimTime from, SimTime to) const {
  return series_.MeanValueBetween(from, to);
}

RaplCounter::RaplCounter(Simulation& sim, std::function<double()> package_watts,
                         SimDuration update_period)
    : sim_(sim), package_watts_(std::move(package_watts)), period_(update_period) {}

void RaplCounter::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  Tick();
}

void RaplCounter::Tick() {
  const SimTime now = sim_.Now();
  const double watts = package_watts_();
  if (has_tick_) {
    const double dt = ToSeconds(now - last_tick_);
    energy_uj_ += static_cast<uint64_t>(0.5 * (watts + last_watts_) * dt * 1e6);
  }
  last_tick_ = now;
  last_watts_ = watts;
  has_tick_ = true;
  sim_.Schedule(period_, [this] { Tick(); });
}

double RaplCounter::AverageWattsSince(uint64_t prior_energy_uj, SimDuration interval) const {
  if (interval <= 0 || energy_uj_ < prior_energy_uj) {
    return 0;
  }
  const double joules = static_cast<double>(energy_uj_ - prior_energy_uj) / 1e6;
  return joules / ToSeconds(interval);
}

}  // namespace incod
