#include "src/power/curve.h"

#include <algorithm>
#include <stdexcept>

namespace incod {

PiecewiseLinearCurve::PiecewiseLinearCurve(std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  if (points_.size() < 2) {
    throw std::invalid_argument("PiecewiseLinearCurve: need >= 2 points");
  }
  for (size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].first <= points_[i - 1].first) {
      throw std::invalid_argument("PiecewiseLinearCurve: x not strictly increasing");
    }
  }
}

double PiecewiseLinearCurve::Evaluate(double x) const {
  if (x <= points_.front().first) {
    return points_.front().second;
  }
  if (x >= points_.back().first) {
    return points_.back().second;
  }
  // Binary search for the segment containing x.
  size_t lo = 0;
  size_t hi = points_.size() - 1;
  while (hi - lo > 1) {
    const size_t mid = (lo + hi) / 2;
    if (points_[mid].first <= x) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const auto& [x0, y0] = points_[lo];
  const auto& [x1, y1] = points_[hi];
  const double t = (x - x0) / (x1 - x0);
  return y0 + t * (y1 - y0);
}

double PiecewiseLinearCurve::InverseLower(double y) const {
  if (y <= points_.front().second) {
    return points_.front().first;
  }
  for (size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].second >= y) {
      const auto& [x0, y0] = points_[i - 1];
      const auto& [x1, y1] = points_[i];
      if (y1 == y0) {
        return x0;
      }
      return x0 + (y - y0) / (y1 - y0) * (x1 - x0);
    }
  }
  return points_.back().first;
}

double PiecewiseLinearCurve::MinY() const {
  double m = points_.front().second;
  for (const auto& [x, y] : points_) {
    m = std::min(m, y);
  }
  return m;
}

double PiecewiseLinearCurve::MaxY() const {
  double m = points_.front().second;
  for (const auto& [x, y] : points_) {
    m = std::max(m, y);
  }
  return m;
}

bool PiecewiseLinearCurve::IsNonDecreasing() const {
  for (size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].second < points_[i - 1].second) {
      return false;
    }
  }
  return true;
}

}  // namespace incod
