#include "src/power/psu.h"

#include <algorithm>
#include <stdexcept>

namespace incod {

PsuModel::PsuModel(double rated_watts)
    : rated_watts_(rated_watts),
      efficiency_(PiecewiseLinearCurve({
          {0.00, 0.60},
          {0.05, 0.75},
          {0.10, 0.82},
          {0.20, 0.87},
          {0.50, 0.90},
          {1.00, 0.87},
      })) {
  if (rated_watts <= 0) {
    throw std::invalid_argument("PsuModel: rated_watts must be > 0");
  }
}

double PsuModel::EfficiencyAt(double dc_watts) const {
  const double frac = std::clamp(dc_watts / rated_watts_, 0.0, 1.0);
  return efficiency_.Evaluate(frac);
}

double PsuModel::WallWatts(double dc_watts) const {
  if (dc_watts <= 0) {
    return 0.0;
  }
  return dc_watts / EfficiencyAt(dc_watts);
}

}  // namespace incod
