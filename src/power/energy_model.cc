#include "src/power/energy_model.h"

#include <cmath>
#include <stdexcept>

namespace incod {

double EnergyJoules(const EnergyProfile& profile, double packets, double rate,
                    double idle_seconds) {
  if (rate <= 0 && packets > 0) {
    throw std::invalid_argument("EnergyJoules: rate must be > 0 when packets > 0");
  }
  double e = 0;
  if (packets > 0) {
    const double td = packets / rate;
    const double pd = profile.idle_watts + profile.dynamic_watts(rate);
    e += pd * td;
  }
  e += profile.sleep_watts * profile.sleep_seconds;
  e += profile.idle_watts * idle_seconds;
  return e;
}

std::optional<double> TippingPointRate(const std::function<double(double)>& software_watts,
                                       const std::function<double(double)>& network_watts,
                                       double lo, double hi, double tolerance) {
  if (lo > hi) {
    throw std::invalid_argument("TippingPointRate: lo > hi");
  }
  auto diff = [&](double r) { return software_watts(r) - network_watts(r); };
  if (diff(lo) >= 0) {
    return lo;  // Network already wins at (or below) the low end.
  }
  if (diff(hi) < 0) {
    return std::nullopt;  // Network never wins on this range.
  }
  double a = lo;
  double b = hi;
  while (b - a > tolerance) {
    const double mid = 0.5 * (a + b);
    if (diff(mid) >= 0) {
      b = mid;
    } else {
      a = mid;
    }
  }
  return b;
}

std::optional<double> TippingPointRate(const EnergyProfile& software,
                                       const EnergyProfile& network, double lo, double hi,
                                       double tolerance) {
  return TippingPointRate(
      [&](double r) { return software.idle_watts + software.dynamic_watts(r); },
      [&](double r) { return network.idle_watts + network.dynamic_watts(r); }, lo, hi,
      tolerance);
}

}  // namespace incod
