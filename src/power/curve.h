// Piecewise-linear calibration curves.
//
// Server power-vs-utilization relations in the paper are reported as a small
// set of measured anchor points (idle watts, watts at the crossover load,
// watts at peak). We interpolate linearly between anchors and clamp outside
// the calibrated domain.
#ifndef INCOD_SRC_POWER_CURVE_H_
#define INCOD_SRC_POWER_CURVE_H_

#include <utility>
#include <vector>

namespace incod {

class PiecewiseLinearCurve {
 public:
  // Points must be strictly increasing in x.
  explicit PiecewiseLinearCurve(std::vector<std::pair<double, double>> points);

  double Evaluate(double x) const;
  double operator()(double x) const { return Evaluate(x); }

  // Inverse lookup: smallest x with Evaluate(x) >= y, or max-x if the curve
  // never reaches y. Requires the curve to be non-decreasing.
  double InverseLower(double y) const;

  double MinX() const { return points_.front().first; }
  double MaxX() const { return points_.back().first; }
  double MinY() const;
  double MaxY() const;
  bool IsNonDecreasing() const;

  const std::vector<std::pair<double, double>>& points() const { return points_; }

 private:
  std::vector<std::pair<double, double>> points_;
};

}  // namespace incod

#endif  // INCOD_SRC_POWER_CURVE_H_
