// Server/CPU power models.
//
// A CpuPowerModel maps total core utilization (0 .. num_cores, where 1.0 is
// one fully-busy core) to wall watts via an anchored piecewise-linear curve.
// Anchor points come from the paper's own measurements; see presets below
// and the calibration table in EXPERIMENTS.md. Curves are per (CPU platform,
// application) pair because the paper observes that "different applications
// have very different power profiles" (§9.1, citing Papadogiannaki et al.).
#ifndef INCOD_SRC_POWER_CPU_POWER_H_
#define INCOD_SRC_POWER_CPU_POWER_H_

#include <string>

#include "src/power/curve.h"
#include "src/power/power_source.h"

namespace incod {

class CpuPowerModel : public PowerSource {
 public:
  CpuPowerModel(std::string name, int num_cores, PiecewiseLinearCurve utilization_to_watts);

  // Sets the current total core utilization (clamped to [0, num_cores]).
  void SetUtilization(double total_core_utilization);
  double utilization() const { return utilization_; }

  int num_cores() const { return num_cores_; }

  double PowerWatts() const override;
  std::string PowerName() const override { return name_; }

  double IdleWatts() const { return curve_.Evaluate(0.0); }
  double PeakWatts() const { return curve_.Evaluate(static_cast<double>(num_cores_)); }
  const PiecewiseLinearCurve& curve() const { return curve_; }

 private:
  std::string name_;
  int num_cores_;
  PiecewiseLinearCurve curve_;
  double utilization_ = 0.0;
};

// ---- Calibrated presets (anchors from the paper; see EXPERIMENTS.md) ----

// Intel Core i7-6700K 4-core server (§4.1 base setup), per application.
// Idle 39 W; memcached peak 1 Mpps at ~115 W (Fig 3a).
PiecewiseLinearCurve I7MemcachedCurve();
// libpaxos uses one core; peak 178 Kmsg/s; at the 150 Kpps crossover the
// server draws ~49 W, matching P4xos-in-server (Fig 3b).
PiecewiseLinearCurve I7LibpaxosCurve();
// DPDK constantly polls: "power consumption ... is high even under low load,
// and remains almost constant" (§4.3).
PiecewiseLinearCurve I7DpdkCurve();
// NSD DNS server: 956 Kqps peak at about twice Emu's 48 W (§4.4), crossover
// below 200 Kpps.
PiecewiseLinearCurve I7NsdCurve();
// Synthetic no-I/O workload used for generic hosts / background load.
PiecewiseLinearCurve I7SyntheticCurve();

// Dual-socket Xeon E5-2660 v4 (2 x 14 cores, §7): idle 56 W, one busy core
// 91 W, +1..2 W per extra core, 134 W all-cores, 86 W at 10 % of one core.
PiecewiseLinearCurve XeonE52660SyntheticCurve();

// Single-socket Xeon E5-2637 v4 (§5.4): idle 83 W without a NIC.
PiecewiseLinearCurve XeonE52637IdleCurve();

// Factory helpers.
CpuPowerModel MakeI7Server(const std::string& name, PiecewiseLinearCurve curve);
CpuPowerModel MakeXeonE52660Server(const std::string& name);

}  // namespace incod

#endif  // INCOD_SRC_POWER_CPU_POWER_H_
