#include "src/power/ledger.h"

#include <stdexcept>

namespace incod {

const char* ModulePowerStateName(ModulePowerState state) {
  switch (state) {
    case ModulePowerState::kActive:
      return "active";
    case ModulePowerState::kIdle:
      return "idle";
    case ModulePowerState::kClockGated:
      return "clock_gated";
    case ModulePowerState::kReset:
      return "reset";
    case ModulePowerState::kPowerGated:
      return "power_gated";
  }
  return "?";
}

ModulePowerSpec MakeModuleSpec(const std::string& name, double active_watts,
                               double static_fraction, double reset_fraction) {
  ModulePowerSpec spec;
  spec.name = name;
  spec.active_watts = active_watts;
  spec.idle_watts = active_watts;
  spec.clock_gated_watts = active_watts * static_fraction;
  spec.reset_watts = active_watts * reset_fraction;
  return spec;
}

PowerLedger::PowerLedger(std::string name) : name_(std::move(name)) {}

size_t PowerLedger::AddModule(ModulePowerSpec spec, ModulePowerState initial) {
  for (const auto& e : modules_) {
    if (e.spec.name == spec.name) {
      throw std::invalid_argument("PowerLedger: duplicate module " + spec.name);
    }
  }
  modules_.push_back(Entry{std::move(spec), initial});
  return modules_.size() - 1;
}

const PowerLedger::Entry& PowerLedger::Find(const std::string& module) const {
  for (const auto& e : modules_) {
    if (e.spec.name == module) {
      return e;
    }
  }
  throw std::out_of_range("PowerLedger: no module " + module);
}

PowerLedger::Entry& PowerLedger::Find(const std::string& module) {
  return const_cast<Entry&>(static_cast<const PowerLedger*>(this)->Find(module));
}

bool PowerLedger::HasModule(const std::string& module) const {
  for (const auto& e : modules_) {
    if (e.spec.name == module) {
      return true;
    }
  }
  return false;
}

void PowerLedger::SetState(const std::string& module, ModulePowerState state) {
  Find(module).state = state;
}

void PowerLedger::SetStateAll(ModulePowerState state) {
  for (auto& e : modules_) {
    e.state = state;
  }
}

ModulePowerState PowerLedger::GetState(const std::string& module) const {
  return Find(module).state;
}

double PowerLedger::WattsFor(const Entry& e) {
  switch (e.state) {
    case ModulePowerState::kActive:
      return e.spec.active_watts;
    case ModulePowerState::kIdle:
      return e.spec.idle_watts;
    case ModulePowerState::kClockGated:
      return e.spec.clock_gated_watts;
    case ModulePowerState::kReset:
      return e.spec.reset_watts;
    case ModulePowerState::kPowerGated:
      return 0.0;
  }
  return 0.0;
}

double PowerLedger::ModuleWatts(const std::string& module) const {
  return WattsFor(Find(module));
}

double PowerLedger::PowerWatts() const {
  double sum = 0;
  for (const auto& e : modules_) {
    sum += WattsFor(e);
  }
  return sum;
}

std::vector<std::string> PowerLedger::ModuleNames() const {
  std::vector<std::string> names;
  names.reserve(modules_.size());
  for (const auto& e : modules_) {
    names.push_back(e.spec.name);
  }
  return names;
}

}  // namespace incod
