// Core power-model interfaces.
//
// Every powered component (server CPU, FPGA board, switch ASIC, PSU) exposes
// its instantaneous draw through PowerSource; meters integrate over simulated
// time. This mirrors the paper's methodology of measuring wall power with an
// SHW-3A meter while sweeping offered load (§4.1).
#ifndef INCOD_SRC_POWER_POWER_SOURCE_H_
#define INCOD_SRC_POWER_POWER_SOURCE_H_

#include <string>

namespace incod {

class PowerSource {
 public:
  virtual ~PowerSource() = default;

  // Instantaneous power draw in watts at the current simulation state.
  virtual double PowerWatts() const = 0;

  // Human-readable name for reports.
  virtual std::string PowerName() const = 0;
};

}  // namespace incod

#endif  // INCOD_SRC_POWER_POWER_SOURCE_H_
