// Power metering and energy integration.
//
// WallPowerMeter plays the role of the SHW-3A watt-hour meter in the paper's
// testbed: it samples a set of PowerSources on a fixed period, records the
// time series, and integrates energy trapezoidally. RaplCounter emulates the
// CPU's running-average-power-limit energy MSRs that the host-controlled
// on-demand controller reads (§9.1).
#ifndef INCOD_SRC_POWER_METER_H_
#define INCOD_SRC_POWER_METER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/power/power_source.h"
#include "src/sim/simulation.h"
#include "src/stats/timeseries.h"

namespace incod {

class WallPowerMeter {
 public:
  // Samples every `period` once Start() is called.
  WallPowerMeter(Simulation& sim, SimDuration period = Milliseconds(1));
  // Cancels the pending self-rescheduled sample so a meter can be
  // destroyed while its simulation keeps running.
  ~WallPowerMeter();

  // Attaches a source. Not owned; must outlive the meter.
  void Attach(const PowerSource* source);

  // Starts periodic sampling (idempotent).
  void Start();
  void Stop();

  // Total watts across attached sources right now.
  double InstantWatts() const;

  // Integrated energy in joules since Start() (trapezoidal rule).
  double EnergyJoules() const { return energy_joules_; }

  // Mean power between two times, from the recorded series.
  double MeanWatts(SimTime from, SimTime to) const;

  const TimeSeries& series() const { return series_; }

 private:
  void Sample();

  Simulation& sim_;
  SimDuration period_;
  std::vector<const PowerSource*> sources_;
  TimeSeries series_{"wall_watts"};
  bool running_ = false;
  bool stop_requested_ = false;
  uint64_t pending_sample_ = 0;  // Event id of the next Sample (0: none).
  double energy_joules_ = 0;
  double last_watts_ = 0;
  SimTime last_sample_at_ = 0;
  bool has_sample_ = false;
};

// Emulated RAPL package-energy counter. Reads an arbitrary watts callback
// (typically the CPU package part of a server's power model) and exposes a
// monotonically increasing energy count in microjoules, like
// /sys/class/powercap/intel-rapl.
class RaplCounter {
 public:
  RaplCounter(Simulation& sim, std::function<double()> package_watts,
              SimDuration update_period = Milliseconds(1));

  void Start();

  // Monotonic energy counter in microjoules (as of the last update tick).
  uint64_t EnergyMicrojoules() const { return energy_uj_; }

  // Average watts between two counter reads taken `interval` apart:
  // convenience wrapper the host controller uses.
  double AverageWattsSince(uint64_t prior_energy_uj, SimDuration interval) const;

 private:
  void Tick();

  Simulation& sim_;
  std::function<double()> package_watts_;
  SimDuration period_;
  bool running_ = false;
  uint64_t energy_uj_ = 0;
  SimTime last_tick_ = 0;
  double last_watts_ = 0;
  bool has_tick_ = false;
};

}  // namespace incod

#endif  // INCOD_SRC_POWER_METER_H_
