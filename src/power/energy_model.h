// §8 energy model: "When to Use In-Network Computing".
//
// Implements the Niccolini et al. decomposition the paper builds on:
//   E = Pd(f) * Td(W, f) + Ps * Ts + Pi * Ti                      (eq. 1)
// plus the tipping-point analysis: offload when the software system's energy
// exceeds the in-network system's, i.e. find R with Pd_N(R) = Pd_S(R).
#ifndef INCOD_SRC_POWER_ENERGY_MODEL_H_
#define INCOD_SRC_POWER_ENERGY_MODEL_H_

#include <functional>
#include <optional>

namespace incod {

// One deployment's power profile as a function of offered packet rate R
// (packets/second). `dynamic_watts(R)` is power above idle attributable to
// processing; `idle_watts` is Pi; `sleep_watts`/`sleep_seconds` model the
// transition term Ps*Ts (zero for devices that never sleep).
struct EnergyProfile {
  std::function<double(double)> dynamic_watts;  // Pd(R) - Pi, as a function of rate.
  double idle_watts = 0;                        // Pi
  double sleep_watts = 0;                       // Ps
  double sleep_seconds = 0;                     // Ts
};

// Energy (joules) to process `packets` at rate R plus `idle_seconds` of idle
// time, per eq. 1. Td = packets / R.
double EnergyJoules(const EnergyProfile& profile, double packets, double rate,
                    double idle_seconds);

// Finds the smallest rate R in [lo, hi] where the network deployment's total
// power is <= the software deployment's, by bisection on the difference
// (assumes the difference changes sign at most once, which holds for the
// monotone curves in this study). Returns nullopt if the network deployment
// never wins on [lo, hi].
std::optional<double> TippingPointRate(const std::function<double(double)>& software_watts,
                                       const std::function<double(double)>& network_watts,
                                       double lo, double hi, double tolerance = 1.0);

// §8's second question: for a programmable device already forwarding traffic
// (Pi_N == Pi_S), only the dynamic parts matter. Convenience overload taking
// EnergyProfiles and comparing Pd curves.
std::optional<double> TippingPointRate(const EnergyProfile& software,
                                       const EnergyProfile& network, double lo, double hi,
                                       double tolerance = 1.0);

}  // namespace incod

#endif  // INCOD_SRC_POWER_ENERGY_MODEL_H_
