// Power-supply-unit efficiency model.
//
// The paper includes PSU overheads in its measurements ("including overheads,
// e.g., power supply unit", §4). Standalone accelerator cards carry their own
// PSU (§4.3: "the platforms require power supply, management and programming
// interfaces"); servers amortize one PSU over everything inside the box.
#ifndef INCOD_SRC_POWER_PSU_H_
#define INCOD_SRC_POWER_PSU_H_

#include "src/power/curve.h"

namespace incod {

class PsuModel {
 public:
  // rated_watts: nameplate capacity. Efficiency follows an 80-PLUS-like
  // curve: poor at tiny fractional load, peaking near 50-100% load.
  explicit PsuModel(double rated_watts);

  // Wall (AC) power needed to deliver `dc_watts` to the load.
  double WallWatts(double dc_watts) const;

  // Efficiency at a given DC load.
  double EfficiencyAt(double dc_watts) const;

  double rated_watts() const { return rated_watts_; }

 private:
  double rated_watts_;
  PiecewiseLinearCurve efficiency_;  // load fraction -> efficiency
};

}  // namespace incod

#endif  // INCOD_SRC_POWER_PSU_H_
