#include "src/power/cpu_power.h"

#include <algorithm>

namespace incod {

CpuPowerModel::CpuPowerModel(std::string name, int num_cores,
                             PiecewiseLinearCurve utilization_to_watts)
    : name_(std::move(name)), num_cores_(num_cores), curve_(std::move(utilization_to_watts)) {}

void CpuPowerModel::SetUtilization(double total_core_utilization) {
  utilization_ =
      std::clamp(total_core_utilization, 0.0, static_cast<double>(num_cores_));
}

double CpuPowerModel::PowerWatts() const { return curve_.Evaluate(utilization_); }

// Calibration anchors. x = total core utilization, y = wall watts.
// Sources: Fig 3(a-c), §4.2-4.4, §7. The i7 curves describe the server
// *without* its network card: NICs and accelerator boards are separate
// PowerSources attached alongside, so the paper's totals compose:
//   software KVS idle = 35 W server + 4 W Mellanox NIC = 39 W (§4.2)
//   LaKe idle         = 35 W server + 24 W NetFPGA board = 59 W (§4.2)
// Derived quantities (crossover rates, on-demand savings) are *not*
// anchored; they emerge from the simulation.

PiecewiseLinearCurve I7MemcachedCurve() {
  return PiecewiseLinearCurve({
      {0.0, 35.0},    // idle server, no cards
      {0.32, 54.5},   // ~80 Kpps: +NIC ~58.5 W, near LaKe's 59 W (Fig 3a)
      {1.0, 68.0},
      {2.0, 84.0},
      {3.0, 98.0},
      {4.0, 111.0},   // 1 Mpps peak, all 4 cores busy (~115 W with NIC)
  });
}

PiecewiseLinearCurve I7LibpaxosCurve() {
  return PiecewiseLinearCurve({
      {0.0, 35.0},
      {0.42, 39.5},
      {0.84, 43.6},   // +4 W NIC ~= P4xos-in-server at ~150 Kmsg/s (Fig 3b)
      {1.0, 48.0},    // 178 Kmsg/s peak (one core)
  });
}

PiecewiseLinearCurve I7DpdkCurve() {
  // The DPDK run-to-completion loop polls continuously; the busy-poll burns
  // close to peak power regardless of offered load (§4.3).
  return PiecewiseLinearCurve({
      {0.0, 35.0},    // process not running
      {1.0, 89.0},    // poll thread active, zero offered load
      {2.0, 94.0},
      {4.0, 99.0},
  });
}

PiecewiseLinearCurve I7NsdCurve() {
  return PiecewiseLinearCurve({
      {0.0, 35.5},
      {0.8, 44.5},    // +4 W NIC crosses Emu DNS below 200 Kqps (§4.4)
      {2.0, 62.0},
      {4.0, 92.0},    // 956 Kqps peak: ~96 W with NIC, 2x Emu DNS (§4.4)
  });
}

PiecewiseLinearCurve I7SyntheticCurve() {
  return PiecewiseLinearCurve({
      {0.0, 35.0},
      {0.5, 51.0},
      {1.0, 62.0},
      {2.0, 81.0},
      {3.0, 97.0},
      {4.0, 110.0},
  });
}

PiecewiseLinearCurve XeonE52660SyntheticCurve() {
  // §7: idle 56 W; "power consumption of the server jumps when even a single
  // core is used, up to 91W"; "even at a low CPU core load, e.g., 10%, the
  // power consumption of the server reaches 86W"; extra cores cost 1-2 W;
  // 134 W under full load of all 28 cores.
  return PiecewiseLinearCurve({
      {0.0, 56.0},
      {0.1, 86.0},
      {1.0, 91.0},
      {2.0, 92.6},
      {4.0, 95.8},
      {8.0, 102.2},
      {14.0, 111.8},
      {21.0, 123.0},
      {28.0, 134.0},
  });
}

PiecewiseLinearCurve XeonE52637IdleCurve() {
  // §5.4: idle 83 W without a NIC; 4 cores.
  return PiecewiseLinearCurve({
      {0.0, 83.0},
      {1.0, 105.0},
      {4.0, 160.0},
  });
}

CpuPowerModel MakeI7Server(const std::string& name, PiecewiseLinearCurve curve) {
  return CpuPowerModel(name, 4, std::move(curve));
}

CpuPowerModel MakeXeonE52660Server(const std::string& name) {
  return CpuPowerModel(name, 28, XeonE52660SyntheticCurve());
}

}  // namespace incod
