// Per-module power ledger for hardware devices.
//
// §5.1 of the paper distinguishes three power-saving techniques available to
// an operator of a fixed platform: clock gating, power gating, and
// deactivating (resetting) modules. The ledger tracks each named module's
// contribution under its current state so that device power is the sum of
// its parts — exactly how Figure 4 decomposes LaKe's consumption.
#ifndef INCOD_SRC_POWER_LEDGER_H_
#define INCOD_SRC_POWER_LEDGER_H_

#include <string>
#include <vector>

#include "src/power/power_source.h"

namespace incod {

enum class ModulePowerState {
  kActive,      // Processing at full activity.
  kIdle,        // Clocked but not processing.
  kClockGated,  // Clock disabled: saves dynamic power only.
  kReset,       // Held in reset: e.g. 40% saving on memory interfaces (§5.1).
  kPowerGated,  // Power removed (or module eliminated from the design): 0 W.
};

const char* ModulePowerStateName(ModulePowerState state);

struct ModulePowerSpec {
  std::string name;
  double active_watts = 0;       // Draw when actively processing.
  double idle_watts = 0;         // Draw when clocked but idle.
  double clock_gated_watts = 0;  // Draw when clock gated (static power remains).
  double reset_watts = 0;        // Draw when held in reset.
};

// Convenience builder: idle == active (typical for always-toggling
// interfaces), clock gating keeps `static_fraction` of power, reset keeps
// `reset_fraction`.
ModulePowerSpec MakeModuleSpec(const std::string& name, double active_watts,
                               double static_fraction, double reset_fraction);

class PowerLedger : public PowerSource {
 public:
  explicit PowerLedger(std::string name);

  // Registers a module; returns its index. Names must be unique.
  size_t AddModule(ModulePowerSpec spec,
                   ModulePowerState initial = ModulePowerState::kIdle);

  void SetState(const std::string& module, ModulePowerState state);
  void SetStateAll(ModulePowerState state);
  ModulePowerState GetState(const std::string& module) const;

  bool HasModule(const std::string& module) const;

  double ModuleWatts(const std::string& module) const;
  double PowerWatts() const override;
  std::string PowerName() const override { return name_; }

  size_t module_count() const { return modules_.size(); }
  std::vector<std::string> ModuleNames() const;

 private:
  struct Entry {
    ModulePowerSpec spec;
    ModulePowerState state;
  };

  static double WattsFor(const Entry& e);
  const Entry& Find(const std::string& module) const;
  Entry& Find(const std::string& module);

  std::string name_;
  std::vector<Entry> modules_;
};

}  // namespace incod

#endif  // INCOD_SRC_POWER_LEDGER_H_
