#include "src/workload/etc_workload.h"

#include <array>
#include <stdexcept>

namespace incod {

namespace {
// Value-size buckets approximating the ETC pool's published distribution:
// a spike of tiny values, bulk below 500 B, and a thin tail to a few KB.
struct ValueBucket {
  uint32_t lo;
  uint32_t hi;
};
constexpr std::array<ValueBucket, 6> kValueBuckets = {{
    {2, 10},       // tiny (counters)
    {11, 100},     // small
    {101, 500},    // bulk of the distribution
    {501, 1000},   //
    {1001, 2048},  //
    {2049, 4096},  // tail
}};
const std::vector<double> kValueWeights = {0.25, 0.30, 0.35, 0.06, 0.03, 0.01};
}  // namespace

EtcWorkload::EtcWorkload(EtcWorkloadConfig config)
    : config_(config),
      popularity_(config.key_population, config.zipf_skew),
      value_buckets_(kValueWeights) {
  if (config_.kvs_service == 0) {
    throw std::invalid_argument("EtcWorkload: kvs_service address required");
  }
  if (config_.get_fraction < 0 || config_.get_fraction > 1) {
    throw std::invalid_argument("EtcWorkload: get_fraction in [0,1]");
  }
}

uint32_t EtcWorkload::SampleValueBytes(Rng& rng) const {
  const ValueBucket& bucket = kValueBuckets[value_buckets_.Sample(rng)];
  return static_cast<uint32_t>(rng.UniformInt(bucket.lo, bucket.hi));
}

KvRequest EtcWorkload::NextRequest(Rng& rng) const {
  KvRequest req;
  req.key = popularity_.Sample(rng);
  if (rng.Bernoulli(config_.get_fraction)) {
    req.op = KvOp::kGet;
  } else {
    req.op = KvOp::kSet;
    req.value_bytes = SampleValueBytes(rng);
  }
  return req;
}

RequestFactory EtcWorkload::MakeFactory() const {
  // Copy `this` state by value pieces used; the workload object must outlive
  // the client, so capture by pointer for the distributions.
  return [this](NodeId src, uint64_t id, SimTime now, Rng& rng) {
    const KvRequest req = NextRequest(rng);
    return MakeKvRequestPacket(src, config_.kvs_service, req, id, now);
  };
}

}  // namespace incod
