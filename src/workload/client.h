// Generic open-loop load client (OSNT / mutilate stand-in).
//
// Sends application requests produced by a RequestFactory at the configured
// arrival process, matches responses by request id, and records end-to-end
// latency and completion-rate time series. Used for the KVS and DNS sweeps;
// Paxos has its own client with retry semantics (paxos/paxos_client.h).
#ifndef INCOD_SRC_WORKLOAD_CLIENT_H_
#define INCOD_SRC_WORKLOAD_CLIENT_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/net/flow_control.h"
#include "src/net/link.h"
#include "src/net/packet.h"
#include "src/sim/simulation.h"
#include "src/stats/counters.h"
#include "src/stats/histogram.h"
#include "src/stats/timeseries.h"
#include "src/workload/arrival.h"

namespace incod {

// Builds the next request packet. `id` is the unique request id the client
// uses for matching; implementations must store it in packet.id.
using RequestFactory = std::function<Packet(NodeId src, uint64_t id, SimTime now, Rng& rng)>;

struct LoadClientConfig {
  std::string name = "client";
  NodeId node = 100;
  SimDuration rate_bucket = Milliseconds(100);  // Completion-series bucket.
  // Outstanding requests are abandoned (counted as lost) after this long.
  SimDuration loss_timeout = Seconds(1);
  // DCQCN sender rate control: requests are still *generated* on the
  // arrival schedule (RNG stream identity is preserved), but transmission
  // is paced by the rate machine, which reacts to CNPs from receivers and
  // holds while the uplink is PFC-congested. Queueing at the source shows
  // up as end-to-end latency — overload becomes slowdown, not loss.
  DcqcnConfig dcqcn;
};

class LoadClient : public PacketSink, public FlowListener {
 public:
  LoadClient(Simulation& sim, LoadClientConfig config, std::unique_ptr<ArrivalProcess> arrival,
             RequestFactory factory);

  void SetUplink(Link* link) {
    uplink_ = link;
    if (dcqcn_ != nullptr) {
      dcqcn_->AttachUplink(link, this);
    }
    if (link != nullptr && link->config().flow.pfc) {
      link->SetFlowListener(this, this);
    }
  }

  void Start();
  void StopAt(SimTime at) { stop_at_ = at; }

  void Receive(Packet packet) override;
  std::string SinkName() const override { return config_.name; }

  // FlowListener: our own uplink's transmit backlog crossed a watermark.
  // Holds/releases the DCQCN pacer so the source queues instead of piling
  // into the paused link queue.
  void OnLinkCongestion(Link* link, bool congested) override;

  // The DCQCN rate machine (nullptr unless config.dcqcn.enabled).
  const DcqcnRateController* dcqcn() const { return dcqcn_.get(); }

  uint64_t sent() const { return sent_.value(); }
  uint64_t received() const { return received_.value(); }
  uint64_t lost() const { return lost_.value(); }
  size_t outstanding() const { return outstanding_.size(); }
  double LossFraction() const;

  const Histogram& latency() const { return latency_; }
  // Mutable access for windowed sampling (benches reset it per interval).
  Histogram& mutable_latency() { return latency_; }
  const TimeSeries& completion_rate() const { return completion_series_; }
  ArrivalProcess& arrival() { return *arrival_; }

  // Resets measurement state (latency, counters) without stopping traffic;
  // used after warm-up phases.
  void ResetStats();

 private:
  void SendNext();
  void RollBucket();
  void SweepTimeouts();

  Simulation& sim_;
  LoadClientConfig config_;
  std::unique_ptr<ArrivalProcess> arrival_;
  RequestFactory factory_;
  Link* uplink_ = nullptr;
  SimTime stop_at_ = INT64_MAX;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, SimTime> outstanding_;
  Counter sent_;
  Counter received_;
  Counter lost_;
  Histogram latency_;
  TimeSeries completion_series_{"completions_per_sec"};
  uint64_t bucket_completions_ = 0;
  Rng rng_;
  std::unique_ptr<DcqcnRateController> dcqcn_;
};

}  // namespace incod

#endif  // INCOD_SRC_WORKLOAD_CLIENT_H_
