// Generic open-loop load client (OSNT / mutilate stand-in).
//
// Sends application requests produced by a RequestFactory at the configured
// arrival process, matches responses by request id, and records end-to-end
// latency and completion-rate time series. Used for the KVS and DNS sweeps;
// Paxos has its own client with retry semantics (paxos/paxos_client.h).
#ifndef INCOD_SRC_WORKLOAD_CLIENT_H_
#define INCOD_SRC_WORKLOAD_CLIENT_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/net/link.h"
#include "src/net/packet.h"
#include "src/sim/simulation.h"
#include "src/stats/counters.h"
#include "src/stats/histogram.h"
#include "src/stats/timeseries.h"
#include "src/workload/arrival.h"

namespace incod {

// Builds the next request packet. `id` is the unique request id the client
// uses for matching; implementations must store it in packet.id.
using RequestFactory = std::function<Packet(NodeId src, uint64_t id, SimTime now, Rng& rng)>;

struct LoadClientConfig {
  std::string name = "client";
  NodeId node = 100;
  SimDuration rate_bucket = Milliseconds(100);  // Completion-series bucket.
  // Outstanding requests are abandoned (counted as lost) after this long.
  SimDuration loss_timeout = Seconds(1);
};

class LoadClient : public PacketSink {
 public:
  LoadClient(Simulation& sim, LoadClientConfig config, std::unique_ptr<ArrivalProcess> arrival,
             RequestFactory factory);

  void SetUplink(Link* link) { uplink_ = link; }

  void Start();
  void StopAt(SimTime at) { stop_at_ = at; }

  void Receive(Packet packet) override;
  std::string SinkName() const override { return config_.name; }

  uint64_t sent() const { return sent_.value(); }
  uint64_t received() const { return received_.value(); }
  uint64_t lost() const { return lost_.value(); }
  size_t outstanding() const { return outstanding_.size(); }
  double LossFraction() const;

  const Histogram& latency() const { return latency_; }
  // Mutable access for windowed sampling (benches reset it per interval).
  Histogram& mutable_latency() { return latency_; }
  const TimeSeries& completion_rate() const { return completion_series_; }
  ArrivalProcess& arrival() { return *arrival_; }

  // Resets measurement state (latency, counters) without stopping traffic;
  // used after warm-up phases.
  void ResetStats();

 private:
  void SendNext();
  void RollBucket();
  void SweepTimeouts();

  Simulation& sim_;
  LoadClientConfig config_;
  std::unique_ptr<ArrivalProcess> arrival_;
  RequestFactory factory_;
  Link* uplink_ = nullptr;
  SimTime stop_at_ = INT64_MAX;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, SimTime> outstanding_;
  Counter sent_;
  Counter received_;
  Counter lost_;
  Histogram latency_;
  TimeSeries completion_series_{"completions_per_sec"};
  uint64_t bucket_completions_ = 0;
  Rng rng_;
};

}  // namespace incod

#endif  // INCOD_SRC_WORKLOAD_CLIENT_H_
