// DNS query workload: request factory over a synthetic zone.
#ifndef INCOD_SRC_WORKLOAD_DNS_WORKLOAD_H_
#define INCOD_SRC_WORKLOAD_DNS_WORKLOAD_H_

#include <string>

#include "src/dns/dns_message.h"
#include "src/dns/zone.h"
#include "src/workload/client.h"

namespace incod {

struct DnsWorkloadConfig {
  NodeId dns_service = 0;
  size_t zone_size = 10000;
  std::string zone_suffix = "bench.example";
  // Fraction of queries for names absent from the zone (NXDOMAIN path).
  double miss_fraction = 0.0;
  double zipf_skew = 0.9;  // Query popularity over the zone.
};

// Builds a RequestFactory producing A-record queries (wire-encodable
// DnsMessage payloads) against a zone laid out by Zone::FillSynthetic.
RequestFactory MakeDnsRequestFactory(const DnsWorkloadConfig& config);

}  // namespace incod

#endif  // INCOD_SRC_WORKLOAD_DNS_WORKLOAD_H_
