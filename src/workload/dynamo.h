// Facebook Dynamo power-trace synthesis and variance analysis (§9.3).
//
// Dynamo's published numbers anchor this module: rack-level power variation
// at the 99th percentile is 12.8 % over 3 s and 26.6 % over 30 s (median
// < 5 %); per-application 60 s variation is 9.2 % median / 26.2 % p99 for
// caching and 37.2 % / 62.2 % for web. §9.3's conclusion: low power variance
// over the scheduling period makes in-network computing safe; high variance
// makes on-demand shifting "incorrect or inefficient". We synthesize power
// traces as an AR(1) process and implement the windowed variation analysis.
#ifndef INCOD_SRC_WORKLOAD_DYNAMO_H_
#define INCOD_SRC_WORKLOAD_DYNAMO_H_

#include <cstdint>
#include <vector>

#include "src/sim/random.h"

namespace incod {

struct PowerTraceConfig {
  double mean_watts = 1000;    // Rack-level scale.
  double sigma_watts = 25;     // Innovation magnitude.
  double ar1_coefficient = 0.97;  // Temporal correlation (0..1).
  double sample_period_seconds = 1.0;
  uint64_t num_samples = 3600;
};

// Presets matched to the §9.3 discussion.
PowerTraceConfig DynamoCachingTraceConfig();  // Low variance (cache tier).
PowerTraceConfig DynamoWebTraceConfig();      // High variance (web tier).

std::vector<double> SynthesizePowerTrace(const PowerTraceConfig& config, Rng& rng);

struct PowerVariationStats {
  double median = 0;  // Median windowed variation, as a fraction of mean.
  double p99 = 0;     // 99th percentile.
};

// Sliding-window variation: (max - min) / window mean, computed over every
// window of `window_seconds`, then summarized as median / p99. This is the
// Dynamo metric the paper quotes.
PowerVariationStats AnalyzePowerVariation(const std::vector<double>& trace_watts,
                                          double sample_period_seconds,
                                          double window_seconds);

// §9.3's safety rule: a workload is safe for (static) in-network placement
// when its p99 variation over the scheduling period is under `threshold`.
bool SafeForInNetworkPlacement(const PowerVariationStats& stats, double threshold = 0.30);

}  // namespace incod

#endif  // INCOD_SRC_WORKLOAD_DYNAMO_H_
