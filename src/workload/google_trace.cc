#include "src/workload/google_trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace incod {

double DiurnalDensity(const GoogleTraceConfig& config, int64_t at_seconds) {
  if (config.diurnal_amplitude <= 0 || config.diurnal_period_seconds <= 0) {
    return 1.0;
  }
  const double phase = 2.0 * M_PI * static_cast<double>(at_seconds) /
                       static_cast<double>(config.diurnal_period_seconds);
  return 1.0 + config.diurnal_amplitude * std::sin(phase - M_PI / 2.0);
}

namespace {

// Start time with the diurnal density over [0, latest_start], via rejection
// against the (bounded) density peak. Deterministic given the rng stream;
// with amplitude 0 this is a single uniform draw — the historical stream.
int64_t DrawStartSeconds(const GoogleTraceConfig& config, Rng& rng,
                         int64_t latest_start) {
  if (config.diurnal_amplitude <= 0 || config.diurnal_period_seconds <= 0 ||
      latest_start <= 0) {
    return rng.UniformInt(0, latest_start);
  }
  const double peak = 1.0 + config.diurnal_amplitude;
  for (;;) {
    const int64_t candidate = rng.UniformInt(0, latest_start);
    if (rng.UniformDouble(0.0, peak) <= DiurnalDensity(config, candidate)) {
      return candidate;
    }
  }
}

}  // namespace

std::vector<TraceTask> SynthesizeGoogleTrace(const GoogleTraceConfig& config, Rng& rng) {
  if (config.num_nodes == 0 || config.num_tasks == 0) {
    throw std::invalid_argument("SynthesizeGoogleTrace: empty config");
  }
  if (config.diurnal_amplitude < 0 || config.diurnal_amplitude > 1) {
    throw std::invalid_argument("SynthesizeGoogleTrace: amplitude in [0, 1]");
  }
  std::vector<TraceTask> tasks;
  tasks.reserve(config.num_tasks);
  for (uint64_t i = 0; i < config.num_tasks; ++i) {
    TraceTask t;
    t.task_id = i + 1;
    t.node = static_cast<uint32_t>(rng.UniformInt(0, config.num_nodes - 1));
    const bool long_job = rng.Bernoulli(config.long_job_fraction);
    if (long_job) {
      t.duration_seconds =
          rng.UniformInt(config.long_job_min_seconds, config.long_job_max_seconds);
      t.cpu_cores = std::max(0.01, rng.Normal(config.long_job_cpu_mean, 0.25));
    } else {
      t.duration_seconds =
          rng.UniformInt(config.short_job_min_seconds, config.short_job_max_seconds);
      t.cpu_cores = std::max(0.01, rng.Normal(config.short_job_cpu_mean, 0.06));
    }
    t.cpu_cores = std::min(t.cpu_cores, 4.0);
    const int64_t latest_start = std::max<int64_t>(
        0, config.horizon_seconds - t.duration_seconds);
    t.start_seconds = DrawStartSeconds(config, rng, latest_start);
    tasks.push_back(t);
  }
  return tasks;
}

OffloadCandidateStats AnalyzeOffloadCandidates(const std::vector<TraceTask>& tasks,
                                               uint32_t num_nodes, double cpu_threshold,
                                               int64_t min_duration_seconds,
                                               int64_t sample_window_seconds) {
  OffloadCandidateStats stats;
  if (tasks.empty() || num_nodes == 0) {
    return stats;
  }
  double total_core_seconds = 0;
  double candidate_core_seconds = 0;
  int64_t horizon = 0;
  for (const auto& t : tasks) {
    const double cs = t.cpu_cores * static_cast<double>(t.duration_seconds);
    total_core_seconds += cs;
    horizon = std::max(horizon, t.start_seconds + t.duration_seconds);
    if (t.cpu_cores >= cpu_threshold && t.duration_seconds >= min_duration_seconds) {
      ++stats.candidate_tasks;
      candidate_core_seconds += cs;
    }
  }
  stats.candidate_fraction =
      static_cast<double>(stats.candidate_tasks) / static_cast<double>(tasks.size());
  stats.utilization_share =
      total_core_seconds > 0 ? candidate_core_seconds / total_core_seconds : 0;

  // Per-node candidate core pressure: total candidate core-seconds divided
  // by (nodes x horizon) gives the mean number of candidate cores
  // concurrently busy on a node in any sample window. The window length
  // cancels for this time-average but is kept in the signature to match the
  // trace's 5-minute sampling.
  (void)sample_window_seconds;
  if (horizon > 0) {
    stats.mean_candidate_cores_per_node =
        candidate_core_seconds /
        (static_cast<double>(num_nodes) * static_cast<double>(horizon));
  }
  return stats;
}

double LongJobUtilizationShare(const std::vector<TraceTask>& tasks, int64_t min_seconds) {
  double total = 0;
  double long_share = 0;
  for (const auto& t : tasks) {
    const double cs = t.cpu_cores * static_cast<double>(t.duration_seconds);
    total += cs;
    if (t.duration_seconds >= min_seconds) {
      long_share += cs;
    }
  }
  return total > 0 ? long_share / total : 0;
}

}  // namespace incod
