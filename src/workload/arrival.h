// Arrival processes for open-loop load generation.
//
// The paper drives load with OSNT at finely controlled constant rates (§4.1)
// and with a mutilate client using the Facebook "ETC" arrival distribution
// for the transition experiment (§9.2). We provide constant, Poisson, and
// on/off-modulated arrivals.
#ifndef INCOD_SRC_WORKLOAD_ARRIVAL_H_
#define INCOD_SRC_WORKLOAD_ARRIVAL_H_

#include <memory>

#include "src/sim/random.h"
#include "src/sim/time.h"

namespace incod {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  // Time until the next arrival.
  virtual SimDuration NextGap(Rng& rng) = 0;

  // Current target rate (events/second), for introspection.
  virtual double TargetRate() const = 0;
};

// Evenly spaced arrivals (OSNT-style precise rate control).
class ConstantArrival : public ArrivalProcess {
 public:
  explicit ConstantArrival(double rate_per_second);

  SimDuration NextGap(Rng& rng) override;
  double TargetRate() const override { return rate_; }

  void SetRate(double rate_per_second);

 private:
  double rate_;
  SimDuration gap_;
};

// Memoryless arrivals at a given mean rate.
class PoissonArrival : public ArrivalProcess {
 public:
  explicit PoissonArrival(double rate_per_second);

  SimDuration NextGap(Rng& rng) override;
  double TargetRate() const override { return rate_; }

  void SetRate(double rate_per_second);

 private:
  double rate_;
};

// Alternates between a high-rate and a low-rate Poisson phase; used for the
// bursty on-demand experiments.
class OnOffArrival : public ArrivalProcess {
 public:
  OnOffArrival(double on_rate, double off_rate, SimDuration on_duration,
               SimDuration off_duration);

  SimDuration NextGap(Rng& rng) override;
  double TargetRate() const override;

 private:
  double on_rate_;
  double off_rate_;
  SimDuration on_duration_;
  SimDuration off_duration_;
  SimDuration phase_elapsed_ = 0;
  bool on_ = true;
};

}  // namespace incod

#endif  // INCOD_SRC_WORKLOAD_ARRIVAL_H_
