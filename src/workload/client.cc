#include "src/workload/client.h"

#include <stdexcept>
#include <utility>
#include <vector>

namespace incod {

LoadClient::LoadClient(Simulation& sim, LoadClientConfig config,
                       std::unique_ptr<ArrivalProcess> arrival, RequestFactory factory)
    : sim_(sim),
      config_(std::move(config)),
      arrival_(std::move(arrival)),
      factory_(std::move(factory)),
      rng_(sim.rng().Fork()) {
  if (arrival_ == nullptr) {
    throw std::invalid_argument("LoadClient: null arrival process");
  }
  if (factory_ == nullptr) {
    throw std::invalid_argument("LoadClient: null request factory");
  }
  if (config_.dcqcn.enabled) {
    dcqcn_ = std::make_unique<DcqcnRateController>(sim_, config_.dcqcn);
  }
}

void LoadClient::Start() {
  SendNext();
  RollBucket();
  SweepTimeouts();
}

void LoadClient::SendNext() {
  if (sim_.Now() >= stop_at_) {
    return;
  }
  sim_.Schedule(arrival_->NextGap(rng_), [this] {
    if (sim_.Now() >= stop_at_) {
      return;
    }
    const uint64_t id = next_id_++;
    Packet pkt = factory_(config_.node, id, sim_.Now(), rng_);
    pkt.src = config_.node;
    pkt.id = id;
    pkt.created_at = sim_.Now();
    outstanding_[id] = sim_.Now();
    sent_.Increment();
    if (uplink_ == nullptr) {
      throw std::logic_error("LoadClient: no uplink");
    }
    if (dcqcn_ != nullptr) {
      dcqcn_->Submit(std::move(pkt));
    } else {
      uplink_->Send(this, std::move(pkt));
    }
    SendNext();
  });
}

void LoadClient::RollBucket() {
  sim_.Schedule(config_.rate_bucket, [this] {
    completion_series_.Append(
        sim_.Now(),
        static_cast<double>(bucket_completions_) / ToSeconds(config_.rate_bucket));
    bucket_completions_ = 0;
    if (sim_.Now() < stop_at_) {
      RollBucket();
    }
  });
}

void LoadClient::SweepTimeouts() {
  sim_.Schedule(config_.loss_timeout, [this] {
    const SimTime cutoff = sim_.Now() - config_.loss_timeout;
    std::vector<uint64_t> expired;
    for (const auto& [id, at] : outstanding_) {
      if (at < cutoff) {
        expired.push_back(id);
      }
    }
    for (uint64_t id : expired) {
      outstanding_.erase(id);
      lost_.Increment();
    }
    if (sim_.Now() < stop_at_) {
      SweepTimeouts();
    }
  });
}

void LoadClient::Receive(Packet packet) {
  if (const auto* ctrl = PayloadIf<ControlMessage>(packet)) {
    if (ctrl->kind == ControlMessage::Kind::kCongestion) {
      // CNP from a receiver: not a response, feed the rate machine.
      if (dcqcn_ != nullptr) {
        dcqcn_->OnCnp();
      }
      return;
    }
  }
  auto it = outstanding_.find(packet.id);
  if (it == outstanding_.end()) {
    return;  // Late or duplicate response.
  }
  received_.Increment();
  ++bucket_completions_;
  latency_.Record(static_cast<uint64_t>(sim_.Now() - it->second));
  outstanding_.erase(it);
}

void LoadClient::OnLinkCongestion(Link* link, bool congested) {
  (void)link;
  if (dcqcn_ != nullptr) {
    dcqcn_->SetUplinkCongested(congested);
  }
}

double LoadClient::LossFraction() const {
  const uint64_t total = sent_.value();
  return total == 0 ? 0.0 : static_cast<double>(lost_.value()) / static_cast<double>(total);
}

void LoadClient::ResetStats() {
  sent_.Reset();
  received_.Reset();
  lost_.Reset();
  latency_.Reset();
  bucket_completions_ = 0;
}

}  // namespace incod
