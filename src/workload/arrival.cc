#include "src/workload/arrival.h"

#include <stdexcept>

namespace incod {

ConstantArrival::ConstantArrival(double rate_per_second) : rate_(0), gap_(0) {
  SetRate(rate_per_second);
}

void ConstantArrival::SetRate(double rate_per_second) {
  if (rate_per_second <= 0) {
    throw std::invalid_argument("ConstantArrival: rate must be > 0");
  }
  rate_ = rate_per_second;
  gap_ = SecondsF(1.0 / rate_per_second);
  if (gap_ < 1) {
    gap_ = 1;
  }
}

SimDuration ConstantArrival::NextGap(Rng& rng) {
  (void)rng;
  return gap_;
}

PoissonArrival::PoissonArrival(double rate_per_second) : rate_(0) {
  SetRate(rate_per_second);
}

void PoissonArrival::SetRate(double rate_per_second) {
  if (rate_per_second <= 0) {
    throw std::invalid_argument("PoissonArrival: rate must be > 0");
  }
  rate_ = rate_per_second;
}

SimDuration PoissonArrival::NextGap(Rng& rng) {
  const SimDuration gap = SecondsF(rng.Exponential(1.0 / rate_));
  return gap < 1 ? 1 : gap;
}

OnOffArrival::OnOffArrival(double on_rate, double off_rate, SimDuration on_duration,
                           SimDuration off_duration)
    : on_rate_(on_rate),
      off_rate_(off_rate),
      on_duration_(on_duration),
      off_duration_(off_duration) {
  if (on_rate <= 0 || off_rate <= 0) {
    throw std::invalid_argument("OnOffArrival: rates must be > 0");
  }
  if (on_duration <= 0 || off_duration <= 0) {
    throw std::invalid_argument("OnOffArrival: durations must be > 0");
  }
}

double OnOffArrival::TargetRate() const { return on_ ? on_rate_ : off_rate_; }

SimDuration OnOffArrival::NextGap(Rng& rng) {
  const double rate = on_ ? on_rate_ : off_rate_;
  SimDuration gap = SecondsF(rng.Exponential(1.0 / rate));
  if (gap < 1) {
    gap = 1;
  }
  phase_elapsed_ += gap;
  const SimDuration phase_len = on_ ? on_duration_ : off_duration_;
  if (phase_elapsed_ >= phase_len) {
    phase_elapsed_ = 0;
    on_ = !on_;
  }
  return gap;
}

}  // namespace incod
