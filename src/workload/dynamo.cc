#include "src/workload/dynamo.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "src/stats/histogram.h"

namespace incod {

PowerTraceConfig DynamoCachingTraceConfig() {
  PowerTraceConfig config;
  config.mean_watts = 1000;
  config.sigma_watts = 14;
  config.ar1_coefficient = 0.965;
  config.num_samples = 7200;
  return config;
}

PowerTraceConfig DynamoWebTraceConfig() {
  PowerTraceConfig config;
  config.mean_watts = 1000;
  config.sigma_watts = 60;
  config.ar1_coefficient = 0.94;
  config.num_samples = 7200;
  return config;
}

std::vector<double> SynthesizePowerTrace(const PowerTraceConfig& config, Rng& rng) {
  if (config.num_samples == 0) {
    throw std::invalid_argument("SynthesizePowerTrace: num_samples must be > 0");
  }
  if (config.ar1_coefficient < 0 || config.ar1_coefficient >= 1) {
    throw std::invalid_argument("SynthesizePowerTrace: ar1 in [0,1)");
  }
  std::vector<double> trace;
  trace.reserve(config.num_samples);
  double deviation = 0;
  for (uint64_t i = 0; i < config.num_samples; ++i) {
    deviation = config.ar1_coefficient * deviation +
                rng.Normal(0.0, config.sigma_watts);
    // Power cannot go negative; clamp far excursions.
    trace.push_back(std::max(0.0, config.mean_watts + deviation));
  }
  return trace;
}

PowerVariationStats AnalyzePowerVariation(const std::vector<double>& trace_watts,
                                          double sample_period_seconds,
                                          double window_seconds) {
  PowerVariationStats stats;
  if (trace_watts.empty() || sample_period_seconds <= 0 || window_seconds <= 0) {
    return stats;
  }
  const size_t window = std::max<size_t>(
      1, static_cast<size_t>(window_seconds / sample_period_seconds + 0.5));
  if (trace_watts.size() < window) {
    return stats;
  }
  // Variations feed an HDR-style log-bucketed histogram (fixed-point, parts
  // per million) instead of a sorted sample vector, so the quantile summary
  // is O(n) in samples rather than O(n log n) — this runs per sweep point in
  // the trace benches. 10 significant bits keeps the quantile error ~0.1 %.
  constexpr double kPpm = 1e6;
  Histogram variations(UINT64_C(1) << 24, 10);  // Covers variation up to 16.7x.
  // Monotonic deques for sliding min/max, plus a running sum.
  std::deque<size_t> maxq;
  std::deque<size_t> minq;
  double sum = 0;
  for (size_t i = 0; i < trace_watts.size(); ++i) {
    sum += trace_watts[i];
    while (!maxq.empty() && trace_watts[maxq.back()] <= trace_watts[i]) {
      maxq.pop_back();
    }
    maxq.push_back(i);
    while (!minq.empty() && trace_watts[minq.back()] >= trace_watts[i]) {
      minq.pop_back();
    }
    minq.push_back(i);
    if (i + 1 >= window) {
      const size_t lo = i + 1 - window;
      while (maxq.front() < lo) {
        maxq.pop_front();
      }
      while (minq.front() < lo) {
        minq.pop_front();
      }
      const double mean = sum / static_cast<double>(window);
      if (mean > 0) {
        const double variation =
            (trace_watts[maxq.front()] - trace_watts[minq.front()]) / mean;
        variations.Record(static_cast<uint64_t>(std::llround(variation * kPpm)));
      }
      sum -= trace_watts[lo];
    }
  }
  if (variations.count() == 0) {
    return stats;
  }
  stats.median = static_cast<double>(variations.P50()) / kPpm;
  stats.p99 = static_cast<double>(variations.P99()) / kPpm;
  return stats;
}

bool SafeForInNetworkPlacement(const PowerVariationStats& stats, double threshold) {
  return stats.p99 <= threshold;
}

}  // namespace incod
