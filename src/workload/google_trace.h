// Google cluster-trace synthesis and the §9.3 offload-candidate analysis.
//
// The paper mines the 2011 Google cluster trace for transient effects: "90%
// of resource utilization is by jobs longer than two hours, though these
// jobs represent only 5% of the total number of jobs"; tasks using >= 10 %
// of a core for >= 5 minutes are offload candidates (1.39 M unique tasks),
// but on average "every node within the cluster has 7.7 (normalized) CPU
// cores running such tasks within every five minutes sample period",
// diminishing the saving — which motivates offloading as load *diminishes*.
// We synthesize traces with those published statistics and implement the
// analysis itself, which is the reproducible artifact.
#ifndef INCOD_SRC_WORKLOAD_GOOGLE_TRACE_H_
#define INCOD_SRC_WORKLOAD_GOOGLE_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/sim/random.h"

namespace incod {

struct TraceTask {
  uint64_t task_id = 0;
  uint32_t node = 0;
  int64_t start_seconds = 0;
  int64_t duration_seconds = 0;
  double cpu_cores = 0;  // Normalized CPU usage while running.
};

struct GoogleTraceConfig {
  uint64_t num_tasks = 200000;
  uint32_t num_nodes = 1000;
  int64_t horizon_seconds = 24 * 3600;
  // Short/long job split: ~5 % of jobs are long (>= 2 h) but drive ~90 % of
  // utilization.
  double long_job_fraction = 0.05;
  int64_t long_job_min_seconds = 2 * 3600;
  int64_t long_job_max_seconds = 20 * 3600;
  int64_t short_job_min_seconds = 10;
  int64_t short_job_max_seconds = 1800;
  double long_job_cpu_mean = 0.55;
  double short_job_cpu_mean = 0.08;
  // Diurnal load shape: task start times follow the density
  // 1 + A * sin(2*pi*(t/period) - pi/2), i.e. a trough at t = 0 and a peak
  // half a period in. A = 0 (default) keeps the historical uniform starts
  // (and draws nothing extra from the rng). 0 <= A <= 1.
  double diurnal_amplitude = 0;
  int64_t diurnal_period_seconds = 24 * 3600;
};

// Deterministic synthetic trace with the configured statistics.
std::vector<TraceTask> SynthesizeGoogleTrace(const GoogleTraceConfig& config, Rng& rng);

// Task-start density multiplier at `at_seconds` under the config's diurnal
// shape (1.0 everywhere when the amplitude is 0). Lets tests and scenarios
// reason about where the synthesized day peaks.
double DiurnalDensity(const GoogleTraceConfig& config, int64_t at_seconds);

struct OffloadCandidateStats {
  uint64_t candidate_tasks = 0;      // >= cpu_threshold for >= min_duration.
  double candidate_fraction = 0;     // Of all tasks.
  double utilization_share = 0;      // Core-seconds share of candidates.
  // Mean number of candidate cores busy per node per sample window.
  double mean_candidate_cores_per_node = 0;
};

// §9.3's analysis: which tasks could be offloaded to the network, and how
// many of them contend per node (limiting the power benefit).
OffloadCandidateStats AnalyzeOffloadCandidates(const std::vector<TraceTask>& tasks,
                                               uint32_t num_nodes,
                                               double cpu_threshold = 0.10,
                                               int64_t min_duration_seconds = 300,
                                               int64_t sample_window_seconds = 300);

// Share of total core-seconds consumed by jobs at least `min_seconds` long
// (validates the "90 % by long jobs" property).
double LongJobUtilizationShare(const std::vector<TraceTask>& tasks, int64_t min_seconds);

}  // namespace incod

#endif  // INCOD_SRC_WORKLOAD_GOOGLE_TRACE_H_
