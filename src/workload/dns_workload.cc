#include "src/workload/dns_workload.h"

#include <memory>
#include <stdexcept>

namespace incod {

RequestFactory MakeDnsRequestFactory(const DnsWorkloadConfig& config) {
  if (config.dns_service == 0) {
    throw std::invalid_argument("MakeDnsRequestFactory: dns_service required");
  }
  if (config.zone_size == 0) {
    throw std::invalid_argument("MakeDnsRequestFactory: zone_size must be > 0");
  }
  auto popularity = std::make_shared<ZipfDistribution>(config.zone_size, config.zipf_skew);
  return [config, popularity](NodeId src, uint64_t id, SimTime now, Rng& rng) {
    DnsMessage query;
    query.id = static_cast<uint16_t>(id & 0xffff);
    DnsQuestion q;
    if (config.miss_fraction > 0 && rng.Bernoulli(config.miss_fraction)) {
      q.name = "missing" + std::to_string(popularity->Sample(rng)) + ".absent.example";
    } else {
      q.name = Zone::SyntheticName(popularity->Sample(rng), config.zone_suffix);
    }
    query.questions.push_back(std::move(q));
    Packet pkt;
    pkt.src = src;
    pkt.dst = config.dns_service;
    pkt.proto = AppProto::kDns;
    pkt.size_bytes = DnsWireBytes(query);
    pkt.id = id;
    pkt.created_at = now;
    pkt.payload = std::move(query);
    return pkt;
  };
}

}  // namespace incod
