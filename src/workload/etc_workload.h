// Facebook "ETC" key-value workload model (Atikoglu et al., SIGMETRICS'12).
//
// The paper uses the ETC arrival distribution for its Fig 6 transition
// experiment and cites its key statistics in §5.3 (10^9-10^11 unique keys
// per hour, 3-35 % of keys unique). We model the published shape: Zipfian
// key popularity, small keys, predominantly sub-500 B values, and a
// GET-dominated mix (~30:1 GET:SET for ETC).
#ifndef INCOD_SRC_WORKLOAD_ETC_WORKLOAD_H_
#define INCOD_SRC_WORKLOAD_ETC_WORKLOAD_H_

#include <memory>

#include "src/kvs/kv_protocol.h"
#include "src/sim/random.h"
#include "src/workload/client.h"

namespace incod {

struct EtcWorkloadConfig {
  uint64_t key_population = 1'000'000;
  double zipf_skew = 0.99;
  double get_fraction = 0.97;  // ~30:1 GET:SET.
  NodeId kvs_service = 0;      // Destination address of the KVS.
};

class EtcWorkload {
 public:
  explicit EtcWorkload(EtcWorkloadConfig config);

  // Draws the next request.
  KvRequest NextRequest(Rng& rng) const;

  // Value-size distribution per the ETC pool: mostly tiny, long tail.
  uint32_t SampleValueBytes(Rng& rng) const;

  // Adapts this workload to the LoadClient interface.
  RequestFactory MakeFactory() const;

  const EtcWorkloadConfig& config() const { return config_; }

 private:
  EtcWorkloadConfig config_;
  ZipfDistribution popularity_;
  DiscreteDistribution value_buckets_;
};

}  // namespace incod

#endif  // INCOD_SRC_WORKLOAD_ETC_WORKLOAD_H_
