// AppRegistry: name -> per-placement application factories.
//
// The registry is how scenarios say *what* runs without hard-coding *how*
// it is built for a given substrate: one name ("kvs", "dns",
// "paxos-leader") covers every placement the family supports, and
// Create(name, placement, env) returns the matching unified App —
// MemcachedServer, LaKe, or NetCache for "kvs" depending on where it lands.
// TestbedBuilder/ScenarioSpec consume this, so a new app plugs into every
// testbed, bench, and migration scenario by registering one factory.
#ifndef INCOD_SRC_APP_APP_REGISTRY_H_
#define INCOD_SRC_APP_APP_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/app/app.h"
#include "src/dns/emu_dns.h"
#include "src/dns/nsd_server.h"
#include "src/dns/switch_dns.h"
#include "src/dns/zone.h"
#include "src/kvs/lake.h"
#include "src/kvs/memcached_server.h"
#include "src/kvs/netcache.h"
#include "src/paxos/p4xos.h"
#include "src/paxos/software_roles.h"

namespace incod {

// Resources and per-family knobs a factory may need. Callers fill only the
// fields the app family uses; factories throw std::invalid_argument when a
// required resource is missing.
struct AppFactoryEnv {
  // Shared resources.
  const Zone* zone = nullptr;                     // DNS family.
  const PaxosGroupConfig* paxos_group = nullptr;  // Paxos family.
  // Service/role address offload placements answer on (0: unused).
  NodeId service = 0;
  // Leader ballot or acceptor id for Paxos roles.
  uint32_t paxos_role_id = 1;

  // Per-family construction knobs (defaults match the paper's calibration).
  MemcachedConfig memcached{};
  LakeConfig lake{};
  KvSwitchCacheConfig netcache{};
  NsdConfig nsd{};
  EmuDnsConfig emu_dns{};
  DnsSwitchConfig switch_dns{};
  PaxosSoftwareConfig paxos_software{};
  P4xosFpgaConfig p4xos{};
  SimDuration paxos_learner_gap_timeout = Milliseconds(50);

  AppFactoryEnv() { paxos_software = LibpaxosConfig(); }
};

class AppRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<App>(PlacementKind, const AppFactoryEnv&)>;

  // Registers (or replaces) a family. `placements` lists the substrates the
  // factory can build for.
  void Register(const std::string& name, std::vector<PlacementKind> placements,
                Factory factory);

  bool Has(const std::string& name) const;
  bool Supports(const std::string& name, PlacementKind placement) const;
  std::vector<std::string> Names() const;  // Sorted.
  std::vector<PlacementKind> Placements(const std::string& name) const;

  // Builds the app for the placement; throws std::invalid_argument for an
  // unknown name or unsupported placement.
  std::unique_ptr<App> Create(const std::string& name, PlacementKind placement,
                              const AppFactoryEnv& env) const;

  // Create + downcast, for callers that keep concrete-typed ownership.
  template <typename T>
  std::unique_ptr<T> CreateAs(const std::string& name, PlacementKind placement,
                              const AppFactoryEnv& env) const {
    std::unique_ptr<App> app = Create(name, placement, env);
    T* typed = dynamic_cast<T*>(app.get());
    if (typed == nullptr) {
      throw std::logic_error("AppRegistry: " + name + " on " +
                             PlacementKindName(placement) +
                             " is not the requested concrete type");
    }
    app.release();
    return std::unique_ptr<T>(typed);
  }

  // The process-wide registry with the built-in families ("kvs", "dns",
  // "paxos-leader", "paxos-acceptor", "paxos-learner") pre-registered.
  static AppRegistry& Global();

 private:
  struct Entry {
    std::vector<PlacementKind> placements;
    Factory factory;
  };

  std::map<std::string, Entry> entries_;
};

}  // namespace incod

#endif  // INCOD_SRC_APP_APP_REGISTRY_H_
