#include "src/app/smartnic_app.h"

#include <stdexcept>

namespace incod {

SmartNicHostedApp::SmartNicHostedApp(std::unique_ptr<App> inner,
                                     SmartNicPlacementProfile profile)
    : inner_(std::move(inner)), profile_(profile) {
  if (inner_ == nullptr) {
    throw std::invalid_argument("SmartNicHostedApp: null inner app");
  }
  if (profile_.resource_slots < 1) {
    throw std::invalid_argument("SmartNicHostedApp: " + inner_->AppName() +
                                " needs >= 1 resource slot");
  }
}

OffloadPlacementProfile SmartNicHostedApp::OffloadProfile() const {
  // The inner app's power modules and dynamic watts describe the firmware;
  // the wrapper overlays the per-arch SmartNIC datapath description.
  OffloadPlacementProfile profile = inner_->OffloadProfile();
  profile.smartnic = profile_;
  return profile;
}

}  // namespace incod
