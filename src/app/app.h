// The unified, placement-agnostic application contract.
//
// The paper's thesis is that *where* an application runs — host software, an
// FPGA NIC core, or a switch-ASIC program — is a placement decision, not a
// property of the code (§9). incod::App is the one interface every
// application implements, whatever substrate hosts it:
//
//   * identity       — protocol tag + name, used by classifiers and the
//                      AppRegistry;
//   * placement      — the app advertises which substrates it supports and
//                      a profile per substrate: a CPU cost model for hosts,
//                      a pipeline spec + power modules + dynamic watts for
//                      offload targets (§5);
//   * packet path    — HandlePacket() against a narrow AppContext
//                      (reply / punt / egress-observe) instead of raw
//                      Server*/FpgaNic* back-pointers, so the same logic is
//                      hostable anywhere;
//   * typed state    — SnapshotState()/RestoreState() (app_state.h), the
//                      contract that lets a generic StateTransferMigrator
//                      move any registered app between placements.
//
// Substrates host apps through AppContext implementations: Server (host
// worker threads), FpgaNic (main logical core), and SwitchHostedApp
// (pipeline program, app/switch_app.h).
#ifndef INCOD_SRC_APP_APP_H_
#define INCOD_SRC_APP_APP_H_

#include <optional>
#include <string>
#include <vector>

#include "src/app/app_state.h"
#include "src/net/packet.h"
#include "src/power/ledger.h"
#include "src/sim/time.h"

namespace incod {

class Simulation;

// The substrates an application can be placed on (§4-§6, §10 of the paper).
enum class PlacementKind {
  kHost,        // Software on server cores behind a network stack.
  kFpgaNic,     // Main logical core in an FPGA NIC shell (NetFPGA SUME).
  kSwitchAsic,  // Program in a programmable switch pipeline (Tofino).
  kSmartNic,    // Offload engine of a commodity SmartNIC (§10 survey).
};

const char* PlacementKindName(PlacementKind placement);

// The four SmartNIC architectures the §10 survey compares. Part of the
// placement vocabulary (not the device model): an application's SmartNIC
// profile is per-arch, because the same firmware sustains very different
// fractions of a board's peak rate on wimpy SoC cores vs a fixed-function
// ASIC vs an FPGA region.
enum class SmartNicArch {
  kFpga,
  kAsic,
  kAsicPlusFpga,
  kSoc,
};

const char* SmartNicArchName(SmartNicArch arch);

// Host-substrate profile: how the server schedules and accounts the app.
// The CPU cost model itself is App::CpuTimePerRequest (it depends on the
// request).
struct HostPlacementProfile {
  int num_threads = 1;
  // If set, the app only receives packets addressed to this service address
  // (several apps of one protocol may share a host, e.g. Paxos roles).
  std::optional<NodeId> service_address;
};

// Throughput model of an offloaded application core.
struct FpgaPipelineSpec {
  // Parallel processing elements (LaKe PEs). 1 for single-pipeline designs.
  int workers = 1;
  // Initiation interval per worker: one packet accepted every `service` ns.
  // Fully pipelined designs have service << latency.
  SimDuration worker_service = Nanoseconds(100);
  // Constant pipeline traversal latency added to every processed packet.
  SimDuration pipeline_latency = Microseconds(1);
  // Input buffer (packets) ahead of the workers; overflow drops (UDP).
  size_t input_queue_capacity = 512;
};

// SmartNIC-substrate profile (§10): how the app's firmware maps onto each
// of the surveyed architectures. The hosting SmartNic derives the app's
// Mpps ceiling from its preset's peak scaled by the per-arch fraction, and
// enforces the SoC "resource wall" through the slot count.
struct SmartNicPlacementProfile {
  // Sustained fraction of the board's peak Mpps per architecture. FPGA and
  // ASIC+FPGA regions run the same pipeline the NetFPGA placement does;
  // fixed-function ASIC engines may lose some flexibility-dependent speed;
  // SoC cores parse anything but slowly.
  double fpga_mpps_fraction = 1.0;
  double asic_mpps_fraction = 1.0;
  double asic_fpga_mpps_fraction = 1.0;
  double soc_mpps_fraction = 1.0;
  // Engine slots the firmware occupies. SoC boards expose few slots (§10:
  // "SoCs hit the resource wall earlier"), capping concurrent apps.
  int resource_slots = 1;

  double MppsFractionFor(SmartNicArch arch) const;
};

// Offload-substrate profile: what the device needs to admit, time, and
// power-account the app (§5 power modules; §4.3 dynamic watts).
struct OffloadPlacementProfile {
  FpgaPipelineSpec pipeline;
  // Power modules the app adds to the board ledger (logic, memories).
  std::vector<ModulePowerSpec> power_modules;
  // Extra watts at 100 % pipeline utilization, linear in utilization.
  double dynamic_watts_at_capacity = 0.0;
  // Switch placement: fractional power overhead at full load relative to
  // plain L2 forwarding (§6: P4xos <= 2 %).
  double switch_power_overhead_at_full_load = 0.0;
  // SmartNIC placement: per-arch datapath and resource footprint (§10).
  SmartNicPlacementProfile smartnic;
};

// The narrow surface a substrate exposes to a hosted application. Replies
// and punts go through here; the app never sees the hosting device.
class AppContext {
 public:
  virtual ~AppContext() = default;

  virtual Simulation& sim() = 0;
  virtual PlacementKind placement() const = 0;

  // Address replies should carry as their source. 0: the substrate has no
  // own address — apps fall back to the request's destination.
  virtual NodeId self_node() const { return 0; }

  // Emits a reply (or any app-originated packet) toward the network.
  virtual void Reply(Packet packet) = 0;

  // Passes the packet onward to the fallback placement: a device punts to
  // its host across PCIe, a switch program lets the pipeline keep
  // forwarding, a host OS drops (there is nothing below it).
  virtual void Punt(Packet packet) = 0;
};

class App {
 public:
  virtual ~App() = default;

  // --- Identity ---
  virtual AppProto proto() const = 0;
  virtual std::string AppName() const = 0;

  // --- Placement advertisement ---
  virtual bool SupportsPlacement(PlacementKind placement) const = 0;
  virtual HostPlacementProfile HostProfile() const { return {}; }
  virtual OffloadPlacementProfile OffloadProfile() const { return {}; }

  // Host substrate cost model: pure CPU time consumed by one request,
  // excluding network-stack costs (the server adds those per its stack
  // configuration). Offload-only apps keep the default.
  virtual SimDuration CpuTimePerRequest(const Packet& packet) const {
    (void)packet;
    return 0;
  }

  // Classifier predicate: should this packet enter the app (when active)?
  virtual bool Matches(const Packet& packet) const { return packet.proto == proto(); }

  // --- Packet path ---
  // Application logic. Replies via ctx.Reply(), passes through via
  // ctx.Punt(). The context outlives the call (delayed replies may capture
  // it).
  virtual void HandlePacket(AppContext& ctx, Packet packet) = 0;

  // Observes host-originated packets of this protocol on their way out to
  // the network (non-consuming). LaKe uses this to fill its caches from
  // host replies after a miss.
  virtual void OnHostEgress(AppContext& ctx, const Packet& packet) {
    (void)ctx;
    (void)packet;
  }

  // --- Lifecycle hooks (activation, §9.2 park housekeeping) ---
  virtual void OnActivate() {}
  virtual void OnDeactivate() {}
  // The hosting device's external memories were put into reset: on-board
  // state is lost (LaKe must re-warm its caches, §9.2).
  virtual void OnMemoryReset() {}

  // --- Typed state contract (app_state.h) ---
  // Default: the app carries no transferable state.
  virtual AppState SnapshotState() const { return AppState{proto(), AppName(), {}}; }
  virtual void RestoreState(const AppState& state) { (void)state; }

  // The context of the substrate currently hosting this app. Set by the
  // substrate when the app is bound/installed. Virtual so wrapper apps
  // (SmartNicHostedApp) can propagate the binding to the app they adapt.
  AppContext* context() const { return context_; }
  virtual void BindContext(AppContext* context) { context_ = context; }

 private:
  AppContext* context_ = nullptr;
};

}  // namespace incod

#endif  // INCOD_SRC_APP_APP_H_
