#include "src/app/app_state.h"

namespace incod {

namespace {

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v & 0xff));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v >> 16));
  PutU16(out, static_cast<uint16_t>(v & 0xffff));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v >> 32));
  PutU32(out, static_cast<uint32_t>(v & 0xffffffff));
}

void PutString(std::vector<uint8_t>& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void PutKvEntries(std::vector<uint8_t>& out, const std::vector<KvEntry>& entries) {
  PutU32(out, static_cast<uint32_t>(entries.size()));
  for (const KvEntry& e : entries) {
    PutU64(out, e.key);
    PutU32(out, e.value_bytes);
  }
}

}  // namespace

std::vector<KvEntry> KvEntriesFromPairs(
    const std::vector<std::pair<uint64_t, uint32_t>>& pairs) {
  std::vector<KvEntry> entries;
  entries.reserve(pairs.size());
  for (const auto& [key, value_bytes] : pairs) {
    entries.push_back(KvEntry{key, value_bytes});
  }
  return entries;
}

std::vector<std::pair<uint64_t, uint32_t>> KvPairsFromEntries(
    const std::vector<KvEntry>& entries) {
  std::vector<std::pair<uint64_t, uint32_t>> pairs;
  pairs.reserve(entries.size());
  for (const KvEntry& e : entries) {
    pairs.emplace_back(e.key, e.value_bytes);
  }
  return pairs;
}

std::vector<uint8_t> SerializeAppState(const AppState& state) {
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(state.proto));
  out.push_back(static_cast<uint8_t>(state.data.index()));
  if (const KvAppState* kv = std::get_if<KvAppState>(&state.data)) {
    PutKvEntries(out, kv->primary);
    PutKvEntries(out, kv->secondary);
  } else if (const PaxosAppState* px = std::get_if<PaxosAppState>(&state.data)) {
    PutU16(out, px->ballot);
    PutU32(out, px->next_instance);
    PutU32(out, px->acceptor_id);
    PutU32(out, px->last_voted_instance);
    PutU32(out, static_cast<uint32_t>(px->slots.size()));
    for (const PaxosAcceptorSlot& slot : px->slots) {
      PutU32(out, slot.instance);
      PutU16(out, slot.rnd);
      PutU16(out, slot.vrnd);
      PutU64(out, slot.value);
      PutU64(out, slot.client);
    }
  } else if (const DnsAppState* dns = std::get_if<DnsAppState>(&state.data)) {
    PutU32(out, static_cast<uint32_t>(dns->records.size()));
    for (const DnsZoneEntry& r : dns->records) {
      PutString(out, r.name);
      PutU32(out, r.ipv4);
      PutU32(out, r.ttl);
    }
  }
  return out;
}

}  // namespace incod
