// Hosting a unified App in the switch-ASIC pipeline.
//
// SwitchHostedApp adapts incod::App onto the SwitchProgram surface the
// Tofino model executes (§6): the pipeline hands every packet to Process();
// the adapter builds a pipeline AppContext and runs the app's HandlePacket.
// Context semantics on this substrate:
//   * Reply — transmitted from the pipeline at line rate (the packet
//     terminates in the switch; the paper notes this halves application
//     packets through the switch);
//   * Punt  — the packet continues through L2 forwarding unchanged (the
//     "fallback placement" is whatever host the route points at).
// A packet the app neither replies to nor punts is consumed (dropped in
// the pipeline). Non-matching packets never enter the app.
#ifndef INCOD_SRC_APP_SWITCH_APP_H_
#define INCOD_SRC_APP_SWITCH_APP_H_

#include <optional>
#include <string>

#include "src/app/app.h"
#include "src/device/switch_asic.h"

namespace incod {

class SwitchHostedApp : public App, public SwitchProgram {
 public:
  // --- SwitchProgram surface (implemented once, for every app) ---
  std::string ProgramName() const override { return AppName(); }
  double PowerOverheadAtFullLoad() const override {
    if (!switch_overhead_.has_value()) {
      switch_overhead_ = OffloadProfile().switch_power_overhead_at_full_load;
    }
    return *switch_overhead_;
  }
  bool Process(SwitchAsic& sw, Packet& packet) final;

  // --- App surface defaults for this substrate ---
  bool SupportsPlacement(PlacementKind placement) const override {
    return placement == PlacementKind::kSwitchAsic;
  }

 private:
  class PipelineContext : public AppContext {
   public:
    Simulation& sim() override;
    PlacementKind placement() const override { return PlacementKind::kSwitchAsic; }
    void Reply(Packet packet) override;
    void Punt(Packet packet) override;

    SwitchAsic* asic = nullptr;
    Packet* slot = nullptr;  // The pipeline's packet, valid during Process().
    bool punted = false;
  };

  PipelineContext ctx_;
  mutable std::optional<double> switch_overhead_;
};

}  // namespace incod

#endif  // INCOD_SRC_APP_SWITCH_APP_H_
