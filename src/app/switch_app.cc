#include "src/app/switch_app.h"

#include <stdexcept>
#include <utility>

namespace incod {

Simulation& SwitchHostedApp::PipelineContext::sim() {
  if (asic == nullptr) {
    throw std::logic_error("SwitchHostedApp: context used before first packet");
  }
  return asic->sim();
}

void SwitchHostedApp::PipelineContext::Reply(Packet packet) {
  asic->TransmitFromPipeline(std::move(packet));
}

void SwitchHostedApp::PipelineContext::Punt(Packet packet) {
  if (slot == nullptr) {
    // Punt outside Process() (e.g. from a delayed event): nothing to hand
    // back to the pipeline — forward explicitly through the switch.
    asic->Receive(std::move(packet));
    return;
  }
  punted = true;
  *slot = std::move(packet);
}

bool SwitchHostedApp::Process(SwitchAsic& sw, Packet& packet) {
  if (!Matches(packet)) {
    return false;
  }
  ctx_.asic = &sw;
  if (context() != &ctx_) {
    BindContext(&ctx_);
  }
  // Reply() can synchronously re-enter this program (TransmitFromPipeline
  // runs the emitted packet through the pipeline again), so the per-packet
  // context fields must be saved and restored around the call — the inner
  // pass must not clobber this pass's punt verdict.
  Packet* const prev_slot = ctx_.slot;
  const bool prev_punted = ctx_.punted;
  ctx_.slot = &packet;
  ctx_.punted = false;
  HandlePacket(ctx_, std::move(packet));
  const bool punted = ctx_.punted;
  ctx_.slot = prev_slot;
  ctx_.punted = prev_punted;
  // Consumed unless the app explicitly passed the packet through.
  return !punted;
}

}  // namespace incod
