#include "src/app/app_registry.h"

#include <algorithm>
#include <iterator>
#include <memory>
#include <utility>

#include "src/app/smartnic_app.h"

namespace incod {

namespace {

// Per-arch SmartNIC firmware profiles (§10). The FPGA-NIC implementations
// provide the protocol logic; these describe how that firmware maps onto
// each surveyed SmartNIC engine: FPGA regions run the NetFPGA pipeline
// as-is, fixed-function ASIC engines lose some flexibility-dependent speed,
// and SoC cores parse anything but slowly. LaKe's two cache levels occupy
// two slots, so a resource-walled SoC board fits exactly one KVS firmware.
SmartNicPlacementProfile KvsSmartNicProfile() {
  SmartNicPlacementProfile profile;
  profile.asic_mpps_fraction = 0.75;
  profile.soc_mpps_fraction = 0.35;
  profile.resource_slots = 2;
  return profile;
}

SmartNicPlacementProfile DnsSmartNicProfile() {
  SmartNicPlacementProfile profile;
  profile.soc_mpps_fraction = 0.5;
  return profile;
}

SmartNicPlacementProfile PaxosSmartNicProfile() {
  SmartNicPlacementProfile profile;
  profile.asic_mpps_fraction = 0.9;
  profile.soc_mpps_fraction = 0.6;
  return profile;
}

[[noreturn]] void ThrowMissing(const char* family, const char* what) {
  throw std::invalid_argument(std::string("AppRegistry: ") + family +
                              " factory needs " + what);
}

const Zone* RequireZone(const AppFactoryEnv& env) {
  if (env.zone == nullptr) {
    ThrowMissing("dns", "env.zone");
  }
  return env.zone;
}

PaxosGroupConfig RequireGroup(const AppFactoryEnv& env) {
  if (env.paxos_group == nullptr) {
    ThrowMissing("paxos", "env.paxos_group");
  }
  return *env.paxos_group;
}

std::unique_ptr<App> MakeKvs(PlacementKind placement, const AppFactoryEnv& env) {
  switch (placement) {
    case PlacementKind::kHost:
      return std::make_unique<MemcachedServer>(env.memcached);
    case PlacementKind::kFpgaNic:
      return std::make_unique<LakeCache>(env.lake);
    case PlacementKind::kSwitchAsic: {
      KvSwitchCacheConfig config = env.netcache;
      if (env.service != 0) {
        config.kvs_service = env.service;
      }
      return std::make_unique<KvSwitchCache>(config);
    }
    case PlacementKind::kSmartNic:
      return std::make_unique<SmartNicHostedApp>(
          std::make_unique<LakeCache>(env.lake), KvsSmartNicProfile());
  }
  return nullptr;
}

std::unique_ptr<App> MakeDns(PlacementKind placement, const AppFactoryEnv& env) {
  switch (placement) {
    case PlacementKind::kHost:
      return std::make_unique<NsdServer>(RequireZone(env), env.nsd);
    case PlacementKind::kFpgaNic:
      return std::make_unique<EmuDns>(RequireZone(env), env.emu_dns);
    case PlacementKind::kSwitchAsic: {
      DnsSwitchConfig config = env.switch_dns;
      if (env.service != 0) {
        config.dns_service = env.service;
      }
      return std::make_unique<DnsSwitchProgram>(RequireZone(env), config);
    }
    case PlacementKind::kSmartNic:
      return std::make_unique<SmartNicHostedApp>(
          std::make_unique<EmuDns>(RequireZone(env), env.emu_dns),
          DnsSmartNicProfile());
  }
  return nullptr;
}

std::unique_ptr<App> MakePaxosRole(P4xosRole role, PlacementKind placement,
                                   const AppFactoryEnv& env) {
  PaxosGroupConfig group = RequireGroup(env);
  switch (placement) {
    case PlacementKind::kHost:
      if (role == P4xosRole::kLeader) {
        return std::make_unique<SoftwareLeader>(
            std::move(group), static_cast<uint16_t>(env.paxos_role_id),
            env.paxos_software);
      }
      return std::make_unique<SoftwareAcceptor>(std::move(group), env.paxos_role_id,
                                                env.paxos_software);
    case PlacementKind::kFpgaNic:
      return std::make_unique<P4xosFpgaApp>(role, std::move(group), env.paxos_role_id,
                                            env.service, env.p4xos);
    case PlacementKind::kSwitchAsic:
      return std::make_unique<P4xosSwitchProgram>(role, std::move(group),
                                                  env.paxos_role_id, env.service);
    case PlacementKind::kSmartNic:
      return std::make_unique<SmartNicHostedApp>(
          std::make_unique<P4xosFpgaApp>(role, std::move(group), env.paxos_role_id,
                                         env.service, env.p4xos),
          PaxosSmartNicProfile());
  }
  return nullptr;
}

constexpr PlacementKind kAllPlacements[] = {
    PlacementKind::kHost, PlacementKind::kFpgaNic, PlacementKind::kSwitchAsic,
    PlacementKind::kSmartNic};

}  // namespace

void AppRegistry::Register(const std::string& name,
                           std::vector<PlacementKind> placements, Factory factory) {
  if (name.empty() || factory == nullptr || placements.empty()) {
    throw std::invalid_argument("AppRegistry::Register: bad registration for " + name);
  }
  entries_[name] = Entry{std::move(placements), std::move(factory)};
}

bool AppRegistry::Has(const std::string& name) const {
  return entries_.count(name) != 0;
}

bool AppRegistry::Supports(const std::string& name, PlacementKind placement) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return false;
  }
  const auto& placements = it->second.placements;
  return std::find(placements.begin(), placements.end(), placement) != placements.end();
}

std::vector<std::string> AppRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    names.push_back(name);
  }
  return names;
}

std::vector<PlacementKind> AppRegistry::Placements(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("AppRegistry: unknown app " + name);
  }
  return it->second.placements;
}

std::unique_ptr<App> AppRegistry::Create(const std::string& name,
                                         PlacementKind placement,
                                         const AppFactoryEnv& env) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("AppRegistry: unknown app " + name);
  }
  if (!Supports(name, placement)) {
    throw std::invalid_argument("AppRegistry: " + name + " does not support the " +
                                PlacementKindName(placement) + " placement");
  }
  std::unique_ptr<App> app = it->second.factory(placement, env);
  if (app == nullptr) {
    throw std::logic_error("AppRegistry: factory for " + name + " returned null");
  }
  return app;
}

AppRegistry& AppRegistry::Global() {
  static AppRegistry* registry = [] {
    const std::vector<PlacementKind> all(std::begin(kAllPlacements),
                                         std::end(kAllPlacements));
    auto* r = new AppRegistry();
    r->Register("kvs", all, MakeKvs);
    r->Register("dns", all, MakeDns);
    r->Register("paxos-leader", all,
                [](PlacementKind placement, const AppFactoryEnv& env) {
                  return MakePaxosRole(P4xosRole::kLeader, placement, env);
                });
    r->Register("paxos-acceptor", all,
                [](PlacementKind placement, const AppFactoryEnv& env) {
                  return MakePaxosRole(P4xosRole::kAcceptor, placement, env);
                });
    r->Register("paxos-learner", {PlacementKind::kHost},
                [](PlacementKind placement, const AppFactoryEnv& env)
                    -> std::unique_ptr<App> {
                  (void)placement;
                  return std::make_unique<SoftwareLearner>(
                      RequireGroup(env), env.paxos_software,
                      env.paxos_learner_gap_timeout);
                });
    return r;
  }();
  return *registry;
}

}  // namespace incod
