#include "src/app/app_registry.h"

#include <algorithm>
#include <utility>

namespace incod {

namespace {

[[noreturn]] void ThrowMissing(const char* family, const char* what) {
  throw std::invalid_argument(std::string("AppRegistry: ") + family +
                              " factory needs " + what);
}

const Zone* RequireZone(const AppFactoryEnv& env) {
  if (env.zone == nullptr) {
    ThrowMissing("dns", "env.zone");
  }
  return env.zone;
}

PaxosGroupConfig RequireGroup(const AppFactoryEnv& env) {
  if (env.paxos_group == nullptr) {
    ThrowMissing("paxos", "env.paxos_group");
  }
  return *env.paxos_group;
}

std::unique_ptr<App> MakeKvs(PlacementKind placement, const AppFactoryEnv& env) {
  switch (placement) {
    case PlacementKind::kHost:
      return std::make_unique<MemcachedServer>(env.memcached);
    case PlacementKind::kFpgaNic:
      return std::make_unique<LakeCache>(env.lake);
    case PlacementKind::kSwitchAsic: {
      KvSwitchCacheConfig config = env.netcache;
      if (env.service != 0) {
        config.kvs_service = env.service;
      }
      return std::make_unique<KvSwitchCache>(config);
    }
  }
  return nullptr;
}

std::unique_ptr<App> MakeDns(PlacementKind placement, const AppFactoryEnv& env) {
  switch (placement) {
    case PlacementKind::kHost:
      return std::make_unique<NsdServer>(RequireZone(env), env.nsd);
    case PlacementKind::kFpgaNic:
      return std::make_unique<EmuDns>(RequireZone(env), env.emu_dns);
    case PlacementKind::kSwitchAsic: {
      DnsSwitchConfig config = env.switch_dns;
      if (env.service != 0) {
        config.dns_service = env.service;
      }
      return std::make_unique<DnsSwitchProgram>(RequireZone(env), config);
    }
  }
  return nullptr;
}

std::unique_ptr<App> MakePaxosRole(P4xosRole role, PlacementKind placement,
                                   const AppFactoryEnv& env) {
  PaxosGroupConfig group = RequireGroup(env);
  switch (placement) {
    case PlacementKind::kHost:
      if (role == P4xosRole::kLeader) {
        return std::make_unique<SoftwareLeader>(
            std::move(group), static_cast<uint16_t>(env.paxos_role_id),
            env.paxos_software);
      }
      return std::make_unique<SoftwareAcceptor>(std::move(group), env.paxos_role_id,
                                                env.paxos_software);
    case PlacementKind::kFpgaNic:
      return std::make_unique<P4xosFpgaApp>(role, std::move(group), env.paxos_role_id,
                                            env.service, env.p4xos);
    case PlacementKind::kSwitchAsic:
      return std::make_unique<P4xosSwitchProgram>(role, std::move(group),
                                                  env.paxos_role_id, env.service);
  }
  return nullptr;
}

constexpr PlacementKind kAllPlacements[] = {
    PlacementKind::kHost, PlacementKind::kFpgaNic, PlacementKind::kSwitchAsic};

}  // namespace

void AppRegistry::Register(const std::string& name,
                           std::vector<PlacementKind> placements, Factory factory) {
  if (name.empty() || factory == nullptr || placements.empty()) {
    throw std::invalid_argument("AppRegistry::Register: bad registration for " + name);
  }
  entries_[name] = Entry{std::move(placements), std::move(factory)};
}

bool AppRegistry::Has(const std::string& name) const {
  return entries_.count(name) != 0;
}

bool AppRegistry::Supports(const std::string& name, PlacementKind placement) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return false;
  }
  const auto& placements = it->second.placements;
  return std::find(placements.begin(), placements.end(), placement) != placements.end();
}

std::vector<std::string> AppRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    names.push_back(name);
  }
  return names;
}

std::vector<PlacementKind> AppRegistry::Placements(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("AppRegistry: unknown app " + name);
  }
  return it->second.placements;
}

std::unique_ptr<App> AppRegistry::Create(const std::string& name,
                                         PlacementKind placement,
                                         const AppFactoryEnv& env) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("AppRegistry: unknown app " + name);
  }
  if (!Supports(name, placement)) {
    throw std::invalid_argument("AppRegistry: " + name + " does not support the " +
                                PlacementKindName(placement) + " placement");
  }
  std::unique_ptr<App> app = it->second.factory(placement, env);
  if (app == nullptr) {
    throw std::logic_error("AppRegistry: factory for " + name + " returned null");
  }
  return app;
}

AppRegistry& AppRegistry::Global() {
  static AppRegistry* registry = [] {
    auto* r = new AppRegistry();
    r->Register("kvs", {kAllPlacements[0], kAllPlacements[1], kAllPlacements[2]},
                MakeKvs);
    r->Register("dns", {kAllPlacements[0], kAllPlacements[1], kAllPlacements[2]},
                MakeDns);
    r->Register("paxos-leader",
                {kAllPlacements[0], kAllPlacements[1], kAllPlacements[2]},
                [](PlacementKind placement, const AppFactoryEnv& env) {
                  return MakePaxosRole(P4xosRole::kLeader, placement, env);
                });
    r->Register("paxos-acceptor",
                {kAllPlacements[0], kAllPlacements[1], kAllPlacements[2]},
                [](PlacementKind placement, const AppFactoryEnv& env) {
                  return MakePaxosRole(P4xosRole::kAcceptor, placement, env);
                });
    r->Register("paxos-learner", {PlacementKind::kHost},
                [](PlacementKind placement, const AppFactoryEnv& env)
                    -> std::unique_ptr<App> {
                  (void)placement;
                  return std::make_unique<SoftwareLearner>(
                      RequireGroup(env), env.paxos_software,
                      env.paxos_learner_gap_timeout);
                });
    return r;
  }();
  return *registry;
}

}  // namespace incod
