// Typed application state snapshots (the unified App state contract).
//
// The paper's on-demand shifts are only transparent when the application's
// state survives (or deliberately does not survive) the move between host
// software and an in-network target (§9.2: LaKe's caches re-warm after a
// gated park; a new Paxos leader re-learns its sequence). AppState captures
// exactly the state each case study carries:
//   * KvAppState    — cache/store contents in LRU order (LaKe L1/L2,
//                     memcached, NetCache register arrays),
//   * PaxosAppState — ballot, next usable instance, and the acceptor's
//                     per-instance vote log,
//   * DnsAppState   — the warm copy of the zone the placement answers from.
// Snapshots are plain data: any placement of the same app family can
// restore another's snapshot, which is what lets a single generic
// StateTransferMigrator replace per-app migration plumbing.
#ifndef INCOD_SRC_APP_APP_STATE_H_
#define INCOD_SRC_APP_APP_STATE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/net/node.h"
#include "src/paxos/paxos_wire.h"

namespace incod {

// --- KVS ---
struct KvEntry {
  uint64_t key = 0;
  uint32_t value_bytes = 0;
};

// Entries are ordered least- to most-recently-used so replaying them with
// Set() reproduces the source store's exact LRU order (bit-identical
// snapshot round trips).
struct KvAppState {
  std::vector<KvEntry> primary;    // Host store / LaKe L1 / switch cache.
  std::vector<KvEntry> secondary;  // LaKe L2 (empty elsewhere).
};

// --- Paxos ---
struct PaxosAcceptorSlot {
  uint32_t instance = 0;
  uint16_t rnd = 0;
  uint16_t vrnd = 0;
  PaxosValue value = kPaxosNoop;
  NodeId client = 0;
};

struct PaxosAppState {
  uint16_t ballot = 0;
  uint32_t next_instance = 1;          // Leader: next usable sequence number.
  uint32_t acceptor_id = 0;
  uint32_t last_voted_instance = 0;
  std::vector<PaxosAcceptorSlot> slots;  // Acceptor vote log, by instance.
};

// --- DNS ---
struct DnsZoneEntry {
  std::string name;
  uint32_t ipv4 = 0;
  uint32_t ttl = 0;
};

// The zone copy the placement answers from, sorted by name (zone-cache
// warmth: a restored placement answers exactly what the source did).
struct DnsAppState {
  std::vector<DnsZoneEntry> records;
};

using AppStateData = std::variant<std::monostate, KvAppState, PaxosAppState, DnsAppState>;

// A typed snapshot of one application's transferable state.
struct AppState {
  AppProto proto = AppProto::kRaw;
  std::string app_name;  // Producer (diagnostics only; not matched on restore).
  AppStateData data;

  bool empty() const { return std::holds_alternative<std::monostate>(data); }
};

// Deterministic byte encoding of a snapshot. Two snapshots of identical
// state serialize to identical bytes — the contract the round-trip tests
// check ("bit-identical").
std::vector<uint8_t> SerializeAppState(const AppState& state);

// Conversions between KvEntry lists and the (key, value_bytes) pairs
// KvStore::SnapshotLru/RestoreLru speak — shared by every KVS placement.
std::vector<KvEntry> KvEntriesFromPairs(
    const std::vector<std::pair<uint64_t, uint32_t>>& pairs);
std::vector<std::pair<uint64_t, uint32_t>> KvPairsFromEntries(
    const std::vector<KvEntry>& entries);

}  // namespace incod

#endif  // INCOD_SRC_APP_APP_STATE_H_
