// Hosting a unified App on a SmartNIC offload engine (§10).
//
// SmartNicHostedApp mirrors SwitchHostedApp for the fourth substrate: it
// adapts an application's packet-processing implementation onto the
// behavioral SmartNic datapath (device/smartnic.h). The inner App supplies
// the protocol logic and typed state — the same implementation the FPGA-NIC
// placement runs, re-targeted at a commodity board's offload engine — while
// the wrapper owns the SmartNIC placement advertisement: it answers
// SupportsPlacement(kSmartNic) only, and overlays the family's per-arch
// SmartNicPlacementProfile on the inner app's OffloadProfile so the hosting
// device can derive the firmware's Mpps ceiling from its preset and charge
// the SoC "resource wall" slots.
//
// Context semantics on this substrate (provided by SmartNic as AppContext):
//   * Reply — transmitted from the board's network port;
//   * Punt  — delivered to the host across PCIe (the fallback placement).
#ifndef INCOD_SRC_APP_SMARTNIC_APP_H_
#define INCOD_SRC_APP_SMARTNIC_APP_H_

#include <memory>
#include <string>
#include <utility>

#include "src/app/app.h"

namespace incod {

class SmartNicHostedApp : public App {
 public:
  // Takes ownership of the implementation; `profile` is the family's
  // per-arch SmartNIC datapath/footprint description.
  SmartNicHostedApp(std::unique_ptr<App> inner, SmartNicPlacementProfile profile);

  // --- Identity (forwarded) ---
  AppProto proto() const override { return inner_->proto(); }
  std::string AppName() const override { return inner_->AppName(); }

  // --- Placement advertisement (owned by the wrapper) ---
  bool SupportsPlacement(PlacementKind placement) const override {
    return placement == PlacementKind::kSmartNic;
  }
  OffloadPlacementProfile OffloadProfile() const override;

  // --- Packet path (forwarded) ---
  bool Matches(const Packet& packet) const override { return inner_->Matches(packet); }
  void HandlePacket(AppContext& ctx, Packet packet) override {
    inner_->HandlePacket(ctx, std::move(packet));
  }
  void OnHostEgress(AppContext& ctx, const Packet& packet) override {
    inner_->OnHostEgress(ctx, packet);
  }

  // --- Lifecycle + typed state (forwarded) ---
  void OnActivate() override { inner_->OnActivate(); }
  void OnDeactivate() override { inner_->OnDeactivate(); }
  void OnMemoryReset() override { inner_->OnMemoryReset(); }
  AppState SnapshotState() const override { return inner_->SnapshotState(); }
  void RestoreState(const AppState& state) override { inner_->RestoreState(state); }

  // The substrate binds the wrapper; implementations that transmit through
  // their stored context (e.g. P4xos roles) need the same binding.
  void BindContext(AppContext* context) override {
    App::BindContext(context);
    inner_->BindContext(context);
  }

  App* inner() { return inner_.get(); }
  const App* inner() const { return inner_.get(); }
  template <typename T>
  T* inner_as() {
    return dynamic_cast<T*>(inner_.get());
  }

 private:
  std::unique_ptr<App> inner_;
  SmartNicPlacementProfile profile_;
};

}  // namespace incod

#endif  // INCOD_SRC_APP_SMARTNIC_APP_H_
