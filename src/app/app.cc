#include "src/app/app.h"

namespace incod {

const char* PlacementKindName(PlacementKind placement) {
  switch (placement) {
    case PlacementKind::kHost:
      return "host";
    case PlacementKind::kFpgaNic:
      return "fpga-nic";
    case PlacementKind::kSwitchAsic:
      return "switch-asic";
  }
  return "?";
}

}  // namespace incod
