#include "src/app/app.h"

namespace incod {

const char* PlacementKindName(PlacementKind placement) {
  switch (placement) {
    case PlacementKind::kHost:
      return "host";
    case PlacementKind::kFpgaNic:
      return "fpga-nic";
    case PlacementKind::kSwitchAsic:
      return "switch-asic";
    case PlacementKind::kSmartNic:
      return "smartnic";
  }
  return "?";
}

const char* SmartNicArchName(SmartNicArch arch) {
  switch (arch) {
    case SmartNicArch::kFpga:
      return "fpga";
    case SmartNicArch::kAsic:
      return "asic";
    case SmartNicArch::kAsicPlusFpga:
      return "asic+fpga";
    case SmartNicArch::kSoc:
      return "soc";
  }
  return "?";
}

double SmartNicPlacementProfile::MppsFractionFor(SmartNicArch arch) const {
  switch (arch) {
    case SmartNicArch::kFpga:
      return fpga_mpps_fraction;
    case SmartNicArch::kAsic:
      return asic_mpps_fraction;
    case SmartNicArch::kAsicPlusFpga:
      return asic_fpga_mpps_fraction;
    case SmartNicArch::kSoc:
      return soc_mpps_fraction;
  }
  return 0.0;
}

}  // namespace incod
