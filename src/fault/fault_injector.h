// Deterministic fault injection.
//
// Production operators buy availability; the paper's offload story assumes
// devices stay alive. The FaultInjector makes failures a first-class,
// replayable part of every scenario: typed fault events — device death
// mid-offload, link down/up flaps, PSU brownout power-cap steps — are
// declared in a FaultPlanSpec and armed as *ordinary simulation events* at
// setup time, so single-queue and sharded runs of the same seed + plan stay
// event-identical (the engine_diff_test contract extends to faulted runs).
//
// Every fired fault is appended to a per-run fault log mirroring
// RackDecisionRecord: tests and benches reconcile their counters against it
// exactly as they do against the orchestrator's decision log.
//
// Registration happens by name (targets, nodes, links), which is what lets
// ScenarioSpec fault plans stay declarative strings. Arm() validates every
// name up front — an unknown target is a configuration bug, not a silent
// no-op.
#ifndef INCOD_SRC_FAULT_FAULT_INJECTOR_H_
#define INCOD_SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/device/offload_target.h"
#include "src/net/link.h"
#include "src/net/packet.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"

namespace incod {

enum class FaultKind {
  kDeviceDeath,  // Kill an offload engine (or a whole node) mid-service.
  kLinkDown,     // Take a cable down: sends refused, in-flight dropped.
  kLinkUp,       // Bring it back up.
  kPsuBrownout,  // Step the rack power cap down (or back up).
};

const char* FaultKindName(FaultKind kind);

// One declared fault. `target` names a registered offload target / node
// (kDeviceDeath), a registered link (kLinkDown/kLinkUp), or is ignored
// (kPsuBrownout, which carries the new cap instead).
struct FaultEventSpec {
  FaultKind kind = FaultKind::kDeviceDeath;
  SimTime at = 0;
  std::string target;
  double power_cap_watts = 0;  // kPsuBrownout only.
};

struct FaultPlanSpec {
  std::vector<FaultEventSpec> events;
};

// Per-run audit record, mirroring RackDecisionRecord: one entry per fired
// fault, in firing order.
struct FaultRecord {
  FaultKind kind;
  SimTime at = 0;
  std::string target;
  double power_cap_watts = 0;
};

class FaultInjector {
 public:
  // `home` is the simulation the fault log lives in (the testbed's home
  // shard); per-entity events run in the sim each entity was registered
  // with, defaulting to home.
  explicit FaultInjector(Simulation& home) : home_(home) {}

  // --- Registration (setup time, before Arm) ---
  void RegisterTarget(const std::string& name, OffloadTarget* target,
                      Simulation* sim = nullptr);
  void RegisterNode(const std::string& name, PacketSink* sink,
                    Simulation* sim = nullptr);
  void RegisterLink(const std::string& name, Link* link);
  // Called (in the home sim) when a kPsuBrownout fires, with the new cap.
  // Read at fire time, so the handler may be set after Arm().
  void SetPowerCapHandler(std::function<void(double)> handler) {
    power_cap_handler_ = std::move(handler);
  }

  // Schedules every event in the plan. Call once, at setup, before the
  // simulation runs; throws std::invalid_argument on an unresolvable name.
  void Arm(const FaultPlanSpec& plan);

  // --- Audit surface ---
  const std::vector<FaultRecord>& fault_log() const { return fault_log_; }
  uint64_t device_deaths() const { return device_deaths_; }
  uint64_t link_down_events() const { return link_down_events_; }
  uint64_t link_up_events() const { return link_up_events_; }
  uint64_t brownouts() const { return brownouts_; }

  // Registered names, for plan generators and diagnostics.
  std::vector<std::string> TargetNames() const;
  std::vector<std::string> LinkNames() const;

 private:
  struct DeathVictim {
    OffloadTarget* target = nullptr;  // Preferred when both are registered.
    PacketSink* sink = nullptr;
    Simulation* sim = nullptr;
  };
  DeathVictim Resolve(const FaultEventSpec& spec) const;
  void Record(const FaultEventSpec& spec);

  Simulation& home_;
  std::map<std::string, std::pair<OffloadTarget*, Simulation*>> targets_;
  std::map<std::string, std::pair<PacketSink*, Simulation*>> nodes_;
  std::map<std::string, Link*> links_;
  std::function<void(double)> power_cap_handler_;
  std::vector<FaultRecord> fault_log_;
  uint64_t device_deaths_ = 0;
  uint64_t link_down_events_ = 0;
  uint64_t link_up_events_ = 0;
  uint64_t brownouts_ = 0;
};

// --- Seeded plan generation (property tests, soak runs) ---

struct RandomFaultPlanConfig {
  SimTime horizon = 0;                // Faults land in (0, horizon].
  double death_probability = 0.5;     // Per target.
  int max_flaps_per_link = 2;         // Paired down -> up, bounded gap.
  SimDuration min_flap_gap = 0;       // 0: horizon / 100.
  SimDuration max_flap_gap = 0;       // 0: horizon / 10.
  int max_brownouts = 2;
  double min_cap_watts = 0;
  double max_cap_watts = 0;           // <= min: no brownouts generated.
};

// Draws a deterministic plan from the rng: each target dies independently,
// each link flaps 0..max times (down always paired with a later up), and
// the power cap steps within [min, max] watts. Same rng state + same name
// lists -> bit-identical plan.
FaultPlanSpec MakeRandomFaultPlan(Rng& rng,
                                  const std::vector<std::string>& target_names,
                                  const std::vector<std::string>& link_names,
                                  const RandomFaultPlanConfig& config);

}  // namespace incod

#endif  // INCOD_SRC_FAULT_FAULT_INJECTOR_H_
