#include "src/fault/fault_injector.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace incod {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeviceDeath:
      return "device-death";
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kLinkUp:
      return "link-up";
    case FaultKind::kPsuBrownout:
      return "psu-brownout";
  }
  return "unknown";
}

void FaultInjector::RegisterTarget(const std::string& name, OffloadTarget* target,
                                   Simulation* sim) {
  if (target == nullptr) {
    throw std::invalid_argument("FaultInjector: null target for " + name);
  }
  targets_[name] = {target, sim};
}

void FaultInjector::RegisterNode(const std::string& name, PacketSink* sink,
                                 Simulation* sim) {
  if (sink == nullptr) {
    throw std::invalid_argument("FaultInjector: null node for " + name);
  }
  nodes_[name] = {sink, sim};
}

void FaultInjector::RegisterLink(const std::string& name, Link* link) {
  if (link == nullptr) {
    throw std::invalid_argument("FaultInjector: null link for " + name);
  }
  links_[name] = link;
}

FaultInjector::DeathVictim FaultInjector::Resolve(const FaultEventSpec& spec) const {
  DeathVictim victim;
  // Offload targets take precedence: killing a registered target models
  // engine death mid-offload (the interesting §9 case); whole-node death is
  // what remains for plain sinks.
  const auto target_it = targets_.find(spec.target);
  if (target_it != targets_.end()) {
    victim.target = target_it->second.first;
    victim.sim = target_it->second.second;
    return victim;
  }
  const auto node_it = nodes_.find(spec.target);
  if (node_it != nodes_.end()) {
    victim.sink = node_it->second.first;
    victim.sim = node_it->second.second;
    return victim;
  }
  throw std::invalid_argument("FaultInjector: unknown device-death target '" +
                              spec.target + "'");
}

void FaultInjector::Record(const FaultEventSpec& spec) {
  fault_log_.push_back(
      FaultRecord{spec.kind, home_.Now(), spec.target, spec.power_cap_watts});
  switch (spec.kind) {
    case FaultKind::kDeviceDeath:
      ++device_deaths_;
      break;
    case FaultKind::kLinkDown:
      ++link_down_events_;
      break;
    case FaultKind::kLinkUp:
      ++link_up_events_;
      break;
    case FaultKind::kPsuBrownout:
      ++brownouts_;
      if (power_cap_handler_) {
        power_cap_handler_(spec.power_cap_watts);
      }
      break;
  }
}

void FaultInjector::Arm(const FaultPlanSpec& plan) {
  for (const FaultEventSpec& spec : plan.events) {
    // Each fault is two ordinary events scheduled now, at setup: the audit
    // record in the home sim, and the application in the sim that owns the
    // victim's state. Fixed times + fixed schedule order keep single-queue
    // and sharded runs event-identical.
    switch (spec.kind) {
      case FaultKind::kDeviceDeath: {
        const DeathVictim victim = Resolve(spec);
        home_.ScheduleAt(spec.at, [this, spec] { Record(spec); });
        Simulation& apply = victim.sim != nullptr ? *victim.sim : home_;
        if (victim.target != nullptr) {
          apply.ScheduleAt(spec.at, [t = victim.target] { t->KillEngine(); });
        } else {
          apply.ScheduleAt(spec.at, [s = victim.sink] { s->SetAlive(false); });
        }
        break;
      }
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp: {
        const auto it = links_.find(spec.target);
        if (it == links_.end()) {
          throw std::invalid_argument("FaultInjector: unknown link '" +
                                      spec.target + "'");
        }
        home_.ScheduleAt(spec.at, [this, spec] { Record(spec); });
        if (spec.kind == FaultKind::kLinkDown) {
          it->second->ScheduleDown(spec.at);
        } else {
          it->second->ScheduleUp(spec.at);
        }
        break;
      }
      case FaultKind::kPsuBrownout:
        home_.ScheduleAt(spec.at, [this, spec] { Record(spec); });
        break;
    }
  }
}

std::vector<std::string> FaultInjector::TargetNames() const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : targets_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> FaultInjector::LinkNames() const {
  std::vector<std::string> names;
  for (const auto& [name, link] : links_) {
    names.push_back(name);
  }
  return names;
}

FaultPlanSpec MakeRandomFaultPlan(Rng& rng,
                                  const std::vector<std::string>& target_names,
                                  const std::vector<std::string>& link_names,
                                  const RandomFaultPlanConfig& config) {
  FaultPlanSpec plan;
  const SimTime horizon = std::max<SimTime>(config.horizon, 1);
  for (const std::string& name : target_names) {
    if (rng.Bernoulli(config.death_probability)) {
      FaultEventSpec spec;
      spec.kind = FaultKind::kDeviceDeath;
      spec.at = rng.UniformInt(1, horizon);
      spec.target = name;
      plan.events.push_back(std::move(spec));
    }
  }
  SimDuration min_gap =
      config.min_flap_gap > 0 ? config.min_flap_gap : horizon / 100;
  SimDuration max_gap =
      config.max_flap_gap > 0 ? config.max_flap_gap : horizon / 10;
  max_gap = std::max(max_gap, min_gap);
  for (const std::string& name : link_names) {
    const int flaps =
        static_cast<int>(rng.UniformInt(0, config.max_flaps_per_link));
    for (int i = 0; i < flaps; ++i) {
      // Down is always paired with a later up; overlapping windows are fine
      // (the flags are idempotent booleans).
      const SimTime down_at = rng.UniformInt(1, horizon);
      const SimTime up_at = down_at + rng.UniformInt(min_gap, max_gap);
      plan.events.push_back(FaultEventSpec{FaultKind::kLinkDown, down_at, name, 0});
      plan.events.push_back(FaultEventSpec{FaultKind::kLinkUp, up_at, name, 0});
    }
  }
  if (config.max_cap_watts > config.min_cap_watts) {
    const int steps = static_cast<int>(rng.UniformInt(0, config.max_brownouts));
    for (int i = 0; i < steps; ++i) {
      FaultEventSpec spec;
      spec.kind = FaultKind::kPsuBrownout;
      spec.at = rng.UniformInt(1, horizon);
      spec.target = "psu";
      spec.power_cap_watts =
          rng.UniformDouble(config.min_cap_watts, config.max_cap_watts);
      plan.events.push_back(std::move(spec));
    }
  }
  return plan;
}

}  // namespace incod
