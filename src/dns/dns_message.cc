#include "src/dns/dns_message.h"

#include <cstdio>
#include <stdexcept>

namespace incod {

namespace {

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v & 0xff));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v >> 24));
  out.push_back(static_cast<uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<uint8_t>(v & 0xff));
}

bool GetU16(const std::vector<uint8_t>& in, size_t* pos, uint16_t* v) {
  if (*pos + 2 > in.size()) {
    return false;
  }
  *v = static_cast<uint16_t>((in[*pos] << 8) | in[*pos + 1]);
  *pos += 2;
  return true;
}

bool GetU32(const std::vector<uint8_t>& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) {
    return false;
  }
  *v = (static_cast<uint32_t>(in[*pos]) << 24) |
       (static_cast<uint32_t>(in[*pos + 1]) << 16) |
       (static_cast<uint32_t>(in[*pos + 2]) << 8) | static_cast<uint32_t>(in[*pos + 3]);
  *pos += 4;
  return true;
}

void EncodeName(std::vector<uint8_t>& out, const std::string& name) {
  if (!IsValidDnsName(name)) {
    throw std::invalid_argument("EncodeName: invalid DNS name: " + name);
  }
  size_t start = 0;
  while (start <= name.size()) {
    size_t dot = name.find('.', start);
    if (dot == std::string::npos) {
      dot = name.size();
    }
    const size_t len = dot - start;
    out.push_back(static_cast<uint8_t>(len));
    for (size_t i = start; i < dot; ++i) {
      out.push_back(static_cast<uint8_t>(name[i]));
    }
    if (dot == name.size()) {
      break;
    }
    start = dot + 1;
  }
  out.push_back(0);  // Root label.
}

bool DecodeName(const std::vector<uint8_t>& in, size_t* pos, std::string* name) {
  name->clear();
  size_t total = 0;
  while (true) {
    if (*pos >= in.size()) {
      return false;
    }
    const uint8_t len = in[*pos];
    ++*pos;
    if (len == 0) {
      return true;
    }
    if ((len & 0xc0) != 0) {
      return false;  // Compression pointers unsupported (Emu subset).
    }
    if (*pos + len > in.size()) {
      return false;
    }
    total += len + 1;
    if (total > 254) {
      return false;
    }
    if (!name->empty()) {
      name->push_back('.');
    }
    name->append(reinterpret_cast<const char*>(in.data() + *pos), len);
    *pos += len;
  }
}

}  // namespace

DnsRdata Ipv4ToRdata(uint32_t ipv4) {
  DnsRdata out;
  out.push_back(static_cast<uint8_t>((ipv4 >> 24) & 0xff));
  out.push_back(static_cast<uint8_t>((ipv4 >> 16) & 0xff));
  out.push_back(static_cast<uint8_t>((ipv4 >> 8) & 0xff));
  out.push_back(static_cast<uint8_t>(ipv4 & 0xff));
  return out;
}

uint32_t RdataToIpv4(const DnsRdata& rdata) {
  if (rdata.size() != 4) {
    throw std::invalid_argument("RdataToIpv4: need 4 bytes");
  }
  return (static_cast<uint32_t>(rdata[0]) << 24) | (static_cast<uint32_t>(rdata[1]) << 16) |
         (static_cast<uint32_t>(rdata[2]) << 8) | static_cast<uint32_t>(rdata[3]);
}

std::string Ipv4ToString(uint32_t ipv4) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ipv4 >> 24) & 0xff, (ipv4 >> 16) & 0xff,
                (ipv4 >> 8) & 0xff, ipv4 & 0xff);
  return buf;
}

std::optional<uint32_t> ParseIpv4(const std::string& dotted) {
  unsigned a = 0;
  unsigned b = 0;
  unsigned c = 0;
  unsigned d = 0;
  char extra = 0;
  if (std::sscanf(dotted.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &extra) != 4) {
    return std::nullopt;
  }
  if (a > 255 || b > 255 || c > 255 || d > 255) {
    return std::nullopt;
  }
  return (a << 24) | (b << 16) | (c << 8) | d;
}

int CountLabels(const std::string& name) {
  if (name.empty()) {
    return 0;
  }
  int labels = 1;
  for (char ch : name) {
    if (ch == '.') {
      ++labels;
    }
  }
  return labels;
}

bool IsValidDnsName(const std::string& name) {
  if (name.empty() || name.size() > 253) {
    return false;
  }
  size_t label_len = 0;
  for (char ch : name) {
    if (ch == '.') {
      if (label_len == 0 || label_len > 63) {
        return false;
      }
      label_len = 0;
    } else {
      ++label_len;
    }
  }
  return label_len > 0 && label_len <= 63;
}

std::vector<uint8_t> EncodeDnsMessage(const DnsMessage& message) {
  std::vector<uint8_t> out;
  PutU16(out, message.id);
  uint16_t flags = 0;
  if (message.is_response) {
    flags |= 0x8000;
  }
  if (message.authoritative) {
    flags |= 0x0400;
  }
  if (message.recursion_desired) {
    flags |= 0x0100;
  }
  if (message.recursion_available) {
    flags |= 0x0080;
  }
  flags |= static_cast<uint16_t>(message.rcode) & 0x000f;
  PutU16(out, flags);
  PutU16(out, static_cast<uint16_t>(message.questions.size()));
  PutU16(out, static_cast<uint16_t>(message.answers.size()));
  PutU16(out, 0);  // NSCOUNT
  PutU16(out, 0);  // ARCOUNT
  for (const auto& q : message.questions) {
    EncodeName(out, q.name);
    PutU16(out, q.qtype);
    PutU16(out, q.qclass);
  }
  for (const auto& rr : message.answers) {
    EncodeName(out, rr.name);
    PutU16(out, rr.rtype);
    PutU16(out, rr.rclass);
    PutU32(out, rr.ttl);
    PutU16(out, static_cast<uint16_t>(rr.rdata.size()));
    out.insert(out.end(), rr.rdata.begin(), rr.rdata.end());
  }
  return out;
}

std::optional<DnsMessage> DecodeDnsMessage(const std::vector<uint8_t>& wire) {
  DnsMessage msg;
  size_t pos = 0;
  uint16_t flags = 0;
  uint16_t qdcount = 0;
  uint16_t ancount = 0;
  uint16_t nscount = 0;
  uint16_t arcount = 0;
  if (!GetU16(wire, &pos, &msg.id) || !GetU16(wire, &pos, &flags) ||
      !GetU16(wire, &pos, &qdcount) || !GetU16(wire, &pos, &ancount) ||
      !GetU16(wire, &pos, &nscount) || !GetU16(wire, &pos, &arcount)) {
    return std::nullopt;
  }
  msg.is_response = (flags & 0x8000) != 0;
  msg.authoritative = (flags & 0x0400) != 0;
  msg.recursion_desired = (flags & 0x0100) != 0;
  msg.recursion_available = (flags & 0x0080) != 0;
  msg.rcode = static_cast<DnsRcode>(flags & 0x000f);
  for (uint16_t i = 0; i < qdcount; ++i) {
    DnsQuestion q;
    if (!DecodeName(wire, &pos, &q.name) || !GetU16(wire, &pos, &q.qtype) ||
        !GetU16(wire, &pos, &q.qclass)) {
      return std::nullopt;
    }
    msg.questions.push_back(std::move(q));
  }
  for (uint16_t i = 0; i < ancount; ++i) {
    DnsResourceRecord rr;
    uint16_t rdlength = 0;
    if (!DecodeName(wire, &pos, &rr.name) || !GetU16(wire, &pos, &rr.rtype) ||
        !GetU16(wire, &pos, &rr.rclass) || !GetU32(wire, &pos, &rr.ttl) ||
        !GetU16(wire, &pos, &rdlength)) {
      return std::nullopt;
    }
    if (pos + rdlength > wire.size()) {
      return std::nullopt;
    }
    if (!rr.rdata.assign(wire.begin() + static_cast<long>(pos),
                         wire.begin() + static_cast<long>(pos + rdlength))) {
      return std::nullopt;  // Beyond the modeled rdata subset (A/AAAA).
    }
    pos += rdlength;
    msg.answers.push_back(std::move(rr));
  }
  return msg;
}

uint32_t DnsWireBytes(const DnsMessage& message) {
  // Encoded DNS payload + Ethernet/IP/UDP headers (14+20+8).
  return static_cast<uint32_t>(EncodeDnsMessage(message).size()) + 42;
}

}  // namespace incod
