// The shared zone-warmth state contract for every DNS placement.
//
// NSD (host), Emu DNS (FPGA NIC), and switch-DNS (ASIC) all answer from a
// zone: a shared read-only pointer by default, replaced by an owned copy
// when a typed DnsAppState snapshot is restored into the placement (the
// "zone-cache warmth" transfer). ZoneStateHolder implements that once, so
// the three apps' SnapshotState/RestoreState are one-liners and cannot
// diverge.
#ifndef INCOD_SRC_DNS_ZONE_STATE_H_
#define INCOD_SRC_DNS_ZONE_STATE_H_

#include <memory>
#include <string>

#include "src/app/app_state.h"
#include "src/dns/zone.h"

namespace incod {

// Snapshot a zone into DnsAppState / rebuild a zone from a snapshot
// (nullptr when the state is not DNS-typed).
AppState SnapshotZoneState(AppProto proto, const std::string& app_name, const Zone& zone);
std::unique_ptr<Zone> ZoneFromState(const AppState& state);

class ZoneStateHolder {
 public:
  // `zone` is the shared read-only zone; must outlive the holder.
  explicit ZoneStateHolder(const Zone* zone);

  // The zone the placement currently answers from.
  const Zone& active() const { return restored_ != nullptr ? *restored_ : *zone_; }

  AppState Snapshot(AppProto proto, const std::string& app_name) const {
    return SnapshotZoneState(proto, app_name, active());
  }

  // Installs an owned zone from a DNS-typed snapshot (no-op otherwise).
  void Restore(const AppState& state) {
    auto zone = ZoneFromState(state);
    if (zone != nullptr) {
      restored_ = std::move(zone);
    }
  }

 private:
  const Zone* zone_;
  std::unique_ptr<Zone> restored_;  // Installed by Restore().
};

}  // namespace incod

#endif  // INCOD_SRC_DNS_ZONE_STATE_H_
