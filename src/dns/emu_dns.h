// Emu DNS: the FPGA DNS server (§3.3, §4.4).
//
// Developed with Kiwi/Emu (C# to FPGA) in the paper; here a FpgaApp with the
// same observable behaviour: authoritative A-record resolution from an
// on-chip table, NXDOMAIN for absent names, and — because the original was
// amended with a LaKe-style packet classifier — NIC passthrough for non-DNS
// traffic. The design is non-pipelined ("a result of Emu's non-pipelined
// nature"), so its peak is ~1 Mqps: one query in flight per microsecond.
// Names deeper than the hardware parser's label budget are punted to the
// host (cf. §9.2's discussion of parse-depth limits).
#ifndef INCOD_SRC_DNS_EMU_DNS_H_
#define INCOD_SRC_DNS_EMU_DNS_H_

#include <string>

#include "src/device/fpga_app.h"
#include "src/dns/dns_message.h"
#include "src/dns/zone.h"
#include "src/stats/counters.h"

namespace incod {

struct EmuDnsConfig {
  // Non-pipelined service time: peak ~1 Mqps (§4.4).
  SimDuration service_time = Microseconds(1);
  SimDuration egress_latency = Nanoseconds(200);
  // Hardware parser label budget; deeper names go to the host.
  int max_labels = 8;
  // On-chip table capacity (BRAM).
  size_t max_records = 65536;
};

class EmuDns : public FpgaApp {
 public:
  // The zone is shared (read-only) with the host's NSD so both sides answer
  // identically.
  explicit EmuDns(const Zone* zone, EmuDnsConfig config = {});

  AppProto proto() const override { return AppProto::kDns; }
  std::string AppName() const override { return "emu-dns"; }

  std::vector<ModulePowerSpec> PowerModules() const override;
  double DynamicWattsAtCapacity() const override { return 0.5; }
  FpgaPipelineSpec PipelineSpec() const override;

  void Process(Packet packet) override;

  uint64_t answered() const { return answered_.value(); }
  uint64_t nxdomain() const { return nxdomain_.value(); }
  uint64_t punted_to_host() const { return punted_.value(); }

 private:
  const Zone* zone_;
  EmuDnsConfig config_;
  Counter answered_;
  Counter nxdomain_;
  Counter punted_;
};

}  // namespace incod

#endif  // INCOD_SRC_DNS_EMU_DNS_H_
