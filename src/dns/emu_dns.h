// Emu DNS: the FPGA DNS server (§3.3, §4.4) — the FPGA-NIC placement of
// the DNS app family.
//
// Developed with Kiwi/Emu (C# to FPGA) in the paper; here a unified App
// with the same observable behaviour: authoritative A-record resolution
// from an on-chip table, NXDOMAIN for absent names, and — because the
// original was amended with a LaKe-style packet classifier — NIC
// passthrough for non-DNS traffic. The design is non-pipelined ("a result
// of Emu's non-pipelined nature"), so its peak is ~1 Mqps: one query in
// flight per microsecond. Names deeper than the hardware parser's label
// budget are punted to the host (cf. §9.2's discussion of parse-depth
// limits).
#ifndef INCOD_SRC_DNS_EMU_DNS_H_
#define INCOD_SRC_DNS_EMU_DNS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/app/app.h"
#include "src/dns/dns_message.h"
#include "src/dns/zone.h"
#include "src/dns/zone_state.h"
#include "src/stats/counters.h"

namespace incod {

struct EmuDnsConfig {
  // Non-pipelined service time: peak ~1 Mqps (§4.4).
  SimDuration service_time = Microseconds(1);
  SimDuration egress_latency = Nanoseconds(200);
  // Hardware parser label budget; deeper names go to the host.
  int max_labels = 8;
  // On-chip table capacity (BRAM).
  size_t max_records = 65536;
};

class EmuDns : public App {
 public:
  // The zone is shared (read-only) with the host's NSD so both sides answer
  // identically.
  explicit EmuDns(const Zone* zone, EmuDnsConfig config = {});

  AppProto proto() const override { return AppProto::kDns; }
  std::string AppName() const override { return "emu-dns"; }
  bool SupportsPlacement(PlacementKind placement) const override {
    return placement == PlacementKind::kFpgaNic;
  }

  std::vector<ModulePowerSpec> PowerModules() const;
  FpgaPipelineSpec PipelineSpec() const;
  OffloadPlacementProfile OffloadProfile() const override {
    OffloadPlacementProfile profile;
    profile.pipeline = PipelineSpec();
    profile.power_modules = PowerModules();
    profile.dynamic_watts_at_capacity = 0.5;
    return profile;
  }

  void HandlePacket(AppContext& ctx, Packet packet) override;

  // App state contract (zone_state.h): the on-chip zone copy (restore
  // installs an owned zone — a warm table from another placement).
  AppState SnapshotState() const override { return zone_state_.Snapshot(proto(), AppName()); }
  void RestoreState(const AppState& state) override { zone_state_.Restore(state); }

  uint64_t answered() const { return answered_.value(); }
  uint64_t nxdomain() const { return nxdomain_.value(); }
  uint64_t punted_to_host() const { return punted_.value(); }

 private:
  ZoneStateHolder zone_state_;
  EmuDnsConfig config_;
  Counter answered_;
  Counter nxdomain_;
  Counter punted_;
};

}  // namespace incod

#endif  // INCOD_SRC_DNS_EMU_DNS_H_
