#include "src/dns/emu_dns.h"

#include <stdexcept>
#include <utility>

#include "src/device/fpga_nic.h"
#include "src/dns/nsd_server.h"
#include "src/sim/simulation.h"

namespace incod {

EmuDns::EmuDns(const Zone* zone, EmuDnsConfig config)
    : zone_state_(zone), config_(config) {}

std::vector<ModulePowerSpec> EmuDns::PowerModules() const {
  // Classifier (added by this paper, §3.3) plus the Emu main logical core.
  // Total ~1.5 W over the reference NIC: Emu DNS draws ~47.5 W in a 35 W
  // server + 11 W board (§4.4). No external memories.
  return {
      MakeModuleSpec("classifier", 0.5, kLogicStaticFraction, 1.0),
      MakeModuleSpec("emu_core", 1.0, kLogicStaticFraction, 1.0),
  };
}

FpgaPipelineSpec EmuDns::PipelineSpec() const {
  FpgaPipelineSpec spec;
  spec.workers = 1;  // Non-pipelined design (§4.4).
  spec.worker_service = config_.service_time;
  spec.pipeline_latency = config_.egress_latency;
  spec.input_queue_capacity = 256;
  return spec;
}

void EmuDns::HandlePacket(AppContext& ctx, Packet packet) {
  const DnsMessage* query = PayloadIf<DnsMessage>(packet);
  if (query == nullptr) {
    ctx.Punt(std::move(packet));
    return;
  }
  if (!query->questions.empty() &&
      CountLabels(query->questions.front().name) > config_.max_labels) {
    // Parser depth exceeded: let the host handle it (worst case the client
    // treats it as an iterative request, §9.2).
    punted_.Increment();
    ctx.Punt(std::move(packet));
    return;
  }
  DnsMessage resp = NsdServer::Resolve(zone_state_.active(), *query);
  if (resp.rcode == DnsRcode::kNoError) {
    answered_.Increment();
  } else if (resp.rcode == DnsRcode::kNxDomain) {
    nxdomain_.Increment();
  }
  Packet out;
  out.dst = packet.src;
  out.src = ctx.self_node() != 0 ? ctx.self_node() : packet.dst;
  out.proto = AppProto::kDns;
  out.size_bytes = DnsWireBytes(resp);
  out.id = packet.id;
  out.created_at = ctx.sim().Now();
  out.payload = std::move(resp);
  ctx.Reply(std::move(out));
}

}  // namespace incod
