#include "src/dns/zone_state.h"

#include <stdexcept>
#include <utility>

namespace incod {

ZoneStateHolder::ZoneStateHolder(const Zone* zone) : zone_(zone) {
  if (zone == nullptr) {
    throw std::invalid_argument("ZoneStateHolder: null zone");
  }
}

AppState SnapshotZoneState(AppProto proto, const std::string& app_name,
                           const Zone& zone) {
  DnsAppState dns;
  for (const auto& [name, record] : zone.SortedRecords()) {
    dns.records.push_back(DnsZoneEntry{name, record.ipv4, record.ttl});
  }
  return AppState{proto, app_name, std::move(dns)};
}

std::unique_ptr<Zone> ZoneFromState(const AppState& state) {
  const DnsAppState* dns = std::get_if<DnsAppState>(&state.data);
  if (dns == nullptr) {
    return nullptr;
  }
  auto zone = std::make_unique<Zone>();
  for (const DnsZoneEntry& r : dns->records) {
    zone->AddRecord(r.name, r.ipv4, r.ttl);
  }
  return zone;
}

}  // namespace incod
