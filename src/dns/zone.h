// Authoritative zone: name -> IPv4 resolution table.
//
// Shared by the software NSD model and the Emu DNS hardware core so both
// answer identically (the on-demand shift must be invisible to clients).
#ifndef INCOD_SRC_DNS_ZONE_H_
#define INCOD_SRC_DNS_ZONE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace incod {

class Zone {
 public:
  struct Record {
    uint32_t ipv4 = 0;
    uint32_t ttl = 300;
  };

  // Adds or replaces an A record. Returns false if the name is invalid.
  bool AddRecord(const std::string& name, uint32_t ipv4, uint32_t ttl = 300);

  std::optional<Record> Lookup(const std::string& name) const;
  bool Remove(const std::string& name);

  size_t size() const { return records_.size(); }
  void Clear() { records_.clear(); }

  // All records sorted by name — the deterministic order the App state
  // contract serializes (zone-cache snapshots must be bit-identical).
  std::vector<std::pair<std::string, Record>> SortedRecords() const;

  // Parses a minimal zone-file format, one record per line:
  //   <name> [ttl] A <dotted-ipv4>
  // '#' or ';' begin comments; blank lines are skipped. Returns the number
  // of records loaded, or -1 on a malformed line (loading stops there).
  int LoadZoneText(const std::string& text);

  // Populates `count` synthetic records host0.<suffix> ... for benchmarks.
  void FillSynthetic(size_t count, const std::string& suffix = "bench.example");

  // Synthetic record name for index i (matches FillSynthetic).
  static std::string SyntheticName(size_t i, const std::string& suffix = "bench.example");

 private:
  std::unordered_map<std::string, Record> records_;
};

}  // namespace incod

#endif  // INCOD_SRC_DNS_ZONE_H_
