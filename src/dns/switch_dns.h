// DNS resolution in the switch ASIC pipeline (§9.2) — the switch-ASIC
// placement of the DNS app family.
//
// "Shifting a DNS server to a programmable ASIC, like Barefoot's Tofino,
// should also be possible ... DNS responses fit comfortably within the
// storage limits ... The biggest challenge would be supporting DNS queries
// that require parsing deeper than the maximum supported depth. However, in
// the worst case scenario, those queries could be treated as iterative
// requests." This program answers A-record queries from an on-switch copy
// of the zone at line rate and passes everything it cannot parse (deep
// names, non-A types, malformed) through to the host.
#ifndef INCOD_SRC_DNS_SWITCH_DNS_H_
#define INCOD_SRC_DNS_SWITCH_DNS_H_

#include <memory>
#include <string>

#include "src/app/switch_app.h"
#include "src/dns/dns_message.h"
#include "src/dns/zone.h"
#include "src/dns/zone_state.h"
#include "src/stats/counters.h"

namespace incod {

struct DnsSwitchConfig {
  NodeId dns_service = 0;  // Address of the DNS service this program fronts.
  // Hardware parser depth: the paper calls this the biggest challenge for
  // DNS on an ASIC. Tofino parsers manage fewer labels than an FPGA.
  int max_labels = 4;
  double power_overhead_at_full_load = 0.015;
};

class DnsSwitchProgram : public SwitchHostedApp {
 public:
  // The zone is shared read-only with the authoritative software server.
  DnsSwitchProgram(const Zone* zone, DnsSwitchConfig config);

  AppProto proto() const override { return AppProto::kDns; }
  std::string AppName() const override { return "switch-dns"; }
  OffloadPlacementProfile OffloadProfile() const override {
    OffloadPlacementProfile profile;
    profile.switch_power_overhead_at_full_load = config_.power_overhead_at_full_load;
    return profile;
  }

  bool Matches(const Packet& packet) const override {
    return packet.proto == AppProto::kDns && packet.dst == config_.dns_service;
  }
  void HandlePacket(AppContext& ctx, Packet packet) override;

  // App state contract (zone_state.h): the on-switch zone copy.
  AppState SnapshotState() const override { return zone_state_.Snapshot(proto(), AppName()); }
  void RestoreState(const AppState& state) override { zone_state_.Restore(state); }

  uint64_t answered() const { return answered_.value(); }
  uint64_t nxdomain() const { return nxdomain_.value(); }
  uint64_t punted_to_host() const { return punted_.value(); }

 private:
  ZoneStateHolder zone_state_;
  DnsSwitchConfig config_;
  Counter answered_;
  Counter nxdomain_;
  Counter punted_;
};

}  // namespace incod

#endif  // INCOD_SRC_DNS_SWITCH_DNS_H_
