// DNS message model with RFC 1035 wire-format encode/decode (subset).
//
// Emu DNS "implements a subset of DNS functionality, supporting
// non-recursive queries ... resolution queries from names to IPv4
// addresses" (§3.3). We model exactly that subset: A-record questions and
// answers, NXDOMAIN for unresolvable names, no compression pointers (the
// hardware parser in Emu does not follow them either).
#ifndef INCOD_SRC_DNS_DNS_MESSAGE_H_
#define INCOD_SRC_DNS_DNS_MESSAGE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/dns/dns_pool.h"

namespace incod {

// Record/query type codes (RFC 1035 §3.2.2).
constexpr uint16_t kDnsTypeA = 1;
constexpr uint16_t kDnsTypeNs = 2;
constexpr uint16_t kDnsTypeCname = 5;
constexpr uint16_t kDnsTypeAaaa = 28;
constexpr uint16_t kDnsClassIn = 1;

// Response codes (RFC 1035 §4.1.1).
enum class DnsRcode : uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

struct DnsQuestion {
  std::string name;  // Dotted form, e.g. "www.example.com".
  uint16_t qtype = kDnsTypeA;
  uint16_t qclass = kDnsClassIn;
};

struct DnsResourceRecord {
  std::string name;
  uint16_t rtype = kDnsTypeA;
  uint16_t rclass = kDnsClassIn;
  uint32_t ttl = 300;
  DnsRdata rdata;  // Inline buffer: 4 bytes for A records (dns_pool.h).
};

// Section vectors use the recycling arena (dns_pool.h) so packets carrying
// DNS payloads allocate nothing on the steady-state hot path.
struct DnsMessage {
  uint16_t id = 0;
  bool is_response = false;
  bool recursion_desired = false;
  bool recursion_available = false;
  bool authoritative = false;
  DnsRcode rcode = DnsRcode::kNoError;
  PooledVec<DnsQuestion> questions;
  PooledVec<DnsResourceRecord> answers;
};

// IPv4 helpers.
DnsRdata Ipv4ToRdata(uint32_t ipv4);
uint32_t RdataToIpv4(const DnsRdata& rdata);
std::string Ipv4ToString(uint32_t ipv4);
std::optional<uint32_t> ParseIpv4(const std::string& dotted);

// Number of labels in a dotted name ("a.b.c" -> 3). The Emu DNS hardware
// parser supports a bounded label depth (§9.2).
int CountLabels(const std::string& name);

// Validates a dotted name: non-empty labels, each <= 63 bytes, total <= 253.
bool IsValidDnsName(const std::string& name);

// Encodes to RFC 1035 wire format (no compression). Throws on invalid names.
std::vector<uint8_t> EncodeDnsMessage(const DnsMessage& message);

// Decodes; returns nullopt on malformed input.
std::optional<DnsMessage> DecodeDnsMessage(const std::vector<uint8_t>& wire);

// Convenience: the UDP payload size of the encoded message plus headers.
uint32_t DnsWireBytes(const DnsMessage& message);

}  // namespace incod

#endif  // INCOD_SRC_DNS_DNS_MESSAGE_H_
