#include "src/dns/zone.h"

#include <algorithm>
#include <sstream>

#include "src/dns/dns_message.h"

namespace incod {

bool Zone::AddRecord(const std::string& name, uint32_t ipv4, uint32_t ttl) {
  if (!IsValidDnsName(name)) {
    return false;
  }
  records_[name] = Record{ipv4, ttl};
  return true;
}

std::optional<Zone::Record> Zone::Lookup(const std::string& name) const {
  auto it = records_.find(name);
  if (it == records_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool Zone::Remove(const std::string& name) { return records_.erase(name) != 0; }

std::vector<std::pair<std::string, Zone::Record>> Zone::SortedRecords() const {
  std::vector<std::pair<std::string, Record>> records(records_.begin(), records_.end());
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return records;
}

int Zone::LoadZoneText(const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  int loaded = 0;
  while (std::getline(lines, line)) {
    // Strip comments.
    const size_t comment = line.find_first_of("#;");
    if (comment != std::string::npos) {
      line.resize(comment);
    }
    std::istringstream fields(line);
    std::string name;
    if (!(fields >> name)) {
      continue;  // Blank line.
    }
    std::string second;
    if (!(fields >> second)) {
      return -1;
    }
    uint32_t ttl = 300;
    std::string type = second;
    // Optional TTL between name and type.
    if (!second.empty() && second.find_first_not_of("0123456789") == std::string::npos) {
      ttl = static_cast<uint32_t>(std::stoul(second));
      if (!(fields >> type)) {
        return -1;
      }
    }
    if (type != "A" && type != "a") {
      return -1;  // Only A records in the Emu subset.
    }
    std::string address;
    if (!(fields >> address)) {
      return -1;
    }
    const auto ipv4 = ParseIpv4(address);
    if (!ipv4.has_value() || !AddRecord(name, *ipv4, ttl)) {
      return -1;
    }
    ++loaded;
  }
  return loaded;
}

std::string Zone::SyntheticName(size_t i, const std::string& suffix) {
  return "host" + std::to_string(i) + "." + suffix;
}

void Zone::FillSynthetic(size_t count, const std::string& suffix) {
  for (size_t i = 0; i < count; ++i) {
    AddRecord(SyntheticName(i, suffix), 0x0a000000u + static_cast<uint32_t>(i));
  }
}

}  // namespace incod
