#include "src/dns/switch_dns.h"

#include <stdexcept>
#include <utility>

#include "src/dns/nsd_server.h"
#include "src/sim/simulation.h"

namespace incod {

DnsSwitchProgram::DnsSwitchProgram(const Zone* zone, DnsSwitchConfig config)
    : zone_state_(zone), config_(config) {
  if (config_.dns_service == 0) {
    throw std::invalid_argument("DnsSwitchProgram: dns_service required");
  }
}

void DnsSwitchProgram::HandlePacket(AppContext& ctx, Packet packet) {
  const DnsMessage* query_if = PayloadIf<DnsMessage>(packet);
  if (query_if == nullptr) {
    ctx.Punt(std::move(packet));
    return;
  }
  const DnsMessage& query = *query_if;
  if (query.is_response || query.questions.empty()) {
    ctx.Punt(std::move(packet));  // Responses and junk just forward.
    return;
  }
  const DnsQuestion& question = query.questions.front();
  if (CountLabels(question.name) > config_.max_labels ||
      question.qtype != kDnsTypeA || question.qclass != kDnsClassIn) {
    // Beyond the pipeline parser: "treated as iterative requests" — the
    // host answers instead (§9.2).
    punted_.Increment();
    ctx.Punt(std::move(packet));
    return;
  }
  DnsMessage resp = NsdServer::Resolve(zone_state_.active(), query);
  if (resp.rcode == DnsRcode::kNxDomain) {
    nxdomain_.Increment();
  } else {
    answered_.Increment();
  }
  Packet out;
  out.src = packet.dst;
  out.dst = packet.src;
  out.proto = AppProto::kDns;
  out.size_bytes = DnsWireBytes(resp);
  out.id = packet.id;
  out.created_at = ctx.sim().Now();
  out.payload = std::move(resp);
  ctx.Reply(std::move(out));
}

}  // namespace incod
