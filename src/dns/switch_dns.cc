#include "src/dns/switch_dns.h"

#include <stdexcept>
#include <utility>

#include "src/dns/nsd_server.h"

namespace incod {

DnsSwitchProgram::DnsSwitchProgram(const Zone* zone, DnsSwitchConfig config)
    : zone_(zone), config_(config) {
  if (zone == nullptr) {
    throw std::invalid_argument("DnsSwitchProgram: null zone");
  }
  if (config_.dns_service == 0) {
    throw std::invalid_argument("DnsSwitchProgram: dns_service required");
  }
}

bool DnsSwitchProgram::Process(SwitchAsic& sw, Packet& packet) {
  if (packet.proto != AppProto::kDns || packet.dst != config_.dns_service) {
    return false;
  }
  const DnsMessage* query_if = PayloadIf<DnsMessage>(packet);
  if (query_if == nullptr) {
    return false;
  }
  const DnsMessage& query = *query_if;
  if (query.is_response || query.questions.empty()) {
    return false;  // Responses and junk just forward.
  }
  const DnsQuestion& question = query.questions.front();
  if (CountLabels(question.name) > config_.max_labels ||
      question.qtype != kDnsTypeA || question.qclass != kDnsClassIn) {
    // Beyond the pipeline parser: "treated as iterative requests" — the
    // host answers instead (§9.2).
    punted_.Increment();
    return false;
  }
  DnsMessage resp = NsdServer::Resolve(*zone_, query);
  if (resp.rcode == DnsRcode::kNxDomain) {
    nxdomain_.Increment();
  } else {
    answered_.Increment();
  }
  Packet out;
  out.src = packet.dst;
  out.dst = packet.src;
  out.proto = AppProto::kDns;
  out.size_bytes = DnsWireBytes(resp);
  out.id = packet.id;
  out.created_at = sw.sim().Now();
  out.payload = std::move(resp);
  sw.TransmitFromPipeline(std::move(out));
  return true;
}

}  // namespace incod
