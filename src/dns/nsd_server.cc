#include "src/dns/nsd_server.h"

#include <stdexcept>
#include <utility>

#include "src/sim/simulation.h"

namespace incod {

NsdServer::NsdServer(const Zone* zone, NsdConfig config)
    : zone_state_(zone), config_(config) {}

SimDuration NsdServer::CpuTimePerRequest(const Packet& packet) const {
  (void)packet;
  return config_.query_cpu_time;
}

DnsMessage NsdServer::Resolve(const Zone& zone, const DnsMessage& query) {
  DnsMessage resp;
  resp.id = query.id;
  resp.is_response = true;
  resp.authoritative = true;
  resp.recursion_available = false;  // Authoritative-only (like NSD).
  resp.questions = query.questions;
  if (query.questions.empty()) {
    resp.rcode = DnsRcode::kFormErr;
    return resp;
  }
  const DnsQuestion& q = query.questions.front();
  if (q.qtype != kDnsTypeA || q.qclass != kDnsClassIn) {
    resp.rcode = DnsRcode::kNotImp;
    return resp;
  }
  const auto record = zone.Lookup(q.name);
  if (!record.has_value()) {
    resp.rcode = DnsRcode::kNxDomain;
    return resp;
  }
  DnsResourceRecord rr;
  rr.name = q.name;
  rr.rtype = kDnsTypeA;
  rr.rclass = kDnsClassIn;
  rr.ttl = record->ttl;
  rr.rdata = Ipv4ToRdata(record->ipv4);
  resp.answers.push_back(std::move(rr));
  return resp;
}

void NsdServer::HandlePacket(AppContext& ctx, Packet packet) {
  const DnsMessage* query = PayloadIf<DnsMessage>(packet);
  if (query == nullptr) {
    malformed_.Increment();
    return;
  }
  DnsMessage resp = Resolve(zone_state_.active(), *query);
  switch (resp.rcode) {
    case DnsRcode::kNoError:
      answered_.Increment();
      break;
    case DnsRcode::kNxDomain:
      nxdomain_.Increment();
      break;
    default:
      malformed_.Increment();
      break;
  }
  Packet out;
  out.src = ctx.self_node();
  out.dst = packet.src;
  out.proto = AppProto::kDns;
  out.size_bytes = DnsWireBytes(resp);
  out.id = packet.id;
  out.created_at = ctx.sim().Now();
  out.payload = std::move(resp);
  ctx.Reply(std::move(out));
}

}  // namespace incod
