#include "src/dns/nsd_server.h"

#include <stdexcept>
#include <utility>

#include "src/host/server.h"

namespace incod {

NsdServer::NsdServer(const Zone* zone, NsdConfig config) : zone_(zone), config_(config) {
  if (zone == nullptr) {
    throw std::invalid_argument("NsdServer: null zone");
  }
}

SimDuration NsdServer::CpuTimePerRequest(const Packet& packet) const {
  (void)packet;
  return config_.query_cpu_time;
}

DnsMessage NsdServer::Resolve(const Zone& zone, const DnsMessage& query) {
  DnsMessage resp;
  resp.id = query.id;
  resp.is_response = true;
  resp.authoritative = true;
  resp.recursion_available = false;  // Authoritative-only (like NSD).
  resp.questions = query.questions;
  if (query.questions.empty()) {
    resp.rcode = DnsRcode::kFormErr;
    return resp;
  }
  const DnsQuestion& q = query.questions.front();
  if (q.qtype != kDnsTypeA || q.qclass != kDnsClassIn) {
    resp.rcode = DnsRcode::kNotImp;
    return resp;
  }
  const auto record = zone.Lookup(q.name);
  if (!record.has_value()) {
    resp.rcode = DnsRcode::kNxDomain;
    return resp;
  }
  DnsResourceRecord rr;
  rr.name = q.name;
  rr.rtype = kDnsTypeA;
  rr.rclass = kDnsClassIn;
  rr.ttl = record->ttl;
  rr.rdata = Ipv4ToRdata(record->ipv4);
  resp.answers.push_back(std::move(rr));
  return resp;
}

void NsdServer::Execute(Packet packet) {
  const DnsMessage* query = PayloadIf<DnsMessage>(packet);
  if (query == nullptr) {
    malformed_.Increment();
    return;
  }
  DnsMessage resp = Resolve(*zone_, *query);
  switch (resp.rcode) {
    case DnsRcode::kNoError:
      answered_.Increment();
      break;
    case DnsRcode::kNxDomain:
      nxdomain_.Increment();
      break;
    default:
      malformed_.Increment();
      break;
  }
  Packet out;
  out.dst = packet.src;
  out.proto = AppProto::kDns;
  out.size_bytes = DnsWireBytes(resp);
  out.id = packet.id;
  out.created_at = server()->sim().Now();
  out.payload = std::move(resp);
  server()->Transmit(std::move(out));
}

}  // namespace incod
