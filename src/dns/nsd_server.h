// NSD-like authoritative software DNS server (host placement of the DNS
// app family).
//
// Calibration (§4.4): NSD on the i7-6700K serves ~956 Kqps at peak with the
// server drawing about twice Emu DNS's power. With kernel stack costs of
// 1 µs rx + 0.5 µs tx, a 2.68 µs service time across 4 worker threads gives
// a ~956 Kqps ceiling.
#ifndef INCOD_SRC_DNS_NSD_SERVER_H_
#define INCOD_SRC_DNS_NSD_SERVER_H_

#include <memory>
#include <string>

#include "src/app/app.h"
#include "src/dns/dns_message.h"
#include "src/dns/zone.h"
#include "src/dns/zone_state.h"
#include "src/stats/counters.h"

namespace incod {

struct NsdConfig {
  int threads = 4;
  SimDuration query_cpu_time = Nanoseconds(2680);
};

class NsdServer : public App {
 public:
  explicit NsdServer(const Zone* zone, NsdConfig config = {});

  AppProto proto() const override { return AppProto::kDns; }
  std::string AppName() const override { return "nsd"; }
  bool SupportsPlacement(PlacementKind placement) const override {
    return placement == PlacementKind::kHost;
  }
  HostPlacementProfile HostProfile() const override {
    return HostPlacementProfile{config_.threads, std::nullopt};
  }

  SimDuration CpuTimePerRequest(const Packet& packet) const override;
  void HandlePacket(AppContext& ctx, Packet packet) override;

  // App state contract (zone_state.h): the zone copy this placement
  // answers from; restoring installs an owned zone (warmth transfer).
  AppState SnapshotState() const override { return zone_state_.Snapshot(proto(), AppName()); }
  void RestoreState(const AppState& state) override { zone_state_.Restore(state); }

  uint64_t answered() const { return answered_.value(); }
  uint64_t nxdomain() const { return nxdomain_.value(); }
  uint64_t malformed() const { return malformed_.value(); }

  // Builds an authoritative response for a query against a zone; shared with
  // the hardware implementations so all placements reply identically.
  static DnsMessage Resolve(const Zone& zone, const DnsMessage& query);

 private:
  ZoneStateHolder zone_state_;
  NsdConfig config_;
  Counter answered_;
  Counter nxdomain_;
  Counter malformed_;
};

}  // namespace incod

#endif  // INCOD_SRC_DNS_NSD_SERVER_H_
