// NSD-like authoritative software DNS server (host side of the DNS study).
//
// Calibration (§4.4): NSD on the i7-6700K serves ~956 Kqps at peak with the
// server drawing about twice Emu DNS's power. With kernel stack costs of
// 1 µs rx + 0.5 µs tx, a 2.68 µs service time across 4 worker threads gives
// a ~956 Kqps ceiling.
#ifndef INCOD_SRC_DNS_NSD_SERVER_H_
#define INCOD_SRC_DNS_NSD_SERVER_H_

#include <string>

#include "src/dns/dns_message.h"
#include "src/dns/zone.h"
#include "src/host/software_app.h"
#include "src/stats/counters.h"

namespace incod {

struct NsdConfig {
  int threads = 4;
  SimDuration query_cpu_time = Nanoseconds(2680);
};

class NsdServer : public SoftwareApp {
 public:
  explicit NsdServer(const Zone* zone, NsdConfig config = {});

  AppProto proto() const override { return AppProto::kDns; }
  std::string AppName() const override { return "nsd"; }
  int num_threads() const override { return config_.threads; }

  SimDuration CpuTimePerRequest(const Packet& packet) const override;
  void Execute(Packet packet) override;

  uint64_t answered() const { return answered_.value(); }
  uint64_t nxdomain() const { return nxdomain_.value(); }
  uint64_t malformed() const { return malformed_.value(); }

  // Builds an authoritative response for a query against a zone; shared with
  // the hardware implementation so both reply identically.
  static DnsMessage Resolve(const Zone& zone, const DnsMessage& query);

 private:
  const Zone* zone_;
  NsdConfig config_;
  Counter answered_;
  Counter nxdomain_;
  Counter malformed_;
};

}  // namespace incod

#endif  // INCOD_SRC_DNS_NSD_SERVER_H_
