// Small-buffer / arena storage for DNS message sections.
//
// DnsMessage rides inside Packet's inline payload variant, so its section
// vectors must stay pointer-sized — but std::vector pays a malloc/free per
// packet hop for the questions/answers arrays and again for each record's
// rdata. These were the last per-packet heap allocations on the hot path
// (ROADMAP "Performance"):
//
//   * DnsRdata     — a fixed 16-byte inline buffer (A and AAAA records fit;
//                    anything larger is outside the modeled Emu subset), no
//                    allocation at all;
//   * PooledVec<T> — a {ptr, size, capacity} vector whose buffers come from
//                    a per-type recycling arena: freed buffers go to a
//                    freelist bucketed by capacity class instead of back to
//                    malloc, so steady-state traffic allocates nothing.
//
// The arena is per-thread: each ShardedSimulation worker recycles through
// its own freelists, so the hot path stays lock-free under the parallel
// engine (a buffer freed on another thread simply migrates lists). A
// thread's arena is returned to malloc when the thread exits; the main
// thread's lives until process exit, reachable, so leak checkers stay
// quiet either way.
#ifndef INCOD_SRC_DNS_DNS_POOL_H_
#define INCOD_SRC_DNS_DNS_POOL_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

namespace incod {

// Inline rdata buffer: 4 bytes for A records, 16 for AAAA.
class DnsRdata {
 public:
  static constexpr size_t kCapacity = 16;

  DnsRdata() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() { size_ = 0; }

  // Returns false (leaving the buffer cleared) when the range exceeds the
  // inline capacity — decoders treat that as malformed.
  template <typename It>
  bool assign(It first, It last) {
    clear();
    for (; first != last; ++first) {
      if (size_ >= kCapacity) {
        clear();
        return false;
      }
      bytes_[size_++] = static_cast<uint8_t>(*first);
    }
    return true;
  }

  bool push_back(uint8_t byte) {
    if (size_ >= kCapacity) {
      return false;
    }
    bytes_[size_++] = byte;
    return true;
  }

  uint8_t operator[](size_t i) const { return bytes_[i]; }
  const uint8_t* begin() const { return bytes_; }
  const uint8_t* end() const { return bytes_ + size_; }
  const uint8_t* data() const { return bytes_; }

  friend bool operator==(const DnsRdata& a, const DnsRdata& b) {
    if (a.size_ != b.size_) {
      return false;
    }
    for (size_t i = 0; i < a.size_; ++i) {
      if (a.bytes_[i] != b.bytes_[i]) {
        return false;
      }
    }
    return true;
  }

 private:
  uint8_t size_ = 0;
  uint8_t bytes_[kCapacity] = {};
};

// Arena-backed vector: 16 bytes inline, buffers recycled through capacity-
// class freelists. Supports exactly the operations the DNS path uses.
template <typename T>
class PooledVec {
 public:
  PooledVec() = default;
  PooledVec(const PooledVec& other) { CopyFrom(other); }
  PooledVec& operator=(const PooledVec& other) {
    if (this != &other) {
      DestroyElements();
      CopyFrom(other);
    }
    return *this;
  }
  PooledVec(PooledVec&& other) noexcept
      : data_(other.data_), size_(other.size_), capacity_(other.capacity_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }
  PooledVec& operator=(PooledVec&& other) noexcept {
    if (this != &other) {
      DestroyElements();
      ReleaseBuffer();
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.capacity_ = 0;
    }
    return *this;
  }
  ~PooledVec() {
    DestroyElements();
    ReleaseBuffer();
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  void clear() { DestroyElements(); }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  // Safe against arguments aliasing the vector's own storage (the new
  // element is constructed before any relocation) and against a throwing
  // T constructor (size_ only counts constructed elements).
  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) {
      return *GrowAndEmplace(std::forward<Args>(args)...);
    }
    T* slot = ::new (data_ + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

 private:
  // Capacity classes: 4 << cls elements.
  static constexpr size_t kBaseCapacity = 4;
  static constexpr int kNumClasses = 8;  // Up to 512 elements; beyond: malloc.

  struct FreeNode {
    FreeNode* next;
  };

  // Per-thread freelists (see the file comment): engine workers recycle
  // without synchronization, and a worker's arena is freed when it exits.
  struct FreeListArray {
    FreeNode* lists[kNumClasses] = {};
    ~FreeListArray() {
      for (FreeNode*& head : lists) {
        while (head != nullptr) {
          FreeNode* node = head;
          head = node->next;
          ::operator delete(node);
        }
      }
    }
  };

  static FreeNode** FreeLists() {
    static thread_local FreeListArray arena;
    return arena.lists;
  }

  static int ClassFor(size_t capacity) {
    size_t c = kBaseCapacity;
    for (int cls = 0; cls < kNumClasses; ++cls, c <<= 1) {
      if (capacity == c) {
        return cls;
      }
    }
    return -1;  // Oversized: plain heap, not pooled.
  }

  static T* Acquire(size_t capacity) {
    const int cls = ClassFor(capacity);
    if (cls >= 0 && FreeLists()[cls] != nullptr) {
      FreeNode* node = FreeLists()[cls];
      FreeLists()[cls] = node->next;
      return reinterpret_cast<T*>(node);
    }
    return static_cast<T*>(::operator new(capacity * sizeof(T)));
  }

  static void Release(T* buffer, size_t capacity) {
    if (buffer == nullptr) {
      return;
    }
    const int cls = ClassFor(capacity);
    if (cls >= 0) {
      auto* node = reinterpret_cast<FreeNode*>(buffer);
      node->next = FreeLists()[cls];
      FreeLists()[cls] = node;
      return;
    }
    ::operator delete(buffer);
  }

  static_assert(sizeof(T) >= sizeof(FreeNode),
                "pooled element must hold a freelist pointer");

  // Allocates the larger buffer and constructs the new element into it
  // *before* relocating the old elements, so the arguments may reference
  // the current storage (e.g. emplace_back(v[0])).
  template <typename... Args>
  T* GrowAndEmplace(Args&&... args) {
    const uint32_t new_capacity =
        capacity_ == 0 ? static_cast<uint32_t>(kBaseCapacity) : capacity_ * 2;
    T* new_data = Acquire(new_capacity);
    T* slot;
    try {
      slot = ::new (new_data + size_) T(std::forward<Args>(args)...);
    } catch (...) {
      Release(new_data, new_capacity);
      throw;
    }
    for (size_t i = 0; i < size_; ++i) {
      ::new (new_data + i) T(std::move(data_[i]));
      data_[i].~T();
    }
    ReleaseBuffer();
    data_ = new_data;
    capacity_ = new_capacity;
    ++size_;
    return slot;
  }

  void CopyFrom(const PooledVec& other) {
    for (const T& value : other) {
      push_back(value);
    }
  }

  void DestroyElements() {
    for (size_t i = 0; i < size_; ++i) {
      data_[i].~T();
    }
    size_ = 0;
  }

  void ReleaseBuffer() {
    Release(data_, capacity_);
    data_ = nullptr;
    capacity_ = 0;
  }

  T* data_ = nullptr;
  uint32_t size_ = 0;
  uint32_t capacity_ = 0;
};

}  // namespace incod

#endif  // INCOD_SRC_DNS_DNS_POOL_H_
