#include "src/sim/random.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace incod {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) {
    w = SplitMix64(&sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo > hi) {
    throw std::invalid_argument("UniformInt: lo > hi");
  }
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(NextU64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v = NextU64();
  while (v >= limit) {
    v = NextU64();
  }
  return lo + static_cast<int64_t>(v % range);
}

double Rng::UniformDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::Exponential(double mean) {
  if (mean <= 0) {
    throw std::invalid_argument("Exponential: mean must be > 0");
  }
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() {
  // Derive a child seed from fresh draws; parent advances, child independent.
  return Rng(NextU64() ^ Rotl(NextU64(), 31));
}

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  if (n == 0) {
    throw std::invalid_argument("ZipfDistribution: n must be > 0");
  }
  if (s <= 0) {
    throw std::invalid_argument("ZipfDistribution: s must be > 0");
  }
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  cut_ = 1.0 - HInverse(H(1.5) - std::pow(1.0, -s_));
}

double ZipfDistribution::H(double x) const {
  // Integral of x^-s: handles s == 1 (harmonic) separately.
  if (std::abs(s_ - 1.0) < 1e-12) {
    return std::log(x);
  }
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfDistribution::HInverse(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) {
    return std::exp(x);
  }
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  // Rejection-inversion (Hörmann & Derflinger 1996).
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    }
    if (k > n_) {
      k = n_;
    }
    const double kd = static_cast<double>(k);
    if (kd - x <= cut_ || u >= H(kd + 0.5) - std::pow(kd, -s_)) {
      return k - 1;  // 0-based rank.
    }
  }
}

DiscreteDistribution::DiscreteDistribution(std::vector<double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("DiscreteDistribution: empty weights");
  }
  cumulative_.resize(weights.size());
  double sum = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0) {
      throw std::invalid_argument("DiscreteDistribution: negative weight");
    }
    sum += weights[i];
    cumulative_[i] = sum;
  }
  if (sum <= 0) {
    throw std::invalid_argument("DiscreteDistribution: zero total weight");
  }
  for (auto& c : cumulative_) {
    c /= sum;
  }
  cumulative_.back() = 1.0;
}

size_t DiscreteDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  size_t lo = 0;
  size_t hi = cumulative_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cumulative_[mid] <= u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace incod
