// Sharded parallel simulation engine (conservative PDES).
//
// A ShardedSimulation partitions the event space into per-shard calendar
// queues — one shard per rack / topology partition — run by a worker-thread
// pool and synchronized by conservative lookahead: the minimum cross-shard
// Link propagation delay L. Execution proceeds in rounds:
//
//   1. Each worker drains its shards' mailboxes (cross-shard deliveries and
//      cancels posted by the previous round) and reports its earliest
//      pending event time.
//   2. A barrier completion computes the global safe horizon
//      H = min(next event across shards) + L; since any event executing at
//      t < H can only post cross-shard work at t + L >= H, every shard may
//      run all events strictly before H without missing a delivery.
//   3. Workers run their shards up to H and post new cross-shard records
//      into mutex-striped single-writer mailboxes; a second barrier closes
//      the round.
//
// Determinism: the parallel engine must be event-identical to the
// single-queue reference (Mode::kSingleQueue), which runs every shard in one
// ordinary Simulation. Two mechanisms make the orders coincide exactly:
//
//  * Cross-shard tie-breaking. A delivery from shard `src` carries the
//    synthesized sequence key kExternalSeqBase + (src << 32) + send_seq
//    (send_seq counts posts per (src, dst) pair). At equal delivery time,
//    cross-shard events therefore order after all receiver-local events and
//    among themselves by (source shard, send order) — independent of thread
//    interleaving. The single-queue mode posts through the same path, so the
//    tie-break is identical by construction.
//
//  * Per-shard RNG streams. shard(i) owns an RNG root derived from
//    (seed, i); in single-queue mode shard(i) is a view onto the master
//    queue with the same derived root. Components fork from their shard's
//    root, so both modes draw identical sequences.
//
// Cross-shard cancel follows the same conservative rule as data: a cancel
// issued at time t_c "travels" at latency L and takes effect only if
// t_c + L <= delivery time. The bound makes a successful cancel provably
// race-free (the target cannot have fired yet) and gives both modes the
// same accept/reject decision.
#ifndef INCOD_SRC_SIM_SHARDED_H_
#define INCOD_SRC_SIM_SHARDED_H_

#include <atomic>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "src/sim/inline_event.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace incod {

class ShardedSimulation {
 public:
  enum class Mode {
    kSingleQueue,  // Reference: all shards share one deterministic queue.
    kParallel,     // One queue per shard, worker threads, lookahead rounds.
  };

  struct Options {
    int num_shards = 1;
    int num_threads = 1;  // Worker pool size in kParallel mode.
    Mode mode = Mode::kParallel;
    uint64_t seed = 1;
    Simulation::EngineKind engine = Simulation::EngineKind::kCalendar;
  };

  // Handle for a cancellable cross-shard event (PostCrossShardCancellable).
  struct CrossShardEventId {
    int src_shard = -1;
    int dst_shard = -1;
    SimTime at = 0;
    uint64_t send_seq = 0;
  };

  explicit ShardedSimulation(Options options);
  ~ShardedSimulation();

  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  int num_shards() const { return num_shards_; }
  Mode mode() const { return options_.mode; }
  Simulation::EngineKind engine() const { return options_.engine; }

  // The Simulation components in shard `i` schedule into. In kParallel mode
  // a private queue; in kSingleQueue mode a view onto the shared master
  // queue. Either way it owns shard i's RNG root.
  Simulation& shard(int i) { return *shards_[static_cast<size_t>(i)]->sim; }

  // Declares a cross-shard latency (e.g. a Link's propagation delay whose
  // endpoints live in different shards). The lookahead is the minimum of all
  // registered latencies; it must be > 0 for conservative synchronization to
  // make progress.
  void RegisterCrossShardLatency(SimDuration latency);

  // Current lookahead, or Simulation::kNoEventTime when no cross-shard
  // latency has been registered.
  SimDuration lookahead() const { return lookahead_; }

  // Posts `fn` to run in shard `dst` at `deliver_at`. Must be called from
  // shard `src` (i.e. from an event executing there, or during setup), and
  // deliver_at must respect the lookahead bound: deliver_at >= src now + L.
  // Throws std::logic_error on a lookahead violation.
  void PostCrossShard(int src, int dst, SimTime deliver_at, InlineEvent fn);

  // As PostCrossShard, but the delivery can be cancelled with
  // CancelCrossShard until L before its delivery time.
  CrossShardEventId PostCrossShardCancellable(int src, int dst, SimTime deliver_at,
                                              InlineEvent fn);

  // Cancels a cancellable cross-shard delivery. Must be called from the
  // source shard. Returns true iff the cancel is timely (now + L <= delivery
  // time) and the delivery had not already been cancelled; a timely cancel
  // is guaranteed to take effect.
  bool CancelCrossShard(const CrossShardEventId& id);

  // Runs until every shard's queue is empty.
  void Run();

  // Runs all events with time <= t, then advances every shard clock to t.
  void RunUntil(SimTime t);

  // Minimum shard clock (informational; shard clocks advance independently
  // between synchronization points).
  SimTime Now() const;

  uint64_t events_executed() const;
  size_t pending_events() const;

 private:
  struct MailRecord {
    SimTime at = 0;
    uint64_t send_seq = 0;
    InlineEvent fn;
    bool cancellable = false;
    bool is_cancel = false;
  };
  // One mailbox per (dst, src) shard pair: single writer (src's worker),
  // single reader (dst's worker), so one mutex per lane never contends on
  // the hot path beyond the uncontended lock cost.
  struct Mailbox {
    std::mutex mu;
    std::vector<MailRecord> records;
  };
  struct ShardState {
    std::unique_ptr<Simulation> sim;
    std::vector<std::unique_ptr<Mailbox>> inbox;  // Indexed by src shard.
    // Live cancellable deliveries addressed to this shard:
    // (src, send_seq) -> local event id. Touched only by the owning worker.
    std::map<std::pair<int, uint64_t>, uint64_t> cancellable;
    std::vector<MailRecord> scratch;  // Drain buffer, ping-pongs with lanes.
  };
  struct RoundCompletion {
    ShardedSimulation* owner;
    void operator()() noexcept { owner->CompleteRound(); }
  };
  friend struct RoundCompletion;

  static uint64_t SynthSeq(int src, uint64_t send_seq);

  Simulation& SimOf(int shard) { return *shards_[static_cast<size_t>(shard)]->sim; }
  void CheckLookahead(int src, SimTime deliver_at) const;
  // Applies one mailbox record to shard `dst` (schedules a post / resolves a
  // cancel). Shared by the parallel drain and the single-queue direct path.
  void ApplyRecord(int dst, int src, MailRecord&& record);
  void DrainInbox(int dst);
  void RunRounds(SimTime target);
  void CompleteRound() noexcept;

  Options options_;
  int num_shards_;
  SimDuration lookahead_ = Simulation::kNoEventTime;
  std::unique_ptr<Simulation> master_;  // kSingleQueue only.
  std::vector<std::unique_ptr<ShardState>> shards_;
  // send_seq_[src][dst]: posts per shard pair; written only from src.
  std::vector<std::vector<uint64_t>> send_seq_;
  // Cancellable posts not yet cancelled, src-side: [src][dst] -> send_seqs.
  // Only the source shard touches its row, so the double-cancel answer is
  // thread-free and identical across modes. Entries for deliveries that
  // fired linger (the source cannot observe the firing), which is fine:
  // cancels against them fail the lookahead timeliness check.
  std::vector<std::vector<std::set<uint64_t>>> live_cancellable_;

  // Round state (kParallel): written by workers before the first barrier /
  // by its completion, read after — the barrier orders every access.
  SimTime target_ = 0;
  std::vector<SimTime> worker_min_;
  SimTime bound_ = 0;
  bool done_ = false;
  std::atomic<bool> abort_{false};
  std::mutex error_mu_;
  std::exception_ptr first_error_;
};

}  // namespace incod

#endif  // INCOD_SRC_SIM_SHARDED_H_
