#include "src/sim/simulation.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace incod {

Simulation::Simulation(uint64_t seed) : rng_(seed) {}

uint64_t Simulation::Schedule(SimDuration delay, std::function<void()> fn) {
  if (delay < 0) {
    delay = 0;
  }
  return ScheduleAt(now_ + delay, std::move(fn));
}

uint64_t Simulation::ScheduleAt(SimTime at, std::function<void()> fn) {
  if (at < now_) {
    at = now_;
  }
  const uint64_t id = next_id_++;
  queue_.push(Event{at, next_seq_++, id, std::move(fn)});
  pending_ids_.insert(id);
  return id;
}

bool Simulation::Cancel(uint64_t id) {
  // We cannot remove from the middle of a priority_queue; record the id and
  // skip the event when it surfaces. The set stays small because entries
  // are erased on pop.
  if (pending_ids_.find(id) == pending_ids_.end()) {
    return false;  // Never scheduled, already ran, or already cancelled.
  }
  return cancelled_.insert(id).second;
}

bool Simulation::IsCancelled(uint64_t id) { return cancelled_.erase(id) > 0; }

bool Simulation::RunNext() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    pending_ids_.erase(ev.id);
    if (IsCancelled(ev.id)) {
      continue;
    }
    now_ = ev.at;
    ++events_executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulation::Run() {
  while (RunNext()) {
  }
}

void Simulation::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    RunNext();
  }
  if (now_ < t) {
    now_ = t;
  }
}

void SchedulePeriodic(Simulation& sim, SimDuration initial_delay, SimDuration period,
                      std::function<bool()> fn) {
  auto shared = std::make_shared<std::function<bool()>>(std::move(fn));
  // Self-rescheduling callable; stops when the callback returns false.
  struct Rescheduler {
    Simulation& sim;
    SimDuration period;
    std::shared_ptr<std::function<bool()>> fn;
    void operator()() const {
      if ((*fn)()) {
        sim.Schedule(period, Rescheduler{sim, period, fn});
      }
    }
  };
  sim.Schedule(initial_delay, Rescheduler{sim, period, shared});
}

}  // namespace incod
