#include "src/sim/simulation.h"

#include <algorithm>
#include <bit>
#include <iterator>
#include <cstddef>
#include <memory>
#include <utility>

namespace incod {

Simulation::Simulation(uint64_t seed, EngineKind engine) : engine_(engine), rng_(seed) {
  if (engine_ == EngineKind::kCalendar) {
    buckets_.resize(kNumBuckets);
    occupied_.assign(kNumBuckets / 64, 0);
  }
}

Simulation::Simulation(Simulation* queue_owner, uint64_t seed)
    : engine_(queue_owner->engine_), queue_(queue_owner), rng_(seed) {}

bool Simulation::Cancel(uint64_t id) {
  if (queue_ != this) {
    return queue_->Cancel(id);
  }
  const uint32_t slot = static_cast<uint32_t>(id >> 32);
  const uint32_t gen = static_cast<uint32_t>(id);
  if (slot >= slots_.size()) {
    return false;  // Never scheduled.
  }
  Slot& s = slots_[slot];
  if (s.gen != gen || s.state != kPending) {
    return false;  // Already ran, already cancelled, or a stale id.
  }
  // The event body stays in its bucket/heap and is discarded when it
  // surfaces; only the slot flips, so Cancel is O(1) with no hashing.
  s.state = kCancelled;
  --live_events_;
  return true;
}

uint32_t Simulation::AllocSlot() {
  uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(Slot{});
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  slots_[slot].state = kPending;
  return slot;
}

void Simulation::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.state = kFree;
  if (++s.gen == 0) {
    s.gen = 1;  // Keep ids nonzero so Cancel(0) stays a guaranteed no-op.
  }
  free_slots_.push_back(slot);
}

uint64_t Simulation::ScheduleAtExternal(SimTime at, uint64_t external_seq, InlineEvent fn) {
  Simulation& q = *queue_;
  if (at < q.now_) {
    at = q.now_;
  }
  const uint32_t slot = q.AllocSlot();
  const uint64_t id = EncodeId(slot, q.slots_[slot].gen);
  ++q.live_events_;
  // External seqs must stay above every local seq and must not enter the
  // same-tick ring (they would break its seq-monotone order).
  if (q.engine_ == EngineKind::kHeap) {
    q.heap_.emplace(at, external_seq, slot, std::move(fn));
  } else {
    q.InsertCalendar(at, external_seq, slot, std::move(fn));
  }
  return id;
}

void Simulation::DemoteActiveRun() {
  // Both ranges are sorted by (at, seq); merge them back into the bucket.
  // Safe even mid-peek: callers re-read active_index_ afterwards, and events
  // executing out of run_ storage (MinKind::kRun) cannot reach here — their
  // inserts are at >= now_, whose segment is the active one.
  Bucket& b = buckets_[active_index_];
  std::vector<Event> merged;
  merged.reserve((run_.size() - run_head_) + (b.items.size() - b.head));
  std::merge(std::make_move_iterator(run_.begin() + static_cast<ptrdiff_t>(run_head_)),
             std::make_move_iterator(run_.end()),
             std::make_move_iterator(b.items.begin() + static_cast<ptrdiff_t>(b.head)),
             std::make_move_iterator(b.items.end()), std::back_inserter(merged),
             [](const Event& x, const Event& y) { return EventBefore(x, y); });
  b.items = std::move(merged);
  b.head = 0;
  if (b.items.empty()) {
    ClearOccupied(active_index_);
  } else {
    MarkOccupied(active_index_);
  }
  run_.clear();
  run_head_ = 0;
  active_index_ = kNoActive;
}

void Simulation::InsertSorted(Bucket& b, Event ev) {
  const auto pos = std::upper_bound(
      b.items.begin() + static_cast<ptrdiff_t>(b.head), b.items.end(), ev,
      [](const Event& value, const Event& elem) { return EventBefore(value, elem); });
  b.items.insert(pos, std::move(ev));
}

Simulation::MinRef Simulation::CalendarPeek() {
  // Purge cancelled ring entries up front so the front compare below sees a
  // live event (ring entries sit at Now(), the earliest possible time).
  while (same_tick_head_ < same_tick_.size() &&
         SlotCancelled(same_tick_[same_tick_head_].slot)) {
    FreeSlot(same_tick_[same_tick_head_].slot);
    same_tick_[same_tick_head_].fn = InlineEvent();
    ++same_tick_head_;
  }
  if (same_tick_head_ == same_tick_.size() && !same_tick_.empty()) {
    same_tick_.clear();
    same_tick_head_ = 0;
  }
  MinRef m = CalendarPeekQueues();
  if (same_tick_head_ < same_tick_.size()) {
    Event& front = same_tick_[same_tick_head_];
    // Queued events at Now() with a smaller seq (scheduled earlier for this
    // tick) still win; the ring only holds fresh (largest-seq) schedules.
    if (m.kind == MinKind::kNone || EventBefore(front, *m.ev)) {
      return MinRef{&front, MinKind::kSameTick};
    }
  }
  return m;
}

Simulation::MinRef Simulation::CalendarPeekQueues() {
  // Migrate far events whose segment entered the near window, dropping any
  // that were cancelled while waiting.
  const uint64_t base_seg = Segment(now_);
  while (!far_.empty() && Segment(far_.top().at) < base_seg + kNumBuckets) {
    Event ev = std::move(const_cast<Event&>(far_.top()));
    far_.pop();
    if (SlotCancelled(ev.slot)) {
      FreeSlot(ev.slot);
      continue;
    }
    InsertCalendar(std::move(ev));
  }
  for (;;) {
    if (active_index_ != kNoActive) {
      // Fast path: the active segment holds the minimum until both of its
      // streams drain. Inserts into an earlier segment (possible only out of
      // band, e.g. a mailbox drain) demote the run first, so reaching here
      // means no live event precedes the active segment.
      Bucket& b = buckets_[active_index_];
      while (run_head_ < run_.size() && SlotCancelled(run_[run_head_].slot)) {
        FreeSlot(run_[run_head_].slot);
        run_[run_head_].fn = InlineEvent();  // Release captures promptly.
        ++run_head_;
      }
      while (b.head < b.items.size() && SlotCancelled(b.items[b.head].slot)) {
        FreeSlot(b.items[b.head].slot);
        b.items[b.head].fn = InlineEvent();
        ++b.head;
      }
      const bool run_ok = run_head_ < run_.size();
      const bool items_ok = b.head < b.items.size();
      if (run_ok && (!items_ok || EventBefore(run_[run_head_], b.items[b.head]))) {
        return MinRef{&run_[run_head_], MinKind::kRun};
      }
      if (items_ok) {
        if (!run_ok) {
          // Roll the remaining same-segment inserts into stable run storage.
          run_.clear();
          run_head_ = b.head;
          std::swap(run_, b.items);
          b.head = 0;
          return MinRef{&run_[run_head_], MinKind::kRun};
        }
        return MinRef{&b.items[b.head], MinKind::kItems};
      }
      run_.clear();
      run_head_ = 0;
      b.items.clear();
      b.head = 0;
      ClearOccupied(active_index_);
      active_index_ = kNoActive;
    }
    // Scan the occupancy bitmap from the bucket holding Now() forward. All
    // live bucketed events sit within the next kNumBuckets segments, so the
    // first occupied bucket in circular order holds the earliest one.
    // Buckets behind Now() can only hold already-cancelled leftovers; they
    // purge to empty when the scan reaches them.
    constexpr size_t kWords = kNumBuckets / 64;
    const size_t base = static_cast<size_t>(base_seg) & kBucketMask;
    size_t word = base >> 6;
    uint64_t mask = ~uint64_t{0} << (base & 63);
    for (size_t w = 0; w <= kWords; ++w) {
      uint64_t bits = occupied_[word] & mask;
      while (bits != 0) {
        const size_t bucket = (word << 6) + static_cast<size_t>(std::countr_zero(bits));
        Bucket& b = buckets_[bucket];
        while (b.head < b.items.size() && SlotCancelled(b.items[b.head].slot)) {
          FreeSlot(b.items[b.head].slot);
          b.items[b.head].fn = InlineEvent();
          ++b.head;
        }
        if (b.head == b.items.size()) {
          b.items.clear();
          b.head = 0;
          ClearOccupied(bucket);
          bits &= bits - 1;
          continue;
        }
        // Found the minimum segment: make it the active run.
        active_index_ = bucket;
        run_.clear();
        run_head_ = b.head;
        std::swap(run_, b.items);
        b.head = 0;
        active_seg_ = Segment(run_[run_head_].at);
        return MinRef{&run_[run_head_], MinKind::kRun};
      }
      ++word;
      if (word == kWords) {
        word = 0;
      }
      mask = ~uint64_t{0};
    }
    // No live near event: the minimum is the far top (purged of cancelled
    // entries below). Far events all sit beyond the near window, so any near
    // candidate would have won the comparison anyway.
    while (!far_.empty() && SlotCancelled(far_.top().slot)) {
      FreeSlot(far_.top().slot);
      far_.pop();
    }
    if (far_.empty()) {
      return MinRef{nullptr, MinKind::kNone};
    }
    return MinRef{&const_cast<Event&>(far_.top()), MinKind::kFar};
  }
}

void Simulation::PurgeHeapTop() {
  while (!heap_.empty() && SlotCancelled(heap_.top().slot)) {
    FreeSlot(heap_.top().slot);
    heap_.pop();
  }
}

SimTime Simulation::PeekNextTime() {
  if (engine_ == EngineKind::kHeap) {
    PurgeHeapTop();
    return heap_.top().at;
  }
  return CalendarPeek().ev->at;
}

void Simulation::MaybeAdaptWidth() {
  if (--adapt_countdown_ != 0) {
    return;
  }
  adapt_countdown_ = kAdaptInterval;
  const uint64_t span = static_cast<uint64_t>(now_ - adapt_window_start_);
  adapt_window_start_ = now_;
  const uint64_t inserts = near_inserts_ + far_inserts_;
  // A busy far heap means the near window is too short for the live gap
  // distribution (it should only hold long timers): raise the width floor.
  // A quiet one lets the floor decay so a density burst can narrow again.
  if (far_inserts_ * 4 > inserts) {
    width_floor_log2_ = std::min(width_log2_ + 1, kMaxWidthLog2);
  } else if (far_inserts_ * 64 < inserts && width_floor_log2_ > kMinWidthLog2) {
    --width_floor_log2_;
  }
  near_inserts_ = 0;
  far_inserts_ = 0;
  // Average inter-event gap over the last interval; aim for ~2 events per
  // bucket (bit_width(gap) == floor(log2) + 1).
  const uint64_t gap = span / kAdaptInterval;
  int target = gap == 0 ? kMinWidthLog2 : std::bit_width(gap);
  target = std::clamp(target, width_floor_log2_, kMaxWidthLog2);
  if (target > width_log2_ + 1 || target < width_log2_ - 1 ||
      (target > width_log2_ && target == width_floor_log2_)) {
    Rebuild(target);
  }
}

void Simulation::Rebuild(int new_width_log2) {
  std::vector<Event> pending;
  pending.reserve(live_events_);
  for (size_t j = run_head_; j < run_.size(); ++j) {
    if (SlotCancelled(run_[j].slot)) {
      FreeSlot(run_[j].slot);
    } else {
      pending.push_back(std::move(run_[j]));
    }
  }
  run_.clear();
  run_head_ = 0;
  active_index_ = kNoActive;
  // Ring entries re-enter through the bucket path (their at == Now()); the
  // ring must stay fresh-schedules-only so its seq order holds.
  for (size_t j = same_tick_head_; j < same_tick_.size(); ++j) {
    if (SlotCancelled(same_tick_[j].slot)) {
      FreeSlot(same_tick_[j].slot);
    } else {
      pending.push_back(std::move(same_tick_[j]));
    }
  }
  same_tick_.clear();
  same_tick_head_ = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    Bucket& b = buckets_[i];
    for (size_t j = b.head; j < b.items.size(); ++j) {
      if (SlotCancelled(b.items[j].slot)) {
        FreeSlot(b.items[j].slot);
      } else {
        pending.push_back(std::move(b.items[j]));
      }
    }
    b.items.clear();
    b.head = 0;
  }
  std::fill(occupied_.begin(), occupied_.end(), 0);
  width_log2_ = new_width_log2;
  // Reinsert under the new geometry; events past the (new) window spill to
  // the far heap, and far events now inside it migrate back on the next
  // peek.
  for (Event& ev : pending) {
    InsertCalendar(std::move(ev));
  }
}

bool Simulation::RunNext() {
  if (queue_ != this) {
    return queue_->RunNext();
  }
  if (live_events_ == 0) {
    return false;
  }
  if (engine_ == EngineKind::kHeap) {
    PurgeHeapTop();
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    --live_events_;
    // Free before running so Cancel() of the running event's own id reports
    // false (it is no longer pending) instead of poisoning a future event.
    FreeSlot(ev.slot);
    now_ = ev.at;
    ++events_executed_;
    ev.fn();
    return true;
  }
  // Width adaptation may Rebuild() (relocating queued events), so it runs
  // before we take a reference to the minimum event, never after.
  MaybeAdaptWidth();
  const MinRef m = CalendarPeek();
  --live_events_;
  FreeSlot(m.ev->slot);
  now_ = m.ev->at;
  ++events_executed_;
  switch (m.kind) {
    case MinKind::kRun: {
      // Stable storage: execute in place with zero moves. Inserts during
      // fn() target the bucket vector, never run_.
      ++run_head_;
      m.ev->fn();
      return true;
    }
    case MinKind::kItems: {
      // A same-segment insert overtook the run: its storage can move while
      // fn() schedules, so move the event out first.
      Bucket& b = buckets_[active_index_];
      Event ev = std::move(b.items[b.head]);
      ++b.head;
      ev.fn();
      return true;
    }
    case MinKind::kFar: {
      Event ev = std::move(const_cast<Event&>(far_.top()));
      far_.pop();
      ev.fn();
      return true;
    }
    case MinKind::kSameTick: {
      // fn() may append to the ring; move out first so growth can't
      // invalidate the executing event.
      Event ev = std::move(same_tick_[same_tick_head_]);
      ++same_tick_head_;
      if (same_tick_head_ == same_tick_.size()) {
        same_tick_.clear();
        same_tick_head_ = 0;
      }
      ev.fn();
      return true;
    }
    case MinKind::kNone:
      break;
  }
  return false;
}

void Simulation::Run() {
  while (RunNext()) {
  }
}

void Simulation::RunUntil(SimTime t) {
  if (queue_ != this) {
    queue_->RunUntil(t);
    return;
  }
  while (live_events_ > 0 && PeekNextTime() <= t) {
    RunNext();
  }
  if (now_ < t) {
    now_ = t;
  }
}

void Simulation::RunWhileBefore(SimTime bound) {
  if (queue_ != this) {
    queue_->RunWhileBefore(bound);
    return;
  }
  while (live_events_ > 0 && PeekNextTime() < bound) {
    RunNext();
  }
}

void Simulation::AdvanceNowTo(SimTime t) {
  Simulation& q = *queue_;
  if (q.now_ < t) {
    q.now_ = t;
  }
}

SimTime Simulation::NextEventTime() {
  Simulation& q = *queue_;
  if (q.live_events_ == 0) {
    return kNoEventTime;
  }
  return q.PeekNextTime();
}

void SchedulePeriodic(Simulation& sim, SimDuration initial_delay, SimDuration period,
                      std::function<bool()> fn) {
  auto shared = std::make_shared<std::function<bool()>>(std::move(fn));
  // Self-rescheduling callable; stops when the callback returns false.
  struct Rescheduler {
    Simulation& sim;
    SimDuration period;
    std::shared_ptr<std::function<bool()>> fn;
    void operator()() const {
      if ((*fn)()) {
        sim.Schedule(period, Rescheduler{sim, period, fn});
      }
    }
  };
  sim.Schedule(initial_delay, Rescheduler{sim, period, shared});
}

}  // namespace incod
