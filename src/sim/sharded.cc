#include "src/sim/sharded.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace incod {
namespace {

// Sense-reversing spin barrier. Conservative rounds are microseconds of
// simulated time and often only dozens of events of real work, so the futex
// sleep/wake in std::barrier costs more than the round it fences; spin
// briefly and fall back to yield so oversubscribed hosts still progress.
class SpinBarrier {
 public:
  // Spinning only pays when every party can burn its own core; on an
  // oversubscribed host a waiter's spin quantum is exactly the time the
  // straggler needed, so yield immediately instead.
  explicit SpinBarrier(int parties)
      : parties_(parties),
        spin_limit_(std::thread::hardware_concurrency() >= static_cast<unsigned>(parties)
                        ? kSpinLimit
                        : 0) {}

  // The last arriver runs `completion` before releasing the others; arriving
  // release-publishes the caller's prior writes to the completion, and the
  // phase release-store publishes the completion's writes to every waiter.
  template <typename Completion>
  void ArriveAndWait(Completion&& completion) {
    const uint64_t phase = phase_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      completion();
      arrived_.store(0, std::memory_order_relaxed);
      phase_.store(phase + 1, std::memory_order_release);
      return;
    }
    int spins = 0;
    while (phase_.load(std::memory_order_acquire) == phase) {
      if (++spins > spin_limit_) {
        std::this_thread::yield();
      }
    }
  }

  void ArriveAndWait() {
    ArriveAndWait([] {});
  }

 private:
  static constexpr int kSpinLimit = 4096;
  const int parties_;
  const int spin_limit_;
  std::atomic<int> arrived_{0};
  std::atomic<uint64_t> phase_{0};
};

// Derives shard i's RNG root from the run seed; both modes use the same
// derivation so components fork identical streams.
uint64_t ShardSeed(uint64_t seed, int shard) {
  uint64_t state = seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(shard + 1);
  return SplitMix64(&state);
}

SimTime SatAdd(SimTime a, SimTime b) {
  if (a >= Simulation::kNoEventTime - b) {
    return Simulation::kNoEventTime;
  }
  return a + b;
}

// Wrapper for cancellable deliveries: un-registers the (src, send_seq) entry
// when the event fires so the dst-side map only holds live deliveries.
struct CancellableRunner {
  std::map<std::pair<int, uint64_t>, uint64_t>* live;
  int src;
  uint64_t send_seq;
  InlineEvent fn;

  void operator()() {
    live->erase({src, send_seq});
    fn();
  }
};

}  // namespace

ShardedSimulation::ShardedSimulation(Options options)
    : options_(options), num_shards_(options.num_shards) {
  if (num_shards_ < 1) {
    throw std::invalid_argument("ShardedSimulation needs at least one shard");
  }
  if (options_.num_threads < 1) {
    options_.num_threads = 1;
  }
  if (options_.mode == Mode::kSingleQueue) {
    master_ = std::make_unique<Simulation>(options_.seed, options_.engine);
  }
  shards_.reserve(static_cast<size_t>(num_shards_));
  for (int i = 0; i < num_shards_; ++i) {
    auto state = std::make_unique<ShardState>();
    if (options_.mode == Mode::kSingleQueue) {
      state->sim = std::make_unique<Simulation>(master_.get(), ShardSeed(options_.seed, i));
    } else {
      state->sim =
          std::make_unique<Simulation>(ShardSeed(options_.seed, i), options_.engine);
      state->inbox.reserve(static_cast<size_t>(num_shards_));
      for (int src = 0; src < num_shards_; ++src) {
        state->inbox.push_back(std::make_unique<Mailbox>());
      }
    }
    shards_.push_back(std::move(state));
  }
  send_seq_.assign(static_cast<size_t>(num_shards_),
                   std::vector<uint64_t>(static_cast<size_t>(num_shards_), 0));
  live_cancellable_.assign(static_cast<size_t>(num_shards_),
                           std::vector<std::set<uint64_t>>(static_cast<size_t>(num_shards_)));
}

ShardedSimulation::~ShardedSimulation() = default;

uint64_t ShardedSimulation::SynthSeq(int src, uint64_t send_seq) {
  // (src, send_seq) must order lexicographically under one 64-bit key; posts
  // per pair are bounded far below 2^32 in any run.
  return Simulation::kExternalSeqBase + (static_cast<uint64_t>(src) << 32) + send_seq;
}

void ShardedSimulation::RegisterCrossShardLatency(SimDuration latency) {
  if (latency <= 0) {
    throw std::invalid_argument(
        "cross-shard latency must be > 0: zero lookahead cannot make progress");
  }
  lookahead_ = std::min(lookahead_, latency);
}

void ShardedSimulation::CheckLookahead(int src, SimTime deliver_at) const {
  if (lookahead_ == Simulation::kNoEventTime) {
    throw std::logic_error(
        "cross-shard post without a registered cross-shard latency");
  }
  const SimTime src_now = shards_[static_cast<size_t>(src)]->sim->Now();
  if (deliver_at < SatAdd(src_now, lookahead_)) {
    throw std::logic_error("cross-shard post violates the conservative lookahead bound");
  }
}

void ShardedSimulation::ApplyRecord(int dst, int src, MailRecord&& record) {
  ShardState& st = *shards_[static_cast<size_t>(dst)];
  Simulation& sim = *st.sim;
  if (record.is_cancel) {
    const auto it = st.cancellable.find({src, record.send_seq});
    if (it != st.cancellable.end()) {
      sim.Cancel(it->second);
      st.cancellable.erase(it);
    }
    return;
  }
  const uint64_t key = SynthSeq(src, record.send_seq);
  if (!record.cancellable) {
    sim.ScheduleAtExternal(record.at, key, std::move(record.fn));
    return;
  }
  const uint64_t id = sim.ScheduleAtExternal(
      record.at, key,
      InlineEvent(CancellableRunner{&st.cancellable, src, record.send_seq,
                                    std::move(record.fn)}));
  st.cancellable[{src, record.send_seq}] = id;
}

void ShardedSimulation::PostCrossShard(int src, int dst, SimTime deliver_at,
                                       InlineEvent fn) {
  CheckLookahead(src, deliver_at);
  const uint64_t seq = send_seq_[static_cast<size_t>(src)][static_cast<size_t>(dst)]++;
  MailRecord record;
  record.at = deliver_at;
  record.send_seq = seq;
  record.fn = std::move(fn);
  if (options_.mode == Mode::kSingleQueue) {
    ApplyRecord(dst, src, std::move(record));
    return;
  }
  Mailbox& mb = *shards_[static_cast<size_t>(dst)]->inbox[static_cast<size_t>(src)];
  std::lock_guard<std::mutex> lock(mb.mu);
  mb.records.push_back(std::move(record));
}

ShardedSimulation::CrossShardEventId ShardedSimulation::PostCrossShardCancellable(
    int src, int dst, SimTime deliver_at, InlineEvent fn) {
  CheckLookahead(src, deliver_at);
  const uint64_t seq = send_seq_[static_cast<size_t>(src)][static_cast<size_t>(dst)]++;
  MailRecord record;
  record.at = deliver_at;
  record.send_seq = seq;
  record.fn = std::move(fn);
  record.cancellable = true;
  live_cancellable_[static_cast<size_t>(src)][static_cast<size_t>(dst)].insert(seq);
  if (options_.mode == Mode::kSingleQueue) {
    ApplyRecord(dst, src, std::move(record));
  } else {
    Mailbox& mb = *shards_[static_cast<size_t>(dst)]->inbox[static_cast<size_t>(src)];
    std::lock_guard<std::mutex> lock(mb.mu);
    mb.records.push_back(std::move(record));
  }
  return CrossShardEventId{src, dst, deliver_at, seq};
}

bool ShardedSimulation::CancelCrossShard(const CrossShardEventId& id) {
  if (id.src_shard < 0 || id.dst_shard < 0) {
    return false;
  }
  std::set<uint64_t>& live = live_cancellable_[static_cast<size_t>(id.src_shard)]
                                              [static_cast<size_t>(id.dst_shard)];
  if (live.find(id.send_seq) == live.end()) {
    return false;  // Already cancelled (or never posted as cancellable).
  }
  // Conservative rule: the cancel travels at lookahead latency; if it cannot
  // arrive before the delivery time, the event is (or will be) beyond reach.
  // In particular, a delivery that already fired always fails this check, so
  // a `true` return guarantees the cancel takes effect.
  const SimTime src_now = shards_[static_cast<size_t>(id.src_shard)]->sim->Now();
  if (SatAdd(src_now, lookahead_) > id.at) {
    return false;
  }
  live.erase(id.send_seq);
  MailRecord record;
  record.at = id.at;
  record.send_seq = id.send_seq;
  record.is_cancel = true;
  if (options_.mode == Mode::kSingleQueue) {
    ApplyRecord(id.dst_shard, id.src_shard, std::move(record));
    return true;
  }
  Mailbox& mb = *shards_[static_cast<size_t>(id.dst_shard)]
                     ->inbox[static_cast<size_t>(id.src_shard)];
  std::lock_guard<std::mutex> lock(mb.mu);
  mb.records.push_back(std::move(record));
  return true;
}

void ShardedSimulation::DrainInbox(int dst) {
  ShardState& st = *shards_[static_cast<size_t>(dst)];
  for (int src = 0; src < num_shards_; ++src) {
    Mailbox& mb = *st.inbox[static_cast<size_t>(src)];
    {
      std::lock_guard<std::mutex> lock(mb.mu);
      if (mb.records.empty()) {
        continue;
      }
      st.scratch.clear();
      std::swap(st.scratch, mb.records);
    }
    // Lane order is push order, so a post always precedes its own cancel;
    // relative order across lanes is irrelevant (the synthesized sequence
    // keys decide execution order).
    for (MailRecord& record : st.scratch) {
      ApplyRecord(dst, src, std::move(record));
    }
  }
}

void ShardedSimulation::CompleteRound() noexcept {
  SimTime global_min = Simulation::kNoEventTime;
  for (const SimTime m : worker_min_) {
    global_min = std::min(global_min, m);
  }
  if (abort_.load(std::memory_order_relaxed) ||
      global_min == Simulation::kNoEventTime || global_min > target_) {
    done_ = true;
    return;
  }
  done_ = false;
  bound_ = std::min(SatAdd(global_min, lookahead_), SatAdd(target_, 1));
}

void ShardedSimulation::RunRounds(SimTime target) {
  const int threads = std::min(options_.num_threads, num_shards_);
  target_ = target;
  worker_min_.assign(static_cast<size_t>(threads), Simulation::kNoEventTime);
  done_ = false;
  abort_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;

  SpinBarrier horizon(threads);
  SpinBarrier round_end(threads);

  const auto worker = [&](int w) {
    for (;;) {
      SimTime local_min = Simulation::kNoEventTime;
      if (!abort_.load(std::memory_order_relaxed)) {
        try {
          for (int s = w; s < num_shards_; s += threads) {
            DrainInbox(s);
          }
          for (int s = w; s < num_shards_; s += threads) {
            local_min = std::min(local_min, SimOf(s).NextEventTime());
          }
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(error_mu_);
            if (!first_error_) {
              first_error_ = std::current_exception();
            }
          }
          abort_.store(true, std::memory_order_relaxed);
          local_min = Simulation::kNoEventTime;
        }
      }
      worker_min_[static_cast<size_t>(w)] = local_min;
      horizon.ArriveAndWait(RoundCompletion{this});  // Computes bound_ / done_.
      if (done_) {
        return;
      }
      if (!abort_.load(std::memory_order_relaxed)) {
        try {
          for (int s = w; s < num_shards_; s += threads) {
            SimOf(s).RunWhileBefore(bound_);
          }
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(error_mu_);
            if (!first_error_) {
              first_error_ = std::current_exception();
            }
          }
          abort_.store(true, std::memory_order_relaxed);
        }
      }
      round_end.ArriveAndWait();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads - 1));
  for (int w = 1; w < threads; ++w) {
    pool.emplace_back(worker, w);
  }
  worker(0);
  for (std::thread& t : pool) {
    t.join();
  }
  if (first_error_) {
    std::rethrow_exception(first_error_);
  }
}

void ShardedSimulation::Run() {
  if (options_.mode == Mode::kSingleQueue) {
    master_->Run();
    return;
  }
  RunRounds(Simulation::kNoEventTime);
}

void ShardedSimulation::RunUntil(SimTime t) {
  if (options_.mode == Mode::kSingleQueue) {
    master_->RunUntil(t);
    return;
  }
  RunRounds(t);
  for (auto& shard : shards_) {
    shard->sim->AdvanceNowTo(t);
  }
}

SimTime ShardedSimulation::Now() const {
  if (options_.mode == Mode::kSingleQueue) {
    return master_->Now();
  }
  SimTime now = Simulation::kNoEventTime;
  for (const auto& shard : shards_) {
    now = std::min(now, shard->sim->Now());
  }
  return now;
}

uint64_t ShardedSimulation::events_executed() const {
  if (options_.mode == Mode::kSingleQueue) {
    return master_->events_executed();
  }
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->sim->events_executed();
  }
  return total;
}

size_t ShardedSimulation::pending_events() const {
  if (options_.mode == Mode::kSingleQueue) {
    return master_->pending_events();
  }
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->sim->pending_events();
  }
  return total;
}

}  // namespace incod
