// Discrete-event simulation core.
//
// A Simulation owns a priority queue of (time, sequence, callback) events.
// Components schedule callbacks; RunUntil/Run drains the queue in time order
// with FIFO tie-breaking, so results are bit-for-bit reproducible.
#ifndef INCOD_SRC_SIM_SIMULATION_H_
#define INCOD_SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/random.h"
#include "src/sim/time.h"

namespace incod {

class Simulation {
 public:
  explicit Simulation(uint64_t seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current simulated time.
  SimTime Now() const { return now_; }

  // Schedules `fn` to run `delay` ns from now. Negative delays are clamped
  // to zero (run "immediately", after already-queued events at Now()).
  // Returns an id usable with Cancel().
  uint64_t Schedule(SimDuration delay, std::function<void()> fn);

  // Schedules `fn` at absolute time `at` (clamped to Now()).
  uint64_t ScheduleAt(SimTime at, std::function<void()> fn);

  // Cancels a pending event. Returns false if it already ran / was cancelled.
  bool Cancel(uint64_t id);

  // Runs events until the queue is empty.
  void Run();

  // Runs events with time <= t, then sets Now() to t.
  void RunUntil(SimTime t);

  // Runs a single event. Returns false if the queue is empty.
  bool RunNext();

  // Number of events executed since construction.
  uint64_t events_executed() const { return events_executed_; }

  // Number of events currently pending.
  size_t pending_events() const { return queue_.size() - cancelled_.size(); }

  // Root RNG. Components should call rng().Fork() once at setup.
  Rng& rng() { return rng_; }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    uint64_t id;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;  // FIFO among same-time events.
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  // Ids still in the queue; keeps Cancel() of an already-run id a true
  // no-op (and Cancel honest about it) instead of poisoning bookkeeping.
  std::unordered_set<uint64_t> pending_ids_;
  // Consulted on every pop; entries are erased on hit so heavy cancel
  // workloads (rack orchestrator timers) stay O(1) per event.
  std::unordered_set<uint64_t> cancelled_;
  Rng rng_;

  bool IsCancelled(uint64_t id);
};

// Convenience: schedules `fn` every `period` until it returns false.
// The first invocation happens after `initial_delay`.
void SchedulePeriodic(Simulation& sim, SimDuration initial_delay, SimDuration period,
                      std::function<bool()> fn);

}  // namespace incod

#endif  // INCOD_SRC_SIM_SIMULATION_H_
