// Discrete-event simulation core.
//
// A Simulation owns a set of (time, sequence, callback) events. Components
// schedule callbacks; RunUntil/Run drains them in (time, sequence) order, so
// results are bit-for-bit reproducible with FIFO tie-breaking among
// same-time events.
//
// Two interchangeable engines implement the event set:
//
//  * kCalendar (default): a calendar queue — a ring of power-of-two-width
//    time buckets covering a sliding window ahead of Now(), with a binary
//    heap "far list" for events beyond the window (long timers). Near-term
//    events (packet hops) insert and pop in O(1) amortized; far events
//    migrate into buckets once the window reaches them. Cancellation is O(1)
//    via a generation-tagged slot table instead of hash sets.
//
//  * kHeap: the classic binary-heap engine, kept as the reference for
//    differential testing (tests/engine_diff_test.cc) and for the perf
//    trajectory recorded by bench/bench_engine.cc.
//
// Both engines share the slot table, sequence numbering, and counters, so
// any divergence in event order is a bug the differential tests catch.
#ifndef INCOD_SRC_SIM_SIMULATION_H_
#define INCOD_SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/inline_event.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace incod {

class Simulation {
 public:
  enum class EngineKind { kCalendar, kHeap };

  // Sentinel returned by NextEventTime() when the queue is empty.
  static constexpr SimTime kNoEventTime = INT64_MAX;

  // Seq values >= kExternalSeqBase are reserved for cross-shard deliveries
  // (sim/sharded.h): they order after every locally scheduled event at the
  // same tick, by (source shard, per-pair send sequence). The local counter
  // would need 2^48 events to collide — far beyond any run.
  static constexpr uint64_t kExternalSeqBase = uint64_t{1} << 48;

  explicit Simulation(uint64_t seed = 1, EngineKind engine = EngineKind::kCalendar);

  // Shard view: shares `queue_owner`'s event queue and clock but owns a
  // private RNG root. ShardedSimulation's single-queue reference mode hands
  // each shard's components such a view, so they fork the exact RNG streams
  // they would own in parallel mode while all events still run in one
  // deterministic queue.
  Simulation(Simulation* queue_owner, uint64_t seed);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current simulated time.
  SimTime Now() const { return queue_->now_; }

  EngineKind engine() const { return engine_; }

  // Schedules `fn` (any void() callable) to run `delay` ns from now.
  // Negative delays are clamped to zero (run "immediately", after
  // already-queued events at Now()). Returns an id usable with Cancel().
  // Templated so the callable is stored (as an InlineEvent) directly in its
  // queue slot — one copy, no intermediate moves, no heap allocation for
  // captures up to InlineEvent::kInlineCapacity.
  template <typename F>
  uint64_t Schedule(SimDuration delay, F&& fn) {
    if (delay < 0) {
      delay = 0;
    }
    Simulation& q = *queue_;
    return q.DoSchedule(q.now_ + delay, std::forward<F>(fn));
  }

  // Schedules `fn` at absolute time `at` (clamped to Now()).
  template <typename F>
  uint64_t ScheduleAt(SimTime at, F&& fn) {
    Simulation& q = *queue_;
    return q.DoSchedule(at < q.now_ ? q.now_ : at, std::forward<F>(fn));
  }

  // Schedules a cross-shard delivery under an explicit external sequence key
  // (>= kExternalSeqBase, see above). Used by ShardedSimulation so both the
  // parallel and the single-queue reference mode order cross-shard events
  // identically. `at` is clamped to Now().
  uint64_t ScheduleAtExternal(SimTime at, uint64_t external_seq, InlineEvent fn);

  // Cancels a pending event in O(1). Returns false if it already ran / was
  // cancelled.
  bool Cancel(uint64_t id);

  // Runs events until the queue is empty.
  void Run();

  // Runs events with time <= t, then sets Now() to t.
  void RunUntil(SimTime t);

  // Runs events with time strictly < bound, leaving Now() at the last
  // executed event. The conservative-lookahead window primitive: unlike
  // RunUntil it does not advance the clock past the final event, so a later
  // window (or a cross-shard delivery at >= bound) continues seamlessly.
  void RunWhileBefore(SimTime bound);

  // Advances Now() to `t` without running anything. Requires every pending
  // event to be later than `t`; used by ShardedSimulation to finish a
  // RunUntil round once the global horizon passed `t`.
  void AdvanceNowTo(SimTime t);

  // Time of the next live event, or kNoEventTime when the queue is empty.
  SimTime NextEventTime();

  // Runs a single event. Returns false if the queue is empty.
  bool RunNext();

  // Number of events executed since construction.
  uint64_t events_executed() const { return queue_->events_executed_; }

  // Number of events currently pending (scheduled, not yet run or cancelled).
  size_t pending_events() const { return queue_->live_events_; }

  // Root RNG. Components should call rng().Fork() once at setup.
  Rng& rng() { return rng_; }

 private:
  struct Event {
    SimTime at = 0;
    uint64_t seq = 0;
    uint32_t slot = 0;
    InlineEvent fn;

    Event() = default;
    template <typename F>
    Event(SimTime at_, uint64_t seq_, uint32_t slot_, F&& fn_)
        : at(at_), seq(seq_), slot(slot_), fn(std::forward<F>(fn_)) {}
    Event(Event&&) = default;
    Event& operator=(Event&&) = default;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;  // FIFO among same-time events.
    }
  };
  // Consumable sorted run of same-window events. `head` advances as events
  // pop; the vector is reset (keeping capacity) once drained.
  struct Bucket {
    std::vector<Event> items;
    size_t head = 0;
  };
  // Where CalendarPeek found the minimum event.
  enum class MinKind : uint8_t {
    kNone,      // No live events.
    kRun,       // run_[run_head_]: stable storage, executed in place.
    kItems,     // Active bucket's items (same-segment insert overtook the run).
    kFar,       // Far-heap top (window empty).
    kSameTick,  // Same-tick FIFO ring front (at == Now()).
  };
  struct MinRef {
    Event* ev = nullptr;
    MinKind kind = MinKind::kNone;
  };
  // Cancellation slots. An event id encodes (slot index, generation); the
  // generation bumps on every free, so stale ids from already-run events
  // fail the O(1) comparison instead of needing a pending-id hash set.
  enum SlotState : uint8_t { kFree, kPending, kCancelled };
  struct Slot {
    uint32_t gen = 1;
    SlotState state = kFree;
  };

  // Calendar geometry: 1024 buckets of power-of-two width cover a sliding
  // window ahead of Now(); events past the window go to the far heap. The
  // width adapts to the observed event density (kept near ~2 events per
  // bucket) so both multi-Mpps packet storms and sparse timer-only phases
  // stay O(1): every kAdaptInterval executed events the average inter-event
  // gap picks a new width, and the near set is re-bucketed if it moved by
  // two or more power-of-two steps (hysteresis against regime ping-pong).
  static constexpr int kNumBucketsLog2 = 10;
  static constexpr size_t kNumBuckets = size_t{1} << kNumBucketsLog2;
  static constexpr size_t kBucketMask = kNumBuckets - 1;
  static constexpr int kDefaultWidthLog2 = 10;
  static constexpr int kMinWidthLog2 = 0;
  static constexpr int kMaxWidthLog2 = 16;
  static constexpr uint64_t kAdaptInterval = 32768;

  static bool EventBefore(const Event& a, const Event& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  }
  uint64_t Segment(SimTime at) const { return static_cast<uint64_t>(at) >> width_log2_; }
  static uint64_t EncodeId(uint32_t slot, uint32_t gen) {
    return (static_cast<uint64_t>(slot) << 32) | gen;
  }

  template <typename F>
  uint64_t DoSchedule(SimTime at, F&& fn) {
    static_assert(std::is_invocable_r_v<void, std::decay_t<F>&>,
                  "events must be void() callables");
    const uint32_t slot = AllocSlot();
    const uint64_t id = EncodeId(slot, slots_[slot].gen);
    ++live_events_;
    if (engine_ == EngineKind::kHeap) {
      heap_.emplace(at, next_seq_++, slot, std::forward<F>(fn));
    } else if (at == now_) {
      // Same-tick FIFO ring: fresh delay-0 schedules carry the largest seq
      // at Now(), so a plain append keeps the ring sorted — no same-segment
      // sorted middle-insert on heavy fan-in. Only fresh schedules may take
      // this path: re-inserts (far migration, Rebuild) carry old seqs.
      if (same_tick_head_ == same_tick_.size() && !same_tick_.empty()) {
        same_tick_.clear();
        same_tick_head_ = 0;
      }
      same_tick_.emplace_back(at, next_seq_++, slot, std::forward<F>(fn));
    } else {
      InsertCalendar(at, next_seq_++, slot, std::forward<F>(fn));
    }
    return id;
  }

  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot);
  bool SlotCancelled(uint32_t slot) const { return slots_[slot].state == kCancelled; }

  // Places an event with as few callable copies as possible: the common path
  // constructs the Event (and its InlineEvent) directly in its bucket slot.
  template <typename F>
  void InsertCalendar(SimTime at, uint64_t seq, uint32_t slot, F&& fn) {
    const uint64_t seg = Segment(at);
    if (seg >= Segment(now_) + kNumBuckets) {
      ++far_inserts_;
      far_.emplace(at, seq, slot, std::forward<F>(fn));
      return;
    }
    ++near_inserts_;
    // Out-of-band inserts (a cross-shard mailbox drain between rounds, a far
    // migration) may land in a segment behind the active run; the fast path
    // would never look back at it. Fold the run into its bucket so the next
    // peek rescans from Now()'s segment. Inserts made while an event runs
    // never take this path: now_ sits inside the active segment, so their
    // segment is >= the active one.
    if (active_index_ != kNoActive && seg < active_seg_) {
      DemoteActiveRun();
    }
    const size_t index = static_cast<size_t>(seg) & kBucketMask;
    Bucket& b = buckets_[index];
    if (b.head == b.items.size()) {
      if (!b.items.empty()) {
        b.items.clear();  // Fully consumed run; reuse the capacity.
        b.head = 0;
      }
      MarkOccupied(index);
      b.items.emplace_back(at, seq, slot, std::forward<F>(fn));
      return;
    }
    const Event& back = b.items.back();
    // Common case: sorts last (same-tick events carry the largest seq).
    if (back.at < at || (back.at == at && back.seq < seq)) {
      b.items.emplace_back(at, seq, slot, std::forward<F>(fn));
      return;
    }
    InsertSorted(b, Event(at, seq, slot, std::forward<F>(fn)));
  }
  void InsertCalendar(Event&& ev) {
    InsertCalendar(ev.at, ev.seq, ev.slot, std::move(ev.fn));
  }
  void InsertSorted(Bucket& b, Event ev);
  // Folds the active run (and the bucket's overtaking inserts) back into its
  // bucket and clears the active state, re-arming the occupancy-bitmap scan.
  void DemoteActiveRun();
  // Re-evaluates the bucket width from the recent event rate; re-buckets the
  // near set when the regime changed.
  void MaybeAdaptWidth();
  void Rebuild(int new_width_log2);
  // Drops cancelled events it passes (freeing their slots), migrates due far
  // events into buckets, and returns the location of the minimum live event
  // (including the same-tick ring). Returns kNone when nothing is live.
  MinRef CalendarPeek();
  // CalendarPeek minus the same-tick ring (buckets / run / far only).
  MinRef CalendarPeekQueues();
  void PurgeHeapTop();
  // Time of the next live event. Precondition: live_events_ > 0.
  SimTime PeekNextTime();

  void MarkOccupied(size_t bucket) {
    occupied_[bucket >> 6] |= uint64_t{1} << (bucket & 63);
  }
  void ClearOccupied(size_t bucket) {
    occupied_[bucket >> 6] &= ~(uint64_t{1} << (bucket & 63));
  }

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  size_t live_events_ = 0;
  EngineKind engine_;
  int width_log2_ = kDefaultWidthLog2;
  // Density shouldn't narrow buckets below this: raised when the window gets
  // too short to hold the live gap distribution (far-heap spill), lowered
  // again once the far list goes quiet.
  int width_floor_log2_ = kMinWidthLog2;
  uint64_t adapt_countdown_ = kAdaptInterval;
  SimTime adapt_window_start_ = 0;
  uint64_t near_inserts_ = 0;
  uint64_t far_inserts_ = 0;

  std::vector<Bucket> buckets_;
  std::vector<uint64_t> occupied_;  // Bitmap: one bit per bucket.
  // The active segment's events, swapped out of their bucket so the hot pop
  // path executes them in place from stable storage (inserts that land in
  // the active segment go to the bucket vector and merge by comparison).
  std::vector<Event> run_;
  size_t run_head_ = 0;
  size_t active_index_ = kNoActive;
  // Absolute segment number of the active run (valid iff active_index_ is
  // set); DemoteActiveRun() triggers on inserts into earlier segments.
  uint64_t active_seg_ = 0;
  static constexpr size_t kNoActive = static_cast<size_t>(-1);
  // Same-tick FIFO ring: fresh events scheduled at exactly Now(). Always
  // sorted by seq (fresh schedules are seq-monotone) and always <= every
  // queued event's time, so the ring drains before Now() can advance.
  std::vector<Event> same_tick_;
  size_t same_tick_head_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> far_;
  std::priority_queue<Event, std::vector<Event>, EventLater> heap_;

  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;

  // The Simulation whose queue this instance schedules into: `this` for a
  // normal Simulation, the owner for a shard view.
  Simulation* queue_ = this;
  Rng rng_;
};

// Convenience: schedules `fn` every `period` until it returns false.
// The first invocation happens after `initial_delay`.
void SchedulePeriodic(Simulation& sim, SimDuration initial_delay, SimDuration period,
                      std::function<bool()> fn);

}  // namespace incod

#endif  // INCOD_SRC_SIM_SIMULATION_H_
