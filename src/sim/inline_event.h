// Small-buffer-optimized event callable.
//
// The simulator schedules hundreds of millions of events per run; with
// std::function every capture list larger than the implementation's tiny
// inline buffer (16 bytes on libstdc++) costs a heap allocation and a
// virtual-ish dispatch through RTTI-adjacent machinery. InlineEvent stores
// the callable in a fixed in-object buffer sized for the hot capture lists
// (a moved-in Packet plus a couple of pointers — see the static_asserts in
// link.cc, host/server.cc and device/smartnic.cc) and only falls back to the
// heap for oversized or throwing-move captures. Move-only, like the events
// themselves.
#ifndef INCOD_SRC_SIM_INLINE_EVENT_H_
#define INCOD_SRC_SIM_INLINE_EVENT_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace incod {

class InlineEvent {
 public:
  // Sized so the largest hot-path capture (host/server.cc: this + app ref +
  // thread index + service duration + a Packet with variant payload) stays
  // inline. Revisit alongside sizeof(Packet) when payload types grow.
  static constexpr size_t kInlineCapacity = 144;

  InlineEvent() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineEvent> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineEvent(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineEvent(InlineEvent&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  InlineEvent& operator=(InlineEvent&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.buf_, buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineEvent(const InlineEvent&) = delete;
  InlineEvent& operator=(const InlineEvent&) = delete;

  ~InlineEvent() { Reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs into `dst` from `src` storage, then destroys `src`.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= kInlineCapacity && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* src, void* dst) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); },
      [](void* src, void* dst) noexcept {
        *reinterpret_cast<D**>(dst) = *std::launder(reinterpret_cast<D**>(src));
      },
      [](void* s) noexcept { delete *std::launder(reinterpret_cast<D**>(s)); },
  };

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace incod

#endif  // INCOD_SRC_SIM_INLINE_EVENT_H_
