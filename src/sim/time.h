// Simulated-time primitives.
//
// All simulation time is kept in integer nanoseconds (SimTime). Helper
// constructors and accessors convert to/from human units. Integer time keeps
// event ordering exact and the simulation fully deterministic.
#ifndef INCOD_SRC_SIM_TIME_H_
#define INCOD_SRC_SIM_TIME_H_

#include <cstdint>

namespace incod {

// Nanoseconds since simulation start.
using SimTime = int64_t;

// Duration in nanoseconds (same representation as SimTime).
using SimDuration = int64_t;

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimDuration Nanoseconds(int64_t n) { return n; }
constexpr SimDuration Microseconds(int64_t n) { return n * kMicrosecond; }
constexpr SimDuration Milliseconds(int64_t n) { return n * kMillisecond; }
constexpr SimDuration Seconds(int64_t n) { return n * kSecond; }

// Converts a floating point quantity of seconds to SimDuration, rounding to
// the nearest nanosecond. Useful for rate-derived inter-arrival gaps.
constexpr SimDuration SecondsF(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond) + 0.5);
}

constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / kSecond; }
constexpr double ToMicroseconds(SimDuration d) {
  return static_cast<double>(d) / kMicrosecond;
}
constexpr double ToMilliseconds(SimDuration d) {
  return static_cast<double>(d) / kMillisecond;
}

}  // namespace incod

#endif  // INCOD_SRC_SIM_TIME_H_
