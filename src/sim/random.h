// Deterministic random number generation for the simulator.
//
// We provide our own engine (xoshiro256**, seeded via splitmix64) instead of
// std::mt19937 so that streams are cheap to fork per component and stable
// across standard library implementations. Distribution helpers cover the
// needs of the workload generators: uniform, exponential (Poisson arrivals),
// normal, and Zipf (key popularity, per the Facebook ETC workload).
#ifndef INCOD_SRC_SIM_RANDOM_H_
#define INCOD_SRC_SIM_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace incod {

// splitmix64: used to expand a single 64-bit seed into engine state.
// Reference: http://prng.di.unimi.it/splitmix64.c (public domain).
uint64_t SplitMix64(uint64_t* state);

// xoshiro256** engine. Small, fast, high quality; passes BigCrush.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Raw 64 random bits.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Exponential with the given mean (mean > 0).
  double Exponential(double mean);

  // Standard normal via Box-Muller; NormalDist below caches the spare value.
  double Normal(double mean, double stddev);

  // Bernoulli trial.
  bool Bernoulli(double p);

  // Forks an independent stream (hash-derived seed). Components each own a
  // forked stream so adding a component never perturbs another's draws.
  Rng Fork();

 private:
  uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

// Zipf-distributed integers over [0, n). Uses the rejection-inversion method
// of Hörmann & Derflinger, O(1) per sample and exact for any skew s > 0.
class ZipfDistribution {
 public:
  // n: population size; s: skew exponent (s=0.99 matches key-value store
  // workload studies such as Atikoglu et al., SIGMETRICS'12).
  ZipfDistribution(uint64_t n, double s);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double cut_;
};

// Discrete distribution over explicit weights (used for trace synthesis).
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(std::vector<double> weights);

  // Returns an index in [0, weights.size()).
  size_t Sample(Rng& rng) const;

 private:
  std::vector<double> cumulative_;
};

}  // namespace incod

#endif  // INCOD_SRC_SIM_RANDOM_H_
