#include "src/net/switch.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace incod {

L2Switch::L2Switch(Simulation& sim, std::string name, SimDuration forwarding_latency)
    : sim_(sim), name_(std::move(name)), forwarding_latency_(forwarding_latency) {}

int L2Switch::AttachLink(Link* link) {
  ports_.push_back(link);
  congested_egress_.push_back(false);
  upstream_paused_.push_back(false);
  if (link->config().flow.pfc) {
    link->SetFlowListener(this, this);
  }
  return static_cast<int>(ports_.size()) - 1;
}

void L2Switch::AddRoute(NodeId node, int port) {
  if (port < 0 || static_cast<size_t>(port) >= ports_.size()) {
    throw std::out_of_range("L2Switch::AddRoute: bad port");
  }
  routes_[node] = port;
}

void L2Switch::SetDefaultRoute(int port) {
  if (port < 0 || static_cast<size_t>(port) >= ports_.size()) {
    throw std::out_of_range("L2Switch::SetDefaultRoute: bad port");
  }
  default_port_ = port;
}

void L2Switch::InstallRule(const ForwardingRule& rule) {
  if (rule.out_port < 0 || static_cast<size_t>(rule.out_port) >= ports_.size()) {
    throw std::out_of_range("L2Switch::InstallRule: bad port");
  }
  for (auto& r : rules_) {
    if (r.proto == rule.proto && r.match_dst == rule.match_dst &&
        r.priority == rule.priority) {
      r = rule;
      return;
    }
  }
  rules_.push_back(rule);
  std::stable_sort(rules_.begin(), rules_.end(),
                   [](const ForwardingRule& a, const ForwardingRule& b) {
                     return a.priority > b.priority;
                   });
}

size_t L2Switch::RemoveRules(AppProto proto, std::optional<NodeId> match_dst) {
  const size_t before = rules_.size();
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                              [&](const ForwardingRule& r) {
                                if (r.proto != proto) {
                                  return false;
                                }
                                return !match_dst.has_value() || r.match_dst == match_dst;
                              }),
               rules_.end());
  return before - rules_.size();
}

bool L2Switch::ProcessInPipeline(Packet& packet) {
  (void)packet;
  return false;
}

void L2Switch::Receive(Packet packet) {
  if (ProcessInPipeline(packet)) {
    return;
  }
  // Rule overlay first (highest priority first).
  for (const auto& r : rules_) {
    if (r.proto != packet.proto) {
      continue;
    }
    if (r.match_dst.has_value() && *r.match_dst != packet.dst) {
      continue;
    }
    if (r.rewrite_dst.has_value()) {
      packet.dst = *r.rewrite_dst;
    }
    Forward(std::move(packet), r.out_port);
    return;
  }
  auto it = routes_.find(packet.dst);
  if (it == routes_.end()) {
    if (default_port_ >= 0) {
      Forward(std::move(packet), default_port_);
      return;
    }
    dropped_no_route_.Increment();
    return;
  }
  Forward(std::move(packet), it->second);
}

void L2Switch::OnLinkCongestion(Link* link, bool congested) {
  for (size_t p = 0; p < ports_.size(); ++p) {
    if (ports_[p] == link) {
      congested_egress_[p] = congested;
    }
  }
  UpdateUpstreamPauses();
}

void L2Switch::UpdateUpstreamPauses() {
  bool any = false;
  for (size_t p = 0; p < ports_.size(); ++p) {
    any = any || congested_egress_[p];
  }
  // Pause (or resume) the upstream sender of every flow-enabled port that is
  // not itself congested, in ascending port order for determinism.
  for (size_t p = 0; p < ports_.size(); ++p) {
    if (!ports_[p]->config().flow.pfc) {
      continue;
    }
    const bool want = any && !congested_egress_[p];
    if (want == static_cast<bool>(upstream_paused_[p])) {
      continue;
    }
    upstream_paused_[p] = want;
    if (want) {
      pauses_sent_.Increment();
    }
    ports_[p]->PauseUpstream(this, want);
  }
}

size_t L2Switch::congested_ports() const {
  size_t n = 0;
  for (const bool c : congested_egress_) {
    n += c ? 1u : 0u;
  }
  return n;
}

bool L2Switch::upstream_paused(int port) const {
  return upstream_paused_.at(static_cast<size_t>(port));
}

void L2Switch::Forward(Packet packet, int port) {
  forwarded_.Increment();
  Link* link = ports_[static_cast<size_t>(port)];
  sim_.Schedule(forwarding_latency_, [this, link, pkt = std::move(packet)]() mutable {
    link->Send(this, std::move(pkt));
  });
}

}  // namespace incod
