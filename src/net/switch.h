// L2 switch with a programmable forwarding table.
//
// Forwarding is by destination NodeId, with an overlay of priority rules
// matching (proto, dst) pairs. The Paxos leader-migration controller (§9.2)
// performs its shift exactly as in the paper: "the controller modifies
// switch forwarding rules to send messages to the new leader" — here, by
// installing a rule that redirects AppProto::kPaxos traffic addressed to the
// leader service address toward a different port.
#ifndef INCOD_SRC_NET_SWITCH_H_
#define INCOD_SRC_NET_SWITCH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/link.h"
#include "src/net/packet.h"
#include "src/sim/simulation.h"
#include "src/stats/counters.h"

namespace incod {

// PFC pause propagation: for ports attached with a flow-enabled link, the
// switch listens to its own egress backlog. While any egress port is
// congested (high watermark), every *other* flow-enabled port's upstream
// sender is paused — the classic PFC hop-by-hop spread that turns one
// overloaded server into head-of-line blocking for its rack neighbors. The
// congested port's own upstream stays unpaused so its drain (and replies)
// keep flowing.
class L2Switch : public PacketSink, public FlowListener {
 public:
  struct ForwardingRule {
    AppProto proto = AppProto::kRaw;
    std::optional<NodeId> match_dst;  // nullopt: match any destination.
    int out_port = -1;
    std::optional<NodeId> rewrite_dst;  // Optionally rewrites the destination.
    int priority = 0;                   // Higher wins.
  };

  L2Switch(Simulation& sim, std::string name,
           SimDuration forwarding_latency = Nanoseconds(800));

  // Attaches a link to the next port; returns the port index. The switch
  // must be one of the link's endpoints (Connect the link before/after).
  int AttachLink(Link* link);

  // Static route: packets for `node` leave via `port`.
  void AddRoute(NodeId node, int port);

  // Uplink / default route: packets with no matching rule or static route
  // leave via `port` instead of being dropped. Used by rack ToR switches to
  // send non-local traffic to the spine. Unset (the default) preserves the
  // drop-and-count behavior.
  void SetDefaultRoute(int port);

  // Installs (or replaces, by identical proto+match_dst+priority) a rule.
  void InstallRule(const ForwardingRule& rule);
  // Removes all rules matching proto (+dst if given). Returns count removed.
  size_t RemoveRules(AppProto proto, std::optional<NodeId> match_dst = std::nullopt);

  void Receive(Packet packet) override;
  std::string SinkName() const override { return name_; }

  // FlowListener: one of this switch's egress directions crossed a pause
  // watermark. Recomputes which upstream senders must be paused.
  void OnLinkCongestion(Link* link, bool congested) override;

  Simulation& sim() { return sim_; }

  uint64_t forwarded() const { return forwarded_.value(); }
  uint64_t dropped_no_route() const { return dropped_no_route_.value(); }
  size_t num_ports() const { return ports_.size(); }
  size_t num_rules() const { return rules_.size(); }
  // PFC propagation state/counters.
  size_t congested_ports() const;
  bool upstream_paused(int port) const;
  uint64_t pause_frames_sent() const { return pauses_sent_.value(); }

 protected:
  // Hook for derived devices (the programmable ASIC) to intercept packets
  // before forwarding. Returns true if the packet was consumed.
  virtual bool ProcessInPipeline(Packet& packet);

  Simulation& sim_;

 private:
  void Forward(Packet packet, int port);
  void UpdateUpstreamPauses();

  std::string name_;
  SimDuration forwarding_latency_;
  std::vector<Link*> ports_;
  int default_port_ = -1;
  std::unordered_map<NodeId, int> routes_;
  std::vector<ForwardingRule> rules_;
  Counter forwarded_;
  Counter dropped_no_route_;
  // Per-port PFC state (parallel to ports_).
  std::vector<bool> congested_egress_;
  std::vector<bool> upstream_paused_;
  Counter pauses_sent_;
};

}  // namespace incod

#endif  // INCOD_SRC_NET_SWITCH_H_
