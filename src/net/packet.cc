#include "src/net/packet.h"

namespace incod {

const char* AppProtoName(AppProto proto) {
  switch (proto) {
    case AppProto::kRaw:
      return "raw";
    case AppProto::kKv:
      return "kv";
    case AppProto::kPaxos:
      return "paxos";
    case AppProto::kDns:
      return "dns";
    case AppProto::kControl:
      return "control";
  }
  return "?";
}

const char* ControlKindName(ControlMessage::Kind kind) {
  switch (kind) {
    case ControlMessage::Kind::kActivateOffload:
      return "activate";
    case ControlMessage::Kind::kDeactivateOffload:
      return "deactivate";
    case ControlMessage::Kind::kReprogram:
      return "reprogram";
    case ControlMessage::Kind::kStatsRequest:
      return "stats-request";
    case ControlMessage::Kind::kStatsReport:
      return "stats-report";
    case ControlMessage::Kind::kCongestion:
      return "congestion";
  }
  return "?";
}

Packet MakeControlPacket(NodeId src, NodeId dst, const ControlMessage& msg, uint64_t id,
                         SimTime now) {
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.proto = AppProto::kControl;
  pkt.size_bytes = kControlWireBytes;
  pkt.id = id;
  pkt.created_at = now;
  pkt.payload = msg;
  return pkt;
}

}  // namespace incod
