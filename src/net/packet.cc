#include "src/net/packet.h"

namespace incod {

const char* AppProtoName(AppProto proto) {
  switch (proto) {
    case AppProto::kRaw:
      return "raw";
    case AppProto::kKv:
      return "kv";
    case AppProto::kPaxos:
      return "paxos";
    case AppProto::kDns:
      return "dns";
    case AppProto::kControl:
      return "control";
  }
  return "?";
}

}  // namespace incod
