// Topology assembly helper.
//
// Owns links and wires endpoints together so experiment setups read like the
// testbed descriptions in the paper (client -- switch -- server, etc.).
#ifndef INCOD_SRC_NET_TOPOLOGY_H_
#define INCOD_SRC_NET_TOPOLOGY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/net/link.h"
#include "src/net/switch.h"
#include "src/sim/simulation.h"

namespace incod {

class Topology {
 public:
  explicit Topology(Simulation& sim) : sim_(sim) {}

  // Creates a link and connects both ends. Returned pointer is owned by the
  // topology and valid for its lifetime.
  Link* Connect(PacketSink* a, PacketSink* b, Link::Config config = {},
                std::string name = "");

  // Creates a link between a switch and a sink, attaches it as a switch port
  // and adds a route for `node` via that port. Returns the link.
  Link* ConnectToSwitch(L2Switch* sw, PacketSink* sink, NodeId node,
                        Link::Config config = {}, std::string name = "");

  size_t num_links() const { return links_.size(); }

 private:
  Simulation& sim_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace incod

#endif  // INCOD_SRC_NET_TOPOLOGY_H_
