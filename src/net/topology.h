// Topology assembly helper.
//
// Owns links and wires endpoints together so experiment setups read like the
// testbed descriptions in the paper (client -- switch -- server, etc.).
#ifndef INCOD_SRC_NET_TOPOLOGY_H_
#define INCOD_SRC_NET_TOPOLOGY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/link.h"
#include "src/net/switch.h"
#include "src/sim/sharded.h"
#include "src/sim/simulation.h"

namespace incod {

class Topology {
 public:
  explicit Topology(Simulation& sim) : sim_(sim) {}

  // Declares that this topology builds into a ShardedSimulation. Sinks
  // default to `default_shard` unless AssignShard says otherwise; every
  // Connect from then on binds the link's endpoints to their shards, making
  // links whose ends differ the cross-shard boundaries (and their
  // propagation delays the lookahead candidates).
  void SetSharded(ShardedSimulation* sharded, int default_shard = 0) {
    sharded_ = sharded;
    default_shard_ = default_shard;
  }

  // Pins a sink to a shard. Must happen before the sink is Connect()ed.
  void AssignShard(const PacketSink* sink, int shard) { shard_of_[sink] = shard; }

  // Shard a sink was assigned (or the default). Meaningful only when
  // sharded.
  int ShardOf(const PacketSink* sink) const;

  // Creates a link and connects both ends. Returned pointer is owned by the
  // topology and valid for its lifetime.
  Link* Connect(PacketSink* a, PacketSink* b, Link::Config config = {},
                std::string name = "");

  // Creates a link between a switch and a sink, attaches it as a switch port
  // and adds a route for `node` via that port. Returns the link.
  Link* ConnectToSwitch(L2Switch* sw, PacketSink* sink, NodeId node,
                        Link::Config config = {}, std::string name = "");

  // Looks a link up by the name passed to Connect (first match); nullptr when
  // absent. Lets fault plans target links declaratively.
  Link* FindLink(const std::string& name) const;

  size_t num_links() const { return links_.size(); }

 private:
  Simulation& sim_;
  ShardedSimulation* sharded_ = nullptr;
  int default_shard_ = 0;
  std::unordered_map<const PacketSink*, int> shard_of_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace incod

#endif  // INCOD_SRC_NET_TOPOLOGY_H_
