// Node addressing and application protocol tags.
//
// Split out of packet.h so the per-application wire-message headers
// (kvs/kv_messages.h, paxos/paxos_wire.h, net/control_msg.h) can name
// NodeId/AppProto without pulling in Packet — packet.h itself includes them
// to build the typed payload variant.
#ifndef INCOD_SRC_NET_NODE_H_
#define INCOD_SRC_NET_NODE_H_

#include <cstddef>
#include <cstdint>

namespace incod {

// Flat node address (stands in for MAC/IP; the simulation needs no subnets).
using NodeId = uint32_t;

constexpr NodeId kBroadcastNode = 0xffffffff;

// Application protocol, as identified by the packet classifiers in LaKe /
// Emu DNS / the P4xos parser (derived from UDP port in the real designs).
enum class AppProto : uint8_t {
  kRaw = 0,    // Ordinary traffic: passes through NICs untouched.
  kKv,         // memcached / LaKe
  kPaxos,      // libpaxos / P4xos
  kDns,        // NSD / Emu DNS
  kControl,    // On-demand controller messages.
};

// Number of AppProto values (for per-protocol counter arrays). Derived from
// the last enumerator so the two cannot drift apart.
constexpr size_t kNumAppProtos = static_cast<size_t>(AppProto::kControl) + 1;

const char* AppProtoName(AppProto proto);

}  // namespace incod

#endif  // INCOD_SRC_NET_NODE_H_
