#include "src/net/flow_control.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/net/link.h"

namespace incod {

DcqcnRateController::DcqcnRateController(Simulation& sim, DcqcnConfig config)
    : sim_(sim),
      config_(config),
      rate_(config.line_rate_pps),
      target_rate_(config.line_rate_pps),
      alpha_(1.0) {
  if (config_.line_rate_pps <= 0 || config_.min_rate_pps <= 0) {
    throw std::invalid_argument("DcqcnRateController: rates must be > 0");
  }
  if (config_.min_rate_pps > config_.line_rate_pps) {
    throw std::invalid_argument("DcqcnRateController: min rate above line rate");
  }
}

void DcqcnRateController::AttachUplink(Link* link, PacketSink* sender) {
  uplink_ = link;
  sender_ = sender;
}

void DcqcnRateController::Submit(Packet packet) {
  if (uplink_ == nullptr || sender_ == nullptr) {
    throw std::logic_error("DcqcnRateController: Submit before AttachUplink");
  }
  if (!config_.enabled) {
    uplink_->Send(sender_, std::move(packet));
    return;
  }
  if (queue_.size() >= config_.pacer_capacity) {
    ++pacer_dropped_;
    return;
  }
  queue_.push_back(std::move(packet));
  SchedulePump();
}

void DcqcnRateController::SchedulePump() {
  if (pump_scheduled_ || uplink_congested_ || queue_.empty()) {
    return;
  }
  pump_scheduled_ = true;
  const SimTime at = std::max(sim_.Now(), next_tx_);
  sim_.ScheduleAt(at, [this] { Pump(); });
}

void DcqcnRateController::Pump() {
  pump_scheduled_ = false;
  if (uplink_congested_ || queue_.empty()) {
    return;  // Re-armed by SetUplinkCongested(false) / the next Submit.
  }
  Packet pkt = std::move(queue_.front());
  queue_.pop_front();
  ++paced_sent_;
  uplink_->Send(sender_, std::move(pkt));
  next_tx_ = sim_.Now() + SecondsF(1.0 / rate_);
  SchedulePump();
}

void DcqcnRateController::OnCnp() {
  ++cnps_;
  target_rate_ = rate_;
  rate_ = std::max(config_.min_rate_pps, rate_ * (1.0 - alpha_ / 2.0));
  alpha_ = (1.0 - config_.alpha_gain) * alpha_ + config_.alpha_gain;
  rounds_ = 0;
  EnsureRecoveryTimer();
}

void DcqcnRateController::SetUplinkCongested(bool congested) {
  uplink_congested_ = congested;
  if (!congested) {
    SchedulePump();
  }
}

void DcqcnRateController::EnsureRecoveryTimer() {
  if (recovery_scheduled_ || rate_ >= config_.line_rate_pps) {
    return;
  }
  recovery_scheduled_ = true;
  sim_.Schedule(config_.recovery_period, [this] { RecoveryTick(); });
}

void DcqcnRateController::RecoveryTick() {
  recovery_scheduled_ = false;
  alpha_ *= (1.0 - config_.alpha_gain);
  ++rounds_;
  // Target rate climbs additively each period, hyper-additively once the
  // sender has been CNP-free long enough; the current rate closes half the
  // gap to the target per period (DCQCN fast recovery).
  target_rate_ = std::min(config_.line_rate_pps, target_rate_ + config_.additive_step_pps);
  if (rounds_ > config_.hyper_after_rounds) {
    target_rate_ = std::min(config_.line_rate_pps, target_rate_ + config_.hyper_step_pps);
  }
  rate_ = std::min(config_.line_rate_pps, 0.5 * (rate_ + target_rate_));
  if (rate_ >= 0.999 * config_.line_rate_pps) {
    // Fully recovered: stop the timer so idle simulations drain and stop.
    rate_ = config_.line_rate_pps;
    target_rate_ = config_.line_rate_pps;
    return;
  }
  EnsureRecoveryTimer();
}

}  // namespace incod
