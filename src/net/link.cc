#include "src/net/link.h"

#include <stdexcept>
#include <utility>

namespace incod {

Link::Link(Simulation& sim, Config config, std::string name)
    : sim_(sim), config_(config), name_(std::move(name)) {
  if (config_.gigabits_per_second <= 0) {
    throw std::invalid_argument("Link: rate must be > 0");
  }
}

void Link::Connect(PacketSink* end_a, PacketSink* end_b) {
  ends_[0] = end_a;
  ends_[1] = end_b;
  dir_[0].to = end_a;
  dir_[1].to = end_b;
}

SimDuration Link::SerializationDelay(uint32_t bytes) const {
  const double bits = static_cast<double>(bytes) * 8.0;
  const double seconds = bits / (config_.gigabits_per_second * 1e9);
  return SecondsF(seconds);
}

int Link::IndexToward(const PacketSink* to) const {
  if (to == ends_[0]) {
    return 0;
  }
  if (to == ends_[1]) {
    return 1;
  }
  throw std::invalid_argument("Link: sink not connected to " + name_);
}

Link::Direction& Link::DirectionToward(const PacketSink* to) {
  return dir_[IndexToward(to)];
}

void Link::Send(const PacketSink* from, Packet packet) {
  if (ends_[0] == nullptr || ends_[1] == nullptr) {
    throw std::logic_error("Link::Send before Connect on " + name_);
  }
  PacketSink* to = (from == ends_[0]) ? ends_[1] : (from == ends_[1]) ? ends_[0] : nullptr;
  if (to == nullptr) {
    throw std::invalid_argument("Link::Send: sender not connected to " + name_);
  }
  Direction& d = DirectionToward(to);
  if (d.queued >= config_.queue_capacity_packets) {
    ++d.dropped;
    return;
  }
  const SimTime now = sim_.Now();
  const SimTime start = std::max(now, d.busy_until);
  const SimDuration ser = SerializationDelay(packet.size_bytes);
  d.busy_until = start + ser;
  ++d.queued;
  const SimTime deliver_at = start + ser + config_.propagation_delay;
  sim_.ScheduleAt(deliver_at, [this, to, pkt = std::move(packet)]() mutable {
    Direction& dd = DirectionToward(to);
    --dd.queued;
    ++dd.delivered;
    to->Receive(std::move(pkt));
  });
}

uint64_t Link::delivered(const PacketSink* toward) const {
  return dir_[IndexToward(toward)].delivered;
}

uint64_t Link::dropped(const PacketSink* toward) const {
  return dir_[IndexToward(toward)].dropped;
}

}  // namespace incod
