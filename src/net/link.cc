#include "src/net/link.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace incod {

static_assert(sizeof(Link*) + sizeof(int) <= InlineEvent::kInlineCapacity,
              "Link delivery events must stay inline");

Link::Link(Simulation& sim, Config config, std::string name)
    : sim_(sim), config_(config), name_(std::move(name)) {
  if (config_.gigabits_per_second <= 0) {
    throw std::invalid_argument("Link: rate must be > 0");
  }
}

void Link::Connect(PacketSink* end_a, PacketSink* end_b) {
  ends_[0] = end_a;
  ends_[1] = end_b;
  dir_[0].to = end_a;
  dir_[1].to = end_b;
}

SimDuration Link::SerializationDelay(uint32_t bytes) const {
  const double bits = static_cast<double>(bytes) * 8.0;
  const double seconds = bits / (config_.gigabits_per_second * 1e9);
  return SecondsF(seconds);
}

int Link::IndexToward(const PacketSink* to) const {
  if (to == ends_[0]) {
    return 0;
  }
  if (to == ends_[1]) {
    return 1;
  }
  throw std::invalid_argument("Link: sink not connected to " + name_);
}

void Link::Send(const PacketSink* from, Packet packet) {
  if (ends_[0] == nullptr || ends_[1] == nullptr) {
    throw std::logic_error("Link::Send before Connect on " + name_);
  }
  const int index = (from == ends_[0]) ? 1 : (from == ends_[1]) ? 0 : -1;
  if (index < 0) {
    throw std::invalid_argument("Link::Send: sender not connected to " + name_);
  }
  Direction& d = dir_[index];
  const SimTime now = sim_.Now();
  // The queue holds packets whose serialization has not started; the packet
  // occupying the transmitter (service_start <= now) and packets already on
  // the wire do not count against the capacity. Service starts are
  // non-decreasing in FIFO order, so the waiting backlog is the deque tail
  // past upper_bound(now).
  const auto first_waiting =
      std::upper_bound(d.in_flight.begin(), d.in_flight.end(), now,
                       [](SimTime t, const InFlight& f) { return t < f.service_start; });
  const size_t waiting = static_cast<size_t>(d.in_flight.end() - first_waiting);
  if (waiting >= config_.queue_capacity_packets) {
    ++d.dropped;
    return;
  }
  const SimTime start = std::max(now, d.busy_until);
  const SimDuration ser = SerializationDelay(packet.size_bytes);
  d.busy_until = start + ser;
  const SimTime deliver_at = start + ser + config_.propagation_delay;
  // Same-deliver-tick coalescing: FIFO service makes deliver times
  // non-decreasing, so an equal tick can only be the deque tail's. Ride the
  // already-scheduled event instead of adding another.
  const bool coalesce = config_.coalesce_same_tick_delivery &&
                        !d.in_flight.empty() &&
                        d.in_flight.back().deliver_at == deliver_at;
  d.in_flight.push_back(InFlight{start, deliver_at, std::move(packet)});
  if (!coalesce) {
    sim_.ScheduleAt(deliver_at, Deliver{this, index});
  }
}

void Link::CompleteDelivery(int dir) {
  Direction& d = dir_[dir];
  const SimTime tick = d.in_flight.front().deliver_at;
  do {
    Packet pkt = std::move(d.in_flight.front().pkt);
    d.in_flight.pop_front();
    ++d.delivered;
    d.to->Receive(std::move(pkt));
  } while (config_.coalesce_same_tick_delivery && !d.in_flight.empty() &&
           d.in_flight.front().deliver_at == tick);
}

uint64_t Link::delivered(const PacketSink* toward) const {
  return dir_[IndexToward(toward)].delivered;
}

uint64_t Link::dropped(const PacketSink* toward) const {
  return dir_[IndexToward(toward)].dropped;
}

size_t Link::in_flight(const PacketSink* toward) const {
  return dir_[IndexToward(toward)].in_flight.size();
}

}  // namespace incod
