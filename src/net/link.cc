#include "src/net/link.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/sim/sharded.h"

namespace incod {

static_assert(sizeof(Link*) + sizeof(int) <= InlineEvent::kInlineCapacity,
              "Link delivery events must stay inline");
static_assert(sizeof(Link*) + sizeof(int) + sizeof(bool) <= InlineEvent::kInlineCapacity,
              "Pause flip events must stay inline");

Link::Link(Simulation& sim, Config config, std::string name)
    : sim_(sim), config_(config), name_(std::move(name)) {
  if (config_.gigabits_per_second <= 0) {
    throw std::invalid_argument("Link: rate must be > 0");
  }
}

void Link::Connect(PacketSink* end_a, PacketSink* end_b) {
  ends_[0] = end_a;
  ends_[1] = end_b;
  dir_[0].to = end_a;
  dir_[1].to = end_b;
}

void Link::BindShards(ShardedSimulation& sharded, int shard_a, int shard_b) {
  sharded_ = &sharded;
  // dir_[i] carries traffic toward ends_[i]; its sender is the other end.
  dir_[0].drive = &sharded.shard(shard_b);
  dir_[1].drive = &sharded.shard(shard_a);
  if (shard_a == shard_b) {
    return;
  }
  if (config_.propagation_delay <= 0) {
    throw std::invalid_argument("Link " + name_ +
                                ": a cross-shard link needs propagation_delay > 0 "
                                "(it bounds the conservative lookahead)");
  }
  sharded.RegisterCrossShardLatency(config_.propagation_delay);
  dir_[0].cross = true;
  dir_[0].src_shard = shard_b;
  dir_[0].dst_shard = shard_a;
  dir_[1].cross = true;
  dir_[1].src_shard = shard_a;
  dir_[1].dst_shard = shard_b;
}

SimDuration Link::SerializationDelay(uint32_t bytes) const {
  const double bits = static_cast<double>(bytes) * 8.0;
  const double seconds = bits / (config_.gigabits_per_second * 1e9);
  return SecondsF(seconds);
}

int Link::IndexToward(const PacketSink* to) const {
  if (to == ends_[0]) {
    return 0;
  }
  if (to == ends_[1]) {
    return 1;
  }
  throw std::invalid_argument("Link: sink not connected to " + name_);
}

void Link::Send(const PacketSink* from, Packet packet) {
  if (ends_[0] == nullptr || ends_[1] == nullptr) {
    throw std::logic_error("Link::Send before Connect on " + name_);
  }
  const int index = (from == ends_[0]) ? 1 : (from == ends_[1]) ? 0 : -1;
  if (index < 0) {
    throw std::invalid_argument("Link::Send: sender not connected to " + name_);
  }
  Direction& d = dir_[index];
  if (d.tx_down) {
    // Cable is down at the sender: refuse the packet at the NIC, like a
    // carrier-loss TX error. Counted separately from queue-overflow drops.
    ++d.dropped_down_tx;
    return;
  }
  if (config_.flow.pfc) {
    SendPaced(index, std::move(packet));
    return;
  }
  Simulation& drive = DriveSim(d);
  const SimTime now = drive.Now();
  if (d.cross) {
    static_assert(sizeof(CrossDeliver) <= 2 * InlineEvent::kInlineCapacity,
                  "CrossDeliver grew unexpectedly; re-check the inline budget");
    // Same waiting-backlog rule as below, tracked by service start alone:
    // entries with service_start <= now are in service or on the wire.
    while (!d.waiting_starts.empty() && d.waiting_starts.front() <= now) {
      d.waiting_starts.pop_front();
    }
    if (d.waiting_starts.size() >= config_.queue_capacity_packets) {
      ++d.dropped_overflow;
      return;
    }
    const SimTime start = std::max(now, d.busy_until);
    const SimDuration ser = SerializationDelay(packet.size_bytes);
    d.busy_until = start + ser;
    d.waiting_starts.push_back(start);
    // deliver_at >= now + propagation >= now + lookahead, so the post always
    // satisfies the conservative bound.
    sharded_->PostCrossShard(d.src_shard, d.dst_shard,
                             start + ser + config_.propagation_delay,
                             CrossDeliver{this, index, std::move(packet)});
    return;
  }
  // The queue holds packets whose serialization has not started; the packet
  // occupying the transmitter (service_start <= now) and packets already on
  // the wire do not count against the capacity. Service starts are
  // non-decreasing in FIFO order, so the waiting backlog is the deque tail
  // past upper_bound(now).
  const auto first_waiting =
      std::upper_bound(d.in_flight.begin(), d.in_flight.end(), now,
                       [](SimTime t, const InFlight& f) { return t < f.service_start; });
  const size_t waiting = static_cast<size_t>(d.in_flight.end() - first_waiting);
  if (waiting >= config_.queue_capacity_packets) {
    ++d.dropped_overflow;
    return;
  }
  const SimTime start = std::max(now, d.busy_until);
  const SimDuration ser = SerializationDelay(packet.size_bytes);
  d.busy_until = start + ser;
  const SimTime deliver_at = start + ser + config_.propagation_delay;
  // Same-deliver-tick coalescing: FIFO service makes deliver times
  // non-decreasing, so an equal tick can only be the deque tail's. Ride the
  // already-scheduled event instead of adding another.
  const bool coalesce = config_.coalesce_same_tick_delivery &&
                        !d.in_flight.empty() &&
                        d.in_flight.back().deliver_at == deliver_at;
  d.in_flight.push_back(InFlight{start, deliver_at, std::move(packet)});
  if (!coalesce) {
    drive.ScheduleAt(deliver_at, Deliver{this, index});
  }
}

void Link::SendPaced(int index, Packet packet) {
  Direction& d = dir_[index];
  // In paced mode the waiting backlog is explicit: everything in tx_queue
  // except the packet occupying the serializer.
  const size_t waiting = d.tx_queue.size() - (d.serving ? 1u : 0u);
  if (waiting >= config_.queue_capacity_packets) {
    ++d.dropped_overflow;
    return;
  }
  if (d.peer_paused) {
    // Deferred behind the pause, not lost: it stays queued and delivers
    // after resume. Must never show up in the drop accounting.
    ++d.paused_deferred;
  }
  d.tx_queue.push_back(std::move(packet));
  if (!d.congested &&
      d.tx_queue.size() - (d.serving ? 1u : 0u) >= config_.flow.pause_high_watermark) {
    d.congested = true;
    if (d.listener != nullptr) {
      d.listener->OnLinkCongestion(this, true);
    }
  }
  if (!d.serving && !d.peer_paused) {
    StartService(index);
  }
}

void Link::StartService(int dir) {
  Direction& d = dir_[dir];
  d.serving = true;
  Simulation& drive = DriveSim(d);
  Packet& front = d.tx_queue.front();
  if (config_.flow.ecn && !front.ecn &&
      d.tx_queue.size() >= config_.flow.ecn_threshold_packets) {
    front.ecn = true;
    ++d.ecn_marked;
  }
  drive.ScheduleAt(drive.Now() + SerializationDelay(front.size_bytes),
                   ServeDone{this, dir});
}

void Link::CompleteService(int dir) {
  Direction& d = dir_[dir];
  Packet pkt = std::move(d.tx_queue.front());
  d.tx_queue.pop_front();
  Simulation& drive = DriveSim(d);
  const SimTime now = drive.Now();
  if (d.congested && d.tx_queue.size() <= config_.flow.pause_low_watermark) {
    d.congested = false;
    if (d.listener != nullptr) {
      d.listener->OnLinkCongestion(this, false);
    }
  }
  // Put the serialized packet on the wire (one delivery event per packet;
  // paced directions never coalesce, CompleteDelivery pops exactly one).
  if (d.tx_down) {
    ++d.dropped_down_tx;
  } else if (d.cross) {
    sharded_->PostCrossShard(d.src_shard, d.dst_shard, now + config_.propagation_delay,
                             CrossDeliver{this, dir, std::move(pkt)});
  } else {
    d.in_flight.push_back(InFlight{now, now + config_.propagation_delay, std::move(pkt)});
    drive.ScheduleAt(now + config_.propagation_delay, Deliver{this, dir});
  }
  if (!d.tx_queue.empty() && !d.peer_paused) {
    StartService(dir);
  } else {
    d.serving = false;
  }
}

void Link::SetFlowListener(const PacketSink* sender_end, FlowListener* listener) {
  if (!config_.flow.pfc) {
    throw std::logic_error("Link::SetFlowListener on non-PFC link " + name_);
  }
  // The direction `sender_end` transmits on is the one toward the other end.
  dir_[1 - IndexToward(sender_end)].listener = listener;
}

void Link::PauseUpstream(const PacketSink* self, bool paused) {
  if (!config_.flow.pfc) {
    throw std::logic_error("Link::PauseUpstream on non-PFC link " + name_);
  }
  const int index = IndexToward(self);
  Direction& d = dir_[index];
  // The pause frame travels from `self` back to the direction's sender: one
  // propagation delay, applied as an ordinary event in the sender's shard.
  if (d.cross) {
    // The caller runs in the receiver's shard for this direction; the flip
    // crosses to the sender's shard through the mailbox path.
    sharded_->PostCrossShard(d.dst_shard, d.src_shard,
                             sharded_->shard(d.dst_shard).Now() + config_.propagation_delay,
                             PauseFlip{this, index, paused});
    return;
  }
  Simulation& drive = DriveSim(d);
  drive.ScheduleAt(drive.Now() + config_.propagation_delay, PauseFlip{this, index, paused});
}

void Link::ApplyPauseFlip(int dir, bool paused) {
  Direction& d = dir_[dir];
  if (paused) {
    ++d.pause_frames;
  }
  if (paused == d.peer_paused) {
    return;  // Duplicate frame (watermark chatter): idempotent.
  }
  d.peer_paused = paused;
  if (!paused && !d.serving && !d.tx_queue.empty()) {
    StartService(dir);
  }
}

void Link::CompleteCrossDelivery(int dir, Packet pkt) {
  // Runs in the receiver's shard; the sender never touches these fields.
  Direction& d = dir_[dir];
  if (d.rx_down) {
    ++d.dropped_down_rx;
    return;
  }
  if (!d.to->alive()) {
    ++d.dropped_dead;
    return;
  }
  ++d.delivered;
  d.to->Receive(std::move(pkt));
}

void Link::CompleteDelivery(int dir) {
  Direction& d = dir_[dir];
  const SimTime tick = d.in_flight.front().deliver_at;
  do {
    Packet pkt = std::move(d.in_flight.front().pkt);
    d.in_flight.pop_front();
    if (d.rx_down) {
      // The cable went down while this packet was in flight: lost on the
      // wire, never handed to the sink.
      ++d.dropped_down_rx;
    } else if (!d.to->alive()) {
      // The receiving node died: the frame arrives at a dead port and is
      // dropped, not silently serviced.
      ++d.dropped_dead;
    } else {
      ++d.delivered;
      d.to->Receive(std::move(pkt));
    }
  } while (config_.coalesce_same_tick_delivery && !config_.flow.pfc &&
           !d.in_flight.empty() && d.in_flight.front().deliver_at == tick);
}

Simulation& Link::RxSim(const Direction& d) {
  // Receiver-side state (rx_down and the dead/rx-drop counters) is owned by
  // the destination shard for cross-shard directions.
  if (d.cross) {
    return sharded_->shard(d.dst_shard);
  }
  return DriveSim(d);
}

void Link::ScheduleAdmin(SimTime at, bool down) {
  if (ends_[0] == nullptr || ends_[1] == nullptr) {
    throw std::logic_error("Link: schedule down/up before Connect on " + name_);
  }
  for (int i = 0; i < 2; ++i) {
    Direction& d = dir_[i];
    // Two flips per direction: the TX flag in the sender's sim, the RX flag
    // in the receiver's — each shard only ever mutates state it owns. Both
    // are plain events, so engine modes stay event-identical.
    DriveSim(d).ScheduleAt(at, [&d, down] { d.tx_down = down; });
    RxSim(d).ScheduleAt(at, [&d, down] { d.rx_down = down; });
  }
}

void Link::ScheduleDown(SimTime at) { ScheduleAdmin(at, true); }

void Link::ScheduleUp(SimTime at) { ScheduleAdmin(at, false); }

uint64_t Link::delivered(const PacketSink* toward) const {
  return dir_[IndexToward(toward)].delivered;
}

uint64_t Link::dropped_overflow(const PacketSink* toward) const {
  return dir_[IndexToward(toward)].dropped_overflow;
}

bool Link::paused(const PacketSink* toward) const {
  return dir_[IndexToward(toward)].peer_paused;
}

size_t Link::queued(const PacketSink* toward) const {
  const Direction& d = dir_[IndexToward(toward)];
  return d.tx_queue.size() - (d.serving ? 1u : 0u);
}

uint64_t Link::pause_frames(const PacketSink* toward) const {
  return dir_[IndexToward(toward)].pause_frames;
}

uint64_t Link::ecn_marked(const PacketSink* toward) const {
  return dir_[IndexToward(toward)].ecn_marked;
}

uint64_t Link::paused_deferred(const PacketSink* toward) const {
  return dir_[IndexToward(toward)].paused_deferred;
}

bool Link::link_down(const PacketSink* toward) const {
  return dir_[IndexToward(toward)].tx_down;
}

uint64_t Link::dropped_link_down(const PacketSink* toward) const {
  const Direction& d = dir_[IndexToward(toward)];
  return d.dropped_down_tx + d.dropped_down_rx;
}

uint64_t Link::dropped_to_dead(const PacketSink* toward) const {
  return dir_[IndexToward(toward)].dropped_dead;
}

size_t Link::in_flight(const PacketSink* toward) const {
  const Direction& d = dir_[IndexToward(toward)];
  return d.in_flight.size() + d.tx_queue.size();
}

}  // namespace incod
