// Point-to-point full-duplex link.
//
// Models a 10GE (or faster) cable: serialization delay from the configured
// rate, fixed propagation delay, and a bounded per-direction FIFO that drops
// on overflow (UDP semantics — the applications tolerate loss).
//
// Fast path: packets in flight live in a per-direction deque owned by the
// link, not in event captures. Each Send schedules a 16-byte delivery event
// ({link, direction}); because per-direction service is FIFO and deliver
// times are non-decreasing, the event just pops the deque front. No
// closure allocation, and the Packet moves exactly twice (in, out).
//
// Same-tick coalescing: when serialization rounds to zero ticks (tiny
// packets on fast links), consecutive packets share one deliver tick; with
// coalesce_same_tick_delivery (default) they share a single delivery event
// that drains every packet of that tick in FIFO order, instead of one
// event per packet. Delivery order is identical either way (asserted by
// net_test's differential check).
//
// PFC paced mode (config.flow.pfc): the direction instead runs a serve loop
// over an explicit transmit queue — one ServeDone event per packet — so the
// serializer can stop at a packet boundary when the receiver asserts pause.
// Pause/resume travel as ordinary scheduled events delayed by the
// propagation time (cross-shard via the mailbox path), the sender-side
// FlowListener hears high/low watermark crossings, and packets entering the
// serializer over the ECN threshold leave with packet.ecn set. Packets
// accepted while paused are deferred (counted in paused_deferred), never
// dropped — only a genuinely full waiting queue drops (dropped_overflow).
#ifndef INCOD_SRC_NET_LINK_H_
#define INCOD_SRC_NET_LINK_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>

#include "src/net/flow_control.h"
#include "src/net/packet.h"
#include "src/sim/simulation.h"

namespace incod {

class ShardedSimulation;

class Link {
 public:
  struct Config {
    double gigabits_per_second = 10.0;
    SimDuration propagation_delay = Nanoseconds(500);
    size_t queue_capacity_packets = 1024;
    // Batch packets that complete delivery on the same tick into one event.
    bool coalesce_same_tick_delivery = true;
    // PFC/ECN flow control; flow.pfc switches the link into paced mode.
    LinkFlowConfig flow;
  };

  Link(Simulation& sim, Config config, std::string name = "link");

  // Both endpoints must be set before Send() is used.
  void Connect(PacketSink* end_a, PacketSink* end_b);

  // Declares which shard each endpoint lives in (end_a/end_b as passed to
  // Connect). When the shards differ, the link becomes a cross-shard
  // boundary: sends run in the sender's shard, deliveries are posted through
  // the ShardedSimulation mailboxes stamped with the future delivery tick,
  // and the link registers its propagation delay (which must be > 0) as a
  // cross-shard latency — the conservative lookahead bound. Cross-shard
  // directions do not coalesce same-tick deliveries (each packet is one
  // mailbox record); delivery order is unchanged because records at one tick
  // execute in send order.
  void BindShards(ShardedSimulation& sharded, int shard_a, int shard_b);

  // Sends a packet from one endpoint toward the other. `from` must be one of
  // the two connected endpoints. Drops when the backlog of packets *waiting*
  // for the serializer reaches queue_capacity_packets; the packet currently
  // being serialized occupies the transmitter, not the queue.
  void Send(const PacketSink* from, Packet packet);

  // Fault layer: takes the cable down / brings it back up at `at`, in both
  // directions. While down, new sends are refused at the sender and packets
  // already in flight are dropped at their delivery tick; both are counted
  // in dropped_link_down. The flips are ordinary scheduled events (one per
  // direction endpoint, in the shard that owns that side's state), so
  // single-queue and sharded runs stay event-identical. Setup-time API:
  // call before the simulation runs, with a future `at`.
  void ScheduleDown(SimTime at);
  void ScheduleUp(SimTime at);

  // --- PFC flow control (requires config.flow.pfc) ---

  // Registers the sender-side congestion listener for the direction *away
  // from* `sender_end` (i.e. the direction that endpoint transmits on).
  // Fires synchronously from the shard owning that direction's serializer.
  void SetFlowListener(const PacketSink* sender_end, FlowListener* listener);

  // Emits a PFC pause (paused=true) or resume (false) frame from `self`
  // toward the peer transmitting at it: after one propagation delay the
  // direction toward `self` stops (or restarts) serializing at the next
  // packet boundary. The flip is an ordinary scheduled event in the sender's
  // shard — cross-shard directions post it through the mailbox path — so
  // engine modes stay event-identical. Must be called from the shard that
  // owns `self`'s side of the link.
  void PauseUpstream(const PacketSink* self, bool paused);

  // Whether the direction toward the given endpoint is currently paused by
  // the receiver (i.e. that endpoint asserted pause and it has taken effect).
  bool paused(const PacketSink* toward) const;
  // Waiting transmit backlog (excludes the packet being serialized).
  size_t queued(const PacketSink* toward) const;
  // Pause assertions that took effect on the direction.
  uint64_t pause_frames(const PacketSink* toward) const;
  // Packets ECN-marked entering the serializer.
  uint64_t ecn_marked(const PacketSink* toward) const;
  // Packets accepted into the transmit queue while the peer had the
  // direction paused: deferred, later delivered — never counted as drops.
  uint64_t paused_deferred(const PacketSink* toward) const;

  uint64_t delivered(const PacketSink* toward) const;
  // Packets dropped because the waiting queue was at capacity. `dropped` is
  // the legacy alias; paused-then-delivered packets never count here (they
  // show up in paused_deferred instead).
  uint64_t dropped_overflow(const PacketSink* toward) const;
  uint64_t dropped(const PacketSink* toward) const { return dropped_overflow(toward); }
  uint64_t total_dropped() const {
    return dir_[0].dropped_overflow + dir_[1].dropped_overflow;
  }
  // Whether the direction toward the given endpoint currently refuses sends.
  bool link_down(const PacketSink* toward) const;
  // Packets refused or dropped because the link was down (send-side refusals
  // plus in-flight packets whose delivery tick fell inside a down window).
  uint64_t dropped_link_down(const PacketSink* toward) const;
  // Packets dropped at delivery because the receiving sink was dead.
  uint64_t dropped_to_dead(const PacketSink* toward) const;
  // Packets accepted but not yet delivered (in service, queued, or on the
  // wire) toward the given endpoint.
  size_t in_flight(const PacketSink* toward) const;

  const std::string& name() const { return name_; }
  const Config& config() const { return config_; }

 private:
  struct InFlight {
    SimTime service_start = 0;  // When (or when scheduled) serialization begins.
    SimTime deliver_at = 0;     // service_start + serialization + propagation.
    Packet pkt;
  };
  struct Direction {
    PacketSink* to = nullptr;
    SimTime busy_until = 0;
    std::deque<InFlight> in_flight;  // FIFO; delivery events pop the front.
    uint64_t delivered = 0;
    uint64_t dropped_overflow = 0;  // Waiting queue at capacity.
    // PFC paced mode (config.flow.pfc). tx_queue holds packets not yet on
    // the wire, front included while it is being serialized (`serving`).
    // All of this is sender-side state.
    std::deque<Packet> tx_queue;
    bool serving = false;
    bool peer_paused = false;  // Receiver asserted pause; stop at boundary.
    bool congested = false;    // Watermark latch driving the FlowListener.
    FlowListener* listener = nullptr;
    uint64_t paused_deferred = 0;  // Accepted while paused (deferred, not dropped).
    uint64_t pause_frames = 0;     // Pause assertions that took effect.
    uint64_t ecn_marked = 0;
    // Fault state. tx_down lives sender-side (checked in Send), rx_down
    // receiver-side (checked at delivery) — split so cross-shard flips only
    // ever touch state owned by the shard the flip event runs in.
    bool tx_down = false;
    bool rx_down = false;
    uint64_t dropped_down_tx = 0;  // Sends refused while down (sender-side).
    uint64_t dropped_down_rx = 0;  // In-flight dropped at delivery (receiver-side).
    uint64_t dropped_dead = 0;     // Delivery suppressed: sink not alive().
    // Shard routing (BindShards). `drive` is the sender-side Simulation for
    // this direction; null means the construction-time sim_ (unsharded).
    Simulation* drive = nullptr;
    bool cross = false;
    int src_shard = -1;
    int dst_shard = -1;
    // Cross-shard only: service-start times of accepted packets, kept
    // sender-side so the waiting-backlog accounting (entries with
    // service_start > now) never touches receiver-shard state. The packets
    // themselves travel inside the posted delivery events.
    std::deque<SimTime> waiting_starts;
  };
  // The scheduled delivery callable: small enough that the event engine
  // stores it inline (asserted in link.cc).
  struct Deliver {
    Link* link;
    int dir;
    void operator()() const { link->CompleteDelivery(dir); }
  };
  // Cross-shard delivery: carries the packet to the receiver's shard.
  struct CrossDeliver {
    Link* link;
    int dir;
    Packet pkt;
    void operator()() { link->CompleteCrossDelivery(dir, std::move(pkt)); }
  };
  // Paced mode: the serializer finished the tx_queue front.
  struct ServeDone {
    Link* link;
    int dir;
    void operator()() const { link->CompleteService(dir); }
  };
  // A pause/resume frame arriving at the direction's sender.
  struct PauseFlip {
    Link* link;
    int dir;
    bool paused;
    void operator()() const { link->ApplyPauseFlip(dir, paused); }
  };

  SimDuration SerializationDelay(uint32_t bytes) const;
  int IndexToward(const PacketSink* to) const;
  void SendPaced(int index, Packet packet);
  void StartService(int dir);
  void CompleteService(int dir);
  void ApplyPauseFlip(int dir, bool paused);
  void CompleteDelivery(int dir);
  void CompleteCrossDelivery(int dir, Packet pkt);
  void ScheduleAdmin(SimTime at, bool down);
  Simulation& RxSim(const Direction& d);
  Simulation& DriveSim(const Direction& d) { return d.drive != nullptr ? *d.drive : sim_; }

  Simulation& sim_;
  ShardedSimulation* sharded_ = nullptr;
  Config config_;
  std::string name_;
  PacketSink* ends_[2] = {nullptr, nullptr};
  Direction dir_[2];  // dir_[i] carries traffic toward ends_[i].
};

}  // namespace incod

#endif  // INCOD_SRC_NET_LINK_H_
