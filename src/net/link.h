// Point-to-point full-duplex link.
//
// Models a 10GE (or faster) cable: serialization delay from the configured
// rate, fixed propagation delay, and a bounded per-direction FIFO that drops
// on overflow (UDP semantics — the applications tolerate loss).
//
// Fast path: packets in flight live in a per-direction deque owned by the
// link, not in event captures. Each Send schedules a 16-byte delivery event
// ({link, direction}); because per-direction service is FIFO and deliver
// times are non-decreasing, the event just pops the deque front. No
// closure allocation, and the Packet moves exactly twice (in, out).
//
// Same-tick coalescing: when serialization rounds to zero ticks (tiny
// packets on fast links), consecutive packets share one deliver tick; with
// coalesce_same_tick_delivery (default) they share a single delivery event
// that drains every packet of that tick in FIFO order, instead of one
// event per packet. Delivery order is identical either way (asserted by
// net_test's differential check).
#ifndef INCOD_SRC_NET_LINK_H_
#define INCOD_SRC_NET_LINK_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>

#include "src/net/packet.h"
#include "src/sim/simulation.h"

namespace incod {

class ShardedSimulation;

class Link {
 public:
  struct Config {
    double gigabits_per_second = 10.0;
    SimDuration propagation_delay = Nanoseconds(500);
    size_t queue_capacity_packets = 1024;
    // Batch packets that complete delivery on the same tick into one event.
    bool coalesce_same_tick_delivery = true;
  };

  Link(Simulation& sim, Config config, std::string name = "link");

  // Both endpoints must be set before Send() is used.
  void Connect(PacketSink* end_a, PacketSink* end_b);

  // Declares which shard each endpoint lives in (end_a/end_b as passed to
  // Connect). When the shards differ, the link becomes a cross-shard
  // boundary: sends run in the sender's shard, deliveries are posted through
  // the ShardedSimulation mailboxes stamped with the future delivery tick,
  // and the link registers its propagation delay (which must be > 0) as a
  // cross-shard latency — the conservative lookahead bound. Cross-shard
  // directions do not coalesce same-tick deliveries (each packet is one
  // mailbox record); delivery order is unchanged because records at one tick
  // execute in send order.
  void BindShards(ShardedSimulation& sharded, int shard_a, int shard_b);

  // Sends a packet from one endpoint toward the other. `from` must be one of
  // the two connected endpoints. Drops when the backlog of packets *waiting*
  // for the serializer reaches queue_capacity_packets; the packet currently
  // being serialized occupies the transmitter, not the queue.
  void Send(const PacketSink* from, Packet packet);

  // Fault layer: takes the cable down / brings it back up at `at`, in both
  // directions. While down, new sends are refused at the sender and packets
  // already in flight are dropped at their delivery tick; both are counted
  // in dropped_link_down. The flips are ordinary scheduled events (one per
  // direction endpoint, in the shard that owns that side's state), so
  // single-queue and sharded runs stay event-identical. Setup-time API:
  // call before the simulation runs, with a future `at`.
  void ScheduleDown(SimTime at);
  void ScheduleUp(SimTime at);

  uint64_t delivered(const PacketSink* toward) const;
  uint64_t dropped(const PacketSink* toward) const;
  uint64_t total_dropped() const { return dir_[0].dropped + dir_[1].dropped; }
  // Whether the direction toward the given endpoint currently refuses sends.
  bool link_down(const PacketSink* toward) const;
  // Packets refused or dropped because the link was down (send-side refusals
  // plus in-flight packets whose delivery tick fell inside a down window).
  uint64_t dropped_link_down(const PacketSink* toward) const;
  // Packets dropped at delivery because the receiving sink was dead.
  uint64_t dropped_to_dead(const PacketSink* toward) const;
  // Packets accepted but not yet delivered (in service, queued, or on the
  // wire) toward the given endpoint.
  size_t in_flight(const PacketSink* toward) const;

  const std::string& name() const { return name_; }
  const Config& config() const { return config_; }

 private:
  struct InFlight {
    SimTime service_start = 0;  // When (or when scheduled) serialization begins.
    SimTime deliver_at = 0;     // service_start + serialization + propagation.
    Packet pkt;
  };
  struct Direction {
    PacketSink* to = nullptr;
    SimTime busy_until = 0;
    std::deque<InFlight> in_flight;  // FIFO; delivery events pop the front.
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    // Fault state. tx_down lives sender-side (checked in Send), rx_down
    // receiver-side (checked at delivery) — split so cross-shard flips only
    // ever touch state owned by the shard the flip event runs in.
    bool tx_down = false;
    bool rx_down = false;
    uint64_t dropped_down_tx = 0;  // Sends refused while down (sender-side).
    uint64_t dropped_down_rx = 0;  // In-flight dropped at delivery (receiver-side).
    uint64_t dropped_dead = 0;     // Delivery suppressed: sink not alive().
    // Shard routing (BindShards). `drive` is the sender-side Simulation for
    // this direction; null means the construction-time sim_ (unsharded).
    Simulation* drive = nullptr;
    bool cross = false;
    int src_shard = -1;
    int dst_shard = -1;
    // Cross-shard only: service-start times of accepted packets, kept
    // sender-side so the waiting-backlog accounting (entries with
    // service_start > now) never touches receiver-shard state. The packets
    // themselves travel inside the posted delivery events.
    std::deque<SimTime> waiting_starts;
  };
  // The scheduled delivery callable: small enough that the event engine
  // stores it inline (asserted in link.cc).
  struct Deliver {
    Link* link;
    int dir;
    void operator()() const { link->CompleteDelivery(dir); }
  };
  // Cross-shard delivery: carries the packet to the receiver's shard.
  struct CrossDeliver {
    Link* link;
    int dir;
    Packet pkt;
    void operator()() { link->CompleteCrossDelivery(dir, std::move(pkt)); }
  };

  SimDuration SerializationDelay(uint32_t bytes) const;
  int IndexToward(const PacketSink* to) const;
  void CompleteDelivery(int dir);
  void CompleteCrossDelivery(int dir, Packet pkt);
  void ScheduleAdmin(SimTime at, bool down);
  Simulation& RxSim(const Direction& d);
  Simulation& DriveSim(const Direction& d) { return d.drive != nullptr ? *d.drive : sim_; }

  Simulation& sim_;
  ShardedSimulation* sharded_ = nullptr;
  Config config_;
  std::string name_;
  PacketSink* ends_[2] = {nullptr, nullptr};
  Direction dir_[2];  // dir_[i] carries traffic toward ends_[i].
};

}  // namespace incod

#endif  // INCOD_SRC_NET_LINK_H_
