// Point-to-point full-duplex link.
//
// Models a 10GE (or faster) cable: serialization delay from the configured
// rate, fixed propagation delay, and a bounded per-direction FIFO that drops
// on overflow (UDP semantics — the applications tolerate loss).
#ifndef INCOD_SRC_NET_LINK_H_
#define INCOD_SRC_NET_LINK_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/net/packet.h"
#include "src/sim/simulation.h"

namespace incod {

class Link {
 public:
  struct Config {
    double gigabits_per_second = 10.0;
    SimDuration propagation_delay = Nanoseconds(500);
    size_t queue_capacity_packets = 1024;
  };

  Link(Simulation& sim, Config config, std::string name = "link");

  // Both endpoints must be set before Send() is used.
  void Connect(PacketSink* end_a, PacketSink* end_b);

  // Sends a packet from one endpoint toward the other. `from` must be one of
  // the two connected endpoints.
  void Send(const PacketSink* from, Packet packet);

  uint64_t delivered(const PacketSink* toward) const;
  uint64_t dropped(const PacketSink* toward) const;
  uint64_t total_dropped() const { return dir_[0].dropped + dir_[1].dropped; }

  const std::string& name() const { return name_; }
  const Config& config() const { return config_; }

 private:
  struct Direction {
    PacketSink* to = nullptr;
    SimTime busy_until = 0;
    size_t queued = 0;
    uint64_t delivered = 0;
    uint64_t dropped = 0;
  };

  SimDuration SerializationDelay(uint32_t bytes) const;
  Direction& DirectionToward(const PacketSink* to);
  int IndexToward(const PacketSink* to) const;

  Simulation& sim_;
  Config config_;
  std::string name_;
  PacketSink* ends_[2] = {nullptr, nullptr};
  Direction dir_[2];  // dir_[i] carries traffic toward ends_[i].
};

}  // namespace incod

#endif  // INCOD_SRC_NET_LINK_H_
