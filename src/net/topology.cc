#include "src/net/topology.h"

#include <utility>

namespace incod {

Link* Topology::Connect(PacketSink* a, PacketSink* b, Link::Config config,
                        std::string name) {
  if (name.empty()) {
    name = "link-" + std::to_string(links_.size());
  }
  links_.push_back(std::make_unique<Link>(sim_, config, std::move(name)));
  Link* link = links_.back().get();
  link->Connect(a, b);
  return link;
}

Link* Topology::ConnectToSwitch(L2Switch* sw, PacketSink* sink, NodeId node,
                                Link::Config config, std::string name) {
  Link* link = Connect(sw, sink, config, std::move(name));
  const int port = sw->AttachLink(link);
  sw->AddRoute(node, port);
  return link;
}

}  // namespace incod
