#include "src/net/topology.h"

#include <utility>

namespace incod {

Link* Topology::FindLink(const std::string& name) const {
  for (const auto& link : links_) {
    if (link->name() == name) {
      return link.get();
    }
  }
  return nullptr;
}

int Topology::ShardOf(const PacketSink* sink) const {
  const auto it = shard_of_.find(sink);
  return it != shard_of_.end() ? it->second : default_shard_;
}

Link* Topology::Connect(PacketSink* a, PacketSink* b, Link::Config config,
                        std::string name) {
  if (name.empty()) {
    name = "link-" + std::to_string(links_.size());
  }
  if (sharded_ == nullptr) {
    links_.push_back(std::make_unique<Link>(sim_, config, std::move(name)));
    Link* link = links_.back().get();
    link->Connect(a, b);
    return link;
  }
  const int shard_a = ShardOf(a);
  const int shard_b = ShardOf(b);
  links_.push_back(
      std::make_unique<Link>(sharded_->shard(shard_a), config, std::move(name)));
  Link* link = links_.back().get();
  link->Connect(a, b);
  link->BindShards(*sharded_, shard_a, shard_b);
  return link;
}

Link* Topology::ConnectToSwitch(L2Switch* sw, PacketSink* sink, NodeId node,
                                Link::Config config, std::string name) {
  Link* link = Connect(sw, sink, config, std::move(name));
  const int port = sw->AttachLink(link);
  sw->AddRoute(node, port);
  return link;
}

}  // namespace incod
