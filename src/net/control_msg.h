// On-demand control-plane messages (AppProto::kControl).
//
// The §9.1 controllers and the rack orchestrator steer offload targets over
// the same links the data plane uses; a ControlMessage is the typed payload
// of those packets. Kept dependency-free (only node.h) so packet.h can hold
// it in the payload variant.
#ifndef INCOD_SRC_NET_CONTROL_MSG_H_
#define INCOD_SRC_NET_CONTROL_MSG_H_

#include <cstdint>

#include "src/net/node.h"

namespace incod {

struct ControlMessage {
  enum class Kind : uint8_t {
    kActivateOffload,    // Start serving `target_proto` on the device.
    kDeactivateOffload,  // Park the offload; traffic falls back to software.
    kReprogram,          // Begin an FPGA partial reconfiguration.
    kStatsRequest,       // Poll a device for its app ingress rate.
    kStatsReport,        // Response: `value` carries the polled rate/counter.
    kCongestion,         // CNP: receiver saw ECN-marked ingress from you.
  };

  Kind kind = Kind::kStatsRequest;
  AppProto target_proto = AppProto::kRaw;  // Which offload the message steers.
  uint64_t value = 0;                      // Kind-specific argument/result.
};

// Control-plane wire size (UDP + a fixed TLV body).
constexpr uint32_t kControlWireBytes = 64;

const char* ControlKindName(ControlMessage::Kind kind);

}  // namespace incod

#endif  // INCOD_SRC_NET_CONTROL_MSG_H_
