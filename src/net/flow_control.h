// Flow control: PFC-style link pause + DCQCN-style end-host rate control.
//
// Links silently dropping on queue overflow is the wrong regime for heavy
// traffic: at millions-of-users load the interesting behavior is
// backpressure — head-of-line blocking and slowdown, not loss. This header
// holds the three knobs that model it:
//
//  - LinkFlowConfig: per-link PFC pause watermarks + ECN marking threshold.
//    When `pfc` is set the Link runs a paced serve loop per direction (see
//    link.h) and emits pause/resume toward the upstream sender when the
//    transmit backlog crosses the high/low watermarks.
//  - FlowListener: the sender-side endpoint's view of its own egress backlog.
//    L2Switch uses it to propagate pause to its other ingress ports; NICs use
//    it to propagate host-link congestion out to the network; LoadClient uses
//    it to hold its DCQCN pacer while the uplink is congested.
//  - DcqcnConfig/DcqcnRateController: a DCQCN-flavored sender rate machine.
//    Receivers CNP-notify senders of ECN-marked arrivals; the controller
//    reacts with multiplicative decrease (alpha-weighted) and recovers with
//    fast-recovery/additive/hyper increase, pacing submitted packets at the
//    current rate.
//
// Everything here runs as ordinary simulation events (pause flips and CNPs
// travel with the link propagation delay), so backpressured runs stay
// event-identical across kSingleQueue/kParallel engine modes.
#ifndef INCOD_SRC_NET_FLOW_CONTROL_H_
#define INCOD_SRC_NET_FLOW_CONTROL_H_

#include <cstddef>
#include <cstdint>
#include <deque>

#include "src/net/packet.h"
#include "src/sim/simulation.h"

namespace incod {

class Link;

// Per-link flow-control knobs (Link::Config::flow). Watermarks are in
// packets of *waiting* transmit backlog (the packet being serialized does
// not count, matching the queue-capacity accounting).
struct LinkFlowConfig {
  // PFC pause machinery: the direction runs a paced serve loop, honors
  // pause frames from the receiver, and notifies its FlowListener at the
  // watermark crossings below.
  bool pfc = false;
  size_t pause_high_watermark = 64;  // Backlog >= high: congestion asserted.
  size_t pause_low_watermark = 16;   // Backlog <= low: congestion deasserted.
  // ECN-style marking: packets entering the serializer while the backlog is
  // at or above the threshold leave with packet.ecn set.
  bool ecn = false;
  size_t ecn_threshold_packets = 32;
};

// Sender-side congestion callback. Registered on a Link via
// SetFlowListener(sender_end, listener); fires synchronously in the shard
// that owns the sending side of the direction, when the transmit backlog
// crosses the high watermark (congested=true) or drains back to the low
// watermark (congested=false).
class FlowListener {
 public:
  virtual ~FlowListener() = default;
  virtual void OnLinkCongestion(Link* link, bool congested) = 0;
};

// Host ingress flow control (ServerConfig::flow): the server pauses its
// uplink when the total queued rx backlog crosses the high watermark, and
// CNP-notifies senders of ECN-marked arrivals.
struct HostFlowConfig {
  bool pfc = false;                    // Pause the uplink at the watermarks.
  size_t pause_high_watermark = 256;   // Total queued rx packets, all threads.
  size_t pause_low_watermark = 64;
  bool cnp = false;                    // Send CNPs for ECN-marked ingress.
  // Per-source CNP pacing: at most one CNP per source per interval (DCQCN's
  // N-microsecond CNP timer on the notification point).
  SimDuration cnp_min_interval = Microseconds(50);
};

// DCQCN-flavored rate-control parameters (LoadClientConfig::dcqcn).
struct DcqcnConfig {
  bool enabled = false;
  double line_rate_pps = 1.0e6;   // Injection cap when uncongested.
  double min_rate_pps = 1.0e4;    // Multiplicative-decrease floor.
  // g: on CNP, alpha <- (1-g)*alpha + g and rate <- rate*(1 - alpha/2);
  // each recovery period without a CNP decays alpha by (1-g).
  double alpha_gain = 1.0 / 16.0;
  SimDuration recovery_period = Microseconds(300);
  double additive_step_pps = 2.0e4;   // Target-rate AI step per period.
  int hyper_after_rounds = 5;         // HAI kicks in after this many periods.
  double hyper_step_pps = 1.0e5;
  size_t pacer_capacity = 1 << 16;    // Submitted packets waiting to be paced.
};

// Sender rate machine: paces submitted packets at the current rate, decreases
// on CNP, recovers on a self-quiescing timer (no events once back at line
// rate with an empty pacer, so simulations terminate).
class DcqcnRateController {
 public:
  DcqcnRateController(Simulation& sim, DcqcnConfig config);

  // The link (and the sending endpoint identity) paced packets leave on.
  void AttachUplink(Link* link, PacketSink* sender);

  // Pace-and-send. With the controller disabled this forwards directly.
  void Submit(Packet packet);

  // A CNP arrived from a receiver: multiplicative decrease.
  void OnCnp();

  // PFC hold from the local uplink: while congested the pacer stops draining
  // (the link's own queue is full — pushing more just moves the backlog).
  void SetUplinkCongested(bool congested);

  double current_rate_pps() const { return rate_; }
  double alpha() const { return alpha_; }
  uint64_t cnps_received() const { return cnps_; }
  uint64_t paced_sent() const { return paced_sent_; }
  uint64_t pacer_dropped() const { return pacer_dropped_; }
  size_t backlog() const { return queue_.size(); }
  bool uplink_congested() const { return uplink_congested_; }

 private:
  void SchedulePump();
  void Pump();
  void EnsureRecoveryTimer();
  void RecoveryTick();

  Simulation& sim_;
  DcqcnConfig config_;
  Link* uplink_ = nullptr;
  PacketSink* sender_ = nullptr;
  std::deque<Packet> queue_;
  double rate_;         // Current pacing rate (pps).
  double target_rate_;  // DCQCN Rt: fast-recovery target.
  double alpha_;        // Congestion estimate in [0, 1].
  int rounds_ = 0;      // Recovery periods since the last CNP.
  SimTime next_tx_ = 0;
  bool pump_scheduled_ = false;
  bool recovery_scheduled_ = false;
  bool uplink_congested_ = false;
  uint64_t cnps_ = 0;
  uint64_t paced_sent_ = 0;
  uint64_t pacer_dropped_ = 0;
};

}  // namespace incod

#endif  // INCOD_SRC_NET_FLOW_CONTROL_H_
