// Packet and addressing primitives.
//
// All three case-study applications are UDP based (§3.4), so a Packet models
// a single UDP datagram: addresses, an application protocol tag (what the
// hardware packet classifiers match on), a wire size, and a typed payload.
//
// The payload is a tagged variant over the four concrete wire-message
// families (KV, Paxos, DNS, control) rather than std::any: every packet hop
// used to heap-allocate the payload and cast through RTTI; the variant keeps
// the message inline in the Packet and turns PayloadIs/PayloadIf into a tag
// compare. The message structs live in dependency-free wire headers
// (kvs/kv_messages.h, paxos/paxos_wire.h, dns/dns_message.h, control_msg.h)
// so including them here does not invert the net <- application layering.
#ifndef INCOD_SRC_NET_PACKET_H_
#define INCOD_SRC_NET_PACKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <variant>

#include "src/dns/dns_message.h"
#include "src/kvs/kv_messages.h"
#include "src/net/control_msg.h"
#include "src/net/node.h"
#include "src/paxos/paxos_wire.h"
#include "src/sim/time.h"

namespace incod {

// Typed per-application payload. std::monostate marks raw traffic with no
// modeled message body.
using PayloadVariant =
    std::variant<std::monostate, KvRequest, KvResponse, PaxosMessage, DnsMessage,
                 ControlMessage>;

struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  AppProto proto = AppProto::kRaw;
  // ECN-style congestion-experienced mark, set by a link whose transmit
  // backlog is past its ECN threshold (see LinkFlowConfig). Sits in the
  // padding after `proto`, so the Packet stays inside the inline budget.
  bool ecn = false;
  // First packet of an interrupt batch: set by a mechanistic conventional
  // NIC (HostNicSpec) when it raises an rx interrupt toward a kernel-stack
  // host. The server charges its per-interrupt CPU cost into the request
  // that carries the flag. Shares the `proto` padding with `ecn`.
  bool irq = false;
  uint32_t size_bytes = 64;  // Wire size including headers.
  uint64_t id = 0;           // Request-correlation id (set by clients).
  SimTime created_at = 0;    // Set by the sender; used for latency capture.
  PayloadVariant payload;    // Typed per-application message struct.

  bool has_payload() const { return !std::holds_alternative<std::monostate>(payload); }
};

// Packets move through event captures on every hop; keep them compact enough
// to stay inside InlineEvent's inline buffer (see sim/inline_event.h).
static_assert(sizeof(Packet) <= 120, "Packet grew past the inline-event budget");

// Deterministic flow hash over the UDP 4-tuple surrogate (src, dst, proto,
// id — the correlation id stands in for the client's ephemeral source
// port). One hash shared by the NIC's RSS queue selection and the server's
// kRssHash worker dispatch, so a NIC rx queue maps stably onto a worker
// thread. splitmix64-style finalizer: cheap, well-mixed, identical on every
// platform (no std::hash, whose value is implementation-defined).
inline uint64_t FlowHash(const Packet& packet) {
  uint64_t x = static_cast<uint64_t>(packet.src) * 0x9e3779b97f4a7c15ull;
  x ^= static_cast<uint64_t>(packet.dst) + 0x9e3779b97f4a7c15ull + (x << 6) + (x >> 2);
  x ^= static_cast<uint64_t>(packet.proto) * 0xbf58476d1ce4e5b9ull;
  x ^= packet.id + 0x94d049bb133111ebull + (x << 6) + (x >> 2);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

// Anything that can accept a packet: hosts, NICs, switches, devices.
class PacketSink {
 public:
  virtual ~PacketSink() = default;

  virtual void Receive(Packet packet) = 0;

  // Diagnostic name.
  virtual std::string SinkName() const = 0;

  // Whole-node liveness. A dead sink must not service traffic: links check
  // alive() at delivery time and drop (counted) instead of calling Receive.
  // The fault layer flips this via SetAlive; overridable so composite
  // devices can cascade (e.g. also halt their offload engine).
  bool alive() const { return alive_; }
  virtual void SetAlive(bool alive) { alive_ = alive; }

 private:
  bool alive_ = true;
};

// Payload accessor with a clear failure mode: throws std::bad_variant_access
// when the packet holds a different message type.
template <typename T>
const T& PayloadAs(const Packet& packet) {
  return std::get<T>(packet.payload);
}

template <typename T>
bool PayloadIs(const Packet& packet) {
  return std::holds_alternative<T>(packet.payload);
}

// Single-probe accessor for the hot consumers: returns nullptr when the
// packet holds a different message type.
template <typename T>
const T* PayloadIf(const Packet& packet) {
  return std::get_if<T>(&packet.payload);
}

// Builds a control-plane packet (AppProto::kControl).
Packet MakeControlPacket(NodeId src, NodeId dst, const ControlMessage& msg, uint64_t id,
                         SimTime now);

}  // namespace incod

#endif  // INCOD_SRC_NET_PACKET_H_
