// Packet and addressing primitives.
//
// All three case-study applications are UDP based (§3.4), so a Packet models
// a single UDP datagram: addresses, an application protocol tag (what the
// hardware packet classifiers match on), a wire size, and a typed payload.
#ifndef INCOD_SRC_NET_PACKET_H_
#define INCOD_SRC_NET_PACKET_H_

#include <any>
#include <cstddef>
#include <cstdint>
#include <string>

#include "src/sim/time.h"

namespace incod {

// Flat node address (stands in for MAC/IP; the simulation needs no subnets).
using NodeId = uint32_t;

constexpr NodeId kBroadcastNode = 0xffffffff;

// Application protocol, as identified by the packet classifiers in LaKe /
// Emu DNS / the P4xos parser (derived from UDP port in the real designs).
enum class AppProto : uint8_t {
  kRaw = 0,    // Ordinary traffic: passes through NICs untouched.
  kKv,         // memcached / LaKe
  kPaxos,      // libpaxos / P4xos
  kDns,        // NSD / Emu DNS
  kControl,    // On-demand controller messages.
};

// Number of AppProto values (for per-protocol counter arrays). Derived from
// the last enumerator so the two cannot drift apart.
constexpr size_t kNumAppProtos = static_cast<size_t>(AppProto::kControl) + 1;

const char* AppProtoName(AppProto proto);

struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  AppProto proto = AppProto::kRaw;
  uint32_t size_bytes = 64;  // Wire size including headers.
  uint64_t id = 0;           // Request-correlation id (set by clients).
  SimTime created_at = 0;    // Set by the sender; used for latency capture.
  std::any payload;          // Typed per-application message struct.
};

// Anything that can accept a packet: hosts, NICs, switches, devices.
class PacketSink {
 public:
  virtual ~PacketSink() = default;

  virtual void Receive(Packet packet) = 0;

  // Diagnostic name.
  virtual std::string SinkName() const = 0;
};

// Payload accessor with a clear failure mode.
template <typename T>
const T& PayloadAs(const Packet& packet) {
  return std::any_cast<const T&>(packet.payload);
}

template <typename T>
bool PayloadIs(const Packet& packet) {
  return std::any_cast<T>(&packet.payload) != nullptr;
}

}  // namespace incod

#endif  // INCOD_SRC_NET_PACKET_H_
