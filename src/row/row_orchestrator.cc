#include "src/row/row_orchestrator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace incod {

RowPowerLedger::RowPowerLedger(double budget_watts) : budget_(budget_watts) {}

double RowPowerLedger::apportioned_watts() const {
  double total = 0;
  for (const auto& [rack, watts] : apportionments_) {
    total += watts;
  }
  return total;
}

double RowPowerLedger::RemainingWatts() const {
  if (unlimited()) {
    return std::numeric_limits<double>::infinity();
  }
  return budget_ - apportioned_watts();
}

bool RowPowerLedger::TryApportion(const std::string& rack, double watts) {
  if (watts < 0) {
    throw std::invalid_argument("RowPowerLedger: negative apportionment");
  }
  double prior = 0;
  auto it = apportionments_.find(rack);
  if (it != apportionments_.end()) {
    prior = it->second;
  }
  // A shrink always moves toward the invariant, so it is accepted even while
  // the total sits above a freshly-lowered (brownout) budget — rejecting it
  // would wedge the ledger over budget forever.
  if (!unlimited() && watts > prior &&
      apportioned_watts() - prior + watts > budget_) {
    return false;
  }
  apportionments_[rack] = watts;
  return true;
}

void RowPowerLedger::Release(const std::string& rack) { apportionments_.erase(rack); }

// ---------------------------------------------------------------------------

std::vector<double> ComputeRowApportionment(
    double budget_watts, const std::vector<RowRackApportionInput>& racks,
    RowOrchestratorConfig::Policy policy, double min_rack_watts) {
  const size_t n = racks.size();
  std::vector<double> shares(n, 0);
  if (n == 0 || budget_watts <= 0) {
    return shares;
  }
  auto ceiling = [&racks](size_t i) {
    return racks[i].ceiling_watts < 0 ? std::numeric_limits<double>::infinity()
                                      : racks[i].ceiling_watts;
  };
  // Floors first; when the floors alone exceed the budget they scale down
  // proportionally (everyone keeps the same fraction of their floor).
  double floor_sum = 0;
  for (size_t i = 0; i < n; ++i) {
    shares[i] = std::max(0.0, std::min(min_rack_watts, ceiling(i)));
    floor_sum += shares[i];
  }
  if (floor_sum > budget_watts) {
    const double scale = budget_watts / floor_sum;
    for (double& s : shares) {
      s *= scale;
    }
    return shares;
  }
  double remaining = budget_watts - floor_sum;
  std::vector<bool> clamped(n);
  for (size_t i = 0; i < n; ++i) {
    clamped[i] = shares[i] >= ceiling(i);
  }
  // Waterfill: distribute proportionally to weight; racks whose share would
  // cross their ceiling are pinned there and their excess re-spreads over
  // the rest next round. Each round pins at least one rack or finishes, so
  // the loop runs at most n times.
  while (remaining > 1e-9) {
    std::vector<double> weight(n, 0);
    double weight_sum = 0;
    size_t unclamped = 0;
    for (size_t i = 0; i < n; ++i) {
      if (clamped[i]) {
        continue;
      }
      ++unclamped;
      weight[i] = policy == RowOrchestratorConfig::Policy::kDemandWeighted
                      ? std::max(0.0, racks[i].demand_watts)
                      : 1.0;
      weight_sum += weight[i];
    }
    if (unclamped == 0) {
      break;  // Every rack ceiling-clamped: the budget is simply not usable.
    }
    if (weight_sum <= 0) {
      // Nobody demands anything: split the remainder equally.
      for (size_t i = 0; i < n; ++i) {
        weight[i] = clamped[i] ? 0.0 : 1.0;
      }
      weight_sum = static_cast<double>(unclamped);
    }
    bool pinned = false;
    double distributed = 0;
    for (size_t i = 0; i < n; ++i) {
      if (clamped[i] || weight[i] <= 0) {
        continue;
      }
      const double add = remaining * weight[i] / weight_sum;
      const double room = ceiling(i) - shares[i];
      if (add >= room) {
        shares[i] = ceiling(i);
        distributed += room;
        clamped[i] = true;
        pinned = true;
      }
    }
    if (!pinned) {
      for (size_t i = 0; i < n; ++i) {
        if (!clamped[i] && weight[i] > 0) {
          shares[i] += remaining * weight[i] / weight_sum;
        }
      }
      // Zero-weight unclamped racks (demand-weighted, no demand) keep their
      // floor; the proportional adds above consumed the whole remainder.
      remaining = 0;
      break;
    }
    remaining -= distributed;
  }
  return shares;
}

// ---------------------------------------------------------------------------

RowOrchestrator::RowOrchestrator(ShardedSimulation& sharded, int home_shard,
                                 RowOrchestratorConfig config)
    : sharded_(sharded),
      home_shard_(home_shard),
      config_(config),
      ledger_(config.global_budget_watts) {
  if (home_shard < 0 || home_shard >= sharded.num_shards()) {
    throw std::invalid_argument("RowOrchestrator: home shard out of range");
  }
}

size_t RowOrchestrator::AddRack(std::string name, int rack_shard,
                                RackOrchestrator* rack) {
  if (started_) {
    throw std::logic_error("RowOrchestrator: AddRack after Start");
  }
  if (rack == nullptr) {
    throw std::invalid_argument("RowOrchestrator: null rack");
  }
  if (rack_shard < 0 || rack_shard >= sharded_.num_shards()) {
    throw std::invalid_argument("RowOrchestrator: rack shard out of range");
  }
  if (name.empty()) {
    throw std::invalid_argument("RowOrchestrator: rack needs a name");
  }
  for (const auto& existing : racks_) {
    if (existing.name == name) {
      throw std::invalid_argument("RowOrchestrator: duplicate rack name " + name);
    }
  }
  RowRack entry;
  entry.name = std::move(name);
  entry.shard = rack_shard;
  entry.rack = rack;
  racks_.push_back(std::move(entry));
  return racks_.size() - 1;
}

double RowOrchestrator::CurrentApportionment(size_t index) const {
  const auto it = ledger_.apportionments().find(racks_.at(index).name);
  return it == ledger_.apportionments().end() ? 0.0 : it->second;
}

SimDuration RowOrchestrator::HopDelay() const {
  const SimDuration lookahead = sharded_.lookahead();
  // A row always has cross-shard uplinks, but a single-shard build (tests)
  // may not: any positive delay works there, nothing crosses shards.
  return lookahead == Simulation::kNoEventTime ? Microseconds(5) : lookahead;
}

void RowOrchestrator::PostToShard(int src, int dst, InlineEvent fn) {
  Simulation& src_sim = sharded_.shard(src);
  const SimTime deliver_at = src_sim.Now() + HopDelay();
  if (src == dst) {
    // Same shard: an ordinary event at the same delivery time. The branch
    // depends only on the topology, never on the engine mode, so both modes
    // schedule identically.
    src_sim.ScheduleAt(deliver_at, std::move(fn));
    return;
  }
  sharded_.PostCrossShard(src, dst, deliver_at, std::move(fn));
}

std::vector<double> RowOrchestrator::ComputeShares() const {
  std::vector<RowRackApportionInput> inputs;
  inputs.reserve(racks_.size());
  for (const auto& rack : racks_) {
    RowRackApportionInput input;
    input.demand_watts = rack.report.demand_watts;
    input.ceiling_watts = rack.ceiling_watts;
    inputs.push_back(input);
  }
  return ComputeRowApportionment(ledger_.budget_watts(), inputs, config_.policy,
                                 config_.min_rack_watts);
}

void RowOrchestrator::IssueCap(RowRack& rack, double watts, bool initial) {
  // RackPowerLedger reads <= 0 as *unlimited*: a browned-out rack gets an
  // epsilon budget instead (evicts every offload, admits none).
  const double cap = std::max(watts, 0.01);
  rack.issued_watts = cap;
  ++caps_issued_;
  decision_log_.push_back(RowDecisionRecord{RowDecisionRecord::Kind::kApportion,
                                            initial ? 0 : home().Now(), rack.name,
                                            cap});
  RackOrchestrator* target = rack.rack;
  if (initial) {
    // Setup time: apply synchronously before any event runs (identical in
    // both engine modes — no events involved).
    target->ApplyPowerCap(cap);
    return;
  }
  PostToShard(home_shard_, rack.shard,
              [target, cap] { target->ApplyPowerCap(cap); });
}

void RowOrchestrator::Reapportion() {
  if (ledger_.unlimited() || racks_.empty()) {
    return;
  }
  ++apportion_rounds_;
  const std::vector<double> shares = ComputeShares();
  // Two passes, shrink before grow: the ledger's replace-semantics accepts
  // every shrink outright, and the freed watts make every grow admissible
  // (the kernel guarantees the shares sum within the budget).
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < racks_.size(); ++i) {
      RowRack& rack = racks_[i];
      double share = shares[i];
      const double prior = CurrentApportionment(i);
      const bool shrink = share <= prior;
      if ((pass == 0) != shrink) {
        continue;
      }
      if (!ledger_.TryApportion(rack.name, share)) {
        // Floating-point slack on the last grow: take exactly what is left.
        share = prior + std::max(0.0, ledger_.RemainingWatts());
        ledger_.TryApportion(rack.name, share);
      }
      // Quiet small moves: the ledger stays exact, the rack keeps its cap.
      if (rack.issued_watts >= 0 &&
          std::abs(share - rack.issued_watts) <= config_.cap_epsilon_watts) {
        continue;
      }
      IssueCap(rack, share, /*initial=*/false);
    }
  }
}

void RowOrchestrator::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  if (!ledger_.unlimited() && !racks_.empty()) {
    // Initial apportionment, synchronously at setup: no reports yet, so
    // demand weighting degenerates to an equal split over the floors.
    ++apportion_rounds_;
    const std::vector<double> shares = ComputeShares();
    for (size_t i = 0; i < racks_.size(); ++i) {
      ledger_.TryApportion(racks_[i].name, shares[i]);
      IssueCap(racks_[i], shares[i], /*initial=*/true);
    }
    SchedulePeriodic(home(), config_.apportion_period, config_.apportion_period,
                     [this] {
                       if (stopped_) {
                         return false;
                       }
                       Reapportion();
                       return true;
                     });
  }
  SchedulePeriodic(home(), config_.sample_period, config_.sample_period, [this] {
    if (stopped_) {
      return false;
    }
    const SimTime now = home().Now();
    apportioned_series_.Append(now, ledger_.apportioned_watts());
    budget_series_.Append(now, ledger_.budget_watts());
    return true;
  });
  for (size_t i = 0; i < racks_.size(); ++i) {
    Simulation& rack_sim = sharded_.shard(racks_[i].shard);
    SchedulePeriodic(rack_sim, config_.report_period, config_.report_period,
                     [this, i] {
                       if (stopped_) {
                         return false;
                       }
                       const RowRack& rack = racks_[i];
                       RowRackReport report;
                       report.at = sharded_.shard(rack.shard).Now();
                       report.committed_watts = rack.rack->ledger().committed_watts();
                       report.demand_watts = rack.rack->OffloadDemandWatts();
                       uint64_t offloaded = 0;
                       for (size_t a = 0; a < rack.rack->app_count(); ++a) {
                         if (rack.rack->current_option(a) != nullptr) {
                           ++offloaded;
                         }
                       }
                       report.offloaded_apps = offloaded;
                       PostToShard(rack.shard, home_shard_, [this, i, report] {
                         racks_[i].report = report;
                         ++reports_received_;
                       });
                       return true;
                     });
  }
}

void RowOrchestrator::ApplyGlobalBrownout(double watts) {
  ledger_.SetBudgetWatts(watts);
  ++global_brownouts_;
  decision_log_.push_back(RowDecisionRecord{RowDecisionRecord::Kind::kGlobalBrownout,
                                            home().Now(), std::string(), watts});
  Reapportion();
}

void RowOrchestrator::ApplyRackBrownout(size_t rack_index, double watts) {
  RowRack& rack = racks_.at(rack_index);
  rack.ceiling_watts = watts;  // < 0 clears the ceiling.
  ++rack_brownouts_;
  decision_log_.push_back(RowDecisionRecord{RowDecisionRecord::Kind::kRackBrownout,
                                            home().Now(), rack.name, watts});
  Reapportion();
}

}  // namespace incod
