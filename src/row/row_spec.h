// Declarative datacenter row: N ScenarioSpec racks under one spine, one
// global power budget, row-scale fault plans, diurnal trace load.
//
// A RowSpec is to a row what ScenarioSpec is to a rack: a struct literal
// naming what the row contains. RowScenario (row_scenario.h) turns it into
// a wired spine/leaf fabric over a ShardedSimulation — one shard per rack
// plus a spine shard — with per-rack RackOrchestrators reporting to a
// RowOrchestrator that apportions the shared datacenter budget
// (row_orchestrator.h). The rack specs themselves stay *unmodified*
// ScenarioSpecs: the row only assigns their shard, resolves their shared
// zone, and appends its rack-scoped fault events to their plans.
#ifndef INCOD_SRC_ROW_ROW_SPEC_H_
#define INCOD_SRC_ROW_ROW_SPEC_H_

#include <string>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/ondemand/rack.h"
#include "src/scenarios/scenario_spec.h"
#include "src/workload/google_trace.h"

namespace incod {

// One open-loop client attached to a rack's ToR: a declarative workload
// (MakeScenarioRequestFactory, including the cross_service extension for
// rack-to-rack traffic through the spine) under Poisson arrivals.
struct RowClientSpec {
  LoadClientConfig client;  // client.node is the client's address.
  double rate_per_second = 100000;
  ScenarioWorkloadSpec workload;
  NodeId service = 0;  // Local service node the workload targets.
  int shard = -1;      // -1: the rack's own shard.
};

// Orchestration wiring for one member of an orchestrated rack: which §8
// models the rack orchestrator predicts with, and how the app migrates.
// The member must carry a host app and an FPGA target with the same
// registry family (target.initially_active = false — the migrator parks).
struct RowAppSpec {
  size_t member = 0;  // Index into the rack ScenarioSpec's members.
  SimDuration host_service_time = Microseconds(4);
  bool warm_migration = false;
  // < 0: inherit the rack orchestrator config's checkpoint_period.
  SimDuration checkpoint_period = -1;
  // FPGA placement power model (MakeFpgaRatePower).
  double host_idle_watts = 35.0;
  double board_idle_watts = 24.0;
  double board_dynamic_watts = 1.0;
  double board_capacity_pps = 13e6;
  // Offer the member's switch-hosted placement (spec.switch_app on an ASIC
  // ToR) as a second option — the surviving landing spot for recovery.
  bool switch_option = false;
};

struct RowRackSpec {
  // The rack itself, verbatim; the row assigns scenario.shard = rack index,
  // resolves a null env.zone to the row's shared zone, and appends
  // rack-scoped row fault events to scenario.faults before building.
  ScenarioSpec scenario;
  std::vector<RowClientSpec> clients;
  // Build a RackOrchestrator (+ StateTransferMigrators per RowAppSpec) in
  // the rack's shard. Its power budget is the row's initial apportionment
  // when the row has a global budget, else orchestrator.power_budget_watts.
  bool orchestrate = false;
  RackOrchestratorConfig orchestrator;
  std::vector<RowAppSpec> apps;
  // Watts one trace background core adds to a member host (§9.3 decision
  // input; only meaningful with the row trace enabled).
  double background_watts_per_core = 18.0;
};

// Global power apportionment policy (row_orchestrator.h executes it).
struct RowPowerSpec {
  enum class Policy { kEqualShare, kDemandWeighted };
  // <= 0: no row power orchestration (racks keep their own budgets).
  double global_budget_watts = 0;
  Policy policy = Policy::kDemandWeighted;
  // Racks post usage/demand reports to the row at this cadence...
  SimDuration report_period = Milliseconds(50);
  // ...and the row re-apportions (and issues ApplyPowerCap deltas) at this.
  SimDuration apportion_period = Milliseconds(100);
  SimDuration sample_period = Milliseconds(100);
  // Per-rack floor under demand weighting (0: none).
  double min_rack_watts = 0;
};

// Diurnal Google-trace load: one synthesized trace, phase-shifted per rack,
// whose per-node task timeline modulates member hosts' background draw.
struct RowTraceSpec {
  bool enabled = false;
  GoogleTraceConfig trace = {.num_tasks = 4000, .num_nodes = 4,
                             .diurnal_amplitude = 0.8};
  // The trace horizon is compressed onto this much simulated time.
  SimDuration sim_horizon = Seconds(10);
  uint64_t seed = 42;
  // Per-rack shift through the diurnal day, in trace seconds (< 0:
  // horizon_seconds / num_racks — racks peak at staggered times, which is
  // what makes a *global* budget worth apportioning).
  int64_t phase_shift_seconds = -1;
};

// One row-scale fault event. Rack-scoped kinds fan out over `racks`
// (empty: every rack), which is how correlated waves are declared.
struct RowFaultEventSpec {
  enum class Kind {
    // Step the row's global budget to `watts`; the ledger re-apportions and
    // the cap cascade evicts across every rack at once.
    kGlobalBrownout,
    // Brown out specific racks: cap their apportionment ceiling at `watts`
    // (< 0 clears the ceiling); the freed budget flows to the other racks.
    kRackBrownout,
    // Spine uplink flaps for the selected racks (Link::ScheduleDown/Up).
    kUplinkDown,
    kUplinkUp,
    // Forward an ordinary rack-level fault (device death, member link flap,
    // rack PSU brownout) to each selected rack's own injector; rack_event's
    // `at` is overridden by this event's `at`.
    kRackFault,
  };
  Kind kind = Kind::kGlobalBrownout;
  SimTime at = 0;
  std::vector<int> racks;  // Rack-scoped kinds; empty = all racks.
  double watts = 0;        // kGlobalBrownout / kRackBrownout.
  FaultEventSpec rack_event;  // kRackFault.
};

struct RowFaultPlanSpec {
  std::vector<RowFaultEventSpec> events;
};

// --- Correlated-wave helpers -----------------------------------------------
// Each appends one event per selected rack, `stagger` apart in rack order
// (stagger 0: simultaneous — the fully correlated case).

// Spine-uplink flap wave: every selected rack's uplink goes down at
// first_down (+ stagger) and heals down_for later.
void AppendUplinkFlapWave(RowFaultPlanSpec& plan, const std::vector<int>& racks,
                          SimTime first_down, SimDuration down_for,
                          SimDuration stagger = 0);

// Whole-rack brownout wave: each selected rack's apportionment ceiling
// steps to `watts` (the global ledger shifts the freed budget to the rest).
void AppendRackBrownoutWave(RowFaultPlanSpec& plan, const std::vector<int>& racks,
                            SimTime first_at, double watts,
                            SimDuration stagger = 0);

// Correlated device-death wave: `target` (a per-rack fault-injector name,
// e.g. "rack-lake/kvs") dies in each selected rack.
void AppendDeviceDeathWave(RowFaultPlanSpec& plan, const std::vector<int>& racks,
                           const std::string& target, SimTime first_at,
                           SimDuration stagger = 0);

struct RowSpec {
  std::string name = "row";
  std::vector<RowRackSpec> racks;
  // Inter-rack fiber: the uplinks' propagation delay and therefore the
  // sharded engine's conservative lookahead. Must be > 0.
  SimDuration inter_rack_propagation = Microseconds(5);
  double uplink_gigabits_per_second = 40.0;
  // One synthetic zone shared by every rack whose spec leaves env.zone null.
  size_t zone_size = 2000;
  RowPowerSpec power;
  RowTraceSpec trace;
  RowFaultPlanSpec faults;
};

}  // namespace incod

#endif  // INCOD_SRC_ROW_ROW_SPEC_H_
