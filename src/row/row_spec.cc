#include "src/row/row_spec.h"

namespace incod {

namespace {

RowFaultEventSpec BaseEvent(RowFaultEventSpec::Kind kind, int rack, SimTime at) {
  RowFaultEventSpec event;
  event.kind = kind;
  event.at = at;
  event.racks = {rack};
  return event;
}

}  // namespace

void AppendUplinkFlapWave(RowFaultPlanSpec& plan, const std::vector<int>& racks,
                          SimTime first_down, SimDuration down_for,
                          SimDuration stagger) {
  SimTime at = first_down;
  for (int rack : racks) {
    plan.events.push_back(BaseEvent(RowFaultEventSpec::Kind::kUplinkDown, rack, at));
    plan.events.push_back(
        BaseEvent(RowFaultEventSpec::Kind::kUplinkUp, rack, at + down_for));
    at += stagger;
  }
}

void AppendRackBrownoutWave(RowFaultPlanSpec& plan, const std::vector<int>& racks,
                            SimTime first_at, double watts, SimDuration stagger) {
  SimTime at = first_at;
  for (int rack : racks) {
    RowFaultEventSpec event =
        BaseEvent(RowFaultEventSpec::Kind::kRackBrownout, rack, at);
    event.watts = watts;
    plan.events.push_back(event);
    at += stagger;
  }
}

void AppendDeviceDeathWave(RowFaultPlanSpec& plan, const std::vector<int>& racks,
                           const std::string& target, SimTime first_at,
                           SimDuration stagger) {
  SimTime at = first_at;
  for (int rack : racks) {
    RowFaultEventSpec event =
        BaseEvent(RowFaultEventSpec::Kind::kRackFault, rack, at);
    event.rack_event.kind = FaultKind::kDeviceDeath;
    event.rack_event.target = target;
    plan.events.push_back(event);
    at += stagger;
  }
}

}  // namespace incod
