// RowSpec -> wired datacenter row over a ShardedSimulation.
//
// One shard per rack plus a spine shard; each rack is an unmodified
// ScenarioTestbed whose ToR uplinks to the spine (the uplink fiber is the
// engine lookahead). Orchestrated racks get a RackOrchestrator +
// StateTransferMigrators built from their RowAppSpecs, all reporting to a
// RowOrchestrator in the spine shard that apportions the global power
// budget. Row fault plans arm as ordinary setup-time events (uplink flaps,
// global/rack brownouts, fanned-out rack faults), and the optional diurnal
// Google trace plays back phase-shifted per rack, modulating member hosts'
// background draw. Runs identically under Mode::kSingleQueue and
// Mode::kParallel — every row construct posts through the same
// deterministic cross-shard paths packets use.
#ifndef INCOD_SRC_ROW_ROW_SCENARIO_H_
#define INCOD_SRC_ROW_ROW_SCENARIO_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/dns/zone.h"
#include "src/net/switch.h"
#include "src/net/topology.h"
#include "src/row/row_orchestrator.h"
#include "src/row/row_spec.h"
#include "src/scenarios/scenario_spec.h"
#include "src/sim/sharded.h"

namespace incod {

class RowScenario {
 public:
  // Requires sharded.num_shards() == spec.racks.size() + 1 (racks + spine).
  RowScenario(ShardedSimulation& sharded, RowSpec spec);

  int num_racks() const { return static_cast<int>(racks_.size()); }
  int spine_shard() const { return num_racks(); }
  ShardedSimulation& sharded() { return sharded_; }
  const RowSpec& spec() const { return spec_; }
  const Zone& zone() const { return zone_; }

  ScenarioTestbed& rack(int r) { return *racks_.at(static_cast<size_t>(r)).testbed; }
  L2Switch& spine() { return *spine_; }
  Link& uplink(int r) { return *racks_.at(static_cast<size_t>(r)).uplink; }
  size_t client_count(int r) const {
    return racks_.at(static_cast<size_t>(r)).clients.size();
  }
  LoadClient& client(int r, size_t i) {
    return *racks_.at(static_cast<size_t>(r)).clients.at(i);
  }

  // Null when the rack is not orchestrated / the row has no global budget.
  RackOrchestrator* rack_orchestrator(int r) {
    return racks_.at(static_cast<size_t>(r)).orchestrator.get();
  }
  RowOrchestrator* row_orchestrator() { return row_.get(); }

  // Orchestrated apps of rack r, in RowRackSpec::apps order.
  size_t app_count(int r) const { return racks_.at(static_cast<size_t>(r)).apps.size(); }
  // The app's index inside the rack orchestrator.
  size_t orchestrator_index(int r, size_t app) const {
    return racks_.at(static_cast<size_t>(r)).apps.at(app).rack_index;
  }
  StateTransferMigrator& migrator(int r, size_t app) {
    return *racks_.at(static_cast<size_t>(r)).apps.at(app).fpga_migrator;
  }
  // Background cores the trace currently runs on the app's host.
  double background_cores(int r, size_t app) const {
    return racks_.at(static_cast<size_t>(r)).apps.at(app).background_cores;
  }
  const std::vector<TraceTask>& trace_tasks() const { return tasks_; }

  // Starts trace playback, every client, every rack orchestrator, and the
  // row orchestrator (which applies the initial apportionment).
  void Start();

  uint64_t TotalSent() const;
  uint64_t TotalReceived() const;

 private:
  struct RowManagedApp {
    size_t member = 0;
    size_t rack_index = 0;  // Index inside the rack orchestrator.
    StateTransferMigrator* fpga_migrator = nullptr;
    double background_cores = 0;  // Modulated by the trace playback.
  };
  struct BuiltRack {
    std::unique_ptr<ScenarioTestbed> testbed;
    std::vector<LoadClient*> clients;
    std::unique_ptr<RackOrchestrator> orchestrator;
    std::vector<std::unique_ptr<StateTransferMigrator>> migrators;
    // Deque: software_watts closures capture &background_cores, and deque
    // push_back never moves prior elements.
    std::deque<RowManagedApp> apps;
    Link* uplink = nullptr;
    int row_index = -1;  // Index inside the row orchestrator (-1: none).
  };

  void Validate() const;
  void BuildRack(int r);
  void ConnectRackToSpine(int r);
  void BuildOrchestration(int r);
  void BuildRow();
  void ArmRowFaults();
  std::vector<int> SelectedRacks(const RowFaultEventSpec& event) const;
  void ScheduleTracePlayback();

  ShardedSimulation& sharded_;
  RowSpec spec_;
  // One synthetic zone shared by every rack whose spec leaves env.zone null.
  // Filled once at construction and read-only afterwards, so cross-shard
  // sharing is safe.
  Zone zone_;
  std::unique_ptr<L2Switch> spine_;
  Topology spine_topology_;
  std::vector<BuiltRack> racks_;
  std::unique_ptr<RowOrchestrator> row_;
  std::vector<TraceTask> tasks_;
  bool started_ = false;
};

}  // namespace incod

#endif  // INCOD_SRC_ROW_ROW_SCENARIO_H_
