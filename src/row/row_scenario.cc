#include "src/row/row_scenario.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/device/switch_asic.h"
#include "src/ondemand/energy_advisor.h"
#include "src/workload/arrival.h"

namespace incod {

RowScenario::RowScenario(ShardedSimulation& sharded, RowSpec spec)
    : sharded_(sharded),
      spec_(std::move(spec)),
      spine_topology_(sharded.shard(static_cast<int>(spec_.racks.size()))) {
  Validate();
  zone_.FillSynthetic(spec_.zone_size);

  const int spine = static_cast<int>(spec_.racks.size());
  spine_ = std::make_unique<L2Switch>(sharded_.shard(spine),
                                      spec_.name + "-spine");
  spine_topology_.SetSharded(&sharded_, spine);
  spine_topology_.AssignShard(spine_.get(), spine);

  racks_.reserve(spec_.racks.size());
  for (int r = 0; r < static_cast<int>(spec_.racks.size()); ++r) {
    BuildRack(r);
  }
  for (int r = 0; r < num_racks(); ++r) {
    ConnectRackToSpine(r);
  }
  for (int r = 0; r < num_racks(); ++r) {
    if (spec_.racks[static_cast<size_t>(r)].orchestrate) {
      BuildOrchestration(r);
    }
  }
  BuildRow();
  ArmRowFaults();

  if (spec_.trace.enabled) {
    Rng rng(spec_.trace.seed);
    tasks_ = SynthesizeGoogleTrace(spec_.trace.trace, rng);
  }
}

void RowScenario::Validate() const {
  if (spec_.racks.empty()) {
    throw std::invalid_argument("RowScenario: need at least one rack");
  }
  if (sharded_.num_shards() != static_cast<int>(spec_.racks.size()) + 1) {
    throw std::invalid_argument(
        "RowScenario: need racks + 1 shards (one per rack plus the spine)");
  }
  if (spec_.inter_rack_propagation <= 0) {
    throw std::invalid_argument("RowScenario: inter-rack propagation must be > 0");
  }
  const int n = static_cast<int>(spec_.racks.size());
  for (const RowFaultEventSpec& event : spec_.faults.events) {
    for (int rack : event.racks) {
      if (rack < 0 || rack >= n) {
        throw std::invalid_argument("RowScenario: fault event rack out of range");
      }
    }
    const bool brownout = event.kind == RowFaultEventSpec::Kind::kGlobalBrownout ||
                          event.kind == RowFaultEventSpec::Kind::kRackBrownout;
    if (brownout && spec_.power.global_budget_watts <= 0) {
      throw std::invalid_argument(
          "RowScenario: brownout events need a global power budget");
    }
  }
  if (spec_.power.global_budget_watts > 0) {
    const bool any_orchestrated =
        std::any_of(spec_.racks.begin(), spec_.racks.end(),
                    [](const RowRackSpec& rack) { return rack.orchestrate; });
    if (!any_orchestrated) {
      throw std::invalid_argument(
          "RowScenario: a global budget needs at least one orchestrated rack");
    }
  }
}

std::vector<int> RowScenario::SelectedRacks(const RowFaultEventSpec& event) const {
  if (!event.racks.empty()) {
    return event.racks;
  }
  std::vector<int> all(spec_.racks.size());
  for (int r = 0; r < static_cast<int>(all.size()); ++r) {
    all[static_cast<size_t>(r)] = r;
  }
  return all;
}

void RowScenario::BuildRack(int r) {
  const RowRackSpec& rack_spec = spec_.racks[static_cast<size_t>(r)];
  ScenarioSpec scenario = rack_spec.scenario;
  scenario.shard = r;
  if (scenario.env.zone == nullptr) {
    scenario.env.zone = &zone_;
  }
  // Fold the row plan's rack-scoped faults into this rack's own plan; the
  // testbed's injector arms them with its locally-registered names.
  for (const RowFaultEventSpec& event : spec_.faults.events) {
    if (event.kind != RowFaultEventSpec::Kind::kRackFault) {
      continue;
    }
    const std::vector<int> selected = SelectedRacks(event);
    if (std::find(selected.begin(), selected.end(), r) == selected.end()) {
      continue;
    }
    FaultEventSpec fault = event.rack_event;
    fault.at = event.at;
    scenario.faults.events.push_back(fault);
  }
  const Zone* zone = scenario.env.zone;

  BuiltRack built;
  built.testbed = std::make_unique<ScenarioTestbed>(sharded_, std::move(scenario));
  for (const RowClientSpec& client_spec : rack_spec.clients) {
    RequestFactory factory =
        MakeScenarioRequestFactory(client_spec.workload, client_spec.service, zone);
    if (factory == nullptr) {
      throw std::invalid_argument("RowScenario: rack " + std::to_string(r) +
                                  " client needs a workload kind");
    }
    built.clients.push_back(&built.testbed->AddTorClient(
        client_spec.client,
        std::make_unique<PoissonArrival>(client_spec.rate_per_second),
        std::move(factory), client_spec.shard));
  }
  racks_.push_back(std::move(built));
}

void RowScenario::ConnectRackToSpine(int r) {
  BuiltRack& built = racks_[static_cast<size_t>(r)];
  L2Switch* tor = built.testbed->tor();
  if (tor == nullptr) {
    throw std::invalid_argument("RowScenario: rack " + std::to_string(r) +
                                " needs a ToR (tor.present) to uplink");
  }
  spine_topology_.AssignShard(tor, r);

  Link::Config uplink;
  uplink.gigabits_per_second = spec_.uplink_gigabits_per_second;
  uplink.propagation_delay = spec_.inter_rack_propagation;
  built.uplink = spine_topology_.Connect(tor, spine_.get(), uplink,
                                         "uplink-" + std::to_string(r));

  const int tor_port = tor->AttachLink(built.uplink);
  tor->SetDefaultRoute(tor_port);  // Non-local traffic heads to the spine.

  const int spine_port = spine_->AttachLink(built.uplink);
  // Route every address this rack owns: member switch routes (hosts,
  // devices, service addresses), aux hosts, and the rack's clients.
  std::vector<NodeId> nodes;
  auto add = [&nodes](NodeId node) {
    if (node != 0 && std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
      nodes.push_back(node);
    }
  };
  const RowRackSpec& rack_spec = spec_.racks[static_cast<size_t>(r)];
  for (const ScenarioMemberSpec& member : rack_spec.scenario.members) {
    for (NodeId node : member.switch_routes) {
      add(node);
    }
    if (member.aux) {
      add(member.host.config.node);
    }
  }
  for (const RowClientSpec& client_spec : rack_spec.clients) {
    add(client_spec.client.node);
  }
  for (NodeId node : nodes) {
    spine_->AddRoute(node, spine_port);
  }
}

void RowScenario::BuildOrchestration(int r) {
  const RowRackSpec& rack_spec = spec_.racks[static_cast<size_t>(r)];
  BuiltRack& built = racks_[static_cast<size_t>(r)];
  Simulation& sim = sharded_.shard(r);
  ScenarioTestbed& testbed = *built.testbed;

  built.orchestrator =
      std::make_unique<RackOrchestrator>(sim, rack_spec.orchestrator);

  for (const RowAppSpec& app_spec : rack_spec.apps) {
    ScenarioMember& member = testbed.member(app_spec.member);
    if (member.fpga == nullptr || member.host_apps.empty() ||
        member.offload_app == nullptr) {
      throw std::invalid_argument(
          "RowScenario: orchestrated member " + member.name +
          " needs a host app and a parked FPGA placement");
    }
    built.migrators.push_back(std::make_unique<StateTransferMigrator>(
        sim, *member.fpga,
        StateTransferMigrator::Options::FromPolicy(ParkPolicy::kGatedPark),
        member.host_apps.front().get(), member.offload_app.get()));
    StateTransferMigrator* fpga_migrator = built.migrators.back().get();

    RowManagedApp managed;
    managed.member = app_spec.member;
    managed.fpga_migrator = fpga_migrator;
    built.apps.push_back(managed);
    double* background = &built.apps.back().background_cores;

    const ScenarioMemberSpec& member_spec =
        testbed.spec().members.at(app_spec.member);
    RackAppSpec rack_app;
    rack_app.name = member.name;
    rack_app.warm_migration = app_spec.warm_migration;
    rack_app.checkpoint_period = app_spec.checkpoint_period;
    auto curve =
        MakeServerRatePower(member_spec.host.config.power_curve,
                            app_spec.host_service_time,
                            member_spec.host.config.num_cores);
    // The trace's background tasks raise the host side of the decision:
    // offload pays exactly while the node is contended (§9.3).
    const double watts_per_core = rack_spec.background_watts_per_core;
    rack_app.software_watts = [background, curve, watts_per_core](double rate) {
      return curve(rate) + 4.0 + *background * watts_per_core;
    };

    FpgaNic* fpga = member.fpga;
    SwitchOffloadTarget* switch_target =
        app_spec.switch_option ? member.switch_target.get() : nullptr;
    if (app_spec.switch_option && switch_target == nullptr) {
      throw std::invalid_argument(
          "RowScenario: member " + member.name +
          " switch option needs a switch_app on an ASIC ToR");
    }
    if (switch_target != nullptr) {
      rack_app.measured_rate_pps = [fpga, switch_target] {
        return fpga->AppIngressRatePerSecond() +
               switch_target->AppIngressRatePerSecond();
      };
    } else {
      rack_app.measured_rate_pps = [fpga] {
        return fpga->AppIngressRatePerSecond();
      };
    }
    rack_app.options.push_back(RackPlacementOption{
        fpga, fpga_migrator,
        MakeFpgaRatePower(app_spec.host_idle_watts, app_spec.board_idle_watts,
                          app_spec.board_dynamic_watts,
                          app_spec.board_capacity_pps),
        ParkPolicy::kGatedPark});
    if (switch_target != nullptr) {
      auto* program =
          dynamic_cast<SwitchProgram*>(member.switch_program_app.get());
      auto marginal = MakeSwitchMarginalPower(
          program->PowerOverheadAtFullLoad(),
          testbed.tor_asic()->asic_config().max_power_watts,
          testbed.tor_asic()->LineRatePps());
      built.migrators.push_back(std::make_unique<StateTransferMigrator>(
          sim, *switch_target,
          StateTransferMigrator::Options::FromPolicy(ParkPolicy::kKeepWarm),
          member.host_apps.front().get(), member.switch_program_app.get()));
      // Only the program's marginal watts on top of the idling host (§9.4) —
      // the ASIC forwards either way.
      rack_app.options.push_back(RackPlacementOption{
          switch_target, built.migrators.back().get(),
          [curve, marginal](double rate) { return curve(0) + 4.0 + marginal(rate); },
          ParkPolicy::kKeepWarm});
    }
    built.apps.back().rack_index =
        built.orchestrator->AddApp(std::move(rack_app));

    // Heartbeats ride the member's ToR link: a downed cable makes the
    // device unreachable (flap suppression), not dead.
    if (Link* link =
            testbed.builder().topology().FindLink(member_spec.link_name)) {
      built.orchestrator->SetHeartbeatReachability(
          fpga, [link, fpga] { return !link->link_down(fpga); });
    }
  }
}

void RowScenario::BuildRow() {
  if (spec_.power.global_budget_watts <= 0) {
    return;
  }
  RowOrchestratorConfig config;
  config.global_budget_watts = spec_.power.global_budget_watts;
  config.policy = spec_.power.policy == RowPowerSpec::Policy::kEqualShare
                      ? RowOrchestratorConfig::Policy::kEqualShare
                      : RowOrchestratorConfig::Policy::kDemandWeighted;
  config.report_period = spec_.power.report_period;
  config.apportion_period = spec_.power.apportion_period;
  config.sample_period = spec_.power.sample_period;
  config.min_rack_watts = spec_.power.min_rack_watts;
  row_ = std::make_unique<RowOrchestrator>(sharded_, spine_shard(), config);
  for (int r = 0; r < num_racks(); ++r) {
    BuiltRack& built = racks_[static_cast<size_t>(r)];
    if (built.orchestrator == nullptr) {
      continue;
    }
    built.row_index = static_cast<int>(row_->AddRack(
        built.testbed->spec().name, r, built.orchestrator.get()));
  }
}

void RowScenario::ArmRowFaults() {
  Simulation& home = sharded_.shard(spine_shard());
  for (const RowFaultEventSpec& event : spec_.faults.events) {
    switch (event.kind) {
      case RowFaultEventSpec::Kind::kRackFault:
        break;  // Folded into the rack specs in BuildRack.
      case RowFaultEventSpec::Kind::kUplinkDown:
        for (int r : SelectedRacks(event)) {
          racks_[static_cast<size_t>(r)].uplink->ScheduleDown(event.at);
        }
        break;
      case RowFaultEventSpec::Kind::kUplinkUp:
        for (int r : SelectedRacks(event)) {
          racks_[static_cast<size_t>(r)].uplink->ScheduleUp(event.at);
        }
        break;
      case RowFaultEventSpec::Kind::kGlobalBrownout: {
        const double watts = event.watts;
        home.ScheduleAt(event.at,
                        [this, watts] { row_->ApplyGlobalBrownout(watts); });
        break;
      }
      case RowFaultEventSpec::Kind::kRackBrownout:
        for (int r : SelectedRacks(event)) {
          const int row_index = racks_[static_cast<size_t>(r)].row_index;
          if (row_index < 0) {
            throw std::invalid_argument(
                "RowScenario: rack brownout targets a rack the row does not "
                "orchestrate");
          }
          const double watts = event.watts;
          home.ScheduleAt(event.at, [this, row_index, watts] {
            row_->ApplyRackBrownout(static_cast<size_t>(row_index), watts);
          });
        }
        break;
    }
  }
}

void RowScenario::ScheduleTracePlayback() {
  if (!spec_.trace.enabled) {
    return;
  }
  const int64_t horizon = spec_.trace.trace.horizon_seconds;
  if (horizon <= 0 || spec_.trace.sim_horizon <= 0) {
    return;
  }
  const double scale =
      static_cast<double>(spec_.trace.sim_horizon) / static_cast<double>(horizon);
  // Phase-shift each rack through the diurnal day so racks peak at
  // staggered times — the load imbalance the demand-weighted global
  // apportionment exists to exploit.
  const int64_t shift_step = spec_.trace.phase_shift_seconds >= 0
                                 ? spec_.trace.phase_shift_seconds
                                 : horizon / num_racks();
  for (int r = 0; r < num_racks(); ++r) {
    BuiltRack& built = racks_[static_cast<size_t>(r)];
    if (built.apps.empty()) {
      continue;
    }
    Simulation& sim = sharded_.shard(r);
    for (const TraceTask& task : tasks_) {
      const size_t app = task.node % built.apps.size();
      const int64_t wrapped =
          (task.start_seconds + static_cast<int64_t>(r) * shift_step) % horizon;
      // Tasks whose shifted window crosses the day boundary are truncated at
      // the horizon (their tail would belong to the next day).
      const int64_t end_seconds = std::min(horizon, wrapped + task.duration_seconds);
      const SimDuration start =
          static_cast<SimDuration>(static_cast<double>(wrapped) * scale);
      const SimDuration end =
          static_cast<SimDuration>(static_cast<double>(end_seconds) * scale);
      double* background = &built.apps[app].background_cores;
      const double cores = task.cpu_cores;
      sim.Schedule(start, [background, cores] { *background += cores; });
      sim.Schedule(std::max(end, start + 1),
                   [background, cores] { *background -= cores; });
    }
  }
}

void RowScenario::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  ScheduleTracePlayback();
  for (BuiltRack& built : racks_) {
    for (LoadClient* client : built.clients) {
      client->Start();
    }
  }
  for (BuiltRack& built : racks_) {
    if (built.orchestrator != nullptr) {
      built.orchestrator->Start();
    }
  }
  if (row_ != nullptr) {
    row_->Start();
  }
}

uint64_t RowScenario::TotalSent() const {
  uint64_t total = 0;
  for (const BuiltRack& built : racks_) {
    for (const LoadClient* client : built.clients) {
      total += client->sent();
    }
  }
  return total;
}

uint64_t RowScenario::TotalReceived() const {
  uint64_t total = 0;
  for (const BuiltRack& built : racks_) {
    for (const LoadClient* client : built.clients) {
      total += client->received();
    }
  }
  return total;
}

}  // namespace incod
