// Datacenter-row power orchestration: one global ledger over N racks.
//
// A row (or a whole PDU line-up) shares one provisioned power envelope.
// The RowOrchestrator generalizes the rack orchestrator's economics one
// level up: each RackOrchestrator keeps making §9 placement decisions
// against *its* budget, and the row decides what those budgets are. Every
// report period each rack posts its committed offload watts and its demand
// (RackOrchestrator::OffloadDemandWatts) to the row's home shard; every
// apportion period the row waterfills the global budget across racks —
// equal-share or demand-weighted — and pushes the changed budgets back down
// as RackOrchestrator::ApplyPowerCap calls, which evict greedily inside the
// rack when a budget shrinks below its commitments.
//
// Determinism: the row lives in one shard (the spine's), racks in theirs.
// All row <-> rack traffic crosses shards through
// ShardedSimulation::PostCrossShard at now + lookahead, the same
// conservative path packets use, so single-queue and parallel runs of a
// row under power pressure stay event-identical (the engine_diff_test
// contract extends to the row).
#ifndef INCOD_SRC_ROW_ROW_ORCHESTRATOR_H_
#define INCOD_SRC_ROW_ROW_ORCHESTRATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/ondemand/rack.h"
#include "src/sim/sharded.h"
#include "src/stats/timeseries.h"

namespace incod {

// Global row power ledger: tracks the watts apportioned to each rack so the
// sum never exceeds the row budget — the row-level mirror of
// RackPowerLedger, keyed by rack name.
class RowPowerLedger {
 public:
  // budget_watts <= 0 means unlimited.
  explicit RowPowerLedger(double budget_watts = 0);

  // Apportions `watts` to `rack` (replacing any prior apportionment).
  // Returns false — leaving the prior apportionment intact — if the global
  // budget would be exceeded.
  bool TryApportion(const std::string& rack, double watts);
  void Release(const std::string& rack);

  // Global brownout: steps the budget (existing apportionments may now
  // exceed it; the orchestrator re-apportions until the invariant holds).
  void SetBudgetWatts(double watts) { budget_ = watts; }

  double budget_watts() const { return budget_; }
  bool unlimited() const { return budget_ <= 0; }
  double apportioned_watts() const;
  double RemainingWatts() const;
  const std::map<std::string, double>& apportionments() const {
    return apportionments_;
  }

 private:
  double budget_;
  std::map<std::string, double> apportionments_;
};

// What a rack tells the row each report period.
struct RowRackReport {
  SimTime at = 0;
  double committed_watts = 0;  // Rack ledger's current offload commitments.
  double demand_watts = 0;     // RackOrchestrator::OffloadDemandWatts().
  uint64_t offloaded_apps = 0;
};

// One entry of the row's decision log. kApportion: a rack budget was set
// (one record per issued cap, including the initial Start() apportionment).
// kGlobalBrownout: the global budget stepped. kRackBrownout: a per-rack
// ceiling was imposed (watts < 0: cleared).
struct RowDecisionRecord {
  enum class Kind { kApportion, kGlobalBrownout, kRackBrownout };
  Kind kind = Kind::kApportion;
  SimTime at = 0;
  std::string rack;  // Empty for kGlobalBrownout.
  double watts = 0;
};

struct RowOrchestratorConfig {
  enum class Policy { kEqualShare, kDemandWeighted };
  // Global row budget (<= 0: unlimited — reports are still collected but no
  // caps are ever issued).
  double global_budget_watts = 0;
  Policy policy = Policy::kDemandWeighted;
  SimDuration report_period = Milliseconds(50);
  SimDuration apportion_period = Milliseconds(100);
  SimDuration sample_period = Milliseconds(100);
  // Per-rack floor under demand weighting (0: none). Floors are scaled down
  // proportionally when they alone would exceed the budget.
  double min_rack_watts = 0;
  // Re-issue a rack's cap only when it moved by more than this.
  double cap_epsilon_watts = 0.5;
};

// Pure apportionment kernel, exposed for the property suite. Waterfills
// `budget` over the racks: each gets its floor (min_rack_watts clamped to
// its ceiling; floors scale down if they alone exceed the budget), then the
// remainder is divided proportionally to weight — 1 under kEqualShare, the
// reported demand under kDemandWeighted (equal when no rack demands) —
// iteratively re-spreading the excess of ceiling-clamped racks. The result
// sums to the budget exactly unless every rack is ceiling-clamped, and
// never exceeds any ceiling.
struct RowRackApportionInput {
  double demand_watts = 0;
  double ceiling_watts = -1;  // < 0: no ceiling.
};
std::vector<double> ComputeRowApportionment(
    double budget_watts, const std::vector<RowRackApportionInput>& racks,
    RowOrchestratorConfig::Policy policy, double min_rack_watts);

class RowOrchestrator {
 public:
  // `home_shard` is where the row's ledger, log and apportion loop live
  // (conventionally the spine's shard).
  RowOrchestrator(ShardedSimulation& sharded, int home_shard,
                  RowOrchestratorConfig config = {});

  // Registers a rack (its orchestrator lives in `rack_shard`). The rack's
  // name keys the global ledger. Returns the rack index.
  size_t AddRack(std::string name, int rack_shard, RackOrchestrator* rack);

  // Applies the initial apportionment (synchronously — setup time) and
  // schedules the report pumps and the apportion loop.
  void Start();
  void Stop() { stopped_ = true; }

  // --- Row-scale faults (call from events in the home shard) ---
  // Global brownout: step the row budget and re-apportion immediately; the
  // cap cascade evicts inside every rack whose budget shrank.
  void ApplyGlobalBrownout(double watts);
  // Per-rack brownout: impose (or, with watts < 0, clear) an apportionment
  // ceiling on one rack; the freed budget flows to the others.
  void ApplyRackBrownout(size_t rack_index, double watts);

  // --- Introspection ---
  const RowPowerLedger& ledger() const { return ledger_; }
  size_t rack_count() const { return racks_.size(); }
  const std::string& rack_name(size_t index) const { return racks_.at(index).name; }
  // Latest report received from the rack (default-constructed before one
  // arrives).
  const RowRackReport& rack_report(size_t index) const {
    return racks_.at(index).report;
  }
  // Rack budget the row last issued (the ledger's apportionment).
  double CurrentApportionment(size_t index) const;
  const std::vector<RowDecisionRecord>& decision_log() const { return decision_log_; }
  uint64_t caps_issued() const { return caps_issued_; }
  uint64_t reports_received() const { return reports_received_; }
  uint64_t apportion_rounds() const { return apportion_rounds_; }
  uint64_t global_brownouts() const { return global_brownouts_; }
  uint64_t rack_brownouts() const { return rack_brownouts_; }
  // Sampled every sample_period: total apportioned watts and the budget.
  const TimeSeries& apportioned_series() const { return apportioned_series_; }
  const TimeSeries& budget_series() const { return budget_series_; }

 private:
  struct RowRack {
    std::string name;
    int shard = 0;
    RackOrchestrator* rack = nullptr;
    RowRackReport report;
    double ceiling_watts = -1;  // < 0: none (rack-brownout override).
    double issued_watts = -1;   // Last cap pushed down (< 0: none yet).
  };

  Simulation& home() { return sharded_.shard(home_shard_); }
  // Delivery delay for row <-> rack messages: the engine lookahead (the
  // uplink fiber), identical in both engine modes.
  SimDuration HopDelay() const;
  // Runs `fn` in `shard` at now + HopDelay(); same-shard destinations use an
  // ordinary scheduled event (the branch depends only on topology, not on
  // engine mode, so both modes take the same path).
  void PostToShard(int src, int dst, InlineEvent fn);
  void Reapportion();
  // Pushes one rack's cap down (the ledger entry was already updated by the
  // caller) and logs kApportion. `initial` applies synchronously (setup).
  void IssueCap(RowRack& rack, double watts, bool initial);
  std::vector<double> ComputeShares() const;

  ShardedSimulation& sharded_;
  int home_shard_;
  RowOrchestratorConfig config_;
  RowPowerLedger ledger_;
  std::vector<RowRack> racks_;
  std::vector<RowDecisionRecord> decision_log_;
  TimeSeries apportioned_series_{"row_apportioned_watts"};
  TimeSeries budget_series_{"row_budget_watts"};
  uint64_t caps_issued_ = 0;
  uint64_t reports_received_ = 0;
  uint64_t apportion_rounds_ = 0;
  uint64_t global_brownouts_ = 0;
  uint64_t rack_brownouts_ = 0;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace incod

#endif  // INCOD_SRC_ROW_ROW_ORCHESTRATOR_H_
