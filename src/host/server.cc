#include "src/host/server.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace incod {

Server::Server(Simulation& sim, ServerConfig config)
    : sim_(sim),
      config_(std::move(config)),
      cpu_power_(config_.name + "/cpu", config_.num_cores, config_.power_curve) {
  if (config_.num_cores < 1) {
    throw std::invalid_argument("Server: num_cores must be >= 1");
  }
  last_sample_at_ = sim_.Now();
}

void Server::BindApp(App* app) {
  if (app == nullptr) {
    throw std::invalid_argument("Server::BindApp: null app");
  }
  if (!app->SupportsPlacement(PlacementKind::kHost)) {
    throw std::invalid_argument("Server::BindApp: " + app->AppName() +
                                " does not support the host placement");
  }
  const HostPlacementProfile profile = app->HostProfile();
  for (const auto& existing : apps_) {
    if (existing->app->proto() == app->proto() &&
        existing->service_address == profile.service_address) {
      throw std::invalid_argument("Server::BindApp: protocol/service already bound");
    }
  }
  auto bound = std::make_unique<BoundApp>();
  bound->app = app;
  bound->service_address = profile.service_address;
  const int threads = std::max(1, std::min(profile.num_threads, config_.num_cores));
  bound->threads.resize(static_cast<size_t>(threads));
  apps_.push_back(std::move(bound));
  app->BindContext(this);
  if (auto* legacy = dynamic_cast<SoftwareApp*>(app)) {
    legacy->set_server(this);
  }
}

App* Server::AppFor(AppProto proto) const {
  for (const auto& bound : apps_) {
    if (bound->app->proto() == proto) {
      return bound->app;
    }
  }
  return nullptr;
}

Server::BoundApp* Server::FindBound(const Packet& packet) {
  BoundApp* fallback = nullptr;
  for (const auto& bound : apps_) {
    if (bound->app->proto() != packet.proto) {
      continue;
    }
    const auto& service = bound->service_address;
    if (service.has_value()) {
      if (*service == packet.dst) {
        return bound.get();
      }
    } else if (fallback == nullptr) {
      fallback = bound.get();
    }
  }
  return fallback;
}

void Server::Receive(Packet packet) {
  received_.Increment();
  BoundApp* found = FindBound(packet);
  if (found == nullptr) {
    // No application for this packet: host OS drops it.
    dropped_no_app_.Increment();
    return;
  }
  if (config_.flow.cnp && packet.ecn) {
    // The packet crossed a congested queue on the way here: DCQCN
    // notification point, CNP back to the sender (rate-limited per source).
    MaybeSendCnp(packet);
  }
  BoundApp& bound = *found;
  const size_t index = PickThread(bound, packet);
  WorkerThread& thread = bound.threads[index];
  if (thread.queue.size() >= config_.rx_queue_capacity) {
    dropped_overflow_.Increment();
    return;
  }
  thread.queue.push_back(std::move(packet));
  ++rx_queued_;
  MaybeUpdateIngressPause();
  if (!thread.busy) {
    StartService(bound, index);
  }
}

size_t Server::PickThread(const BoundApp& bound, const Packet& packet) const {
  if (config_.dispatch == HostDispatch::kRssHash) {
    // RSS steering: the flow hash pins a flow to one worker (the same hash
    // the mechanistic NIC uses for its rx queues). Collisions mean real
    // imbalance — the price of hardware dispatch over the ideal below.
    return static_cast<size_t>(FlowHash(packet) % bound.threads.size());
  }
  // Idealized least-loaded dispatch (shortest queue wins).
  size_t best = 0;
  size_t best_depth = SIZE_MAX;
  for (size_t i = 0; i < bound.threads.size(); ++i) {
    const size_t depth = bound.threads[i].queue.size() + (bound.threads[i].busy ? 1 : 0);
    if (depth < best_depth) {
      best_depth = depth;
      best = i;
    }
  }
  return best;
}

void Server::MaybeUpdateIngressPause() {
  if (!config_.flow.pfc || uplink_ == nullptr || !uplink_->config().flow.pfc) {
    return;
  }
  if (!ingress_paused_ && rx_queued_ >= config_.flow.pause_high_watermark) {
    ingress_paused_ = true;
    pauses_sent_.Increment();
    uplink_->PauseUpstream(this, true);
  } else if (ingress_paused_ && rx_queued_ <= config_.flow.pause_low_watermark) {
    ingress_paused_ = false;
    uplink_->PauseUpstream(this, false);
  }
}

void Server::MaybeSendCnp(const Packet& packet) {
  const SimTime now = sim_.Now();
  auto [it, first] = last_cnp_at_.try_emplace(packet.src, now);
  if (!first) {
    if (now - it->second < config_.flow.cnp_min_interval) {
      return;
    }
    it->second = now;
  }
  ControlMessage msg;
  msg.kind = ControlMessage::Kind::kCongestion;
  msg.target_proto = packet.proto;
  cnps_sent_.Increment();
  Transmit(MakeControlPacket(config_.node, packet.src, msg, 0, now));
}

void Server::StartService(BoundApp& bound, size_t thread_index) {
  WorkerThread& thread = bound.threads[thread_index];
  if (thread.queue.empty()) {
    thread.busy = false;
    return;
  }
  thread.busy = true;
  Packet pkt = std::move(thread.queue.front());
  thread.queue.pop_front();
  --rx_queued_;
  MaybeUpdateIngressPause();
  // Per-packet stack cost follows the stack type: the kernel's socket path
  // vs the DPDK poll-mode fast path (the kDpdk "low per-packet cost"
  // contract above).
  const SimDuration rx_cost = config_.stack == NetStackType::kDpdk
                                  ? config_.dpdk_stack_rx_cost
                                  : config_.stack_rx_cost;
  SimDuration service =
      rx_cost + bound.app->CpuTimePerRequest(pkt) + config_.stack_tx_cost;
  if (pkt.irq && config_.stack == NetStackType::kKernel) {
    // First packet of an interrupt batch: the irq handler runs on this
    // core before the request is serviced.
    irqs_serviced_.Increment();
    service += config_.interrupt_cpu_cost;
  }
  auto complete = [this, &bound, thread_index, service, pkt = std::move(pkt)]() mutable {
    bound.threads[thread_index].cumulative_busy += service;
    completed_.Increment();
    bound.app->HandlePacket(*this, std::move(pkt));
    StartService(bound, thread_index);
  };
  // The per-request completion event is the largest hot capture in the
  // simulator; it must not spill the event engine's inline buffer.
  static_assert(sizeof(complete) <= InlineEvent::kInlineCapacity,
                "Server completion events must stay inline");
  sim_.Schedule(service, std::move(complete));
}

void Server::Punt(Packet packet) {
  (void)packet;
  // An OS-level drop of a packet no app claimed; count it as received so
  // the received == completed + dropped (+ queued) invariant spans punts.
  received_.Increment();
  dropped_no_app_.Increment();
}

void Server::Transmit(Packet packet) {
  packet.src = config_.node;
  if (uplink_ == nullptr) {
    throw std::logic_error("Server::Transmit with no uplink on " + config_.name);
  }
  uplink_->Send(this, std::move(packet));
}

void Server::SetBackgroundUtilization(double cores_busy) {
  background_utilization_ = std::max(0.0, cores_busy);
  // Close the current sampling window so the new load takes effect at the
  // next read rather than being averaged away.
  MaybeSampleUtilization();
  last_sample_at_ = sim_.Now();
}

double Server::TotalUtilization() const {
  MaybeSampleUtilization();
  return cpu_power_.utilization();
}

double Server::PowerWatts() const {
  MaybeSampleUtilization();
  return cpu_power_.PowerWatts();
}

double Server::AppCpuUsage(AppProto proto) const {
  MaybeSampleUtilization();
  size_t busy = 0;
  size_t threads = 0;
  for (const auto& bound : apps_) {
    if (bound->app->proto() != proto) {
      continue;
    }
    threads += bound->threads.size();
    for (const auto& t : bound->threads) {
      if (t.busy) {
        ++busy;
      }
    }
  }
  if (threads == 0) {
    return 0;
  }
  const double instantaneous = static_cast<double>(busy) / static_cast<double>(threads);
  // Blend with the last sampled utilization for stability.
  const double sampled =
      std::min(1.0, last_app_utilization_ / static_cast<double>(threads));
  return 0.5 * instantaneous + 0.5 * sampled;
}

double Server::RaplPackageWatts() const {
  MaybeSampleUtilization();
  const double idle_wall = cpu_power_.IdleWatts();
  const double dynamic = std::max(0.0, cpu_power_.PowerWatts() - idle_wall);
  // RAPL sees the package: most of the dynamic draw plus a package floor.
  return 8.0 + 0.9 * dynamic;
}

void Server::MaybeSampleUtilization() const {
  const SimTime now = sim_.Now();
  const SimDuration dt = now - last_sample_at_;
  if (dt < config_.utilization_sample_period) {
    return;
  }
  SimDuration busy = 0;
  for (const auto& bound : apps_) {
    for (const auto& t : bound->threads) {
      busy += t.cumulative_busy;
    }
  }
  const SimDuration delta_busy = busy - last_sample_busy_;
  last_sample_busy_ = busy;
  last_sample_at_ = now;
  double app_util = static_cast<double>(delta_busy) / static_cast<double>(dt);
  last_app_utilization_ = app_util;
  double total = app_util + background_utilization_;
  if (config_.stack == NetStackType::kDpdk) {
    // Poll cores are pinned at 100 % regardless of load; app work runs on
    // those same cores, so take the max rather than the sum.
    total = std::max(total, static_cast<double>(config_.dpdk_poll_cores)) +
            background_utilization_;
  }
  cpu_power_.SetUtilization(total);
}

BackgroundLoad::BackgroundLoad(Simulation& sim, Server& server, double cores_busy)
    : sim_(sim), server_(server), cores_busy_(cores_busy) {}

void BackgroundLoad::StartAt(SimTime at) {
  sim_.ScheduleAt(at, [this] {
    active_ = true;
    server_.SetBackgroundUtilization(server_.background_utilization() + cores_busy_);
  });
}

void BackgroundLoad::StopAt(SimTime at) {
  sim_.ScheduleAt(at, [this] {
    active_ = false;
    server_.SetBackgroundUtilization(
        std::max(0.0, server_.background_utilization() - cores_busy_));
  });
}

}  // namespace incod
