// Host server model.
//
// A Server executes bound SoftwareApps on a fixed set of cores using a
// per-thread FIFO run queue (UDP drop-tail on overflow), tracks core
// utilization over a sampling period, and reports wall power through a
// calibrated CpuPowerModel curve. The network stack is configurable between
// a kernel path and a DPDK-style busy-polling path, reproducing the paper's
// observation that "DPDK constantly polls", keeping power high at idle.
#ifndef INCOD_SRC_HOST_SERVER_H_
#define INCOD_SRC_HOST_SERVER_H_

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/app/app.h"
#include "src/host/software_app.h"
#include "src/net/flow_control.h"
#include "src/net/link.h"
#include "src/net/packet.h"
#include "src/power/cpu_power.h"
#include "src/sim/simulation.h"
#include "src/stats/counters.h"

namespace incod {

enum class NetStackType {
  kKernel,  // Interrupt-driven: higher per-packet cost, no idle burn.
  kDpdk,    // Busy polling: poll cores always at 100 %, low per-packet cost.
};

// How arriving requests pick a worker thread.
enum class HostDispatch {
  // Idealized least-loaded dispatch (shortest queue wins). No real NIC does
  // this; kept as the differential reference against kRssHash.
  kIdealLb,
  // RSS-style steering: FlowHash(packet) % threads, the same hash a
  // mechanistic conventional NIC uses for its rx queues, so a NIC queue
  // maps stably onto a worker. Hash collisions make load imbalance real.
  kRssHash,
};

struct ServerConfig {
  std::string name = "server";
  NodeId node = 1;
  int num_cores = 4;
  PiecewiseLinearCurve power_curve = I7SyntheticCurve();
  NetStackType stack = NetStackType::kKernel;
  SimDuration stack_rx_cost = Microseconds(1);    // Per-request rx cost (kKernel).
  // Per-request rx cost on the kDpdk stack: poll-mode drivers skip the
  // kernel's socket path, so the per-packet cost is ~5x smaller. Which of
  // the two costs applies follows `stack` (see StartService).
  SimDuration dpdk_stack_rx_cost = Nanoseconds(200);
  SimDuration stack_tx_cost = Nanoseconds(500);   // Added to each reply.
  int dpdk_poll_cores = 1;                        // Cores pinned to polling (kDpdk).
  size_t rx_queue_capacity = 1024;                // Per worker thread.
  HostDispatch dispatch = HostDispatch::kIdealLb;
  // CPU cost of taking one rx interrupt (kKernel only): charged into the
  // service time of the request carrying Packet::irq — the first packet of
  // each interrupt batch a mechanistic NIC (HostNicSpec) delivers. Bigger
  // coalescing batches amortize this over more requests.
  SimDuration interrupt_cpu_cost = Microseconds(1);
  SimDuration utilization_sample_period = Milliseconds(1);
  // Host ingress flow control: pause the uplink at rx-backlog watermarks,
  // CNP-notify senders of ECN-marked arrivals (requires a PFC uplink).
  HostFlowConfig flow;
};

class Server : public PacketSink, public PowerSource, public AppContext {
 public:
  Server(Simulation& sim, ServerConfig config);

  // Binds an application (not owned). Any App supporting the host placement
  // works; legacy SoftwareApp subclasses additionally get their Server
  // back-pointer set. Several apps may share a protocol if they declare
  // distinct service addresses in their host profile.
  void BindApp(App* app);
  // First app bound for the protocol (nullptr if none).
  App* AppFor(AppProto proto) const;

  // --- AppContext (the narrow surface bound apps talk through) ---
  Simulation& sim() override { return sim_; }
  PlacementKind placement() const override { return PlacementKind::kHost; }
  NodeId self_node() const override { return config_.node; }
  // Replies leave via the uplink (stamps src with the host node).
  void Reply(Packet packet) override { Transmit(std::move(packet)); }
  // A host has no placement below it: punted packets are dropped by the OS.
  void Punt(Packet packet) override;

  // Network attachment: replies and originated packets leave via this link.
  void SetUplink(Link* link) { uplink_ = link; }
  Link* uplink() const { return uplink_; }

  // PacketSink: dispatches requests to the bound app's worker threads.
  void Receive(Packet packet) override;
  std::string SinkName() const override { return config_.name; }

  // Sends a packet out the uplink (stamps src).
  void Transmit(Packet packet);

  // Additional synthetic utilization (e.g. a co-running workload). Added to
  // measured app utilization, clamped to the core count.
  void SetBackgroundUtilization(double cores_busy);
  double background_utilization() const { return background_utilization_; }

  // Total core utilization (includes DPDK poll cores and background load),
  // averaged over at least the last sample period.
  double TotalUtilization() const;

  // Fraction [0,1] of the bound apps' worker threads that are busy (averaged
  // with the sampled utilization); this is what the host on-demand
  // controller reads as "CPU usage of the app".
  double AppCpuUsage(AppProto proto) const;

  // Per-app drop counter support: total dropped across all apps is exposed
  // via requests_dropped().

  // PowerSource: whole-server wall power from the calibrated curve.
  double PowerWatts() const override;
  std::string PowerName() const override { return config_.name; }

  // RAPL-visible package power: the dynamic part of the wall power plus a
  // small package idle floor (the wall curve includes PSU/fans/etc. which
  // RAPL does not see).
  double RaplPackageWatts() const;

  const ServerConfig& config() const { return config_; }
  NodeId node() const { return config_.node; }
  uint64_t requests_completed() const { return completed_.value(); }
  // Packets handed to Receive() (plus OS-level punts), before any drop.
  uint64_t requests_received() const { return received_.value(); }
  // Split drop accounting (mirrors the link-side dropped_overflow /
  // paused_deferred split): no bound app for the packet vs a full worker rx
  // queue. requests_dropped() stays the total, and
  //   requests_received() == requests_completed() + requests_dropped()
  //                          + still-queued + in-service
  // holds at any instant.
  uint64_t requests_dropped() const {
    return dropped_no_app_.value() + dropped_overflow_.value();
  }
  uint64_t dropped_no_app() const { return dropped_no_app_.value(); }
  uint64_t dropped_overflow() const { return dropped_overflow_.value(); }
  // Rx interrupts serviced (packets carrying Packet::irq on kKernel).
  uint64_t interrupts_serviced() const { return irqs_serviced_.value(); }

  // Host ingress flow-control state/counters (config().flow).
  bool ingress_paused() const { return ingress_paused_; }
  size_t rx_queued() const { return rx_queued_; }
  uint64_t pause_frames_sent() const { return pauses_sent_.value(); }
  uint64_t cnps_sent() const { return cnps_sent_.value(); }

 private:
  struct WorkerThread {
    std::deque<Packet> queue;
    bool busy = false;
    SimDuration cumulative_busy = 0;
  };
  struct BoundApp {
    App* app = nullptr;
    std::optional<NodeId> service_address;  // Cached from the host profile.
    std::vector<WorkerThread> threads;
  };

  BoundApp* FindBound(const Packet& packet);
  // Worker index for `packet` per config_.dispatch.
  size_t PickThread(const BoundApp& bound, const Packet& packet) const;
  void StartService(BoundApp& bound, size_t thread_index);
  // Pause/resume the uplink when the total rx backlog crosses the
  // watermarks (config_.flow.pfc).
  void MaybeUpdateIngressPause();
  // Rate-limited CNP back to the sender of an ECN-marked packet.
  void MaybeSendCnp(const Packet& packet);
  // Lazily re-samples utilization into the power model when at least one
  // sample period has elapsed. Called from every power/utilization read so
  // the simulation needs no perpetual sampling event (runs terminate).
  void MaybeSampleUtilization() const;

  Simulation& sim_;
  ServerConfig config_;
  mutable CpuPowerModel cpu_power_;
  Link* uplink_ = nullptr;
  std::vector<std::unique_ptr<BoundApp>> apps_;
  double background_utilization_ = 0;
  mutable SimDuration last_sample_busy_ = 0;
  mutable SimTime last_sample_at_ = 0;
  mutable double last_app_utilization_ = 0;
  Counter completed_;
  Counter received_;
  Counter dropped_no_app_;
  Counter dropped_overflow_;
  Counter irqs_serviced_;
  // Ingress flow control.
  bool ingress_paused_ = false;
  size_t rx_queued_ = 0;  // Total queued across all bound apps' threads.
  Counter pauses_sent_;
  Counter cnps_sent_;
  std::unordered_map<NodeId, SimTime> last_cnp_at_;
};

// A co-running CPU-bound workload (the paper uses ChainerMN as the second
// workload in Fig 6). Ramps background utilization on the server between
// start and stop times.
class BackgroundLoad {
 public:
  BackgroundLoad(Simulation& sim, Server& server, double cores_busy);

  void StartAt(SimTime at);
  void StopAt(SimTime at);
  bool active() const { return active_; }

 private:
  Simulation& sim_;
  Server& server_;
  double cores_busy_;
  bool active_ = false;
};

}  // namespace incod

#endif  // INCOD_SRC_HOST_SERVER_H_
