// Legacy host-side application shim over the unified incod::App contract.
//
// New applications should derive from incod::App directly (app/app.h) and
// talk to the substrate through AppContext. SoftwareApp remains as a thin
// adapter for code written against the original host-only surface
// (Execute() + a raw Server back-pointer); the Server binds either kind.
#ifndef INCOD_SRC_HOST_SOFTWARE_APP_H_
#define INCOD_SRC_HOST_SOFTWARE_APP_H_

#include <optional>
#include <string>
#include <utility>

#include "src/app/app.h"
#include "src/net/packet.h"
#include "src/sim/time.h"

namespace incod {

class Server;

class SoftwareApp : public App {
 public:
  // Pure CPU time consumed by one request, excluding network-stack costs.
  SimDuration CpuTimePerRequest(const Packet& packet) const override = 0;

  // Runs the application logic for a request whose service time elapsed.
  // Replies are sent through server().
  virtual void Execute(Packet packet) = 0;

  // Number of worker threads the app runs (each can occupy one core).
  virtual int num_threads() const { return 1; }

  // If set, the app only receives packets addressed to this service address.
  virtual std::optional<NodeId> service_address() const { return std::nullopt; }

  // --- App adaptation ---
  bool SupportsPlacement(PlacementKind placement) const override {
    return placement == PlacementKind::kHost;
  }
  HostPlacementProfile HostProfile() const override {
    return HostPlacementProfile{num_threads(), service_address()};
  }
  void HandlePacket(AppContext& ctx, Packet packet) override {
    (void)ctx;
    Execute(std::move(packet));
  }

  Server* server() const { return server_; }
  void set_server(Server* server) { server_ = server; }

 private:
  Server* server_ = nullptr;
};

}  // namespace incod

#endif  // INCOD_SRC_HOST_SOFTWARE_APP_H_
