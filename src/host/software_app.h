// Base class for software (host-side) application implementations.
//
// A SoftwareApp is bound to a Server and consumes CPU time per request; the
// server's execution model (threads, queues) and power model account for it.
// Concrete apps: kvs::MemcachedServer, paxos software roles, dns::NsdServer.
#ifndef INCOD_SRC_HOST_SOFTWARE_APP_H_
#define INCOD_SRC_HOST_SOFTWARE_APP_H_

#include <optional>
#include <string>

#include "src/net/packet.h"
#include "src/sim/time.h"

namespace incod {

class Server;

class SoftwareApp {
 public:
  virtual ~SoftwareApp() = default;

  // The protocol this app serves; the server dispatches by this tag.
  virtual AppProto proto() const = 0;

  // Pure CPU time consumed by one request, excluding network-stack costs
  // (the server adds those per its stack configuration).
  virtual SimDuration CpuTimePerRequest(const Packet& packet) const = 0;

  // Runs the application logic for a request whose service time elapsed.
  // Replies are sent through server().
  virtual void Execute(Packet packet) = 0;

  // Number of worker threads the app runs (each can occupy one core).
  virtual int num_threads() const { return 1; }

  // If set, the app only receives packets addressed to this service address.
  // Used when several apps of the same protocol (e.g. Paxos roles) share a
  // host; unset apps receive any packet of their protocol.
  virtual std::optional<NodeId> service_address() const { return std::nullopt; }

  virtual std::string AppName() const = 0;

  Server* server() const { return server_; }
  void set_server(Server* server) { server_ = server; }

 private:
  Server* server_ = nullptr;
};

}  // namespace incod

#endif  // INCOD_SRC_HOST_SOFTWARE_APP_H_
