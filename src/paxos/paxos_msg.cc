#include "src/paxos/paxos_msg.h"

namespace incod {

const char* PaxosMsgTypeName(PaxosMsgType type) {
  switch (type) {
    case PaxosMsgType::kClientRequest:
      return "client_request";
    case PaxosMsgType::kPhase1a:
      return "phase1a";
    case PaxosMsgType::kPhase1b:
      return "phase1b";
    case PaxosMsgType::kPhase2a:
      return "phase2a";
    case PaxosMsgType::kPhase2b:
      return "phase2b";
    case PaxosMsgType::kFillRequest:
      return "fill_request";
    case PaxosMsgType::kClientResponse:
      return "client_response";
  }
  return "?";
}

Packet MakePaxosPacket(NodeId src, NodeId dst, const PaxosMessage& msg, SimTime now) {
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.proto = AppProto::kPaxos;
  pkt.size_bytes = kPaxosWireBytes;
  pkt.id = msg.value;
  pkt.created_at = now;
  pkt.payload = msg;
  return pkt;
}

}  // namespace incod
