#include "src/paxos/software_roles.h"

#include <utility>

#include "src/paxos/paxos_msg.h"
#include "src/sim/simulation.h"

namespace incod {

PaxosSoftwareConfig LibpaxosConfig() {
  return PaxosSoftwareConfig{Nanoseconds(4100), 1};
}

PaxosSoftwareConfig DpdkPaxosConfig() {
  return PaxosSoftwareConfig{Nanoseconds(900), 1};
}

PaxosSoftwareApp::PaxosSoftwareApp(PaxosSoftwareConfig config) : config_(config) {}

SimDuration PaxosSoftwareApp::CpuTimePerRequest(const Packet& packet) const {
  (void)packet;
  return config_.cpu_time_per_message;
}

void PaxosSoftwareApp::HandlePacket(AppContext& ctx, Packet packet) {
  const PaxosMessage* msg_if = active_ ? PayloadIf<PaxosMessage>(packet) : nullptr;
  if (msg_if == nullptr) {
    return;
  }
  handled_.Increment();
  const PaxosMessage& msg = *msg_if;
  for (auto& out : Handle(msg)) {
    ctx.Reply(MakePaxosPacket(ctx.self_node(), out.dst, out.msg, ctx.sim().Now()));
  }
}

void PaxosSoftwareApp::TransmitOutbox(std::vector<PaxosOut> outbox) {
  AppContext* ctx = context();
  if (ctx == nullptr) {
    return;
  }
  for (auto& out : outbox) {
    ctx->Reply(MakePaxosPacket(ctx->self_node(), out.dst, out.msg, ctx->sim().Now()));
  }
}

SoftwareLeader::SoftwareLeader(PaxosGroupConfig group, uint16_t ballot,
                               PaxosSoftwareConfig config)
    : PaxosSoftwareApp(config),
      leader_service_(group.leader_service),
      state_(std::move(group), ballot) {}

std::vector<PaxosOut> SoftwareLeader::Handle(const PaxosMessage& msg) {
  return state_.HandleMessage(msg);
}

void SoftwareLeader::BeginSequenceLearning(bool active_probe) {
  TransmitOutbox(state_.StartSequenceLearning(active_probe));
}

AppState SoftwareLeader::SnapshotState() const {
  PaxosAppState px;
  state_.SaveTo(px);
  return AppState{proto(), AppName(), px};
}

void SoftwareLeader::RestoreState(const AppState& state) {
  if (const PaxosAppState* px = std::get_if<PaxosAppState>(&state.data)) {
    state_.RestoreFrom(*px);
  }
}

SoftwareAcceptor::SoftwareAcceptor(PaxosGroupConfig group, uint32_t acceptor_id,
                                   PaxosSoftwareConfig config)
    : PaxosSoftwareApp(config), state_(std::move(group), acceptor_id) {}

std::vector<PaxosOut> SoftwareAcceptor::Handle(const PaxosMessage& msg) {
  return state_.HandleMessage(msg);
}

AppState SoftwareAcceptor::SnapshotState() const {
  PaxosAppState px;
  state_.SaveTo(px);
  return AppState{proto(), AppName(), std::move(px)};
}

void SoftwareAcceptor::RestoreState(const AppState& state) {
  if (const PaxosAppState* px = std::get_if<PaxosAppState>(&state.data)) {
    state_.RestoreFrom(*px);
  }
}

SoftwareLearner::SoftwareLearner(PaxosGroupConfig group, PaxosSoftwareConfig config,
                                 SimDuration gap_timeout)
    : PaxosSoftwareApp(config), state_(std::move(group)), gap_timeout_(gap_timeout) {}

std::vector<PaxosOut> SoftwareLearner::Handle(const PaxosMessage& msg) {
  return state_.HandleMessage(msg, context()->sim().Now());
}

void SoftwareLearner::StartGapTimer() {
  if (timer_started_ || context() == nullptr) {
    return;
  }
  timer_started_ = true;
  Simulation& sim = context()->sim();
  SchedulePeriodic(sim, gap_timeout_, gap_timeout_, [this, &sim] {
    TransmitOutbox(state_.CheckGaps(sim.Now(), gap_timeout_));
    return true;
  });
}

}  // namespace incod
