#include "src/paxos/software_roles.h"

#include <utility>

#include "src/host/server.h"

namespace incod {

PaxosSoftwareConfig LibpaxosConfig() {
  return PaxosSoftwareConfig{Nanoseconds(4100), 1};
}

PaxosSoftwareConfig DpdkPaxosConfig() {
  return PaxosSoftwareConfig{Nanoseconds(900), 1};
}

PaxosSoftwareApp::PaxosSoftwareApp(PaxosSoftwareConfig config) : config_(config) {}

SimDuration PaxosSoftwareApp::CpuTimePerRequest(const Packet& packet) const {
  (void)packet;
  return config_.cpu_time_per_message;
}

void PaxosSoftwareApp::Execute(Packet packet) {
  const PaxosMessage* msg_if = active_ ? PayloadIf<PaxosMessage>(packet) : nullptr;
  if (msg_if == nullptr) {
    return;
  }
  handled_.Increment();
  const PaxosMessage& msg = *msg_if;
  for (auto& out : Handle(msg)) {
    server()->Transmit(
        MakePaxosPacket(server()->node(), out.dst, out.msg, server()->sim().Now()));
  }
}

SoftwareLeader::SoftwareLeader(PaxosGroupConfig group, uint16_t ballot,
                               PaxosSoftwareConfig config)
    : PaxosSoftwareApp(config),
      leader_service_(group.leader_service),
      state_(std::move(group), ballot) {}

std::vector<PaxosOut> SoftwareLeader::Handle(const PaxosMessage& msg) {
  return state_.HandleMessage(msg);
}

void SoftwareLeader::BeginSequenceLearning(bool active_probe) {
  TransmitOutbox(state_.StartSequenceLearning(active_probe));
}

void SoftwareLeader::TransmitOutbox(std::vector<PaxosOut> outbox) {
  for (auto& out : outbox) {
    server()->Transmit(
        MakePaxosPacket(server()->node(), out.dst, out.msg, server()->sim().Now()));
  }
}

SoftwareAcceptor::SoftwareAcceptor(PaxosGroupConfig group, uint32_t acceptor_id,
                                   PaxosSoftwareConfig config)
    : PaxosSoftwareApp(config), state_(std::move(group), acceptor_id) {}

std::vector<PaxosOut> SoftwareAcceptor::Handle(const PaxosMessage& msg) {
  return state_.HandleMessage(msg);
}

SoftwareLearner::SoftwareLearner(PaxosGroupConfig group, PaxosSoftwareConfig config,
                                 SimDuration gap_timeout)
    : PaxosSoftwareApp(config), state_(std::move(group)), gap_timeout_(gap_timeout) {}

std::vector<PaxosOut> SoftwareLearner::Handle(const PaxosMessage& msg) {
  return state_.HandleMessage(msg, server()->sim().Now());
}

void SoftwareLearner::StartGapTimer() {
  if (timer_started_ || server() == nullptr) {
    return;
  }
  timer_started_ = true;
  SchedulePeriodic(server()->sim(), gap_timeout_, gap_timeout_, [this] {
    for (auto& out : state_.CheckGaps(server()->sim().Now(), gap_timeout_)) {
      server()->Transmit(
          MakePaxosPacket(server()->node(), out.dst, out.msg, server()->sim().Now()));
    }
    return true;
  });
}

}  // namespace incod
