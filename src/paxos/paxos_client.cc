#include "src/paxos/paxos_client.h"

#include <stdexcept>
#include <utility>

namespace incod {

PaxosClient::PaxosClient(Simulation& sim, PaxosClientConfig config)
    : sim_(sim), config_(std::move(config)), rng_(sim.rng().Fork()) {
  if (config_.requests_per_second <= 0) {
    throw std::invalid_argument("PaxosClient: rate must be > 0");
  }
  if (config_.leader_service == 0) {
    throw std::invalid_argument("PaxosClient: leader_service required");
  }
}

void PaxosClient::Start() {
  SendNext();
  RollBucket();
}

void PaxosClient::RollBucket() {
  sim_.Schedule(config_.rate_bucket, [this] {
    const double rate =
        static_cast<double>(bucket_completions_) / ToSeconds(config_.rate_bucket);
    completion_series_.Append(sim_.Now(), rate);
    bucket_completions_ = 0;
    if (sim_.Now() < stop_at_) {
      RollBucket();
    }
  });
}

void PaxosClient::SendNext() {
  if (sim_.Now() >= stop_at_) {
    return;
  }
  const double mean_gap = 1.0 / config_.requests_per_second;
  const SimDuration gap =
      config_.poisson_arrivals ? SecondsF(rng_.Exponential(mean_gap)) : SecondsF(mean_gap);
  sim_.Schedule(gap, [this] {
    if (sim_.Now() >= stop_at_) {
      return;
    }
    // Value ids are globally unique and non-zero: node in the top bits.
    const PaxosValue value =
        (static_cast<PaxosValue>(config_.node) << 32) | next_seq_++;
    outstanding_[value] = Pending{sim_.Now(), 0};
    SendRequest(value, /*is_retry=*/false);
    SendNext();
  });
}

void PaxosClient::SendRequest(PaxosValue value, bool is_retry) {
  auto it = outstanding_.find(value);
  if (it == outstanding_.end()) {
    return;
  }
  ++it->second.attempts;
  if (is_retry) {
    retries_.Increment();
  } else {
    sent_.Increment();
  }
  PaxosMessage msg;
  msg.type = PaxosMsgType::kClientRequest;
  msg.value = value;
  msg.client = config_.node;
  if (uplink_ == nullptr) {
    throw std::logic_error("PaxosClient: no uplink");
  }
  uplink_->Send(this, MakePaxosPacket(config_.node, config_.leader_service, msg,
                                      sim_.Now()));
  ArmTimeout(value);
}

void PaxosClient::ArmTimeout(PaxosValue value) {
  sim_.Schedule(config_.retry_timeout, [this, value] {
    auto it = outstanding_.find(value);
    if (it == outstanding_.end()) {
      return;  // Completed meanwhile.
    }
    if (it->second.attempts > config_.max_retries) {
      abandoned_.Increment();
      outstanding_.erase(it);
      return;
    }
    SendRequest(value, /*is_retry=*/true);
  });
}

void PaxosClient::Receive(Packet packet) {
  const PaxosMessage* msg_if = PayloadIf<PaxosMessage>(packet);
  if (msg_if == nullptr) {
    return;
  }
  const PaxosMessage& msg = *msg_if;
  if (msg.type != PaxosMsgType::kClientResponse) {
    return;
  }
  auto it = outstanding_.find(msg.value);
  if (it == outstanding_.end()) {
    return;  // Duplicate response (e.g. re-proposed during migration).
  }
  completed_.Increment();
  ++bucket_completions_;
  latency_.Record(static_cast<uint64_t>(sim_.Now() - it->second.first_sent));
  outstanding_.erase(it);
}

}  // namespace incod
