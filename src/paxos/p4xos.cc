#include "src/paxos/p4xos.h"

#include <utility>

#include "src/device/fpga_nic.h"
#include "src/paxos/paxos_msg.h"
#include "src/sim/simulation.h"

namespace incod {

const char* P4xosRoleName(P4xosRole role) {
  return role == P4xosRole::kLeader ? "leader" : "acceptor";
}

P4xosRoleState::P4xosRoleState(P4xosRole role, PaxosGroupConfig group, uint32_t role_id)
    : role_(role) {
  if (role_ == P4xosRole::kLeader) {
    leader_ = std::make_unique<LeaderState>(std::move(group),
                                            static_cast<uint16_t>(role_id));
  } else {
    acceptor_ = std::make_unique<AcceptorState>(std::move(group), role_id);
  }
}

std::vector<PaxosOut> P4xosRoleState::Dispatch(const PaxosMessage& msg) {
  return role_ == P4xosRole::kLeader ? leader_->HandleMessage(msg)
                                     : acceptor_->HandleMessage(msg);
}

AppState P4xosRoleState::Snapshot(AppProto proto, const std::string& name) const {
  PaxosAppState px;
  if (role_ == P4xosRole::kLeader) {
    leader_->SaveTo(px);
  } else {
    acceptor_->SaveTo(px);
  }
  return AppState{proto, name, std::move(px)};
}

void P4xosRoleState::Restore(const AppState& state) {
  const PaxosAppState* px = std::get_if<PaxosAppState>(&state.data);
  if (px == nullptr) {
    return;
  }
  if (role_ == P4xosRole::kLeader) {
    leader_->RestoreFrom(*px);
  } else {
    acceptor_->RestoreFrom(*px);
  }
}

P4xosFpgaApp::P4xosFpgaApp(P4xosRole role, PaxosGroupConfig group, uint32_t role_id,
                           NodeId role_address, P4xosFpgaConfig config)
    : role_address_(role_address),
      config_(config),
      state_(role, std::move(group), role_id) {}

std::string P4xosFpgaApp::AppName() const {
  return std::string("p4xos-fpga-") + P4xosRoleName(role());
}

std::vector<ModulePowerSpec> P4xosFpgaApp::PowerModules() const {
  // A single main logical core compiled from P4, on-chip memory only
  // (Figure 2). No DRAM/SRAM interfaces: base power ~10 W below LaKe.
  return {MakeModuleSpec("p4xos_core", config_.core_watts, kLogicStaticFraction, 1.0)};
}

FpgaPipelineSpec P4xosFpgaApp::PipelineSpec() const {
  FpgaPipelineSpec spec;
  spec.workers = 1;
  spec.worker_service = config_.initiation_interval;
  spec.pipeline_latency = config_.pipeline_latency;
  spec.input_queue_capacity = 1024;
  return spec;
}

bool P4xosFpgaApp::Matches(const Packet& packet) const {
  return packet.proto == AppProto::kPaxos && packet.dst == role_address_;
}

NodeId P4xosFpgaApp::ReplySource() const {
  const NodeId self = context() != nullptr ? context()->self_node() : 0;
  return self != 0 ? self : role_address_;
}

void P4xosFpgaApp::HandlePacket(AppContext& ctx, Packet packet) {
  const PaxosMessage* msg = PayloadIf<PaxosMessage>(packet);
  if (msg == nullptr) {
    ctx.Punt(std::move(packet));
    return;
  }
  handled_.Increment();
  TransmitOutbox(state_.Dispatch(*msg));
}

void P4xosFpgaApp::BeginSequenceLearning(bool active_probe) {
  if (leader() == nullptr) {
    return;
  }
  TransmitOutbox(leader()->StartSequenceLearning(active_probe));
}

void P4xosFpgaApp::TransmitOutbox(std::vector<PaxosOut> outbox) {
  AppContext* ctx = context();
  if (ctx == nullptr) {
    return;
  }
  const NodeId src = ReplySource();
  for (auto& out : outbox) {
    ctx->Reply(MakePaxosPacket(src, out.dst, out.msg, ctx->sim().Now()));
  }
}

AppState P4xosFpgaApp::SnapshotState() const { return state_.Snapshot(proto(), AppName()); }

void P4xosFpgaApp::RestoreState(const AppState& state) { state_.Restore(state); }

P4xosSwitchProgram::P4xosSwitchProgram(P4xosRole role, PaxosGroupConfig group,
                                       uint32_t role_id, NodeId role_address)
    : role_address_(role_address), state_(role, std::move(group), role_id) {}

std::string P4xosSwitchProgram::AppName() const {
  return std::string("p4xos-") + P4xosRoleName(role());
}

void P4xosSwitchProgram::HandlePacket(AppContext& ctx, Packet packet) {
  const PaxosMessage* msg = PayloadIf<PaxosMessage>(packet);
  if (msg == nullptr) {
    ctx.Punt(std::move(packet));
    return;
  }
  handled_.Increment();
  auto outbox = state_.Dispatch(*msg);
  for (auto& out : outbox) {
    ctx.Reply(MakePaxosPacket(role_address_, out.dst, out.msg, ctx.sim().Now()));
  }
}

AppState P4xosSwitchProgram::SnapshotState() const {
  return state_.Snapshot(proto(), AppName());
}

void P4xosSwitchProgram::RestoreState(const AppState& state) { state_.Restore(state); }

}  // namespace incod
