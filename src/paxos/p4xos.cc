#include "src/paxos/p4xos.h"

#include <utility>

#include "src/device/fpga_nic.h"

namespace incod {

const char* P4xosRoleName(P4xosRole role) {
  return role == P4xosRole::kLeader ? "leader" : "acceptor";
}

P4xosFpgaApp::P4xosFpgaApp(P4xosRole role, PaxosGroupConfig group, uint32_t role_id,
                           NodeId role_address, P4xosFpgaConfig config)
    : role_(role), role_address_(role_address), config_(config) {
  if (role_ == P4xosRole::kLeader) {
    leader_ = std::make_unique<LeaderState>(std::move(group),
                                            static_cast<uint16_t>(role_id));
  } else {
    acceptor_ = std::make_unique<AcceptorState>(std::move(group), role_id);
  }
}

std::string P4xosFpgaApp::AppName() const {
  return std::string("p4xos-fpga-") + P4xosRoleName(role_);
}

std::vector<ModulePowerSpec> P4xosFpgaApp::PowerModules() const {
  // A single main logical core compiled from P4, on-chip memory only
  // (Figure 2). No DRAM/SRAM interfaces: base power ~10 W below LaKe.
  return {MakeModuleSpec("p4xos_core", config_.core_watts, kLogicStaticFraction, 1.0)};
}

FpgaPipelineSpec P4xosFpgaApp::PipelineSpec() const {
  FpgaPipelineSpec spec;
  spec.workers = 1;
  spec.worker_service = config_.initiation_interval;
  spec.pipeline_latency = config_.pipeline_latency;
  spec.input_queue_capacity = 1024;
  return spec;
}

bool P4xosFpgaApp::Matches(const Packet& packet) const {
  return packet.proto == AppProto::kPaxos && packet.dst == role_address_;
}

void P4xosFpgaApp::Process(Packet packet) {
  const PaxosMessage* msg = PayloadIf<PaxosMessage>(packet);
  if (msg == nullptr) {
    nic()->DeliverToHost(std::move(packet));
    return;
  }
  handled_.Increment();
  auto outbox = role_ == P4xosRole::kLeader ? leader_->HandleMessage(*msg)
                                            : acceptor_->HandleMessage(*msg);
  const NodeId src =
      nic()->config().device_node != 0 ? nic()->config().device_node : role_address_;
  for (auto& out : outbox) {
    nic()->TransmitToNetwork(MakePaxosPacket(src, out.dst, out.msg, nic()->sim().Now()));
  }
}

void P4xosFpgaApp::BeginSequenceLearning(bool active_probe) {
  if (leader_ == nullptr) {
    return;
  }
  TransmitOutbox(leader_->StartSequenceLearning(active_probe));
}

void P4xosFpgaApp::TransmitOutbox(std::vector<PaxosOut> outbox) {
  const NodeId src =
      nic()->config().device_node != 0 ? nic()->config().device_node : role_address_;
  for (auto& out : outbox) {
    nic()->TransmitToNetwork(MakePaxosPacket(src, out.dst, out.msg, nic()->sim().Now()));
  }
}

P4xosSwitchProgram::P4xosSwitchProgram(P4xosRole role, PaxosGroupConfig group,
                                       uint32_t role_id, NodeId role_address)
    : role_(role), role_address_(role_address) {
  if (role_ == P4xosRole::kLeader) {
    leader_ = std::make_unique<LeaderState>(std::move(group),
                                            static_cast<uint16_t>(role_id));
  } else {
    acceptor_ = std::make_unique<AcceptorState>(std::move(group), role_id);
  }
}

std::string P4xosSwitchProgram::ProgramName() const {
  return std::string("p4xos-") + P4xosRoleName(role_);
}

bool P4xosSwitchProgram::Process(SwitchAsic& sw, Packet& packet) {
  if (packet.proto != AppProto::kPaxos || packet.dst != role_address_) {
    return false;
  }
  const PaxosMessage* msg = PayloadIf<PaxosMessage>(packet);
  if (msg == nullptr) {
    return false;
  }
  handled_.Increment();
  auto outbox = role_ == P4xosRole::kLeader ? leader_->HandleMessage(*msg)
                                            : acceptor_->HandleMessage(*msg);
  for (auto& out : outbox) {
    sw.TransmitFromPipeline(
        MakePaxosPacket(role_address_, out.dst, out.msg, sw.sim().Now()));
  }
  return true;
}

}  // namespace incod
