// Paxos client: open-loop request generator with the §9.2 retry behaviour.
//
// "The clients resend requests after a time-out period if the learner has
// not acknowledged." During a leader shift the throughput drops to zero for
// about the client timeout (100 ms in Fig 7) and recovers when retries reach
// the new leader.
#ifndef INCOD_SRC_PAXOS_PAXOS_CLIENT_H_
#define INCOD_SRC_PAXOS_PAXOS_CLIENT_H_

#include <string>
#include <unordered_map>

#include "src/net/link.h"
#include "src/paxos/paxos_msg.h"
#include "src/sim/simulation.h"
#include "src/stats/counters.h"
#include "src/stats/histogram.h"
#include "src/stats/timeseries.h"

namespace incod {

struct PaxosClientConfig {
  NodeId node = 100;
  NodeId leader_service = 0;
  double requests_per_second = 10000;
  bool poisson_arrivals = false;  // false: constant spacing (OSNT-like).
  SimDuration retry_timeout = Milliseconds(100);  // Fig 7's client timeout.
  int max_retries = 20;
  // Completed-request rate series bucket (for the Fig 7 timeline).
  SimDuration rate_bucket = Milliseconds(100);
};

class PaxosClient : public PacketSink {
 public:
  PaxosClient(Simulation& sim, PaxosClientConfig config);

  void SetUplink(Link* link) { uplink_ = link; }

  // Starts issuing requests at `config.requests_per_second` until StopAt.
  void Start();
  void StopAt(SimTime at) { stop_at_ = at; }

  void Receive(Packet packet) override;
  std::string SinkName() const override { return "paxos-client"; }

  uint64_t sent() const { return sent_.value(); }
  uint64_t completed() const { return completed_.value(); }
  uint64_t retries() const { return retries_.value(); }
  uint64_t timeouts_abandoned() const { return abandoned_.value(); }
  size_t outstanding() const { return outstanding_.size(); }

  // End-to-end request latency (first send to response), nanoseconds.
  const Histogram& latency() const { return latency_; }
  // Completed requests per second over time (bucketed).
  const TimeSeries& completion_rate() const { return completion_series_; }
  Histogram& mutable_latency() { return latency_; }

 private:
  struct Pending {
    SimTime first_sent = 0;
    int attempts = 0;
  };

  void SendNext();
  void SendRequest(PaxosValue value, bool is_retry);
  void ArmTimeout(PaxosValue value);
  void RollBucket();

  Simulation& sim_;
  PaxosClientConfig config_;
  Link* uplink_ = nullptr;
  SimTime stop_at_ = INT64_MAX;
  uint64_t next_seq_ = 1;
  std::unordered_map<PaxosValue, Pending> outstanding_;
  Counter sent_;
  Counter completed_;
  Counter retries_;
  Counter abandoned_;
  Histogram latency_;
  TimeSeries completion_series_{"paxos_completions_per_sec"};
  uint64_t bucket_completions_ = 0;
  Rng rng_;
};

}  // namespace incod

#endif  // INCOD_SRC_PAXOS_PAXOS_CLIENT_H_
