// Paxos wire messages (struct-only).
//
// Split from paxos_msg.h so packet.h can include the message struct for the
// payload variant without a circular include; paxos_msg.h re-exports this
// alongside the group configuration and packet-building helpers.
#ifndef INCOD_SRC_PAXOS_PAXOS_WIRE_H_
#define INCOD_SRC_PAXOS_PAXOS_WIRE_H_

#include <cstdint>

#include "src/net/node.h"

namespace incod {

enum class PaxosMsgType : uint8_t {
  kClientRequest,   // client -> leader service
  kPhase1a,         // leader -> acceptors (prepare; gap recovery)
  kPhase1b,         // acceptor -> leader (promise / NACK with hints)
  kPhase2a,         // leader -> acceptors (accept)
  kPhase2b,         // acceptor -> learners (accepted)
  kFillRequest,     // learner -> leader service (gap re-initiation, §9.2)
  kClientResponse,  // learner -> client
};

const char* PaxosMsgTypeName(PaxosMsgType type);

// A consensus value: the client request id. 0 is reserved for no-op.
using PaxosValue = uint64_t;
constexpr PaxosValue kPaxosNoop = 0;

struct PaxosMessage {
  PaxosMsgType type = PaxosMsgType::kClientRequest;
  uint32_t instance = 0;  // 1-based; 0 means "none".
  uint16_t round = 0;     // Ballot of the sender (leader) or promised round.
  uint16_t vround = 0;    // Phase1b: round of the reported accepted value.
  PaxosValue value = kPaxosNoop;
  NodeId client = 0;      // Originator of the value (reply target).
  uint32_t sender_id = 0;               // Role id (acceptor id) of the sender.
  uint32_t last_voted_instance = 0;     // §9.2 piggyback; 0 = never voted.
};

}  // namespace incod

#endif  // INCOD_SRC_PAXOS_PAXOS_WIRE_H_
