#include "src/paxos/roles.h"

#include <algorithm>
#include <stdexcept>

namespace incod {

// ---------------------------------------------------------------- Leader --

LeaderState::LeaderState(PaxosGroupConfig config, uint16_t ballot)
    : config_(std::move(config)), ballot_(ballot) {
  if (config_.acceptors.empty()) {
    throw std::invalid_argument("LeaderState: no acceptors");
  }
  if (ballot_ == 0) {
    throw std::invalid_argument("LeaderState: ballot must be > 0");
  }
}

void LeaderState::Reset(uint16_t new_ballot) {
  if (new_ballot <= ballot_) {
    throw std::invalid_argument("LeaderState::Reset: ballot must increase");
  }
  ballot_ = new_ballot;
  next_instance_ = 1;
  recoveries_.clear();
  awaiting_sequence_ = false;
  probe_promises_.clear();
  pending_requests_.clear();
}

void LeaderState::SaveTo(PaxosAppState& state) const {
  state.ballot = ballot_;
  state.next_instance = next_instance_;
}

void LeaderState::RestoreFrom(const PaxosAppState& state) {
  ballot_ = state.ballot;
  next_instance_ = state.next_instance;
  recoveries_.clear();
  awaiting_sequence_ = false;
  probe_promises_.clear();
  pending_requests_.clear();
}

std::vector<PaxosOut> LeaderState::StartSequenceLearning(bool send_probe) {
  awaiting_sequence_ = true;
  probe_promises_.clear();
  std::vector<PaxosOut> out;
  if (!send_probe) {
    return out;
  }
  PaxosMessage probe;
  probe.type = PaxosMsgType::kPhase1a;
  probe.instance = 1;  // The probe doubles as recovery of instance 1.
  probe.round = ballot_;
  recoveries_.try_emplace(1);
  for (NodeId acceptor : config_.acceptors) {
    out.push_back(PaxosOut{acceptor, probe});
  }
  return out;
}

std::vector<PaxosOut> LeaderState::AbandonSequenceLearning() {
  std::vector<PaxosOut> out;
  if (!awaiting_sequence_) {
    return out;
  }
  awaiting_sequence_ = false;
  for (const auto& pending : pending_requests_) {
    const uint32_t instance = next_instance_++;
    auto batch = Propose(instance, pending.value, pending.client);
    out.insert(out.end(), batch.begin(), batch.end());
  }
  pending_requests_.clear();
  return out;
}

void LeaderState::LearnFrom(const PaxosMessage& msg) {
  // §9.2: acceptors piggyback their last-voted instance; the leader adopts
  // the next unused sequence number.
  if (msg.last_voted_instance >= next_instance_) {
    next_instance_ = msg.last_voted_instance + 1;
    ++sequence_jumps_;
  }
}

std::vector<PaxosOut> LeaderState::Propose(uint32_t instance, PaxosValue value,
                                           NodeId client) {
  std::vector<PaxosOut> out;
  out.reserve(config_.acceptors.size());
  PaxosMessage m;
  m.type = PaxosMsgType::kPhase2a;
  m.instance = instance;
  m.round = ballot_;
  m.value = value;
  m.client = client;
  for (NodeId acceptor : config_.acceptors) {
    out.push_back(PaxosOut{acceptor, m});
  }
  ++proposals_;
  return out;
}

std::vector<PaxosOut> LeaderState::HandleMessage(const PaxosMessage& msg) {
  switch (msg.type) {
    case PaxosMsgType::kClientRequest: {
      if (awaiting_sequence_) {
        // §9.2: a fresh leader must not propose before it has learned the
        // sequence. Buffer (bounded); overflow relies on client retries.
        if (pending_requests_.size() < 4096) {
          pending_requests_.push_back(msg);
        }
        return {};
      }
      const uint32_t instance = next_instance_++;
      return Propose(instance, msg.value, msg.client);
    }
    case PaxosMsgType::kPhase1b: {
      LearnFrom(msg);
      std::vector<PaxosOut> released;
      if (awaiting_sequence_ && msg.round == ballot_) {
        probe_promises_.insert(msg.sender_id);
        if (probe_promises_.size() >= config_.QuorumSize()) {
          awaiting_sequence_ = false;
          for (const auto& pending : pending_requests_) {
            const uint32_t instance = next_instance_++;
            auto batch = Propose(instance, pending.value, pending.client);
            released.insert(released.end(), batch.begin(), batch.end());
          }
          pending_requests_.clear();
        }
      }
      auto it = recoveries_.find(msg.instance);
      if (it == recoveries_.end()) {
        // Plain NACK (e.g. our 2a hit a higher round, or a stale-instance
        // vote): the sequence hint above is all we can use.
        return released;
      }
      Recovery& rec = it->second;
      if (rec.phase2_started || msg.round != ballot_) {
        return released;
      }
      rec.promised.insert(msg.sender_id);
      if (msg.vround > rec.highest_vround) {
        rec.highest_vround = msg.vround;
        rec.value = msg.value;
        rec.client = msg.client;
      }
      if (rec.promised.size() >= config_.QuorumSize()) {
        rec.phase2_started = true;
        // Re-propose the highest previously voted value, or a no-op (§9.2:
        // "If that instance has previously been voted on, then the learners
        // will receive a new value. Otherwise, they learn a no-op value.")
        const PaxosValue value = rec.highest_vround > 0 ? rec.value : kPaxosNoop;
        auto batch = Propose(msg.instance, value, rec.client);
        released.insert(released.end(), batch.begin(), batch.end());
      }
      return released;
    }
    case PaxosMsgType::kFillRequest: {
      if (msg.instance == 0) {
        return {};
      }
      if (msg.instance >= next_instance_) {
        next_instance_ = msg.instance + 1;
        ++sequence_jumps_;
      }
      auto [it, inserted] = recoveries_.try_emplace(msg.instance);
      if (!inserted && it->second.phase2_started) {
        return {};  // Already re-proposed; duplicates are harmless.
      }
      std::vector<PaxosOut> out;
      PaxosMessage m;
      m.type = PaxosMsgType::kPhase1a;
      m.instance = msg.instance;
      m.round = ballot_;
      for (NodeId acceptor : config_.acceptors) {
        out.push_back(PaxosOut{acceptor, m});
      }
      return out;
    }
    case PaxosMsgType::kPhase2b:
      LearnFrom(msg);
      return {};
    default:
      return {};
  }
}

// -------------------------------------------------------------- Acceptor --

AcceptorState::AcceptorState(PaxosGroupConfig config, uint32_t acceptor_id)
    : config_(std::move(config)), acceptor_id_(acceptor_id) {
  if (config_.learners.empty()) {
    throw std::invalid_argument("AcceptorState: no learners");
  }
}

void AcceptorState::SaveTo(PaxosAppState& state) const {
  state.acceptor_id = acceptor_id_;
  state.last_voted_instance = last_voted_instance_;
  state.slots.clear();
  state.slots.reserve(slots_.size());
  for (const auto& [instance, slot] : slots_) {
    state.slots.push_back(
        PaxosAcceptorSlot{instance, slot.rnd, slot.vrnd, slot.value, slot.client});
  }
  std::sort(state.slots.begin(), state.slots.end(),
            [](const PaxosAcceptorSlot& a, const PaxosAcceptorSlot& b) {
              return a.instance < b.instance;
            });
}

void AcceptorState::RestoreFrom(const PaxosAppState& state) {
  last_voted_instance_ = state.last_voted_instance;
  slots_.clear();
  for (const PaxosAcceptorSlot& s : state.slots) {
    slots_[s.instance] = Slot{s.rnd, s.vrnd, s.value, s.client};
  }
}

PaxosMessage AcceptorState::MakePhase1b(uint32_t instance, const Slot& slot) const {
  PaxosMessage m;
  m.type = PaxosMsgType::kPhase1b;
  m.instance = instance;
  m.round = slot.rnd;
  m.vround = slot.vrnd;
  m.value = slot.value;
  m.client = slot.client;
  m.sender_id = acceptor_id_;
  m.last_voted_instance = last_voted_instance_;
  return m;
}

std::vector<PaxosOut> AcceptorState::HandleMessage(const PaxosMessage& msg) {
  switch (msg.type) {
    case PaxosMsgType::kPhase1a: {
      Slot& slot = slots_[msg.instance];
      if (msg.round >= slot.rnd) {
        slot.rnd = msg.round;
      }
      // Reply in all cases; a stale prepare still teaches the leader the
      // highest round and last-voted instance.
      return {PaxosOut{config_.leader_service, MakePhase1b(msg.instance, slot)}};
    }
    case PaxosMsgType::kPhase2a: {
      Slot& slot = slots_[msg.instance];
      if (msg.round < slot.rnd) {
        // NACK to the leader service with our state (sequence hints ride
        // along, §9.2).
        return {PaxosOut{config_.leader_service, MakePhase1b(msg.instance, slot)}};
      }
      // A higher-round proposal for an instance we already voted on means a
      // freshly elected leader is re-using old sequence numbers: hint it
      // with our last-voted instance (§9.2's acceptor extension) so it can
      // jump past the previous leader's sequence.
      const bool stale_reuse = slot.vrnd != 0 && msg.round > slot.vrnd;
      slot.rnd = msg.round;
      slot.vrnd = msg.round;
      slot.value = msg.value;
      slot.client = msg.client;
      last_voted_instance_ = std::max(last_voted_instance_, msg.instance);
      PaxosMessage vote;
      vote.type = PaxosMsgType::kPhase2b;
      vote.instance = msg.instance;
      vote.round = msg.round;
      vote.value = msg.value;
      vote.client = msg.client;
      vote.sender_id = acceptor_id_;
      vote.last_voted_instance = last_voted_instance_;
      std::vector<PaxosOut> out;
      out.reserve(config_.learners.size() + 1);
      for (NodeId learner : config_.learners) {
        out.push_back(PaxosOut{learner, vote});
      }
      if (stale_reuse) {
        out.push_back(
            PaxosOut{config_.leader_service, MakePhase1b(msg.instance, slots_[msg.instance])});
      }
      return out;
    }
    default:
      return {};
  }
}

// --------------------------------------------------------------- Learner --

LearnerState::LearnerState(PaxosGroupConfig config) : config_(std::move(config)) {
  if (config_.acceptors.empty()) {
    throw std::invalid_argument("LearnerState: no acceptors");
  }
}

std::vector<PaxosOut> LearnerState::Deliver(uint32_t instance, Slot& slot) {
  slot.delivered = true;
  ++delivered_count_;
  while (true) {
    auto next = slots_.find(highest_contiguous_ + 1);
    if (next == slots_.end() || !next->second.delivered) {
      break;
    }
    ++highest_contiguous_;
  }
  std::vector<PaxosOut> out;
  if (slot.value == kPaxosNoop) {
    ++noop_count_;
  } else if (slot.client != 0) {
    PaxosMessage resp;
    resp.type = PaxosMsgType::kClientResponse;
    resp.instance = instance;
    resp.value = slot.value;
    resp.client = slot.client;
    out.push_back(PaxosOut{slot.client, resp});
  }
  return out;
}

std::vector<PaxosOut> LearnerState::HandleMessage(const PaxosMessage& msg, SimTime now) {
  (void)now;
  if (msg.type != PaxosMsgType::kPhase2b || msg.instance == 0) {
    return {};
  }
  highest_seen_ = std::max(highest_seen_, msg.instance);
  Slot& slot = slots_[msg.instance];
  if (slot.delivered) {
    return {};
  }
  slot.votes[msg.sender_id] = {msg.round, msg.value};
  // Count matching votes at this round/value.
  size_t matching = 0;
  for (const auto& [acceptor, vote] : slot.votes) {
    if (vote.first == msg.round && vote.second == msg.value) {
      ++matching;
    }
  }
  if (matching >= config_.QuorumSize()) {
    slot.value = msg.value;
    slot.client = msg.client;
    return Deliver(msg.instance, slot);
  }
  return {};
}

std::vector<PaxosOut> LearnerState::CheckGaps(SimTime now, SimDuration gap_timeout) {
  std::vector<PaxosOut> out;
  if (highest_seen_ <= highest_contiguous_) {
    return out;
  }
  for (uint32_t inst = highest_contiguous_ + 1; inst <= highest_seen_; ++inst) {
    Slot& slot = slots_[inst];  // Creates an empty slot for true gaps.
    if (slot.delivered) {
      continue;
    }
    if (slot.last_fill_request != 0 && now - slot.last_fill_request < gap_timeout) {
      continue;
    }
    slot.last_fill_request = now;
    PaxosMessage m;
    m.type = PaxosMsgType::kFillRequest;
    m.instance = inst;
    out.push_back(PaxosOut{config_.leader_service, m});
    ++fill_requests_;
  }
  return out;
}

}  // namespace incod
