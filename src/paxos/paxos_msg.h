// Paxos protocol messages and group configuration (§3.2, §9.2).
//
// We implement the message vocabulary of Lamport's single-decree Paxos run
// over a sequence of instances (Multi-Paxos), matching P4xos: client
// requests reach a leader (coordinator) which assigns monotonically
// increasing instance numbers and runs phase 2 against the acceptors;
// learners deliver on a quorum of matching phase-2b votes.
//
// Two extensions from §9.2 support on-demand leader migration:
//  - acceptors piggyback their last-voted-upon instance on every response,
//    so a fresh leader can learn the next usable sequence number, and
//  - learners detect instance gaps and ask the leader to re-initiate them
//    (delivering a no-op when no value was previously voted).
#ifndef INCOD_SRC_PAXOS_PAXOS_MSG_H_
#define INCOD_SRC_PAXOS_PAXOS_MSG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/packet.h"
#include "src/paxos/paxos_wire.h"
#include "src/sim/time.h"

namespace incod {

// The consensus group layout. The leader is addressed through a stable
// *service* address; the on-demand controller re-points that address at the
// software or hardware leader by rewriting a switch forwarding rule.
struct PaxosGroupConfig {
  std::vector<NodeId> acceptors;
  std::vector<NodeId> learners;
  NodeId leader_service = 0;

  size_t QuorumSize() const { return acceptors.size() / 2 + 1; }
};

// A message queued for transmission by a role state machine.
struct PaxosOut {
  NodeId dst = 0;
  PaxosMessage msg;
};

// Paxos-over-UDP wire size used throughout (§3.4: all UDP based).
constexpr uint32_t kPaxosWireBytes = 102;

Packet MakePaxosPacket(NodeId src, NodeId dst, const PaxosMessage& msg, SimTime now);

}  // namespace incod

#endif  // INCOD_SRC_PAXOS_PAXOS_MSG_H_
