// Software deployments of the Paxos roles (libpaxos-like and DPDK) — the
// host placement of the Paxos app family.
//
// Calibration (§3.2, §4.3): the libpaxos acceptor peaks at ~178 Kmsg/s on
// one core of the i7 — a 4.1 µs application service plus kernel stack costs.
// The DPDK variant runs the same logic behind a busy-polling stack (choose
// NetStackType::kDpdk on the hosting Server) with a much lower per-message
// cost.
#ifndef INCOD_SRC_PAXOS_SOFTWARE_ROLES_H_
#define INCOD_SRC_PAXOS_SOFTWARE_ROLES_H_

#include <optional>
#include <string>
#include <vector>

#include "src/app/app.h"
#include "src/paxos/roles.h"
#include "src/stats/counters.h"

namespace incod {

struct PaxosSoftwareConfig {
  SimDuration cpu_time_per_message = Nanoseconds(4100);  // libpaxos on kernel.
  int threads = 1;                                       // libpaxos uses one core (§4.3).
};

PaxosSoftwareConfig LibpaxosConfig();
PaxosSoftwareConfig DpdkPaxosConfig();  // 0.9 µs/message behind a polling stack.

// Common plumbing: decode, run the role state machine, transmit the outbox
// through the bound substrate context.
class PaxosSoftwareApp : public App {
 public:
  explicit PaxosSoftwareApp(PaxosSoftwareConfig config);

  AppProto proto() const override { return AppProto::kPaxos; }
  bool SupportsPlacement(PlacementKind placement) const override {
    return placement == PlacementKind::kHost;
  }
  HostPlacementProfile HostProfile() const override {
    return HostPlacementProfile{config_.threads, service_address()};
  }
  // If set, the role only receives packets addressed to this service.
  virtual std::optional<NodeId> service_address() const { return std::nullopt; }

  SimDuration CpuTimePerRequest(const Packet& packet) const override;
  void HandlePacket(AppContext& ctx, Packet packet) override;

  // Transmits role-state output through the hosting substrate.
  void TransmitOutbox(std::vector<PaxosOut> outbox);

  // Deactivated roles ignore traffic (used across leader migration).
  void SetActive(bool active) { active_ = active; }
  bool active() const { return active_; }

  uint64_t messages_handled() const { return handled_.value(); }

 protected:
  virtual std::vector<PaxosOut> Handle(const PaxosMessage& msg) = 0;

 private:
  PaxosSoftwareConfig config_;
  bool active_ = true;
  Counter handled_;
};

class SoftwareLeader : public PaxosSoftwareApp {
 public:
  SoftwareLeader(PaxosGroupConfig group, uint16_t ballot,
                 PaxosSoftwareConfig config = LibpaxosConfig());

  std::string AppName() const override { return "libpaxos-leader"; }
  std::optional<NodeId> service_address() const override { return leader_service_; }

  // Starts post-migration sequence learning (§9.2); with `active_probe`
  // the acceptors are probed immediately. Call after the leader service has
  // been re-pointed at this host.
  void BeginSequenceLearning(bool active_probe);

  // App state contract: ballot and sequence position.
  AppState SnapshotState() const override;
  void RestoreState(const AppState& state) override;

  LeaderState& state() { return state_; }

 protected:
  std::vector<PaxosOut> Handle(const PaxosMessage& msg) override;

 private:
  NodeId leader_service_;
  LeaderState state_;
};

class SoftwareAcceptor : public PaxosSoftwareApp {
 public:
  SoftwareAcceptor(PaxosGroupConfig group, uint32_t acceptor_id,
                   PaxosSoftwareConfig config = LibpaxosConfig());

  std::string AppName() const override { return "libpaxos-acceptor"; }

  // App state contract: the per-instance vote log.
  AppState SnapshotState() const override;
  void RestoreState(const AppState& state) override;

  AcceptorState& state() { return state_; }

 protected:
  std::vector<PaxosOut> Handle(const PaxosMessage& msg) override;

 private:
  AcceptorState state_;
};

class SoftwareLearner : public PaxosSoftwareApp {
 public:
  SoftwareLearner(PaxosGroupConfig group, PaxosSoftwareConfig config = LibpaxosConfig(),
                  SimDuration gap_timeout = Milliseconds(50));

  std::string AppName() const override { return "libpaxos-learner"; }

  // Starts the periodic gap scan; call once after binding to a server.
  void StartGapTimer();

  LearnerState& state() { return state_; }

 protected:
  std::vector<PaxosOut> Handle(const PaxosMessage& msg) override;

 private:
  LearnerState state_;
  SimDuration gap_timeout_;
  bool timer_started_ = false;
};

}  // namespace incod

#endif  // INCOD_SRC_PAXOS_SOFTWARE_ROLES_H_
