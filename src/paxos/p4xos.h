// P4xos: hardware deployments of the Paxos leader and acceptor roles — the
// FPGA-NIC and switch-ASIC placements of the Paxos app family.
//
// "P4xos provides P4 implementations of the leader and acceptors" (§3.2).
// The same role state machines run (a) as a unified App on the NetFPGA
// model — 10 Mmsg/s, on-chip memory only, ~10 W lower base power than LaKe
// — and (b) as a switch-hosted App on the Tofino model, processing
// consensus at line rate combined with L2 forwarding (§6).
#ifndef INCOD_SRC_PAXOS_P4XOS_H_
#define INCOD_SRC_PAXOS_P4XOS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/app/app.h"
#include "src/app/switch_app.h"
#include "src/paxos/roles.h"
#include "src/stats/counters.h"

namespace incod {

enum class P4xosRole { kLeader, kAcceptor };

const char* P4xosRoleName(P4xosRole role);

struct P4xosFpgaConfig {
  // Fully pipelined: 10 Mmsg/s on NetFPGA SUME (§3.2).
  SimDuration initiation_interval = Nanoseconds(100);
  SimDuration pipeline_latency = Nanoseconds(1300);
  // Main logical core power: P4xos base is ~10 W below LaKe (§4.3), i.e.
  // logic only, no external memories.
  double core_watts = 1.6;
  double dynamic_watts = 1.2;  // +1.2 W max under load (§4.3).
};

// Role state shared by both hardware placements: snapshot/restore through
// the typed PaxosAppState (the generic state-transfer path).
class P4xosRoleState {
 public:
  P4xosRoleState(P4xosRole role, PaxosGroupConfig group, uint32_t role_id);

  std::vector<PaxosOut> Dispatch(const PaxosMessage& msg);
  AppState Snapshot(AppProto proto, const std::string& name) const;
  void Restore(const AppState& state);

  P4xosRole role() const { return role_; }
  LeaderState* leader() { return leader_.get(); }
  AcceptorState* acceptor() { return acceptor_.get(); }

 private:
  P4xosRole role_;
  std::unique_ptr<LeaderState> leader_;
  std::unique_ptr<AcceptorState> acceptor_;
};

class P4xosFpgaApp : public App {
 public:
  // `role_address`: the address this role answers on. For a leader this is
  // usually the group's leader_service (the switch routes it here); for an
  // acceptor, the device's own address. `role_id` is the leader's ballot or
  // the acceptor's id, depending on `role`.
  P4xosFpgaApp(P4xosRole role, PaxosGroupConfig group, uint32_t role_id,
               NodeId role_address, P4xosFpgaConfig config = {});

  AppProto proto() const override { return AppProto::kPaxos; }
  std::string AppName() const override;
  bool SupportsPlacement(PlacementKind placement) const override {
    return placement == PlacementKind::kFpgaNic;
  }

  std::vector<ModulePowerSpec> PowerModules() const;
  FpgaPipelineSpec PipelineSpec() const;
  OffloadPlacementProfile OffloadProfile() const override {
    OffloadPlacementProfile profile;
    profile.pipeline = PipelineSpec();
    profile.power_modules = PowerModules();
    profile.dynamic_watts_at_capacity = config_.dynamic_watts;
    return profile;
  }

  bool Matches(const Packet& packet) const override;
  void HandlePacket(AppContext& ctx, Packet packet) override;

  // Leader role only: starts §9.2 sequence learning (probing the acceptors
  // when `active_probe`). Call after activation and service re-pointing.
  void BeginSequenceLearning(bool active_probe);
  // Transmits role-state output through the device's network port.
  void TransmitOutbox(std::vector<PaxosOut> outbox);

  // App state contract: ballot/sequence (leader) or vote log (acceptor).
  AppState SnapshotState() const override;
  void RestoreState(const AppState& state) override;

  P4xosRole role() const { return state_.role(); }
  LeaderState* leader() { return state_.leader(); }
  AcceptorState* acceptor() { return state_.acceptor(); }
  uint64_t messages_handled() const { return handled_.value(); }

 private:
  NodeId ReplySource() const;

  NodeId role_address_;
  P4xosFpgaConfig config_;
  P4xosRoleState state_;
  Counter handled_;
};

// Paxos in the switch pipeline, combined with L2 forwarding (§6). Consumes
// Paxos packets addressed to `role_address`; everything else forwards.
class P4xosSwitchProgram : public SwitchHostedApp {
 public:
  // `role_id`: the leader's ballot or the acceptor's id, by `role`.
  P4xosSwitchProgram(P4xosRole role, PaxosGroupConfig group, uint32_t role_id,
                     NodeId role_address);

  AppProto proto() const override { return AppProto::kPaxos; }
  std::string AppName() const override;
  // §6: running P4xos adds no more than 2 % to overall power at full load.
  OffloadPlacementProfile OffloadProfile() const override {
    OffloadPlacementProfile profile;
    profile.switch_power_overhead_at_full_load = 0.02;
    return profile;
  }

  bool Matches(const Packet& packet) const override {
    return packet.proto == AppProto::kPaxos && packet.dst == role_address_;
  }
  void HandlePacket(AppContext& ctx, Packet packet) override;

  // App state contract: ballot/sequence (leader) or vote log (acceptor).
  AppState SnapshotState() const override;
  void RestoreState(const AppState& state) override;

  P4xosRole role() const { return state_.role(); }
  LeaderState* leader() { return state_.leader(); }
  AcceptorState* acceptor() { return state_.acceptor(); }
  uint64_t messages_handled() const { return handled_.value(); }

 private:
  NodeId role_address_;
  P4xosRoleState state_;
  Counter handled_;
};

}  // namespace incod

#endif  // INCOD_SRC_PAXOS_P4XOS_H_
