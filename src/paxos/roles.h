// Paxos role state machines (pure logic, transport-agnostic).
//
// The same LeaderState / AcceptorState / LearnerState back every deployment
// in the study — libpaxos-style kernel software, the DPDK variant, P4xos on
// the FPGA NIC, and P4xos on the switch ASIC — so a migrated role behaves
// identically wherever it runs. Each handler returns an outbox of messages;
// the deployment wrapper owns actual transmission and timers.
#ifndef INCOD_SRC_PAXOS_ROLES_H_
#define INCOD_SRC_PAXOS_ROLES_H_

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/app/app_state.h"
#include "src/paxos/paxos_msg.h"
#include "src/sim/time.h"

namespace incod {

// ---------------------------------------------------------------- Leader --
// Coordinator: assigns instance numbers to client values and runs phase 2.
// A newly elected leader "starts with an initial sequence number of 1 and
// must learn the next sequence number that it can use" (§9.2) from the
// acceptors' piggybacked last-voted instance.
class LeaderState {
 public:
  LeaderState(PaxosGroupConfig config, uint16_t ballot);

  std::vector<PaxosOut> HandleMessage(const PaxosMessage& msg);

  // Fresh start after a migration: instance counter back to 1; in-flight
  // recovery state dropped. The ballot must exceed any prior leader's.
  void Reset(uint16_t new_ballot);

  // Begins sequence learning after a Reset: *gates client proposals* —
  // "the new leader fails to propose until it learns the latest Paxos
  // instance from the acceptors" (§9.2). With `send_probe` (an extension
  // over the paper), a phase-1 probe actively solicits a quorum of replies
  // whose piggybacked last-voted hints teach the next usable instance
  // within one round trip; any decided instance has voters in every quorum,
  // so the learned sequence cannot collide with a decided instance.
  // Without the probe (the paper's behaviour), the leader waits passively;
  // the deployment un-gates it after a timeout via AbandonSequenceLearning
  // and the first proposals teach the sequence through acceptor hints and
  // client retries — producing Fig 7's ~100 ms gap.
  std::vector<PaxosOut> StartSequenceLearning(bool send_probe = true);
  // Gives up waiting: releases (proposes) any buffered client requests at
  // the current — possibly stale — sequence position.
  std::vector<PaxosOut> AbandonSequenceLearning();
  bool awaiting_sequence() const { return awaiting_sequence_; }

  // App state contract: capture / install ballot and sequence position.
  // Restoring drops in-flight recovery state (like Reset) but continues at
  // the snapshot's sequence instead of re-learning from 1.
  void SaveTo(PaxosAppState& state) const;
  void RestoreFrom(const PaxosAppState& state);

  uint32_t next_instance() const { return next_instance_; }
  uint16_t ballot() const { return ballot_; }
  uint64_t proposals_sent() const { return proposals_; }
  uint64_t sequence_jumps() const { return sequence_jumps_; }

 private:
  struct Recovery {
    std::set<uint32_t> promised;  // Acceptor ids that answered phase 1.
    uint16_t highest_vround = 0;
    PaxosValue value = kPaxosNoop;
    NodeId client = 0;
    bool phase2_started = false;
  };

  std::vector<PaxosOut> Propose(uint32_t instance, PaxosValue value, NodeId client);
  void LearnFrom(const PaxosMessage& msg);

  PaxosGroupConfig config_;
  uint16_t ballot_;
  uint32_t next_instance_ = 1;
  std::map<uint32_t, Recovery> recoveries_;
  bool awaiting_sequence_ = false;
  std::set<uint32_t> probe_promises_;
  std::vector<PaxosMessage> pending_requests_;  // Buffered while learning.
  uint64_t proposals_ = 0;
  uint64_t sequence_jumps_ = 0;
};

// -------------------------------------------------------------- Acceptor --
class AcceptorState {
 public:
  AcceptorState(PaxosGroupConfig config, uint32_t acceptor_id);

  std::vector<PaxosOut> HandleMessage(const PaxosMessage& msg);

  uint32_t last_voted_instance() const { return last_voted_instance_; }
  uint32_t acceptor_id() const { return acceptor_id_; }
  size_t stored_instances() const { return slots_.size(); }

  // App state contract: the per-instance vote log, sorted by instance.
  void SaveTo(PaxosAppState& state) const;
  void RestoreFrom(const PaxosAppState& state);

 private:
  struct Slot {
    uint16_t rnd = 0;    // Highest promised round.
    uint16_t vrnd = 0;   // Round of the accepted value (0: none).
    PaxosValue value = kPaxosNoop;
    NodeId client = 0;
  };

  PaxosMessage MakePhase1b(uint32_t instance, const Slot& slot) const;

  PaxosGroupConfig config_;
  uint32_t acceptor_id_;
  uint32_t last_voted_instance_ = 0;
  std::unordered_map<uint32_t, Slot> slots_;
};

// --------------------------------------------------------------- Learner --
class LearnerState {
 public:
  explicit LearnerState(PaxosGroupConfig config);

  std::vector<PaxosOut> HandleMessage(const PaxosMessage& msg, SimTime now);

  // Periodic gap scan (§9.2): asks the leader to re-initiate undecided
  // instances older than `gap_timeout`. Rate-limited per instance.
  std::vector<PaxosOut> CheckGaps(SimTime now, SimDuration gap_timeout);

  uint64_t delivered_count() const { return delivered_count_; }
  uint64_t noop_count() const { return noop_count_; }
  uint32_t highest_contiguous() const { return highest_contiguous_; }
  uint32_t highest_seen() const { return highest_seen_; }
  uint64_t fill_requests_sent() const { return fill_requests_; }

 private:
  struct Slot {
    // Votes per acceptor for the current highest round observed.
    std::map<uint32_t, std::pair<uint16_t, PaxosValue>> votes;
    bool delivered = false;
    PaxosValue value = kPaxosNoop;
    NodeId client = 0;
    SimTime last_fill_request = 0;
  };

  std::vector<PaxosOut> Deliver(uint32_t instance, Slot& slot);

  PaxosGroupConfig config_;
  std::map<uint32_t, Slot> slots_;
  uint32_t highest_contiguous_ = 0;
  uint32_t highest_seen_ = 0;
  uint64_t delivered_count_ = 0;
  uint64_t noop_count_ = 0;
  uint64_t fill_requests_ = 0;
};

}  // namespace incod

#endif  // INCOD_SRC_PAXOS_ROLES_H_
